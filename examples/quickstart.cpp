/**
 * @file
 * Quickstart: the paper's Table I pool API end to end — create a
 * pool, build a persistent linked list through the root object,
 * protect it with per-thread SETPERM windows, and reopen it later.
 */

#include <cstdio>

#include "pmo/api.hh"
#include "pmo/errors.hh"

using namespace pmodv;
using pmo::Oid;

namespace
{

/** A persistent singly-linked list node (offsets, not pointers). */
struct ListNode
{
    std::uint64_t value = 0;
    std::uint64_t nextRaw = 0; ///< Oid::raw() of the next node.
};

/** The pool's root object: the programmer-designed directory. */
struct ListRoot
{
    std::uint64_t headRaw = 0;
    std::uint64_t count = 0;
};

} // namespace

int
main()
{
    // An in-memory namespace; pass a directory path to persist pools
    // across processes (see the crash_recovery example).
    pmo::Namespace ns;
    pmo::PmoApi api(ns, /*uid=*/1000, /*proc=*/1);

    // 1. pool_create: the calling process becomes the owner and the
    //    pool is attached read/write (a protection domain is born).
    pmo::Pool *pool = api.poolCreate("quickstart", 4 << 20);
    const DomainId domain = api.domainOf(pool);
    std::printf("created pool id=%u, protection domain %u\n",
                pool->id(), domain);

    // 2. Attaching grants *no* access yet: the thread must SETPERM.
    pmo::Runtime &rt = api.runtime();
    const Oid root_oid = api.poolRoot(pool, sizeof(ListRoot));
    try {
        ListRoot probe{};
        rt.read(0, root_oid, &probe, sizeof(probe));
    } catch (const pmo::ProtectionFault &e) {
        std::printf("expected fault before SETPERM: %s\n", e.what());
    }

    // 3. Open a write window and build a small persistent list.
    api.setPerm(0, pool, Perm::ReadWrite);
    ListRoot root{};
    for (std::uint64_t v = 1; v <= 5; ++v) {
        const Oid node_oid = api.pmalloc(pool, sizeof(ListNode));
        ListNode node;
        node.value = v * 100;
        node.nextRaw = root.headRaw;
        rt.writeValue(0, node_oid, node);
        root.headRaw = node_oid.raw();
        root.count += 1;
    }
    rt.writeValue(0, root_oid, root);
    pool->persist(root_oid, sizeof(root)); // CLWB the root.
    api.setPerm(0, pool, Perm::Read); // Narrow to read-only.

    // 4. Walk the list through checked reads (read window is open).
    std::printf("list of %llu nodes:",
                static_cast<unsigned long long>(root.count));
    for (Oid cur = Oid::fromRaw(root.headRaw); !cur.isNull();) {
        const auto node = rt.readValue<ListNode>(0, cur);
        std::printf(" %llu",
                    static_cast<unsigned long long>(node.value));
        cur = Oid::fromRaw(node.nextRaw);
    }
    std::printf("\n");

    // 5. The window is read-only: writes fault.
    try {
        ListRoot evil{};
        rt.writeValue(0, root_oid, evil);
    } catch (const pmo::ProtectionFault &e) {
        std::printf("expected fault on write in a read window: %s\n",
                    e.what());
    }

    // 6. Close and reopen: OIDs are position independent.
    api.setPerm(0, pool, Perm::None);
    api.poolClose(pool);
    pool = api.poolOpen("quickstart", Perm::Read);
    api.setPerm(0, pool, Perm::Read);
    const auto reread = rt.readValue<ListRoot>(0, root_oid);
    std::printf("reopened: root still lists %llu nodes\n",
                static_cast<unsigned long long>(reread.count));
    api.setPerm(0, pool, Perm::None);
    api.poolClose(pool);
    std::printf("quickstart done\n");
    return 0;
}
