/**
 * @file
 * The paper's motivating scenario (§I): a server keeps each client's
 * private data in its own PMO/protection domain. A handler thread
 * holds permission only for the session it is serving, so a
 * compromised handler (the Heartbleed pattern) cannot leak other
 * clients' secrets — and, unlike stock MPK, the number of sessions is
 * not capped at 16.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "pmo/api.hh"
#include "pmo/errors.hh"

using namespace pmodv;
using pmo::Oid;

namespace
{

constexpr unsigned kSessions = 64; // Far beyond MPK's 16 keys.

struct SessionSecret
{
    char apiToken[32];
    std::uint64_t balance;
};

} // namespace

int
main()
{
    pmo::Namespace ns;
    pmo::PmoApi api(ns, 1000, 1);
    pmo::Runtime &rt = api.runtime();

    // One PMO per client session, each its own protection domain.
    std::vector<pmo::Pool *> pools;
    std::vector<Oid> secrets;
    for (unsigned s = 0; s < kSessions; ++s) {
        pmo::Pool *pool =
            api.poolCreate("session_" + std::to_string(s), 256 << 10);
        const Oid oid = api.poolRoot(pool, sizeof(SessionSecret));
        // Provision the secret inside a tight write window.
        api.setPerm(0, pool, Perm::ReadWrite);
        SessionSecret secret{};
        std::snprintf(secret.apiToken, sizeof(secret.apiToken),
                      "token-%04u-SECRET", s);
        secret.balance = 1000 + s;
        rt.writeValue(0, oid, secret);
        api.setPerm(0, pool, Perm::None);
        pools.push_back(pool);
        secrets.push_back(oid);
    }
    std::printf("provisioned %u sessions in %u protection domains\n",
                kSessions, kSessions);

    // Handler thread 3 serves session 41: grant exactly that domain.
    const ThreadId handler = 3;
    const unsigned serving = 41;
    api.setPerm(handler, pools[serving], Perm::ReadWrite);

    const auto mine =
        rt.readValue<SessionSecret>(handler, secrets[serving]);
    std::printf("handler (tid %u) serves session %u: token=%s "
                "balance=%llu\n",
                handler, serving, mine.apiToken,
                static_cast<unsigned long long>(mine.balance));

    // The compromised-handler probe: try to read every *other*
    // session's secret. Every attempt must fault.
    unsigned leaked = 0, blocked = 0;
    for (unsigned s = 0; s < kSessions; ++s) {
        if (s == serving)
            continue;
        try {
            const auto stolen =
                rt.readValue<SessionSecret>(handler, secrets[s]);
            (void)stolen;
            ++leaked;
        } catch (const pmo::ProtectionFault &) {
            ++blocked;
        }
    }
    std::printf("heartbleed probe across %u foreign sessions: %u "
                "blocked, %u leaked\n",
                kSessions - 1, blocked, leaked);

    // Another handler serving another session is equally confined.
    const ThreadId handler2 = 4;
    const unsigned serving2 = 7;
    api.setPerm(handler2, pools[serving2], Perm::Read);
    try {
        rt.readValue<SessionSecret>(handler2, secrets[serving]);
    } catch (const pmo::ProtectionFault &) {
        std::printf("handler2 (tid %u) cannot read handler1's session "
                    "either\n",
                    handler2);
    }

    // Session teardown: permission revoked, then detached.
    api.setPerm(handler, pools[serving], Perm::None);
    for (pmo::Pool *pool : pools)
        api.poolClose(pool);

    if (leaked != 0) {
        std::printf("ISOLATION FAILURE\n");
        return 1;
    }
    std::printf("server_sessions done: spatial isolation held for all "
                "%u domains\n",
                kSessions);
    return 0;
}
