/**
 * @file
 * Driving the architecture simulator directly: capture a real
 * application trace from the PMO library (a session-store workload)
 * and replay it under every protection scheme, printing the paper's
 * headline comparison on your own workload.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/replay.hh"
#include "pmo/api.hh"

using namespace pmodv;
using arch::SchemeKind;
using pmo::Oid;

int
main()
{
    // Build the replay pipelines first so the trace streams straight
    // into all of them (one pass, six simulated machines).
    core::SimConfig config;
    const std::vector<SchemeKind> schemes{
        SchemeKind::NoProtection, SchemeKind::Lowerbound,
        SchemeKind::Mpk,          SchemeKind::LibMpk,
        SchemeKind::MpkVirt,      SchemeKind::DomainVirt};
    core::MultiReplay replay(config, schemes);

    // A session store: 48 PMOs (one per session), random updates with
    // a SETPERM window per operation.
    pmo::Namespace ns;
    pmo::PmoApi api(ns, 1000, 1);
    pmo::Runtime &rt = api.runtime();
    rt.setTraceSink(&replay.sink());

    constexpr unsigned kSessions = 48;
    constexpr unsigned kOps = 3'000;
    std::vector<pmo::Pool *> pools;
    std::vector<Oid> records;
    for (unsigned s = 0; s < kSessions; ++s) {
        pmo::Pool *pool =
            api.poolCreate("sess" + std::to_string(s), 256 << 10);
        pools.push_back(pool);
        records.push_back(api.poolRoot(pool, 64));
    }

    Rng rng(7);
    for (unsigned op = 0; op < kOps; ++op) {
        const unsigned s = static_cast<unsigned>(rng.next(kSessions));
        rt.opBegin(0);
        rt.compute(0, 400); // Request parsing etc.
        api.setPerm(0, pools[s], Perm::ReadWrite);
        std::uint8_t record[64];
        rt.read(0, records[s], record, sizeof(record));
        record[0] += 1;
        rt.write(0, records[s], record, sizeof(record));
        api.setPerm(0, pools[s], Perm::None);
        rt.opEnd(0);
    }
    rt.setTraceSink(nullptr);

    // Report.
    std::printf("=== protection_demo: %u sessions, %u operations ===\n",
                kSessions, kOps);
    std::printf("%-14s %14s %16s %18s\n", "scheme", "cycles",
                "vs baseline(%)", "vs lowerbound(%)");
    const double base = static_cast<double>(
        replay.system(SchemeKind::NoProtection).totalCycles());
    const double lower = static_cast<double>(
        replay.system(SchemeKind::Lowerbound).totalCycles());
    for (SchemeKind kind : schemes) {
        const auto &sys = replay.system(kind);
        const double cycles = static_cast<double>(sys.totalCycles());
        std::printf("%-14s %14.0f %16.2f %18.2f\n",
                    arch::schemeName(kind), cycles,
                    (cycles - base) / base * 100.0,
                    (cycles - lower) / lower * 100.0);
        if (sys.deniedAccesses.value() != 0)
            std::printf("  (!) %g denied accesses\n",
                        sys.deniedAccesses.value());
    }

    std::printf("\nper-operation latency (mean / max cycles):\n");
    for (SchemeKind kind : schemes) {
        const auto &h = replay.system(kind).opCycles;
        std::printf("%-14s %10.0f %10llu\n", arch::schemeName(kind),
                    h.mean(),
                    static_cast<unsigned long long>(h.max()));
    }
    std::printf("\nWith %u domains, stock MPK ran out of keys: %g "
                "sessions went unprotected (key_exhausted).\n",
                kSessions,
                static_cast<const stats::Group &>(
                    replay.system(SchemeKind::Mpk))
                    .lookup("mpk.key_exhausted"));
    std::printf("The two proposed schemes protect all %u domains; "
                "compare their overhead columns with libmpk's.\n",
                kSessions);
    return 0;
}
