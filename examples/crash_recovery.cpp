/**
 * @file
 * Crash consistency end to end: a persistent bank ledger updated
 * through durable transactions, with injected power failures. After
 * every crash + recovery the ledger's invariant (total balance is
 * conserved) holds, across simulated process restarts backed by an
 * on-disk namespace.
 */

#include <cstdio>
#include <filesystem>

#include "common/rng.hh"
#include "pmo/api.hh"
#include "pmo/txn.hh"

using namespace pmodv;
using pmo::Oid;

namespace
{

constexpr unsigned kAccounts = 16;
constexpr std::uint64_t kInitialBalance = 1'000;

Oid
accountOid(Oid base, unsigned idx)
{
    return Oid{base.pool, base.offset + 8 * idx};
}

std::uint64_t
totalBalance(pmo::Pool &pool, Oid base)
{
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kAccounts; ++i) {
        std::uint64_t v = 0;
        pool.read(accountOid(base, i), &v, 8);
        total += v;
    }
    return total;
}

} // namespace

int
main()
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("pmodv_example_ledger_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);

    Oid table;

    // Session 1: create the ledger.
    {
        pmo::Namespace ns(dir);
        pmo::PmoApi api(ns, 1000, 1);
        pmo::Pool *pool = api.poolCreate("ledger", 1 << 20);
        table = api.poolRoot(pool, 8 * kAccounts);
        pmo::Transaction txn(*pool);
        txn.begin();
        for (unsigned i = 0; i < kAccounts; ++i)
            txn.writeValue<std::uint64_t>(accountOid(table, i),
                                          kInitialBalance);
        txn.commit();
        ns.sync();
        std::printf("session 1: ledger created, total=%llu\n",
                    static_cast<unsigned long long>(
                        totalBalance(*pool, table)));
    }

    // Sessions 2..N: random transfers with injected power failures.
    Rng rng(2026);
    for (int session = 2; session <= 6; ++session) {
        pmo::Namespace ns(dir);
        pmo::Pool &pool = ns.pool("ledger");

        // Crash recovery first — the previous session may have died
        // mid-transaction.
        if (pmo::Transaction::recover(pool))
            std::printf("session %d: rolled back an interrupted "
                        "transfer\n",
                        session);
        const std::uint64_t total_before = totalBalance(pool, table);

        pmo::Transaction txn(pool);
        for (int t = 0; t < 50; ++t) {
            const unsigned from =
                static_cast<unsigned>(rng.next(kAccounts));
            unsigned to = static_cast<unsigned>(rng.next(kAccounts));
            if (to == from)
                to = (to + 1) % kAccounts;
            const std::uint64_t amount = rng.next(100);

            std::uint64_t from_bal = 0, to_bal = 0;
            pool.read(accountOid(table, from), &from_bal, 8);
            pool.read(accountOid(table, to), &to_bal, 8);
            if (from_bal < amount)
                continue;

            txn.begin();
            txn.writeValue<std::uint64_t>(accountOid(table, from),
                                          from_bal - amount);
            // Power failure strikes 10% of transfers right here —
            // after the debit, before the credit.
            if (rng.chance(0.10)) {
                pool.arena().crash();
                std::printf("session %d: power failure mid-transfer "
                            "(transfer %d)\n",
                            session, t);
                break;
            }
            txn.writeValue<std::uint64_t>(accountOid(table, to),
                                          to_bal + amount);
            txn.commit();
        }

        // Recover whatever state the session ended in and check the
        // conservation invariant.
        pmo::Transaction::recover(pool);
        const std::uint64_t total_after = totalBalance(pool, table);
        std::printf("session %d: total %llu -> %llu %s\n", session,
                    static_cast<unsigned long long>(total_before),
                    static_cast<unsigned long long>(total_after),
                    total_before == total_after ? "(conserved)"
                                                : "(VIOLATED!)");
        if (total_before != total_after)
            return 1;
        ns.sync();
    }

    std::filesystem::remove_all(dir);
    std::printf("crash_recovery done: balance conserved through every "
                "failure\n");
    return 0;
}
