# Empty compiler generated dependencies file for server_sessions.
# This may be replaced when dependencies are built.
