file(REMOVE_RECURSE
  "CMakeFiles/server_sessions.dir/server_sessions.cpp.o"
  "CMakeFiles/server_sessions.dir/server_sessions.cpp.o.d"
  "server_sessions"
  "server_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
