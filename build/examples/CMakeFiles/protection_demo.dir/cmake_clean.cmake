file(REMOVE_RECURSE
  "CMakeFiles/protection_demo.dir/protection_demo.cpp.o"
  "CMakeFiles/protection_demo.dir/protection_demo.cpp.o.d"
  "protection_demo"
  "protection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
