# Empty dependencies file for protection_demo.
# This may be replaced when dependencies are built.
