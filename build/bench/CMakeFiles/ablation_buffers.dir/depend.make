# Empty dependencies file for ablation_buffers.
# This may be replaced when dependencies are built.
