# Empty compiler generated dependencies file for table6_lowerbound.
# This may be replaced when dependencies are built.
