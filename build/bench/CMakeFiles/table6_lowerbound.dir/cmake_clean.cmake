file(REMOVE_RECURSE
  "CMakeFiles/table6_lowerbound.dir/table6_lowerbound.cc.o"
  "CMakeFiles/table6_lowerbound.dir/table6_lowerbound.cc.o.d"
  "table6_lowerbound"
  "table6_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
