file(REMOVE_RECURSE
  "CMakeFiles/table8_area.dir/table8_area.cc.o"
  "CMakeFiles/table8_area.dir/table8_area.cc.o.d"
  "table8_area"
  "table8_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
