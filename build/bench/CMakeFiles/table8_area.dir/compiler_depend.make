# Empty compiler generated dependencies file for table8_area.
# This may be replaced when dependencies are built.
