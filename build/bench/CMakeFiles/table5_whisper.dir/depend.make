# Empty dependencies file for table5_whisper.
# This may be replaced when dependencies are built.
