file(REMOVE_RECURSE
  "CMakeFiles/table5_whisper.dir/table5_whisper.cc.o"
  "CMakeFiles/table5_whisper.dir/table5_whisper.cc.o.d"
  "table5_whisper"
  "table5_whisper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_whisper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
