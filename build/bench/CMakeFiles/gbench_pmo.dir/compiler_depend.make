# Empty compiler generated dependencies file for gbench_pmo.
# This may be replaced when dependencies are built.
