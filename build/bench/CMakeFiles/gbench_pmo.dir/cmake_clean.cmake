file(REMOVE_RECURSE
  "CMakeFiles/gbench_pmo.dir/gbench_pmo.cc.o"
  "CMakeFiles/gbench_pmo.dir/gbench_pmo.cc.o.d"
  "gbench_pmo"
  "gbench_pmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_pmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
