file(REMOVE_RECURSE
  "CMakeFiles/fig7_average.dir/fig7_average.cc.o"
  "CMakeFiles/fig7_average.dir/fig7_average.cc.o.d"
  "fig7_average"
  "fig7_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
