# Empty compiler generated dependencies file for fig7_average.
# This may be replaced when dependencies are built.
