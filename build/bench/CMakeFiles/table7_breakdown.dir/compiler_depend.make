# Empty compiler generated dependencies file for table7_breakdown.
# This may be replaced when dependencies are built.
