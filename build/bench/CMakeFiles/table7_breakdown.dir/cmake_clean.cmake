file(REMOVE_RECURSE
  "CMakeFiles/table7_breakdown.dir/table7_breakdown.cc.o"
  "CMakeFiles/table7_breakdown.dir/table7_breakdown.cc.o.d"
  "table7_breakdown"
  "table7_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
