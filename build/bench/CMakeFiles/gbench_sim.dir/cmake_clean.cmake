file(REMOVE_RECURSE
  "CMakeFiles/gbench_sim.dir/gbench_sim.cc.o"
  "CMakeFiles/gbench_sim.dir/gbench_sim.cc.o.d"
  "gbench_sim"
  "gbench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
