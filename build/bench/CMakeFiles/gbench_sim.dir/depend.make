# Empty dependencies file for gbench_sim.
# This may be replaced when dependencies are built.
