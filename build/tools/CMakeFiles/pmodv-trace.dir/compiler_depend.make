# Empty compiler generated dependencies file for pmodv-trace.
# This may be replaced when dependencies are built.
