file(REMOVE_RECURSE
  "CMakeFiles/pmodv-trace.dir/pmodv-trace.cc.o"
  "CMakeFiles/pmodv-trace.dir/pmodv-trace.cc.o.d"
  "pmodv-trace"
  "pmodv-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
