# Empty compiler generated dependencies file for pmodv-ns.
# This may be replaced when dependencies are built.
