file(REMOVE_RECURSE
  "CMakeFiles/pmodv-ns.dir/pmodv-ns.cc.o"
  "CMakeFiles/pmodv-ns.dir/pmodv-ns.cc.o.d"
  "pmodv-ns"
  "pmodv-ns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv-ns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
