# Empty dependencies file for pmodv_exp.
# This may be replaced when dependencies are built.
