file(REMOVE_RECURSE
  "CMakeFiles/pmodv_exp.dir/area.cc.o"
  "CMakeFiles/pmodv_exp.dir/area.cc.o.d"
  "CMakeFiles/pmodv_exp.dir/experiments.cc.o"
  "CMakeFiles/pmodv_exp.dir/experiments.cc.o.d"
  "libpmodv_exp.a"
  "libpmodv_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
