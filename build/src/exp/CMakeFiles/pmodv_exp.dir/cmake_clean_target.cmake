file(REMOVE_RECURSE
  "libpmodv_exp.a"
)
