file(REMOVE_RECURSE
  "libpmodv_common.a"
)
