file(REMOVE_RECURSE
  "CMakeFiles/pmodv_common.dir/logging.cc.o"
  "CMakeFiles/pmodv_common.dir/logging.cc.o.d"
  "CMakeFiles/pmodv_common.dir/plru.cc.o"
  "CMakeFiles/pmodv_common.dir/plru.cc.o.d"
  "libpmodv_common.a"
  "libpmodv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
