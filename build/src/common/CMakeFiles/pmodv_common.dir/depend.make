# Empty dependencies file for pmodv_common.
# This may be replaced when dependencies are built.
