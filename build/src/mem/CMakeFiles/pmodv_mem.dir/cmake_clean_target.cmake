file(REMOVE_RECURSE
  "libpmodv_mem.a"
)
