file(REMOVE_RECURSE
  "CMakeFiles/pmodv_mem.dir/cache.cc.o"
  "CMakeFiles/pmodv_mem.dir/cache.cc.o.d"
  "CMakeFiles/pmodv_mem.dir/hierarchy.cc.o"
  "CMakeFiles/pmodv_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/pmodv_mem.dir/memory.cc.o"
  "CMakeFiles/pmodv_mem.dir/memory.cc.o.d"
  "libpmodv_mem.a"
  "libpmodv_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
