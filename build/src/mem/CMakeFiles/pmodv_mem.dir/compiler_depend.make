# Empty compiler generated dependencies file for pmodv_mem.
# This may be replaced when dependencies are built.
