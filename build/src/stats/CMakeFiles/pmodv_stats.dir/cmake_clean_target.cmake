file(REMOVE_RECURSE
  "libpmodv_stats.a"
)
