file(REMOVE_RECURSE
  "CMakeFiles/pmodv_stats.dir/stats.cc.o"
  "CMakeFiles/pmodv_stats.dir/stats.cc.o.d"
  "libpmodv_stats.a"
  "libpmodv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
