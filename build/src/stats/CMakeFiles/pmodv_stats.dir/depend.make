# Empty dependencies file for pmodv_stats.
# This may be replaced when dependencies are built.
