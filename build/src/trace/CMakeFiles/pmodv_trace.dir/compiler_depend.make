# Empty compiler generated dependencies file for pmodv_trace.
# This may be replaced when dependencies are built.
