file(REMOVE_RECURSE
  "libpmodv_trace.a"
)
