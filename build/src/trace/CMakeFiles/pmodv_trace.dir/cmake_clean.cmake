file(REMOVE_RECURSE
  "CMakeFiles/pmodv_trace.dir/record.cc.o"
  "CMakeFiles/pmodv_trace.dir/record.cc.o.d"
  "CMakeFiles/pmodv_trace.dir/sinks.cc.o"
  "CMakeFiles/pmodv_trace.dir/sinks.cc.o.d"
  "CMakeFiles/pmodv_trace.dir/trace_file.cc.o"
  "CMakeFiles/pmodv_trace.dir/trace_file.cc.o.d"
  "libpmodv_trace.a"
  "libpmodv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
