# CMake generated Testfile for 
# Source directory: /root/repo/src/pmo
# Build directory: /root/repo/build/src/pmo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
