# Empty compiler generated dependencies file for pmodv_pmo.
# This may be replaced when dependencies are built.
