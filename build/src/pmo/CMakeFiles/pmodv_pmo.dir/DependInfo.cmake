
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmo/api.cc" "src/pmo/CMakeFiles/pmodv_pmo.dir/api.cc.o" "gcc" "src/pmo/CMakeFiles/pmodv_pmo.dir/api.cc.o.d"
  "/root/repo/src/pmo/arena.cc" "src/pmo/CMakeFiles/pmodv_pmo.dir/arena.cc.o" "gcc" "src/pmo/CMakeFiles/pmodv_pmo.dir/arena.cc.o.d"
  "/root/repo/src/pmo/pmo_namespace.cc" "src/pmo/CMakeFiles/pmodv_pmo.dir/pmo_namespace.cc.o" "gcc" "src/pmo/CMakeFiles/pmodv_pmo.dir/pmo_namespace.cc.o.d"
  "/root/repo/src/pmo/pool.cc" "src/pmo/CMakeFiles/pmodv_pmo.dir/pool.cc.o" "gcc" "src/pmo/CMakeFiles/pmodv_pmo.dir/pool.cc.o.d"
  "/root/repo/src/pmo/runtime.cc" "src/pmo/CMakeFiles/pmodv_pmo.dir/runtime.cc.o" "gcc" "src/pmo/CMakeFiles/pmodv_pmo.dir/runtime.cc.o.d"
  "/root/repo/src/pmo/txn.cc" "src/pmo/CMakeFiles/pmodv_pmo.dir/txn.cc.o" "gcc" "src/pmo/CMakeFiles/pmodv_pmo.dir/txn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmodv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmodv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pmodv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
