file(REMOVE_RECURSE
  "libpmodv_pmo.a"
)
