file(REMOVE_RECURSE
  "CMakeFiles/pmodv_pmo.dir/api.cc.o"
  "CMakeFiles/pmodv_pmo.dir/api.cc.o.d"
  "CMakeFiles/pmodv_pmo.dir/arena.cc.o"
  "CMakeFiles/pmodv_pmo.dir/arena.cc.o.d"
  "CMakeFiles/pmodv_pmo.dir/pmo_namespace.cc.o"
  "CMakeFiles/pmodv_pmo.dir/pmo_namespace.cc.o.d"
  "CMakeFiles/pmodv_pmo.dir/pool.cc.o"
  "CMakeFiles/pmodv_pmo.dir/pool.cc.o.d"
  "CMakeFiles/pmodv_pmo.dir/runtime.cc.o"
  "CMakeFiles/pmodv_pmo.dir/runtime.cc.o.d"
  "CMakeFiles/pmodv_pmo.dir/txn.cc.o"
  "CMakeFiles/pmodv_pmo.dir/txn.cc.o.d"
  "libpmodv_pmo.a"
  "libpmodv_pmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_pmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
