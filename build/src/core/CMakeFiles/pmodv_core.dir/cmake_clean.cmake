file(REMOVE_RECURSE
  "CMakeFiles/pmodv_core.dir/config.cc.o"
  "CMakeFiles/pmodv_core.dir/config.cc.o.d"
  "CMakeFiles/pmodv_core.dir/replay.cc.o"
  "CMakeFiles/pmodv_core.dir/replay.cc.o.d"
  "CMakeFiles/pmodv_core.dir/system.cc.o"
  "CMakeFiles/pmodv_core.dir/system.cc.o.d"
  "libpmodv_core.a"
  "libpmodv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
