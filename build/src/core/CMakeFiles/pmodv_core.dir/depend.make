# Empty dependencies file for pmodv_core.
# This may be replaced when dependencies are built.
