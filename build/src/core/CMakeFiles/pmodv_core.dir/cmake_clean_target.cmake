file(REMOVE_RECURSE
  "libpmodv_core.a"
)
