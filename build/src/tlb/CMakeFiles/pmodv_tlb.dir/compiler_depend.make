# Empty compiler generated dependencies file for pmodv_tlb.
# This may be replaced when dependencies are built.
