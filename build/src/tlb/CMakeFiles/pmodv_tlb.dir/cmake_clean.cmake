file(REMOVE_RECURSE
  "CMakeFiles/pmodv_tlb.dir/addrspace.cc.o"
  "CMakeFiles/pmodv_tlb.dir/addrspace.cc.o.d"
  "CMakeFiles/pmodv_tlb.dir/hierarchy.cc.o"
  "CMakeFiles/pmodv_tlb.dir/hierarchy.cc.o.d"
  "CMakeFiles/pmodv_tlb.dir/tlb.cc.o"
  "CMakeFiles/pmodv_tlb.dir/tlb.cc.o.d"
  "libpmodv_tlb.a"
  "libpmodv_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
