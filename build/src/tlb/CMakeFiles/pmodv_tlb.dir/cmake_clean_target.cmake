file(REMOVE_RECURSE
  "libpmodv_tlb.a"
)
