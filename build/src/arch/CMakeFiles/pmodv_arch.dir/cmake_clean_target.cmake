file(REMOVE_RECURSE
  "libpmodv_arch.a"
)
