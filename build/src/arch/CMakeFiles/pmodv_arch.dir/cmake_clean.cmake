file(REMOVE_RECURSE
  "CMakeFiles/pmodv_arch.dir/domain_virt.cc.o"
  "CMakeFiles/pmodv_arch.dir/domain_virt.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/dttlb.cc.o"
  "CMakeFiles/pmodv_arch.dir/dttlb.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/factory.cc.o"
  "CMakeFiles/pmodv_arch.dir/factory.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/libmpk.cc.o"
  "CMakeFiles/pmodv_arch.dir/libmpk.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/mpk.cc.o"
  "CMakeFiles/pmodv_arch.dir/mpk.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/mpk_virt.cc.o"
  "CMakeFiles/pmodv_arch.dir/mpk_virt.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/pkru.cc.o"
  "CMakeFiles/pmodv_arch.dir/pkru.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/ptlb.cc.o"
  "CMakeFiles/pmodv_arch.dir/ptlb.cc.o.d"
  "CMakeFiles/pmodv_arch.dir/scheme.cc.o"
  "CMakeFiles/pmodv_arch.dir/scheme.cc.o.d"
  "libpmodv_arch.a"
  "libpmodv_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
