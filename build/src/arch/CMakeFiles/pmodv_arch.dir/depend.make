# Empty dependencies file for pmodv_arch.
# This may be replaced when dependencies are built.
