
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/domain_virt.cc" "src/arch/CMakeFiles/pmodv_arch.dir/domain_virt.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/domain_virt.cc.o.d"
  "/root/repo/src/arch/dttlb.cc" "src/arch/CMakeFiles/pmodv_arch.dir/dttlb.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/dttlb.cc.o.d"
  "/root/repo/src/arch/factory.cc" "src/arch/CMakeFiles/pmodv_arch.dir/factory.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/factory.cc.o.d"
  "/root/repo/src/arch/libmpk.cc" "src/arch/CMakeFiles/pmodv_arch.dir/libmpk.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/libmpk.cc.o.d"
  "/root/repo/src/arch/mpk.cc" "src/arch/CMakeFiles/pmodv_arch.dir/mpk.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/mpk.cc.o.d"
  "/root/repo/src/arch/mpk_virt.cc" "src/arch/CMakeFiles/pmodv_arch.dir/mpk_virt.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/mpk_virt.cc.o.d"
  "/root/repo/src/arch/pkru.cc" "src/arch/CMakeFiles/pmodv_arch.dir/pkru.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/pkru.cc.o.d"
  "/root/repo/src/arch/ptlb.cc" "src/arch/CMakeFiles/pmodv_arch.dir/ptlb.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/ptlb.cc.o.d"
  "/root/repo/src/arch/scheme.cc" "src/arch/CMakeFiles/pmodv_arch.dir/scheme.cc.o" "gcc" "src/arch/CMakeFiles/pmodv_arch.dir/scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmodv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pmodv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/pmodv_tlb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
