file(REMOVE_RECURSE
  "libpmodv_workloads.a"
)
