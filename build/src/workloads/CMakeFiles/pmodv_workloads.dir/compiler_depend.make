# Empty compiler generated dependencies file for pmodv_workloads.
# This may be replaced when dependencies are built.
