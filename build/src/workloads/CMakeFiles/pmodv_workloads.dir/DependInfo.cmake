
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/micro/avl.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/avl.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/avl.cc.o.d"
  "/root/repo/src/workloads/micro/btree.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/btree.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/btree.cc.o.d"
  "/root/repo/src/workloads/micro/linkedlist.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/linkedlist.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/linkedlist.cc.o.d"
  "/root/repo/src/workloads/micro/micro.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/micro.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/micro.cc.o.d"
  "/root/repo/src/workloads/micro/rbt.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/rbt.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/rbt.cc.o.d"
  "/root/repo/src/workloads/micro/stringswap.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/stringswap.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/micro/stringswap.cc.o.d"
  "/root/repo/src/workloads/trace_ctx.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/trace_ctx.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/trace_ctx.cc.o.d"
  "/root/repo/src/workloads/whisper/whisper.cc" "src/workloads/CMakeFiles/pmodv_workloads.dir/whisper/whisper.cc.o" "gcc" "src/workloads/CMakeFiles/pmodv_workloads.dir/whisper/whisper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmodv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmodv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pmo/CMakeFiles/pmodv_pmo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pmodv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
