file(REMOVE_RECURSE
  "CMakeFiles/pmodv_workloads.dir/micro/avl.cc.o"
  "CMakeFiles/pmodv_workloads.dir/micro/avl.cc.o.d"
  "CMakeFiles/pmodv_workloads.dir/micro/btree.cc.o"
  "CMakeFiles/pmodv_workloads.dir/micro/btree.cc.o.d"
  "CMakeFiles/pmodv_workloads.dir/micro/linkedlist.cc.o"
  "CMakeFiles/pmodv_workloads.dir/micro/linkedlist.cc.o.d"
  "CMakeFiles/pmodv_workloads.dir/micro/micro.cc.o"
  "CMakeFiles/pmodv_workloads.dir/micro/micro.cc.o.d"
  "CMakeFiles/pmodv_workloads.dir/micro/rbt.cc.o"
  "CMakeFiles/pmodv_workloads.dir/micro/rbt.cc.o.d"
  "CMakeFiles/pmodv_workloads.dir/micro/stringswap.cc.o"
  "CMakeFiles/pmodv_workloads.dir/micro/stringswap.cc.o.d"
  "CMakeFiles/pmodv_workloads.dir/trace_ctx.cc.o"
  "CMakeFiles/pmodv_workloads.dir/trace_ctx.cc.o.d"
  "CMakeFiles/pmodv_workloads.dir/whisper/whisper.cc.o"
  "CMakeFiles/pmodv_workloads.dir/whisper/whisper.cc.o.d"
  "libpmodv_workloads.a"
  "libpmodv_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmodv_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
