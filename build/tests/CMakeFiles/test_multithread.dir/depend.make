# Empty dependencies file for test_multithread.
# This may be replaced when dependencies are built.
