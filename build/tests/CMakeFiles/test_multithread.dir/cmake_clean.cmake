file(REMOVE_RECURSE
  "CMakeFiles/test_multithread.dir/test_multithread.cc.o"
  "CMakeFiles/test_multithread.dir/test_multithread.cc.o.d"
  "test_multithread"
  "test_multithread.pdb"
  "test_multithread[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
