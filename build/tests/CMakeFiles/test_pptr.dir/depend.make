# Empty dependencies file for test_pptr.
# This may be replaced when dependencies are built.
