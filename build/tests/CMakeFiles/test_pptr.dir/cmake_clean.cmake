file(REMOVE_RECURSE
  "CMakeFiles/test_pptr.dir/test_pptr.cc.o"
  "CMakeFiles/test_pptr.dir/test_pptr.cc.o.d"
  "test_pptr"
  "test_pptr.pdb"
  "test_pptr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pptr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
