file(REMOVE_RECURSE
  "CMakeFiles/test_namespace.dir/test_namespace.cc.o"
  "CMakeFiles/test_namespace.dir/test_namespace.cc.o.d"
  "test_namespace"
  "test_namespace.pdb"
  "test_namespace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_namespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
