# Empty compiler generated dependencies file for test_namespace.
# This may be replaced when dependencies are built.
