# Empty dependencies file for test_txn.
# This may be replaced when dependencies are built.
