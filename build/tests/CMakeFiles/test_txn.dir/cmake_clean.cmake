file(REMOVE_RECURSE
  "CMakeFiles/test_txn.dir/test_txn.cc.o"
  "CMakeFiles/test_txn.dir/test_txn.cc.o.d"
  "test_txn"
  "test_txn.pdb"
  "test_txn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
