# Empty compiler generated dependencies file for test_whisper.
# This may be replaced when dependencies are built.
