file(REMOVE_RECURSE
  "CMakeFiles/test_whisper.dir/test_whisper.cc.o"
  "CMakeFiles/test_whisper.dir/test_whisper.cc.o.d"
  "test_whisper"
  "test_whisper.pdb"
  "test_whisper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whisper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
