# Empty compiler generated dependencies file for test_radix.
# This may be replaced when dependencies are built.
