file(REMOVE_RECURSE
  "CMakeFiles/test_radix.dir/test_radix.cc.o"
  "CMakeFiles/test_radix.dir/test_radix.cc.o.d"
  "test_radix"
  "test_radix.pdb"
  "test_radix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
