file(REMOVE_RECURSE
  "CMakeFiles/test_area.dir/test_area.cc.o"
  "CMakeFiles/test_area.dir/test_area.cc.o.d"
  "test_area"
  "test_area.pdb"
  "test_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
