# Empty compiler generated dependencies file for test_mpk.
# This may be replaced when dependencies are built.
