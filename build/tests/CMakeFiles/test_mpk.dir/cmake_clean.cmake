file(REMOVE_RECURSE
  "CMakeFiles/test_mpk.dir/test_mpk.cc.o"
  "CMakeFiles/test_mpk.dir/test_mpk.cc.o.d"
  "test_mpk"
  "test_mpk.pdb"
  "test_mpk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
