file(REMOVE_RECURSE
  "CMakeFiles/test_libmpk.dir/test_libmpk.cc.o"
  "CMakeFiles/test_libmpk.dir/test_libmpk.cc.o.d"
  "test_libmpk"
  "test_libmpk.pdb"
  "test_libmpk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libmpk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
