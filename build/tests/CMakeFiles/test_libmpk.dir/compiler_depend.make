# Empty compiler generated dependencies file for test_libmpk.
# This may be replaced when dependencies are built.
