file(REMOVE_RECURSE
  "CMakeFiles/test_mpk_virt.dir/test_mpk_virt.cc.o"
  "CMakeFiles/test_mpk_virt.dir/test_mpk_virt.cc.o.d"
  "test_mpk_virt"
  "test_mpk_virt.pdb"
  "test_mpk_virt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpk_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
