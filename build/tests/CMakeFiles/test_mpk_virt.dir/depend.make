# Empty dependencies file for test_mpk_virt.
# This may be replaced when dependencies are built.
