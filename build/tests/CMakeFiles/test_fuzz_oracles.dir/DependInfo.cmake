
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fuzz_oracles.cc" "tests/CMakeFiles/test_fuzz_oracles.dir/test_fuzz_oracles.cc.o" "gcc" "tests/CMakeFiles/test_fuzz_oracles.dir/test_fuzz_oracles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pmodv_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pmodv_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmodv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmo/CMakeFiles/pmodv_pmo.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pmodv_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/pmodv_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pmodv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmodv_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pmodv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmodv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
