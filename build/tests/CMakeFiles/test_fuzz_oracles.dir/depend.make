# Empty dependencies file for test_fuzz_oracles.
# This may be replaced when dependencies are built.
