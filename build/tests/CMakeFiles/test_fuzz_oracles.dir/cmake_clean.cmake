file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_oracles.dir/test_fuzz_oracles.cc.o"
  "CMakeFiles/test_fuzz_oracles.dir/test_fuzz_oracles.cc.o.d"
  "test_fuzz_oracles"
  "test_fuzz_oracles.pdb"
  "test_fuzz_oracles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
