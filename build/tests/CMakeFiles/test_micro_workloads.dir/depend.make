# Empty dependencies file for test_micro_workloads.
# This may be replaced when dependencies are built.
