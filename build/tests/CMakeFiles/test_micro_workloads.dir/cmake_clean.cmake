file(REMOVE_RECURSE
  "CMakeFiles/test_micro_workloads.dir/test_micro_workloads.cc.o"
  "CMakeFiles/test_micro_workloads.dir/test_micro_workloads.cc.o.d"
  "test_micro_workloads"
  "test_micro_workloads.pdb"
  "test_micro_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_micro_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
