file(REMOVE_RECURSE
  "CMakeFiles/test_arena.dir/test_arena.cc.o"
  "CMakeFiles/test_arena.dir/test_arena.cc.o.d"
  "test_arena"
  "test_arena.pdb"
  "test_arena[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
