# Empty compiler generated dependencies file for test_arena.
# This may be replaced when dependencies are built.
