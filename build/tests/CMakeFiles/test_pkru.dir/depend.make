# Empty dependencies file for test_pkru.
# This may be replaced when dependencies are built.
