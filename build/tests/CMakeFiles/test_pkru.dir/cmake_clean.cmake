file(REMOVE_RECURSE
  "CMakeFiles/test_pkru.dir/test_pkru.cc.o"
  "CMakeFiles/test_pkru.dir/test_pkru.cc.o.d"
  "test_pkru"
  "test_pkru.pdb"
  "test_pkru[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pkru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
