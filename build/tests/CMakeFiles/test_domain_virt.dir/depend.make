# Empty dependencies file for test_domain_virt.
# This may be replaced when dependencies are built.
