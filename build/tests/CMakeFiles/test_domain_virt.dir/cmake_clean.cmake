file(REMOVE_RECURSE
  "CMakeFiles/test_domain_virt.dir/test_domain_virt.cc.o"
  "CMakeFiles/test_domain_virt.dir/test_domain_virt.cc.o.d"
  "test_domain_virt"
  "test_domain_virt.pdb"
  "test_domain_virt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
