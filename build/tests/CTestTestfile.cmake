# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_pkru[1]_include.cmake")
include("/root/repo/build/tests/test_radix[1]_include.cmake")
include("/root/repo/build/tests/test_mpk[1]_include.cmake")
include("/root/repo/build/tests/test_mpk_virt[1]_include.cmake")
include("/root/repo/build/tests/test_domain_virt[1]_include.cmake")
include("/root/repo/build/tests/test_libmpk[1]_include.cmake")
include("/root/repo/build/tests/test_schemes[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_arena[1]_include.cmake")
include("/root/repo/build/tests/test_pool[1]_include.cmake")
include("/root/repo/build/tests/test_txn[1]_include.cmake")
include("/root/repo/build/tests/test_namespace[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_micro_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_whisper[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_area[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_oracles[1]_include.cmake")
include("/root/repo/build/tests/test_multithread[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_pptr[1]_include.cmake")
