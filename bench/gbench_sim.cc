/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate: host
 * throughput of TLB translation, cache access, protection checks and
 * full trace-record replay — the numbers that determine how fast the
 * table/figure experiments run.
 */

#include <string>

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/system.hh"
#include "exp/executor.hh"

namespace
{

using namespace pmodv;
using arch::SchemeKind;
using trace::TraceRecord;

constexpr Addr kBase = Addr{1} << 33;
constexpr Addr kSize = Addr{8} << 20;

void
BM_CacheAccess(benchmark::State &state)
{
    stats::Group root(nullptr, "");
    mem::CacheHierarchy caches(&root, {});
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(caches.access(rng.next(1 << 26),
                                               AccessType::Read,
                                               MemClass::Dram));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbTranslate(benchmark::State &state)
{
    stats::Group root(nullptr, "");
    tlb::AddressSpace space;
    tlb::Region region;
    region.base = kBase;
    region.size = kSize;
    region.domain = 1;
    region.memClass = MemClass::Nvm;
    space.map(region);
    tlb::TlbHierarchy tlbs(&root, {}, space);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlbs.translate(0, kBase + rng.next(kSize)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbTranslate);

/** Label like "mpk_virt/64K" for a scheme + working-set pair. */
std::string
replayLabel(SchemeKind kind, Addr range)
{
    const auto kb = static_cast<unsigned long long>(range >> 10);
    return std::string(arch::schemeName(kind)) + "/" +
           (kb >= 1024 ? std::to_string(kb >> 10) + "M"
                       : std::to_string(kb) + "K");
}

void
BM_ReplayRecordThroughput(benchmark::State &state)
{
    // Arg 1 is log2 of the touched address range: 16 (64KB — TLB and
    // cache resident, the engine-bound regime) or 23 (8MB — every
    // level thrashes, the model-bound regime).
    const auto kind = static_cast<SchemeKind>(state.range(0));
    const Addr range = Addr{1} << state.range(1);
    core::SimConfig cfg;
    core::System sys(cfg, kind);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    Rng rng(7);
    for (auto _ : state) {
        sys.put(TraceRecord::load(0, kBase + rng.next(range - 8), 8,
                                  true));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(replayLabel(kind, range));
}
BENCHMARK(BM_ReplayRecordThroughput)
    ->Args({static_cast<int>(SchemeKind::NoProtection), 16})
    ->Args({static_cast<int>(SchemeKind::Mpk), 16})
    ->Args({static_cast<int>(SchemeKind::MpkVirt), 16})
    ->Args({static_cast<int>(SchemeKind::DomainVirt), 16})
    ->Args({static_cast<int>(SchemeKind::LibMpk), 16})
    ->Args({static_cast<int>(SchemeKind::NoProtection), 23})
    ->Args({static_cast<int>(SchemeKind::MpkVirt), 23})
    ->Args({static_cast<int>(SchemeKind::DomainVirt), 23});

void
BM_ReplayBatchThroughput(benchmark::State &state)
{
    // The batch engine on the same access stream as
    // BM_ReplayRecordThroughput: one immutable TraceBuffer replayed
    // via System::replayBatch. The ratio of the two benchmarks is the
    // devirtualized hot loop's speedup.
    const auto kind = static_cast<SchemeKind>(state.range(0));
    const Addr range = Addr{1} << state.range(1);
    core::SimConfig cfg;
    core::System sys(cfg, kind);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    constexpr std::size_t kBatch = 65536;
    std::vector<TraceRecord> records;
    records.reserve(kBatch);
    Rng rng(7);
    for (std::size_t i = 0; i < kBatch; ++i) {
        records.push_back(
            TraceRecord::load(0, kBase + rng.next(range - 8), 8, true));
    }
    const auto buf = trace::TraceBuffer::fromRecords(std::move(records));
    for (auto _ : state)
        sys.replayBatch(buf->records());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf->size()));
    // How often the L1 TLB's one-entry L0 filter answered a lookup —
    // near zero in this random-page regime, near one for streaming
    // workloads (see BM_L0FilterHitRate).
    tlb::Tlb &l1 = sys.tlbs().l1();
    const double lookups = l1.hits.value() + l1.misses.value();
    state.counters["l0_hit_rate"] =
        lookups == 0 ? 0.0
                     : static_cast<double>(l1.l0Hits()) / lookups;
    state.SetLabel(replayLabel(kind, range));
}
BENCHMARK(BM_ReplayBatchThroughput)
    ->Args({static_cast<int>(SchemeKind::NoProtection), 16})
    ->Args({static_cast<int>(SchemeKind::Mpk), 16})
    ->Args({static_cast<int>(SchemeKind::MpkVirt), 16})
    ->Args({static_cast<int>(SchemeKind::DomainVirt), 16})
    ->Args({static_cast<int>(SchemeKind::LibMpk), 16})
    ->Args({static_cast<int>(SchemeKind::NoProtection), 23})
    ->Args({static_cast<int>(SchemeKind::MpkVirt), 23})
    ->Args({static_cast<int>(SchemeKind::DomainVirt), 23});

void
BM_L0FilterHitRate(benchmark::State &state)
{
    // Streaming regime: 64 sequential 8-byte loads per 4K page, so
    // 63 of every 64 lookups repeat the last-translated page and
    // should be answered by the L0 filter. Throughput here shows the
    // filter-friendly fast path; the counter proves the filter works
    // (expected l0_hit_rate ~= 0.98).
    const auto kind = static_cast<SchemeKind>(state.range(0));
    core::SimConfig cfg;
    core::System sys(cfg, kind);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    constexpr std::size_t kBatch = 65536;
    constexpr std::size_t kPerPage = 64;
    std::vector<TraceRecord> records;
    records.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
        const Addr va = kBase + (i / kPerPage) * 4096 +
                        (i % kPerPage) * 8;
        records.push_back(TraceRecord::load(0, va, 8, true));
    }
    const auto buf = trace::TraceBuffer::fromRecords(std::move(records));
    for (auto _ : state)
        sys.replayBatch(buf->records());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf->size()));
    tlb::Tlb &l1 = sys.tlbs().l1();
    const double lookups = l1.hits.value() + l1.misses.value();
    state.counters["l0_hit_rate"] =
        lookups == 0 ? 0.0
                     : static_cast<double>(l1.l0Hits()) / lookups;
    state.SetLabel(std::string(arch::schemeName(kind)) + "/stream");
}
BENCHMARK(BM_L0FilterHitRate)
    ->Arg(static_cast<int>(SchemeKind::NoProtection))
    ->Arg(static_cast<int>(SchemeKind::DomainVirt));

void
BM_ReplayMultiCoreThroughput(benchmark::State &state)
{
    // The K-core batch engine: one round-robin-interleaved stream
    // with a worker thread pinned per core, each hammering its own
    // PMO under MPK virtualization. Records/sec here is the cost of
    // the per-core context switch in the hot loop (core lookup +
    // shootdown-bus checks); compare against the 1-core row to see
    // the multi-core plumbing's engine overhead.
    const auto cores = static_cast<unsigned>(state.range(0));
    core::SimConfig cfg;
    cfg.topology.numCores = cores;
    core::System sys(cfg, SchemeKind::MpkVirt);
    const Addr stride = Addr{16} << 20;
    for (unsigned t = 0; t < cores; ++t) {
        sys.put(TraceRecord::attach(t, t + 1, kBase + t * stride,
                                    kSize, Perm::ReadWrite));
        sys.put(TraceRecord::setPerm(t, t + 1, Perm::ReadWrite));
    }
    constexpr std::size_t kBatch = 65536;
    std::vector<TraceRecord> records;
    records.reserve(kBatch);
    Rng rng(7);
    for (std::size_t i = 0; i < kBatch; ++i) {
        const auto t = static_cast<ThreadId>(i % cores);
        records.push_back(TraceRecord::load(
            t, kBase + t * stride + rng.next(kSize - 8), 8, true));
    }
    const auto buf = trace::TraceBuffer::fromRecords(std::move(records));
    for (auto _ : state)
        sys.replayBatch(buf->records());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf->size()));
    state.SetLabel("mpk_virt/" + std::to_string(cores) + "core");
}
BENCHMARK(BM_ReplayMultiCoreThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void
BM_MultiDomainReplay(benchmark::State &state)
{
    // The hot loop of the Figure 6 sweeps: accesses spread over many
    // domains under MPK virtualization (constant remap pressure).
    core::SimConfig cfg;
    core::System sys(cfg, SchemeKind::MpkVirt);
    const unsigned domains = static_cast<unsigned>(state.range(0));
    const Addr stride = Addr{16} << 20;
    for (unsigned i = 0; i < domains; ++i) {
        sys.put(TraceRecord::attach(0, i + 1, kBase + i * stride,
                                    kSize, Perm::ReadWrite));
        sys.put(TraceRecord::setPerm(0, i + 1, Perm::ReadWrite));
    }
    Rng rng(7);
    for (auto _ : state) {
        const unsigned d = static_cast<unsigned>(rng.next(domains));
        sys.put(TraceRecord::load(
            0, kBase + d * stride + rng.next(kSize - 8), 8, true));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiDomainReplay)->Arg(16)->Arg(64)->Arg(256);

void
BM_ReplaySamplingOverhead(benchmark::State &state)
{
    // Cost of the timeline profiler on the replay hot loop. Arg 0 is
    // the epoch width in cycles (0 = sampling disabled — the default
    // configuration, whose throughput must stay within noise of the
    // pre-profiler replay loop; the tick is one predictable
    // compare-and-branch). Compare the 0 row against the others to
    // see the enabled cost shrink as epochs widen.
    core::SimConfig cfg;
    cfg.samplingEpochCycles = static_cast<Cycles>(state.range(0));
    cfg.samplingMaxEpochs = 256;
    core::System sys(cfg, SchemeKind::MpkVirt);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    Rng rng(7);
    for (auto _ : state) {
        sys.put(TraceRecord::load(0, kBase + rng.next(kSize - 8), 8,
                                  true));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(state.range(0) == 0
                       ? "sampling off"
                       : "epoch=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ReplaySamplingOverhead)
    ->Arg(0)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);

void
BM_ExecutorMicroPoints(benchmark::State &state)
{
    // A small Figure-6-shaped batch through the parallel executor —
    // how experiment wall-clock scales with the worker count.
    common::ThreadPool pool(static_cast<unsigned>(state.range(0)));
    exp::Executor executor(pool);
    std::vector<exp::MicroPointSpec> specs;
    for (unsigned pmos : {16u, 64u, 256u}) {
        exp::MicroPointSpec spec;
        spec.benchmark = "avl";
        spec.params.numPmos = pmos;
        spec.params.numOps = 2'000;
        spec.params.initialNodes = 256;
        spec.schemes = {SchemeKind::MpkVirt, SchemeKind::DomainVirt};
        specs.push_back(std::move(spec));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(executor.runMicro(specs));
    state.SetItemsProcessed(state.iterations() * specs.size());
}
BENCHMARK(BM_ExecutorMicroPoints)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
