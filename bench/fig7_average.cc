/**
 * @file
 * Reproduces Figure 7: the five microbenchmarks' overheads averaged
 * per PMO count, for libmpk, HW MPK virtualization, HW domain
 * virtualization and the lowerbound — plus the headline speedups the
 * paper quotes: at 64 PMOs, MPK virtualization 10.1x and domain
 * virtualization 25.8x faster than libmpk; at 1024 PMOs, 10.6x and
 * 52.5x.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pmodv;
    using arch::SchemeKind;
    const auto opt = bench::parseOptions(argc, argv);

    exp::SweepSpec sweep;
    sweep.pmoCounts = bench::defaultSweep(opt);
    sweep.base.initialNodes = 1024;
    sweep.base.numOps = opt.ops ? opt.ops : (opt.quick ? 5'000 : 30'000);
    if (opt.full)
        sweep.base.numOps = 1'000'000;
    sweep.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                     SchemeKind::DomainVirt};
    bench::applyObservability(sweep.config, opt);

    exp::ExperimentSuite suite("fig7_average");
    suite.add(sweep);
    common::ThreadPool pool(opt.jobs);
    bench::Profiler profiler(suite, sweep.config, opt);
    suite.run(pool);

    std::printf("=== Figure 7: average overhead over lowerbound vs "
                "#PMOs (%llu ops/point) ===\n\n",
                static_cast<unsigned long long>(sweep.base.numOps));
    std::printf("%8s %14s %14s %14s %18s %18s\n", "#PMOs", "libmpk(%)",
                "mpk_virt(%)", "domain_virt(%)", "libmpk/mpk_virt",
                "libmpk/domain");
    pmodv::bench::rule(92);

    std::map<unsigned, std::map<SchemeKind, double>> sums;
    for (const exp::MicroPoint &pt : suite.microRows()) {
        for (SchemeKind k : sweep.schemes)
            sums[pt.numPmos][k] += pt.overheadPct.at(k);
    }

    const double n =
        static_cast<double>(workloads::microNames().size());
    for (unsigned pmos : sweep.pmoCounts) {
        auto &sum = sums.at(pmos);
        const double lib = sum[SchemeKind::LibMpk] / n;
        const double mpkv = sum[SchemeKind::MpkVirt] / n;
        const double domv = sum[SchemeKind::DomainVirt] / n;
        std::printf("%8u %14.1f %14.1f %14.1f %17.1fx %17.1fx\n", pmos,
                    lib, mpkv, domv, mpkv > 0 ? lib / mpkv : 0,
                    domv > 0 ? lib / domv : 0);
    }
    pmodv::bench::rule(92);

    std::printf("\nPaper headline factors: @64 PMOs libmpk/mpk_virt = "
                "10.1x, libmpk/domain_virt = 25.8x;\n"
                "                        @1024 PMOs                 = "
                "10.6x,                      = 52.5x.\n");
    // stderr so the stdout table is byte-identical across --jobs.
    std::fprintf(stderr, "(sweep wall-clock: %.2f s on %u worker%s)\n",
                 suite.wallSeconds(), suite.jobs(),
                 suite.jobs() == 1 ? "" : "s");
    bench::writeJsonIfRequested(suite, opt);
    bench::dumpStatsIfRequested(suite, opt);
    profiler.writeTrace();
    return 0;
}
