/**
 * @file
 * Reproduces Figure 7: the five microbenchmarks' overheads averaged
 * per PMO count, for libmpk, HW MPK virtualization, HW domain
 * virtualization and the lowerbound — plus the headline speedups the
 * paper quotes: at 64 PMOs, MPK virtualization 10.1x and domain
 * virtualization 25.8x faster than libmpk; at 1024 PMOs, 10.6x and
 * 52.5x.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "exp/experiments.hh"

int
main(int argc, char **argv)
{
    using namespace pmodv;
    using arch::SchemeKind;
    const auto opt = bench::parseOptions(argc, argv);

    auto sweep = bench::defaultSweep(opt);
    workloads::MicroParams base;
    base.initialNodes = 1024;
    base.numOps = opt.ops ? opt.ops : (opt.quick ? 5'000 : 30'000);
    if (opt.full)
        base.numOps = 1'000'000;

    core::SimConfig config;
    const std::vector<SchemeKind> schemes{
        SchemeKind::LibMpk, SchemeKind::MpkVirt, SchemeKind::DomainVirt};

    std::printf("=== Figure 7: average overhead over lowerbound vs "
                "#PMOs (%llu ops/point) ===\n\n",
                static_cast<unsigned long long>(base.numOps));
    std::printf("%8s %14s %14s %14s %18s %18s\n", "#PMOs", "libmpk(%)",
                "mpk_virt(%)", "domain_virt(%)", "libmpk/mpk_virt",
                "libmpk/domain");
    pmodv::bench::rule(92);

    std::map<unsigned, std::map<SchemeKind, double>> averages;
    for (unsigned pmos : sweep) {
        std::map<SchemeKind, double> sum;
        for (const auto &name : workloads::microNames()) {
            workloads::MicroParams mp = base;
            mp.numPmos = pmos;
            const auto pt =
                exp::runMicroPoint(name, mp, config, schemes);
            for (SchemeKind k : schemes)
                sum[k] += pt.overheadPct.at(k);
        }
        for (SchemeKind k : schemes)
            sum[k] /= static_cast<double>(workloads::microNames().size());
        averages[pmos] = sum;

        const double lib = sum[SchemeKind::LibMpk];
        const double mpkv = sum[SchemeKind::MpkVirt];
        const double domv = sum[SchemeKind::DomainVirt];
        std::printf("%8u %14.1f %14.1f %14.1f %17.1fx %17.1fx\n", pmos,
                    lib, mpkv, domv, mpkv > 0 ? lib / mpkv : 0,
                    domv > 0 ? lib / domv : 0);
    }
    pmodv::bench::rule(92);

    std::printf("\nPaper headline factors: @64 PMOs libmpk/mpk_virt = "
                "10.1x, libmpk/domain_virt = 25.8x;\n"
                "                        @1024 PMOs                 = "
                "10.6x,                      = 52.5x.\n");
    return 0;
}
