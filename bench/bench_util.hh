/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: a tiny
 * CLI parser (--quick / --full / --ops N / --pmos a,b,c /
 * --cores a,b,c / --jobs N / --json FILE / --dump-stats / --epoch N /
 * --trace-out FILE / --progress) and table formatting utilities.
 */

#ifndef PMODV_BENCH_BENCH_UTIL_HH
#define PMODV_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/suite.hh"
#include "exp/trace_export.hh"

namespace pmodv::bench
{

/** Common options for experiment binaries. */
struct Options
{
    /** Operation/transaction count scale. */
    std::uint64_t ops = 0; ///< 0 = use the binary's default.
    bool quick = false;    ///< Shrink everything for smoke runs.
    bool full = false;     ///< Paper-scale run (slow).
    bool csv = false;      ///< Machine-readable output (plotting).
    std::vector<unsigned> pmoCounts;
    /** Tenant counts for server sweeps (--tenants a,b,c). */
    std::vector<unsigned> tenantCounts;
    /** Simulated core counts (--cores a,b,c); empty = single core. */
    std::vector<unsigned> coreCounts;
    /** Worker threads for the experiment executor; 0 = hardware
     *  concurrency (the common::ThreadPool default). */
    unsigned jobs = 0;
    /** Write the suite's JSON report here ("" = don't). */
    std::string jsonPath;
    /** Print every row's per-scheme stats tree to stdout. */
    bool dumpStats = false;
    /** Cycles per timeline sampling epoch (0 = sampling off). */
    std::uint64_t epochCycles = 0;
    /** Write a Perfetto/Chrome trace-event JSON here ("" = don't). */
    std::string traceOut;
    /** Periodic replay progress on stderr. */
    bool progress = false;
};

/** Parse a comma-separated unsigned list ("1,2,4"). */
inline std::vector<unsigned>
parseUnsignedList(const std::string &list)
{
    std::vector<unsigned> out;
    std::size_t pos = 0;
    while (pos < list.size()) {
        auto comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        out.push_back(static_cast<unsigned>(
            std::stoul(list.substr(pos, comma - pos))));
        pos = comma + 1;
    }
    return out;
}

inline Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--full") {
            opt.full = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--ops" && i + 1 < argc) {
            opt.ops = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (arg == "--dump-stats") {
            opt.dumpStats = true;
        } else if (arg == "--epoch" && i + 1 < argc) {
            opt.epochCycles = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--trace-out" && i + 1 < argc) {
            opt.traceOut = argv[++i];
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg == "--pmos" && i + 1 < argc) {
            opt.pmoCounts = parseUnsignedList(argv[++i]);
        } else if (arg == "--tenants" && i + 1 < argc) {
            opt.tenantCounts = parseUnsignedList(argv[++i]);
        } else if (arg == "--cores" && i + 1 < argc) {
            opt.coreCounts = parseUnsignedList(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--quick|--full] [--csv] [--ops N] "
                        "[--pmos a,b,c] [--tenants a,b,c] "
                        "[--cores a,b,c] [--jobs N] "
                        "[--json FILE] [--dump-stats] [--epoch CYCLES] "
                        "[--trace-out FILE] [--progress]\n",
                        argv[0]);
            std::exit(0);
        }
    }
    return opt;
}

/**
 * Honor --epoch / --trace-out on a point's SimConfig. Call on each
 * spec's config BEFORE registering it with the suite (specs are
 * copied at add()). --trace-out implies epoch sampling (so the trace
 * has counter tracks) and a wide event ring (so transaction spans
 * survive to the export).
 */
inline void
applyObservability(core::SimConfig &config, const Options &opt)
{
    std::uint64_t epoch = opt.epochCycles;
    if (!opt.traceOut.empty()) {
        config.eventRingCapacity = 65536;
        if (epoch == 0)
            epoch = 65536;
    }
    if (epoch != 0) {
        config.samplingEpochCycles = epoch;
        config.samplingMaxEpochs = 256;
    }
}

/**
 * Owns the bench binary's optional Perfetto exporter and wires
 * --progress / --trace-out into the suite. Construct (on the stack)
 * before suite.run(), call writeTrace() after it.
 */
class Profiler
{
  public:
    Profiler(exp::ExperimentSuite &suite, const core::SimConfig &config,
             const Options &opt)
        : exporter_(exp::makeExporter(config)), opt_(opt)
    {
        suite.setProgress(opt.progress);
        if (!opt.traceOut.empty())
            suite.setPerfettoExporter(&exporter_);
    }

    /** Honor --trace-out (warn to stderr on failure). */
    void writeTrace() const
    {
        if (opt_.traceOut.empty())
            return;
        std::ofstream out(opt_.traceOut);
        if (!out) {
            std::fprintf(stderr, "error: cannot write trace to %s\n",
                         opt_.traceOut.c_str());
            return;
        }
        exporter_.write(out);
        std::fprintf(stderr,
                     "[trace] wrote %zu events on %zu tracks to %s\n",
                     exporter_.numEvents(), exporter_.numTracks(),
                     opt_.traceOut.c_str());
    }

  private:
    trace::PerfettoExporter exporter_;
    const Options &opt_;
};

/** Horizontal rule sized to a table width. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

/** The PMO-count sweep used by Figures 6/7 (paper: 16..1024). */
inline std::vector<unsigned>
defaultSweep(const Options &opt)
{
    if (!opt.pmoCounts.empty())
        return opt.pmoCounts;
    if (opt.quick)
        return {16, 128, 1024};
    if (opt.full)
        return {16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024};
    return {16, 32, 64, 128, 256, 512, 1024};
}

/** Honor --json: write the suite's report (warn to stderr on failure). */
inline void
writeJsonIfRequested(const exp::ExperimentSuite &suite,
                     const Options &opt)
{
    if (opt.jsonPath.empty())
        return;
    if (!suite.writeJsonFile(opt.jsonPath)) {
        std::fprintf(stderr, "error: cannot write JSON report to %s\n",
                     opt.jsonPath.c_str());
    }
}

/**
 * Honor --dump-stats: print each row's per-scheme stats tree (the
 * same compact JSON embedded in --json reports) to stdout.
 */
inline void
dumpStatsIfRequested(const exp::ExperimentSuite &suite,
                     const Options &opt)
{
    if (!opt.dumpStats)
        return;
    for (const exp::MicroPoint &pt : suite.microRows()) {
        for (const auto &[kind, json] : pt.statsJson) {
            std::printf("# stats %s pmos=%u %s\n%s\n",
                        pt.benchmark.c_str(), pt.numPmos,
                        arch::schemeName(kind), json.c_str());
        }
    }
    for (const exp::WhisperRow &row : suite.whisperRows()) {
        for (const auto &[kind, json] : row.statsJson) {
            std::printf("# stats %s %s\n%s\n", row.benchmark.c_str(),
                        arch::schemeName(kind), json.c_str());
        }
    }
    for (const exp::ServerRow &row : suite.serverRows()) {
        for (const auto &[kind, json] : row.statsJson) {
            std::printf("# stats %s tenants=%u %s\n%s\n",
                        row.benchmark.c_str(), row.numTenants,
                        arch::schemeName(kind), json.c_str());
        }
    }
}

} // namespace pmodv::bench

#endif // PMODV_BENCH_BENCH_UTIL_HH
