/**
 * @file
 * Reproduces Table VIII: the hardware-area and per-process memory
 * overheads of the two designs, computed from the configured buffer
 * geometries at the paper's scale (1024 domains, 1024 threads).
 */

#include <iostream>

#include "bench_util.hh"
#include "exp/area.hh"

int
main(int argc, char **argv)
{
    pmodv::bench::parseOptions(argc, argv);
    std::cout << "=== Table VIII: area overhead summary ===\n\n";
    pmodv::exp::AreaInputs in;
    pmodv::exp::printAreaTable(std::cout, in);
    std::cout << "\nDTT, DRT and PT are cacheable software structures "
                 "in the paging system; only the DTTLB and PTLB\n"
                 "need dedicated hardware, and both stay below 0.2 KB "
                 "per core.\n";
    return 0;
}
