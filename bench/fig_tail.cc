/**
 * @file
 * Tail latency of the open-loop multi-tenant KV server: scheme x
 * tenant-count (x cores) request-latency quantiles.
 *
 * The experiment the closed-loop figures can't show: requests arrive
 * on a seeded open-loop process (the arrival stamps are part of the
 * captured trace, identical for every scheme), so a scheme whose
 * per-request service time inflates — libmpk and MPK virtualization
 * re-keying on nearly every permission switch once the tenant count
 * is far past the 16-key limit — doesn't just run longer, it *falls
 * behind the arrival process* and queues. The p99/p50 ratio then
 * diverges while domain virtualization, whose service time is
 * tenant-count-independent, stays near-flat. Queue_p99 shows the
 * queueing component directly.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pmodv;
    using arch::SchemeKind;
    const auto opt = bench::parseOptions(argc, argv);

    exp::ServerSweepSpec sweep;
    sweep.tenantCounts =
        !opt.tenantCounts.empty()
            ? opt.tenantCounts
            : (opt.quick
                   ? std::vector<unsigned>{16, 256}
                   : std::vector<unsigned>{16, 64, 256, 1024, 4096});
    if (!opt.coreCounts.empty())
        sweep.coreCounts = opt.coreCounts;
    sweep.base.numRequests =
        opt.ops ? opt.ops : (opt.quick ? 4'000 : 20'000);
    sweep.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                     SchemeKind::DomainVirt};
    // Tail forensics: keep the 8 slowest requests per scheme (and per
    // tenant class) with their blame breakdowns, so the blame columns
    // below — and `pmodv-trace explain` on the --json output — can
    // say WHY a p99 is slow, not just that it is.
    sweep.config.slowRequestK = 8;
    bench::applyObservability(sweep.config, opt);

    exp::ExperimentSuite suite("fig_tail");
    suite.add(sweep);
    common::ThreadPool pool(opt.jobs);
    bench::Profiler profiler(suite, sweep.config, opt);
    suite.run(pool);

    std::printf("=== Open-loop KV server tail latency: arrival-to-"
                "completion cycles vs #tenants (%llu requests/point, "
                "mean gap %.0f cyc) ===\n",
                static_cast<unsigned long long>(sweep.base.numRequests),
                sweep.base.meanInterArrivalCycles);

    const std::vector<SchemeKind> cols{
        SchemeKind::NoProtection, SchemeKind::LibMpk,
        SchemeKind::MpkVirt, SchemeKind::DomainVirt};

    if (opt.csv) {
        std::printf("tenants,cores,scheme,class,samples,p50,p99,p999,"
                    "queue_p50,queue_p99,cohort_queue_share,"
                    "blamed_events,top_domain\n");
        for (const exp::ServerRow &row : suite.serverRows()) {
            for (SchemeKind k : cols) {
                const exp::ServerLatency &lat = row.latency.at(k);
                const auto blame = row.blame.find(k);
                std::printf("%u,%u,%s,all,%llu,%.0f,%.0f,%.0f,%.0f,"
                            "%.0f",
                            row.numTenants, row.cores,
                            arch::schemeName(k),
                            static_cast<unsigned long long>(lat.samples),
                            lat.p50, lat.p99, lat.p999, lat.queueP50,
                            lat.queueP99);
                if (blame != row.blame.end()) {
                    std::printf(",%.4f,%llu,%llu\n",
                                blame->second.cohortQueueShare,
                                static_cast<unsigned long long>(
                                    blame->second.blamedEvents),
                                static_cast<unsigned long long>(
                                    blame->second.topDomain));
                } else {
                    std::printf(",,,\n");
                }
                for (const exp::ServerClassLatency &cls : lat.classes) {
                    std::printf(
                        "%u,%u,%s,%s,%llu,%.0f,%.0f,%.0f,%.0f,%.0f"
                        ",,,\n",
                        row.numTenants, row.cores, arch::schemeName(k),
                        cls.name.c_str(),
                        static_cast<unsigned long long>(cls.samples),
                        cls.p50, cls.p99, cls.p999, cls.queueP50,
                        cls.queueP99);
                }
            }
        }
    } else {
        for (const exp::ServerRow &row : suite.serverRows()) {
            std::printf("\n-- %u tenants, %u core%s --\n",
                        row.numTenants, row.cores,
                        row.cores == 1 ? "" : "s");
            std::printf("%12s %10s %10s %10s %9s %10s %8s %7s\n",
                        "scheme", "p50", "p99", "p999", "p99/p50",
                        "queue_p99", "q_share", "blamed");
            bench::rule(83);
            for (SchemeKind k : cols) {
                const exp::ServerLatency &lat = row.latency.at(k);
                std::printf("%12s %10.0f %10.0f %10.0f %9.2f %10.0f",
                            arch::schemeName(k), lat.p50, lat.p99,
                            lat.p999,
                            lat.p50 == 0 ? 0.0 : lat.p99 / lat.p50,
                            lat.queueP99);
                // Blame columns: what share of the p99 cohort's
                // latency is queueing, and how many ring events were
                // blamed on its windows.
                const auto blame = row.blame.find(k);
                if (blame != row.blame.end()) {
                    std::printf(" %7.0f%% %7llu\n",
                                100.0 * blame->second.cohortQueueShare,
                                static_cast<unsigned long long>(
                                    blame->second.blamedEvents));
                } else {
                    std::printf(" %8s %7s\n", "-", "-");
                }
            }
        }
        std::printf(
            "\nReading the table: arrivals are stamped into the trace, "
            "so every scheme serves the\nidentical request stream. "
            "Past 16 tenants the MPK-keyed schemes re-key on nearly\n"
            "every request; their service time inflates until the "
            "server falls behind the open-\nloop arrivals and "
            "queueing delay — not service time — dominates p99. "
            "Domain\nvirtualization's switch cost is "
            "tenant-count-independent, so its tail stays flat.\n");
    }
    // stderr so the stdout table is byte-identical across --jobs.
    std::fprintf(stderr, "(sweep wall-clock: %.2f s on %u worker%s)\n",
                 suite.wallSeconds(), suite.jobs(),
                 suite.jobs() == 1 ? "" : "s");
    bench::writeJsonIfRequested(suite, opt);
    bench::dumpStatsIfRequested(suite, opt);
    profiler.writeTrace();
    return 0;
}
