/**
 * @file
 * Extension of Figure 7 to multi-core machines: the scheme x PMOs x
 * cores overhead surface on the AVL microbenchmark (one worker thread
 * pinned per simulated core).
 *
 * The point of the experiment is the paper's structural argument at
 * scale: every key eviction under libmpk / MPK virtualization now
 * broadcasts a TLB shootdown whose cost grows with the number of
 * *responding* cores (cores whose private TLBs hold stale entries of
 * the victim PMO), while domain virtualization never shoots down at
 * all — its overhead column stays flat as the core count climbs. The
 * tlb_invalidation breakdown column makes the mechanism visible
 * directly.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pmodv;
    using arch::SchemeKind;
    const auto opt = bench::parseOptions(argc, argv);

    exp::SweepSpec sweep;
    sweep.benchmarks = {"avl"};
    sweep.pmoCounts = !opt.pmoCounts.empty()
                          ? opt.pmoCounts
                          : (opt.quick ? std::vector<unsigned>{64, 256}
                                       : std::vector<unsigned>{64, 256,
                                                               1024});
    sweep.coreCounts =
        !opt.coreCounts.empty()
            ? opt.coreCounts
            : (opt.quick ? std::vector<unsigned>{1, 2, 4}
                         : std::vector<unsigned>{1, 2, 4, 8});
    sweep.base.initialNodes = 1024;
    sweep.base.numOps = opt.ops ? opt.ops : (opt.quick ? 4'000 : 20'000);
    sweep.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                     SchemeKind::DomainVirt};
    bench::applyObservability(sweep.config, opt);

    exp::ExperimentSuite suite("fig7_scale");
    suite.add(sweep);
    common::ThreadPool pool(opt.jobs);
    bench::Profiler profiler(suite, sweep.config, opt);
    suite.run(pool);

    std::printf("=== Figure 7 at scale: overhead over lowerbound vs "
                "#PMOs x #cores (avl, %llu ops/point) ===\n",
                static_cast<unsigned long long>(sweep.base.numOps));

    if (opt.csv) {
        std::printf("benchmark,pmos,cores,libmpk_pct,mpk_virt_pct,"
                    "domain_virt_pct,libmpk_inval_pct,"
                    "mpk_virt_inval_pct,mpk_virt_remaps,"
                    "libmpk_ipis,mpk_virt_ipis,domain_virt_ipis\n");
        for (const exp::MicroPoint &pt : suite.microRows()) {
            std::printf(
                "%s,%u,%u,%.3f,%.3f,%.3f,%.3f,%.3f,%.0f,%.0f,%.0f,"
                "%.0f\n",
                pt.benchmark.c_str(), pt.numPmos, pt.cores,
                pt.overheadPct.at(SchemeKind::LibMpk),
                pt.overheadPct.at(SchemeKind::MpkVirt),
                pt.overheadPct.at(SchemeKind::DomainVirt),
                pt.breakdown.at(SchemeKind::LibMpk).tlbInvalidationPct,
                pt.breakdown.at(SchemeKind::MpkVirt).tlbInvalidationPct,
                pt.keyRemaps.at(SchemeKind::MpkVirt),
                pt.ipisResponded.at(SchemeKind::LibMpk),
                pt.ipisResponded.at(SchemeKind::MpkVirt),
                pt.ipisResponded.at(SchemeKind::DomainVirt));
        }
    } else {
        for (unsigned pmos : sweep.pmoCounts) {
            std::printf("\n-- %u PMOs --\n", pmos);
            std::printf("%7s %12s %12s %14s | %13s %13s %13s\n",
                        "cores", "libmpk(%)", "mpk_virt(%)",
                        "domain_virt(%)", "libmpk IPIs", "mpk_v IPIs",
                        "dom_v IPIs");
            bench::rule(92);
            for (const exp::MicroPoint &pt : suite.microRows()) {
                if (pt.numPmos != pmos)
                    continue;
                std::printf(
                    "%7u %12.1f %12.1f %14.1f | %13.0f %13.0f %13.0f\n",
                    pt.cores, pt.overheadPct.at(SchemeKind::LibMpk),
                    pt.overheadPct.at(SchemeKind::MpkVirt),
                    pt.overheadPct.at(SchemeKind::DomainVirt),
                    pt.ipisResponded.at(SchemeKind::LibMpk),
                    pt.ipisResponded.at(SchemeKind::MpkVirt),
                    pt.ipisResponded.at(SchemeKind::DomainVirt));
            }
        }
        std::printf(
            "\nReading the surface: the IPI columns count remote "
            "cores that held stale TLB entries of\nan evicted PMO "
            "and paid the ranged-invalidation charge. They grow "
            "with the core count\nfor libmpk and MPK virtualization "
            "— every extra core is another potential responder —\n"
            "and are identically zero for domain virtualization, "
            "which revokes by editing the PT and\nnever shoots "
            "down. This is the paper's second design winning at "
            "scale.\n");
    }
    // stderr so the stdout table is byte-identical across --jobs.
    std::fprintf(stderr, "(sweep wall-clock: %.2f s on %u worker%s)\n",
                 suite.wallSeconds(), suite.jobs(),
                 suite.jobs() == 1 ? "" : "s");
    bench::writeJsonIfRequested(suite, opt);
    bench::dumpStatsIfRequested(suite, opt);
    profiler.writeTrace();
    return 0;
}
