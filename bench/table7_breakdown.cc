/**
 * @file
 * Reproduces Table VII: the overhead breakdown of both proposed
 * schemes at 1024 PMOs, as percentages of the unprotected baseline
 * execution time: permission changes, buffer entry changes, DTT/PT
 * misses, TLB invalidations (incl. the TLB refills they induce) and
 * the per-access PTLB latency.
 *
 * Expected shape (paper): TLB invalidations dominate the MPK
 * virtualization total (98.81 of 114.58 points on average); domain
 * virtualization's total is ~5x smaller, split between PTLB misses
 * and per-access latency.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/suite.hh"

namespace
{

void
printBlock(const char *title,
           const std::vector<pmodv::exp::MicroPoint> &points,
           pmodv::arch::SchemeKind kind, bool domain_virt)
{
    using pmodv::exp::Breakdown;
    std::printf("\nOverhead of %s (%% of baseline)\n", title);
    std::printf("%-24s", "Source");
    for (const auto &pt : points)
        std::printf(" %8s", pt.benchmark.c_str());
    std::printf(" %8s\n", "Avg");
    pmodv::bench::rule(24 + 9 * (points.size() + 1));

    auto row = [&](const char *label, auto getter) {
        std::printf("%-24s", label);
        double sum = 0;
        for (const auto &pt : points) {
            const double v = getter(pt.breakdown.at(kind));
            std::printf(" %8.2f", v);
            sum += v;
        }
        std::printf(" %8.2f\n", sum / points.size());
    };

    row("Permission change",
        [](const Breakdown &b) { return b.permissionChangePct; });
    row("Entry changes",
        [](const Breakdown &b) { return b.entryChangesPct; });
    if (domain_virt) {
        row("PTLB misses",
            [](const Breakdown &b) { return b.tableMissPct; });
        row("Access latency",
            [](const Breakdown &b) { return b.accessLatencyPct; });
    } else {
        row("DTT misses",
            [](const Breakdown &b) { return b.tableMissPct; });
        row("TLB invalidations",
            [](const Breakdown &b) { return b.tlbInvalidationPct; });
    }
    row("Total", [](const Breakdown &b) { return b.totalPct; });
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmodv;
    using arch::SchemeKind;
    const auto opt = bench::parseOptions(argc, argv);

    workloads::MicroParams mp;
    mp.numPmos = 1024;
    mp.initialNodes = 1024;
    mp.numOps = opt.ops ? opt.ops : (opt.quick ? 10'000 : 100'000);
    if (opt.full)
        mp.numOps = 1'000'000;

    const std::vector<SchemeKind> schemes{SchemeKind::MpkVirt,
                                          SchemeKind::DomainVirt};

    core::SimConfig config;
    bench::applyObservability(config, opt);

    exp::ExperimentSuite suite("table7_breakdown");
    for (const auto &name : workloads::microNames()) {
        exp::MicroPointSpec spec;
        spec.benchmark = name;
        spec.params = mp;
        spec.config = config;
        spec.schemes = schemes;
        suite.add(std::move(spec));
    }
    common::ThreadPool pool(opt.jobs);
    bench::Profiler profiler(suite, config, opt);
    suite.run(pool);

    std::printf("=== Table VII: overhead breakdown at 1024 PMOs "
                "(%llu ops/benchmark) ===\n",
                static_cast<unsigned long long>(mp.numOps));

    const std::vector<exp::MicroPoint> &points = suite.microRows();

    printBlock("Hardware-based MPK Virtualization", points,
               SchemeKind::MpkVirt, false);
    printBlock("Hardware-based Domain Virtualization", points,
               SchemeKind::DomainVirt, true);

    std::printf(
        "\nPaper reference (averages): MPK virt — perm 2.80, entry "
        "0.09, DTT miss 12.88, TLB inval 98.81, total 114.58;\n"
        "domain virt — perm 2.80, entry 0.07, PTLB miss 9.82, access "
        "latency 11.28, total 23.97.\n");
    bench::writeJsonIfRequested(suite, opt);
    bench::dumpStatsIfRequested(suite, opt);
    profiler.writeTrace();
    return 0;
}
