/**
 * @file
 * Reproduces Table VI: lowerbound overheads and permission-switch
 * frequencies for the five multi-PMO microbenchmarks at 1024 PMOs.
 * The lowerbound pays only the SETPERM instruction cost (2 switches
 * per operation), so its overhead tracks the switch rate.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/suite.hh"

namespace
{

struct PaperRow
{
    const char *name;
    double switches;
    double lowerbound;
};

/** Table VI reference values from the paper. */
constexpr PaperRow kPaper[] = {
    {"avl", 2326578, 3.28}, {"rbt", 1594634, 2.25},
    {"bt", 2085772, 2.94},  {"ll", 305388, 0.43},
    {"ss", 3636006, 5.12},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmodv;
    const auto opt = bench::parseOptions(argc, argv);

    workloads::MicroParams mp;
    mp.numPmos = 1024;
    mp.numOps = opt.ops ? opt.ops : (opt.quick ? 10'000 : 100'000);
    if (opt.full)
        mp.numOps = 1'000'000;
    mp.initialNodes = 1024;

    core::SimConfig config;
    bench::applyObservability(config, opt);

    exp::ExperimentSuite suite("table6_lowerbound");
    for (const auto &name : workloads::microNames()) {
        exp::MicroPointSpec spec;
        spec.benchmark = name;
        spec.params = mp;
        spec.config = config;
        suite.add(std::move(spec));
    }
    common::ThreadPool pool(opt.jobs);
    bench::Profiler profiler(suite, config, opt);
    suite.run(pool);

    std::printf("=== Table VI: lowerbound overhead and switch "
                "frequency (1024 PMOs, %llu ops) ===\n\n",
                static_cast<unsigned long long>(mp.numOps));
    std::printf("%-16s %14s %16s | %14s %16s\n", "Benchmark",
                "Switches/sec", "Lowerbound(%)", "paper sw/s",
                "paper lb(%)");
    pmodv::bench::rule(84);

    unsigned idx = 0;
    for (const exp::MicroPoint &pt : suite.microRows()) {
        const PaperRow &ref = kPaper[idx++];
        std::printf("%-16s %14.0f %16.2f | %14.0f %16.2f\n",
                    pt.benchmark.c_str(), pt.switchesPerSec,
                    pt.lowerboundOverheadPct, ref.switches,
                    ref.lowerbound);
    }
    pmodv::bench::rule(84);
    std::printf("\nThe lowerbound overhead is proportional to the "
                "switch rate (27 cycles per SETPERM at 2.2 GHz).\n");
    bench::writeJsonIfRequested(suite, opt);
    bench::dumpStatsIfRequested(suite, opt);
    profiler.writeTrace();
    return 0;
}
