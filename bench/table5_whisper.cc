/**
 * @file
 * Reproduces Table V: single-PMO WHISPER benchmarks — permission
 * switch rates and the execution-time overheads of default MPK, HW
 * MPK virtualization and HW domain virtualization over unprotected
 * execution. A SETPERM pair brackets every PMO access.
 *
 * Expected shape (paper): overheads of 0.7–3%; MPK virtualization
 * identical to default MPK (a single PMO never evicts a key); domain
 * virtualization slightly higher (PTLB lookup on every PMO access).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/suite.hh"

namespace
{

struct PaperRow
{
    const char *name;
    double switches;
    double mpk;
    double domain;
};

/** Table V reference values from the paper. */
constexpr PaperRow kPaper[] = {
    {"echo", 712631, 0.77, 0.85},    {"ycsb", 1152379, 1.48, 1.63},
    {"tpcc", 951529, 2.65, 2.91},    {"ctree", 839138, 1.21, 1.30},
    {"hashmap", 863251, 1.05, 1.14}, {"redis", 1038506, 1.28, 1.41},
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmodv;
    const auto opt = bench::parseOptions(argc, argv);

    workloads::WhisperParams wp;
    wp.numTxns = opt.ops ? opt.ops : (opt.quick ? 2'000 : 20'000);
    if (opt.full)
        wp.numTxns = 100'000;
    wp.poolBytes = std::size_t{64} << 20;
    wp.initialKeys = opt.quick ? 2'000 : 10'000;

    core::SimConfig config;
    bench::applyObservability(config, opt);

    exp::ExperimentSuite suite("table5_whisper");
    for (const auto &name : workloads::whisperNames()) {
        exp::WhisperPointSpec spec;
        spec.benchmark = name;
        spec.params = wp;
        spec.config = config;
        suite.add(std::move(spec));
    }
    common::ThreadPool pool(opt.jobs);
    bench::Profiler profiler(suite, config, opt);
    suite.run(pool);

    std::printf("=== Table V: WHISPER single-PMO overheads (%llu "
                "transactions/benchmark) ===\n\n",
                static_cast<unsigned long long>(wp.numTxns));
    std::printf("%-10s %14s %12s %12s %12s | %14s %10s %10s\n",
                "Benchmark", "Switches/sec", "MPK(%)", "MPKvirt(%)",
                "DomVirt(%)", "paper sw/s", "paper MPK", "paper Dom");
    pmodv::bench::rule(104);

    double sum_sw = 0, sum_mpk = 0, sum_mpkv = 0, sum_dom = 0;
    unsigned idx = 0;
    for (const exp::WhisperRow &row : suite.whisperRows()) {
        const PaperRow &ref = kPaper[idx++];
        std::printf(
            "%-10s %14.0f %12.2f %12.2f %12.2f | %14.0f %10.2f %10.2f\n",
            row.benchmark.c_str(), row.switchesPerSec,
            row.overheadMpkPct, row.overheadMpkVirtPct,
            row.overheadDomainVirtPct, ref.switches, ref.mpk,
            ref.domain);
        sum_sw += row.switchesPerSec;
        sum_mpk += row.overheadMpkPct;
        sum_mpkv += row.overheadMpkVirtPct;
        sum_dom += row.overheadDomainVirtPct;
    }
    pmodv::bench::rule(104);
    const double n = 6.0;
    std::printf(
        "%-10s %14.0f %12.2f %12.2f %12.2f | %14.0f %10.2f %10.2f\n",
        "Average", sum_sw / n, sum_mpk / n, sum_mpkv / n, sum_dom / n,
        926239.0, 1.41, 1.54);
    std::printf("\nNote: MPK virtualization must equal default MPK on a"
                " single PMO (no key eviction ever happens);\n"
                "domain virtualization adds the per-access PTLB lookup."
                "\n");
    bench::writeJsonIfRequested(suite, opt);
    bench::dumpStatsIfRequested(suite, opt);
    profiler.writeTrace();
    return 0;
}
