/**
 * @file
 * Reproduces Figure 6: execution-time overhead over the lowerbound
 * (log2 of the percentage, the paper's y-axis) as the number of PMOs
 * sweeps from 16 to 1024, for libmpk, hardware MPK virtualization and
 * hardware domain virtualization, per microbenchmark.
 *
 * Expected shape (paper): libmpk far above both hardware schemes and
 * growing; MPK virtualization cheap at few PMOs but rising as key
 * evictions (and their shootdowns) become frequent; domain
 * virtualization nearly flat; the MPKvirt/DomVirt crossover comes
 * earliest for poor-locality benchmarks and latest for the B+ tree.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/suite.hh"

int
main(int argc, char **argv)
{
    using namespace pmodv;
    using arch::SchemeKind;
    const auto opt = bench::parseOptions(argc, argv);

    exp::SweepSpec sweep;
    sweep.pmoCounts = bench::defaultSweep(opt);
    sweep.base.initialNodes = 1024;
    sweep.base.numOps = opt.ops ? opt.ops : (opt.quick ? 5'000 : 30'000);
    if (opt.full)
        sweep.base.numOps = 1'000'000;
    sweep.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                     SchemeKind::DomainVirt};
    bench::applyObservability(sweep.config, opt);

    exp::ExperimentSuite suite("fig6_sweep");
    suite.add(sweep);
    common::ThreadPool pool(opt.jobs);
    bench::Profiler profiler(suite, sweep.config, opt);
    suite.run(pool);

    // Rows are benchmark-major (SweepSpec::points() order), one row
    // per (benchmark, pmo-count) — exactly the print order below.
    const auto &rows = suite.microRows();
    std::size_t next = 0;

    if (opt.csv) {
        std::printf("benchmark,pmos,scheme,overhead_pct\n");
        for (const auto &name : workloads::microNames()) {
            for (unsigned pmos : sweep.pmoCounts) {
                const exp::MicroPoint &pt = rows[next++];
                for (SchemeKind k : sweep.schemes) {
                    std::printf("%s,%u,%s,%.4f\n", name.c_str(), pmos,
                                arch::schemeName(k),
                                pt.overheadPct.at(k));
                }
            }
        }
        bench::writeJsonIfRequested(suite, opt);
        bench::dumpStatsIfRequested(suite, opt);
        profiler.writeTrace();
        return 0;
    }

    std::printf("=== Figure 6: overhead over lowerbound vs #PMOs "
                "(log2 of percent; %llu ops/point) ===\n",
                static_cast<unsigned long long>(sweep.base.numOps));

    for (const auto &name : workloads::microNames()) {
        std::printf("\n[%s]\n", name.c_str());
        std::printf("%8s %16s %16s %16s   %s\n", "#PMOs",
                    "libmpk", "mpk_virt", "domain_virt",
                    "(log2 %% in parentheses)");
        pmodv::bench::rule(78);
        for (unsigned pmos : sweep.pmoCounts) {
            const exp::MicroPoint &pt = rows[next++];
            const double lib = pt.overheadPct.at(SchemeKind::LibMpk);
            const double mpkv = pt.overheadPct.at(SchemeKind::MpkVirt);
            const double domv =
                pt.overheadPct.at(SchemeKind::DomainVirt);
            std::printf(
                "%8u %9.1f (%4.1f) %9.1f (%4.1f) %9.1f (%4.1f)\n",
                pmos, lib, exp::log2Pct(lib), mpkv, exp::log2Pct(mpkv),
                domv, exp::log2Pct(domv));
        }
    }
    std::printf("\nPaper reference shape: both hardware schemes sit "
                "far below libmpk everywhere; MPK virtualization\n"
                "rises with PMO count while domain virtualization "
                "stays nearly flat (Fig. 6 of the paper).\n");
    bench::writeJsonIfRequested(suite, opt);
    bench::dumpStatsIfRequested(suite, opt);
    profiler.writeTrace();
    return 0;
}
