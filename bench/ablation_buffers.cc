/**
 * @file
 * Extension (not in the paper): ablation of the design constants the
 * paper fixes — DTTLB/PTLB capacity and the TLB-shootdown cost — on
 * one representative workload. Answers the design questions DESIGN.md
 * calls out: how much of MPK virtualization's overhead is the 16-key
 * limit vs the shootdown price, and how quickly domain
 * virtualization's PTLB stops mattering as it grows.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/replay.hh"
#include "exp/experiments.hh"

namespace
{

pmodv::exp::MicroPoint
runPoint(const pmodv::workloads::MicroParams &mp,
         const pmodv::core::SimConfig &config)
{
    using pmodv::arch::SchemeKind;
    return pmodv::exp::runMicroPoint(
        "avl", mp, config, {SchemeKind::MpkVirt, SchemeKind::DomainVirt});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pmodv;
    using arch::SchemeKind;
    const auto opt = bench::parseOptions(argc, argv);

    workloads::MicroParams mp;
    mp.numPmos = 256;
    mp.initialNodes = 1024;
    mp.numOps = opt.ops ? opt.ops : (opt.quick ? 4'000 : 20'000);

    std::printf("=== Ablation: buffer sizing and shootdown cost "
                "(avl, %u PMOs, %llu ops) ===\n",
                mp.numPmos,
                static_cast<unsigned long long>(mp.numOps));

    std::printf("\n[1] PTLB capacity (domain virtualization)\n");
    std::printf("%12s %18s\n", "PTLB entries", "domain_virt(%)");
    bench::rule(32);
    for (unsigned entries : {4u, 8u, 16u, 32u, 64u, 128u}) {
        core::SimConfig config;
        config.prot.ptlbEntries = entries;
        const auto pt = runPoint(mp, config);
        std::printf("%12u %18.1f\n", entries,
                    pt.overheadPct.at(SchemeKind::DomainVirt));
    }

    std::printf("\n[2] DTTLB capacity (MPK virtualization; note the "
                "key count stays 16,\n    so capacity only helps the "
                "DTT-walk rate, not the eviction rate)\n");
    std::printf("%12s %18s %14s\n", "DTTLB entries", "mpk_virt(%)",
                "key remaps");
    bench::rule(48);
    for (unsigned entries : {4u, 8u, 16u, 32u, 64u}) {
        core::SimConfig config;
        config.prot.dttlbEntries = entries;
        const auto pt = runPoint(mp, config);
        std::printf("%12u %18.1f %14.0f\n", entries,
                    pt.overheadPct.at(SchemeKind::MpkVirt),
                    pt.keyRemaps.at(SchemeKind::MpkVirt));
    }

    std::printf("\n[3] TLB invalidation (shootdown) cost "
                "(MPK virtualization)\n");
    std::printf("%16s %18s\n", "cycles/shootdown", "mpk_virt(%)");
    bench::rule(36);
    for (Cycles cost : {Cycles{0}, Cycles{143}, Cycles{286},
                        Cycles{572}, Cycles{1144}}) {
        core::SimConfig config;
        config.prot.tlbInvalidationCycles = cost;
        const auto pt = runPoint(mp, config);
        std::printf("%16llu %18.1f\n",
                    static_cast<unsigned long long>(cost),
                    pt.overheadPct.at(SchemeKind::MpkVirt));
    }

    std::printf("\n[4] Simulated core count (shootdowns are per-core; "
                "domain virtualization is immune)\n");
    std::printf("%8s %14s %16s\n", "cores", "mpk_virt(%)",
                "domain_virt(%)");
    bench::rule(40);
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        core::SimConfig config;
        config.prot.numCores = cores;
        const auto pt = runPoint(mp, config);
        std::printf("%8u %14.1f %16.1f\n", cores,
                    pt.overheadPct.at(SchemeKind::MpkVirt),
                    pt.overheadPct.at(SchemeKind::DomainVirt));
    }

    std::printf("\n[5] Context-switch frequency (two threads over 24 "
                "domains each;\n    MPK virt reconstructs PKRU + "
                "flushes the DTTLB, domain virt only spills dirty "
                "PTLB entries)\n");
    std::printf("%18s %14s %16s\n", "accesses/switch", "mpk_virt(%)",
                "domain_virt(%)");
    bench::rule(50);
    for (unsigned span : {2u, 8u, 32u, 128u}) {
        using trace::TraceRecord;
        core::SimConfig config;
        core::MultiReplay replay(config,
                                 {arch::SchemeKind::Lowerbound,
                                  arch::SchemeKind::MpkVirt,
                                  arch::SchemeKind::DomainVirt});
        std::vector<TraceRecord> t;
        constexpr Addr base = Addr{1} << 33;
        constexpr Addr stride = Addr{16} << 20;
        constexpr unsigned per_thread = 24;
        for (unsigned d = 1; d <= 2 * per_thread; ++d) {
            t.push_back(TraceRecord::attach(
                0, d, base + (d - 1) * stride, Addr{1} << 20,
                Perm::ReadWrite));
        }
        for (unsigned tid = 0; tid < 2; ++tid) {
            t.push_back(TraceRecord::threadSwitch(
                static_cast<std::uint16_t>(tid)));
            for (unsigned d = 0; d < per_thread; ++d) {
                t.push_back(TraceRecord::setPerm(
                    static_cast<std::uint16_t>(tid),
                    tid * per_thread + d + 1, Perm::ReadWrite));
            }
        }
        const unsigned total_accesses = 40'000;
        unsigned tid = 0, since_switch = 0, step = 0;
        for (unsigned a = 0; a < total_accesses; ++a) {
            if (since_switch++ == span) {
                since_switch = 0;
                tid ^= 1;
                t.push_back(TraceRecord::threadSwitch(
                    static_cast<std::uint16_t>(tid)));
            }
            const unsigned d = tid * per_thread + (step++ % per_thread);
            t.push_back(TraceRecord::load(
                static_cast<std::uint16_t>(tid),
                base + d * stride + (a * 4096) % (Addr{1} << 20), 8,
                true));
        }
        replay.replay(t);
        const double lb = static_cast<double>(
            replay.system(arch::SchemeKind::Lowerbound).totalCycles());
        auto over = [&](arch::SchemeKind k) {
            return (static_cast<double>(
                        replay.system(k).totalCycles()) -
                    lb) /
                   lb * 100.0;
        };
        std::printf("%18u %14.1f %16.1f\n", span,
                    over(arch::SchemeKind::MpkVirt),
                    over(arch::SchemeKind::DomainVirt));
    }

    std::printf("\n[6] Attach mapping granularity (avl, 256 PMOs). "
                "2MB pages collapse the baseline TLB-miss rate, yet\n"
                "    the remap count is unchanged: every access to an "
                "evicted domain is a TLB miss *because the\n"
                "    eviction's shootdown flushed it* — key capacity, "
                "not TLB reach, is the binding constraint.\n");
    std::printf("%12s %14s %16s %14s\n", "page size", "mpk_virt(%)",
                "domain_virt(%)", "remaps");
    bench::rule(60);
    for (PageSize ps : {PageSize::Size4K, PageSize::Size2M}) {
        core::SimConfig config;
        workloads::MicroParams hp = mp;
        hp.pageSize = ps;
        const auto pt = runPoint(hp, config);
        std::printf("%12s %14.1f %16.1f %14.0f\n",
                    ps == PageSize::Size4K ? "4KB" : "2MB",
                    pt.overheadPct.at(SchemeKind::MpkVirt),
                    pt.overheadPct.at(SchemeKind::DomainVirt),
                    pt.keyRemaps.at(SchemeKind::MpkVirt));
    }

    std::printf("\nTakeaways: the PTLB saturates quickly (16 entries "
                "is already near the knee); MPK virtualization's\n"
                "overhead is dominated by the shootdown price and "
                "scales with core count — the structural reason the\n"
                "paper's second design wins at scale.\n");
    return 0;
}
