/**
 * @file
 * Extension (not in the paper): ablation of the design constants the
 * paper fixes — DTTLB/PTLB capacity and the TLB-shootdown cost — on
 * one representative workload. Answers the design questions DESIGN.md
 * calls out: how much of MPK virtualization's overhead is the 16-key
 * limit vs the shootdown price, and how quickly domain
 * virtualization's PTLB stops mattering as it grows.
 *
 * Every section is a batch of independent points handed to the
 * parallel exp::Executor, so the whole ablation grid spreads over
 * --jobs workers.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "exp/executor.hh"

namespace
{

using namespace pmodv;
using arch::SchemeKind;

exp::MicroPointSpec
avlSpec(const workloads::MicroParams &mp, const core::SimConfig &config)
{
    exp::MicroPointSpec spec;
    spec.benchmark = "avl";
    spec.params = mp;
    spec.config = config;
    spec.schemes = {SchemeKind::MpkVirt, SchemeKind::DomainVirt};
    return spec;
}

/** The two-thread context-switch trace of section [5]. */
std::shared_ptr<const trace::TraceBuffer>
makeCtxSwitchTrace(unsigned span)
{
    using trace::TraceRecord;
    std::vector<TraceRecord> t;
    constexpr Addr base = Addr{1} << 33;
    constexpr Addr stride = Addr{16} << 20;
    constexpr unsigned per_thread = 24;
    for (unsigned d = 1; d <= 2 * per_thread; ++d) {
        t.push_back(TraceRecord::attach(
            0, d, base + (d - 1) * stride, Addr{1} << 20,
            Perm::ReadWrite));
    }
    for (unsigned tid = 0; tid < 2; ++tid) {
        t.push_back(TraceRecord::threadSwitch(
            static_cast<std::uint16_t>(tid)));
        for (unsigned d = 0; d < per_thread; ++d) {
            t.push_back(TraceRecord::setPerm(
                static_cast<std::uint16_t>(tid),
                tid * per_thread + d + 1, Perm::ReadWrite));
        }
    }
    const unsigned total_accesses = 40'000;
    unsigned tid = 0, since_switch = 0, step = 0;
    for (unsigned a = 0; a < total_accesses; ++a) {
        if (since_switch++ == span) {
            since_switch = 0;
            tid ^= 1;
            t.push_back(TraceRecord::threadSwitch(
                static_cast<std::uint16_t>(tid)));
        }
        const unsigned d = tid * per_thread + (step++ % per_thread);
        t.push_back(TraceRecord::load(
            static_cast<std::uint16_t>(tid),
            base + d * stride + (a * 4096) % (Addr{1} << 20), 8,
            true));
    }
    return trace::TraceBuffer::fromRecords(std::move(t));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parseOptions(argc, argv);

    workloads::MicroParams mp;
    mp.numPmos = 256;
    mp.initialNodes = 1024;
    mp.numOps = opt.ops ? opt.ops : (opt.quick ? 4'000 : 20'000);

    common::ThreadPool pool(opt.jobs);
    exp::Executor executor(pool);
    executor.setProgress(opt.progress);

    std::printf("=== Ablation: buffer sizing and shootdown cost "
                "(avl, %u PMOs, %llu ops) ===\n",
                mp.numPmos,
                static_cast<unsigned long long>(mp.numOps));

    std::printf("\n[1] PTLB capacity (domain virtualization)\n");
    std::printf("%12s %18s\n", "PTLB entries", "domain_virt(%)");
    bench::rule(32);
    {
        const std::vector<unsigned> entries{4, 8, 16, 32, 64, 128};
        std::vector<exp::MicroPointSpec> specs;
        for (unsigned n : entries) {
            core::SimConfig config;
            config.prot.ptlbEntries = n;
            specs.push_back(avlSpec(mp, config));
        }
        const auto rows = executor.runMicro(specs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::printf("%12u %18.1f\n", entries[i],
                        rows[i].overheadPct.at(SchemeKind::DomainVirt));
        }
    }

    std::printf("\n[2] DTTLB capacity (MPK virtualization; note the "
                "key count stays 16,\n    so capacity only helps the "
                "DTT-walk rate, not the eviction rate)\n");
    std::printf("%12s %18s %14s\n", "DTTLB entries", "mpk_virt(%)",
                "key remaps");
    bench::rule(48);
    {
        const std::vector<unsigned> entries{4, 8, 16, 32, 64};
        std::vector<exp::MicroPointSpec> specs;
        for (unsigned n : entries) {
            core::SimConfig config;
            config.prot.dttlbEntries = n;
            specs.push_back(avlSpec(mp, config));
        }
        const auto rows = executor.runMicro(specs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::printf("%12u %18.1f %14.0f\n", entries[i],
                        rows[i].overheadPct.at(SchemeKind::MpkVirt),
                        rows[i].keyRemaps.at(SchemeKind::MpkVirt));
        }
    }

    std::printf("\n[3] TLB invalidation (shootdown) cost "
                "(MPK virtualization)\n");
    std::printf("%16s %18s\n", "cycles/shootdown", "mpk_virt(%)");
    bench::rule(36);
    {
        const std::vector<Cycles> costs{0, 143, 286, 572, 1144};
        std::vector<exp::MicroPointSpec> specs;
        for (Cycles cost : costs) {
            core::SimConfig config;
            config.topology.tlbInvalidationCycles = cost;
            specs.push_back(avlSpec(mp, config));
        }
        const auto rows = executor.runMicro(specs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::printf("%16llu %18.1f\n",
                        static_cast<unsigned long long>(costs[i]),
                        rows[i].overheadPct.at(SchemeKind::MpkVirt));
        }
    }

    std::printf("\n[4] Simulated core count (broadcast shootdowns "
                "charge per responding core; domain virtualization "
                "is immune)\n");
    std::printf("%8s %14s %16s\n", "cores", "mpk_virt(%)",
                "domain_virt(%)");
    bench::rule(40);
    {
        const std::vector<unsigned> cores{1, 2, 4, 8};
        std::vector<exp::MicroPointSpec> specs;
        for (unsigned n : cores) {
            core::SimConfig config;
            config.topology.numCores = n;
            workloads::MicroParams mp_mt = mp;
            mp_mt.numThreads = n; // One worker per core keeps every
                                  // core's TLB warm with PMO entries.
            specs.push_back(avlSpec(mp_mt, config));
        }
        const auto rows = executor.runMicro(specs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::printf("%8u %14.1f %16.1f\n", cores[i],
                        rows[i].overheadPct.at(SchemeKind::MpkVirt),
                        rows[i].overheadPct.at(SchemeKind::DomainVirt));
        }
    }

    std::printf("\n[5] Context-switch frequency (two threads over 24 "
                "domains each;\n    MPK virt reconstructs PKRU + "
                "flushes the DTTLB, domain virt only spills dirty "
                "PTLB entries)\n");
    std::printf("%18s %14s %16s\n", "accesses/switch", "mpk_virt(%)",
                "domain_virt(%)");
    bench::rule(50);
    {
        const std::vector<unsigned> spans{2, 8, 32, 128};
        std::vector<exp::RawPointSpec> specs;
        for (unsigned span : spans) {
            exp::RawPointSpec spec;
            spec.trace = makeCtxSwitchTrace(span);
            spec.schemes = {SchemeKind::Lowerbound, SchemeKind::MpkVirt,
                            SchemeKind::DomainVirt};
            specs.push_back(std::move(spec));
        }
        const auto rows = executor.runRaw(specs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const double lb = static_cast<double>(
                rows[i].totalCycles.at(SchemeKind::Lowerbound));
            auto over = [&](SchemeKind k) {
                return (static_cast<double>(rows[i].totalCycles.at(k)) -
                        lb) /
                       lb * 100.0;
            };
            std::printf("%18u %14.1f %16.1f\n", spans[i],
                        over(SchemeKind::MpkVirt),
                        over(SchemeKind::DomainVirt));
        }
    }

    std::printf("\n[6] Attach mapping granularity (avl, 256 PMOs). "
                "2MB pages collapse the baseline TLB-miss rate, yet\n"
                "    the remap count is unchanged: every access to an "
                "evicted domain is a TLB miss *because the\n"
                "    eviction's shootdown flushed it* — key capacity, "
                "not TLB reach, is the binding constraint.\n");
    std::printf("%12s %14s %16s %14s\n", "page size", "mpk_virt(%)",
                "domain_virt(%)", "remaps");
    bench::rule(60);
    {
        const std::vector<PageSize> sizes{PageSize::Size4K,
                                          PageSize::Size2M};
        std::vector<exp::MicroPointSpec> specs;
        for (PageSize ps : sizes) {
            workloads::MicroParams hp = mp;
            hp.pageSize = ps;
            specs.push_back(avlSpec(hp, core::SimConfig{}));
        }
        const auto rows = executor.runMicro(specs);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::printf("%12s %14.1f %16.1f %14.0f\n",
                        sizes[i] == PageSize::Size4K ? "4KB" : "2MB",
                        rows[i].overheadPct.at(SchemeKind::MpkVirt),
                        rows[i].overheadPct.at(SchemeKind::DomainVirt),
                        rows[i].keyRemaps.at(SchemeKind::MpkVirt));
        }
    }

    std::printf("\nTakeaways: the PTLB saturates quickly (16 entries "
                "is already near the knee); MPK virtualization's\n"
                "overhead is dominated by the shootdown price and "
                "scales with core count — the structural reason the\n"
                "paper's second design wins at scale.\n");
    return 0;
}
