/**
 * @file
 * Google-benchmark microbenchmarks of the PMO library itself: host
 * (wall-clock) cost of allocation, checked access, permission
 * switches, transactions and attach/detach. These measure the
 * *emulation library*, not the simulated hardware.
 */

#include <benchmark/benchmark.h>

#include "pmo/api.hh"
#include "pmo/txn.hh"

namespace
{

using namespace pmodv;
using pmo::Namespace;
using pmo::Oid;
using pmo::PmoApi;
using pmo::Pool;

constexpr std::size_t kPoolBytes = 8 << 20;

void
BM_PoolPmallocPfree(benchmark::State &state)
{
    auto pool = Pool::create(1, kPoolBytes);
    const std::size_t size = state.range(0);
    for (auto _ : state) {
        Oid oid = pool->pmalloc(size);
        benchmark::DoNotOptimize(oid);
        pool->pfree(oid);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolPmallocPfree)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_CheckedReadWrite(benchmark::State &state)
{
    Namespace ns;
    PmoApi api(ns, 1000, 1);
    Pool *pool = api.poolCreate("bench", kPoolBytes);
    const Oid oid = api.pmalloc(pool, 64);
    api.setPerm(0, pool, Perm::ReadWrite);
    auto &rt = api.runtime();
    std::uint64_t value = 0;
    for (auto _ : state) {
        rt.writeValue<std::uint64_t>(0, oid, value);
        value = rt.readValue<std::uint64_t>(0, oid) + 1;
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_CheckedReadWrite);

void
BM_SetPermPair(benchmark::State &state)
{
    Namespace ns;
    PmoApi api(ns, 1000, 1);
    Pool *pool = api.poolCreate("bench", kPoolBytes);
    const DomainId domain = api.domainOf(pool);
    auto &rt = api.runtime();
    for (auto _ : state) {
        rt.setPerm(0, domain, Perm::ReadWrite);
        rt.setPerm(0, domain, Perm::None);
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_SetPermPair);

void
BM_TxnCommit(benchmark::State &state)
{
    auto pool = Pool::create(1, kPoolBytes);
    const Oid oid = pool->pmalloc(256);
    pmo::Transaction txn(*pool);
    const unsigned writes = static_cast<unsigned>(state.range(0));
    std::uint64_t v = 0;
    for (auto _ : state) {
        txn.begin();
        for (unsigned i = 0; i < writes; ++i) {
            txn.writeValue<std::uint64_t>(
                Oid{oid.pool, oid.offset + 8 * (i % 32)}, ++v);
        }
        txn.commit();
    }
    state.SetItemsProcessed(state.iterations() * writes);
}
BENCHMARK(BM_TxnCommit)->Arg(1)->Arg(8)->Arg(32);

void
BM_CrashRecovery(benchmark::State &state)
{
    auto pool = Pool::create(1, kPoolBytes);
    const Oid oid = pool->pmalloc(256);
    for (auto _ : state) {
        state.PauseTiming();
        pmo::Transaction txn(*pool);
        txn.begin();
        for (unsigned i = 0; i < 16; ++i) {
            txn.writeValue<std::uint64_t>(
                Oid{oid.pool, oid.offset + 8 * (i % 32)}, i);
        }
        pool->arena().crash();
        state.ResumeTiming();
        benchmark::DoNotOptimize(pmo::Transaction::recover(*pool));
    }
}
BENCHMARK(BM_CrashRecovery);

void
BM_AttachDetach(benchmark::State &state)
{
    Namespace ns;
    ns.create("p", kPoolBytes, 1000);
    pmo::Runtime rt(ns, 1000, 1);
    for (auto _ : state) {
        const auto &att = rt.attach("p", Perm::ReadWrite);
        rt.detach(att.domain);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttachDetach);

void
BM_OidDirectTranslation(benchmark::State &state)
{
    Namespace ns;
    PmoApi api(ns, 1000, 1);
    Pool *pool = api.poolCreate("bench", kPoolBytes);
    const Oid oid = api.pmalloc(pool, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(api.oidDirect(oid));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OidDirectTranslation);

} // namespace
