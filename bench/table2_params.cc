/**
 * @file
 * Reproduces Table II: the simulation parameters in effect. Purely a
 * configuration printout so every other experiment's context is on
 * record.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    pmodv::bench::parseOptions(argc, argv);
    std::cout << "=== Table II: simulation parameters ===\n\n";
    pmodv::core::SimConfig config;
    pmodv::core::printConfig(std::cout, config);
    return 0;
}
