/**
 * @file
 * Multi-threaded trace semantics at the System level: context
 * switches, per-thread permission windows and the cost asymmetry the
 * paper highlights — MPK virtualization flushes the DTTLB and
 * reconstructs PKRU on a switch, domain virtualization keeps the TLB
 * and only spills dirty PTLB entries.
 */

#include <gtest/gtest.h>

#include "core/replay.hh"
#include "core/system.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using trace::TraceRecord;

constexpr Addr kBase = Addr{1} << 33;
constexpr Addr kStride = Addr{16} << 20;
constexpr Addr kSize = Addr{1} << 20;

/**
 * A two-thread trace: each thread owns @p domains_per_thread PMOs and
 * round-robins over them; the core ping-pongs between the threads.
 */
std::vector<TraceRecord>
pingPongTrace(unsigned rounds, unsigned accesses_per_round,
              unsigned domains_per_thread = 1)
{
    std::vector<TraceRecord> t;
    const unsigned total = 2 * domains_per_thread;
    for (unsigned d = 1; d <= total; ++d) {
        t.push_back(TraceRecord::attach(0, d, kBase + (d - 1) * kStride,
                                        kSize, Perm::ReadWrite));
    }
    for (unsigned d = 0; d < domains_per_thread; ++d)
        t.push_back(TraceRecord::setPerm(0, d + 1, Perm::ReadWrite));
    t.push_back(TraceRecord::threadSwitch(1));
    for (unsigned d = 0; d < domains_per_thread; ++d)
        t.push_back(TraceRecord::setPerm(
            1, domains_per_thread + d + 1, Perm::ReadWrite));
    t.push_back(TraceRecord::threadSwitch(0));

    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned tid = 0; tid < 2; ++tid) {
            t.push_back(TraceRecord::threadSwitch(
                static_cast<std::uint16_t>(tid)));
            for (unsigned a = 0; a < accesses_per_round; ++a) {
                const unsigned d = tid * domains_per_thread +
                                   (r + a) % domains_per_thread;
                t.push_back(TraceRecord::load(
                    static_cast<std::uint16_t>(tid),
                    kBase + d * kStride + (a * 4096) % kSize, 8,
                    true));
            }
        }
    }
    return t;
}

class MultiThread : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(MultiThread, PingPongRunsWithoutFaults)
{
    core::SimConfig cfg;
    core::System sys(cfg, GetParam());
    for (const auto &rec : pingPongTrace(20, 8))
        sys.put(rec);
    EXPECT_DOUBLE_EQ(sys.deniedAccesses.value(), 0.0)
        << arch::schemeName(GetParam());
}

TEST_P(MultiThread, CrossThreadAccessDenied)
{
    // Thread 0 has permission for domain 1 only; if it touches
    // domain 2's PMO the access must be denied by every enforcing
    // scheme.
    core::SimConfig cfg;
    core::System sys(cfg, GetParam());
    for (unsigned d = 1; d <= 2; ++d) {
        sys.put(TraceRecord::attach(0, d, kBase + (d - 1) * kStride,
                                    kSize, Perm::ReadWrite));
    }
    sys.put(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    sys.put(TraceRecord::load(0, kBase, 8, true));          // OK.
    sys.put(TraceRecord::load(0, kBase + kStride, 8, true)); // Denied.
    EXPECT_DOUBLE_EQ(sys.deniedAccesses.value(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    EnforcingSchemes, MultiThread,
    ::testing::Values(SchemeKind::Mpk, SchemeKind::LibMpk,
                      SchemeKind::MpkVirt, SchemeKind::DomainVirt),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        return std::string(arch::schemeName(info.param));
    });

TEST(MultiThread, FewDomainsFavourMpkVirt)
{
    // With 2 domains both hold keys forever: MPK virt never remaps
    // and rides TLB hits, while domain virt pays PTLB refills after
    // every context switch — the paper's small-PMO-count regime.
    core::SimConfig cfg;
    core::MultiReplay replay(cfg, {SchemeKind::Lowerbound,
                                   SchemeKind::MpkVirt,
                                   SchemeKind::DomainVirt});
    replay.replayBatch(pingPongTrace(200, 4, 1));
    const auto lb =
        replay.system(SchemeKind::Lowerbound).totalCycles();
    const auto mpkv = replay.system(SchemeKind::MpkVirt).totalCycles();
    const auto domv =
        replay.system(SchemeKind::DomainVirt).totalCycles();
    EXPECT_GE(mpkv, lb);
    EXPECT_GT(domv, lb);
    EXPECT_LT(mpkv, domv);
}

TEST(MultiThread, ManyDomainsFavourDomainVirt)
{
    // 40 domains over 15 keys: MPK virt remaps (and shoots down)
    // constantly; domain virt stays at PTLB-miss cost — the paper's
    // large-PMO-count regime.
    core::SimConfig cfg;
    core::MultiReplay replay(cfg, {SchemeKind::Lowerbound,
                                   SchemeKind::MpkVirt,
                                   SchemeKind::DomainVirt});
    replay.replayBatch(pingPongTrace(100, 20, 20));
    const auto lb =
        replay.system(SchemeKind::Lowerbound).totalCycles();
    const auto mpkv = replay.system(SchemeKind::MpkVirt).totalCycles();
    const auto domv =
        replay.system(SchemeKind::DomainVirt).totalCycles();
    EXPECT_GT(mpkv, lb);
    EXPECT_GT(domv, lb);
    EXPECT_LT(domv, mpkv);
}

TEST(MultiThread, PermissionsFollowThreadsNotCore)
{
    // After many switches, each thread's window is still exactly its
    // own domain (no leakage through the shared core structures).
    for (SchemeKind kind :
         {SchemeKind::MpkVirt, SchemeKind::DomainVirt}) {
        core::SimConfig cfg;
        core::System sys(cfg, kind);
        for (const auto &rec : pingPongTrace(50, 2))
            sys.put(rec);
        // Thread 1 (currently scheduled last in the ping-pong? make
        // sure: switch to thread 1) touches thread 0's domain.
        sys.put(TraceRecord::threadSwitch(1));
        sys.put(TraceRecord::load(1, kBase, 8, true));
        EXPECT_DOUBLE_EQ(sys.deniedAccesses.value(), 1.0)
            << arch::schemeName(kind);
    }
}

TEST(MultiThread, ContextSwitchCountsTracked)
{
    core::SimConfig cfg;
    core::System sys(cfg, SchemeKind::DomainVirt);
    for (const auto &rec : pingPongTrace(10, 2))
        sys.put(rec);
    // 2 setup switches + 2 per round x 10 rounds.
    EXPECT_DOUBLE_EQ(static_cast<stats::Group &>(sys).lookup(
                         "domain_virt.context_switches"),
                     22.0);
}

} // namespace
} // namespace pmodv
