/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace pmodv::stats
{
namespace
{

TEST(Scalar, Accumulates)
{
    Group root(nullptr, "root");
    Scalar s(&root, "count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s = 2.0;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Vector, BucketsAndTotal)
{
    Group root(nullptr, "root");
    Vector v(&root, "vec", "a vector", 3);
    v[0] = 1;
    v[1] = 2;
    v[2] = 3;
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_DOUBLE_EQ(v.at(1), 2.0);
    EXPECT_EQ(v.size(), 3u);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Vector, OutOfRangeThrows)
{
    Group root(nullptr, "root");
    Vector v(&root, "vec", "a vector", 2);
    EXPECT_THROW(v[5] = 1, std::out_of_range);
}

TEST(Histogram, MomentsAndBuckets)
{
    Group root(nullptr, "root");
    Histogram h(&root, "hist", "a histogram");
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(1024);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1024u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 2 + 1024) / 4.0);
    EXPECT_EQ(h.bucket(0), 1u); // value 0
    EXPECT_EQ(h.bucket(1), 1u); // value 1
    EXPECT_EQ(h.bucket(2), 1u); // value 2
    EXPECT_EQ(h.bucket(11), 1u); // value 1024 -> log2+1
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(Formula, LazyEvaluation)
{
    Group root(nullptr, "root");
    Scalar a(&root, "a", "");
    Scalar b(&root, "b", "");
    Formula ratio(&root, "ratio", "a/b", [&]() {
        return b.value() == 0 ? 0.0 : a.value() / b.value();
    });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    a = 6;
    b = 3;
    EXPECT_DOUBLE_EQ(ratio.value(), 2.0);
}

TEST(Group, NestedDumpContainsAllPaths)
{
    Group root(nullptr, "sys");
    Group child(&root, "cpu");
    Scalar top(&root, "cycles", "top level");
    Scalar inner(&child, "insts", "inner");
    top = 10;
    inner = 20;

    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sys.cycles"), std::string::npos);
    EXPECT_NE(text.find("sys.cpu.insts"), std::string::npos);
}

TEST(Group, LookupByDottedPath)
{
    Group root(nullptr, "");
    Group cpu(&root, "cpu");
    Group tlb(&cpu, "tlb");
    Scalar misses(&tlb, "misses", "");
    misses = 42;
    EXPECT_DOUBLE_EQ(root.lookup("cpu.tlb.misses"), 42.0);
    EXPECT_DOUBLE_EQ(cpu.lookup("tlb.misses"), 42.0);
    EXPECT_DOUBLE_EQ(root.lookup("cpu.tlb.nonexistent"), 0.0);
    EXPECT_DOUBLE_EQ(root.lookup("bogus.path"), 0.0);
}

TEST(Group, LookupVectorAndHistogram)
{
    Group root(nullptr, "");
    Vector v(&root, "vec", "", 2);
    v[0] = 3;
    v[1] = 4;
    Histogram h(&root, "hist", "");
    h.sample(1);
    h.sample(2);
    EXPECT_DOUBLE_EQ(root.lookup("vec"), 7.0);
    EXPECT_DOUBLE_EQ(root.lookup("hist"), 2.0);
}

TEST(Group, ResetRecurses)
{
    Group root(nullptr, "");
    Group child(&root, "c");
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a = 1;
    b = 2;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Group, FullPath)
{
    Group root(nullptr, "sys");
    Group a(&root, "a");
    Group b(&a, "b");
    EXPECT_EQ(b.fullPath(), "sys.a.b");
}

TEST(Group, ChildDestructionUnregisters)
{
    Group root(nullptr, "");
    {
        Group child(&root, "ephemeral");
        Scalar s(&child, "x", "");
        s = 1;
    }
    std::ostringstream os;
    root.dump(os);
    EXPECT_EQ(os.str().find("ephemeral"), std::string::npos);
}

} // namespace
} // namespace pmodv::stats
