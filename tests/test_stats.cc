/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "stats/export.hh"
#include "stats/stats.hh"

namespace pmodv::stats
{
namespace
{

TEST(Scalar, Accumulates)
{
    Group root(nullptr, "root");
    Scalar s(&root, "count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s = 2.0;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Vector, BucketsAndTotal)
{
    Group root(nullptr, "root");
    Vector v(&root, "vec", "a vector", 3);
    v[0] = 1;
    v[1] = 2;
    v[2] = 3;
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_DOUBLE_EQ(v.at(1), 2.0);
    EXPECT_EQ(v.size(), 3u);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Vector, OutOfRangeThrows)
{
    Group root(nullptr, "root");
    Vector v(&root, "vec", "a vector", 2);
    EXPECT_THROW(v[5] = 1, std::out_of_range);
}

TEST(Histogram, MomentsAndBuckets)
{
    Group root(nullptr, "root");
    Histogram h(&root, "hist", "a histogram");
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(1024);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1024u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 2 + 1024) / 4.0);
    EXPECT_EQ(h.bucket(0), 1u); // value 0
    EXPECT_EQ(h.bucket(1), 1u); // value 1
    EXPECT_EQ(h.bucket(2), 1u); // value 2
    EXPECT_EQ(h.bucket(11), 1u); // value 1024 -> log2+1
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(Formula, LazyEvaluation)
{
    Group root(nullptr, "root");
    Scalar a(&root, "a", "");
    Scalar b(&root, "b", "");
    Formula ratio(&root, "ratio", "a/b", [&]() {
        return b.value() == 0 ? 0.0 : a.value() / b.value();
    });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    a = 6;
    b = 3;
    EXPECT_DOUBLE_EQ(ratio.value(), 2.0);
}

TEST(Group, NestedDumpContainsAllPaths)
{
    Group root(nullptr, "sys");
    Group child(&root, "cpu");
    Scalar top(&root, "cycles", "top level");
    Scalar inner(&child, "insts", "inner");
    top = 10;
    inner = 20;

    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sys.cycles"), std::string::npos);
    EXPECT_NE(text.find("sys.cpu.insts"), std::string::npos);
}

TEST(Group, LookupByDottedPath)
{
    Group root(nullptr, "");
    Group cpu(&root, "cpu");
    Group tlb(&cpu, "tlb");
    Scalar misses(&tlb, "misses", "");
    misses = 42;
    EXPECT_DOUBLE_EQ(root.lookup("cpu.tlb.misses"), 42.0);
    EXPECT_DOUBLE_EQ(cpu.lookup("tlb.misses"), 42.0);
    EXPECT_DOUBLE_EQ(root.lookup("cpu.tlb.nonexistent"), 0.0);
    EXPECT_DOUBLE_EQ(root.lookup("bogus.path"), 0.0);
}

TEST(Group, LookupVectorAndHistogram)
{
    Group root(nullptr, "");
    Vector v(&root, "vec", "", 2);
    v[0] = 3;
    v[1] = 4;
    Histogram h(&root, "hist", "");
    h.sample(1);
    h.sample(2);
    EXPECT_DOUBLE_EQ(root.lookup("vec"), 7.0);
    EXPECT_DOUBLE_EQ(root.lookup("hist"), 2.0);
}

TEST(Group, ResetRecurses)
{
    Group root(nullptr, "");
    Group child(&root, "c");
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a = 1;
    b = 2;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Group, FullPath)
{
    Group root(nullptr, "sys");
    Group a(&root, "a");
    Group b(&a, "b");
    EXPECT_EQ(b.fullPath(), "sys.a.b");
}

TEST(Group, ChildDestructionUnregisters)
{
    Group root(nullptr, "");
    {
        Group child(&root, "ephemeral");
        Scalar s(&child, "x", "");
        s = 1;
    }
    std::ostringstream os;
    root.dump(os);
    EXPECT_EQ(os.str().find("ephemeral"), std::string::npos);
}

TEST(Histogram, BucketEdgeHelpers)
{
    Group root(nullptr, "");
    Histogram h(&root, "hist", "");
    // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(h.bucketLow(0), 0u);
    EXPECT_EQ(h.bucketHigh(0), 1u);
    EXPECT_EQ(h.bucketLow(1), 1u);
    EXPECT_EQ(h.bucketHigh(1), 2u);
    EXPECT_EQ(h.bucketLow(2), 2u);
    EXPECT_EQ(h.bucketHigh(2), 4u);
    EXPECT_EQ(h.bucketLabel(0), "[0,1)");
    EXPECT_EQ(h.bucketLabel(2), "[2,4)");
    // The last bucket is open-ended and labelled without brackets (so
    // exported documents contain no unbalanced '[' and no "inf").
    const std::size_t last = h.numBuckets() - 1;
    EXPECT_TRUE(h.bucketUnbounded(last));
    EXPECT_EQ(h.bucketLabel(last),
              ">=" + std::to_string(h.bucketLow(last)));
    EXPECT_FALSE(h.bucketUnbounded(0));
}

/** Records the traversal order a visitor sees. */
class RecordingVisitor : public Visitor
{
  public:
    std::vector<std::string> log;
    void beginGroup(const Group &g) override
    {
        log.push_back("begin:" + g.groupName());
    }
    void endGroup(const Group &g) override
    {
        log.push_back("end:" + g.groupName());
    }
    void visitScalar(const Scalar &s) override
    {
        log.push_back("scalar:" + s.name());
    }
    void visitVector(const Vector &s) override
    {
        log.push_back("vector:" + s.name());
    }
    void visitHistogram(const Histogram &s) override
    {
        log.push_back("hist:" + s.name());
    }
    void visitFormula(const Formula &s) override
    {
        log.push_back("formula:" + s.name());
    }
};

TEST(Visitor, TraversalIsRegistrationOrderStatsBeforeChildren)
{
    Group root(nullptr, "sys");
    Scalar a(&root, "a", "");
    Group child(&root, "cpu");
    Scalar b(&child, "b", "");
    Scalar c(&root, "c", ""); // Registered after the child group.

    RecordingVisitor v;
    root.accept(v);
    const std::vector<std::string> expected{
        "begin:sys", "scalar:a", "scalar:c",
        "begin:cpu", "scalar:b", "end:cpu", "end:sys"};
    EXPECT_EQ(v.log, expected);
}

/** A small tree exercising every stat kind. */
struct SampleTree
{
    Group root{nullptr, "sys"};
    Scalar cycles{&root, "cycles", "total"};
    Formula half{&root, "half", "cycles/2",
                 [this]() { return cycles.value() / 2.0; }};
    Group cpu{&root, "cpu"};
    Vector ops{&cpu, "ops", "per kind", 2};
    Histogram lat{&cpu, "lat", "latency"};

    SampleTree()
    {
        cycles = 10;
        ops[0] = 3;
        ops[1] = 4;
        lat.sample(0);
        lat.sample(3);
        lat.sample(300);
    }
};

TEST(Export, JsonIsBalancedDeterministicAndFinite)
{
    SampleTree t;
    const std::string json = toJsonString(t.root);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":10"), std::string::npos);
    EXPECT_NE(json.find("\"half\":5"), std::string::npos);
    EXPECT_NE(json.find("\"cpu\":{"), std::string::npos);
    EXPECT_NE(json.find("\"total\":7"), std::string::npos);
    // Dumping twice yields the identical byte string.
    EXPECT_EQ(json, toJsonString(t.root));
}

TEST(Export, JsonRoundTripsNonIntegralValues)
{
    Group root(nullptr, "sys");
    Scalar s(&root, "pi", "");
    s = 3.14159265358979312;
    const std::string json = toJsonString(root);
    const auto pos = json.find("\"pi\":");
    ASSERT_NE(pos, std::string::npos);
    const double parsed = std::strtod(json.c_str() + pos + 5, nullptr);
    EXPECT_DOUBLE_EQ(parsed, s.value()); // Bit-exact round trip.
}

TEST(Export, TextAndJsonAgreeOnBucketEdges)
{
    SampleTree t;
    std::ostringstream os;
    dumpText(os, t.root);
    const std::string text = os.str();
    const std::string json = toJsonString(t.root);
    for (std::size_t i = 0; i < t.lat.numBuckets(); ++i) {
        if (t.lat.bucket(i) == 0)
            continue;
        // The text label and the JSON edges come from the same
        // bucketLow/High pair.
        EXPECT_NE(text.find("lat::" + t.lat.bucketLabel(i)),
                  std::string::npos);
        std::string edge =
            "{\"lo\":" + std::to_string(t.lat.bucketLow(i));
        if (!t.lat.bucketUnbounded(i))
            edge += ",\"hi\":" + std::to_string(t.lat.bucketHigh(i));
        EXPECT_NE(json.find(edge), std::string::npos) << edge;
    }
}

TEST(Export, TextMatchesLegacyDump)
{
    SampleTree t;
    std::ostringstream via_dump, via_visitor;
    t.root.dump(via_dump);
    dumpText(via_visitor, t.root);
    EXPECT_EQ(via_dump.str(), via_visitor.str());
    EXPECT_NE(via_dump.str().find("sys.cycles"), std::string::npos);
    EXPECT_NE(via_dump.str().find("sys.cpu.ops::total"),
              std::string::npos);
}

TEST(Export, CsvListsEveryLeaf)
{
    SampleTree t;
    std::ostringstream os;
    dumpCsv(os, t.root);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("stat,value\n", 0), 0u);
    EXPECT_NE(csv.find("sys.cycles,10"), std::string::npos);
    EXPECT_NE(csv.find("sys.cpu.ops::total,7"), std::string::npos);
    EXPECT_NE(csv.find("sys.cpu.lat::samples,3"), std::string::npos);
    // Bucket labels contain a comma, so those names must be quoted.
    EXPECT_NE(csv.find("\"sys.cpu.lat::[0,1)\",1"), std::string::npos);
}

TEST(Export, UnnamedChildGroupMergesIntoParentObject)
{
    Group root(nullptr, "sys");
    Group unnamed(&root, "");
    Scalar inner(&unnamed, "x", "");
    inner = 7;
    const std::string json = toJsonString(root);
    EXPECT_NE(json.find("\"x\":7"), std::string::npos);
    EXPECT_EQ(json.find("\"\":"), std::string::npos);
    std::ostringstream os;
    dumpText(os, root);
    EXPECT_NE(os.str().find("sys.x"), std::string::npos);
}

} // namespace
} // namespace pmodv::stats
