/**
 * @file
 * Tests of the differential fuzz harness itself: clean sweeps across
 * seeds, detection + shrinking of a deliberately planted bug, replay
 * of the checked-in regression corpus, and the determinism/round-trip
 * properties the replay workflow depends on.
 */

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "testing/differ.hh"
#include "testing/generator.hh"
#include "testing/shrink.hh"

using namespace pmodv;
using namespace pmodv::testing;

namespace
{

GenConfig
smallConfig()
{
    GenConfig cfg;
    cfg.numOps = 128;
    return cfg;
}

std::vector<Op>
parse(const std::string &text)
{
    std::istringstream in(text);
    return parseOps(in);
}

} // namespace

TEST(Differential, CleanFuzzAcrossSeeds)
{
    const GenConfig cfg = smallConfig();
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const std::vector<Op> ops = generateOps(seed, cfg);
        const DiffResult result = runDifferential(ops);
        EXPECT_TRUE(result.ok())
            << "seed " << seed << ": " << result.summary();
    }
}

TEST(Differential, CleanFuzzWithManyDomains)
{
    // Push past 15 concurrent domains so stock MPK's key exhaustion
    // (and its reference-model carve-out) is actually exercised.
    GenConfig cfg = smallConfig();
    cfg.numOps = 192;
    cfg.domainPool = 40;
    cfg.maxLive = 30;
    cfg.wAttach = 20;
    cfg.wDetach = 5;
    for (std::uint64_t seed = 100; seed <= 110; ++seed) {
        const std::vector<Op> ops = generateOps(seed, cfg);
        const DiffResult result = runDifferential(ops);
        EXPECT_TRUE(result.ok())
            << "seed " << seed << ": " << result.summary();
    }
}

TEST(Differential, InjectedBugIsCaughtAndShrinksSmall)
{
    DiffConfig diff;
    diff.inject = BugInjection::MpkDropRevoke;

    // Find a failing episode; the dropped revoke should surface fast.
    std::vector<Op> failing;
    std::string oracle;
    for (std::uint64_t seed = 1; seed <= 50 && failing.empty(); ++seed) {
        const std::vector<Op> ops = generateOps(seed, smallConfig());
        const DiffResult result = runDifferential(ops, diff);
        if (!result.ok()) {
            failing = ops;
            oracle = result.firstOracle();
        }
    }
    ASSERT_FALSE(failing.empty())
        << "no generated episode tripped the planted bug";

    const auto fails = [&](const std::vector<Op> &candidate) {
        return runDifferential(candidate, diff).firstOracle() == oracle;
    };
    const std::vector<Op> shrunk = shrinkOps(failing, fails);
    EXPECT_LE(shrunk.size(), 10u)
        << "shrunk reproducer still has " << shrunk.size() << " ops";

    // The reproducer must still fail with the planted bug and must
    // pass on the healthy build.
    EXPECT_FALSE(runDifferential(shrunk, diff).ok());
    EXPECT_TRUE(runDifferential(shrunk).ok());
}

TEST(Differential, HandWrittenDropRevokeReproducer)
{
    const std::vector<Op> ops = parse("attach d=1 pages=1 pageperm=RW\n"
                                      "setperm t=0 d=1 perm=RW\n"
                                      "setperm t=0 d=1 perm=-\n"
                                      "access d=1 off=0 type=W\n");
    EXPECT_TRUE(runDifferential(ops).ok());

    DiffConfig diff;
    diff.inject = BugInjection::MpkDropRevoke;
    const DiffResult result = runDifferential(ops, diff);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.violations[0].scheme, "mpk");
}

TEST(Differential, CorpusRegressionsStayFixed)
{
    const std::filesystem::path dir(PMODV_CORPUS_DIR);
    ASSERT_TRUE(std::filesystem::is_directory(dir));
    unsigned replayed = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".ops")
            continue;
        const std::vector<Op> ops = loadOpsFile(entry.path().string());
        ASSERT_FALSE(ops.empty()) << entry.path();
        const DiffResult result = runDifferential(ops);
        EXPECT_TRUE(result.ok())
            << entry.path() << ": " << result.summary();
        ++replayed;
    }
    EXPECT_GE(replayed, 4u) << "corpus went missing";
}

/**
 * The whole corpus also holds on a two-core machine, where evictions
 * broadcast over the shootdown bus and the Ipi-event oracle is live.
 */
TEST(Differential, CorpusHoldsOnTwoCores)
{
    const std::filesystem::path dir(PMODV_CORPUS_DIR);
    ASSERT_TRUE(std::filesystem::is_directory(dir));
    DiffConfig diff;
    diff.topology.numCores = 2;
    unsigned replayed = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".ops")
            continue;
        const std::vector<Op> ops = loadOpsFile(entry.path().string());
        const DiffResult result = runDifferential(ops, diff);
        EXPECT_TRUE(result.ok())
            << entry.path() << ": " << result.summary();
        ++replayed;
    }
    EXPECT_GE(replayed, 5u) << "multicore corpus entry went missing";
}

TEST(Differential, GeneratorIsDeterministic)
{
    const GenConfig cfg = smallConfig();
    EXPECT_EQ(generateOps(42, cfg), generateOps(42, cfg));
    EXPECT_NE(generateOps(42, cfg), generateOps(43, cfg));
}

TEST(Differential, OpsRoundTripThroughText)
{
    const std::vector<Op> ops = generateOps(7, smallConfig());
    std::ostringstream out;
    printOps(out, ops);
    std::istringstream in(out.str());
    EXPECT_EQ(parseOps(in), ops);
}

TEST(Differential, ShrinkerRemovesIrrelevantOps)
{
    // A sequence whose failure (under injection) needs only 3 of its
    // ops; the padding accesses must all be shrunk away.
    std::vector<Op> ops = parse("attach d=1 pages=1 pageperm=RW\n"
                                "setperm t=0 d=1 perm=RW\n"
                                "out off=0 type=R\n"
                                "out off=4096 type=R\n"
                                "out off=8192 type=W\n"
                                "churn d=1 pages=8\n"
                                "setperm t=0 d=1 perm=-\n"
                                "access d=1 off=64 type=R\n");
    DiffConfig diff;
    diff.inject = BugInjection::MpkDropRevoke;
    ASSERT_FALSE(runDifferential(ops, diff).ok());

    const auto fails = [&](const std::vector<Op> &candidate) {
        return !runDifferential(candidate, diff).ok();
    };
    const std::vector<Op> shrunk = shrinkOps(ops, fails);
    EXPECT_LE(shrunk.size(), 4u);
    EXPECT_FALSE(runDifferential(shrunk, diff).ok());
}

TEST(Differential, BaselineCycleOrderingHolds)
{
    // Spot-check the cycle accounting directly on one busy episode.
    GenConfig cfg = smallConfig();
    cfg.numOps = 256;
    const std::vector<Op> ops = generateOps(3, cfg);
    ASSERT_TRUE(runDifferential(ops).ok());
}
