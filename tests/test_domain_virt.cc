/**
 * @file
 * Unit tests for the hardware domain-virtualization design: PTLB
 * behaviour, DRT-filled TLB domain ids, PTLB-resident SETPERM, lazy
 * PT write-back, and shootdown-free context switches.
 */

#include <gtest/gtest.h>

#include "arch/domain_virt.hh"
#include "arch/ptlb.hh"
#include "scheme_test_util.hh"

namespace pmodv
{
namespace
{

using arch::DomainVirtScheme;
using arch::Ptlb;
using arch::PtlbEntry;
using arch::SchemeKind;
using test::pmoBase;
using test::SchemeHarness;

constexpr Addr kSize = Addr{1} << 20;

// ---------------------------------------------------------------
// PTLB unit tests.
// ---------------------------------------------------------------

PtlbEntry
makeEntry(DomainId domain, Perm perm, bool dirty = false)
{
    PtlbEntry e;
    e.used = true;
    e.domain = domain;
    e.perm = perm;
    e.dirty = dirty;
    return e;
}

TEST(Ptlb, LookupAndStats)
{
    stats::Group root(nullptr, "");
    Ptlb ptlb(&root, 4);
    PtlbEntry evicted;
    bool had = false;
    ptlb.insert(makeEntry(3, Perm::Read), evicted, had);
    EXPECT_NE(ptlb.lookup(3), nullptr);
    EXPECT_EQ(ptlb.lookup(4), nullptr);
    EXPECT_DOUBLE_EQ(ptlb.hits.value(), 1.0);
    EXPECT_DOUBLE_EQ(ptlb.misses.value(), 1.0);
}

TEST(Ptlb, EvictionReturnsVictim)
{
    stats::Group root(nullptr, "");
    Ptlb ptlb(&root, 2);
    PtlbEntry evicted;
    bool had = false;
    ptlb.insert(makeEntry(1, Perm::Read, true), evicted, had);
    ptlb.insert(makeEntry(2, Perm::ReadWrite), evicted, had);
    EXPECT_FALSE(had);
    ptlb.lookup(2); // Make domain 1 the victim.
    ptlb.insert(makeEntry(3, Perm::Read), evicted, had);
    EXPECT_TRUE(had);
    EXPECT_EQ(evicted.domain, 1u);
    EXPECT_TRUE(evicted.dirty);
}

TEST(Ptlb, FlushCollectsOnlyDirty)
{
    stats::Group root(nullptr, "");
    Ptlb ptlb(&root, 4);
    PtlbEntry evicted;
    bool had = false;
    ptlb.insert(makeEntry(1, Perm::Read, true), evicted, had);
    ptlb.insert(makeEntry(2, Perm::Read, false), evicted, had);
    std::vector<PtlbEntry> dirty;
    ptlb.flushAll(dirty);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].domain, 1u);
    EXPECT_EQ(ptlb.usedCount(), 0u);
}

TEST(Ptlb, InvalidateSingleDomain)
{
    stats::Group root(nullptr, "");
    Ptlb ptlb(&root, 4);
    PtlbEntry evicted;
    bool had = false;
    ptlb.insert(makeEntry(1, Perm::Read), evicted, had);
    EXPECT_TRUE(ptlb.invalidate(1));
    EXPECT_FALSE(ptlb.invalidate(1));
}

// ---------------------------------------------------------------
// Full-scheme tests.
// ---------------------------------------------------------------

TEST(DomainVirt, TlbEntriesCarryDomainIds)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    h.attachGranted(7, pmoBase(0), kSize, Perm::Read);
    h.canRead(0, pmoBase(0));
    const auto *entry = h.tlbs().l1().probe(pmoBase(0));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->domain, 7u);
    EXPECT_EQ(entry->key, kNullKey); // No keys in this design.
}

TEST(DomainVirt, Figure2Scenarios)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    h.attachGranted(1, pmoBase(0), kSize, Perm::Read);
    const Addr a = pmoBase(0) + 0x10;

    EXPECT_TRUE(h.canRead(0, a));
    EXPECT_FALSE(h.canWrite(0, a));
    h.scheme().setPerm(0, 1, Perm::ReadWrite);
    EXPECT_TRUE(h.canWrite(0, a));
    h.scheme().setPerm(0, 1, Perm::None);
    EXPECT_FALSE(h.canRead(0, a));

    // Spatial isolation across a context switch.
    h.scheme().setPerm(0, 1, Perm::ReadWrite);
    h.scheme().contextSwitch(0, 2);
    EXPECT_FALSE(h.canRead(2, a));
    h.scheme().contextSwitch(2, 0);
    EXPECT_TRUE(h.canWrite(0, a));
}

TEST(DomainVirt, ScalesFarBeyond16Domains)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    auto &virt = static_cast<DomainVirtScheme &>(h.scheme());
    for (unsigned i = 0; i < 100; ++i)
        h.attachGranted(i + 1, pmoBase(i), kSize,
                        i % 2 ? Perm::ReadWrite : Perm::Read);
    // Spot-check: even-indexed domains are read-only, odd read-write,
    // and crucially there are NO shootdowns anywhere.
    EXPECT_TRUE(h.canRead(0, pmoBase(10)));
    EXPECT_FALSE(h.canWrite(0, pmoBase(10)));
    EXPECT_TRUE(h.canWrite(0, pmoBase(11)));
    EXPECT_DOUBLE_EQ(virt.shootdowns.value(), 0.0);
    EXPECT_DOUBLE_EQ(virt.keyRemaps.value(), 0.0);
}

TEST(DomainVirt, PtlbAccessLatencyCharged)
{
    arch::ProtParams params;
    params.ptlbAccessCycles = 1;
    SchemeHarness h(SchemeKind::DomainVirt, params);
    h.attachGranted(1, pmoBase(0), kSize);
    // First access: PTLB hit (SETPERM installed the entry): 1 cycle.
    const auto out = h.accessOutcome(0, pmoBase(0), AccessType::Write);
    EXPECT_TRUE(out.allowed);
    EXPECT_EQ(out.checkCycles, 1u);
}

TEST(DomainVirt, PtlbMissChargesPtLookup)
{
    arch::ProtParams params;
    params.ptlbEntries = 2;
    params.ptlbMissCycles = 30;
    SchemeHarness h(SchemeKind::DomainVirt, params);
    for (unsigned i = 0; i < 4; ++i)
        h.attachGranted(i + 1, pmoBase(i), kSize);
    // Domains 1/2 were evicted from the 2-entry PTLB by 3/4; touching
    // domain 1 misses and pays the PT lookup.
    const auto out = h.accessOutcome(0, pmoBase(0), AccessType::Write);
    EXPECT_TRUE(out.allowed); // Dirty value was written back to PT.
    EXPECT_GE(out.checkCycles, 30u);
}

TEST(DomainVirt, LazyPtWriteBackOnEviction)
{
    arch::ProtParams params;
    params.ptlbEntries = 2;
    SchemeHarness h(SchemeKind::DomainVirt, params);
    auto &virt = static_cast<DomainVirtScheme &>(h.scheme());
    h.attachGranted(1, pmoBase(0), kSize);
    // SETPERM completes in the PTLB; the PT still has no entry.
    EXPECT_EQ(virt.pt().get(1, 0), Perm::None);
    // Force eviction of domain 1's dirty entry.
    h.attachGranted(2, pmoBase(1), kSize, Perm::Read);
    h.attachGranted(3, pmoBase(2), kSize, Perm::Read);
    EXPECT_EQ(virt.pt().get(1, 0), Perm::ReadWrite);
    EXPECT_GE(virt.ptlbWritebacks.value(), 1.0);
}

TEST(DomainVirt, ContextSwitchKeepsTlbFlushesPtlb)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    auto &virt = static_cast<DomainVirtScheme &>(h.scheme());
    h.attachGranted(1, pmoBase(0), kSize);
    h.canWrite(0, pmoBase(0));
    ASSERT_NE(h.tlbs().l1().probe(pmoBase(0)), nullptr);

    h.scheme().contextSwitch(0, 5);
    // The TLB entry (with its domain id) survives the switch — the
    // design's key advantage.
    EXPECT_NE(h.tlbs().l1().probe(pmoBase(0)), nullptr);
    EXPECT_EQ(virt.ptlb().usedCount(), 0u);
    // And thread 5 has no permission despite the warm TLB.
    EXPECT_FALSE(h.canRead(5, pmoBase(0)));
}

TEST(DomainVirt, ContextSwitchWritesBackOutgoingPerms)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    auto &virt = static_cast<DomainVirtScheme &>(h.scheme());
    h.attachGranted(1, pmoBase(0), kSize); // Grant is dirty in PTLB.
    h.scheme().contextSwitch(0, 5);
    EXPECT_EQ(virt.pt().get(1, 0), Perm::ReadWrite);
    // Thread 0's permission survives the round trip.
    h.scheme().contextSwitch(5, 0);
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
}

TEST(DomainVirt, DetachDropsEverything)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    auto &virt = static_cast<DomainVirtScheme &>(h.scheme());
    h.attachGranted(1, pmoBase(0), kSize);
    h.canWrite(0, pmoBase(0));
    h.detach(1);
    EXPECT_EQ(h.tlbs().l1().probe(pmoBase(0)), nullptr);
    EXPECT_EQ(virt.drt().rootEntryCount(), 0u);
    EXPECT_EQ(virt.pt().numDomains(), 0u);
}

TEST(DomainVirt, DomainlessBypassesPtlb)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    const auto out = h.accessOutcome(0, 0x9000, AccessType::Write);
    EXPECT_TRUE(out.allowed);
    EXPECT_EQ(out.charged(), 0u);
}

TEST(DomainVirt, EffectivePermReadsFreshPtlbValue)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    h.attachGranted(1, pmoBase(0), kSize, Perm::Read);
    EXPECT_EQ(h.scheme().effectivePerm(0, 1), Perm::Read);
    h.scheme().setPerm(0, 1, Perm::ReadWrite);
    EXPECT_EQ(h.scheme().effectivePerm(0, 1), Perm::ReadWrite);
    EXPECT_EQ(h.scheme().effectivePerm(3, 1), Perm::None);
}

TEST(DomainVirt, DrtMemoryModel)
{
    SchemeHarness h(SchemeKind::DomainVirt);
    auto &virt = static_cast<DomainVirtScheme &>(h.scheme());
    const auto before = virt.drtMemoryBytes();
    h.attach(1, pmoBase(0), kSize);
    EXPECT_GT(virt.drtMemoryBytes(), before);
}

} // namespace
} // namespace pmodv
