/**
 * @file
 * Unit tests for the OS-side PMO namespace: naming, ownership,
 * permission modes, attach keys, the sharing policy, and on-disk
 * persistence.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "pmo/pmo_namespace.hh"

namespace pmodv::pmo
{
namespace
{

constexpr std::size_t kSize = 256 * 1024;
constexpr Uid kAlice = 1000;
constexpr Uid kBob = 1001;

TEST(Namespace, CreateAndMeta)
{
    Namespace ns;
    Pool &pool = ns.create("accounts", kSize, kAlice);
    EXPECT_EQ(pool.size(), kSize);
    const PoolMeta &meta = ns.meta("accounts");
    EXPECT_EQ(meta.owner, kAlice);
    EXPECT_EQ(meta.id, pool.id());
    EXPECT_TRUE(ns.exists("accounts"));
    EXPECT_FALSE(ns.exists("nope"));
}

TEST(Namespace, DuplicateAndInvalidNamesRejected)
{
    Namespace ns;
    ns.create("a", kSize, kAlice);
    EXPECT_THROW(ns.create("a", kSize, kAlice), NamespaceError);
    EXPECT_THROW(ns.create("", kSize, kAlice), NamespaceError);
    EXPECT_THROW(ns.create("x/y", kSize, kAlice), NamespaceError);
}

TEST(Namespace, DistinctPoolIds)
{
    Namespace ns;
    const PoolId a = ns.create("a", kSize, kAlice).id();
    const PoolId b = ns.create("b", kSize, kAlice).id();
    EXPECT_NE(a, b);
}

TEST(Namespace, OwnerModeChecks)
{
    Namespace ns;
    PoolMode mode;
    mode.otherRead = true; // Others may read, not write.
    ns.create("shared", kSize, kAlice, mode);

    EXPECT_NO_THROW(ns.attach("shared", Perm::Read, kBob, 2));
    ns.detach("shared", 2);
    EXPECT_THROW(ns.attach("shared", Perm::ReadWrite, kBob, 2),
                 NamespaceError);
    // The owner may write.
    EXPECT_NO_THROW(ns.attach("shared", Perm::ReadWrite, kAlice, 1));
}

TEST(Namespace, AttachKeyEnforced)
{
    Namespace ns;
    ns.create("secret", kSize, kAlice, {}, 0xfeedface);
    EXPECT_THROW(ns.attach("secret", Perm::Read, kAlice, 1),
                 NamespaceError);
    EXPECT_THROW(ns.attach("secret", Perm::Read, kAlice, 1, 0xbad),
                 NamespaceError);
    EXPECT_NO_THROW(
        ns.attach("secret", Perm::Read, kAlice, 1, 0xfeedface));
}

TEST(Namespace, SharingPolicyManyReadersOneWriter)
{
    Namespace ns;
    PoolMode mode;
    mode.otherRead = true;
    mode.otherWrite = true;
    ns.create("p", kSize, kAlice, mode);

    ns.attach("p", Perm::Read, kAlice, 1);
    ns.attach("p", Perm::Read, kBob, 2); // Second reader fine.
    EXPECT_THROW(ns.attach("p", Perm::ReadWrite, kBob, 3),
                 NamespaceError); // Writer blocked by readers.
    ns.detach("p", 1);
    ns.detach("p", 2);
    ns.attach("p", Perm::ReadWrite, kBob, 3);
    EXPECT_THROW(ns.attach("p", Perm::Read, kAlice, 4),
                 NamespaceError); // Reader blocked by the writer.
    EXPECT_EQ(ns.attachments("p").size(), 1u);
}

TEST(Namespace, DoubleAttachSameProcessRejected)
{
    Namespace ns;
    PoolMode mode;
    mode.otherRead = true;
    ns.create("p", kSize, kAlice, mode);
    ns.attach("p", Perm::Read, kAlice, 1);
    EXPECT_THROW(ns.attach("p", Perm::Read, kAlice, 1), NamespaceError);
}

TEST(Namespace, DetachAllOnProcessExit)
{
    Namespace ns;
    PoolMode mode;
    mode.otherRead = true;
    ns.create("a", kSize, kAlice, mode);
    ns.create("b", kSize, kAlice, mode);
    ns.attach("a", Perm::Read, kAlice, 7);
    ns.attach("b", Perm::Read, kAlice, 7);
    EXPECT_EQ(ns.detachAll(7), 2u);
    EXPECT_TRUE(ns.attachments("a").empty());
}

TEST(Namespace, DestroyRules)
{
    Namespace ns;
    ns.create("p", kSize, kAlice);
    ns.attach("p", Perm::Read, kAlice, 1);
    EXPECT_THROW(ns.destroy("p", kBob), NamespaceError);   // Not owner.
    EXPECT_THROW(ns.destroy("p", kAlice), NamespaceError); // Attached.
    ns.detach("p", 1);
    ns.destroy("p", kAlice);
    EXPECT_FALSE(ns.exists("p"));
}

TEST(Namespace, ListIsSorted)
{
    Namespace ns;
    ns.create("zebra", kSize, kAlice);
    ns.create("apple", kSize, kAlice);
    auto pools = ns.list();
    ASSERT_EQ(pools.size(), 2u);
    EXPECT_EQ(pools[0].name, "apple");
    EXPECT_EQ(pools[1].name, "zebra");
}

class PersistentNamespaceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = (std::filesystem::temp_directory_path() /
                ("pmodv_ns_" + std::to_string(::getpid())))
                   .string();
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TEST_F(PersistentNamespaceTest, PoolsSurviveProcessLifetime)
{
    Oid oid;
    PoolId id;
    {
        Namespace ns(dir_);
        Pool &pool = ns.create("durable", kSize, kAlice);
        id = pool.id();
        oid = pool.pmalloc(64);
        const std::uint64_t v = 4242;
        pool.write(oid, &v, 8);
        pool.persist(oid, 8);
        ns.sync();
    } // Namespace destructor also syncs.
    {
        Namespace ns(dir_);
        EXPECT_TRUE(ns.exists("durable"));
        EXPECT_EQ(ns.meta("durable").owner, kAlice);
        Pool &pool = ns.attach("durable", Perm::Read, kAlice, 1);
        EXPECT_EQ(pool.id(), id);
        std::uint64_t out = 0;
        pool.read(oid, &out, 8);
        EXPECT_EQ(out, 4242u);
    }
}

TEST_F(PersistentNamespaceTest, ManifestKeepsIdsUnique)
{
    PoolId first;
    {
        Namespace ns(dir_);
        first = ns.create("a", kSize, kAlice).id();
    }
    {
        Namespace ns(dir_);
        const PoolId second = ns.create("b", kSize, kAlice).id();
        EXPECT_NE(second, first);
    }
}

TEST_F(PersistentNamespaceTest, ModeAndKeySurviveReload)
{
    {
        Namespace ns(dir_);
        PoolMode mode;
        mode.otherRead = true;
        ns.create("locked", kSize, kAlice, mode, 0x1234);
    }
    {
        Namespace ns(dir_);
        EXPECT_THROW(ns.attach("locked", Perm::Read, kBob, 1),
                     NamespaceError); // Wrong key.
        EXPECT_NO_THROW(
            ns.attach("locked", Perm::Read, kBob, 1, 0x1234));
        EXPECT_THROW(
            ns.attach("locked", Perm::ReadWrite, kBob, 2, 0x1234),
            NamespaceError); // Mode still read-only for others.
    }
}

TEST_F(PersistentNamespaceTest, DestroyRemovesMedia)
{
    {
        Namespace ns(dir_);
        ns.create("gone", kSize, kAlice);
        ns.destroy("gone", kAlice);
    }
    {
        Namespace ns(dir_);
        EXPECT_FALSE(ns.exists("gone"));
    }
    EXPECT_FALSE(
        std::filesystem::exists(dir_ + "/gone.pool"));
}

} // namespace
} // namespace pmodv::pmo
