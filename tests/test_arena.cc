/**
 * @file
 * Unit tests for the two-image persistent-memory arena: crash
 * semantics, writeback granularity and file persistence.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "pmo/arena.hh"
#include "pmo/errors.hh"

namespace pmodv::pmo
{
namespace
{

TEST(Arena, ReadWriteRoundTrip)
{
    PersistentArena arena(4096);
    const char msg[] = "hello persistent world";
    arena.write(100, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    arena.read(100, out, sizeof(out));
    EXPECT_STREQ(out, msg);
}

TEST(Arena, OutOfRangeThrows)
{
    PersistentArena arena(128);
    char buf[16];
    EXPECT_THROW(arena.read(120, buf, 16), PmoError);
    EXPECT_THROW(arena.write(128, buf, 1), PmoError);
    EXPECT_NO_THROW(arena.read(112, buf, 16));
}

TEST(Arena, CrashLosesUnpersistedStores)
{
    PersistentArena arena(4096);
    const std::uint64_t value = 0xdeadbeef;
    arena.write(64, &value, sizeof(value));
    arena.crash();
    std::uint64_t out = 1;
    arena.read(64, &out, sizeof(out));
    EXPECT_EQ(out, 0u); // Store was never written back.
}

TEST(Arena, WritebackSurvivesCrash)
{
    PersistentArena arena(4096);
    const std::uint64_t value = 0xdeadbeef;
    arena.write(64, &value, sizeof(value));
    arena.writeback(64, sizeof(value));
    arena.crash();
    std::uint64_t out = 0;
    arena.read(64, &out, sizeof(out));
    EXPECT_EQ(out, value);
}

TEST(Arena, WritebackIsLineGranular)
{
    PersistentArena arena(4096);
    const std::uint64_t a = 1, b = 2;
    arena.write(0, &a, sizeof(a));    // Line 0.
    arena.write(64, &b, sizeof(b));   // Line 1.
    arena.writeback(0, 8);            // Only line 0.
    arena.crash();
    std::uint64_t out_a = 0, out_b = 0;
    arena.read(0, &out_a, 8);
    arena.read(64, &out_b, 8);
    EXPECT_EQ(out_a, 1u);
    EXPECT_EQ(out_b, 0u);
}

TEST(Arena, WritebackSpanningLines)
{
    PersistentArena arena(4096);
    std::vector<std::uint8_t> data(200, 0xab);
    arena.write(60, data.data(), data.size()); // Lines 0..4.
    EXPECT_EQ(arena.writeback(60, data.size()), 5u);
    arena.crash();
    std::vector<std::uint8_t> out(200);
    arena.read(60, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(Arena, WritebackCountAccumulates)
{
    PersistentArena arena(4096);
    EXPECT_EQ(arena.writebackCount(), 0u);
    arena.writeback(0, 64);
    arena.writeback(0, 128);
    EXPECT_EQ(arena.writebackCount(), 3u);
}

TEST(Arena, IsCleanTracksDivergence)
{
    PersistentArena arena(256);
    EXPECT_TRUE(arena.isClean());
    const int v = 5;
    arena.write(0, &v, sizeof(v));
    EXPECT_FALSE(arena.isClean());
    arena.writebackAll();
    EXPECT_TRUE(arena.isClean());
}

TEST(Arena, ZeroLengthWritebackIsNoop)
{
    PersistentArena arena(256);
    EXPECT_EQ(arena.writeback(10, 0), 0u);
}

class ArenaFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("pmodv_arena_" + std::to_string(::getpid()) + ".img"))
                    .string();
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::string path_;
};

TEST_F(ArenaFileTest, SaveLoadRoundTrip)
{
    PersistentArena arena(1024);
    const char msg[] = "durable";
    arena.write(10, msg, sizeof(msg));
    arena.writebackAll();
    arena.saveTo(path_);

    PersistentArena loaded = PersistentArena::loadFrom(path_);
    EXPECT_EQ(loaded.size(), 1024u);
    char out[sizeof(msg)] = {};
    loaded.read(10, out, sizeof(out));
    EXPECT_STREQ(out, msg);
    EXPECT_TRUE(loaded.isClean());
}

TEST_F(ArenaFileTest, SaveCapturesOnlyPersistentImage)
{
    PersistentArena arena(1024);
    const std::uint64_t persisted = 7, lost = 9;
    arena.write(0, &persisted, 8);
    arena.writeback(0, 8);
    arena.write(128, &lost, 8); // Never written back.
    arena.saveTo(path_);

    PersistentArena loaded = PersistentArena::loadFrom(path_);
    std::uint64_t a = 0, b = 1;
    loaded.read(0, &a, 8);
    loaded.read(128, &b, 8);
    EXPECT_EQ(a, 7u);
    EXPECT_EQ(b, 0u);
}

TEST_F(ArenaFileTest, LoadMissingFileThrows)
{
    EXPECT_THROW(PersistentArena::loadFrom(path_ + ".nope"), PmoError);
}

} // namespace
} // namespace pmodv::pmo
