/**
 * @file
 * Unit tests for the hardware MPK-virtualization design: DTTLB
 * behaviour, DTT-backed key remapping, shootdowns, and context-switch
 * PKRU reconstruction.
 */

#include <gtest/gtest.h>

#include "arch/dttlb.hh"
#include "arch/mpk_virt.hh"
#include "scheme_test_util.hh"

namespace pmodv
{
namespace
{

using arch::Dttlb;
using arch::DttlbEntry;
using arch::MpkVirtScheme;
using arch::SchemeKind;
using test::pmoBase;
using test::SchemeHarness;

constexpr Addr kSize = Addr{1} << 20;

// ---------------------------------------------------------------
// DTTLB unit tests.
// ---------------------------------------------------------------

DttlbEntry
makeEntry(DomainId domain, Addr base, Addr size, ProtKey key)
{
    DttlbEntry e;
    e.used = true;
    e.base = base;
    e.size = size;
    e.domain = domain;
    e.key = key;
    e.valid = key != kNullKey;
    return e;
}

TEST(Dttlb, VaRangeLookup)
{
    stats::Group root(nullptr, "");
    Dttlb dttlb(&root, 4);
    DttlbEntry evicted;
    bool had = false;
    dttlb.insert(makeEntry(1, 0x10000, 0x4000, 2), evicted, had);
    EXPECT_FALSE(had);
    EXPECT_NE(dttlb.lookupVa(0x10000), nullptr);
    EXPECT_NE(dttlb.lookupVa(0x13fff), nullptr);
    EXPECT_EQ(dttlb.lookupVa(0x14000), nullptr);
    EXPECT_DOUBLE_EQ(dttlb.hits.value(), 2.0);
    EXPECT_DOUBLE_EQ(dttlb.misses.value(), 1.0);
}

TEST(Dttlb, CapacityEvictionReportsVictim)
{
    stats::Group root(nullptr, "");
    Dttlb dttlb(&root, 2);
    DttlbEntry evicted;
    bool had = false;
    dttlb.insert(makeEntry(1, 0x10000, 0x1000, 1), evicted, had);
    dttlb.insert(makeEntry(2, 0x20000, 0x1000, 2), evicted, had);
    EXPECT_FALSE(had);
    // Touch domain 1 so domain 2 is the PLRU victim.
    dttlb.lookupVa(0x10000);
    dttlb.insert(makeEntry(3, 0x30000, 0x1000, 3), evicted, had);
    EXPECT_TRUE(had);
    EXPECT_EQ(evicted.domain, 2u);
    EXPECT_DOUBLE_EQ(dttlb.evictions.value(), 1.0);
}

TEST(Dttlb, ReinsertSameDomainReusesSlot)
{
    stats::Group root(nullptr, "");
    Dttlb dttlb(&root, 2);
    DttlbEntry evicted;
    bool had = false;
    dttlb.insert(makeEntry(1, 0x10000, 0x1000, 1), evicted, had);
    dttlb.insert(makeEntry(1, 0x10000, 0x1000, 5), evicted, had);
    EXPECT_FALSE(had);
    EXPECT_EQ(dttlb.usedCount(), 1u);
    EXPECT_EQ(dttlb.findDomain(1)->key, 5u);
}

TEST(Dttlb, InvalidateDomain)
{
    stats::Group root(nullptr, "");
    Dttlb dttlb(&root, 4);
    DttlbEntry evicted;
    bool had = false;
    dttlb.insert(makeEntry(1, 0x10000, 0x1000, 1), evicted, had);
    EXPECT_TRUE(dttlb.invalidateDomain(1));
    EXPECT_FALSE(dttlb.invalidateDomain(1));
    EXPECT_EQ(dttlb.usedCount(), 0u);
}

TEST(Dttlb, FlushCollectsDirtyEntries)
{
    stats::Group root(nullptr, "");
    Dttlb dttlb(&root, 4);
    DttlbEntry evicted;
    bool had = false;
    auto e1 = makeEntry(1, 0x10000, 0x1000, 1);
    e1.dirty = true;
    auto e2 = makeEntry(2, 0x20000, 0x1000, 2);
    e2.dirty = false;
    dttlb.insert(e1, evicted, had);
    dttlb.insert(e2, evicted, had);
    std::vector<DttlbEntry> dirty;
    dttlb.flushAll(dirty);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].domain, 1u);
    EXPECT_EQ(dttlb.usedCount(), 0u);
}

// ---------------------------------------------------------------
// Full-scheme tests.
// ---------------------------------------------------------------

TEST(MpkVirt, SupportsMoreThan16Domains)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    for (unsigned i = 0; i < 64; ++i)
        h.attach(i + 1, pmoBase(i), kSize);
    // Every one of the 64 domains is individually protectable.
    h.scheme().setPerm(0, 40, Perm::ReadWrite);
    EXPECT_TRUE(h.canWrite(0, pmoBase(39)));
    EXPECT_FALSE(h.canWrite(0, pmoBase(40))); // Domain 41: no perm.
}

TEST(MpkVirt, FirstAccessAssignsFreeKey)
{
    arch::ProtParams params;
    SchemeHarness h(SchemeKind::MpkVirt, params);
    h.attachGranted(1, pmoBase(0), kSize);
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
    auto &virt = static_cast<MpkVirtScheme &>(h.scheme());
    EXPECT_NE(virt.keyOf(1), kInvalidKey);
    EXPECT_DOUBLE_EQ(virt.keyRemaps.value(), 1.0);
    EXPECT_DOUBLE_EQ(virt.shootdowns.value(), 0.0); // Free key: none.
}

TEST(MpkVirt, EvictionRemapsAndShootsDown)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    auto &virt = static_cast<MpkVirtScheme &>(h.scheme());
    // Fill all 15 keys.
    for (unsigned i = 0; i < 15; ++i) {
        h.attachGranted(i + 1, pmoBase(i), kSize);
        EXPECT_TRUE(h.canWrite(0, pmoBase(i)));
    }
    EXPECT_DOUBLE_EQ(virt.shootdowns.value(), 0.0);

    // A 16th domain forces a victim eviction.
    h.attachGranted(16, pmoBase(15), kSize);
    EXPECT_TRUE(h.canWrite(0, pmoBase(15)));
    EXPECT_DOUBLE_EQ(virt.shootdowns.value(), 1.0);

    // The LRU victim is domain 1 (least recently touched); its key
    // is gone and its TLB entries were range-flushed.
    EXPECT_EQ(virt.keyOf(1), kInvalidKey);
    EXPECT_EQ(h.tlbs().l1().probe(pmoBase(0)), nullptr);

    // Accessing domain 1 again remaps it (evicting another victim).
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
    EXPECT_NE(virt.keyOf(1), kInvalidKey);
    EXPECT_DOUBLE_EQ(virt.shootdowns.value(), 2.0);
}

TEST(MpkVirt, EvictionCostsMatchConfig)
{
    arch::ProtParams params;
    params.dttWalkCycles = 30;
    SchemeHarness h(SchemeKind::MpkVirt, params);
    for (unsigned i = 0; i < 16; ++i)
        h.attachGranted(i + 1, pmoBase(i), kSize);
    for (unsigned i = 0; i < 15; ++i)
        h.canWrite(0, pmoBase(i));
    // Access to the 16th domain: fill extra must include the DTT walk
    // (DTTLB cold for this domain) and the shootdown.
    const auto out = h.accessOutcome(0, pmoBase(15), AccessType::Write);
    EXPECT_GE(out.fillCycles, 286u + 30u);
}

TEST(MpkVirt, Figure2Scenarios)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    // Temporal.
    h.attachGranted(1, pmoBase(0), kSize, Perm::Read);
    const Addr a = pmoBase(0) + 0x10;

    EXPECT_TRUE(h.canRead(0, a));
    EXPECT_FALSE(h.canWrite(0, a));
    h.scheme().setPerm(0, 1, Perm::ReadWrite);
    EXPECT_TRUE(h.canWrite(0, a));
    h.scheme().setPerm(0, 1, Perm::None);
    EXPECT_FALSE(h.canRead(0, a));

    // Spatial: permissions are per thread.
    h.scheme().setPerm(1, 1, Perm::ReadWrite);
    h.scheme().contextSwitch(0, 1);
    EXPECT_TRUE(h.canWrite(1, a));
    h.scheme().contextSwitch(1, 2);
    EXPECT_FALSE(h.canRead(2, a));
}

TEST(MpkVirt, SetPermInvalidatesDttlbAndUpdatesPkru)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    h.attachGranted(1, pmoBase(0), kSize);
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
    // Key is held; revoking must take effect even on the TLB-hit path
    // (PKRU updated alongside the DTT).
    h.scheme().setPerm(0, 1, Perm::Read);
    EXPECT_FALSE(h.canWrite(0, pmoBase(0)));
    EXPECT_TRUE(h.canRead(0, pmoBase(0)));
}

TEST(MpkVirt, ContextSwitchReconstructsPkru)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    h.attachGranted(1, pmoBase(0), kSize);
    h.scheme().setPerm(7, 1, Perm::Read);
    EXPECT_TRUE(h.canWrite(0, pmoBase(0))); // Maps the key for tid 0.

    // Switch to thread 7: its PKRU is rebuilt from the DTT, so the
    // still-mapped key now carries thread 7's Read-only permission.
    h.scheme().contextSwitch(0, 7);
    EXPECT_TRUE(h.canRead(7, pmoBase(0)));
    EXPECT_FALSE(h.canWrite(7, pmoBase(0)));
}

TEST(MpkVirt, ContextSwitchFlushesDttlb)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    auto &virt = static_cast<MpkVirtScheme &>(h.scheme());
    h.attachGranted(1, pmoBase(0), kSize);
    h.canWrite(0, pmoBase(0));
    EXPECT_GE(virt.dttlb().usedCount(), 1u);
    h.scheme().contextSwitch(0, 1);
    EXPECT_EQ(virt.dttlb().usedCount(), 0u);
    EXPECT_DOUBLE_EQ(virt.contextSwitches.value(), 1.0);
}

TEST(MpkVirt, DetachFreesKeyAndCleansState)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    auto &virt = static_cast<MpkVirtScheme &>(h.scheme());
    h.attachGranted(1, pmoBase(0), kSize);
    h.canWrite(0, pmoBase(0));
    const ProtKey key = virt.keyOf(1);
    ASSERT_NE(key, kInvalidKey);
    h.detach(1);
    EXPECT_EQ(virt.keyOf(1), kInvalidKey);
    EXPECT_EQ(virt.domainOfKey(key), kNullDomain);
    EXPECT_EQ(virt.dtt().rootEntryCount(), 0u);
}

TEST(MpkVirt, LruVictimSelection)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    auto &virt = static_cast<MpkVirtScheme &>(h.scheme());
    for (unsigned i = 0; i < 15; ++i) {
        h.attachGranted(i + 1, pmoBase(i), kSize);
        h.canWrite(0, pmoBase(i));
    }
    // Refresh domain 1 so domain 2 becomes LRU.
    h.canWrite(0, pmoBase(0));
    h.attachGranted(99, pmoBase(20), kSize);
    h.canWrite(0, pmoBase(20));
    EXPECT_EQ(virt.keyOf(2), kInvalidKey); // Domain 2 was the victim.
    EXPECT_NE(virt.keyOf(1), kInvalidKey);
}

TEST(MpkVirt, DomainlessAccessesUnaffected)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    h.attach(1, pmoBase(0), kSize);
    const auto out = h.accessOutcome(0, 0x4000, AccessType::Write);
    EXPECT_TRUE(out.allowed); // Non-PMO VA.
    EXPECT_EQ(out.charged(), 0u);
}

TEST(MpkVirt, DttMemoryModelGrowsWithDomains)
{
    SchemeHarness h(SchemeKind::MpkVirt);
    auto &virt = static_cast<MpkVirtScheme &>(h.scheme());
    const auto empty = virt.dttMemoryBytes();
    for (unsigned i = 0; i < 8; ++i)
        h.attach(i + 1, pmoBase(i), kSize);
    EXPECT_GT(virt.dttMemoryBytes(), empty);
}

} // namespace
} // namespace pmodv
