/**
 * @file
 * End-to-end integration tests across the whole stack: capture a
 * workload trace to a file, replay it, and check stability; run a
 * crash/recovery cycle across namespace persistence; verify replay
 * pipelines never see protection faults from well-formed workloads.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <span>

#include "core/replay.hh"
#include "exp/executor.hh"
#include "pmo/api.hh"
#include "pmo/txn.hh"
#include "trace/trace_file.hh"
#include "workloads/micro/micro.hh"
#include "workloads/whisper/whisper.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;

TEST(Integration, FileTraceReplayEqualsLiveReplay)
{
    const auto path = std::filesystem::temp_directory_path() /
                      ("pmodv_integ_" + std::to_string(::getpid()) +
                       ".trc");
    workloads::MicroParams params;
    params.numPmos = 8;
    params.pmoBytes = Addr{1} << 20;
    params.numOps = 300;
    params.initialNodes = 100;

    // Capture to both a memory buffer and a file.
    trace::VectorSink memory;
    {
        trace::TraceFileWriter file(path.string());
        trace::FanoutSink fan;
        fan.addSink(&memory);
        fan.addSink(&file);
        workloads::TraceCtx ctx(fan, params.seed);
        workloads::makeMicro("avl", params)->run(ctx);
    }

    core::SimConfig cfg;
    auto replay_records = [&](std::span<const trace::TraceRecord> v) {
        core::MultiReplay replay(cfg, {SchemeKind::MpkVirt});
        replay.replayBatch(v);
        return replay.system(SchemeKind::MpkVirt).totalCycles();
    };

    trace::TraceFileReader reader(path.string());
    const auto from_file = reader.view();
    EXPECT_EQ(from_file->size(), memory.records().size());
    EXPECT_EQ(replay_records(from_file->records()),
              replay_records(memory.records()));
    std::filesystem::remove(path);
}

TEST(Integration, WellFormedWorkloadsNeverFault)
{
    workloads::MicroParams params;
    params.numPmos = 32;
    params.pmoBytes = Addr{1} << 20;
    params.numOps = 500;
    params.initialNodes = 64;
    core::SimConfig cfg;
    core::MultiReplay replay(cfg,
                             {SchemeKind::Mpk, SchemeKind::LibMpk,
                              SchemeKind::MpkVirt,
                              SchemeKind::DomainVirt});
    workloads::TraceCtx ctx(replay.sink(), params.seed);
    workloads::makeMicro("rbt", params)->run(ctx);

    for (auto *sys : replay.systems()) {
        EXPECT_DOUBLE_EQ(sys->deniedAccesses.value(), 0.0)
            << arch::schemeName(sys->schemeKind());
    }
}

TEST(Integration, WhisperTraceFaultFree)
{
    workloads::WhisperParams wp;
    wp.numTxns = 100;
    wp.poolBytes = std::size_t{4} << 20;
    wp.initialKeys = 200;
    core::SimConfig cfg;
    core::MultiReplay replay(cfg, {SchemeKind::Mpk,
                                   SchemeKind::DomainVirt});
    pmo::Namespace ns;
    workloads::makeWhisper("redis", wp)->run(ns, replay.sink());
    for (auto *sys : replay.systems())
        EXPECT_DOUBLE_EQ(sys->deniedAccesses.value(), 0.0);
}

TEST(Integration, CrashRecoveryAcrossNamespaceReload)
{
    const auto dir = (std::filesystem::temp_directory_path() /
                      ("pmodv_integ_ns_" + std::to_string(::getpid())))
                         .string();
    std::filesystem::remove_all(dir);
    pmo::Oid counter_oid;

    // Session 1: create a pool, commit 10 increments, then crash in
    // the middle of the 11th.
    {
        pmo::Namespace ns(dir);
        pmo::PmoApi api(ns, 1000, 1);
        pmo::Pool *pool = api.poolCreate("ledger", 256 * 1024);
        counter_oid = api.poolRoot(pool, 8);
        pmo::Transaction txn(*pool);
        for (std::uint64_t i = 1; i <= 10; ++i) {
            txn.begin();
            txn.writeValue<std::uint64_t>(counter_oid, i);
            txn.commit();
        }
        txn.begin();
        txn.writeValue<std::uint64_t>(counter_oid, 999);
        pool->arena().crash(); // Power loss before commit.
        ns.sync();
    }

    // Session 2: reopen, recover, and observe the committed value.
    {
        pmo::Namespace ns(dir);
        pmo::Pool &pool = ns.pool("ledger");
        EXPECT_TRUE(pmo::Transaction::recover(pool));
        std::uint64_t value = 0;
        pool.read(counter_oid, &value, 8);
        EXPECT_EQ(value, 10u);
        pool.check();
    }
    std::filesystem::remove_all(dir);
}

TEST(Integration, SchemeStatsConsistentAfterReplay)
{
    workloads::MicroParams params;
    params.numPmos = 64;
    params.pmoBytes = Addr{1} << 20;
    params.numOps = 400;
    params.initialNodes = 64;
    core::SimConfig cfg;
    core::MultiReplay replay(cfg, {SchemeKind::MpkVirt});
    workloads::TraceCtx ctx(replay.sink(), params.seed);
    workloads::makeMicro("ll", params)->run(ctx);

    auto &sys = replay.system(SchemeKind::MpkVirt);
    auto &scheme = sys.scheme();
    // Every shootdown belongs to a key remap.
    EXPECT_LE(scheme.shootdowns.value(), scheme.keyRemaps.value());
    // Permission changes = 2/op + initial grants.
    EXPECT_DOUBLE_EQ(scheme.permChanges.value(),
                     2.0 * params.numOps + params.numPmos);
    // Cycle buckets are all non-negative and total cycles exceed the
    // sum of protection extras.
    const double extras = scheme.cycPermissionChange.value() +
                          scheme.cycEntryChange.value() +
                          scheme.cycTableMiss.value() +
                          scheme.cycTlbInvalidation.value() +
                          scheme.cycAccessLatency.value();
    EXPECT_GT(extras, 0.0);
    EXPECT_GT(static_cast<double>(sys.totalCycles()), extras);
}

TEST(Integration, RuntimeEnforcementMatchesSimulatedScheme)
{
    // The library's software enforcement and the simulated hardware
    // must agree: a trace produced by a misbehaving thread would be
    // denied by both. Construct one access the runtime forbids and
    // verify the simulated MPK-virt scheme forbids it too.
    pmo::Namespace ns;
    ns.create("p", 256 * 1024, 1000);
    pmo::Runtime rt(ns, 1000, 1);
    const auto &att = rt.attach("p", Perm::ReadWrite);
    const pmo::Oid oid = att.pool->pmalloc(64);

    // Runtime denies (no SETPERM).
    std::uint64_t v;
    EXPECT_THROW(rt.read(0, oid, &v, 8), pmo::ProtectionFault);

    // Simulated scheme denies the equivalent raw trace.
    core::SimConfig cfg;
    core::System sys(cfg, SchemeKind::MpkVirt);
    sys.put(trace::TraceRecord::attach(0, att.domain, att.vaBase,
                                       att.vaSize, Perm::ReadWrite));
    sys.put(trace::TraceRecord::load(0, rt.vaOf(oid), 8, true));
    EXPECT_DOUBLE_EQ(sys.deniedAccesses.value(), 1.0);
}

} // namespace
} // namespace pmodv
