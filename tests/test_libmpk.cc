/**
 * @file
 * Unit tests for the libmpk software-virtualization cost model.
 */

#include <gtest/gtest.h>

#include "arch/libmpk.hh"
#include "scheme_test_util.hh"

namespace pmodv
{
namespace
{

using arch::LibMpkScheme;
using arch::SchemeKind;
using test::pmoBase;
using test::SchemeHarness;

constexpr Addr kSize = Addr{8} << 20; // 8 MB = 2048 pages.

TEST(LibMpk, FunctionalIsolationMatchesHardware)
{
    SchemeHarness h(SchemeKind::LibMpk);
    h.attach(1, pmoBase(0), kSize);
    const Addr a = pmoBase(0) + 0x100;
    EXPECT_FALSE(h.canRead(0, a));
    h.scheme().setPerm(0, 1, Perm::Read);
    EXPECT_TRUE(h.canRead(0, a));
    EXPECT_FALSE(h.canWrite(0, a));
    h.scheme().setPerm(0, 1, Perm::ReadWrite);
    EXPECT_TRUE(h.canWrite(0, a));
    h.scheme().setPerm(0, 1, Perm::None);
    EXPECT_FALSE(h.canRead(0, a));
}

TEST(LibMpk, FastPathWhenKeyHeld)
{
    arch::ProtParams params;
    SchemeHarness h(SchemeKind::LibMpk, params);
    h.attach(1, pmoBase(0), kSize);
    // First grant maps the domain (slow path).
    const Cycles first = h.scheme().setPerm(0, 1, Perm::ReadWrite);
    // Subsequent changes ride the fast path (WRPKRU + bookkeeping).
    const Cycles second = h.scheme().setPerm(0, 1, Perm::Read);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, params.wrpkruCycles + params.libmpkFastPathCycles);
}

TEST(LibMpk, EvictionCostScalesWithVictimSize)
{
    arch::ProtParams params;
    SchemeHarness h(SchemeKind::LibMpk, params);
    auto &lib = static_cast<LibMpkScheme &>(h.scheme());

    // Fill the 15 keys with 8MB domains.
    for (unsigned i = 0; i < 15; ++i)
        h.attachGranted(i + 1, pmoBase(i), kSize);
    EXPECT_DOUBLE_EQ(lib.keyEvictions.value(), 0.0);

    // The 16th mapping evicts: cost includes 2048 PTE patches.
    h.attach(16, pmoBase(16), kSize);
    const Cycles cost = h.scheme().setPerm(0, 16, Perm::ReadWrite);
    EXPECT_DOUBLE_EQ(lib.keyEvictions.value(), 1.0);
    const std::uint64_t pages = kSize / 4096;
    EXPECT_GE(cost, params.libmpkSyscallCycles +
                        params.libmpkPtePatchCycles * pages +
                        arch::CoreTopology{}.tlbInvalidationCycles);
    EXPECT_GE(lib.ptePatches.value(), static_cast<double>(pages));
}

TEST(LibMpk, AccessToEvictedDomainTrapsAndRemaps)
{
    SchemeHarness h(SchemeKind::LibMpk);
    auto &lib = static_cast<LibMpkScheme &>(h.scheme());
    for (unsigned i = 0; i < 16; ++i)
        h.attachGranted(i + 1, pmoBase(i), kSize);
    // Domain 1 was the LRU victim of the 16th mapping.
    EXPECT_EQ(lib.keyOf(1), kInvalidKey);
    const double remaps_before = lib.keyRemaps.value();
    // Touching it traps into the handler (cost lands in fillExtra)
    // and the access then succeeds with the recorded permission.
    const auto out = h.accessOutcome(0, pmoBase(0), AccessType::Write);
    EXPECT_TRUE(out.allowed);
    EXPECT_GT(lib.keyRemaps.value(), remaps_before);
    EXPECT_GT(out.fillCycles, 1000u);
    EXPECT_NE(lib.keyOf(1), kInvalidKey);
}

TEST(LibMpk, ShootdownFlushesVictimTranslations)
{
    SchemeHarness h(SchemeKind::LibMpk);
    for (unsigned i = 0; i < 15; ++i) {
        h.attachGranted(i + 1, pmoBase(i), kSize);
        h.canWrite(0, pmoBase(i)); // Warm the TLB.
    }
    h.attachGranted(16, pmoBase(16), kSize);
    // Victim = domain 1 (LRU): translations must be gone.
    EXPECT_EQ(h.tlbs().l1().probe(pmoBase(0)), nullptr);
}

TEST(LibMpk, SmallDomainsEvictCheaply)
{
    arch::ProtParams params;
    SchemeHarness h(SchemeKind::LibMpk, params);
    const Addr small = Addr{64} << 10; // 64 KB = 16 pages.
    for (unsigned i = 0; i < 16; ++i)
        h.attach(i + 1, pmoBase(i), small);
    for (unsigned i = 0; i < 15; ++i)
        h.scheme().setPerm(0, i + 1, Perm::ReadWrite);
    const Cycles cost = h.scheme().setPerm(0, 16, Perm::ReadWrite);
    // 16-page victim: far below an 8MB eviction.
    EXPECT_LT(cost, params.libmpkSyscallCycles +
                        params.libmpkPtePatchCycles * 2048);
}

TEST(LibMpk, PerThreadPermsSurviveRemapping)
{
    SchemeHarness h(SchemeKind::LibMpk);
    h.attachGranted(1, pmoBase(0), kSize, Perm::Read);
    h.scheme().setPerm(5, 1, Perm::ReadWrite);
    EXPECT_EQ(h.scheme().effectivePerm(0, 1), Perm::Read);
    EXPECT_EQ(h.scheme().effectivePerm(5, 1), Perm::ReadWrite);
    EXPECT_EQ(h.scheme().effectivePerm(9, 1), Perm::None);
}

TEST(LibMpk, DetachReleasesKey)
{
    SchemeHarness h(SchemeKind::LibMpk);
    auto &lib = static_cast<LibMpkScheme &>(h.scheme());
    h.attachGranted(1, pmoBase(0), kSize);
    ASSERT_NE(lib.keyOf(1), kInvalidKey);
    h.detach(1);
    EXPECT_EQ(lib.keyOf(1), kInvalidKey);
}

} // namespace
} // namespace pmodv
