/**
 * @file
 * Unit tests for the address space, TLB and TLB hierarchy.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "tlb/addrspace.hh"
#include "tlb/hierarchy.hh"
#include "tlb/tlb.hh"

namespace pmodv::tlb
{
namespace
{

Region
makeRegion(Addr base, Addr size, DomainId domain,
           MemClass cls = MemClass::Nvm)
{
    Region r;
    r.base = base;
    r.size = size;
    r.domain = domain;
    r.memClass = cls;
    r.pagePerm = Perm::ReadWrite;
    return r;
}

TEST(AddressSpace, MapAndFind)
{
    AddressSpace as;
    as.map(makeRegion(0x10000, 0x4000, 1));
    const Region *r = as.find(0x11000);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->domain, 1u);
    EXPECT_EQ(as.find(0x14000), nullptr); // One past the end.
    EXPECT_EQ(as.find(0xf000), nullptr);
    EXPECT_EQ(as.numRegions(), 1u);
}

TEST(AddressSpace, FindDomainAndPages)
{
    AddressSpace as;
    as.map(makeRegion(0x10000, 0x4000, 7));
    EXPECT_NE(as.findDomain(7), nullptr);
    EXPECT_EQ(as.findDomain(8), nullptr);
    EXPECT_EQ(as.domainPages(7), 4u);
}

TEST(AddressSpace, UnmapVariants)
{
    AddressSpace as;
    as.map(makeRegion(0x10000, 0x1000, 1));
    as.map(makeRegion(0x20000, 0x1000, 2));
    EXPECT_TRUE(as.unmap(0x10000));
    EXPECT_FALSE(as.unmap(0x10000));
    EXPECT_EQ(as.unmapDomain(2), 1u);
    EXPECT_EQ(as.numRegions(), 0u);
}

TEST(AddressSpaceDeathTest, RejectsOverlap)
{
    AddressSpace as;
    as.map(makeRegion(0x10000, 0x4000, 1));
    EXPECT_DEATH(as.map(makeRegion(0x12000, 0x4000, 2)), "overlap");
    EXPECT_DEATH(as.map(makeRegion(0xe000, 0x4000, 3)), "overlap");
}

TEST(AddressSpaceDeathTest, RejectsMisalignment)
{
    AddressSpace as;
    EXPECT_DEATH(as.map(makeRegion(0x10001, 0x1000, 1)), "aligned");
    EXPECT_DEATH(as.map(makeRegion(0x10000, 0x1001, 1)), "multiple");
}

TEST(AddressSpace, RegionsSortedByBase)
{
    AddressSpace as;
    as.map(makeRegion(0x30000, 0x1000, 3));
    as.map(makeRegion(0x10000, 0x1000, 1));
    as.map(makeRegion(0x20000, 0x1000, 2));
    auto regions = as.regions();
    ASSERT_EQ(regions.size(), 3u);
    EXPECT_LT(regions[0].base, regions[1].base);
    EXPECT_LT(regions[1].base, regions[2].base);
}

TlbParams
smallTlb()
{
    TlbParams p;
    p.name = "t";
    p.entries = 8;
    p.assoc = 4; // 2 sets.
    return p;
}

TlbEntry
entryFor(Addr va, ProtKey key = kNullKey,
         DomainId domain = kNullDomain)
{
    TlbEntry e;
    e.vpn = va >> 12;
    e.pageSize = PageSize::Size4K;
    e.key = key;
    e.domain = domain;
    return e;
}

TEST(Tlb, InsertLookup)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, smallTlb());
    EXPECT_EQ(tlb.lookup(0x5000), nullptr);
    tlb.insert(entryFor(0x5000, 3));
    TlbEntry *e = tlb.lookup(0x5123);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->key, 3u);
    EXPECT_DOUBLE_EQ(tlb.hits.value(), 1.0);
    EXPECT_DOUBLE_EQ(tlb.misses.value(), 1.0);
}

TEST(Tlb, ReinsertSamePageOverwrites)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, smallTlb());
    tlb.insert(entryFor(0x5000, 3));
    tlb.insert(entryFor(0x5000, 9));
    EXPECT_EQ(tlb.validCount(), 1u);
    EXPECT_EQ(tlb.lookup(0x5000)->key, 9u);
}

TEST(Tlb, EvictionWithinSet)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, smallTlb()); // 2 sets, 4 ways.
    // Pages with even VPNs map to set 0: stride 2 pages.
    for (Addr i = 0; i < 5; ++i)
        tlb.insert(entryFor(i * 2 * 4096));
    EXPECT_EQ(tlb.validCount(), 4u);
}

TEST(Tlb, FlushAll)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, smallTlb());
    tlb.insert(entryFor(0x1000));
    tlb.insert(entryFor(0x2000));
    EXPECT_EQ(tlb.flushAll(), 2u);
    EXPECT_EQ(tlb.validCount(), 0u);
    EXPECT_DOUBLE_EQ(tlb.flushedEntries.value(), 2.0);
}

TEST(Tlb, FlushRangeIsExact)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, smallTlb());
    tlb.insert(entryFor(0x1000));
    tlb.insert(entryFor(0x2000));
    tlb.insert(entryFor(0x3000));
    EXPECT_EQ(tlb.flushRange(0x2000, 0x1000), 1u);
    EXPECT_EQ(tlb.probe(0x1000) != nullptr, true);
    EXPECT_EQ(tlb.probe(0x2000), nullptr);
    EXPECT_NE(tlb.probe(0x3000), nullptr);
}

TEST(Tlb, FlushKeyAndDomain)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, smallTlb());
    tlb.insert(entryFor(0x1000, 3, 10));
    tlb.insert(entryFor(0x2000, 4, 11));
    tlb.insert(entryFor(0x3000, 3, 12));
    EXPECT_EQ(tlb.flushKey(3), 2u);
    EXPECT_EQ(tlb.validCount(), 1u);
    tlb.insert(entryFor(0x4000, 5, 11));
    EXPECT_EQ(tlb.flushDomain(11), 2u);
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST(Tlb, LargePages)
{
    stats::Group root(nullptr, "");
    Tlb tlb(&root, smallTlb());
    TlbEntry e;
    e.pageSize = PageSize::Size2M;
    e.vpn = (Addr{1} << 30) >> 21;
    tlb.insert(e);
    // Any VA within the 2MB page hits.
    EXPECT_NE(tlb.lookup((Addr{1} << 30) + 0x12345), nullptr);
    EXPECT_EQ(tlb.lookup((Addr{1} << 30) + (Addr{1} << 21)), nullptr);
}

class RecordingFillPolicy : public TlbFillPolicy
{
  public:
    Cycles
    fill(ThreadId, Addr va, const Region *region,
         TlbEntry &entry) override
    {
        ++fills;
        lastVa = va;
        lastRegion = region;
        entry.key = 5;
        return extra;
    }

    unsigned fills = 0;
    Addr lastVa = 0;
    const Region *lastRegion = nullptr;
    Cycles extra = 0;
};

TEST(TlbHierarchy, WalkFillsBothLevels)
{
    stats::Group root(nullptr, "");
    AddressSpace as;
    as.map(makeRegion(0x100000, 0x4000, 2));
    TlbHierarchyParams params;
    TlbHierarchy h(&root, params, as);
    RecordingFillPolicy policy;
    h.setFillPolicy(&policy);

    auto res = h.translate(0, 0x100123);
    EXPECT_TRUE(res.walked);
    EXPECT_EQ(res.latency, params.l2.accessLatency + params.walkLatency);
    EXPECT_EQ(policy.fills, 1u);
    ASSERT_NE(policy.lastRegion, nullptr);
    EXPECT_EQ(policy.lastRegion->domain, 2u);
    EXPECT_EQ(res.entry->key, 5u);
    EXPECT_EQ(res.entry->memClass, MemClass::Nvm);

    // Second access: pure L1 hit, zero added latency.
    auto res2 = h.translate(0, 0x100456);
    EXPECT_TRUE(res2.l1Hit);
    EXPECT_EQ(res2.latency, 0u);
    EXPECT_EQ(policy.fills, 1u);
}

TEST(TlbHierarchy, FillExtraSeparatedFromLatency)
{
    stats::Group root(nullptr, "");
    AddressSpace as;
    as.map(makeRegion(0x100000, 0x1000, 2));
    TlbHierarchyParams params;
    TlbHierarchy h(&root, params, as);
    RecordingFillPolicy policy;
    policy.extra = 500;
    h.setFillPolicy(&policy);

    auto res = h.translate(0, 0x100000);
    EXPECT_EQ(res.fillExtra, 500u);
    EXPECT_EQ(res.latency, params.l2.accessLatency + params.walkLatency);
}

TEST(TlbHierarchy, L2HitPromotesToL1)
{
    stats::Group root(nullptr, "");
    AddressSpace as;
    TlbHierarchyParams params;
    params.l1.entries = 4;
    params.l1.assoc = 4; // Single set.
    TlbHierarchy h(&root, params, as);

    // Walk 5 unmapped pages: the 5th evicts the 1st from L1 (L2 keeps
    // it).
    for (Addr i = 0; i < 5; ++i)
        h.translate(0, i * 4096);
    auto res = h.translate(0, 0);
    EXPECT_TRUE(res.l2Hit);
    EXPECT_FALSE(res.walked);
    EXPECT_EQ(res.latency, params.l2.accessLatency);
    // And it is now back in L1.
    EXPECT_TRUE(h.translate(0, 0).l1Hit);
}

TEST(TlbHierarchy, UnmappedVaGetsDomainlessDramEntry)
{
    stats::Group root(nullptr, "");
    AddressSpace as;
    TlbHierarchyParams params;
    TlbHierarchy h(&root, params, as);
    auto res = h.translate(0, 0xdead000);
    EXPECT_EQ(res.entry->domain, kNullDomain);
    EXPECT_EQ(res.entry->memClass, MemClass::Dram);
    EXPECT_EQ(res.entry->key, kNullKey);
}

TEST(TlbHierarchy, FlushRangeHitsBothLevels)
{
    stats::Group root(nullptr, "");
    AddressSpace as;
    as.map(makeRegion(0x100000, 0x2000, 2));
    TlbHierarchyParams params;
    TlbHierarchy h(&root, params, as);
    h.translate(0, 0x100000);
    h.translate(0, 0x101000);
    // Both pages are in L1 and L2: 4 entries total.
    EXPECT_EQ(h.flushRange(0x100000, 0x2000), 4u);
    EXPECT_TRUE(h.translate(0, 0x100000).walked);
}

} // namespace
} // namespace pmodv::tlb
