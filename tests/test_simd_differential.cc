/**
 * @file
 * Scalar-vs-SIMD differential: the vectorized tag probes, branchless
 * PLRU updates and packed-rank LRU of the model-bound fast path are
 * pure host-speed optimizations — forcing the scalar fallbacks at
 * runtime (simd::setForceScalar) must leave every stats tree, event
 * ring and Perfetto export byte-identical across all six schemes, at
 * K=1 and K=4. Any divergence means a probe or victim scan is not
 * semantics-preserving.
 */

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.hh"
#include "core/system.hh"
#include "exp/trace_export.hh"
#include "stats/export.hh"
#include "trace/event_ring.hh"
#include "trace/perfetto.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using trace::TraceRecord;

constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::NoProtection, SchemeKind::Lowerbound,
    SchemeKind::Mpk,          SchemeKind::LibMpk,
    SchemeKind::MpkVirt,      SchemeKind::DomainVirt,
};

/** Restores the runtime SIMD switch no matter how a test exits. */
struct ScalarGuard
{
    ~ScalarGuard() { simd::setForceScalar(false); }
};

/**
 * A deterministic trace leaning on the probe-heavy paths: enough
 * domains for key pressure, two threads with switches and grants,
 * strided and pseudo-random accesses (TLB/cache evictions on every
 * level), plus detach/re-attach shootdowns.
 */
std::vector<TraceRecord>
probeHeavyTrace()
{
    constexpr Addr base = Addr{1} << 33;
    constexpr Addr stride = Addr{16} << 20;
    constexpr Addr size = Addr{4} << 20;
    constexpr unsigned domains = 20;
    std::vector<TraceRecord> t;
    for (unsigned d = 1; d <= domains; ++d) {
        t.push_back(TraceRecord::attach(0, d, base + (d - 1) * stride,
                                        size, Perm::ReadWrite));
        t.push_back(TraceRecord::setPerm(0, d, Perm::ReadWrite));
    }
    std::uint16_t tid = 0;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (unsigned i = 0; i < 2000; ++i) {
        if (i % 97 == 96) {
            tid = static_cast<std::uint16_t>(1 - tid);
            t.push_back(TraceRecord::threadSwitch(tid));
        }
        // xorshift keeps the stream deterministic but scattered enough
        // to churn every set of every TLB/cache level.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const unsigned d = static_cast<unsigned>(x % domains) + 1;
        const Addr addr = base + (d - 1) * stride + (x % (size - 8));
        if (i % 3 == 0)
            t.push_back(TraceRecord::store(tid, addr, 8, true));
        else
            t.push_back(TraceRecord::load(tid, addr, 8, true));
    }
    t.push_back(TraceRecord::detach(tid, 7));
    t.push_back(TraceRecord::attach(tid, 7, base + 6 * stride, size,
                                    Perm::ReadWrite));
    t.push_back(TraceRecord::load(tid, base + 6 * stride, 8, true));
    return t;
}

std::string
eventsToJson(const core::System &sys)
{
    std::string out = "[";
    bool first = true;
    for (const trace::Event &ev : sys.events().snapshot()) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"kind\":\"";
        out += trace::eventKindName(ev.kind);
        out += "\",\"cycle\":" + std::to_string(ev.cycle);
        out += ",\"tid\":" + std::to_string(ev.tid);
        out += ",\"arg\":" + std::to_string(ev.arg);
        out += ",\"value\":" + std::to_string(ev.value) + "}";
    }
    out += "]";
    return out;
}

/** Full observable output of one replay: stats, events, Perfetto. */
struct Observed
{
    std::string stats;
    std::string events;
    std::string perfetto;
};

Observed
runOnce(SchemeKind kind, unsigned cores, bool force_scalar)
{
    simd::setForceScalar(force_scalar);
    core::SimConfig cfg;
    cfg.topology.numCores = cores;
    cfg.samplingEpochCycles = 65536;
    cfg.samplingMaxEpochs = 256;
    core::System sys(cfg, kind);
    const std::vector<TraceRecord> records = probeHeavyTrace();
    sys.replayBatch(records);
    sys.finish();
    Observed obs;
    obs.stats = stats::toJsonString(sys);
    obs.events = eventsToJson(sys);
    trace::PerfettoExporter exporter = exp::makeExporter(cfg);
    exp::appendSystemTrack(exporter, sys, "replay");
    obs.perfetto = exporter.toString();
    simd::setForceScalar(false);
    return obs;
}

void
compareAllSchemes(unsigned cores)
{
    ScalarGuard guard;
    for (SchemeKind kind : kAllSchemes) {
        const Observed simd = runOnce(kind, cores, false);
        const Observed scalar = runOnce(kind, cores, true);
        EXPECT_EQ(simd.stats, scalar.stats)
            << arch::schemeName(kind) << " K=" << cores
            << ": stats diverge between SIMD and scalar probes";
        EXPECT_EQ(simd.events, scalar.events)
            << arch::schemeName(kind) << " K=" << cores
            << ": event rings diverge between SIMD and scalar probes";
        EXPECT_EQ(simd.perfetto, scalar.perfetto)
            << arch::schemeName(kind) << " K=" << cores
            << ": Perfetto exports diverge between SIMD and scalar";
    }
}

TEST(SimdDifferential, SingleCoreByteIdentical)
{
    compareAllSchemes(1);
}

TEST(SimdDifferential, FourCoreByteIdentical)
{
    compareAllSchemes(4);
}

/** The runtime switch actually reaches the probe dispatch. */
TEST(SimdDifferential, ForceScalarSwitchesActiveImpl)
{
    ScalarGuard guard;
    if (std::string_view(simd::activeImpl()) == "scalar(compile-time)") {
        // PMODV_FORCE_SCALAR build: there is no SIMD path to switch
        // away from, so the runtime switch is a no-op by design.
        simd::setForceScalar(true);
        EXPECT_STREQ(simd::activeImpl(), "scalar(compile-time)");
        return;
    }
    simd::setForceScalar(true);
    EXPECT_STREQ(simd::activeImpl(), "scalar(runtime)");
    simd::setForceScalar(false);
    EXPECT_STRNE(simd::activeImpl(), "scalar(runtime)");
}

} // namespace
} // namespace pmodv
