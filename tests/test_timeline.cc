/**
 * @file
 * Tests of the timeline profiler stack: stats::TimeSeries epoch
 * sampling (deltas sum to aggregates, bounded coalescing, disabled
 * no-op), per-domain hot-object attribution (arch::DomainProfile and
 * its surfacing through executor rows and suite JSON), TxnCommit op
 * identity (workloads stamp the op's primary domain into the
 * OpBegin/OpEnd aux field), and the Perfetto trace export (well-formed
 * Chrome trace-event JSON, required event classes, byte-identical
 * output across executor worker counts).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "core/system.hh"
#include "exp/suite.hh"
#include "exp/trace_export.hh"
#include "stats/timeseries.hh"
#include "trace/perfetto.hh"
#include "workloads/micro/micro.hh"
#include "workloads/trace_ctx.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using trace::TraceRecord;

// ------------------------------------------- minimal JSON validator

/**
 * A strict recursive-descent JSON checker (no values surfaced — we
 * only care that the exported document parses). Cheaper than pulling
 * a JSON library into the test build; CI additionally json.load()s
 * real trace files.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek('}'))
            return true;
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!peek(':'))
                return false;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek('}'))
                return true;
            if (!peek(','))
                return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek(']'))
            return true;
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek(']'))
                return true;
            if (!peek(','))
                return false;
        }
    }

    bool string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing '"'
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '-' || s_[pos_] == '+')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool peek(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------ TimeSeries (unit)

TEST(TimeSeries, DisabledByDefaultIsANoOp)
{
    stats::Group root(nullptr, "");
    stats::Scalar counter(&root, "ctr", "");
    stats::TimeSeries ts(&root, "tl", "");

    EXPECT_FALSE(ts.enabled());
    ts.track(counter, "ctr"); // No-op while disabled.
    EXPECT_EQ(ts.numTracks(), 0u);

    counter += 5;
    ts.tick(1'000'000);
    ts.finalize(2'000'000);
    EXPECT_EQ(ts.numEpochs(), 0u);
}

TEST(TimeSeries, EpochDeltasSumToFinalCounterValue)
{
    stats::Group root(nullptr, "");
    stats::Scalar counter(&root, "ctr", "");
    stats::TimeSeries ts(&root, "tl", "");
    ts.configure(100, 16);
    ts.track(counter, "ctr");

    // Uneven increments across several epochs plus a partial tail.
    std::uint64_t now = 0;
    for (int i = 0; i < 35; ++i) {
        counter += i;
        now += 10;
        ts.tick(now);
    }
    ts.finalize(now);

    ASSERT_EQ(ts.numTracks(), 1u);
    ASSERT_GT(ts.numEpochs(), 1u);
    EXPECT_DOUBLE_EQ(ts.trackTotal(0), counter.value());
}

TEST(TimeSeries, CoalescingBoundsRowsAndPreservesTotals)
{
    stats::Group root(nullptr, "");
    stats::Scalar counter(&root, "ctr", "");
    stats::TimeSeries ts(&root, "tl", "");
    ts.configure(10, 4); // Tiny bound: force repeated coalescing.
    ts.track(counter, "ctr");

    std::uint64_t now = 0;
    for (int i = 0; i < 200; ++i) {
        counter += 3;
        now += 7;
        ts.tick(now);
    }
    ts.finalize(now);

    EXPECT_LE(ts.numEpochs(), 4u);
    EXPECT_GT(ts.epochCycles(), 10u); // Width doubled at least once.
    EXPECT_DOUBLE_EQ(ts.trackTotal(0), counter.value());
}

// --------------------------------------------- DomainProfile (unit)

TEST(DomainProfile, TopNRanksByEvictionsThenAscendingDomain)
{
    arch::DomainProfile profile;
    profile.access(3);
    profile.access(3);
    profile.eviction(7, 4);
    profile.eviction(7, 2);
    profile.eviction(5, 1);
    profile.setPerm(9);

    const auto top = profile.topN(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].domain, 7u);
    EXPECT_EQ(top[0].counters.evictions, 2u);
    EXPECT_EQ(top[0].counters.shootdownPages, 6u);
    EXPECT_EQ(top[1].domain, 5u);

    // Ties break toward the smaller domain id.
    arch::DomainProfile tied;
    tied.access(11);
    tied.access(4);
    const auto order = tied.topN(2);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0].domain, 4u);
    EXPECT_EQ(order[1].domain, 11u);
}

// ----------------------------------------- System-level integration

std::vector<TraceRecord>
captureAvl(unsigned pmos = 24, std::uint64_t ops = 3000)
{
    workloads::MicroParams params;
    params.numPmos = pmos;
    params.numOps = ops;
    params.initialNodes = 256;
    trace::VectorSink sink;
    workloads::TraceCtx ctx(sink, params.seed);
    workloads::makeMicro("avl", params)->run(ctx);
    return sink.take();
}

core::SimConfig
sampledConfig(Cycles epoch = 4096)
{
    core::SimConfig config;
    config.samplingEpochCycles = epoch;
    config.samplingMaxEpochs = 64;
    config.eventRingCapacity = 1 << 16;
    return config;
}

TEST(SystemTimeline, EpochDeltasSumToAggregateCounters)
{
    const auto records = captureAvl();
    core::System sys(sampledConfig(), SchemeKind::MpkVirt);
    for (const TraceRecord &rec : records)
        sys.put(rec);
    sys.finish();

    const stats::TimeSeries &tl = sys.timeline;
    ASSERT_TRUE(tl.enabled());
    ASSERT_GT(tl.numEpochs(), 1u);

    // Every track's epoch deltas must reconstruct its aggregate.
    const std::map<std::string, double> expected{
        {"cycles", sys.cycles.value()},
        {"instructions", sys.instructions.value()},
        {"mem_accesses", sys.memAccesses.value()},
        {"operations", sys.operations.value()},
        {"cyc_mem", sys.cycMem.value()},
        {"cyc_prot_fill", sys.cycProtFill.value()},
        {"cyc_prot_check", sys.cycProtCheck.value()},
        {"cyc_perm_instr", sys.cycPermInstr.value()},
    };
    ASSERT_GE(tl.numTracks(), expected.size());
    for (std::size_t t = 0; t < tl.numTracks(); ++t) {
        const auto it = expected.find(tl.trackLabel(t));
        if (it == expected.end())
            continue;
        EXPECT_DOUBLE_EQ(tl.trackTotal(t), it->second)
            << "track " << tl.trackLabel(t);
    }
    EXPECT_GT(sys.cycles.value(), 0.0);
}

TEST(SystemTimeline, DisabledByDefault)
{
    const auto records = captureAvl(8, 500);
    core::System sys(core::SimConfig{}, SchemeKind::MpkVirt);
    for (const TraceRecord &rec : records)
        sys.put(rec);
    sys.finish();
    EXPECT_FALSE(sys.timeline.enabled());
    EXPECT_EQ(sys.timeline.numEpochs(), 0u);
}

TEST(TxnCommit, OpMarkersCarryThePrimaryDomain)
{
    // The satellite regression: micro workloads stamp each
    // operation's primary domain into the OpBegin/OpEnd aux field, so
    // the replay's TxnCommit events are attributable.
    const auto records = captureAvl(16, 1000);
    std::size_t op_ends = 0, stamped = 0;
    for (const TraceRecord &rec : records) {
        if (rec.type != trace::RecordType::OpEnd)
            continue;
        ++op_ends;
        if (rec.aux != kNullDomain)
            ++stamped;
    }
    ASSERT_GT(op_ends, 0u);
    EXPECT_EQ(stamped, op_ends);

    // And the replayed event ring carries them through.
    core::System sys(sampledConfig(), SchemeKind::MpkVirt);
    for (const TraceRecord &rec : records)
        sys.put(rec);
    sys.finish();
    std::size_t commits = 0, attributed = 0;
    for (const trace::Event &ev : sys.events().snapshot()) {
        if (ev.kind != trace::EventKind::TxnCommit)
            continue;
        ++commits;
        if (ev.arg != kNullDomain)
            ++attributed;
        EXPECT_GT(ev.value, 0u); // Op duration in cycles.
    }
    ASSERT_GT(commits, 0u);
    EXPECT_EQ(attributed, commits);
}

TEST(HotDomains, ProfiledSchemeReportsActivity)
{
    const auto records = captureAvl();
    core::System sys(sampledConfig(), SchemeKind::MpkVirt);
    for (const TraceRecord &rec : records)
        sys.put(rec);
    sys.finish();

    const arch::DomainProfile &profile = sys.scheme().domainProfile();
    EXPECT_GT(profile.numActiveDomains(), 0u);
    const auto top = profile.topN(4);
    ASSERT_FALSE(top.empty());
    EXPECT_GT(top[0].counters.accesses, 0u);

    const std::string json = exp::hotDomainsJson(profile);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"accesses\""), std::string::npos);
    EXPECT_NE(json.find("\"evictions\""), std::string::npos);
}

// ------------------------------------------------- Perfetto export

TEST(Perfetto, ExportIsWellFormedAndCoversEventClasses)
{
    const auto records = captureAvl();
    core::SimConfig config = sampledConfig();
    core::System sys(config, SchemeKind::MpkVirt);
    for (const TraceRecord &rec : records)
        sys.put(rec);
    sys.finish();

    trace::PerfettoExporter exporter = exp::makeExporter(config);
    exp::appendSystemTrack(exporter, sys, "mpk_virt");

    EXPECT_EQ(exporter.numTracks(), 1u);
    const std::string json = exporter.toString();
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Track metadata, spans, instants and counter samples all present.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // mpk_virt under key pressure must log evictions + shootdowns.
    EXPECT_NE(json.find("\"key_eviction\""), std::string::npos);
    EXPECT_NE(json.find("\"shootdown\""), std::string::npos);
    EXPECT_NE(json.find("\"key_evictions\""), std::string::npos);
}

TEST(Perfetto, EscapesQuotesAndHandlesEmptyDocument)
{
    trace::PerfettoExporter exporter(2200.0);
    EXPECT_TRUE(JsonChecker(exporter.toString()).valid());

    const int track = exporter.addTrack("odd \"name\"\\");
    exporter.span(track, "sp\"an", 100, 50, 0, {{"k\"ey", 1.5}});
    exporter.instant(track, "i", 120, 1);
    exporter.counter(track, "c", 200, 3.25);
    EXPECT_EQ(exporter.numEvents(), 4u);
    EXPECT_TRUE(JsonChecker(exporter.toString()).valid())
        << exporter.toString();
}

TEST(Perfetto, ExecutorExportIsIdenticalAcrossWorkerCounts)
{
    exp::RawPointSpec spec;
    spec.trace = trace::TraceBuffer::fromRecords(captureAvl());
    spec.config = sampledConfig();
    spec.schemes = {SchemeKind::NoProtection, SchemeKind::MpkVirt,
                    SchemeKind::DomainVirt};

    auto runWith = [&](unsigned jobs) {
        common::ThreadPool pool(jobs);
        exp::Executor executor(pool);
        trace::PerfettoExporter exporter =
            exp::makeExporter(spec.config);
        executor.setPerfettoExporter(&exporter);
        executor.runRaw(spec);
        return exporter.toString();
    };

    const std::string serial = runWith(1);
    const std::string parallel = runWith(4);
    EXPECT_GT(serial.size(), 2u);
    EXPECT_EQ(serial, parallel);
    EXPECT_TRUE(JsonChecker(serial).valid());
}

// -------------------------------------------------- suite plumbing

TEST(SuiteReport, EmbedsTimelineAndHotDomains)
{
    exp::SweepSpec sweep;
    sweep.benchmarks = {"avl"};
    sweep.pmoCounts = {24};
    sweep.base.numOps = 2000;
    sweep.base.initialNodes = 256;
    sweep.config = sampledConfig();
    sweep.schemes = {SchemeKind::MpkVirt};

    exp::ExperimentSuite suite("timeline_probe");
    suite.add(sweep);
    common::ThreadPool pool(2);
    suite.run(pool);

    std::ostringstream os;
    suite.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"hot_domains\""), std::string::npos);
    EXPECT_NE(json.find("\"timeline\""), std::string::npos);
    EXPECT_NE(json.find("\"epoch_cycles\""), std::string::npos);

    ASSERT_FALSE(suite.microRows().empty());
    const exp::MicroPoint &pt = suite.microRows().front();
    const auto it = pt.hotDomainsJson.find(SchemeKind::MpkVirt);
    ASSERT_NE(it, pt.hotDomainsJson.end());
    EXPECT_TRUE(JsonChecker(it->second).valid()) << it->second;
    EXPECT_NE(it->second.find("\"domain\""), std::string::npos);
}

} // namespace
} // namespace pmodv
