/**
 * @file
 * Latency-quantile correctness: Histogram::quantile and the shared
 * quantileFromBuckets() are pinned against an exact sorted-sample
 * reference on adversarial shapes (all mass in one bucket, overflow
 * into the unbounded top bucket, empty histograms), and the
 * JSON-exportable bucket form (bucketLow/High/Unbounded) is shown to
 * reproduce the live histogram's quantiles bit for bit — the
 * round-trip the Python schema checker relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/stats.hh"

namespace pmodv::stats
{
namespace
{

/** Exact nearest-rank quantile of a sample vector. */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> values, double q)
{
    std::sort(values.begin(), values.end());
    auto k = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    k = std::clamp<std::size_t>(k, 1, values.size());
    return values[k - 1];
}

/** A parentless histogram plus the samples fed into it. */
struct Fed
{
    Group root{nullptr, "root"};
    Histogram hist{&root, "h", "test histogram"};
    std::vector<std::uint64_t> values;

    void
    feed(std::initializer_list<std::uint64_t> vs)
    {
        for (std::uint64_t v : vs) {
            hist.sample(v);
            values.push_back(v);
        }
    }
};

/** Rebuild the JSON-export bucket form from the public accessors. */
std::vector<BucketCount>
exportedBuckets(const Histogram &h)
{
    std::vector<BucketCount> out;
    for (std::size_t i = 0; i < h.numBuckets(); ++i) {
        if (h.bucket(i) == 0)
            continue;
        out.push_back({h.bucketLow(i),
                       h.bucketUnbounded(i) ? 0 : h.bucketHigh(i),
                       h.bucket(i)});
    }
    return out;
}

TEST(Quantile, EmptyHistogramIsZero)
{
    Fed f;
    EXPECT_EQ(f.hist.quantile(0.5), 0.0);
    EXPECT_EQ(f.hist.quantile(0.999), 0.0);
}

TEST(Quantile, SingleSampleIsExactEverywhere)
{
    Fed f;
    f.feed({1234});
    for (double q : {0.01, 0.5, 0.99, 0.999, 1.0})
        EXPECT_EQ(f.hist.quantile(q), 1234.0) << "q=" << q;
}

TEST(Quantile, ExtremesAreExactMinMax)
{
    Fed f;
    f.feed({7, 100, 3, 900, 900, 42, 5000, 64, 8, 13});
    // k == 1 and k == samples short-circuit to the tracked min/max.
    EXPECT_EQ(f.hist.quantile(0.05), 3.0);
    EXPECT_EQ(f.hist.quantile(1.0), 5000.0);
    EXPECT_EQ(f.hist.quantile(0.999), 5000.0); // ceil(.999*10) = 10.
}

TEST(Quantile, DistinctBucketsAreExact)
{
    // One sample per bucket: the within-bucket interpolation
    // degenerates (count == 1 -> lo, clamped by min/max), so every
    // quantile must equal the exact sorted-sample reference.
    Fed f;
    f.feed({1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
        EXPECT_EQ(f.hist.quantile(q),
                  static_cast<double>(exactQuantile(f.values, q)))
            << "q=" << q;
    }
}

TEST(Quantile, SingleBucketMassCollapsesToValue)
{
    // Adversarial shape: every sample identical. min == max pins the
    // interpolation interval to a point for every q.
    Fed f;
    for (int i = 0; i < 1000; ++i)
        f.feed({777});
    for (double q : {0.01, 0.5, 0.99, 0.999})
        EXPECT_EQ(f.hist.quantile(q), 777.0) << "q=" << q;
}

TEST(Quantile, WithinBucketStaysInsideExactBucket)
{
    // Mixed mass: the interpolated value must land in the same log2
    // bucket as the exact nearest-rank sample, and within [min, max].
    Fed f;
    std::uint64_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        f.feed({(x >> 33) % 100000});
    }
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
        const double got = f.hist.quantile(q);
        const std::uint64_t exact = exactQuantile(f.values, q);
        EXPECT_GE(got, static_cast<double>(f.hist.min()));
        EXPECT_LE(got, static_cast<double>(f.hist.max()));
        // Same power-of-two bucket as the exact answer.
        const double lo = exact == 0 ? 0.0
                                     : std::pow(2.0, std::floor(std::log2(
                                           static_cast<double>(exact))));
        const double hi = exact == 0 ? 1.0 : lo * 2.0;
        EXPECT_GE(got, lo) << "q=" << q << " exact=" << exact;
        EXPECT_LT(got, hi) << "q=" << q << " exact=" << exact;
    }
}

TEST(Quantile, MonotoneInQ)
{
    Fed f;
    std::uint64_t x = 99;
    for (int i = 0; i < 2000; ++i) {
        x = x * 2862933555777941757ull + 3037000493ull;
        f.feed({(x >> 40) % 5000});
    }
    double prev = 0.0;
    for (double q = 0.01; q <= 1.0; q += 0.01) {
        const double cur = f.hist.quantile(q);
        EXPECT_GE(cur, prev) << "q=" << q;
        prev = cur;
    }
}

TEST(Quantile, OverflowBucketUsesTrackedMax)
{
    // A tiny 4-bucket histogram: values >= 8 land in the unbounded
    // top bucket (hi == 0 sentinel). Tail quantiles must interpolate
    // up to the tracked max, never to an imaginary bucket edge.
    Group root{nullptr, "root"};
    Histogram h{&root, "h", "tiny", 4};
    for (int i = 0; i < 90; ++i)
        h.sample(1);
    for (int i = 0; i < 10; ++i)
        h.sample(1'000'000);
    EXPECT_EQ(h.quantile(1.0), 1'000'000.0);
    const double p999 = h.quantile(0.999);
    EXPECT_GE(p999, 8.0);
    EXPECT_LE(p999, 1'000'000.0);
    // p50 sits in the mass at 1.
    EXPECT_EQ(h.quantile(0.5), 1.0);
}

TEST(Quantile, JsonBucketFormRoundTripsBitForBit)
{
    // The suite JSON stores samples/min/max plus {lo, hi?, count}
    // buckets. Recomputing from that form must reproduce the live
    // histogram's quantiles exactly — this is what lets the Python
    // schema checker re-derive p99 and what the perf gate pins.
    Fed f;
    std::uint64_t x = 4242;
    for (int i = 0; i < 3000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        f.feed({(x >> 30) % 250000});
    }
    const std::vector<BucketCount> buckets = exportedBuckets(f.hist);
    for (double q = 0.001; q < 1.0; q += 0.007) {
        const double live = f.hist.quantile(q);
        const double rebuilt = quantileFromBuckets(
            f.hist.samples(), f.hist.min(), f.hist.max(), buckets, q);
        EXPECT_EQ(live, rebuilt) << "q=" << q;
    }
}

TEST(Quantile, SingleCountBucketAtLowEdgeIsExact)
{
    // Regression pin: a bucket holding exactly one sample must report
    // that bucket's reachable low edge, never an interpolated
    // midpoint — with count == 1 there is nothing to interpolate
    // between, and the recorded min/max clamp pins the edge to the
    // sample when it sits exactly on the bucket boundary.
    Fed f;
    // 64 lands on the low edge of its log2 bucket [64, 128) and is
    // the only sample there; the mass below fixes its rank.
    for (int i = 0; i < 99; ++i)
        f.feed({3});
    f.feed({64});
    EXPECT_EQ(f.hist.quantile(0.995), 64.0);
    EXPECT_EQ(f.hist.quantile(1.0), 64.0);

    // The same shape through the JSON bucket form: {lo=64, hi=128,
    // count=1} with max=64 must come back as exactly 64.
    EXPECT_EQ(quantileFromBuckets(100, 3, 64,
                                  {{2, 4, 99}, {64, 128, 1}}, 0.995),
              64.0);
    // And a lone single-sample histogram recorded at its bucket's low
    // edge is exact at every q.
    EXPECT_EQ(quantileFromBuckets(1, 128, 128, {{128, 256, 1}}, 0.5),
              128.0);
}

TEST(Quantile, FromBucketsHandlesDegenerateInput)
{
    EXPECT_EQ(quantileFromBuckets(0, 0, 0, {}, 0.5), 0.0);
    // One bucket, one sample.
    EXPECT_EQ(quantileFromBuckets(1, 5, 5, {{4, 8, 1}}, 0.5), 5.0);
    // q clamping: q <= 0 behaves as the first sample, q >= 1 as max.
    EXPECT_EQ(quantileFromBuckets(10, 2, 64, {{2, 4, 5}, {32, 64, 5}},
                                  0.0),
              2.0);
    EXPECT_EQ(quantileFromBuckets(10, 2, 64, {{2, 4, 5}, {32, 64, 5}},
                                  1.0),
              64.0);
}

} // namespace
} // namespace pmodv::stats
