/**
 * @file
 * Unit tests for the common substrate: bit utilities, permission
 * algebra, pseudo-LRU trackers and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/plru.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace pmodv
{
namespace
{

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(4097));
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(BitUtil, Alignment)
{
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
    EXPECT_TRUE(isAligned(8192, 4096));
    EXPECT_FALSE(isAligned(8191, 4096));
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(~std::uint64_t{0}, 63, 0), ~std::uint64_t{0});
}

TEST(BitUtil, PageHelpers)
{
    EXPECT_EQ(pageBytes(PageSize::Size4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Size2M), std::uint64_t{1} << 21);
    EXPECT_EQ(pageBytes(PageSize::Size1G), std::uint64_t{1} << 30);
    EXPECT_EQ(pageBase(0x12345), 0x12000u);
    EXPECT_EQ(pageNumber(0x12345), 0x12u);
}

TEST(Perm, Algebra)
{
    EXPECT_EQ(permIntersect(Perm::ReadWrite, Perm::Read), Perm::Read);
    EXPECT_EQ(permIntersect(Perm::Read, Perm::Write), Perm::None);
    EXPECT_EQ(permUnion(Perm::Read, Perm::Write), Perm::ReadWrite);
    EXPECT_TRUE(permAllows(Perm::ReadWrite, Perm::Read));
    EXPECT_TRUE(permAllows(Perm::ReadWrite, Perm::Write));
    EXPECT_FALSE(permAllows(Perm::Read, Perm::Write));
    EXPECT_FALSE(permAllows(Perm::None, Perm::Read));
    EXPECT_TRUE(permAllows(Perm::Read, Perm::None));
}

TEST(Perm, AccessMapping)
{
    EXPECT_EQ(permForAccess(AccessType::Read), Perm::Read);
    EXPECT_EQ(permForAccess(AccessType::Write), Perm::Write);
    EXPECT_TRUE(permCanRead(Perm::ReadWrite));
    EXPECT_FALSE(permCanWrite(Perm::Read));
}

TEST(Perm, Strings)
{
    EXPECT_EQ(permToString(Perm::None), "-");
    EXPECT_EQ(permToString(Perm::Read), "R");
    EXPECT_EQ(permToString(Perm::Write), "W");
    EXPECT_EQ(permToString(Perm::ReadWrite), "RW");
}

TEST(TreePlru, SingleWay)
{
    TreePlru plru(1);
    EXPECT_EQ(plru.victim(), 0u);
    plru.touch(0);
    EXPECT_EQ(plru.victim(), 0u);
}

TEST(TreePlru, VictimNeverMostRecent)
{
    for (unsigned ways : {2u, 4u, 8u, 16u}) {
        TreePlru plru(ways);
        Rng rng(7);
        for (int i = 0; i < 1000; ++i) {
            const unsigned w = static_cast<unsigned>(rng.next(ways));
            plru.touch(w);
            EXPECT_NE(plru.victim(), w)
                << "ways=" << ways << " iter=" << i;
        }
    }
}

TEST(TreePlru, RoundRobinTouchCyclesVictims)
{
    TreePlru plru(4);
    // Touch 0..3 in order; victim should then be 0 (oldest path).
    for (unsigned w = 0; w < 4; ++w)
        plru.touch(w);
    EXPECT_EQ(plru.victim(), 0u);
}

TEST(TreePlru, ResetForgetsHistory)
{
    TreePlru plru(8);
    for (unsigned w = 0; w < 8; ++w)
        plru.touch(w);
    plru.reset();
    EXPECT_EQ(plru.victim(), 0u);
}

TEST(TrueLru, ExactOrder)
{
    TrueLru lru(4);
    lru.touch(2);
    lru.touch(0);
    lru.touch(3);
    lru.touch(1);
    EXPECT_EQ(lru.victim(), 2u);
    lru.touch(2);
    EXPECT_EQ(lru.victim(), 0u);
}

TEST(TrueLru, Reset)
{
    TrueLru lru(3);
    lru.touch(1);
    lru.touch(2);
    lru.reset();
    EXPECT_EQ(lru.victim(), 0u);
}

/** Tree-PLRU must agree with exact LRU on strict sequential sweeps. */
TEST(TreePlru, MatchesTrueLruOnSequentialSweep)
{
    TreePlru plru(8);
    TrueLru lru(8);
    for (int round = 0; round < 5; ++round) {
        for (unsigned w = 0; w < 8; ++w) {
            plru.touch(w);
            lru.touch(w);
        }
        EXPECT_EQ(plru.victim(), lru.victim());
    }
}

TEST(Rng, Deterministic)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.raw(), b.raw());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.raw() == b.raw();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextInBounds)
{
    Rng rng(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.next(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ZipfSkew)
{
    Rng rng(77);
    // With heavy skew, the first decile should dominate.
    std::uint64_t low = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        if (rng.zipf(1000, 0.9) < 100)
            ++low;
    }
    EXPECT_GT(low, draws / 4);
    // Uniform degenerate case stays in range.
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.zipf(50, 0.0), 50u);
}

TEST(ZipfDist, MassesSumToOneAndDecrease)
{
    const ZipfDist dist(100, 0.99);
    EXPECT_EQ(dist.size(), 100u);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < dist.size(); ++r) {
        sum += dist.rankMass(r);
        if (r > 0) {
            EXPECT_LT(dist.rankMass(r), dist.rankMass(r - 1));
        }
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_EQ(dist.rankMass(100), 0.0); // Out of range.
}

TEST(ZipfDist, InverseCdfBoundaries)
{
    const ZipfDist dist(64, 0.99);
    EXPECT_EQ(dist.sample(0.0), 0u);
    EXPECT_EQ(dist.sample(0.999999999), 63u);
    // The rank-0 slice of the CDF is exactly rankMass(0) wide.
    const double edge = dist.rankMass(0);
    EXPECT_EQ(dist.sample(edge - 1e-9), 0u);
    EXPECT_EQ(dist.sample(edge + 1e-9), 1u);
}

TEST(ZipfDist, ThetaZeroIsUniform)
{
    const ZipfDist dist(10, 0.0);
    for (std::uint64_t r = 0; r < 10; ++r)
        EXPECT_NEAR(dist.rankMass(r), 0.1, 1e-12);
    EXPECT_EQ(dist.sample(0.05), 0u);
    EXPECT_EQ(dist.sample(0.95), 9u);
}

TEST(ZipfDist, DrawsMatchExactMassesChiSquare)
{
    const std::uint64_t n = 50;
    const ZipfDist dist(n, 0.99);
    Rng rng(1234);
    const int draws = 50000;
    std::vector<std::uint64_t> counts(n, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[dist(rng)];
    // Pearson chi-square against the exact masses. 49 dof; the 99.9th
    // percentile is ~85, so 120 is a generous deterministic bound.
    double chi2 = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
        const double expected = dist.rankMass(r) * draws;
        ASSERT_GT(expected, 5.0); // Keep the test in chi-square regime.
        const double diff = static_cast<double>(counts[r]) - expected;
        chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 120.0);
}

TEST(Logging, QuietFlagRoundTrip)
{
    const bool old = setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    warn("this warning should be suppressed");
    inform("this info should be suppressed");
    setLogQuiet(old);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("intentional test panic %d", 42), "panic");
}

} // namespace
} // namespace pmodv
