/**
 * @file
 * Unit tests for the VA radix tree underlying the DTT and DRT.
 */

#include <gtest/gtest.h>

#include "arch/radix.hh"

namespace pmodv::arch
{
namespace
{

struct Payload
{
    int tag = 0;
};

using Tree = VaRadixTree<Payload>;

TEST(Radix, SlotGeometry)
{
    EXPECT_EQ(radixSlotShift(0), 39u); // 512 GB
    EXPECT_EQ(radixSlotShift(1), 30u); // 1 GB
    EXPECT_EQ(radixSlotShift(2), 21u); // 2 MB
    EXPECT_EQ(radixSlotShift(3), 12u); // 4 KB
    EXPECT_EQ(radixSlotIndex(Addr{5} << 30, 1), 5u);
    EXPECT_EQ(radixSlotIndex(Addr{513} << 30, 1), 1u);
}

TEST(Radix, EmptyWalkMisses)
{
    Tree tree;
    auto res = tree.walk(0x1234000);
    EXPECT_FALSE(res.found);
    EXPECT_EQ(res.domain, kNullDomain);
}

TEST(Radix, SinglePageInsert)
{
    Tree tree;
    auto info = std::make_shared<Payload>();
    info->tag = 7;
    tree.insert(0x1000, 0x1000, 3, info);
    auto res = tree.walk(0x1abc);
    ASSERT_TRUE(res.found);
    EXPECT_EQ(res.domain, 3u);
    EXPECT_EQ(res.payload->tag, 7);
    EXPECT_EQ(res.depth, kRadixLevels);
    EXPECT_FALSE(tree.walk(0x2000).found);
    EXPECT_FALSE(tree.walk(0x0).found);
}

TEST(Radix, GreedyDecompositionOf8MbRegion)
{
    Tree tree;
    // 8MB at a 2MB-aligned base decomposes into 4 x 2MB root entries.
    const Addr base = Addr{1} << 33;
    tree.insert(base, Addr{8} << 20, 5, std::make_shared<Payload>());
    EXPECT_EQ(tree.rootEntryCount(), 4u);
    // Every page in the range resolves; depth stops at the 2MB level.
    for (Addr off = 0; off < (Addr{8} << 20); off += Addr{1} << 21) {
        auto res = tree.walk(base + off + 123);
        ASSERT_TRUE(res.found);
        EXPECT_EQ(res.domain, 5u);
        EXPECT_EQ(res.depth, 3u);
    }
    EXPECT_FALSE(tree.walk(base + (Addr{8} << 20)).found);
}

TEST(Radix, MixedGranularityDecomposition)
{
    Tree tree;
    // 2MB + 8KB: one 2MB slot + two 4KB slots.
    const Addr base = Addr{1} << 31;
    tree.insert(base, (Addr{1} << 21) + 0x2000, 9,
                std::make_shared<Payload>());
    EXPECT_EQ(tree.rootEntryCount(), 3u);
    EXPECT_TRUE(tree.walk(base).found);
    EXPECT_TRUE(tree.walk(base + (Addr{1} << 21)).found);
    EXPECT_TRUE(tree.walk(base + (Addr{1} << 21) + 0x1000).found);
    EXPECT_FALSE(tree.walk(base + (Addr{1} << 21) + 0x2000).found);
}

TEST(Radix, GigabyteRegionUsesOneEntry)
{
    Tree tree;
    tree.insert(Addr{4} << 30, Addr{1} << 30, 2,
                std::make_shared<Payload>());
    EXPECT_EQ(tree.rootEntryCount(), 1u);
    auto res = tree.walk((Addr{4} << 30) + (Addr{500} << 20));
    ASSERT_TRUE(res.found);
    EXPECT_EQ(res.depth, 2u); // PMO root entry at the 1GB level.
}

TEST(Radix, SharedPayloadAcrossSlots)
{
    Tree tree;
    auto info = std::make_shared<Payload>();
    tree.insert(Addr{1} << 33, Addr{4} << 21, 5, info);
    auto a = tree.walk(Addr{1} << 33);
    auto b = tree.walk((Addr{1} << 33) + (Addr{3} << 21));
    EXPECT_EQ(a.payload, b.payload);
    a.payload->tag = 42;
    EXPECT_EQ(b.payload->tag, 42);
}

TEST(Radix, RemoveDomainPrunesNodes)
{
    Tree tree;
    tree.insert(Addr{1} << 33, Addr{8} << 20, 5,
                std::make_shared<Payload>());
    tree.insert(Addr{2} << 33, Addr{8} << 20, 6,
                std::make_shared<Payload>());
    const auto nodes_before = tree.nodeCount();
    EXPECT_EQ(tree.remove(5), 4u);
    EXPECT_FALSE(tree.walk(Addr{1} << 33).found);
    EXPECT_TRUE(tree.walk(Addr{2} << 33).found);
    EXPECT_LT(tree.nodeCount(), nodes_before);
    EXPECT_EQ(tree.remove(5), 0u); // Idempotent.
}

TEST(Radix, ManyDomains)
{
    Tree tree;
    const unsigned n = 256;
    for (unsigned i = 0; i < n; ++i) {
        tree.insert((Addr{1} << 33) + Addr{i} * (Addr{16} << 20),
                    Addr{8} << 20, i + 1, std::make_shared<Payload>());
    }
    for (unsigned i = 0; i < n; ++i) {
        auto res = tree.walk((Addr{1} << 33) +
                             Addr{i} * (Addr{16} << 20) + 0x5000);
        ASSERT_TRUE(res.found);
        EXPECT_EQ(res.domain, i + 1);
    }
}

TEST(RadixDeathTest, RejectsNullDomain)
{
    Tree tree;
    EXPECT_DEATH(
        tree.insert(0x1000, 0x1000, kNullDomain,
                    std::make_shared<Payload>()),
        "NULL domain");
}

TEST(RadixDeathTest, RejectsDoubleInsert)
{
    Tree tree;
    tree.insert(0x1000, 0x1000, 1, std::make_shared<Payload>());
    EXPECT_DEATH(
        tree.insert(0x1000, 0x1000, 2, std::make_shared<Payload>()),
        "occupied");
}

TEST(RadixDeathTest, RejectsMisalignedRange)
{
    Tree tree;
    EXPECT_DEATH(
        tree.insert(0x1001, 0x1000, 1, std::make_shared<Payload>()),
        "aligned");
}

} // namespace
} // namespace pmodv::arch
