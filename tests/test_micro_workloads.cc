/**
 * @file
 * Tests for the multi-PMO microbenchmark generators: data-structure
 * invariants under load, trace shape (2 SETPERMs per operation,
 * attach records first), determinism, and the synthetic PMO space.
 */

#include <gtest/gtest.h>

#include "trace/sinks.hh"
#include "workloads/micro/workloads.hh"

namespace pmodv::workloads
{
namespace
{

MicroParams
smallParams(std::uint64_t seed = 42)
{
    MicroParams p;
    p.numPmos = 16;
    p.pmoBytes = Addr{2} << 20;
    p.numOps = 500;
    p.initialNodes = 200;
    p.seed = seed;
    return p;
}

// ---------------------------------------------------------------
// Synthetic space.
// ---------------------------------------------------------------

TEST(SyntheticSpace, AttachRecordsEmitted)
{
    trace::VectorSink sink;
    TraceCtx ctx(sink, 1);
    SyntheticSpace space(ctx, 4, Addr{1} << 20);
    ASSERT_EQ(sink.records().size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(sink.records()[i].type, trace::RecordType::Attach);
        EXPECT_EQ(sink.records()[i].aux, i + 1);
    }
}

TEST(SyntheticSpace, DisjointVaRanges)
{
    trace::NullSink sink;
    TraceCtx ctx(sink, 1);
    SyntheticSpace space(ctx, 8, Addr{8} << 20);
    for (unsigned i = 1; i < 8; ++i) {
        EXPECT_GE(space.pmo(i).vaBase(),
                  space.pmo(i - 1).vaBase() + space.pmo(i - 1).bytes());
    }
}

TEST(SyntheticSpace, OwnerResolvesAllocations)
{
    trace::NullSink sink;
    TraceCtx ctx(sink, 1);
    SyntheticSpace space(ctx, 8, Addr{1} << 20);
    for (unsigned i = 0; i < 8; ++i) {
        const Addr va = space.pmo(i).alloc(96);
        EXPECT_EQ(&space.owner(va), &space.pmo(i));
    }
}

TEST(SyntheticPmo, AllocFreeReuse)
{
    SyntheticPmo pmo(1, Addr{1} << 30, Addr{1} << 16);
    const Addr a = pmo.alloc(96);
    const Addr b = pmo.alloc(96);
    EXPECT_NE(a, b);
    pmo.free(a, 96);
    EXPECT_EQ(pmo.alloc(96), a); // First-fit reuse.
}

TEST(SyntheticPmoDeathTest, ExhaustionPanics)
{
    SyntheticPmo pmo(1, Addr{1} << 30, 256);
    pmo.alloc(128);
    pmo.alloc(128);
    EXPECT_DEATH(pmo.alloc(16), "exhausted");
}

TEST(TraceCtx, MutingSuppressesDataRecordsOnly)
{
    trace::VectorSink sink;
    TraceCtx ctx(sink, 1);
    ctx.setMuted(true);
    ctx.load(0x1000);
    ctx.store(0x1000);
    ctx.compute(100);
    ctx.setPerm(1, Perm::Read); // Control records still pass.
    ctx.setMuted(false);
    ctx.load(0x1000);
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].type, trace::RecordType::SetPerm);
    EXPECT_EQ(sink.records()[1].type, trace::RecordType::Load);
}

TEST(TraceCtx, ThreadSwitchOnlyOnChange)
{
    trace::VectorSink sink;
    TraceCtx ctx(sink, 1);
    ctx.setThread(0); // Already thread 0: no record.
    ctx.setThread(2);
    ctx.setThread(2);
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0].type, trace::RecordType::ThreadSwitch);
}

// ---------------------------------------------------------------
// Data-structure invariants (parameterized over all benchmarks).
// ---------------------------------------------------------------

class MicroInvariants
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint64_t>>
{
};

TEST_P(MicroInvariants, HoldAfterManyOps)
{
    const auto &[name, seed] = GetParam();
    auto workload = makeMicro(name, smallParams(seed));
    trace::NullSink sink;
    TraceCtx ctx(sink, seed);
    workload->run(ctx);
    workload->checkInvariants(); // panics on violation.
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchesAndSeeds, MicroInvariants,
    ::testing::Combine(::testing::Values("avl", "rbt", "bt", "ll",
                                         "ss"),
                       ::testing::Values(1u, 7u, 42u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------
// Trace shape.
// ---------------------------------------------------------------

class MicroTraceShape : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MicroTraceShape, TwoSwitchesPerOpAndAttachFirst)
{
    auto params = smallParams();
    auto workload = makeMicro(GetParam(), params);
    trace::VectorSink buffer;
    trace::TeeCountingSink sink(&buffer);
    TraceCtx ctx(sink, params.seed);
    workload->run(ctx);

    EXPECT_EQ(sink.count(trace::RecordType::Attach), params.numPmos);
    EXPECT_EQ(sink.operations(), params.numOps);
    // 2 per op + the initial per-domain grant.
    EXPECT_EQ(sink.permissionSwitches(),
              2 * params.numOps + params.numPmos);
    EXPECT_GT(sink.pmoAccesses(), params.numOps); // Real work happened.

    // Attaches precede everything else.
    const auto &recs = buffer.records();
    for (unsigned i = 0; i < params.numPmos; ++i)
        EXPECT_EQ(recs[i].type, trace::RecordType::Attach);
}

TEST_P(MicroTraceShape, OpsBracketedBySetPerm)
{
    auto params = smallParams();
    params.numOps = 50;
    auto workload = makeMicro(GetParam(), params);
    trace::VectorSink sink;
    TraceCtx ctx(sink, params.seed);
    workload->run(ctx);

    const auto &recs = sink.records();
    using trace::RecordType;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (recs[i].type == RecordType::OpBegin) {
            ASSERT_LT(i + 1, recs.size());
            EXPECT_EQ(recs[i + 1].type, RecordType::SetPerm);
        }
        if (recs[i].type == RecordType::OpEnd) {
            ASSERT_GE(i, 1u);
            EXPECT_EQ(recs[i - 1].type, RecordType::SetPerm);
        }
    }
}

TEST_P(MicroTraceShape, DeterministicAcrossRuns)
{
    auto params = smallParams();
    params.numOps = 200;
    auto run = [&]() {
        auto workload = makeMicro(GetParam(), params);
        trace::VectorSink sink;
        TraceCtx ctx(sink, params.seed);
        workload->run(ctx);
        return sink.take();
    };
    EXPECT_EQ(run(), run());
}

TEST_P(MicroTraceShape, AccessesFallInsideAttachedRanges)
{
    auto params = smallParams();
    params.numOps = 100;
    auto workload = makeMicro(GetParam(), params);
    trace::VectorSink sink;
    TraceCtx ctx(sink, params.seed);
    workload->run(ctx);

    // Collect attach ranges.
    std::vector<std::pair<Addr, Addr>> ranges;
    for (const auto &rec : sink.records()) {
        if (rec.type == trace::RecordType::Attach)
            ranges.emplace_back(rec.addr, rec.addr + rec.value);
    }
    for (const auto &rec : sink.records()) {
        if (!rec.isPmoAccess())
            continue;
        bool inside = false;
        for (const auto &[lo, hi] : ranges)
            inside |= rec.addr >= lo && rec.addr + rec.aux <= hi;
        ASSERT_TRUE(inside)
            << "PMO access outside every attached range: "
            << trace::toString(rec);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenches, MicroTraceShape,
                         ::testing::Values("avl", "rbt", "bt", "ll",
                                           "ss"));

// ---------------------------------------------------------------
// Structure-specific checks.
// ---------------------------------------------------------------

TEST(Avl, NodeCountTracksInsertDeleteMix)
{
    auto params = smallParams();
    params.insertRatio = 1.0; // Insert only.
    AvlWorkload workload(params);
    trace::NullSink sink;
    TraceCtx ctx(sink, params.seed);
    workload.run(ctx);
    // Duplicates aside, the count is near initial + ops.
    EXPECT_GE(workload.nodeCount(),
              params.initialNodes + params.numOps - 5);
    workload.checkInvariants();
}

TEST(StringSwap, PermutationPreserved)
{
    auto params = smallParams();
    StringSwapWorkload workload(params);
    trace::NullSink sink;
    TraceCtx ctx(sink, params.seed);
    workload.run(ctx);
    workload.checkInvariants();
    EXPECT_FALSE(workload.permutation().empty());
}

TEST(MicroFactory, RejectsUnknownName)
{
    EXPECT_EXIT((void)makeMicro("bogus", smallParams()),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(MicroFactory, NamesListMatchesTableIV)
{
    const auto &names = microNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "avl");
    EXPECT_EQ(names[4], "ss");
    for (const auto &name : names)
        EXPECT_NE(makeMicro(name, smallParams()), nullptr);
}

} // namespace
} // namespace pmodv::workloads
