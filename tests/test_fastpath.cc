/**
 * @file
 * Unit regressions for the model-bound fast path:
 *
 *  - L0 translation filters: any structural change (capacity
 *    eviction, flush/shootdown, invalidation) must bump the
 *    component's generation so a stale filter entry can never answer
 *    a lookup.
 *  - TreePlru LUTs: touchMasked/victimMasked must track touch()/
 *    victim() exactly over random sequences.
 *  - SIMD probes: findU64/argminU64 must equal the scalar references
 *    on random rows.
 *  - Packed-rank LRU: touchRank/victimRank must name the same victim
 *    as the timestamp reference once a set is full.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "arch/ptlb.hh"
#include "common/lrurank.hh"
#include "common/plru.hh"
#include "common/simd.hh"
#include "mem/cache.hh"
#include "stats/stats.hh"
#include "tlb/tlb.hh"

namespace pmodv
{
namespace
{

/** Tiny deterministic xorshift for the property sweeps. */
struct XorShift
{
    std::uint64_t x;
    explicit XorShift(std::uint64_t seed) : x(seed) {}
    std::uint64_t
    next()
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    }
};

tlb::TlbEntry
entryFor(Addr vpn)
{
    tlb::TlbEntry e;
    e.vpn = vpn;
    e.pageSize = PageSize::Size4K;
    return e;
}

TEST(FastPathL0, TlbFlushBumpsGeneration)
{
    stats::Group root(nullptr, "");
    tlb::Tlb t(&root, {"t", 64, 4, 0});
    t.insert(entryFor(100));
    const std::uint64_t va = Addr{100} << 12;
    ASSERT_NE(t.lookup(va), nullptr);
    ASSERT_NE(t.lookup(va), nullptr); // L0-serviced repeat.
    EXPECT_GE(t.l0Hits(), 1u);

    // Every invalidation flavor must advance the generation, or a
    // stale L0 entry could answer the next lookup.
    std::uint64_t gen = t.generation();
    t.flushRange(va, 4096);
    EXPECT_GT(t.generation(), gen) << "flushRange left generation";
    EXPECT_EQ(t.lookup(va), nullptr)
        << "stale L0 hit after the page was flushed";

    t.insert(entryFor(100));
    ASSERT_NE(t.lookup(va), nullptr);
    gen = t.generation();
    t.flushKey(0);
    EXPECT_GT(t.generation(), gen) << "flushKey left generation";
    EXPECT_EQ(t.lookup(va), nullptr);

    t.insert(entryFor(100));
    ASSERT_NE(t.lookup(va), nullptr);
    gen = t.generation();
    t.flushDomain(kNullDomain);
    EXPECT_GT(t.generation(), gen) << "flushDomain left generation";
    EXPECT_EQ(t.lookup(va), nullptr);

    t.insert(entryFor(100));
    ASSERT_NE(t.lookup(va), nullptr);
    gen = t.generation();
    t.flushAll();
    EXPECT_GT(t.generation(), gen) << "flushAll left generation";
    EXPECT_EQ(t.lookup(va), nullptr);
}

TEST(FastPathL0, TlbCapacityEvictionNeverLeavesStaleL0)
{
    stats::Group root(nullptr, "");
    // 4 entries, 2-way: trivially overflowed.
    tlb::Tlb t(&root, {"t", 4, 2, 0});
    t.insert(entryFor(2));
    const Addr va = Addr{2} << 12;
    ASSERT_NE(t.lookup(va), nullptr);
    // Fill until vpn 2 is displaced (same set: vpns even).
    t.insert(entryFor(4));
    t.insert(entryFor(6));
    t.insert(entryFor(8));
    // Whatever got evicted, a lookup must reflect the real contents.
    const bool present = t.probe(va) != nullptr;
    EXPECT_EQ(t.lookup(va) != nullptr, present)
        << "L0 answer disagrees with the actual TLB contents";
}

TEST(FastPathL0, CacheInvalidateBumpsGeneration)
{
    stats::Group root(nullptr, "");
    mem::Cache c(&root, {"c", 4096, 2, 64, 1, mem::ReplPolicy::Lru});
    const Addr addr = 0x1000;
    c.access(addr, AccessType::Read);
    c.access(addr, AccessType::Read);
    EXPECT_GE(c.l0Hits(), 1u);

    std::uint64_t gen = c.generation();
    ASSERT_TRUE(c.invalidate(addr));
    EXPECT_GT(c.generation(), gen) << "invalidate left generation";
    EXPECT_FALSE(c.access(addr, AccessType::Read).hit)
        << "stale L0 hit after the line was invalidated";

    c.access(addr, AccessType::Read);
    gen = c.generation();
    c.invalidateAll();
    EXPECT_GT(c.generation(), gen) << "invalidateAll left generation";
    EXPECT_FALSE(c.access(addr, AccessType::Read).hit);
}

TEST(FastPathL0, PtlbInvalidateBumpsGeneration)
{
    stats::Group root(nullptr, "");
    arch::Ptlb p(&root, 16);
    arch::PtlbEntry e;
    e.domain = 3;
    e.perm = Perm::ReadWrite;
    arch::PtlbEntry evicted;
    bool had = false;
    p.insert(e, evicted, had);
    ASSERT_NE(p.lookup(3), nullptr);
    ASSERT_NE(p.lookup(3), nullptr);
    EXPECT_GE(p.l0Hits(), 1u);

    const std::uint64_t gen = p.generation();
    ASSERT_TRUE(p.invalidate(3));
    EXPECT_GT(p.generation(), gen) << "invalidate left generation";
    EXPECT_EQ(p.lookup(3), nullptr)
        << "stale L0 hit after the domain was invalidated";
}

TEST(FastPathPlru, MaskedOpsMatchReference)
{
    for (unsigned ways : {2u, 4u, 6u, 8u, 16u}) {
        TreePlru a(ways); // driven via touch()/victim()
        TreePlru b(ways); // driven via the masked LUT forms
        const auto touch_lut = TreePlru::makeTouchLut(ways);
        const auto victim_lut = TreePlru::makeVictimLut(ways);
        ASSERT_FALSE(touch_lut.empty());
        ASSERT_TRUE(victim_lut.valid());
        XorShift rng(0xdecaf000 + ways);
        for (unsigned i = 0; i < 2000; ++i) {
            const unsigned way =
                static_cast<unsigned>(rng.next() % ways);
            a.touch(way);
            b.touchMasked(touch_lut[way]);
            ASSERT_EQ(a.victim(), b.victimMasked(victim_lut))
                << "ways=" << ways << " step=" << i;
        }
    }
}

TEST(FastPathSimd, FindU64MatchesScalar)
{
    XorShift rng(0xfeed);
    for (unsigned n : {1u, 2u, 4u, 6u, 8u, 16u, 24u}) {
        std::vector<std::uint64_t> row(n + simd::kTagPad, 0);
        for (unsigned iter = 0; iter < 500; ++iter) {
            for (unsigned i = 0; i < n; ++i)
                row[i] = rng.next() % 8; // dense: frequent matches
            const std::uint64_t target = rng.next() % 8;
            ASSERT_EQ(simd::findU64(row.data(), n, target),
                      simd::findU64Scalar(row.data(), n, target))
                << "n=" << n;
        }
    }
}

TEST(FastPathSimd, ArgminU64MatchesScalar)
{
    XorShift rng(0xabcd);
    for (unsigned n : {1u, 4u, 8u, 16u, 32u}) {
        std::vector<std::uint64_t> row(n + simd::kTagPad, 0);
        for (unsigned iter = 0; iter < 500; ++iter) {
            for (unsigned i = 0; i < n; ++i)
                row[i] = rng.next() % 16; // dense: frequent ties
            ASSERT_EQ(simd::argminU64(row.data(), n),
                      simd::argminU64Scalar(row.data(), n))
                << "n=" << n;
        }
    }
}

TEST(FastPathLruRank, MatchesTimestampReference)
{
    // Drive packed ranks and a timestamp model with the same touch
    // stream; once every way has been touched (the only state in
    // which victims are consulted) they must always agree.
    XorShift rng(0x5eed);
    for (unsigned ways : {1u, 2u, 3u, 6u, 8u, 16u}) {
        std::uint64_t packed = 0;
        std::vector<std::uint64_t> stamps(ways, 0);
        std::uint64_t clock = 0;
        std::uint64_t touched = 0;
        const std::uint64_t high = lru::rankHighMask(ways);
        for (unsigned i = 0; i < 4000; ++i) {
            const unsigned way =
                static_cast<unsigned>(rng.next() % ways);
            packed = lru::touchRank(packed, way, ways);
            stamps[way] = ++clock;
            touched |= std::uint64_t{1} << way;
            if (touched + 1 != std::uint64_t{1} << ways)
                continue;
            unsigned ref = 0;
            for (unsigned w = 1; w < ways; ++w)
                if (stamps[w] < stamps[ref])
                    ref = w;
            ASSERT_EQ(lru::victimRank(packed, high), ref)
                << "ways=" << ways << " step=" << i;
        }
    }
}

} // namespace
} // namespace pmodv
