/**
 * @file
 * Unit tests for the trace substrate: records, sinks and file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/record.hh"
#include "trace/sinks.hh"
#include "trace/trace_file.hh"

namespace pmodv::trace
{
namespace
{

TEST(Record, SizeIsStable)
{
    EXPECT_EQ(sizeof(TraceRecord), 24u);
}

TEST(Record, LoadStoreBuilders)
{
    auto ld = TraceRecord::load(3, 0x1000, 8, true);
    EXPECT_EQ(ld.type, RecordType::Load);
    EXPECT_EQ(ld.tid, 3);
    EXPECT_EQ(ld.addr, 0x1000u);
    EXPECT_EQ(ld.aux, 8u);
    EXPECT_TRUE(ld.isPmoAccess());
    EXPECT_TRUE(ld.isMemAccess());

    auto st = TraceRecord::store(1, 0x2000, 64, false);
    EXPECT_EQ(st.type, RecordType::Store);
    EXPECT_FALSE(st.isPmoAccess());
    EXPECT_TRUE(st.isMemAccess());
}

TEST(Record, PermFlagsRoundTrip)
{
    for (Perm p :
         {Perm::None, Perm::Read, Perm::Write, Perm::ReadWrite}) {
        auto rec = TraceRecord::setPerm(0, 7, p);
        EXPECT_EQ(rec.perm(), p);
        EXPECT_EQ(rec.aux, 7u);
    }
}

TEST(Record, AttachPageSizeRoundTrip)
{
    for (PageSize ps : {PageSize::Size4K, PageSize::Size2M,
                        PageSize::Size1G}) {
        auto rec = TraceRecord::attach(0, 3, Addr{1} << 30,
                                       Addr{1} << 21, Perm::Read, ps);
        EXPECT_EQ(rec.pageSize(), ps);
        EXPECT_EQ(rec.perm(), Perm::Read); // Flags coexist.
    }
    // Default is 4KB.
    EXPECT_EQ(TraceRecord::attach(0, 1, 0x1000, 0x1000,
                                  Perm::ReadWrite)
                  .pageSize(),
              PageSize::Size4K);
}

TEST(Record, AttachCarriesGeometry)
{
    auto rec = TraceRecord::attach(2, 9, 0x10000, 0x8000, Perm::Read);
    EXPECT_EQ(rec.type, RecordType::Attach);
    EXPECT_EQ(rec.aux, 9u);
    EXPECT_EQ(rec.addr, 0x10000u);
    EXPECT_EQ(rec.value, 0x8000u);
    EXPECT_EQ(rec.perm(), Perm::Read);
}

TEST(Record, ToStringMentionsFields)
{
    auto rec = TraceRecord::setPerm(1, 42, Perm::ReadWrite);
    const std::string s = toString(rec);
    EXPECT_NE(s.find("setperm"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("RW"), std::string::npos);
}

TEST(Record, TypeNamesDistinct)
{
    EXPECT_EQ(recordTypeName(RecordType::Load), "load");
    EXPECT_EQ(recordTypeName(RecordType::ThreadSwitch),
              "thread_switch");
    EXPECT_NE(recordTypeName(RecordType::OpBegin),
              recordTypeName(RecordType::OpEnd));
}

TEST(VectorSink, BuffersInOrder)
{
    VectorSink sink;
    sink.put(TraceRecord::instBlock(0, 10));
    sink.put(TraceRecord::load(0, 0x100, 8, false));
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].type, RecordType::InstBlock);
    EXPECT_EQ(sink.records()[1].type, RecordType::Load);
    auto taken = sink.take();
    EXPECT_EQ(taken.size(), 2u);
}

TEST(FanoutSink, ReplicatesToAll)
{
    VectorSink a, b;
    FanoutSink fan;
    fan.addSink(&a);
    fan.addSink(&b);
    fan.put(TraceRecord::opBegin(0));
    fan.put(TraceRecord::opEnd(0));
    fan.finish();
    EXPECT_EQ(a.records().size(), 2u);
    EXPECT_EQ(b.records(), a.records());
}

TEST(CountingSink, CountsByType)
{
    CountingSink sink;
    sink.put(TraceRecord::instBlock(0, 100));
    sink.put(TraceRecord::load(0, 0x1, 8, true));
    sink.put(TraceRecord::store(0, 0x2, 8, false));
    sink.put(TraceRecord::setPerm(0, 1, Perm::Read));
    sink.put(TraceRecord::wrpkru(0, 1, Perm::Read));
    sink.put(TraceRecord::opBegin(0));
    sink.put(TraceRecord::opEnd(0));

    EXPECT_EQ(sink.memAccesses(), 2u);
    EXPECT_EQ(sink.pmoAccesses(), 1u);
    EXPECT_EQ(sink.permissionSwitches(), 2u);
    EXPECT_EQ(sink.operations(), 1u);
    // 100 block insts + 2 mem + 2 switches.
    EXPECT_EQ(sink.totalInstructions(), 104u);
    sink.reset();
    EXPECT_EQ(sink.totalInstructions(), 0u);
}

TEST(TeeCountingSink, CountsAndForwards)
{
    VectorSink downstream;
    TeeCountingSink tee(&downstream);
    tee.put(TraceRecord::load(0, 0x1, 8, true));
    EXPECT_EQ(tee.memAccesses(), 1u);
    EXPECT_EQ(downstream.records().size(), 1u);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("pmodv_trace_test_" +
                 std::to_string(::getpid()) + ".trc");
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::filesystem::path path_;
};

TEST_F(TraceFileTest, RoundTrip)
{
    std::vector<TraceRecord> records{
        TraceRecord::attach(0, 1, 0x10000, 0x4000, Perm::ReadWrite),
        TraceRecord::setPerm(0, 1, Perm::ReadWrite),
        TraceRecord::load(0, 0x10010, 8, true),
        TraceRecord::store(0, 0x10018, 64, true),
        TraceRecord::instBlock(0, 999),
        TraceRecord::detach(0, 1),
    };
    {
        TraceFileWriter writer(path_.string());
        for (const auto &rec : records)
            writer.put(rec);
        writer.finish();
        EXPECT_EQ(writer.recordsWritten(), records.size());
    }
    TraceFileReader reader(path_.string());
    EXPECT_EQ(reader.recordCount(), records.size());
    auto loaded = reader.readAll();
    EXPECT_EQ(loaded, records);
}

TEST_F(TraceFileTest, PumpIntoSink)
{
    {
        TraceFileWriter writer(path_.string());
        for (int i = 0; i < 10; ++i)
            writer.put(TraceRecord::load(0, 0x1000 + i * 8, 8, true));
    } // Destructor finishes the file.
    TraceFileReader reader(path_.string());
    CountingSink sink;
    EXPECT_EQ(reader.pump(sink), 10u);
    EXPECT_EQ(sink.memAccesses(), 10u);
}

TEST_F(TraceFileTest, IterativeNext)
{
    {
        TraceFileWriter writer(path_.string());
        writer.put(TraceRecord::opBegin(0, 5));
        writer.put(TraceRecord::opEnd(0, 5));
    }
    TraceFileReader reader(path_.string());
    TraceRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.type, RecordType::OpBegin);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.type, RecordType::OpEnd);
    EXPECT_FALSE(reader.next(rec));
}

TEST_F(TraceFileTest, EmptyTraceIsValid)
{
    {
        TraceFileWriter writer(path_.string());
        writer.finish();
    }
    TraceFileReader reader(path_.string());
    EXPECT_EQ(reader.recordCount(), 0u);
    TraceRecord rec;
    EXPECT_FALSE(reader.next(rec));
}

TEST_F(TraceFileTest, RejectsGarbageMagic)
{
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        const char garbage[32] = "this is not a trace file";
        std::fwrite(garbage, 1, sizeof(garbage), f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceFileReader reader(path_.string()),
                ::testing::ExitedWithCode(1), "magic");
}

} // namespace
} // namespace pmodv::trace
