/**
 * @file
 * Unit tests for the trace substrate: records, sinks, the immutable
 * TraceBuffer and v1/v2 file I/O (round-trips, zero-copy views,
 * backward compatibility and corruption detection).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "trace/buffer.hh"
#include "trace/record.hh"
#include "trace/sinks.hh"
#include "trace/trace_file.hh"

namespace pmodv::trace
{
namespace
{

TEST(Record, SizeIsStable)
{
    EXPECT_EQ(sizeof(TraceRecord), 24u);
}

TEST(Record, LoadStoreBuilders)
{
    auto ld = TraceRecord::load(3, 0x1000, 8, true);
    EXPECT_EQ(ld.type, RecordType::Load);
    EXPECT_EQ(ld.tid, 3);
    EXPECT_EQ(ld.addr, 0x1000u);
    EXPECT_EQ(ld.aux, 8u);
    EXPECT_TRUE(ld.isPmoAccess());
    EXPECT_TRUE(ld.isMemAccess());

    auto st = TraceRecord::store(1, 0x2000, 64, false);
    EXPECT_EQ(st.type, RecordType::Store);
    EXPECT_FALSE(st.isPmoAccess());
    EXPECT_TRUE(st.isMemAccess());
}

TEST(Record, PermFlagsRoundTrip)
{
    for (Perm p :
         {Perm::None, Perm::Read, Perm::Write, Perm::ReadWrite}) {
        auto rec = TraceRecord::setPerm(0, 7, p);
        EXPECT_EQ(rec.perm(), p);
        EXPECT_EQ(rec.aux, 7u);
    }
}

TEST(Record, AttachPageSizeRoundTrip)
{
    for (PageSize ps : {PageSize::Size4K, PageSize::Size2M,
                        PageSize::Size1G}) {
        auto rec = TraceRecord::attach(0, 3, Addr{1} << 30,
                                       Addr{1} << 21, Perm::Read, ps);
        EXPECT_EQ(rec.pageSize(), ps);
        EXPECT_EQ(rec.perm(), Perm::Read); // Flags coexist.
    }
    // Default is 4KB.
    EXPECT_EQ(TraceRecord::attach(0, 1, 0x1000, 0x1000,
                                  Perm::ReadWrite)
                  .pageSize(),
              PageSize::Size4K);
}

TEST(Record, AttachCarriesGeometry)
{
    auto rec = TraceRecord::attach(2, 9, 0x10000, 0x8000, Perm::Read);
    EXPECT_EQ(rec.type, RecordType::Attach);
    EXPECT_EQ(rec.aux, 9u);
    EXPECT_EQ(rec.addr, 0x10000u);
    EXPECT_EQ(rec.value, 0x8000u);
    EXPECT_EQ(rec.perm(), Perm::Read);
}

TEST(Record, ToStringMentionsFields)
{
    auto rec = TraceRecord::setPerm(1, 42, Perm::ReadWrite);
    const std::string s = toString(rec);
    EXPECT_NE(s.find("setperm"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("RW"), std::string::npos);
}

TEST(Record, TypeNamesDistinct)
{
    EXPECT_EQ(recordTypeName(RecordType::Load), "load");
    EXPECT_EQ(recordTypeName(RecordType::ThreadSwitch),
              "thread_switch");
    EXPECT_NE(recordTypeName(RecordType::OpBegin),
              recordTypeName(RecordType::OpEnd));
}

TEST(VectorSink, BuffersInOrder)
{
    VectorSink sink;
    sink.put(TraceRecord::instBlock(0, 10));
    sink.put(TraceRecord::load(0, 0x100, 8, false));
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].type, RecordType::InstBlock);
    EXPECT_EQ(sink.records()[1].type, RecordType::Load);
    auto taken = sink.take();
    EXPECT_EQ(taken.size(), 2u);
}

TEST(FanoutSink, ReplicatesToAll)
{
    VectorSink a, b;
    FanoutSink fan;
    fan.addSink(&a);
    fan.addSink(&b);
    fan.put(TraceRecord::opBegin(0));
    fan.put(TraceRecord::opEnd(0));
    fan.finish();
    EXPECT_EQ(a.records().size(), 2u);
    EXPECT_EQ(b.records(), a.records());
}

TEST(CountingSink, CountsByType)
{
    CountingSink sink;
    sink.put(TraceRecord::instBlock(0, 100));
    sink.put(TraceRecord::load(0, 0x1, 8, true));
    sink.put(TraceRecord::store(0, 0x2, 8, false));
    sink.put(TraceRecord::setPerm(0, 1, Perm::Read));
    sink.put(TraceRecord::wrpkru(0, 1, Perm::Read));
    sink.put(TraceRecord::opBegin(0));
    sink.put(TraceRecord::opEnd(0));

    EXPECT_EQ(sink.memAccesses(), 2u);
    EXPECT_EQ(sink.pmoAccesses(), 1u);
    EXPECT_EQ(sink.permissionSwitches(), 2u);
    EXPECT_EQ(sink.operations(), 1u);
    // 100 block insts + 2 mem + 2 switches.
    EXPECT_EQ(sink.totalInstructions(), 104u);
    sink.reset();
    EXPECT_EQ(sink.totalInstructions(), 0u);
}

TEST(TeeCountingSink, CountsAndForwards)
{
    VectorSink downstream;
    TeeCountingSink tee(&downstream);
    tee.put(TraceRecord::load(0, 0x1, 8, true));
    EXPECT_EQ(tee.memAccesses(), 1u);
    EXPECT_EQ(downstream.records().size(), 1u);
}

TEST(TraceBuffer, CopyIsAlignedAndSummarized)
{
    std::vector<TraceRecord> records{
        TraceRecord::instBlock(0, 50),
        TraceRecord::load(0, 0x1000, 8, true),
        TraceRecord::store(0, 0x2000, 8, false),
    };
    const auto buf = TraceBuffer::copyOf(records);
    ASSERT_EQ(buf->size(), records.size());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf->data()) %
                  kTraceBufferAlign,
              0u);
    EXPECT_FALSE(buf->zeroCopy());
    const TraceSummary &s = buf->summary();
    EXPECT_EQ(s.totalRecords(), 3u);
    EXPECT_EQ(s.count(RecordType::InstBlock), 1u);
    EXPECT_EQ(s.count(RecordType::Load), 1u);
    EXPECT_EQ(s.count(RecordType::Store), 1u);
    EXPECT_EQ(s.instBlockInsts, 50u);
    EXPECT_EQ(s.pmoAccesses, 1u);
    EXPECT_NE(s.checksum, kFnvOffsetBasis); // Not the empty hash.
}

TEST(TraceBuffer, EmptyBufferIsValid)
{
    const auto buf = TraceBuffer::fromRecords({});
    EXPECT_TRUE(buf->empty());
    EXPECT_EQ(buf->summary().totalRecords(), 0u);
    EXPECT_EQ(buf->summary().checksum, kFnvOffsetBasis);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = std::filesystem::temp_directory_path() /
                ("pmodv_trace_test_" +
                 std::to_string(::getpid()) + ".trc");
    }

    void TearDown() override { std::filesystem::remove(path_); }

    /** A small but type-diverse record sequence. */
    static std::vector<TraceRecord>
    sampleRecords()
    {
        return {
            TraceRecord::attach(0, 1, 0x10000, 0x4000,
                                Perm::ReadWrite),
            TraceRecord::setPerm(0, 1, Perm::ReadWrite),
            TraceRecord::load(0, 0x10010, 8, true),
            TraceRecord::store(0, 0x10018, 64, true),
            TraceRecord::instBlock(0, 999),
            TraceRecord::detach(0, 1),
        };
    }

    /** Write @p records as a version-1 file (16-byte header). */
    void
    writeV1(const std::vector<TraceRecord> &records)
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const std::uint32_t magic = kTraceMagic;
        const std::uint32_t version = kTraceVersionLegacy;
        const std::uint64_t count = records.size();
        std::fwrite(&magic, sizeof(magic), 1, f);
        std::fwrite(&version, sizeof(version), 1, f);
        std::fwrite(&count, sizeof(count), 1, f);
        std::fwrite(records.data(), sizeof(TraceRecord),
                    records.size(), f);
        std::fclose(f);
    }

    std::filesystem::path path_;
};

TEST_F(TraceFileTest, RoundTripThroughView)
{
    const auto records = sampleRecords();
    {
        TraceFileWriter writer(path_.string());
        for (const auto &rec : records)
            writer.put(rec);
        writer.finish();
        EXPECT_EQ(writer.recordsWritten(), records.size());
    }
    TraceFileReader reader(path_.string());
    EXPECT_EQ(reader.version(), kTraceVersion);
    EXPECT_EQ(reader.recordCount(), records.size());
    ASSERT_NE(reader.headerSummary(), nullptr);
    const auto buf = reader.view();
    ASSERT_EQ(buf->size(), records.size());
    EXPECT_TRUE(std::equal(records.begin(), records.end(),
                           buf->records().begin()));
    EXPECT_TRUE(buf->summary().matches(*reader.headerSummary()));
}

TEST_F(TraceFileTest, ViewIsZeroCopyAndAligned)
{
    {
        TraceFileWriter writer(path_.string());
        for (int i = 0; i < 100; ++i)
            writer.put(TraceRecord::load(0, 0x1000 + i * 8, 8, true));
    }
    TraceFileReader reader(path_.string());
    const auto buf = reader.view();
    EXPECT_TRUE(buf->zeroCopy());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf->data()) %
                  kTraceBufferAlign,
              0u);
    EXPECT_EQ(buf->size(), 100u);
}

TEST_F(TraceFileTest, ViewOutlivesReader)
{
    {
        TraceFileWriter writer(path_.string());
        for (int i = 0; i < 8; ++i)
            writer.put(TraceRecord::opBegin(0));
    }
    std::shared_ptr<const TraceBuffer> buf;
    {
        TraceFileReader reader(path_.string());
        buf = reader.view();
    } // Reader (and its FILE*) gone; the mapping must survive.
    ASSERT_EQ(buf->size(), 8u);
    EXPECT_EQ(buf->records()[7].type, RecordType::OpBegin);
}

TEST_F(TraceFileTest, V1FileReadableViaFallback)
{
    const auto records = sampleRecords();
    writeV1(records);
    TraceFileReader reader(path_.string());
    EXPECT_EQ(reader.version(), kTraceVersionLegacy);
    EXPECT_EQ(reader.headerSummary(), nullptr); // v1 has no summary.
    const auto buf = reader.view();
    ASSERT_EQ(buf->size(), records.size());
    EXPECT_TRUE(std::equal(records.begin(), records.end(),
                           buf->records().begin()));
    EXPECT_FALSE(buf->zeroCopy()); // Decode-on-load, not mmap.
    // The recomputed summary is identical to what a v2 writer would
    // have put in the header.
    EXPECT_EQ(buf->summary().totalRecords(), records.size());
    EXPECT_EQ(buf->summary().instBlockInsts, 999u);
}

TEST_F(TraceFileTest, V1ToV2ConversionPreservesRecords)
{
    const auto records = sampleRecords();
    writeV1(records);
    const auto v2path = path_.string() + ".v2";
    {
        TraceFileReader reader(path_.string());
        const auto buf = reader.view();
        TraceFileWriter writer(v2path);
        for (const TraceRecord &rec : buf->records())
            writer.put(rec);
        writer.finish();
    }
    TraceFileReader reader(v2path);
    EXPECT_EQ(reader.version(), kTraceVersion);
    const auto buf = reader.view();
    EXPECT_TRUE(std::equal(records.begin(), records.end(),
                           buf->records().begin()));
    std::filesystem::remove(v2path);
}

TEST_F(TraceFileTest, ViewFeedsSinkBatch)
{
    {
        TraceFileWriter writer(path_.string());
        for (int i = 0; i < 10; ++i)
            writer.put(TraceRecord::load(0, 0x1000 + i * 8, 8, true));
    } // Destructor finishes the file.
    TraceFileReader reader(path_.string());
    const auto buf = reader.view();
    ASSERT_EQ(buf->size(), 10u);
    CountingSink sink;
    sink.addBatch(buf->records());
    sink.finish();
    EXPECT_EQ(sink.memAccesses(), 10u);
}

TEST_F(TraceFileTest, ViewMatchesWrittenRecords)
{
    const auto records = sampleRecords();
    {
        TraceFileWriter writer(path_.string());
        for (const auto &rec : records)
            writer.put(rec);
    }
    TraceFileReader reader(path_.string());
    const auto buf = reader.view();
    ASSERT_EQ(buf->size(), records.size());
    EXPECT_TRUE(std::equal(records.begin(), records.end(),
                           buf->records().begin()));
}

TEST_F(TraceFileTest, IterativeNext)
{
    {
        TraceFileWriter writer(path_.string());
        writer.put(TraceRecord::opBegin(0, 5));
        writer.put(TraceRecord::opEnd(0, 5));
    }
    TraceFileReader reader(path_.string());
    TraceRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.type, RecordType::OpBegin);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.type, RecordType::OpEnd);
    EXPECT_FALSE(reader.next(rec));
}

TEST_F(TraceFileTest, EmptyTraceIsValid)
{
    {
        TraceFileWriter writer(path_.string());
        writer.finish();
    }
    TraceFileReader reader(path_.string());
    EXPECT_EQ(reader.recordCount(), 0u);
    TraceRecord rec;
    EXPECT_FALSE(reader.next(rec));
}

TEST_F(TraceFileTest, RejectsGarbageMagic)
{
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        const char garbage[32] = "this is not a trace file";
        std::fwrite(garbage, 1, sizeof(garbage), f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceFileReader reader(path_.string()),
                ::testing::ExitedWithCode(1), "magic");
}

TEST_F(TraceFileTest, RejectsUnsupportedVersion)
{
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        const std::uint32_t magic = kTraceMagic;
        const std::uint32_t version = 99;
        const std::uint64_t count = 0;
        std::fwrite(&magic, sizeof(magic), 1, f);
        std::fwrite(&version, sizeof(version), 1, f);
        std::fwrite(&count, sizeof(count), 1, f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceFileReader reader(path_.string()),
                ::testing::ExitedWithCode(1), "unsupported version");
}

TEST_F(TraceFileTest, RejectsTruncatedBody)
{
    {
        TraceFileWriter writer(path_.string());
        for (int i = 0; i < 16; ++i)
            writer.put(TraceRecord::load(0, 0x1000 + i * 8, 8, true));
    }
    // Chop half a record off the end.
    std::filesystem::resize_file(
        path_, std::filesystem::file_size(path_) - 12);
    EXPECT_EXIT(TraceFileReader reader(path_.string()),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST_F(TraceFileTest, RejectsChecksumMismatch)
{
    {
        TraceFileWriter writer(path_.string());
        for (int i = 0; i < 16; ++i)
            writer.put(TraceRecord::load(0, 0x1000 + i * 8, 8, true));
    }
    // Flip one byte inside a record's addr field: the per-type counts
    // still match, so only the checksum can catch it.
    {
        std::FILE *f = std::fopen(path_.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, static_cast<long>(kTraceHeaderBytesV2) + 8, SEEK_SET);
        const char byte = 0x5a;
        std::fwrite(&byte, 1, 1, f);
        std::fclose(f);
    }
    EXPECT_EXIT(
        {
            TraceFileReader reader(path_.string());
            reader.view();
        },
        ::testing::ExitedWithCode(1), "checksum");
}

TEST_F(TraceFileTest, RejectsHeaderCountDisagreement)
{
    {
        TraceFileWriter writer(path_.string());
        for (int i = 0; i < 4; ++i)
            writer.put(TraceRecord::opBegin(0));
    }
    // Corrupt the per-type count table (OpBegin count at index 8) so
    // it no longer sums to the header's record count.
    {
        std::FILE *f = std::fopen(path_.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        const std::uint64_t bogus = 7;
        // Layout: magic+version (8) + count (8) + checksum (8), then
        // typeCounts[10].
        std::fseek(f, 24 + 8 * 8, SEEK_SET);
        std::fwrite(&bogus, sizeof(bogus), 1, f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceFileReader reader(path_.string()),
                ::testing::ExitedWithCode(1), "corrupt trace header");
}

TEST_F(TraceFileTest, WriteAfterFinishIsFatal)
{
    EXPECT_EXIT(
        {
            TraceFileWriter writer(path_.string());
            writer.put(TraceRecord::opBegin(0));
            writer.finish();
            writer.put(TraceRecord::opEnd(0));
        },
        ::testing::ExitedWithCode(1), "after finish");
}

#ifdef PMODV_TESTDATA_DIR
TEST(TraceFixture, CommittedV1TraceStaysReadable)
{
    // A v1-format trace checked into the repo: the legacy
    // decode-on-load fallback must keep working against real bytes
    // written before the v2 format existed, not just files this test
    // binary produced itself.
    TraceFileReader reader(std::string(PMODV_TESTDATA_DIR) +
                           "/micro_v1.trace");
    EXPECT_EQ(reader.version(), kTraceVersionLegacy);
    EXPECT_EQ(reader.recordCount(), 161u);
    EXPECT_EQ(reader.headerSummary(), nullptr);
    auto buf = reader.view();
    ASSERT_EQ(buf->size(), 161u);
    const TraceSummary &s = buf->summary();
    EXPECT_EQ(s.count(RecordType::Attach), 2u);
    EXPECT_EQ(s.count(RecordType::Load), 73u);
    EXPECT_EQ(s.count(RecordType::Store), 16u);
    EXPECT_EQ(s.count(RecordType::InstBlock), 64u);
    EXPECT_EQ(buf->records()[0].type, RecordType::Attach);
    EXPECT_EQ(buf->records()[0].aux, 1u);
    EXPECT_EQ(buf->records()[0].addr, Addr{1} << 33);
}
#endif

} // namespace
} // namespace pmodv::trace
