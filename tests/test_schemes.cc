/**
 * @file
 * Parameterized property tests run against EVERY protection-capable
 * scheme: the paper's three access-legality requirements must hold
 * identically for stock MPK, libmpk, HW MPK virtualization and HW
 * domain virtualization (the timing differs; the security semantics
 * may not).
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "scheme_test_util.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using test::pmoBase;
using test::SchemeHarness;

constexpr Addr kSize = Addr{1} << 20;

class EnforcingScheme : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(EnforcingScheme, AttachGrantsNothing)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    EXPECT_FALSE(h.canRead(0, pmoBase(0)));
    EXPECT_FALSE(h.canWrite(0, pmoBase(0)));
}

TEST_P(EnforcingScheme, GrantRevokeCycle)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    for (int round = 0; round < 3; ++round) {
        h.scheme().setPerm(0, 1, Perm::ReadWrite);
        EXPECT_TRUE(h.canRead(0, pmoBase(0)));
        EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
        h.scheme().setPerm(0, 1, Perm::None);
        EXPECT_FALSE(h.canRead(0, pmoBase(0)));
        EXPECT_FALSE(h.canWrite(0, pmoBase(0)));
    }
}

TEST_P(EnforcingScheme, ReadOnlyGrantBlocksWrites)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    h.scheme().setPerm(0, 1, Perm::Read);
    EXPECT_TRUE(h.canRead(0, pmoBase(0)));
    auto res = h.access(0, pmoBase(0), AccessType::Write);
    EXPECT_FALSE(res.allowed);
    EXPECT_EQ(res.fault, arch::FaultKind::DomainPermission);
}

TEST_P(EnforcingScheme, PagePermIntersectsDomainPerm)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize, Perm::Read);
    h.scheme().setPerm(0, 1, Perm::ReadWrite);
    EXPECT_TRUE(h.canRead(0, pmoBase(0)));
    EXPECT_FALSE(h.canWrite(0, pmoBase(0)));
}

TEST_P(EnforcingScheme, PermissionsArePerThread)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    h.scheme().setPerm(3, 1, Perm::ReadWrite);
    h.scheme().contextSwitch(0, 3);
    EXPECT_TRUE(h.canWrite(3, pmoBase(0)));
    h.scheme().contextSwitch(3, 4);
    EXPECT_FALSE(h.canRead(4, pmoBase(0)));
}

TEST_P(EnforcingScheme, WholeRangeIsCovered)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    h.scheme().setPerm(0, 1, Perm::Read);
    // First, middle and last page of the PMO all enforce.
    for (Addr off : {Addr{0}, kSize / 2, kSize - 8}) {
        EXPECT_TRUE(h.canRead(0, pmoBase(0) + off)) << off;
        EXPECT_FALSE(h.canWrite(0, pmoBase(0) + off)) << off;
    }
    // One byte past the PMO is not covered by the domain.
    EXPECT_TRUE(h.canWrite(0, pmoBase(0) + kSize));
}

TEST_P(EnforcingScheme, TwoDomainsIndependent)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    h.attach(2, pmoBase(1), kSize);
    h.scheme().setPerm(0, 1, Perm::ReadWrite);
    h.scheme().setPerm(0, 2, Perm::Read);
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
    EXPECT_FALSE(h.canWrite(0, pmoBase(1)));
    EXPECT_TRUE(h.canRead(0, pmoBase(1)));
    // The paper's key-sharing hazard cannot happen: revoking one
    // domain leaves the other untouched.
    h.scheme().setPerm(0, 1, Perm::None);
    EXPECT_FALSE(h.canRead(0, pmoBase(0)));
    EXPECT_TRUE(h.canRead(0, pmoBase(1)));
}

TEST_P(EnforcingScheme, SetPermReturnsNonZeroCost)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    EXPECT_GE(h.scheme().setPerm(0, 1, Perm::ReadWrite), 27u);
}

TEST_P(EnforcingScheme, RandomizedOracleAgreement)
{
    // Drive a random sequence of setPerm/access/context-switch events
    // and compare every access against a trivial oracle map.
    SchemeHarness h(GetParam());
    const unsigned num_domains = 8;
    for (unsigned i = 0; i < num_domains; ++i)
        h.attach(i + 1, pmoBase(i), kSize);

    std::map<std::pair<ThreadId, DomainId>, Perm> oracle;
    Rng rng(2024);
    ThreadId current = 0;
    for (int step = 0; step < 2000; ++step) {
        const DomainId d =
            static_cast<DomainId>(rng.next(num_domains) + 1);
        switch (rng.next(4)) {
          case 0: { // setPerm for the current thread.
            const Perm p = static_cast<Perm>(rng.next(4));
            h.scheme().setPerm(current, d, p);
            // Hardware 2-bit encodings cannot express write-only;
            // the schemes widen it to read-write (permNormalizeHw).
            oracle[{current, d}] = permNormalizeHw(p);
            break;
          }
          case 1: { // Context switch.
            const ThreadId next = static_cast<ThreadId>(rng.next(3));
            h.scheme().contextSwitch(current, next);
            current = next;
            break;
          }
          default: { // Access.
            const bool write = rng.chance(0.5);
            const Addr va = pmoBase(d - 1) + rng.next(kSize - 8);
            auto it = oracle.find({current, d});
            const Perm have =
                it == oracle.end() ? Perm::None : it->second;
            const bool expect =
                permAllows(have, write ? Perm::Write : Perm::Read);
            const bool got = write ? h.canWrite(current, va)
                                   : h.canRead(current, va);
            ASSERT_EQ(got, expect)
                << "step " << step << " tid " << current << " domain "
                << d << " write " << write << " have "
                << permToString(have);
          }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EnforcingScheme,
    ::testing::Values(SchemeKind::Mpk, SchemeKind::LibMpk,
                      SchemeKind::MpkVirt, SchemeKind::DomainVirt),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        return std::string(arch::schemeName(info.param));
    });

// The pass-through schemes allow everything by design.
class PassThroughScheme : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(PassThroughScheme, EverythingAllowed)
{
    SchemeHarness h(GetParam());
    h.attach(1, pmoBase(0), kSize);
    EXPECT_TRUE(h.canRead(0, pmoBase(0)));
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
    EXPECT_EQ(h.scheme().effectivePerm(0, 1), Perm::ReadWrite);
}

INSTANTIATE_TEST_SUITE_P(
    Baselines, PassThroughScheme,
    ::testing::Values(SchemeKind::NoProtection, SchemeKind::Lowerbound),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        return std::string(arch::schemeName(info.param));
    });

TEST(SchemeNames, RoundTrip)
{
    for (SchemeKind k :
         {SchemeKind::NoProtection, SchemeKind::Lowerbound,
          SchemeKind::Mpk, SchemeKind::LibMpk, SchemeKind::MpkVirt,
          SchemeKind::DomainVirt}) {
        EXPECT_EQ(arch::schemeFromName(arch::schemeName(k)), k);
    }
}

TEST(SchemeNamesDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(arch::schemeFromName("bogus"),
                ::testing::ExitedWithCode(1), "unknown");
}

} // namespace
} // namespace pmodv
