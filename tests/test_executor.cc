/**
 * @file
 * Tests of the parallel experiment executor and the declarative
 * SweepSpec/ExperimentSuite API. The load-bearing property is
 * determinism: per-scheme cycle counts must be bit-identical to the
 * serial MultiReplay path and independent of the worker count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/thread_pool.hh"
#include "core/replay.hh"
#include "exp/suite.hh"
#include "workloads/trace_ctx.hh"

namespace pmodv::exp
{
namespace
{

using arch::SchemeKind;

MicroPointSpec
avlSpec(unsigned pmos = 64)
{
    MicroPointSpec spec;
    spec.benchmark = "avl";
    spec.params.numPmos = pmos;
    spec.params.pmoBytes = Addr{8} << 20;
    spec.params.numOps = 3000;
    spec.params.initialNodes = 512;
    spec.params.seed = 42;
    spec.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                    SchemeKind::DomainVirt};
    return spec;
}

/** Serial reference: capture the trace, replay through MultiReplay. */
std::map<SchemeKind, Cycles>
serialCycles(const MicroPointSpec &spec,
             const std::vector<SchemeKind> &kinds)
{
    trace::VectorSink buffer;
    workloads::TraceCtx ctx(buffer, spec.params.seed);
    workloads::makeMicro(spec.benchmark, spec.params)->run(ctx);

    core::MultiReplay replay(spec.config, kinds);
    replay.replayBatch(buffer.records());

    std::map<SchemeKind, Cycles> cycles;
    for (SchemeKind k : kinds)
        cycles[k] = replay.system(k).totalCycles();
    return cycles;
}

TEST(Executor, MatchesSerialMultiReplayBitForBit)
{
    const MicroPointSpec spec = avlSpec();
    const std::vector<SchemeKind> kinds{
        SchemeKind::NoProtection, SchemeKind::Lowerbound,
        SchemeKind::LibMpk, SchemeKind::MpkVirt,
        SchemeKind::DomainVirt};
    const auto serial = serialCycles(spec, kinds);

    common::ThreadPool pool(4);
    Executor executor(pool);
    const MicroPoint pt = executor.runMicro(spec);

    ASSERT_EQ(pt.totalCycles.size(), kinds.size());
    for (SchemeKind k : kinds) {
        EXPECT_EQ(pt.totalCycles.at(k), serial.at(k))
            << arch::schemeName(k);
    }
}

TEST(Executor, JobCountDoesNotChangeAnyRow)
{
    const std::vector<MicroPointSpec> specs{avlSpec(16), avlSpec(64),
                                            avlSpec(128)};

    common::ThreadPool serial(1);
    common::ThreadPool wide(4);
    const auto rows1 = Executor(serial).runMicro(specs);
    const auto rows4 = Executor(wide).runMicro(specs);

    ASSERT_EQ(rows1.size(), rows4.size());
    for (std::size_t i = 0; i < rows1.size(); ++i) {
        EXPECT_EQ(rows1[i].benchmark, rows4[i].benchmark);
        EXPECT_EQ(rows1[i].numPmos, rows4[i].numPmos);
        EXPECT_EQ(rows1[i].totalCycles, rows4[i].totalCycles);
        EXPECT_EQ(rows1[i].overheadPct, rows4[i].overheadPct);
        EXPECT_EQ(rows1[i].keyRemaps, rows4[i].keyRemaps);
        EXPECT_DOUBLE_EQ(rows1[i].switchesPerSec,
                         rows4[i].switchesPerSec);
        EXPECT_DOUBLE_EQ(rows1[i].lowerboundOverheadPct,
                         rows4[i].lowerboundOverheadPct);
        // The embedded observability payloads are byte-identical too:
        // the full stats tree and the event ring must not depend on
        // the worker count.
        EXPECT_EQ(rows1[i].statsJson, rows4[i].statsJson);
        EXPECT_EQ(rows1[i].eventsJson, rows4[i].eventsJson);
    }
}

TEST(Executor, WhisperDeterministicAcrossJobCounts)
{
    WhisperPointSpec spec;
    spec.benchmark = "echo";
    spec.params.numTxns = 200;
    spec.params.poolBytes = std::size_t{8} << 20;
    spec.params.initialKeys = 300;

    common::ThreadPool serial(1);
    common::ThreadPool wide(4);
    const WhisperRow row1 = Executor(serial).runWhisper(spec);
    const WhisperRow row4 = Executor(wide).runWhisper(spec);

    EXPECT_EQ(row1.totalCycles, row4.totalCycles);
    EXPECT_DOUBLE_EQ(row1.switchesPerSec, row4.switchesPerSec);
    EXPECT_DOUBLE_EQ(row1.overheadMpkPct, row4.overheadMpkPct);
    EXPECT_DOUBLE_EQ(row1.overheadMpkVirtPct, row4.overheadMpkVirtPct);
    EXPECT_DOUBLE_EQ(row1.overheadDomainVirtPct,
                     row4.overheadDomainVirtPct);
    EXPECT_GT(row1.totalCycles.at(SchemeKind::NoProtection), 0u);
    EXPECT_EQ(row1.statsJson, row4.statsJson);
    EXPECT_EQ(row1.eventsJson, row4.eventsJson);
}

TEST(Executor, RawReplayMatchesMultiReplay)
{
    using trace::TraceRecord;
    std::vector<TraceRecord> records;
    constexpr Addr base = Addr{1} << 33;
    records.push_back(TraceRecord::attach(0, 1, base, Addr{1} << 20,
                                          Perm::ReadWrite));
    records.push_back(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    for (unsigned i = 0; i < 500; ++i)
        records.push_back(
            TraceRecord::load(0, base + i * 64, 8, true));
    const auto buf = trace::TraceBuffer::fromRecords(std::move(records));

    const std::vector<SchemeKind> kinds{SchemeKind::NoProtection,
                                        SchemeKind::MpkVirt,
                                        SchemeKind::DomainVirt};
    core::MultiReplay replay({}, kinds);
    replay.replayBuffer(*buf);

    RawPointSpec spec;
    spec.trace = buf;
    spec.schemes = kinds;
    common::ThreadPool pool(3);
    const RawPointResult res = Executor(pool).runRaw(spec);

    for (SchemeKind k : kinds) {
        EXPECT_EQ(res.totalCycles.at(k),
                  replay.system(k).totalCycles())
            << arch::schemeName(k);
        EXPECT_DOUBLE_EQ(res.deniedAccesses.at(k),
                         replay.system(k).deniedAccesses.value());
    }
}

TEST(SweepSpec, ExpandsBenchmarkMajor)
{
    SweepSpec sweep;
    sweep.benchmarks = {"avl", "ll"};
    sweep.pmoCounts = {16, 64};
    sweep.base.numOps = 100;
    const auto points = sweep.points();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].benchmark, "avl");
    EXPECT_EQ(points[0].params.numPmos, 16u);
    EXPECT_EQ(points[1].benchmark, "avl");
    EXPECT_EQ(points[1].params.numPmos, 64u);
    EXPECT_EQ(points[2].benchmark, "ll");
    EXPECT_EQ(points[2].params.numPmos, 16u);
    EXPECT_EQ(points[3].benchmark, "ll");
    EXPECT_EQ(points[3].params.numPmos, 64u);
}

TEST(SweepSpec, EmptyBenchmarksMeansFullSuite)
{
    SweepSpec sweep;
    sweep.pmoCounts = {32};
    EXPECT_EQ(sweep.points().size(), workloads::microNames().size());
}

TEST(ExperimentSuite, RowsComeBackInRegistrationOrder)
{
    ExperimentSuite suite("test");
    EXPECT_EQ(suite.add(avlSpec(128)), 0u);
    MicroPointSpec ll = avlSpec(16);
    ll.benchmark = "ll";
    EXPECT_EQ(suite.add(std::move(ll)), 1u);

    common::ThreadPool pool(2);
    suite.run(pool);

    ASSERT_EQ(suite.microRows().size(), 2u);
    EXPECT_EQ(suite.microRows()[0].benchmark, "avl");
    EXPECT_EQ(suite.microRows()[0].numPmos, 128u);
    EXPECT_EQ(suite.microRows()[1].benchmark, "ll");
    EXPECT_EQ(suite.microRows()[1].numPmos, 16u);
    EXPECT_EQ(suite.jobs(), 2u);
    EXPECT_GT(suite.wallSeconds(), 0.0);
}

TEST(ExperimentSuite, JsonReportIsWellFormed)
{
    ExperimentSuite suite("json_probe");
    MicroPointSpec spec = avlSpec(16);
    spec.params.numOps = 500;
    suite.add(std::move(spec));
    common::ThreadPool pool(2);
    suite.run(pool);

    std::ostringstream os;
    suite.writeJson(os);
    const std::string json = os.str();

    // Structural sanity: balanced braces/brackets, key fields present.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_NE(json.find("\"suite\": \"json_probe\""), std::string::npos);
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\": \"avl\""), std::string::npos);
    EXPECT_NE(json.find("\"total_cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"overhead_pct\""), std::string::npos);
    // The embedded per-scheme stats tree and event ring.
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"events\""), std::string::npos);
    EXPECT_NE(json.find("\"cyc_mem\""), std::string::npos);
    EXPECT_NE(json.find("\"cyc_issue\""), std::string::npos);
    EXPECT_NE(json.find("\"dtlb\""), std::string::npos);
    EXPECT_NE(json.find("\"dcache\""), std::string::npos);
    EXPECT_NE(json.find("\"recorded\""), std::string::npos);
    // No NaN/inf can sneak into a JSON document.
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Executor, StatsAttributionSumsToTotalCycles)
{
    common::ThreadPool pool(2);
    const MicroPoint pt = Executor(pool).runMicro(avlSpec(64));
    for (const auto &[kind, json] : pt.statsJson) {
        // Extract a top-level scalar from the compact JSON payload.
        const auto grab = [&json](const std::string &key) {
            const std::string needle = "\"" + key + "\":";
            const auto pos = json.find(needle);
            EXPECT_NE(pos, std::string::npos) << key;
            return std::strtod(json.c_str() + pos + needle.size(),
                               nullptr);
        };
        const double total = grab("cycles");
        const double sum = grab("cyc_issue") + grab("cyc_mem") +
                           grab("cyc_prot_fill") +
                           grab("cyc_prot_check") +
                           grab("cyc_perm_instr") + grab("cyc_syscall") +
                           grab("cyc_ctx_switch");
        EXPECT_DOUBLE_EQ(sum, total) << arch::schemeName(kind);
        EXPECT_EQ(static_cast<Cycles>(total), pt.totalCycles.at(kind))
            << arch::schemeName(kind);
    }
}

TEST(ExperimentSuite, EmptySuiteRunsToCompletion)
{
    ExperimentSuite suite("empty");
    common::ThreadPool pool(2);
    suite.run(pool);
    EXPECT_TRUE(suite.microRows().empty());
    EXPECT_TRUE(suite.whisperRows().empty());
    std::ostringstream os;
    suite.writeJson(os);
    EXPECT_NE(os.str().find("\"micro\": [\n  ]"), std::string::npos);
}

} // namespace
} // namespace pmodv::exp
