/**
 * @file
 * Unit tests for the PKRU register model and the key allocator.
 */

#include <gtest/gtest.h>

#include "arch/pkru.hh"

namespace pmodv::arch
{
namespace
{

TEST(Pkru, ResetState)
{
    Pkru pkru;
    // Key 0 open, everything else inaccessible.
    EXPECT_EQ(pkru.permFor(0), Perm::ReadWrite);
    for (ProtKey k = 1; k < kNumProtKeys; ++k)
        EXPECT_EQ(pkru.permFor(k), Perm::None);
    EXPECT_EQ(pkru.raw(), 0xfffffffcu);
}

TEST(Pkru, SetPermRoundTrip)
{
    Pkru pkru;
    pkru.setPerm(5, Perm::Read);
    EXPECT_EQ(pkru.permFor(5), Perm::Read);
    pkru.setPerm(5, Perm::ReadWrite);
    EXPECT_EQ(pkru.permFor(5), Perm::ReadWrite);
    pkru.setPerm(5, Perm::None);
    EXPECT_EQ(pkru.permFor(5), Perm::None);
}

TEST(Pkru, WriteImpliesReadInMpk)
{
    // MPK has no write-without-read encoding; Perm::Write maps to the
    // strictest expressible superset (RW).
    Pkru pkru;
    pkru.setPerm(3, Perm::Write);
    EXPECT_EQ(pkru.permFor(3), Perm::ReadWrite);
}

TEST(Pkru, ArchitecturalBitLayout)
{
    Pkru pkru;
    pkru.setRaw(0);
    for (ProtKey k = 0; k < kNumProtKeys; ++k)
        EXPECT_EQ(pkru.permFor(k), Perm::ReadWrite);

    // AD bit (2k) blocks everything; WD (2k+1) blocks writes only.
    pkru.setRaw(1u << (2 * 4)); // AD for key 4.
    EXPECT_EQ(pkru.permFor(4), Perm::None);
    pkru.setRaw(1u << (2 * 4 + 1)); // WD for key 4.
    EXPECT_EQ(pkru.permFor(4), Perm::Read);
}

TEST(Pkru, SetPermLeavesOtherKeysUntouched)
{
    Pkru pkru;
    pkru.setPerm(1, Perm::ReadWrite);
    pkru.setPerm(2, Perm::Read);
    const std::uint32_t before = pkru.raw();
    pkru.setPerm(3, Perm::ReadWrite);
    pkru.setPerm(3, Perm::None);
    // Keys 1 and 2 bits unchanged.
    const std::uint32_t mask = (0x3u << 2) | (0x3u << 4);
    EXPECT_EQ(pkru.raw() & mask, before & mask);
}

TEST(KeyAllocator, FifteenUsableKeys)
{
    KeyAllocator alloc;
    EXPECT_EQ(alloc.freeCount(), 15u);
    std::uint16_t seen = 0;
    for (int i = 0; i < 15; ++i) {
        const ProtKey k = alloc.alloc();
        ASSERT_NE(k, kInvalidKey);
        EXPECT_NE(k, kNullKey); // Key 0 is never handed out.
        EXPECT_LT(k, kNumProtKeys);
        EXPECT_FALSE(seen & (1u << k)) << "duplicate key";
        seen |= 1u << k;
    }
    // The 16th allocation fails: the paper's ENOSPC scenario.
    EXPECT_EQ(alloc.alloc(), kInvalidKey);
    EXPECT_EQ(alloc.allocatedCount(), 15u);
}

TEST(KeyAllocator, FreeAndReuse)
{
    KeyAllocator alloc;
    const ProtKey k = alloc.alloc();
    EXPECT_TRUE(alloc.isAllocated(k));
    EXPECT_TRUE(alloc.free(k));
    EXPECT_FALSE(alloc.isAllocated(k));
    EXPECT_FALSE(alloc.free(k)); // Double free.
    EXPECT_EQ(alloc.alloc(), k); // Lowest free key again.
}

TEST(KeyAllocator, RejectsReservedAndBogusKeys)
{
    KeyAllocator alloc;
    EXPECT_FALSE(alloc.free(0));
    EXPECT_FALSE(alloc.free(16));
    EXPECT_FALSE(alloc.isAllocated(0));
    EXPECT_FALSE(alloc.isAllocated(200));
}

TEST(PkruFile, PerThreadIsolation)
{
    PkruFile file;
    file.forThread(1).setPerm(4, Perm::ReadWrite);
    EXPECT_EQ(file.forThread(1).permFor(4), Perm::ReadWrite);
    EXPECT_EQ(file.forThread(2).permFor(4), Perm::None);
}

TEST(PkruFile, ConstLookupOfUnknownThreadIsResetState)
{
    const PkruFile file;
    EXPECT_EQ(file.forThread(99).permFor(0), Perm::ReadWrite);
    EXPECT_EQ(file.forThread(99).permFor(7), Perm::None);
}

} // namespace
} // namespace pmodv::arch
