/**
 * @file
 * Unit tests for common::ThreadPool: submit/wait semantics, result
 * and exception propagation through futures, nested submission (the
 * pattern the experiment executor relies on) and drain-on-destroy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hh"

namespace pmodv::common
{
namespace
{

TEST(ThreadPool, SubmitReturnsResultsThroughFutures)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::defaultThreads());
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, WaitBlocksUntilAllTasksFinished)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 32);
    // wait() on an idle pool returns immediately.
    pool.wait();
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(good.get(), 7);
    EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, TasksMaySubmitContinuations)
{
    // The executor's capture→replay pattern: a task enqueues further
    // tasks and returns without blocking on them. Must work even with
    // a single worker.
    ThreadPool pool(1);
    std::atomic<int> replays{0};
    auto capture = pool.submit([&] {
        for (int i = 0; i < 8; ++i)
            pool.submit([&replays] { ++replays; });
    });
    capture.get();
    pool.wait();
    EXPECT_EQ(replays.load(), 8);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&done] { ++done; });
        // No wait: destruction must still run everything submitted.
    }
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ManyProducersOneQueue)
{
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &sum, p] {
            for (int i = 0; i < 100; ++i) {
                pool.submit([&sum, p, i] {
                    sum += static_cast<std::uint64_t>(p * 1000 + i);
                });
            }
        });
    }
    for (auto &t : producers)
        t.join();
    pool.wait();
    std::uint64_t expect = 0;
    for (int p = 0; p < 4; ++p) {
        for (int i = 0; i < 100; ++i)
            expect += static_cast<std::uint64_t>(p * 1000 + i);
    }
    EXPECT_EQ(sum.load(), expect);
}

} // namespace
} // namespace pmodv::common
