/**
 * @file
 * Randomized property tests that pit the timing structures against
 * simple reference oracles:
 *
 *  - the set-associative cache vs a per-set LRU list,
 *  - the TLB vs an exact map (presence after flush sequences),
 *  - the VA radix tree vs an interval map.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <memory>
#include <set>

#include "arch/radix.hh"
#include "common/rng.hh"
#include "mem/cache.hh"
#include "stats/stats.hh"
#include "tlb/tlb.hh"

namespace pmodv
{
namespace
{

// ---------------------------------------------------------------
// Cache vs per-set LRU oracle.
// ---------------------------------------------------------------

class CacheOracle
{
  public:
    CacheOracle(unsigned sets, unsigned ways) : sets_(sets), ways_(ways)
    {
        lists_.resize(sets);
    }

    /** Returns true on hit, mirroring an LRU cache. */
    bool
    access(Addr line)
    {
        auto &list = lists_[line % sets_];
        auto it = std::find(list.begin(), list.end(), line);
        if (it != list.end()) {
            list.erase(it);
            list.push_front(line);
            return true;
        }
        list.push_front(line);
        if (list.size() > ways_)
            list.pop_back();
        return false;
    }

  private:
    unsigned sets_, ways_;
    std::vector<std::list<Addr>> lists_;
};

class CacheFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheFuzz, MatchesLruOracle)
{
    stats::Group root(nullptr, "");
    mem::CacheParams params;
    params.sizeBytes = 4096; // 64 lines.
    params.assoc = 4;        // 16 sets.
    params.lineBytes = 64;
    params.repl = mem::ReplPolicy::Lru;
    mem::Cache cache(&root, params);
    CacheOracle oracle(16, 4);

    Rng rng(GetParam());
    for (int i = 0; i < 20000; ++i) {
        const Addr line = rng.next(256); // 4x capacity: heavy churn.
        const Addr addr = line * 64 + rng.next(64);
        const bool hit =
            cache.access(addr, AccessType::Read).hit;
        ASSERT_EQ(hit, oracle.access(line)) << "iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz,
                         ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------
// TLB vs presence oracle under random insert/flush interleavings.
// ---------------------------------------------------------------

class TlbFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TlbFuzz, FlushSemanticsExact)
{
    stats::Group root(nullptr, "");
    tlb::TlbParams params;
    params.entries = 1024; // Big enough that capacity never evicts
    params.assoc = 4;      // in this test, so presence is exact.
    tlb::Tlb tlb(&root, params);

    std::map<Addr, std::pair<ProtKey, DomainId>> oracle; // by vpn.
    Rng rng(GetParam());

    for (int i = 0; i < 5000; ++i) {
        switch (rng.next(5)) {
          case 0:
          case 1: { // Insert.
            const Addr vpn = rng.next(200);
            tlb::TlbEntry e;
            e.vpn = vpn;
            e.key = static_cast<ProtKey>(rng.next(16));
            e.domain = static_cast<DomainId>(rng.next(32));
            tlb.insert(e);
            oracle[vpn] = {e.key, e.domain};
            break;
          }
          case 2: { // Ranged flush.
            const Addr base = rng.next(200) * 4096;
            const Addr size = (1 + rng.next(16)) * 4096;
            tlb.flushRange(base, size);
            for (auto it = oracle.begin(); it != oracle.end();) {
                const Addr va = it->first * 4096;
                if (va + 4096 > base && va < base + size)
                    it = oracle.erase(it);
                else
                    ++it;
            }
            break;
          }
          case 3: { // Key flush.
            const auto key = static_cast<ProtKey>(rng.next(16));
            tlb.flushKey(key);
            for (auto it = oracle.begin(); it != oracle.end();) {
                if (it->second.first == key)
                    it = oracle.erase(it);
                else
                    ++it;
            }
            break;
          }
          case 4: { // Probe a random page.
            const Addr vpn = rng.next(200);
            const auto *e = tlb.probe(vpn * 4096);
            const auto it = oracle.find(vpn);
            ASSERT_EQ(e != nullptr, it != oracle.end())
                << "presence mismatch at iteration " << i;
            if (e) {
                ASSERT_EQ(e->key, it->second.first);
                ASSERT_EQ(e->domain, it->second.second);
            }
            break;
          }
        }
    }
    ASSERT_EQ(tlb.validCount(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbFuzz,
                         ::testing::Values(5u, 55u, 555u));

// ---------------------------------------------------------------
// Radix tree vs interval-map oracle.
// ---------------------------------------------------------------

class RadixFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RadixFuzz, WalkMatchesIntervalMap)
{
    struct Payload
    {
    };
    arch::VaRadixTree<Payload> tree;
    std::map<Addr, std::pair<Addr, DomainId>> oracle; // base->(end,dom)

    Rng rng(GetParam());
    DomainId next_domain = 1;
    const Addr region = Addr{1} << 36;

    for (int i = 0; i < 300; ++i) {
        if (rng.chance(0.6) || oracle.empty()) {
            // Insert a random non-overlapping range.
            const Addr base =
                region + rng.next(1 << 12) * (Addr{4} << 20);
            const Addr size = (1 + rng.next(512)) * 4096;
            bool overlaps = false;
            for (const auto &[b, es] : oracle)
                overlaps |= base < es.first && b < base + size;
            if (overlaps)
                continue;
            tree.insert(base, size, next_domain,
                        std::make_shared<Payload>());
            oracle[base] = {base + size, next_domain};
            ++next_domain;
        } else {
            // Remove a random domain.
            auto it = oracle.begin();
            std::advance(it, rng.next(oracle.size()));
            EXPECT_GT(tree.remove(it->second.second), 0u);
            oracle.erase(it);
        }

        // Probe random addresses.
        for (int p = 0; p < 20; ++p) {
            const Addr va =
                region + rng.next(1 << 12) * (Addr{4} << 20) +
                rng.next(Addr{4} << 20);
            DomainId expect = kNullDomain;
            for (const auto &[b, es] : oracle) {
                if (va >= b && va < es.first)
                    expect = es.second;
            }
            const auto walk = tree.walk(va);
            ASSERT_EQ(walk.found ? walk.domain : kNullDomain, expect)
                << "va 0x" << std::hex << va;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixFuzz,
                         ::testing::Values(3u, 14u, 159u));

} // namespace
} // namespace pmodv
