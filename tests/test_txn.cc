/**
 * @file
 * Unit and property tests for durable transactions: commit/abort
 * semantics and crash-recovery atomicity under randomized crash
 * points.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "pmo/pool.hh"
#include "pmo/txn.hh"

namespace pmodv::pmo
{
namespace
{

constexpr std::size_t kPoolSize = 1 << 20;

std::uint64_t
readU64(Pool &pool, Oid oid)
{
    std::uint64_t v = 0;
    pool.read(oid, &v, 8);
    return v;
}

TEST(Txn, CommitMakesWritesDurable)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid oid = pool->pmalloc(64);
    Transaction txn(*pool);
    txn.begin();
    txn.writeValue<std::uint64_t>(oid, 77);
    txn.commit();
    pool->arena().crash();
    EXPECT_EQ(readU64(*pool, oid), 77u);
    EXPECT_FALSE(Transaction::recover(*pool)); // Nothing to roll back.
}

TEST(Txn, AbortRestoresOldValues)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid oid = pool->pmalloc(64);
    Transaction txn(*pool);
    txn.begin();
    txn.writeValue<std::uint64_t>(oid, 11);
    txn.commit();
    txn.begin();
    txn.writeValue<std::uint64_t>(oid, 22);
    EXPECT_EQ(readU64(*pool, oid), 22u); // Visible before commit.
    txn.abort();
    EXPECT_EQ(readU64(*pool, oid), 11u);
}

TEST(Txn, MultipleWritesRollBackInOrder)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid oid = pool->pmalloc(64);
    Transaction txn(*pool);
    txn.begin();
    txn.writeValue<std::uint64_t>(oid, 1);
    txn.writeValue<std::uint64_t>(oid, 2);
    txn.writeValue<std::uint64_t>(oid, 3);
    EXPECT_EQ(txn.entryCount(), 3u);
    txn.abort();
    EXPECT_EQ(readU64(*pool, oid), 0u); // Fresh pmalloc'd memory.
}

TEST(Txn, MisuseThrows)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid oid = pool->pmalloc(64);
    Transaction txn(*pool);
    EXPECT_THROW(txn.commit(), TxnError);
    EXPECT_THROW(txn.abort(), TxnError);
    EXPECT_THROW(txn.writeValue<int>(oid, 1), TxnError);
    txn.begin();
    EXPECT_THROW(txn.begin(), TxnError);
    txn.commit();
}

TEST(Txn, ForeignPoolWriteRejected)
{
    auto pool = Pool::create(1, kPoolSize);
    Transaction txn(*pool);
    txn.begin();
    EXPECT_THROW(txn.writeValue<int>(Oid{9, 4096}, 1), TxnError);
    txn.abort();
}

TEST(Txn, LogFullThrows)
{
    // A pool with a tiny log region.
    auto pool = Pool::create(1, 64 * 1024, 256);
    const Oid oid = pool->pmalloc(1024);
    Transaction txn(*pool);
    txn.begin();
    std::vector<std::uint8_t> big(128, 1);
    txn.write(oid, big.data(), big.size());
    EXPECT_THROW(txn.write(oid, big.data(), big.size()), TxnError);
    txn.abort();
}

TEST(Txn, CrashBeforeCommitRollsBack)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid oid = pool->pmalloc(64);
    {
        Transaction txn(*pool);
        txn.begin();
        txn.writeValue<std::uint64_t>(oid, 11);
        txn.commit();
        txn.begin();
        txn.writeValue<std::uint64_t>(oid, 99);
        // Crash without commit.
    }
    pool->arena().crash();
    EXPECT_TRUE(Transaction::recover(*pool));
    EXPECT_EQ(readU64(*pool, oid), 11u);
}

TEST(Txn, RecoveryIsIdempotent)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid oid = pool->pmalloc(64);
    Transaction txn(*pool);
    txn.begin();
    txn.writeValue<std::uint64_t>(oid, 5);
    pool->arena().crash();
    EXPECT_TRUE(Transaction::recover(*pool));
    const std::uint64_t after_first = readU64(*pool, oid);
    EXPECT_FALSE(Transaction::recover(*pool));
    EXPECT_EQ(readU64(*pool, oid), after_first);
}

/**
 * Atomicity property: a transaction updates a multi-field record;
 * crash at a random writeback boundary; after recovery the record is
 * either entirely old or entirely new.
 *
 * The crash is injected by snapshotting the persistent image at a
 * random point mid-transaction via crash() and recovering.
 */
class TxnCrashAtomicity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TxnCrashAtomicity, RecordNeverTorn)
{
    Rng rng(GetParam());
    auto pool = Pool::create(1, kPoolSize);
    const Oid rec = pool->pmalloc(32); // 4 u64 fields.

    // Install generation 1 durably.
    {
        Transaction txn(*pool);
        txn.begin();
        for (int f = 0; f < 4; ++f) {
            txn.writeValue<std::uint64_t>(
                Oid{rec.pool, rec.offset + 8u * f}, 100 + f);
        }
        txn.commit();
    }

    for (int round = 0; round < 30; ++round) {
        const std::uint64_t gen = 200 + round * 10;
        Transaction txn(*pool);
        txn.begin();
        const unsigned crash_after = static_cast<unsigned>(
            rng.next(5)); // Crash after 0..4 field writes.
        for (unsigned f = 0; f < 4; ++f) {
            if (f == crash_after)
                break;
            txn.writeValue<std::uint64_t>(
                Oid{rec.pool, rec.offset + 8 * f}, gen + f);
        }
        const bool completed = crash_after >= 4;
        if (completed)
            txn.commit();

        pool->arena().crash();
        Transaction::recover(*pool);

        // Read all four fields: they must be one consistent
        // generation.
        std::uint64_t f0 = readU64(*pool, rec);
        for (unsigned f = 0; f < 4; ++f) {
            const std::uint64_t v = readU64(
                *pool, Oid{rec.pool, rec.offset + 8 * f});
            ASSERT_EQ(v, f0 + f) << "torn record in round " << round;
        }
        if (completed) {
            ASSERT_EQ(f0, gen);
        }

        // Re-install a known durable state for the next round.
        Transaction repair(*pool);
        repair.begin();
        for (unsigned f = 0; f < 4; ++f) {
            repair.writeValue<std::uint64_t>(
                Oid{rec.pool, rec.offset + 8 * f}, 100 + f);
        }
        repair.commit();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnCrashAtomicity,
                         ::testing::Values(1u, 7u, 42u, 1234u));

} // namespace
} // namespace pmodv::pmo
