/**
 * @file
 * Tests for the typed persistent-pointer layer.
 */

#include <gtest/gtest.h>

#include "pmo/errors.hh"
#include "pmo/pmo_namespace.hh"
#include "pmo/pptr.hh"

namespace pmodv::pmo
{
namespace
{

struct Record
{
    std::uint64_t key = 0;
    std::uint64_t nextRaw = 0;
    std::uint32_t flags = 0;
    std::uint32_t pad = 0;
};

constexpr std::size_t kPoolSize = 256 * 1024;

TEST(Pptr, NewGetSetRoundTrip)
{
    auto pool = Pool::create(1, kPoolSize);
    POid<Record> p = pnew(*pool, Record{42, 0, 7, 0});
    const Record r = pget(*pool, p);
    EXPECT_EQ(r.key, 42u);
    EXPECT_EQ(r.flags, 7u);

    pset(*pool, p, Record{43, 0, 0, 0});
    EXPECT_EQ(pget(*pool, p).key, 43u);
    pdelete(*pool, p);
}

TEST(Pptr, ZeroInitializedByDefault)
{
    auto pool = Pool::create(1, kPoolSize);
    POid<Record> p = pnew<Record>(*pool);
    const Record r = pget(*pool, p);
    EXPECT_EQ(r.key, 0u);
    EXPECT_EQ(r.nextRaw, 0u);
}

TEST(Pptr, RawRoundTripIsPositionIndependent)
{
    auto pool = Pool::create(1, kPoolSize);
    POid<Record> p = pnew<Record>(*pool);
    const std::uint64_t raw = p.raw();
    POid<Record> q = POid<Record>::fromRaw(raw);
    EXPECT_EQ(p, q);
    EXPECT_FALSE(p.isNull());
    EXPECT_TRUE(POid<Record>{}.isNull());
}

TEST(Pptr, TypedLinkedListViaRawLinks)
{
    auto pool = Pool::create(1, kPoolSize);
    POid<Record> head{};
    for (std::uint64_t k = 1; k <= 5; ++k) {
        Record r;
        r.key = k;
        r.nextRaw = head.raw();
        head = pnew(*pool, r);
    }
    std::uint64_t sum = 0;
    for (POid<Record> cur = head; !cur.isNull();
         cur = POid<Record>::fromRaw(pget(*pool, cur).nextRaw)) {
        sum += pget(*pool, cur).key;
    }
    EXPECT_EQ(sum, 15u);
}

TEST(Pptr, MemberPointer)
{
    auto pool = Pool::create(1, kPoolSize);
    POid<Record> p = pnew(*pool, Record{9, 0, 0, 0});
    auto key_ptr = p.member<std::uint64_t>(offsetof(Record, key));
    EXPECT_EQ(pget(*pool, key_ptr), 9u);
    pset(*pool, key_ptr, std::uint64_t{11});
    EXPECT_EQ(pget(*pool, p).key, 11u);
}

TEST(Pptr, TypedRoot)
{
    auto pool = Pool::create(1, kPoolSize);
    POid<Record> root = proot<Record>(*pool);
    EXPECT_EQ(proot<Record>(*pool), root); // Stable.
    EXPECT_EQ(pget(*pool, root).key, 0u);  // Zeroed.
}

TEST(Pptr, CheckedAccessEnforcesPermissions)
{
    Namespace ns;
    ns.create("p", kPoolSize, 1000);
    Runtime rt(ns, 1000, 1);
    const Attached &att = rt.attach("p", Perm::ReadWrite);
    POid<Record> p = pnew(*att.pool, Record{1, 0, 0, 0});

    EXPECT_THROW(pget(rt, 0, p), ProtectionFault);
    rt.setPerm(0, att.domain, Perm::Read);
    EXPECT_EQ(pget(rt, 0, p).key, 1u);
    EXPECT_THROW(pset(rt, 0, p, Record{2, 0, 0, 0}), ProtectionFault);
    rt.setPerm(0, att.domain, Perm::ReadWrite);
    pset(rt, 0, p, Record{2, 0, 0, 0});
    EXPECT_EQ(pget(rt, 0, p).key, 2u);
}

} // namespace
} // namespace pmodv::pmo
