/**
 * @file
 * Unit tests for the bounded event-trace ring.
 */

#include <gtest/gtest.h>

#include "trace/event_ring.hh"

namespace pmodv::trace
{
namespace
{

TEST(EventRing, PostAndSnapshotOldestFirst)
{
    stats::Group root(nullptr, "sys");
    EventRing ring(&root, "events", 4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);

    ring.post(EventKind::KeyEviction, 1, 10, 100);
    ring.post(EventKind::Shootdown, 2, 20, 200);
    ASSERT_EQ(ring.size(), 2u);

    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, EventKind::KeyEviction);
    EXPECT_EQ(events[0].tid, 1u);
    EXPECT_EQ(events[0].arg, 10u);
    EXPECT_EQ(events[0].value, 100u);
    EXPECT_EQ(events[1].kind, EventKind::Shootdown);
    EXPECT_DOUBLE_EQ(ring.recorded.value(), 2.0);
    EXPECT_DOUBLE_EQ(ring.dropped.value(), 0.0);
}

TEST(EventRing, OverwritesOldestWhenFull)
{
    stats::Group root(nullptr, "sys");
    EventRing ring(&root, "events", 3);
    for (std::uint32_t i = 0; i < 5; ++i)
        ring.post(EventKind::TxnCommit, 0, i);

    ASSERT_EQ(ring.size(), 3u); // Bounded: never grows past capacity.
    const auto events = ring.snapshot();
    EXPECT_EQ(events[0].arg, 2u); // The two oldest were overwritten.
    EXPECT_EQ(events[1].arg, 3u);
    EXPECT_EQ(events[2].arg, 4u);
    EXPECT_DOUBLE_EQ(ring.recorded.value(), 5.0);
    EXPECT_DOUBLE_EQ(ring.dropped.value(), 2.0);
}

TEST(EventRing, WrapAroundKeepsExactDropAccounting)
{
    stats::Group root(nullptr, "sys");
    EventRing ring(&root, "events", 4);

    // Filling to exactly capacity drops nothing.
    for (std::uint32_t i = 0; i < 4; ++i)
        ring.post(EventKind::TxnCommit, 0, i);
    EXPECT_DOUBLE_EQ(ring.dropped.value(), 0.0);

    // Wrap around the ring almost twice more: each post past capacity
    // evicts exactly one event, oldest first.
    for (std::uint32_t i = 4; i < 11; ++i)
        ring.post(EventKind::TxnCommit, 0, i);

    ASSERT_EQ(ring.size(), 4u);
    EXPECT_DOUBLE_EQ(ring.recorded.value(), 11.0);
    EXPECT_DOUBLE_EQ(ring.dropped.value(), 7.0);

    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].arg, 7u + i); // Survivors in post order.

    // A drain across the wrapped state returns the same survivors and
    // resets the ring without disturbing the counters.
    const auto drained = ring.drain();
    ASSERT_EQ(drained.size(), 4u);
    EXPECT_EQ(drained[0].arg, 7u);
    EXPECT_EQ(drained[3].arg, 10u);
    EXPECT_TRUE(ring.empty());
    EXPECT_DOUBLE_EQ(ring.recorded.value(), 11.0);
    EXPECT_DOUBLE_EQ(ring.dropped.value(), 7.0);
}

TEST(EventRing, DrainEmptiesButKeepsStats)
{
    stats::Group root(nullptr, "sys");
    EventRing ring(&root, "events", 4);
    ring.post(EventKind::PtlbRefill, 0);
    ring.post(EventKind::DttlbRefill, 0);

    const auto drained = ring.drain();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_TRUE(ring.empty());
    EXPECT_DOUBLE_EQ(ring.recorded.value(), 2.0);

    // The ring keeps working after a drain.
    ring.post(EventKind::Shootdown, 3);
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.snapshot()[0].kind, EventKind::Shootdown);
}

TEST(EventRing, StampsCyclesFromBoundClock)
{
    stats::Group root(nullptr, "sys");
    EventRing ring(&root, "events", 4);
    ring.post(EventKind::TxnCommit, 0); // Unbound: stamps 0.

    Cycles clock = 42;
    ring.bindClock(&clock);
    ring.post(EventKind::TxnCommit, 0);
    clock = 99;
    ring.post(EventKind::TxnCommit, 0);

    const auto events = ring.snapshot();
    EXPECT_EQ(events[0].cycle, 0u);
    EXPECT_EQ(events[1].cycle, 42u);
    EXPECT_EQ(events[2].cycle, 99u);
}

TEST(EventRing, AppearsInOwnersStatsTree)
{
    stats::Group root(nullptr, "sys");
    EventRing ring(&root, "events", 4);
    ring.post(EventKind::KeyEviction, 0);
    EXPECT_DOUBLE_EQ(root.lookup("events.recorded"), 1.0);
    EXPECT_DOUBLE_EQ(root.lookup("events.dropped"), 0.0);
}

TEST(EventRing, KindNamesAreStable)
{
    EXPECT_STREQ(eventKindName(EventKind::KeyEviction), "key_eviction");
    EXPECT_STREQ(eventKindName(EventKind::Shootdown), "shootdown");
    EXPECT_STREQ(eventKindName(EventKind::PtlbRefill), "ptlb_refill");
    EXPECT_STREQ(eventKindName(EventKind::DttlbRefill), "dttlb_refill");
    EXPECT_STREQ(eventKindName(EventKind::TxnCommit), "txn_commit");
}

} // namespace
} // namespace pmodv::trace
