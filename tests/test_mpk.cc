/**
 * @file
 * Unit tests for the stock MPK scheme, including the paper's
 * Figure 2 temporal/spatial isolation scenarios and the 16-key
 * exhaustion problem that motivates the whole work.
 */

#include <gtest/gtest.h>

#include "arch/mpk.hh"
#include "scheme_test_util.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using test::pmoBase;
using test::SchemeHarness;

constexpr Addr kSize = Addr{1} << 20;

TEST(Mpk, AttachAssignsDistinctKeys)
{
    SchemeHarness h(SchemeKind::Mpk);
    h.attach(1, pmoBase(0), kSize);
    h.attach(2, pmoBase(1), kSize);
    auto &mpk = static_cast<arch::MpkScheme &>(h.scheme());
    EXPECT_NE(mpk.keyOf(1), kInvalidKey);
    EXPECT_NE(mpk.keyOf(2), kInvalidKey);
    EXPECT_NE(mpk.keyOf(1), mpk.keyOf(2));
}

TEST(Mpk, DefaultDeniedUntilSetPerm)
{
    SchemeHarness h(SchemeKind::Mpk);
    h.attach(1, pmoBase(0), kSize);
    // Attach grants nothing (paper §IV-A).
    EXPECT_FALSE(h.canRead(0, pmoBase(0)));
    EXPECT_FALSE(h.canWrite(0, pmoBase(0)));
}

/** Figure 2(a): temporal (intra-thread) isolation. */
TEST(Mpk, Figure2TemporalIsolation)
{
    SchemeHarness h(SchemeKind::Mpk);
    h.attachGranted(1, pmoBase(0), kSize, Perm::Read); // +R
    const Addr a = pmoBase(0) + 0x10;
    const Addr b = pmoBase(0) + 0x2000;
    const Addr c = pmoBase(0) + 0x3000;
    const Addr d = pmoBase(0) + 0x4000;

    EXPECT_TRUE(h.canRead(0, a)); // ld A permitted
    EXPECT_FALSE(h.canWrite(0, b));       // st B denied

    h.scheme().setPerm(0, 1, Perm::ReadWrite); // +W
    EXPECT_TRUE(h.canWrite(0, c));             // st C permitted

    h.scheme().setPerm(0, 1, Perm::None); // -R -W
    EXPECT_FALSE(h.canRead(0, d));        // ld D denied
}

/** Figure 2(b): spatial (inter-thread) isolation. */
TEST(Mpk, Figure2SpatialIsolation)
{
    SchemeHarness h(SchemeKind::Mpk);
    // Thread 1 gets the full grant; thread 2 may only read.
    h.attachGranted(1, pmoBase(0), kSize, Perm::ReadWrite, 1);
    const Addr a = pmoBase(0) + 0x10;
    const Addr b = pmoBase(0) + 0x2000;

    h.scheme().setPerm(2, 1, Perm::Read);

    EXPECT_TRUE(h.canWrite(1, a));  // Thread1 st A permitted.
    EXPECT_TRUE(h.canRead(2, a));   // Thread2 may read...
    EXPECT_FALSE(h.canWrite(2, b)); // ...but st B denied.

    // Thread 3 never obtained permission at all.
    EXPECT_FALSE(h.canRead(3, a));
}

TEST(Mpk, PagePermissionIsStricter)
{
    SchemeHarness h(SchemeKind::Mpk);
    // Read-only mapping, full domain grant.
    h.attachGranted(1, pmoBase(0), kSize, Perm::ReadWrite, 0,
                    Perm::Read);
    EXPECT_TRUE(h.canRead(0, pmoBase(0)));
    // Domain allows W but the page does not: strictest wins.
    const auto out = h.accessOutcome(0, pmoBase(0), AccessType::Write);
    EXPECT_FALSE(out.allowed);
    EXPECT_EQ(out.fault, arch::FaultKind::PagePermission);
}

TEST(Mpk, DomainlessAccessBypassesChecks)
{
    SchemeHarness h(SchemeKind::Mpk);
    // Unmapped (non-PMO) VA: write allowed, no fault counted.
    EXPECT_TRUE(h.canWrite(0, 0x1000));
    EXPECT_DOUBLE_EQ(h.scheme().protectionFaults.value(), 0.0);
}

TEST(Mpk, KeyExhaustionLeavesPmosDomainless)
{
    SchemeHarness h(SchemeKind::Mpk);
    // 15 allocatable keys; the 16th PMO goes domainless.
    for (unsigned i = 0; i < 16; ++i)
        h.attach(i + 1, pmoBase(i), kSize);
    auto &mpk = static_cast<arch::MpkScheme &>(h.scheme());
    EXPECT_DOUBLE_EQ(mpk.keyExhausted.value(), 1.0);
    EXPECT_EQ(mpk.keyOf(16), kNullKey);
    // The domainless PMO is unprotected — the security hole the paper
    // highlights: accesses succeed without any SETPERM.
    EXPECT_TRUE(h.canWrite(0, pmoBase(15)));
    // A properly keyed PMO still requires permission.
    EXPECT_FALSE(h.canWrite(0, pmoBase(0)));
}

TEST(Mpk, DetachFreesKeyForReuse)
{
    SchemeHarness h(SchemeKind::Mpk);
    for (unsigned i = 0; i < 15; ++i)
        h.attach(i + 1, pmoBase(i), kSize);
    auto &mpk = static_cast<arch::MpkScheme &>(h.scheme());
    const ProtKey freed = mpk.keyOf(3);
    h.detach(3);
    EXPECT_EQ(mpk.keyOf(3), kInvalidKey);
    h.attach(99, pmoBase(15), kSize);
    EXPECT_EQ(mpk.keyOf(99), freed);
    EXPECT_DOUBLE_EQ(mpk.keyExhausted.value(), 0.0);
}

TEST(Mpk, SetPermCostsWrpkru)
{
    arch::ProtParams params;
    params.wrpkruCycles = 27;
    SchemeHarness h(SchemeKind::Mpk, params);
    h.attach(1, pmoBase(0), kSize);
    EXPECT_EQ(h.scheme().setPerm(0, 1, Perm::Read), 27u);
    EXPECT_DOUBLE_EQ(h.scheme().permChanges.value(), 1.0);
    EXPECT_DOUBLE_EQ(h.scheme().cycPermissionChange.value(), 27.0);
}

TEST(Mpk, WrpkruRawSetsPkruDirectly)
{
    SchemeHarness h(SchemeKind::Mpk);
    h.attach(1, pmoBase(0), kSize);
    auto &mpk = static_cast<arch::MpkScheme &>(h.scheme());
    const ProtKey key = mpk.keyOf(1);
    mpk.wrpkruRaw(0, key, Perm::ReadWrite);
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
    EXPECT_EQ(mpk.pkru(0).permFor(key), Perm::ReadWrite);
}

TEST(Mpk, EffectivePermMirrorsPkru)
{
    SchemeHarness h(SchemeKind::Mpk);
    h.attach(1, pmoBase(0), kSize);
    EXPECT_EQ(h.scheme().effectivePerm(0, 1), Perm::None);
    h.scheme().setPerm(0, 1, Perm::Read);
    EXPECT_EQ(h.scheme().effectivePerm(0, 1), Perm::Read);
    EXPECT_EQ(h.scheme().effectivePerm(5, 1), Perm::None);
}

TEST(Mpk, FaultsAreCounted)
{
    SchemeHarness h(SchemeKind::Mpk);
    h.attach(1, pmoBase(0), kSize);
    h.canWrite(0, pmoBase(0));
    h.canRead(0, pmoBase(0));
    EXPECT_DOUBLE_EQ(h.scheme().protectionFaults.value(), 2.0);
}

TEST(Mpk, TlbCachedKeySurvivesAcrossAccesses)
{
    SchemeHarness h(SchemeKind::Mpk);
    h.attachGranted(1, pmoBase(0), kSize);
    EXPECT_TRUE(h.canWrite(0, pmoBase(0)));
    // TLB hit path: still checked against PKRU after revocation.
    h.scheme().setPerm(0, 1, Perm::None);
    EXPECT_FALSE(h.canWrite(0, pmoBase(0)));
}

} // namespace
} // namespace pmodv
