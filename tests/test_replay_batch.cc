/**
 * @file
 * Cross-path determinism of the batch replay engine: for every
 * protection scheme, System::replayBatch must produce bit-identical
 * observable state — total cycles, the full stats tree (timeline
 * included), and the event ring — to feeding the same records one by
 * one through the legacy TraceSink::put() path.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "pmo/api.hh"
#include "trace/trace_file.hh"
#include "stats/export.hh"
#include "workloads/micro/micro.hh"
#include "workloads/whisper/whisper.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using trace::TraceRecord;

constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::NoProtection, SchemeKind::Lowerbound,
    SchemeKind::Mpk,          SchemeKind::LibMpk,
    SchemeKind::MpkVirt,      SchemeKind::DomainVirt,
};

/** Replay @p records through the legacy per-record put() path. */
void
replayLegacy(core::System &sys, const std::vector<TraceRecord> &records)
{
    for (const TraceRecord &rec : records)
        sys.put(rec);
    sys.finish();
}

/** Replay @p records through the batch engine. */
void
replayBatched(core::System &sys, const std::vector<TraceRecord> &records)
{
    sys.replayBatch(records);
    sys.finish();
}

/**
 * Assert every observable output of the two Systems is identical:
 * cycle count, the serialized stats tree (scalars, histograms,
 * formulas, TLB/cache substructure and the sampling timeline), and
 * the event ring contents.
 */
void
expectIdentical(const core::System &legacy, const core::System &batch,
                SchemeKind kind, const char *workload)
{
    EXPECT_EQ(legacy.totalCycles(), batch.totalCycles())
        << arch::schemeName(kind) << " on " << workload;
    EXPECT_EQ(stats::toJsonString(legacy), stats::toJsonString(batch))
        << arch::schemeName(kind) << " on " << workload;
    EXPECT_EQ(legacy.events().snapshot(), batch.events().snapshot())
        << arch::schemeName(kind) << " on " << workload;
}

void
compareAllSchemes(const std::vector<TraceRecord> &records,
                  const core::SimConfig &cfg, const char *workload)
{
    for (SchemeKind kind : kAllSchemes) {
        core::System legacy(cfg, kind);
        core::System batch(cfg, kind);
        replayLegacy(legacy, records);
        replayBatched(batch, records);
        expectIdentical(legacy, batch, kind, workload);
    }
}

std::vector<TraceRecord>
captureMicro(const char *name)
{
    workloads::MicroParams params;
    params.numPmos = 24;
    params.pmoBytes = Addr{1} << 20;
    params.numOps = 400;
    params.initialNodes = 96;
    trace::VectorSink sink;
    workloads::TraceCtx ctx(sink, params.seed);
    workloads::makeMicro(name, params)->run(ctx);
    return sink.take();
}

std::vector<TraceRecord>
captureWhisper(const char *name)
{
    workloads::WhisperParams params;
    params.numTxns = 120;
    params.poolBytes = std::size_t{4} << 20;
    params.initialKeys = 150;
    trace::VectorSink sink;
    pmo::Namespace ns;
    workloads::makeWhisper(name, params)->run(ns, sink);
    return sink.take();
}

/**
 * A hand-built trace covering every record type and the branches a
 * workload capture never exercises: denied accesses (loads before any
 * SETPERM), cross-thread denials, large pages, detach/re-attach and
 * explicit WRPKRU records.
 */
std::vector<TraceRecord>
adversarialTrace()
{
    constexpr Addr base = Addr{1} << 33;
    constexpr Addr stride = Addr{16} << 20;
    constexpr Addr size = Addr{1} << 20;
    std::vector<TraceRecord> t;
    for (unsigned d = 1; d <= 3; ++d) {
        t.push_back(TraceRecord::attach(0, d, base + (d - 1) * stride,
                                        size, Perm::ReadWrite));
    }
    t.push_back(TraceRecord::attach(
        0, 4, base + 3 * stride, Addr{2} << 21, Perm::ReadWrite,
        PageSize::Size2M));
    t.push_back(TraceRecord::load(0, base, 8, true)); // Denied: no perm.
    t.push_back(TraceRecord::setPerm(0, 1, Perm::Read));
    t.push_back(TraceRecord::store(0, base, 8, true)); // Denied: RO.
    t.push_back(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    t.push_back(TraceRecord::wrpkru(0, 2, Perm::ReadWrite));
    t.push_back(TraceRecord::opBegin(0, 1));
    for (unsigned i = 0; i < 200; ++i) {
        t.push_back(TraceRecord::instBlock(0, 7 + i % 9));
        t.push_back(TraceRecord::load(
            0, base + (i * 4096) % size, 8, true));
        if (i % 3 == 0) {
            t.push_back(TraceRecord::store(
                0, base + (i * 64) % size, 8, true));
        }
        if (i % 7 == 0) {
            t.push_back(TraceRecord::load(
                0, base + 3 * stride + (i * 4096) % (Addr{2} << 21), 8,
                true));
        }
    }
    t.push_back(TraceRecord::opEnd(0, 1));
    t.push_back(TraceRecord::threadSwitch(1));
    t.push_back(TraceRecord::load(1, base, 8, true)); // Cross-thread.
    t.push_back(TraceRecord::setPerm(1, 2, Perm::ReadWrite));
    for (unsigned i = 0; i < 50; ++i) {
        t.push_back(TraceRecord::load(
            1, base + stride + (i * 4096) % size, 8, true));
    }
    t.push_back(TraceRecord::threadSwitch(0));
    t.push_back(TraceRecord::detach(0, 3));
    t.push_back(TraceRecord::attach(0, 3, base + 2 * stride, size,
                                    Perm::ReadWrite));
    t.push_back(TraceRecord::opEnd(0, 9)); // Stray end: tolerated.
    return t;
}

TEST(ReplayBatch, MicroTraceBitIdenticalAcrossPaths)
{
    compareAllSchemes(captureMicro("avl"), core::SimConfig{}, "avl");
}

TEST(ReplayBatch, SecondMicroWorkloadBitIdentical)
{
    compareAllSchemes(captureMicro("ll"), core::SimConfig{}, "ll");
}

TEST(ReplayBatch, WhisperTraceBitIdenticalAcrossPaths)
{
    compareAllSchemes(captureWhisper("redis"), core::SimConfig{},
                      "whisper/redis");
}

TEST(ReplayBatch, AdversarialTraceBitIdenticalAcrossPaths)
{
    compareAllSchemes(adversarialTrace(), core::SimConfig{},
                      "adversarial");
}

TEST(ReplayBatch, TimelineSamplingBitIdenticalAcrossPaths)
{
    // With epoch sampling on, the batch engine must flush its
    // deferred counters at exactly the same epoch boundaries the
    // per-record path ticks at — TimeSeries rows are part of the
    // stats JSON, so any divergence fails the comparison.
    core::SimConfig cfg;
    cfg.samplingEpochCycles = 2048;
    cfg.samplingMaxEpochs = 512;
    compareAllSchemes(captureMicro("avl"), cfg, "avl+timeline");
    compareAllSchemes(adversarialTrace(), cfg, "adversarial+timeline");
}

#ifdef PMODV_TESTDATA_DIR
TEST(ReplayBatch, CommittedV1FixtureBitIdenticalAcrossPaths)
{
    // End-to-end legacy-format path: a v1 trace checked into the repo
    // flows through the decode-on-load fallback into the batch engine
    // and must match the per-record path — this is what the CI v1
    // compatibility job runs.
    trace::TraceFileReader reader(std::string(PMODV_TESTDATA_DIR) +
                                  "/micro_v1.trace");
    ASSERT_EQ(reader.version(), trace::kTraceVersionLegacy);
    auto buf = reader.view();
    const std::vector<TraceRecord> records(buf->records().begin(),
                                           buf->records().end());
    compareAllSchemes(records, core::SimConfig{}, "v1-fixture");
    core::System sys(core::SimConfig{}, SchemeKind::DomainVirt);
    sys.replayBatch(buf->records());
    sys.finish();
    EXPECT_GT(sys.totalCycles(), 0u);
}
#endif

TEST(ReplayBatch, SplitBatchesMatchSingleBatch)
{
    // Replaying a trace as several replayBatch() calls must equal one
    // call over the whole span (the deferred counters flush at batch
    // end, which is invisible in the final totals).
    const auto records = adversarialTrace();
    for (SchemeKind kind : kAllSchemes) {
        core::SimConfig cfg;
        core::System whole(cfg, kind);
        core::System split(cfg, kind);
        whole.replayBatch(records);
        whole.finish();
        const std::size_t third = records.size() / 3;
        std::span<const TraceRecord> all(records);
        split.replayBatch(all.subspan(0, third));
        split.replayBatch(all.subspan(third, third));
        split.replayBatch(all.subspan(2 * third));
        split.finish();
        expectIdentical(whole, split, kind, "split-batch");
    }
}

} // namespace
} // namespace pmodv
