/**
 * @file
 * Shared fixture utilities for protection-scheme tests: a miniature
 * machine (address space + TLB hierarchy + scheme) with helpers to
 * attach PMOs and issue checked accesses.
 */

#ifndef PMODV_TESTS_SCHEME_TEST_UTIL_HH
#define PMODV_TESTS_SCHEME_TEST_UTIL_HH

#include <memory>

#include "arch/factory.hh"
#include "stats/stats.hh"
#include "tlb/hierarchy.hh"

namespace pmodv::test
{

/** Verdict plus every cycle charge of one checked access. */
struct AccessOutcome
{
    bool allowed = false;
    arch::FaultKind fault = arch::FaultKind::None;
    Cycles checkCycles = 0; ///< Charged by the scheme's checkAccess().
    Cycles fillCycles = 0;  ///< Charged by the TLB fill (scheme extra).

    /** Total protection-attributable cycles of the access. */
    Cycles charged() const { return checkCycles + fillCycles; }
};

/** A miniature machine for driving a protection scheme directly. */
class SchemeHarness
{
  public:
    explicit SchemeHarness(arch::SchemeKind kind,
                           arch::ProtParams params = {},
                           arch::CoreTopology topo = {})
        : root_(nullptr, "test")
    {
        tlb_ = std::make_unique<tlb::TlbHierarchy>(
            &root_, tlb::TlbHierarchyParams{}, space_);
        scheme_ = arch::makeScheme(kind, &root_, params, topo, space_);
        scheme_->attachCore(0, tlb_.get());
    }

    /** Attach a PMO: map the region and notify the scheme. */
    void
    attach(DomainId domain, Addr base, Addr size,
           Perm page_perm = Perm::ReadWrite, ThreadId tid = 0)
    {
        tlb::Region region;
        region.base = base;
        region.size = size;
        region.domain = domain;
        region.pagePerm = page_perm;
        region.memClass = MemClass::Nvm;
        space_.map(region);
        scheme_->attach(tid, domain, base, size, page_perm);
    }

    void
    detach(DomainId domain, ThreadId tid = 0)
    {
        scheme_->detach(tid, domain);
        space_.unmapDomain(domain);
    }

    /** Attach a PMO and immediately grant @p perm to @p tid. */
    void
    attachGranted(DomainId domain, Addr base, Addr size,
                  Perm perm = Perm::ReadWrite, ThreadId tid = 0,
                  Perm page_perm = Perm::ReadWrite)
    {
        attach(domain, base, size, page_perm, tid);
        scheme_->setPerm(tid, domain, perm);
    }

    /** Translate + protection-check one access. */
    arch::CheckResult
    access(ThreadId tid, Addr va, AccessType type)
    {
        auto xlate = tlb_->translate(tid, va);
        lastFillExtra = xlate.fillExtra;
        arch::AccessContext ctx;
        ctx.tid = tid;
        ctx.va = va;
        ctx.type = type;
        ctx.entry = xlate.entry;
        return scheme_->checkAccess(ctx);
    }

    /** One access with its full outcome: verdict + charged cycles. */
    AccessOutcome
    accessOutcome(ThreadId tid, Addr va, AccessType type)
    {
        const arch::CheckResult res = access(tid, va, type);
        return {res.allowed, res.fault, res.extraCycles, lastFillExtra};
    }

    bool
    canRead(ThreadId tid, Addr va)
    {
        return access(tid, va, AccessType::Read).allowed;
    }

    bool
    canWrite(ThreadId tid, Addr va)
    {
        return access(tid, va, AccessType::Write).allowed;
    }

    arch::ProtectionScheme &scheme() { return *scheme_; }
    tlb::TlbHierarchy &tlbs() { return *tlb_; }
    tlb::AddressSpace &space() { return space_; }

    Cycles lastFillExtra = 0;

  private:
    stats::Group root_;
    tlb::AddressSpace space_;
    std::unique_ptr<tlb::TlbHierarchy> tlb_;
    std::unique_ptr<arch::ProtectionScheme> scheme_;
};

/** A convenient PMO base address generator (16 MB spacing). */
inline Addr
pmoBase(unsigned idx)
{
    return (Addr{1} << 33) + Addr{idx} * (Addr{16} << 20);
}

} // namespace pmodv::test

#endif // PMODV_TESTS_SCHEME_TEST_UTIL_HH
