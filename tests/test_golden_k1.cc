/**
 * @file
 * Golden-output regression for single-core replay: the full stats
 * tree and event ring of every protection scheme, replaying fixed
 * deterministic traces at the default one-core topology, must stay
 * byte-identical to the committed baselines under tests/data/golden_k1.
 *
 * This is the safety net for the multi-core replay redesign: any
 * refactor of core::System, the schemes, or the stats wiring that
 * changes a single K=1 number — a cycle, a counter, an event — fails
 * here with a diffable payload.
 *
 * Regenerate the baselines (only when an intentional model change
 * lands) with:
 *
 *     PMODV_GOLDEN_REGEN=1 ./build/tests/test_golden_k1
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.hh"
#include "stats/export.hh"
#include "trace/event_ring.hh"
#include "workloads/micro/micro.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using trace::TraceRecord;

constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::NoProtection, SchemeKind::Lowerbound,
    SchemeKind::Mpk,          SchemeKind::LibMpk,
    SchemeKind::MpkVirt,      SchemeKind::DomainVirt,
};

std::string
goldenDir()
{
    return std::string(PMODV_TESTDATA_DIR) + "/golden_k1";
}

bool
regenRequested()
{
    const char *env = std::getenv("PMODV_GOLDEN_REGEN");
    return env != nullptr && *env != '\0' && *env != '0';
}

/** Serialize the FULL event ring (all buffered events, oldest first). */
std::string
eventsToJson(const core::System &sys)
{
    std::string out = "[";
    bool first = true;
    for (const trace::Event &ev : sys.events().snapshot()) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"kind\":\"";
        out += trace::eventKindName(ev.kind);
        out += "\",\"cycle\":" + std::to_string(ev.cycle);
        out += ",\"tid\":" + std::to_string(ev.tid);
        out += ",\"arg\":" + std::to_string(ev.arg);
        out += ",\"value\":" + std::to_string(ev.value) + "}";
    }
    out += "]";
    return out;
}

/** The deterministic micro trace the baselines were captured from. */
std::vector<TraceRecord>
microTrace()
{
    workloads::MicroParams params;
    params.numPmos = 24;
    params.pmoBytes = Addr{1} << 20;
    params.numOps = 400;
    params.initialNodes = 96;
    trace::VectorSink sink;
    workloads::TraceCtx ctx(sink, params.seed);
    workloads::makeMicro("avl", params)->run(ctx);
    return sink.take();
}

/**
 * A hand-built multi-thread trace: cross-thread permission grants,
 * thread switches, denials, key-pressure evictions (36 domains > 15
 * MPK keys) and detach/re-attach — the paths a single-thread micro
 * capture never reaches.
 */
std::vector<TraceRecord>
multithreadTrace()
{
    constexpr Addr base = Addr{1} << 33;
    constexpr Addr stride = Addr{16} << 20;
    constexpr Addr size = Addr{1} << 20;
    constexpr unsigned domains = 36;
    std::vector<TraceRecord> t;
    for (unsigned d = 1; d <= domains; ++d) {
        t.push_back(TraceRecord::attach(0, d, base + (d - 1) * stride,
                                        size, Perm::ReadWrite));
    }
    for (unsigned d = 1; d <= domains; ++d) {
        t.push_back(TraceRecord::setPerm(0, d, Perm::ReadWrite));
        t.push_back(TraceRecord::setPerm(1, d, d % 3 ? Perm::ReadWrite
                                                     : Perm::Read));
    }
    std::uint16_t tid = 0;
    for (unsigned i = 0; i < 600; ++i) {
        const auto next =
            static_cast<std::uint16_t>(i % 5 == 4 ? 1 - tid : tid);
        if (next != tid) {
            t.push_back(TraceRecord::threadSwitch(next));
            tid = next;
        }
        const unsigned d = (i * 7) % domains + 1;
        const Addr addr = base + (d - 1) * stride + (i * 64) % size;
        if (i % 3 == 0)
            t.push_back(TraceRecord::store(tid, addr, 8, true));
        else
            t.push_back(TraceRecord::load(tid, addr, 8, true));
    }
    t.push_back(TraceRecord::detach(tid, 3));
    t.push_back(TraceRecord::attach(tid, 3, base + 2 * stride, size,
                                    Perm::ReadWrite));
    t.push_back(TraceRecord::load(tid, base + 2 * stride, 8, true));
    return t;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &payload)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << payload;
}

void
checkTrace(const char *trace_name,
           const std::vector<TraceRecord> &records)
{
    core::SimConfig cfg;
    // Sample a timeline so its serialization is pinned too.
    cfg.samplingEpochCycles = 65536;
    cfg.samplingMaxEpochs = 256;
    for (SchemeKind kind : kAllSchemes) {
        core::System sys(cfg, kind);
        sys.replayBatch(records);
        sys.finish();
        const std::string stats_json = stats::toJsonString(sys);
        const std::string events_json = eventsToJson(sys);
        const std::string stem = goldenDir() + "/" + trace_name + "_" +
                                 arch::schemeName(kind);
        if (regenRequested()) {
            writeFile(stem + ".stats.json", stats_json);
            writeFile(stem + ".events.json", events_json);
            continue;
        }
        const std::string want_stats = readFile(stem + ".stats.json");
        const std::string want_events = readFile(stem + ".events.json");
        ASSERT_FALSE(want_stats.empty())
            << "missing golden baseline " << stem << ".stats.json"
            << " (run with PMODV_GOLDEN_REGEN=1 to create it)";
        EXPECT_EQ(stats_json, want_stats)
            << arch::schemeName(kind) << " stats drifted on '"
            << trace_name << "' — K=1 replay is no longer bit-identical";
        EXPECT_EQ(events_json, want_events)
            << arch::schemeName(kind) << " event ring drifted on '"
            << trace_name << "'";
    }
}

TEST(GoldenK1, MicroAvlBitIdentical)
{
    checkTrace("avl", microTrace());
}

TEST(GoldenK1, MultithreadTraceBitIdentical)
{
    checkTrace("mt", multithreadTrace());
}

} // namespace
} // namespace pmodv
