/**
 * @file
 * Integration tests of the experiment drivers: the qualitative
 * results the paper reports must emerge from small-scale runs —
 * orderings, crossover direction, and breakdown consistency.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "exp/executor.hh"

namespace pmodv::exp
{
namespace
{

using arch::SchemeKind;

// Local spec-building conveniences over the Executor API; the test
// bodies below read like the experiments they model.
MicroPoint
runMicroPoint(const std::string &bench,
              const workloads::MicroParams &mparams,
              const core::SimConfig &config,
              const std::vector<SchemeKind> &schemes)
{
    MicroPointSpec spec;
    spec.benchmark = bench;
    spec.params = mparams;
    spec.config = config;
    spec.schemes = schemes;
    common::ThreadPool pool(2);
    return Executor(pool).runMicro(spec);
}

WhisperRow
runWhisper(const std::string &name,
           const workloads::WhisperParams &wparams,
           const core::SimConfig &config)
{
    WhisperPointSpec spec;
    spec.benchmark = name;
    spec.params = wparams;
    spec.config = config;
    common::ThreadPool pool(2);
    return Executor(pool).runWhisper(spec);
}

workloads::MicroParams
sweepParams(unsigned pmos)
{
    workloads::MicroParams p;
    p.numPmos = pmos;
    p.pmoBytes = Addr{8} << 20;
    p.numOps = 4000;
    p.initialNodes = 512;
    p.seed = 42;
    return p;
}

core::SimConfig
config()
{
    return {};
}

TEST(MicroPoint, SchemesOrderedAtManyPmos)
{
    auto pt = runMicroPoint("avl", sweepParams(128), config(),
                            {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                             SchemeKind::DomainVirt});
    const double libmpk = pt.overheadPct[SchemeKind::LibMpk];
    const double mpkv = pt.overheadPct[SchemeKind::MpkVirt];
    const double domv = pt.overheadPct[SchemeKind::DomainVirt];
    // The paper's headline ordering at high PMO counts.
    EXPECT_GT(libmpk, mpkv);
    EXPECT_GT(mpkv, domv);
    EXPECT_GT(domv, 0.0);
    // And the factors are in the right regime (order of magnitude).
    EXPECT_GT(libmpk / mpkv, 3.0);
    EXPECT_GT(libmpk / domv, 15.0);
}

TEST(MicroPoint, LowerboundMatchesSwitchCost)
{
    auto pt = runMicroPoint("ss", sweepParams(32), config(), {});
    // Lowerbound overhead must be positive and modest (switch cost
    // only), far below the virtualization overheads at scale.
    EXPECT_GT(pt.lowerboundOverheadPct, 0.0);
    EXPECT_LT(pt.lowerboundOverheadPct, 30.0);
    EXPECT_GT(pt.switchesPerSec, 0.0);
}

TEST(MicroPoint, MpkVirtOverheadGrowsWithPmoCount)
{
    auto low = runMicroPoint("avl", sweepParams(16), config(),
                             {SchemeKind::MpkVirt});
    auto high = runMicroPoint("avl", sweepParams(256), config(),
                              {SchemeKind::MpkVirt});
    EXPECT_GT(high.overheadPct[SchemeKind::MpkVirt],
              low.overheadPct[SchemeKind::MpkVirt]);
    EXPECT_GT(high.keyRemaps[SchemeKind::MpkVirt],
              low.keyRemaps[SchemeKind::MpkVirt]);
}

TEST(MicroPoint, DomainVirtIsFlatterThanMpkVirt)
{
    auto low = runMicroPoint("rbt", sweepParams(16), config(),
                             {SchemeKind::MpkVirt,
                              SchemeKind::DomainVirt});
    auto high = runMicroPoint("rbt", sweepParams(256), config(),
                              {SchemeKind::MpkVirt,
                               SchemeKind::DomainVirt});
    const double mpkv_growth =
        high.overheadPct[SchemeKind::MpkVirt] /
        std::max(1.0, low.overheadPct[SchemeKind::MpkVirt]);
    const double domv_growth =
        high.overheadPct[SchemeKind::DomainVirt] /
        std::max(1.0, low.overheadPct[SchemeKind::DomainVirt]);
    EXPECT_GT(mpkv_growth, domv_growth);
}

TEST(MicroPoint, DomainVirtNeverShootsDown)
{
    auto pt = runMicroPoint("avl", sweepParams(64), config(),
                            {SchemeKind::DomainVirt});
    EXPECT_DOUBLE_EQ(pt.keyRemaps[SchemeKind::DomainVirt], 0.0);
}

TEST(MicroPoint, BreakdownRowsSumToTotal)
{
    auto pt = runMicroPoint("avl", sweepParams(64), config(),
                            {SchemeKind::MpkVirt,
                             SchemeKind::DomainVirt});
    for (auto kind : {SchemeKind::MpkVirt, SchemeKind::DomainVirt}) {
        const Breakdown &b = pt.breakdown[kind];
        const double sum = b.permissionChangePct + b.entryChangesPct +
                           b.tableMissPct + b.tlbInvalidationPct +
                           b.accessLatencyPct;
        EXPECT_NEAR(sum, b.totalPct, 0.1)
            << arch::schemeName(kind);
    }
}

TEST(MicroPoint, TlbInvalidationsDominateMpkVirtBreakdown)
{
    auto pt = runMicroPoint("avl", sweepParams(256), config(),
                            {SchemeKind::MpkVirt});
    const Breakdown &b = pt.breakdown[SchemeKind::MpkVirt];
    // Paper Table VII: the shootdown row is the dominant source.
    EXPECT_GT(b.tlbInvalidationPct, b.permissionChangePct);
    EXPECT_GT(b.tlbInvalidationPct, b.entryChangesPct);
    EXPECT_GT(b.tlbInvalidationPct, b.tableMissPct);
}

TEST(MicroPoint, DomainVirtBreakdownHasNoShootdowns)
{
    auto pt = runMicroPoint("avl", sweepParams(256), config(),
                            {SchemeKind::DomainVirt});
    const Breakdown &b = pt.breakdown[SchemeKind::DomainVirt];
    EXPECT_NEAR(b.tlbInvalidationPct, 0.0, 1.0);
    EXPECT_GT(b.accessLatencyPct, 0.0);
    EXPECT_GT(b.tableMissPct, 0.0);
}

TEST(MicroPoint, BtreeLeastSensitiveToScheme)
{
    auto avl = runMicroPoint("avl", sweepParams(256), config(),
                             {SchemeKind::MpkVirt});
    auto bt = runMicroPoint("bt", sweepParams(256), config(),
                            {SchemeKind::MpkVirt});
    // B+ tree's locality gives it a much smaller MPK-virt penalty
    // (the paper's later-crossover argument).
    EXPECT_LT(bt.overheadPct[SchemeKind::MpkVirt],
              avl.overheadPct[SchemeKind::MpkVirt] / 2);
}

TEST(Whisper, SinglePmoOverheadsMatchPaperShape)
{
    workloads::WhisperParams wp;
    wp.numTxns = 300;
    wp.poolBytes = std::size_t{8} << 20;
    wp.initialKeys = 500;
    auto row = runWhisper("echo", wp, config());

    EXPECT_GT(row.switchesPerSec, 0.0);
    // Table V: overheads are small, single-digit percentages.
    EXPECT_GT(row.overheadMpkPct, 0.0);
    EXPECT_LT(row.overheadMpkPct, 10.0);
    // One PMO: HW MPK virtualization behaves exactly like stock MPK.
    EXPECT_NEAR(row.overheadMpkVirtPct, row.overheadMpkPct, 0.35);
    // Domain virtualization is slightly more expensive (PTLB lookup
    // on every PMO access).
    EXPECT_GT(row.overheadDomainVirtPct, row.overheadMpkPct - 0.05);
}

TEST(Log2Pct, MatchesFigureAxisConvention)
{
    EXPECT_DOUBLE_EQ(log2Pct(4.0), 2.0);  // 2^2 = 4% slower.
    EXPECT_DOUBLE_EQ(log2Pct(16.0), 4.0); // 2^4 = 16%.
    EXPECT_DOUBLE_EQ(log2Pct(0.0), 0.0);
    EXPECT_DOUBLE_EQ(log2Pct(-3.0), 0.0);
}

} // namespace
} // namespace pmodv::exp
