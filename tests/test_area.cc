/**
 * @file
 * Tests for the Table VIII area/memory overhead model.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/area.hh"

namespace pmodv::exp
{
namespace
{

TEST(Area, DttlbEntryIs76Bits)
{
    // Paper: 16 entries x 76 bits = 152 bytes.
    EXPECT_EQ(dttlbEntryBits(), 76u);
    AreaInputs in;
    EXPECT_EQ(mpkVirtArea(in).bufferBits, 16u * 76u);
    EXPECT_EQ(mpkVirtArea(in).bufferBits / 8, 152u);
}

TEST(Area, PtlbEntryIs12Bits)
{
    // Paper: 16 entries x 12 bits = 24 bytes.
    EXPECT_EQ(ptlbEntryBits(), 12u);
    AreaInputs in;
    EXPECT_EQ(domainVirtArea(in).bufferBits / 8, 24u);
}

TEST(Area, RegistersPerCore)
{
    AreaInputs in;
    EXPECT_EQ(mpkVirtArea(in).newRegistersPerCore, 1u);
    EXPECT_EQ(domainVirtArea(in).newRegistersPerCore, 2u);
}

TEST(Area, DttIs256KbAtPaperScale)
{
    AreaInputs in; // 1024 domains x 1024 threads.
    EXPECT_EQ(mpkVirtArea(in).tableBytesPerProcess, 256u * 1024u);
}

TEST(Area, DomainVirtTablesAre256KbPlus16Kb)
{
    AreaInputs in;
    EXPECT_EQ(domainVirtArea(in).tableBytesPerProcess,
              256u * 1024u + 16u * 1024u);
}

TEST(Area, TlbExtensionOnlyForDomainVirt)
{
    AreaInputs in;
    EXPECT_EQ(mpkVirtArea(in).tlbExtensionBits, 0u);
    // 6 extra bits per TLB entry across 1600 entries.
    EXPECT_EQ(domainVirtArea(in).tlbExtensionBits, 1600u * 6u);
}

TEST(Area, BuffersStayTiny)
{
    // Paper: "their sizes are negligible (both less than 0.2KB)".
    AreaInputs in;
    EXPECT_LT(mpkVirtArea(in).bufferBits / 8, 205u);
    EXPECT_LT(domainVirtArea(in).bufferBits / 8, 205u);
}

TEST(Area, ScalesWithInputs)
{
    AreaInputs small;
    small.numDomains = 64;
    small.numThreads = 8;
    AreaInputs big;
    EXPECT_LT(mpkVirtArea(small).tableBytesPerProcess,
              mpkVirtArea(big).tableBytesPerProcess);
}

TEST(Area, PrintedTableMentionsKeyNumbers)
{
    std::ostringstream os;
    printAreaTable(os, AreaInputs{});
    const std::string text = os.str();
    EXPECT_NE(text.find("152"), std::string::npos); // DTTLB bytes.
    EXPECT_NE(text.find("24"), std::string::npos);  // PTLB bytes.
    EXPECT_NE(text.find("256"), std::string::npos); // Table KB.
    EXPECT_NE(text.find("DTT"), std::string::npos);
    EXPECT_NE(text.find("PTLB"), std::string::npos);
}

} // namespace
} // namespace pmodv::exp
