/**
 * @file
 * Tests for the WHISPER-like single-PMO benchmarks, which run on the
 * real PMO library and capture traces through the Runtime.
 */

#include <gtest/gtest.h>

#include "pmo/pmo_namespace.hh"
#include "trace/sinks.hh"
#include "workloads/whisper/whisper.hh"

namespace pmodv::workloads
{
namespace
{

WhisperParams
tinyParams()
{
    WhisperParams p;
    p.numTxns = 200;
    p.poolBytes = std::size_t{8} << 20;
    p.initialKeys = 500;
    p.seed = 42;
    return p;
}

class WhisperShape : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WhisperShape, RunsAndEmitsSaneTrace)
{
    auto workload = makeWhisper(GetParam(), tinyParams());
    pmo::Namespace ns;
    trace::VectorSink buffer;
    trace::TeeCountingSink sink(&buffer);
    workload->run(ns, sink);

    // Exactly one PMO, attached before anything else.
    EXPECT_EQ(sink.count(trace::RecordType::Attach), 1u);
    EXPECT_EQ(buffer.records().front().type, trace::RecordType::Attach);
    EXPECT_EQ(sink.operations(), tinyParams().numTxns);
    EXPECT_GT(sink.pmoAccesses(), 0u);

    // The paper's discipline: a SETPERM pair wraps every PMO access
    // in the measured phase.
    EXPECT_EQ(sink.permissionSwitches(), 2 * sink.pmoAccesses());
}

TEST_P(WhisperShape, SwitchRecordsBracketAccesses)
{
    auto workload = makeWhisper(GetParam(), tinyParams());
    pmo::Namespace ns;
    trace::VectorSink sink;
    workload->run(ns, sink);

    using trace::RecordType;
    const auto &recs = sink.records();
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (!recs[i].isPmoAccess())
            continue;
        ASSERT_GE(i, 1u);
        EXPECT_EQ(recs[i - 1].type, RecordType::SetPerm)
            << "access " << i << " not preceded by SETPERM";
        ASSERT_LT(i + 1, recs.size());
        EXPECT_EQ(recs[i + 1].type, RecordType::SetPerm)
            << "access " << i << " not followed by SETPERM";
        // The trailing switch always revokes.
        EXPECT_EQ(recs[i + 1].perm(), Perm::None);
    }
}

TEST_P(WhisperShape, Deterministic)
{
    auto run = [&]() {
        auto workload = makeWhisper(GetParam(), tinyParams());
        pmo::Namespace ns;
        trace::VectorSink sink;
        workload->run(ns, sink);
        return sink.take();
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllSix, WhisperShape,
                         ::testing::Values("echo", "ycsb", "tpcc",
                                           "ctree", "hashmap",
                                           "redis"));

TEST(WhisperFactory, NamesListMatchesTableIII)
{
    const auto &names = whisperNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names.front(), "echo");
    EXPECT_EQ(names.back(), "redis");
}

TEST(WhisperFactory, RejectsUnknownName)
{
    EXPECT_EXIT((void)makeWhisper("bogus", tinyParams()),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(Whisper, WritesActuallyLandInThePool)
{
    // Run hashmap (insert-heavy) and verify the pool contains live
    // allocations afterwards: these benchmarks use the real library.
    auto workload = makeWhisper("hashmap", tinyParams());
    pmo::Namespace ns;
    trace::NullSink sink;
    workload->run(ns, sink);
    pmo::Pool &pool = ns.pool("hashmap_pool");
    EXPECT_GT(pool.allocatedBlocks(), tinyParams().numTxns / 2);
    pool.check();
}

TEST(Whisper, SwitchRatesOrderedRoughlyLikeTableV)
{
    // Echo inserts the largest inter-access instruction budget, YCSB
    // the smallest of the two — their switch *rates* must order the
    // opposite way (YCSB > Echo), as in Table V.
    WhisperParams p = tinyParams();
    auto rate = [&](const std::string &name) {
        auto workload = makeWhisper(name, p);
        pmo::Namespace ns;
        trace::CountingSink sink;
        workload->run(ns, sink);
        return static_cast<double>(sink.permissionSwitches()) /
               static_cast<double>(sink.totalInstructions());
    };
    EXPECT_GT(rate("ycsb"), rate("echo"));
}

} // namespace
} // namespace pmodv::workloads
