/**
 * @file
 * The open-loop KV server's latency-correctness battery:
 *
 *  * capture determinism — one seed, one trace, byte for byte;
 *  * the open-loop invariant — arrival stamps are a property of the
 *    captured trace (monotone, one per request, seed-reproducible),
 *    so every scheme serves the identical arrival process;
 *  * Zipf tenant skew — request counts per tenant rank pass a
 *    chi-square test against ZipfDist's exact masses;
 *  * replay correctness — latency histograms are batch-split
 *    invariant (idle-skew state must survive replayBatch boundaries),
 *    per-class samples partition the total, and queueing delay never
 *    exceeds total latency;
 *  * suite determinism — fig_tail-shaped suite JSON is byte-identical
 *    across worker counts and across runs (modulo the run-environment
 *    fields, which live on their own lines);
 *  * the paper's tail story — past the 16-key cliff the re-keying
 *    schemes' p99 sits far above domain virtualization's.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "core/system.hh"
#include "exp/suite.hh"
#include "stats/export.hh"
#include "trace/buffer.hh"
#include "trace/sinks.hh"
#include "workloads/server/server.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;

std::vector<trace::TraceRecord>
capture(const workloads::ServerParams &params)
{
    trace::VectorSink sink;
    workloads::TraceCtx ctx(sink, params.seed);
    workloads::ServerWorkload workload(params);
    workload.run(ctx);
    return sink.take();
}

workloads::ServerParams
smallParams()
{
    workloads::ServerParams p;
    p.numTenants = 32;
    p.numRequests = 2'000;
    return p;
}

/** The stamped arrivals of a captured trace, in trace order. */
std::vector<std::uint64_t>
arrivalsOf(const std::vector<trace::TraceRecord> &recs)
{
    std::vector<std::uint64_t> out;
    for (const trace::TraceRecord &rec : recs) {
        if (rec.type == trace::RecordType::OpBegin)
            out.push_back(rec.addr);
    }
    return out;
}

core::SimConfig
latencyConfig(unsigned cores = 1)
{
    core::SimConfig config;
    config.opClasses = workloads::ServerWorkload::kNumTenantClasses;
    config.topology.numCores = cores;
    return config;
}

TEST(ServerCapture, SeededAndDeterministic)
{
    const auto params = smallParams();
    const auto a = capture(params);
    const auto b = capture(params);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(a == b);

    auto other = params;
    other.seed = 43;
    EXPECT_FALSE(a == capture(other));
}

TEST(ServerCapture, OpenLoopArrivalInvariant)
{
    const auto params = smallParams();
    const auto recs = capture(params);
    std::uint64_t begins = 0;
    std::uint64_t ends = 0;
    std::uint64_t prev_arrival = 0;
    for (const trace::TraceRecord &rec : recs) {
        if (rec.type == trace::RecordType::OpBegin) {
            ++begins;
            // Every request carries a stamp; the arrival process is
            // monotone (an open-loop clock, not per-request jitter).
            EXPECT_TRUE(rec.hasArrival());
            EXPECT_GE(rec.addr, prev_arrival);
            prev_arrival = rec.addr;
            // Class is one of the server's tenant classes.
            EXPECT_LT(rec.value,
                      workloads::ServerWorkload::kNumTenantClasses);
        } else if (rec.type == trace::RecordType::OpEnd) {
            ++ends;
        }
    }
    EXPECT_EQ(begins, params.numRequests);
    EXPECT_EQ(ends, params.numRequests);

    // The stamps are a pure function of the seed — the "same arrivals
    // for every scheme" guarantee is capture-level by construction.
    EXPECT_EQ(arrivalsOf(recs), arrivalsOf(capture(params)));
}

TEST(ServerCapture, TenantSkewMatchesZipfChiSquare)
{
    workloads::ServerParams params;
    params.numTenants = 32;
    params.numRequests = 20'000;
    const auto recs = capture(params);

    std::vector<std::uint64_t> counts(params.numTenants, 0);
    std::uint64_t total = 0;
    for (const trace::TraceRecord &rec : recs) {
        if (rec.type != trace::RecordType::OpBegin)
            continue;
        // OpBegin's op-kind is the tenant's domain, 1-based rank.
        ASSERT_GE(rec.aux, 1u);
        ASSERT_LE(rec.aux, params.numTenants);
        ++counts[rec.aux - 1];
        ++total;
    }
    ASSERT_EQ(total, params.numRequests);

    const ZipfDist dist(params.numTenants, params.zipfTheta);
    double chi2 = 0.0;
    for (unsigned r = 0; r < params.numTenants; ++r) {
        const double expected =
            dist.rankMass(r) * static_cast<double>(total);
        ASSERT_GT(expected, 5.0);
        const double diff = static_cast<double>(counts[r]) - expected;
        chi2 += diff * diff / expected;
    }
    // 31 dof: the 99.9th percentile is ~61. Deterministic seed, so
    // this is really a regression pin with statistical meaning.
    EXPECT_LT(chi2, 90.0);
}

TEST(ServerReplay, LatencyHistogramsAreBatchSplitInvariant)
{
    const auto params = smallParams();
    const auto recs = capture(params);
    const auto buffer = trace::TraceBuffer::fromRecords(
        std::vector<trace::TraceRecord>(recs));

    for (SchemeKind kind : {SchemeKind::LibMpk, SchemeKind::DomainVirt}) {
        core::System whole(latencyConfig(), kind);
        whole.replayBatch(buffer->records());
        whole.finish();

        // Odd split sizes land boundaries inside OpBegin..OpEnd
        // windows; the idle-skew virtual clock must carry across.
        core::System split(latencyConfig(), kind);
        const auto all = buffer->records();
        for (std::size_t at = 0; at < all.size(); at += 777)
            split.replayBatch(all.subspan(at, std::min<std::size_t>(
                                                  777, all.size() - at)));
        split.finish();

        EXPECT_EQ(whole.totalCycles(), split.totalCycles());
        EXPECT_EQ(stats::toJsonString(whole), stats::toJsonString(split))
            << arch::schemeName(kind);
    }
}

TEST(ServerReplay, ClassHistogramsPartitionTheTotal)
{
    const auto params = smallParams();
    const auto buffer =
        trace::TraceBuffer::fromRecords(capture(params));

    core::System sys(latencyConfig(), SchemeKind::DomainVirt);
    sys.replayBatch(buffer->records());
    sys.finish();

    const stats::Histogram *lat = sys.opLatHist();
    const stats::Histogram *queue = sys.opQueueHist();
    ASSERT_NE(lat, nullptr);
    ASSERT_NE(queue, nullptr);
    EXPECT_EQ(lat->samples(), params.numRequests);
    EXPECT_EQ(queue->samples(), params.numRequests);

    std::uint64_t class_samples = 0;
    for (unsigned c = 0;
         c < workloads::ServerWorkload::kNumTenantClasses; ++c) {
        ASSERT_NE(sys.opLatClassHist(c), nullptr);
        class_samples += sys.opLatClassHist(c)->samples();
        // Hot tenants exist for every class under Zipf at 32 tenants.
        EXPECT_GT(sys.opLatClassHist(c)->samples(), 0u);
    }
    EXPECT_EQ(class_samples, params.numRequests);

    // Queueing delay is a component of total latency.
    EXPECT_LE(queue->mean(), lat->mean());
    EXPECT_LE(queue->max(), lat->max());
    // Quantiles are monotone in q.
    EXPECT_LE(lat->quantile(0.5), lat->quantile(0.99));
    EXPECT_LE(lat->quantile(0.99), lat->quantile(0.999));
}

TEST(ServerReplay, LegacyConfigIgnoresStampsBitIdentically)
{
    // A stamped trace replayed on a default config (opClasses == 0)
    // must produce exactly the cycles of... itself with tracking on:
    // the virtual clock never charges cycles. And the stats tree must
    // keep the legacy shape (no op_lat nodes).
    const auto params = smallParams();
    const auto buffer =
        trace::TraceBuffer::fromRecords(capture(params));

    core::SimConfig legacy;
    core::System plain(legacy, SchemeKind::LibMpk);
    plain.replayBatch(buffer->records());
    plain.finish();

    core::System tracked(latencyConfig(), SchemeKind::LibMpk);
    tracked.replayBatch(buffer->records());
    tracked.finish();

    EXPECT_EQ(plain.totalCycles(), tracked.totalCycles());
    EXPECT_EQ(plain.opLatHist(), nullptr);
    const std::string legacy_json = stats::toJsonString(plain);
    EXPECT_EQ(legacy_json.find("op_lat"), std::string::npos);
    EXPECT_NE(stats::toJsonString(tracked).find("op_lat"),
              std::string::npos);
}

TEST(ServerReplay, MultiCoreTracksEveryRequest)
{
    auto params = smallParams();
    params.numThreads = 2;
    const auto buffer =
        trace::TraceBuffer::fromRecords(capture(params));

    core::System sys(latencyConfig(2), SchemeKind::DomainVirt);
    sys.replayBatch(buffer->records());
    sys.finish();

    ASSERT_NE(sys.opLatHist(), nullptr);
    EXPECT_EQ(sys.opLatHist()->samples(), params.numRequests);
    EXPECT_EQ(sys.opQueueHist()->samples(), params.numRequests);
}

/** Suite JSON minus the run-environment lines (jobs, wall_seconds). */
std::string
strippedSuiteJson(const exp::ExperimentSuite &suite)
{
    std::ostringstream os;
    suite.writeJson(os);
    std::istringstream in(os.str());
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("  \"jobs\":", 0) == 0 ||
            line.rfind("  \"wall_seconds\":", 0) == 0)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

std::string
runTailSuite(unsigned jobs)
{
    exp::ServerSweepSpec sweep;
    sweep.tenantCounts = {16, 32};
    sweep.base.numRequests = 1'000;
    sweep.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                     SchemeKind::DomainVirt};
    exp::ExperimentSuite suite("tail_test");
    suite.add(sweep);
    common::ThreadPool pool(jobs);
    suite.run(pool);
    return strippedSuiteJson(suite);
}

TEST(ServerSuite, JsonByteIdenticalAcrossJobsAndRuns)
{
    const std::string j1 = runTailSuite(1);
    const std::string j4 = runTailSuite(4);
    const std::string j1_again = runTailSuite(1);
    EXPECT_EQ(j1, j4);
    EXPECT_EQ(j1, j1_again);
    // The stripped report still carries the server rows.
    EXPECT_NE(j1.find("\"server\": ["), std::string::npos);
    EXPECT_NE(j1.find("\"tenants\": 16"), std::string::npos);
    EXPECT_NE(j1.find("\"queue_p99\":"), std::string::npos);
}

TEST(ServerSuite, TailDivergesPastTheKeyCliff)
{
    exp::ServerPointSpec spec;
    spec.params.numTenants = 256;
    spec.params.numRequests = 3'000;
    spec.schemes = {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                    SchemeKind::DomainVirt};
    common::ThreadPool pool(4);
    exp::Executor executor(pool);
    const exp::ServerRow row = executor.runServer(spec);

    const exp::ServerLatency &libmpk =
        row.latency.at(SchemeKind::LibMpk);
    const exp::ServerLatency &mpk_virt =
        row.latency.at(SchemeKind::MpkVirt);
    const exp::ServerLatency &domain =
        row.latency.at(SchemeKind::DomainVirt);
    ASSERT_EQ(libmpk.samples, spec.params.numRequests);
    ASSERT_EQ(domain.samples, spec.params.numRequests);

    // 256 tenants >> 16 keys: the re-keying schemes' tails must sit
    // far above domain virtualization's, and their p99 must be
    // queueing-dominated (the open-loop signature).
    EXPECT_GT(libmpk.p99, 3.0 * domain.p99);
    EXPECT_GT(mpk_virt.p99, 1.5 * domain.p99);
    EXPECT_GT(libmpk.queueP99, 0.5 * libmpk.p99);
    // Tail ordering within each scheme.
    EXPECT_LE(domain.p50, domain.p99);
    EXPECT_LE(domain.p99, domain.p999);
}

} // namespace
} // namespace pmodv
