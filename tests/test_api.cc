/**
 * @file
 * Tests for the Table I pool API facade, exercised the way the
 * paper's code snippets use it.
 */

#include <gtest/gtest.h>

#include "pmo/api.hh"
#include "pmo/errors.hh"

namespace pmodv::pmo
{
namespace
{

constexpr std::size_t kSize = 256 * 1024;

class ApiTest : public ::testing::Test
{
  protected:
    ApiTest() : api_(ns_, 1000, 1) {}

    Namespace ns_;
    PmoApi api_;
};

TEST_F(ApiTest, PoolCreateOpensReadWrite)
{
    Pool *pool = api_.poolCreate("kv", kSize);
    ASSERT_NE(pool, nullptr);
    EXPECT_TRUE(ns_.exists("kv"));
    // The creating process is attached RW but holds no thread perms
    // yet (SETPERM comes separately).
    EXPECT_EQ(api_.runtime().threadPerm(0, api_.domainOf(pool)),
              Perm::None);
}

TEST_F(ApiTest, PoolRootIsStable)
{
    Pool *pool = api_.poolCreate("kv", kSize);
    const Oid root1 = api_.poolRoot(pool, 128);
    const Oid root2 = api_.poolRoot(pool, 64);
    EXPECT_EQ(root1, root2);
    EXPECT_FALSE(root1.isNull());
}

TEST_F(ApiTest, PmallocPfreeOidDirect)
{
    Pool *pool = api_.poolCreate("kv", kSize);
    const Oid oid = api_.pmalloc(pool, 64);
    auto *p = static_cast<std::uint64_t *>(api_.oidDirect(oid));
    *p = 99;
    EXPECT_EQ(*pool->as<std::uint64_t>(oid), 99u);
    api_.pfree(oid);
    EXPECT_EQ(pool->allocatedBlocks(), 0u);
}

TEST_F(ApiTest, SetPermGatesCheckedAccess)
{
    Pool *pool = api_.poolCreate("kv", kSize);
    const Oid oid = api_.pmalloc(pool, 64);
    Runtime &rt = api_.runtime();
    std::uint64_t v = 5;
    EXPECT_THROW(rt.write(0, oid, &v, 8), ProtectionFault);
    api_.setPerm(0, pool, Perm::ReadWrite);
    EXPECT_NO_THROW(rt.write(0, oid, &v, 8));
    api_.setPerm(0, pool, Perm::None);
    EXPECT_THROW(rt.read(0, oid, &v, 8), ProtectionFault);
}

TEST_F(ApiTest, PoolOpenChecksPermissions)
{
    // Owner-private pool: another user cannot open it at all.
    api_.poolCreate("mine", kSize);
    PmoApi other(ns_, 2000, 2);
    EXPECT_THROW(other.poolOpen("mine", Perm::Read), NamespaceError);
}

TEST_F(ApiTest, CloseThenReopen)
{
    Pool *pool = api_.poolCreate("kv", kSize);
    const Oid oid = api_.pmalloc(pool, 64);
    api_.runtime().setPerm(0, api_.domainOf(pool), Perm::ReadWrite);
    api_.runtime().writeValue<std::uint64_t>(0, oid, 31337);
    api_.poolClose(pool);

    Pool *again = api_.poolOpen("kv", Perm::Read);
    ASSERT_NE(again, nullptr);
    api_.setPerm(0, again, Perm::Read);
    EXPECT_EQ(api_.runtime().readValue<std::uint64_t>(0, oid), 31337u);
    // The mapping is read-only now: writes fail despite RW perms.
    api_.setPerm(0, again, Perm::ReadWrite);
    std::uint64_t v = 1;
    EXPECT_THROW(api_.runtime().write(0, oid, &v, 8), ProtectionFault);
}

TEST_F(ApiTest, TransactionOverApi)
{
    Pool *pool = api_.poolCreate("kv", kSize);
    const Oid oid = api_.pmalloc(pool, 64);
    Transaction txn = api_.transaction(pool);
    txn.begin();
    txn.writeValue<std::uint64_t>(oid, 1);
    txn.commit();
    pool->arena().crash();
    std::uint64_t out = 0;
    pool->read(oid, &out, 8);
    EXPECT_EQ(out, 1u);
}

TEST_F(ApiTest, NullPointerArgumentsRejected)
{
    EXPECT_THROW(api_.poolClose(nullptr), PmoError);
    EXPECT_THROW(api_.poolRoot(nullptr, 8), PmoError);
    EXPECT_THROW(api_.pmalloc(nullptr, 8), PmoError);
    EXPECT_THROW(api_.setPerm(0, nullptr, Perm::Read), PmoError);
    EXPECT_THROW(api_.domainOf(nullptr), PmoError);
}

TEST_F(ApiTest, OperationsOnUnopenedPoolsRejected)
{
    Pool *pool = api_.poolCreate("kv", kSize);
    const Oid oid = api_.pmalloc(pool, 64);
    api_.poolClose(pool);
    EXPECT_THROW(api_.pfree(oid), NamespaceError);
    EXPECT_THROW(api_.oidDirect(oid), NamespaceError);
    EXPECT_THROW(api_.poolClose(pool), NamespaceError);
}

TEST_F(ApiTest, TwoProcessesShareThroughNamespace)
{
    PoolMode mode;
    mode.otherRead = true;
    ns_.create("shared", kSize, 1000, mode);

    PmoApi bob(ns_, 2000, 11);
    Pool *opened = bob.poolOpen("shared", Perm::Read);
    EXPECT_NE(opened, nullptr);
    // Bob may not open it for writing (mode) and the second reader is
    // a different process id, so it coexists.
    EXPECT_THROW(bob.poolOpen("shared", Perm::ReadWrite),
                 NamespaceError);
    PmoApi carol(ns_, 3000, 12);
    EXPECT_NE(carol.poolOpen("shared", Perm::Read), nullptr);
}

} // namespace
} // namespace pmodv::pmo
