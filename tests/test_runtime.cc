/**
 * @file
 * Unit tests for the process-side PMO runtime: attach/detach, the
 * software-enforced spatio-temporal access policy (the paper's
 * Figure 2 at library level), oid_direct, and trace capture.
 */

#include <gtest/gtest.h>

#include "pmo/errors.hh"
#include "pmo/runtime.hh"
#include "trace/sinks.hh"

namespace pmodv::pmo
{
namespace
{

constexpr std::size_t kSize = 256 * 1024;

class RuntimeTest : public ::testing::Test
{
  protected:
    RuntimeTest() : rt_(ns_, 1000, 1)
    {
        PoolMode mode;
        mode.otherRead = true;
        ns_.create("pmo1", kSize, 1000, mode);
        ns_.create("pmo2", kSize, 1000, mode);
    }

    Namespace ns_;
    Runtime rt_;
};

TEST_F(RuntimeTest, AttachAssignsDomainAndVa)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    EXPECT_EQ(att.domain, att.poolId);
    EXPECT_NE(att.vaBase, 0u);
    EXPECT_GE(att.vaSize, kSize);
    EXPECT_EQ(rt_.attachments().size(), 1u);

    const Attached &att2 = rt_.attach("pmo2", Perm::ReadWrite);
    EXPECT_NE(att2.domain, att.domain);
    // Disjoint VA ranges.
    EXPECT_TRUE(att2.vaBase >= att.vaBase + att.vaSize ||
                att.vaBase >= att2.vaBase + att2.vaSize);
}

TEST_F(RuntimeTest, AccessDeniedWithoutSetPerm)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid oid = att.pool->pmalloc(64);
    std::uint64_t v = 0;
    EXPECT_THROW(rt_.read(0, oid, &v, 8), ProtectionFault);
    EXPECT_THROW(rt_.write(0, oid, &v, 8), ProtectionFault);
}

TEST_F(RuntimeTest, Figure2TemporalIsolation)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);

    rt_.setPerm(0, att.domain, Perm::Read); // +R
    std::uint64_t v = 7;
    EXPECT_NO_THROW(rt_.read(0, a, &v, 8));          // ld A ok
    EXPECT_THROW(rt_.write(0, a, &v, 8), ProtectionFault); // st denied

    rt_.setPerm(0, att.domain, Perm::ReadWrite); // +W
    EXPECT_NO_THROW(rt_.write(0, a, &v, 8));     // st ok

    rt_.setPerm(0, att.domain, Perm::None); // -R -W
    EXPECT_THROW(rt_.read(0, a, &v, 8), ProtectionFault);
}

TEST_F(RuntimeTest, Figure2SpatialIsolation)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    rt_.setPerm(1, att.domain, Perm::ReadWrite);
    rt_.setPerm(2, att.domain, Perm::Read);

    std::uint64_t v = 9;
    EXPECT_NO_THROW(rt_.write(1, a, &v, 8));
    EXPECT_NO_THROW(rt_.read(2, a, &v, 8));
    EXPECT_THROW(rt_.write(2, a, &v, 8), ProtectionFault);
    EXPECT_THROW(rt_.read(3, a, &v, 8), ProtectionFault);
}

TEST_F(RuntimeTest, PagePermCapsThreadPerm)
{
    const Attached &att = rt_.attach("pmo1", Perm::Read);
    const Oid a = att.pool->pmalloc(64);
    rt_.setPerm(0, att.domain, Perm::ReadWrite);
    std::uint64_t v = 0;
    EXPECT_NO_THROW(rt_.read(0, a, &v, 8));
    EXPECT_THROW(rt_.write(0, a, &v, 8), ProtectionFault);
}

TEST_F(RuntimeTest, UnattachedPoolAccessFaults)
{
    std::uint64_t v;
    EXPECT_THROW(rt_.read(0, Oid{42, 4096}, &v, 8), ProtectionFault);
}

TEST_F(RuntimeTest, ReadWriteRoundTripThroughChecks)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    rt_.setPerm(0, att.domain, Perm::ReadWrite);
    rt_.writeValue<std::uint64_t>(0, a, 0xabcdef);
    EXPECT_EQ(rt_.readValue<std::uint64_t>(0, a), 0xabcdefu);
}

TEST_F(RuntimeTest, OutOfBoundsAccessThrows)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    rt_.setPerm(0, att.domain, Perm::ReadWrite);
    std::uint64_t v;
    EXPECT_THROW(
        rt_.read(0, Oid{att.poolId, static_cast<std::uint32_t>(kSize)},
                 &v, 8),
        PmoError);
}

TEST_F(RuntimeTest, DirectBypassesPermsButNotAttachment)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    // oid_direct works without any SETPERM (Table I escape hatch).
    EXPECT_NE(rt_.direct(a), nullptr);
    EXPECT_THROW(rt_.direct(Oid{42, 4096}), NamespaceError);
}

TEST_F(RuntimeTest, VaOfMatchesAttachGeometry)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    EXPECT_EQ(rt_.vaOf(a), att.vaBase + a.offset);
}

TEST_F(RuntimeTest, DetachRevokesEverything)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    const DomainId domain = att.domain;
    rt_.setPerm(0, domain, Perm::ReadWrite);
    rt_.detach(domain);
    std::uint64_t v;
    EXPECT_THROW(rt_.read(0, a, &v, 8), ProtectionFault);
    EXPECT_THROW(rt_.detach(domain), NamespaceError);
    // Re-attach: permissions were wiped, not remembered.
    const Attached &again = rt_.attach("pmo1", Perm::ReadWrite);
    EXPECT_EQ(rt_.threadPerm(0, again.domain), Perm::None);
}

TEST_F(RuntimeTest, PermGuardRestoresNone)
{
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    {
        PermGuard guard(rt_, 0, att.domain, Perm::ReadWrite);
        std::uint64_t v = 3;
        EXPECT_NO_THROW(rt_.write(0, a, &v, 8));
    }
    std::uint64_t v;
    EXPECT_THROW(rt_.read(0, a, &v, 8), ProtectionFault);
}

TEST_F(RuntimeTest, TraceCaptureEmitsExpectedRecords)
{
    trace::VectorSink sink;
    rt_.setTraceSink(&sink);
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    rt_.setPerm(0, att.domain, Perm::ReadWrite);
    std::uint64_t v = 1;
    rt_.write(0, a, &v, 8);
    rt_.read(0, a, &v, 8);
    rt_.compute(0, 100);
    rt_.opBegin(0);
    rt_.opEnd(0);
    rt_.switchThread(2);
    // `att` refers into the runtime's attachment map; detach erases
    // that entry, so copy what the assertions need first.
    const DomainId domain = att.domain;
    const Addr va_base = att.vaBase;
    rt_.detach(domain);

    const auto &recs = sink.records();
    ASSERT_EQ(recs.size(), 9u);
    using trace::RecordType;
    EXPECT_EQ(recs[0].type, RecordType::Attach);
    EXPECT_EQ(recs[0].aux, domain);
    EXPECT_EQ(recs[1].type, RecordType::SetPerm);
    EXPECT_EQ(recs[2].type, RecordType::Store);
    EXPECT_EQ(recs[2].addr, va_base + a.offset);
    EXPECT_TRUE(recs[2].isPmoAccess());
    EXPECT_EQ(recs[3].type, RecordType::Load);
    EXPECT_EQ(recs[4].type, RecordType::InstBlock);
    EXPECT_EQ(recs[5].type, RecordType::OpBegin);
    EXPECT_EQ(recs[6].type, RecordType::OpEnd);
    EXPECT_EQ(recs[7].type, RecordType::ThreadSwitch);
    EXPECT_EQ(recs[8].type, RecordType::Detach);
}

TEST_F(RuntimeTest, DeniedAccessesEmitNoTraceRecords)
{
    trace::VectorSink sink;
    const Attached &att = rt_.attach("pmo1", Perm::ReadWrite);
    const Oid a = att.pool->pmalloc(64);
    rt_.setTraceSink(&sink);
    std::uint64_t v;
    EXPECT_THROW(rt_.read(0, a, &v, 8), ProtectionFault);
    EXPECT_TRUE(sink.records().empty());
}

TEST_F(RuntimeTest, RelocatabilityAcrossAttachCycles)
{
    // OIDs are position independent: detach/re-attach maps the pool
    // at a different simulated VA, yet the same OID still reaches the
    // same bytes (Figure 1 / §II-C of the paper).
    const Attached &first = rt_.attach("pmo1", Perm::ReadWrite);
    const Addr first_va = first.vaBase;
    const Oid oid = first.pool->pmalloc(64);
    rt_.setPerm(0, first.domain, Perm::ReadWrite);
    rt_.writeValue<std::uint64_t>(0, oid, 777);
    rt_.detach(first.domain);

    rt_.attach("pmo2", Perm::Read); // Consumes the next VA slot.
    const Attached &second = rt_.attach("pmo1", Perm::ReadWrite);
    EXPECT_NE(second.vaBase, first_va);
    rt_.setPerm(0, second.domain, Perm::Read);
    EXPECT_EQ(rt_.readValue<std::uint64_t>(0, oid), 777u);
    EXPECT_EQ(rt_.vaOf(oid), second.vaBase + oid.offset);
}

TEST_F(RuntimeTest, RuntimeTeardownDetachesFromNamespace)
{
    {
        Runtime other(ns_, 1000, 2);
        other.attach("pmo2", Perm::Read);
        EXPECT_EQ(ns_.attachments("pmo2").size(), 1u);
    }
    EXPECT_TRUE(ns_.attachments("pmo2").empty());
}

} // namespace
} // namespace pmodv::pmo
