/**
 * @file
 * Tail-forensics correctness battery:
 *
 *  * the partition invariant — every captured request's breakdown
 *    (queueing + the seven service buckets + residue) sums exactly to
 *    its arrival-to-completion latency, with residue 0, on one core
 *    and on four, whole-trace and split mid-window into odd batches;
 *  * blame referential integrity — every blamed event id resolves to
 *    a real EventRing post inside the request's [begin, commit]
 *    window, chains are chronological, and commit markers are never
 *    blamed;
 *  * the digest bound — at most K entries, latency-sorted, counting
 *    every offered request;
 *  * gating — slowRequestK = 0 (the default) leaves the stats tree
 *    without any forensics nodes, and suite rows without blame
 *    blocks or event id/req fields, so golden trees stay pinned;
 *  * suite determinism — forensics-on suite JSON is byte-identical
 *    across worker counts, and the digest inside it survives a
 *    parse/recompute round trip through common::parseJson.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "core/system.hh"
#include "exp/suite.hh"
#include "stats/export.hh"
#include "stats/slow_digest.hh"
#include "trace/buffer.hh"
#include "trace/sinks.hh"
#include "workloads/server/server.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;

std::shared_ptr<const trace::TraceBuffer>
captureServer(const workloads::ServerParams &params)
{
    trace::VectorSink sink;
    workloads::TraceCtx ctx(sink, params.seed);
    workloads::ServerWorkload workload(params);
    workload.run(ctx);
    return trace::TraceBuffer::fromRecords(sink.take());
}

workloads::ServerParams
smallParams(unsigned threads = 1)
{
    workloads::ServerParams p;
    p.numTenants = 32;
    p.numRequests = 2'000;
    p.numThreads = threads;
    return p;
}

core::SimConfig
forensicsConfig(unsigned k, unsigned cores = 1)
{
    core::SimConfig config;
    config.opClasses = workloads::ServerWorkload::kNumTenantClasses;
    config.slowRequestK = k;
    config.topology.numCores = cores;
    // Big enough that no in-window event is overwritten before OpEnd
    // in these traces; ids stay valid regardless (they are monotone
    // post counts, not slot indices).
    config.eventRingCapacity = 65536;
    return config;
}

/** queue + buckets + residue == latency, residue == 0, for @p e. */
void
expectPartition(const stats::SlowRequestEntry &e)
{
    std::uint64_t service = 0;
    for (unsigned b = 0; b < stats::kSlowDigestBuckets; ++b)
        service += e.buckets[b];
    EXPECT_EQ(e.queue + service + e.residue, e.latency)
        << "request " << e.id;
    EXPECT_EQ(e.residue, 0u) << "request " << e.id;
    EXPECT_LE(e.begin, e.commit) << "request " << e.id;
}

TEST(Forensics, PartitionInvariantHoldsForEveryRequest)
{
    const auto params = smallParams();
    const auto buffer = captureServer(params);

    for (SchemeKind kind : {SchemeKind::LibMpk, SchemeKind::MpkVirt,
                            SchemeKind::DomainVirt}) {
        // K = one slot per request: the digest retains everything, so
        // the invariant is checked for every single request.
        core::System sys(forensicsConfig(4096), kind);
        sys.replayBatch(buffer->records());
        sys.finish();

        ASSERT_TRUE(sys.forensicsEnabled());
        const stats::SlowRequestDigest *digest = sys.slowDigest();
        ASSERT_NE(digest, nullptr);
        EXPECT_EQ(digest->offered(), params.numRequests);
        ASSERT_EQ(digest->entries().size(), params.numRequests);
        for (const stats::SlowRequestEntry &e : digest->entries())
            expectPartition(e);

        // The per-class digests partition the offered requests.
        std::uint64_t class_offered = 0;
        for (unsigned c = 0;
             c < workloads::ServerWorkload::kNumTenantClasses; ++c) {
            ASSERT_NE(sys.slowDigestClass(c), nullptr);
            class_offered += sys.slowDigestClass(c)->offered();
            for (const stats::SlowRequestEntry &e :
                 sys.slowDigestClass(c)->entries()) {
                EXPECT_EQ(e.cls, c);
                expectPartition(e);
            }
        }
        EXPECT_EQ(class_offered, params.numRequests);
    }
}

TEST(Forensics, PartitionInvariantHoldsOnFourCores)
{
    const auto params = smallParams(/*threads=*/4);
    const auto buffer = captureServer(params);

    core::System sys(forensicsConfig(4096, /*cores=*/4),
                     SchemeKind::LibMpk);
    sys.replayBatch(buffer->records());
    sys.finish();

    const stats::SlowRequestDigest *digest = sys.slowDigest();
    ASSERT_NE(digest, nullptr);
    EXPECT_EQ(digest->offered(), params.numRequests);
    ASSERT_EQ(digest->entries().size(), params.numRequests);
    for (const stats::SlowRequestEntry &e : digest->entries())
        expectPartition(e);
}

TEST(Forensics, BlamedEventsResolveToRealRingEvents)
{
    const auto params = smallParams();
    const auto buffer = captureServer(params);

    // libmpk at 32 tenants floods the 16-key space: evictions and
    // shootdowns land inside request windows constantly.
    core::System sys(forensicsConfig(4096), SchemeKind::LibMpk);
    sys.replayBatch(buffer->records());
    sys.finish();

    const auto recorded =
        static_cast<std::uint64_t>(sys.events().recorded.value());
    std::uint64_t blamed = 0;
    for (const stats::SlowRequestEntry &e :
         sys.slowDigest()->entries()) {
        std::uint64_t prev_id = 0;
        for (const stats::SlowBlamedEvent &ev : e.events) {
            ++blamed;
            // Ids are 1-based monotone post counts: a blamed id names
            // exactly one posted event, and it must exist.
            EXPECT_GE(ev.id, 1u);
            EXPECT_LE(ev.id, recorded);
            EXPECT_GT(ev.id, prev_id) << "chain not chronological";
            prev_id = ev.id;
            // Causality: the event fired inside the request's window.
            EXPECT_GE(ev.cycle, e.begin);
            EXPECT_LE(ev.cycle, e.commit);
            EXPECT_NE(ev.kind, "txn_commit");
        }
    }
    EXPECT_GT(blamed, 0u) << "libmpk at 32 tenants must blame events";
}

TEST(Forensics, DigestIsBatchSplitInvariant)
{
    const auto params = smallParams();
    const auto buffer = captureServer(params);

    for (SchemeKind kind : {SchemeKind::LibMpk, SchemeKind::DomainVirt}) {
        core::System whole(forensicsConfig(8), kind);
        whole.replayBatch(buffer->records());
        whole.finish();

        // 777-record batches land boundaries inside request windows;
        // the OpBegin bucket snapshot must carry across the flush.
        core::System split(forensicsConfig(8), kind);
        const auto all = buffer->records();
        for (std::size_t at = 0; at < all.size(); at += 777)
            split.replayBatch(all.subspan(
                at, std::min<std::size_t>(777, all.size() - at)));
        split.finish();

        EXPECT_EQ(whole.totalCycles(), split.totalCycles());
        EXPECT_EQ(stats::toJsonString(whole),
                  stats::toJsonString(split))
            << arch::schemeName(kind);
    }
}

TEST(Forensics, DigestKeepsTheKSlowest)
{
    const auto params = smallParams();
    const auto buffer = captureServer(params);

    core::System sys(forensicsConfig(8), SchemeKind::LibMpk);
    sys.replayBatch(buffer->records());
    sys.finish();

    const stats::SlowRequestDigest *digest = sys.slowDigest();
    EXPECT_EQ(digest->k(), 8u);
    EXPECT_EQ(digest->offered(), params.numRequests);
    ASSERT_EQ(digest->entries().size(), 8u);
    for (std::size_t i = 1; i < digest->entries().size(); ++i) {
        EXPECT_GE(digest->entries()[i - 1].latency,
                  digest->entries()[i].latency);
    }

    // Cross-check against a keep-everything digest: the bounded one
    // must retain exactly the top of the full latency ranking.
    core::System full(forensicsConfig(4096), SchemeKind::LibMpk);
    full.replayBatch(buffer->records());
    full.finish();
    std::vector<std::uint64_t> lat;
    for (const stats::SlowRequestEntry &e : full.slowDigest()->entries())
        lat.push_back(e.latency);
    std::sort(lat.begin(), lat.end(), std::greater<>());
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(digest->entries()[i].latency, lat[i]) << i;
}

TEST(Forensics, OffByDefaultLeavesTreesUntouched)
{
    const auto params = smallParams();
    const auto buffer = captureServer(params);

    core::SimConfig off;
    off.opClasses = workloads::ServerWorkload::kNumTenantClasses;
    core::System sys(off, SchemeKind::LibMpk);
    sys.replayBatch(buffer->records());
    sys.finish();

    EXPECT_FALSE(sys.forensicsEnabled());
    EXPECT_EQ(sys.slowDigest(), nullptr);
    const std::string json = stats::toJsonString(sys);
    EXPECT_EQ(json.find("slow_requests"), std::string::npos);

    // Same cycles with forensics on: capture is observation only.
    core::System on(forensicsConfig(8), SchemeKind::LibMpk);
    on.replayBatch(buffer->records());
    on.finish();
    EXPECT_EQ(sys.totalCycles(), on.totalCycles());
}

/** Suite JSON minus the run-environment lines (jobs, wall_seconds). */
std::string
strippedSuiteJson(const exp::ExperimentSuite &suite)
{
    std::ostringstream os;
    suite.writeJson(os);
    std::istringstream in(os.str());
    std::string out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("  \"jobs\":", 0) == 0 ||
            line.rfind("  \"wall_seconds\":", 0) == 0)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

std::string
runForensicsSuite(unsigned jobs, unsigned slow_k)
{
    exp::ServerSweepSpec sweep;
    sweep.tenantCounts = {32};
    sweep.base.numRequests = 1'000;
    sweep.schemes = {SchemeKind::LibMpk, SchemeKind::DomainVirt};
    sweep.config.slowRequestK = slow_k;
    exp::ExperimentSuite suite("forensics_test");
    suite.add(sweep);
    common::ThreadPool pool(jobs);
    suite.run(pool);
    return strippedSuiteJson(suite);
}

TEST(ForensicsSuite, JsonByteIdenticalAcrossJobs)
{
    const std::string j1 = runForensicsSuite(1, 8);
    const std::string j4 = runForensicsSuite(4, 8);
    EXPECT_EQ(j1, j4);
    EXPECT_NE(j1.find("\"slow_requests\""), std::string::npos);
    EXPECT_NE(j1.find("\"blame\""), std::string::npos);
    EXPECT_NE(j1.find("\"req\""), std::string::npos);
}

TEST(ForensicsSuite, OffKeepsRowsFreeOfForensicsFields)
{
    const std::string off = runForensicsSuite(2, 0);
    EXPECT_EQ(off.find("slow_requests"), std::string::npos);
    EXPECT_EQ(off.find("\"blame\""), std::string::npos);
    EXPECT_EQ(off.find("\"req\""), std::string::npos);
}

TEST(ForensicsSuite, DigestSurvivesAJsonRoundTrip)
{
    const std::string json = runForensicsSuite(2, 8);
    std::string error;
    const auto doc = common::parseJson(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;

    const common::JsonValue &row = doc->at("server").at(0);
    const common::JsonValue &stats = row.at("stats");
    int digests = 0;
    for (const auto &[scheme, tree] : stats.object()) {
        const common::JsonValue *events = tree.find("events");
        ASSERT_NE(events, nullptr) << scheme;
        const std::uint64_t recorded =
            events->at("recorded").asU64();

        // Find the digest and recompute the partition in the parsed
        // domain — the same check tools/check_stats_schema.py runs.
        std::function<const common::JsonValue *(
            const common::JsonValue &)>
            find = [&](const common::JsonValue &node)
            -> const common::JsonValue * {
            if (!node.isObject())
                return nullptr;
            for (const auto &[key, value] : node.object()) {
                if (key == "slow_requests" && value.isObject() &&
                    value.find("entries"))
                    return &value;
                if (const auto *hit = find(value))
                    return hit;
            }
            return nullptr;
        };
        const common::JsonValue *digest = find(tree);
        if (!digest)
            continue;
        ++digests;
        EXPECT_LE(digest->at("entries").size(),
                  digest->at("k").asU64());
        for (const common::JsonValue &e :
             digest->at("entries").array()) {
            std::uint64_t service = 0;
            for (const auto &[name, cycles] :
                 e.at("buckets").object())
                service += cycles.asU64();
            EXPECT_EQ(e.at("queue").asU64() + service +
                          e.at("residue").asU64(),
                      e.at("latency").asU64());
            for (const common::JsonValue &ev :
                 e.at("events").array()) {
                EXPECT_GE(ev.at("id").asU64(), 1u);
                EXPECT_LE(ev.at("id").asU64(), recorded);
            }
        }
    }
    // The executor adds the baseline and lowerbound pipelines to the
    // two requested schemes; all four replay with forensics on.
    EXPECT_EQ(digests, 4) << "every scheme tree must carry a digest";
}

} // namespace
} // namespace pmodv
