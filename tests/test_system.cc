/**
 * @file
 * Unit tests for the replay System and MultiReplay: exact cycle
 * accounting for known record sequences, record semantics, and
 * determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/replay.hh"
#include "core/system.hh"

namespace pmodv::core
{
namespace
{

using arch::SchemeKind;
using trace::TraceRecord;

constexpr Addr kBase = Addr{1} << 33;
constexpr Addr kSize = Addr{1} << 20;

SimConfig
testConfig()
{
    SimConfig cfg;
    return cfg;
}

/** Expected visible cycles for one access given total memory/tlb
 *  latency beyond the 1-cycle L1 hit. */
Cycles
visible(const SimConfig &cfg, Cycles tlb_lat, Cycles mem_lat)
{
    const double v = 1.0 + (1.0 - cfg.memOverlap) *
                               static_cast<double>(tlb_lat + mem_lat - 1);
    return static_cast<Cycles>(std::llround(v));
}

TEST(System, InstBlockCycles)
{
    System sys(testConfig(), SchemeKind::NoProtection);
    sys.put(TraceRecord::instBlock(0, 8)); // 8 insts / 4-wide = 2.
    EXPECT_EQ(sys.totalCycles(), 2u);
    sys.put(TraceRecord::instBlock(0, 9)); // ceil(9/4) = 3.
    EXPECT_EQ(sys.totalCycles(), 5u);
    EXPECT_DOUBLE_EQ(sys.instructions.value(), 17.0);
}

TEST(System, ColdPmoLoadLatency)
{
    SimConfig cfg = testConfig();
    System sys(cfg, SchemeKind::NoProtection);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::load(0, kBase, 8, true));
    // Cold: TLB walk (4+30) + L1 miss, L2 miss, NVM (1+8+360).
    const Cycles expect = visible(cfg, 34, 1 + 8 + 360);
    EXPECT_EQ(sys.totalCycles(), expect);
    EXPECT_DOUBLE_EQ(sys.pmoAccesses.value(), 1.0);
}

TEST(System, WarmLoadIsOneCycle)
{
    SimConfig cfg = testConfig();
    System sys(cfg, SchemeKind::NoProtection);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::load(0, kBase, 8, true));
    const Cycles after_cold = sys.totalCycles();
    sys.put(TraceRecord::load(0, kBase, 8, true));
    EXPECT_EQ(sys.totalCycles(), after_cold + 1);
}

TEST(System, NonPmoLoadUsesDram)
{
    SimConfig cfg = testConfig();
    System a(cfg, SchemeKind::NoProtection);
    System b(cfg, SchemeKind::NoProtection);
    a.put(TraceRecord::load(0, 0x5000, 8, false)); // DRAM.
    b.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    const Cycles before = b.totalCycles();
    b.put(TraceRecord::load(0, kBase, 8, true)); // NVM.
    EXPECT_LT(a.totalCycles(), b.totalCycles() - before);
}

TEST(System, SetPermCostsByScheme)
{
    SimConfig cfg = testConfig();
    System none(cfg, SchemeKind::NoProtection);
    System lower(cfg, SchemeKind::Lowerbound);
    const auto rec = TraceRecord::setPerm(0, 1, Perm::ReadWrite);
    none.put(rec);
    lower.put(rec);
    EXPECT_EQ(none.totalCycles(), 0u);
    EXPECT_EQ(lower.totalCycles(), cfg.prot.wrpkruCycles);
}

TEST(System, OpMarkersCountOperations)
{
    System sys(testConfig(), SchemeKind::NoProtection);
    sys.put(TraceRecord::opBegin(0));
    sys.put(TraceRecord::opEnd(0));
    sys.put(TraceRecord::opBegin(0));
    sys.put(TraceRecord::opEnd(0));
    EXPECT_DOUBLE_EQ(sys.operations.value(), 2.0);
    EXPECT_EQ(sys.totalCycles(), 0u);
}

TEST(System, OpCyclesHistogramSamplesPerOperation)
{
    System sys(testConfig(), SchemeKind::NoProtection);
    sys.put(TraceRecord::opBegin(0));
    sys.put(TraceRecord::instBlock(0, 40)); // 10 cycles.
    sys.put(TraceRecord::opEnd(0));
    sys.put(TraceRecord::opBegin(0));
    sys.put(TraceRecord::instBlock(0, 400)); // 100 cycles.
    sys.put(TraceRecord::opEnd(0));
    EXPECT_EQ(sys.opCycles.samples(), 2u);
    EXPECT_EQ(sys.opCycles.min(), 10u);
    EXPECT_EQ(sys.opCycles.max(), 100u);
    EXPECT_DOUBLE_EQ(sys.opCycles.mean(), 55.0);
}

TEST(System, OpEndWithoutBeginIsTolerated)
{
    System sys(testConfig(), SchemeKind::NoProtection);
    sys.put(TraceRecord::opEnd(0)); // Stray end: counted, no sample.
    EXPECT_DOUBLE_EQ(sys.operations.value(), 1.0);
    EXPECT_EQ(sys.opCycles.samples(), 0u);
}

TEST(System, LargePageAttachReducesWalks)
{
    SimConfig cfg = testConfig();
    System small(cfg, SchemeKind::NoProtection);
    System large(cfg, SchemeKind::NoProtection);
    const Addr base = Addr{1} << 33; // 2MB-aligned.
    const Addr size = Addr{2} << 21; // 4MB.
    small.put(TraceRecord::attach(0, 1, base, size, Perm::ReadWrite,
                                  PageSize::Size4K));
    large.put(TraceRecord::attach(0, 1, base, size, Perm::ReadWrite,
                                  PageSize::Size2M));
    // Touch 1024 distinct 4KB pages spanning both 2MB frames.
    for (unsigned i = 0; i < 1024; ++i) {
        const auto rec =
            TraceRecord::load(0, base + Addr{i} * 4096, 8, true);
        small.put(rec);
        large.put(rec);
    }
    const double small_walks =
        static_cast<stats::Group &>(small).lookup("dtlb.walks");
    const double large_walks =
        static_cast<stats::Group &>(large).lookup("dtlb.walks");
    EXPECT_EQ(small_walks, 1024.0); // One per 4KB page.
    EXPECT_EQ(large_walks, 2.0);    // One per 2MB frame.
    EXPECT_LT(large.totalCycles(), small.totalCycles());
}

TEST(System, DeniedAccessesCounted)
{
    System sys(testConfig(), SchemeKind::Mpk);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::load(0, kBase, 8, true)); // No SETPERM yet.
    EXPECT_DOUBLE_EQ(sys.deniedAccesses.value(), 1.0);
    sys.put(TraceRecord::setPerm(0, 1, Perm::Read));
    sys.put(TraceRecord::load(0, kBase, 8, true));
    EXPECT_DOUBLE_EQ(sys.deniedAccesses.value(), 1.0);
}

TEST(System, DetachUnmapsRegion)
{
    System sys(testConfig(), SchemeKind::NoProtection);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::detach(0, 1));
    EXPECT_EQ(sys.addressSpace().numRegions(), 0u);
    // Re-attach at the same base works.
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    EXPECT_EQ(sys.addressSpace().numRegions(), 1u);
}

TEST(System, ThreadSwitchRoutedToScheme)
{
    System sys(testConfig(), SchemeKind::DomainVirt);
    sys.put(TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite));
    sys.put(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
    sys.put(TraceRecord::threadSwitch(1));
    EXPECT_DOUBLE_EQ(
        static_cast<stats::Group &>(sys).lookup(
            "domain_virt.context_switches"),
        1.0);
}

TEST(System, SecondsMatchFrequency)
{
    SimConfig cfg = testConfig();
    System sys(cfg, SchemeKind::NoProtection);
    sys.put(TraceRecord::instBlock(0, 4 * 2'200'000));
    EXPECT_NEAR(sys.seconds(), 1e-3, 1e-9); // 2.2e6 cycles at 2.2 GHz.
}

TEST(System, Determinism)
{
    auto run = []() {
        System sys(testConfig(), SchemeKind::MpkVirt);
        sys.put(TraceRecord::attach(0, 1, kBase, kSize,
                                    Perm::ReadWrite));
        sys.put(TraceRecord::setPerm(0, 1, Perm::ReadWrite));
        for (int i = 0; i < 100; ++i)
            sys.put(TraceRecord::load(0, kBase + i * 4096 % kSize, 8,
                                      true));
        return sys.totalCycles();
    };
    EXPECT_EQ(run(), run());
}

TEST(MultiReplay, FansOutToAllSchemes)
{
    MultiReplay replay(testConfig(),
                       {SchemeKind::NoProtection,
                        SchemeKind::Lowerbound, SchemeKind::DomainVirt});
    std::vector<TraceRecord> trace{
        TraceRecord::attach(0, 1, kBase, kSize, Perm::ReadWrite),
        TraceRecord::setPerm(0, 1, Perm::ReadWrite),
        TraceRecord::load(0, kBase, 8, true),
        TraceRecord::instBlock(0, 40),
    };
    replay.replayBatch(trace);
    EXPECT_GT(replay.system(SchemeKind::NoProtection).totalCycles(), 0u);
    EXPECT_GT(replay.system(SchemeKind::Lowerbound).totalCycles(),
              replay.system(SchemeKind::NoProtection).totalCycles());
    EXPECT_EQ(replay.counter().permissionSwitches(), 1u);
    EXPECT_EQ(replay.counter().memAccesses(), 1u);
}

TEST(MultiReplay, OverheadComputation)
{
    MultiReplay replay(testConfig(), {SchemeKind::NoProtection,
                                      SchemeKind::Lowerbound});
    std::vector<TraceRecord> trace;
    trace.push_back(TraceRecord::instBlock(0, 27 * 4 * 100));
    for (int i = 0; i < 100; ++i)
        trace.push_back(TraceRecord::setPerm(0, 1, Perm::Read));
    replay.replayBatch(trace);
    // Lowerbound adds 27 cycles x 100 over a 2700-cycle baseline:
    // 100% overhead.
    EXPECT_NEAR(replay.overheadOver(SchemeKind::Lowerbound,
                                    SchemeKind::NoProtection),
                1.0, 1e-9);
}

TEST(MultiReplayDeathTest, UnknownSchemeLookupPanics)
{
    MultiReplay replay(testConfig(), {SchemeKind::NoProtection});
    EXPECT_DEATH(replay.system(SchemeKind::Mpk), "no system");
}

} // namespace
} // namespace pmodv::core
