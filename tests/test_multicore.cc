/**
 * @file
 * Multi-core replay: per-core contexts, shared PMO state, and the
 * broadcast shootdown bus.
 *
 * The adversarial traces below pin the bus's filtering semantics:
 * every remote core is interrupted by an eviction broadcast, but only
 * cores *actually holding stale TLB entries* for the victim range pay
 * the invalidation charge (and appear as EventKind::Ipi). domain_virt
 * never touches the bus at all — the paper's central cost asymmetry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/system.hh"

namespace pmodv
{
namespace
{

using arch::SchemeKind;
using core::SimConfig;
using core::System;
using trace::EventKind;
using trace::TraceRecord;

constexpr Addr kRegionSize = 4096;

Addr
base(unsigned domain)
{
    return (Addr{1} << 33) + Addr{domain} * (Addr{16} << 20);
}

SimConfig
configWithCores(unsigned cores)
{
    SimConfig config;
    config.topology.numCores = cores;
    return config;
}

void
replay(System &sys, const std::vector<TraceRecord> &records)
{
    sys.replayBatch(records);
    sys.finish();
}

/**
 * The shared preamble: attach domains 1..16 and grant RW. Thread 0
 * owns every domain; @p remote_tid additionally gets RW on domain 1
 * (the victim-to-be) when nonzero.
 */
std::vector<TraceRecord>
preamble(unsigned remote_tid)
{
    std::vector<TraceRecord> t;
    for (unsigned d = 1; d <= 16; ++d)
        t.push_back(TraceRecord::attach(0, d, base(d), kRegionSize,
                                        Perm::ReadWrite));
    for (unsigned d = 1; d <= 16; ++d)
        t.push_back(TraceRecord::setPerm(0, d, Perm::ReadWrite));
    if (remote_tid)
        t.push_back(TraceRecord::setPerm(
            static_cast<std::uint16_t>(remote_tid), 1, Perm::ReadWrite));
    return t;
}

std::uint64_t
countIpis(System &sys)
{
    std::uint64_t n = 0;
    for (const auto &ev : sys.drainEvents())
        if (ev.kind == EventKind::Ipi)
            ++n;
    return n;
}

/**
 * The issue's two-core adversarial trace: thread 1 (core 1) caches
 * one page of domain 1, then thread 0 (core 0) binds keys to domains
 * 2..15 and finally touches domain 16, evicting domain 1's key. The
 * broadcast interrupts core 1, which holds the stale page — exactly
 * one responded IPI, none filtered.
 */
TEST(MultiCore, TwoCoreEvictionChargesExactlyOneIpi)
{
    System sys(configWithCores(2), SchemeKind::MpkVirt);
    auto t = preamble(/*remote_tid=*/1);
    t.push_back(TraceRecord::threadSwitch(1));
    t.push_back(TraceRecord::load(1, base(1), 8, true));
    for (unsigned d = 2; d <= 15; ++d)
        t.push_back(TraceRecord::load(0, base(d), 8, true));
    // 15 keys now bound (domains 1..15); this access evicts the LRU
    // key holder, domain 1 — whose only cached page lives on core 1.
    t.push_back(TraceRecord::load(0, base(16), 8, true));
    replay(sys, t);

    auto *bus = sys.shootdownBus();
    ASSERT_NE(bus, nullptr);
    EXPECT_DOUBLE_EQ(bus->broadcasts.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisSent.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisResponded.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisFiltered.value(), 0.0);
    EXPECT_GE(bus->pagesInvalidated.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.coreAt(1).ipisResponded.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.coreAt(0).ipisResponded.value(), 0.0);

    // Per-core attribution: core 0 initiated the eviction; core 1's
    // single access (the domain-1 load) is attributed to core 1.
    const auto &profile = sys.scheme().domainProfile();
    EXPECT_EQ(profile.numCores(), 2u);
    EXPECT_EQ(profile.coreAttribution(0).evictionsInitiated, 1u);
    EXPECT_EQ(profile.coreAttribution(1).evictionsInitiated, 0u);
    EXPECT_EQ(profile.coreAttribution(1).accesses, 1u);
    EXPECT_GE(profile.coreAttribution(0).shootdownPages, 1u);

    // Exactly one Ipi event: responding core 1, initiating thread 0.
    unsigned ipis = 0;
    for (const auto &ev : sys.drainEvents()) {
        if (ev.kind != EventKind::Ipi)
            continue;
        ++ipis;
        EXPECT_EQ(ev.arg, 1u);
        EXPECT_EQ(ev.tid, 0u);
        EXPECT_GE(ev.value, 1u);
    }
    EXPECT_EQ(ipis, 1u);
}

/** The idle remote core is interrupted but has nothing to flush. */
TEST(MultiCore, IdleRemoteCoreIsFilteredNotCharged)
{
    System sys(configWithCores(2), SchemeKind::MpkVirt);
    auto t = preamble(/*remote_tid=*/0);
    for (unsigned d = 1; d <= 15; ++d)
        t.push_back(TraceRecord::load(0, base(d), 8, true));
    t.push_back(TraceRecord::load(0, base(16), 8, true));
    replay(sys, t);

    auto *bus = sys.shootdownBus();
    ASSERT_NE(bus, nullptr);
    EXPECT_DOUBLE_EQ(bus->broadcasts.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisSent.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisResponded.value(), 0.0);
    EXPECT_DOUBLE_EQ(bus->ipisFiltered.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.coreAt(1).ipisFiltered.value(), 1.0);
    EXPECT_EQ(countIpis(sys), 0u);
}

/**
 * Three cores: core 1 holds the victim's page, core 2 holds an
 * unrelated domain's page. Both are interrupted; only core 1 pays.
 */
TEST(MultiCore, ThreeCoreBroadcastFiltersNonHolders)
{
    System sys(configWithCores(3), SchemeKind::MpkVirt);
    auto t = preamble(/*remote_tid=*/1);
    t.push_back(TraceRecord::setPerm(2, 2, Perm::ReadWrite));
    t.push_back(TraceRecord::load(1, base(1), 8, true)); // core 1: d1
    t.push_back(TraceRecord::load(2, base(2), 8, true)); // core 2: d2
    for (unsigned d = 3; d <= 15; ++d)
        t.push_back(TraceRecord::load(0, base(d), 8, true));
    t.push_back(TraceRecord::load(0, base(16), 8, true)); // evict d1
    replay(sys, t);

    auto *bus = sys.shootdownBus();
    ASSERT_NE(bus, nullptr);
    EXPECT_DOUBLE_EQ(bus->broadcasts.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisSent.value(), 2.0);
    EXPECT_DOUBLE_EQ(bus->ipisResponded.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisFiltered.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.coreAt(1).ipisResponded.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.coreAt(2).ipisFiltered.value(), 1.0);
    EXPECT_EQ(countIpis(sys), 1u);
}

/** libmpk's pkey_mprotect remap broadcasts the same way. */
TEST(MultiCore, LibMpkEvictionBroadcastsToStaleHolder)
{
    System sys(configWithCores(2), SchemeKind::LibMpk);
    std::vector<TraceRecord> t;
    for (unsigned d = 1; d <= 16; ++d)
        t.push_back(TraceRecord::attach(0, d, base(d), kRegionSize,
                                        Perm::ReadWrite));
    // libmpk maps a key on the first grant: thread 1 maps domain 1
    // first (the LRU victim-to-be) and caches its page on core 1.
    t.push_back(TraceRecord::setPerm(1, 1, Perm::ReadWrite));
    t.push_back(TraceRecord::load(1, base(1), 8, true));
    for (unsigned d = 2; d <= 15; ++d)
        t.push_back(TraceRecord::setPerm(0, d, Perm::ReadWrite));
    // The 16th mapping evicts domain 1's key and broadcasts.
    t.push_back(TraceRecord::setPerm(0, 16, Perm::ReadWrite));
    replay(sys, t);

    auto *bus = sys.shootdownBus();
    ASSERT_NE(bus, nullptr);
    EXPECT_DOUBLE_EQ(bus->broadcasts.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisResponded.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus->ipisFiltered.value(), 0.0);
    EXPECT_EQ(countIpis(sys), 1u);
}

/** domain_virt never shoots down, whatever the core count. */
TEST(MultiCore, DomainVirtNeverTouchesTheBus)
{
    System sys(configWithCores(4), SchemeKind::DomainVirt);
    auto t = preamble(/*remote_tid=*/1);
    t.push_back(TraceRecord::load(1, base(1), 8, true));
    for (unsigned d = 2; d <= 16; ++d)
        t.push_back(TraceRecord::load(0, base(d), 8, true));
    for (unsigned d = 1; d <= 16; ++d)
        t.push_back(TraceRecord::setPerm(0, d, Perm::Read));
    replay(sys, t);

    auto *bus = sys.shootdownBus();
    ASSERT_NE(bus, nullptr);
    EXPECT_DOUBLE_EQ(bus->broadcasts.value(), 0.0);
    EXPECT_DOUBLE_EQ(bus->ipisSent.value(), 0.0);
    EXPECT_EQ(countIpis(sys), 0u);
    EXPECT_GT(sys.totalCycles(), 0u);
}

/** Single-core machines keep the legacy in-line flush path: no bus. */
TEST(MultiCore, SingleCoreHasNoBus)
{
    System sys(SimConfig{}, SchemeKind::MpkVirt);
    EXPECT_EQ(sys.shootdownBus(), nullptr);
    EXPECT_EQ(sys.numCores(), 1u);
}

/** put() and replayBatch() agree record for record at K>1. */
TEST(MultiCore, BatchAndPutAgreeMultiCore)
{
    auto t = preamble(/*remote_tid=*/1);
    t.push_back(TraceRecord::threadSwitch(1));
    t.push_back(TraceRecord::load(1, base(1), 8, true));
    for (unsigned d = 2; d <= 16; ++d)
        t.push_back(TraceRecord::load(0, base(d), 8, true));

    System batched(configWithCores(2), SchemeKind::MpkVirt);
    replay(batched, t);

    System stepped(configWithCores(2), SchemeKind::MpkVirt);
    for (const auto &rec : t)
        stepped.put(rec);
    stepped.finish();

    EXPECT_EQ(batched.totalCycles(), stepped.totalCycles());
    EXPECT_EQ(batched.makespanCycles(), stepped.makespanCycles());
    EXPECT_EQ(batched.drainEvents(), stepped.drainEvents());
    ASSERT_NE(batched.shootdownBus(), nullptr);
    ASSERT_NE(stepped.shootdownBus(), nullptr);
    EXPECT_DOUBLE_EQ(batched.shootdownBus()->ipisResponded.value(),
                     stepped.shootdownBus()->ipisResponded.value());
}

/** Work spreads over cores: the makespan is below the cycle total. */
TEST(MultiCore, MakespanIsBusiestCoreNotSum)
{
    System sys(configWithCores(2), SchemeKind::MpkVirt);
    auto t = preamble(/*remote_tid=*/1);
    for (unsigned i = 0; i < 64; ++i) {
        t.push_back(TraceRecord::load(0, base(2), 8, true));
        t.push_back(TraceRecord::load(1, base(1), 8, true));
    }
    replay(sys, t);

    EXPECT_GT(sys.makespanCycles(), 0u);
    EXPECT_LT(sys.makespanCycles(), sys.totalCycles());
    EXPECT_EQ(sys.coreAt(0).cycleCount + sys.coreAt(1).cycleCount,
              sys.totalCycles());
    EXPECT_EQ(sys.makespanCycles(),
              std::max(sys.coreAt(0).cycleCount,
                       sys.coreAt(1).cycleCount));
}

/** The topology section rejects degenerate core counts. */
TEST(MultiCore, TopologyValidation)
{
    arch::CoreTopology topo;
    topo.numCores = 0;
    EXPECT_DEATH(topo.validate(), "at least 1");
    topo.numCores = arch::kMaxCores + 1;
    EXPECT_DEATH(topo.validate(), "exceeds");
    topo.numCores = arch::kMaxCores;
    topo.validate(); // 256 cores is the supported ceiling.
}

} // namespace
} // namespace pmodv
