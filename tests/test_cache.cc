/**
 * @file
 * Unit tests for the cache model and memory hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/memory.hh"
#include "stats/stats.hh"

namespace pmodv::mem
{
namespace
{

CacheParams
smallCache(ReplPolicy repl = ReplPolicy::Lru)
{
    CacheParams p;
    p.name = "c";
    p.sizeBytes = 1024; // 16 lines.
    p.assoc = 4;        // 4 sets.
    p.lineBytes = 64;
    p.hitLatency = 1;
    p.repl = repl;
    return p;
}

TEST(Cache, Geometry)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    EXPECT_EQ(c.numSets(), 4u);
}

TEST(Cache, MissThenHit)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    EXPECT_FALSE(c.access(0x1000, AccessType::Read).hit);
    EXPECT_TRUE(c.access(0x1000, AccessType::Read).hit);
    EXPECT_TRUE(c.access(0x1030, AccessType::Read).hit); // Same line.
    EXPECT_FALSE(c.access(0x1040, AccessType::Read).hit); // Next line.
    EXPECT_DOUBLE_EQ(c.hits.value(), 2.0);
    EXPECT_DOUBLE_EQ(c.misses.value(), 2.0);
}

TEST(Cache, LruEvictionOrder)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    // Fill one set (set stride = 4 sets * 64B = 256B).
    for (int w = 0; w < 4; ++w)
        c.access(0x1000 + w * 0x100, AccessType::Read);
    // Touch the first line again so the second is LRU.
    c.access(0x1000, AccessType::Read);
    // A fifth line in the same set evicts 0x1100.
    c.access(0x1000 + 4 * 0x100, AccessType::Read);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x1100));
    EXPECT_TRUE(c.probe(0x1200));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    c.access(0x1000, AccessType::Write); // Dirty.
    for (int w = 1; w <= 4; ++w)
        c.access(0x1000 + w * 0x100, AccessType::Read);
    EXPECT_DOUBLE_EQ(c.writebacks.value(), 1.0);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    for (int w = 0; w <= 4; ++w)
        c.access(0x1000 + w * 0x100, AccessType::Read);
    EXPECT_DOUBLE_EQ(c.writebacks.value(), 0.0);
}

TEST(Cache, InvalidateAll)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    c.access(0x1000, AccessType::Read);
    c.access(0x2000, AccessType::Read);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_DOUBLE_EQ(c.invalidations.value(), 2.0);
}

TEST(Cache, InvalidateSingleLine)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    c.access(0x1000, AccessType::Read);
    EXPECT_TRUE(c.invalidate(0x1010)); // Same line.
    EXPECT_FALSE(c.invalidate(0x1000)); // Already gone.
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, PlruPolicyWorks)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache(ReplPolicy::TreePlru));
    for (int i = 0; i < 100; ++i)
        c.access(0x1000 + (i % 8) * 0x100, AccessType::Read);
    // 8 lines rotate over 4 ways: misses dominate but never crash,
    // and hit+miss accounting matches total accesses.
    EXPECT_DOUBLE_EQ(c.hits.value() + c.misses.value(), 100.0);
}

TEST(Cache, MissRateFormula)
{
    stats::Group root(nullptr, "");
    Cache c(&root, smallCache());
    c.access(0x1000, AccessType::Read);
    c.access(0x1000, AccessType::Read);
    EXPECT_DOUBLE_EQ(c.missRate.value(), 0.5);
}

TEST(CacheDeathTest, RejectsBadGeometry)
{
    stats::Group root(nullptr, "");
    CacheParams p = smallCache();
    p.lineBytes = 60; // Not a power of two.
    EXPECT_EXIT(Cache(&root, p), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(MainMemory, LatenciesByClass)
{
    stats::Group root(nullptr, "");
    MemoryParams p;
    p.dramLatency = 120;
    p.nvmLatency = 360;
    MainMemory mem(&root, p);
    EXPECT_EQ(mem.access(MemClass::Dram, AccessType::Read), 120u);
    EXPECT_EQ(mem.access(MemClass::Nvm, AccessType::Read), 360u);
    EXPECT_EQ(mem.access(MemClass::Nvm, AccessType::Write), 360u);
    EXPECT_DOUBLE_EQ(mem.dramReads.value(), 1.0);
    EXPECT_DOUBLE_EQ(mem.nvmReads.value(), 1.0);
    EXPECT_DOUBLE_EQ(mem.nvmWrites.value(), 1.0);
}

TEST(MainMemory, NvmWritePenalty)
{
    stats::Group root(nullptr, "");
    MemoryParams p;
    p.nvmLatency = 300;
    p.nvmWritePenalty = 2.0;
    MainMemory mem(&root, p);
    EXPECT_EQ(mem.access(MemClass::Nvm, AccessType::Write), 600u);
    EXPECT_EQ(mem.access(MemClass::Nvm, AccessType::Read), 300u);
}

TEST(Hierarchy, LatencyComposition)
{
    stats::Group root(nullptr, "");
    HierarchyParams p; // Table II defaults: L1 1cy, L2 8cy, DRAM 120.
    CacheHierarchy h(&root, p);

    auto first = h.access(0x10000, AccessType::Read, MemClass::Dram);
    EXPECT_EQ(first.hitLevel, 3u);
    EXPECT_EQ(first.latency, 1u + 8u + 120u);

    auto second = h.access(0x10000, AccessType::Read, MemClass::Dram);
    EXPECT_EQ(second.hitLevel, 1u);
    EXPECT_EQ(second.latency, 1u);
}

TEST(Hierarchy, NvmMissUsesNvmLatency)
{
    stats::Group root(nullptr, "");
    HierarchyParams p;
    CacheHierarchy h(&root, p);
    auto res = h.access(0x20000, AccessType::Read, MemClass::Nvm);
    EXPECT_EQ(res.latency, 1u + 8u + 360u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    stats::Group root(nullptr, "");
    HierarchyParams p;
    // Shrink L1 so evictions are easy to provoke.
    p.l1.sizeBytes = 512; // 8 lines, 8-way = 1 set.
    p.l1.assoc = 8;
    CacheHierarchy h(&root, p);
    h.access(0x0, AccessType::Read, MemClass::Dram);
    // 8 more lines in the same (single) L1 set evict line 0 from L1;
    // L2 (1MB) keeps everything.
    for (int i = 1; i <= 8; ++i)
        h.access(i * 64, AccessType::Read, MemClass::Dram);
    auto res = h.access(0x0, AccessType::Read, MemClass::Dram);
    EXPECT_EQ(res.hitLevel, 2u);
    EXPECT_EQ(res.latency, 1u + 8u);
}

TEST(Hierarchy, InvalidateAllDropsEverything)
{
    stats::Group root(nullptr, "");
    HierarchyParams p;
    CacheHierarchy h(&root, p);
    h.access(0x30000, AccessType::Read, MemClass::Dram);
    h.invalidateAll();
    auto res = h.access(0x30000, AccessType::Read, MemClass::Dram);
    EXPECT_EQ(res.hitLevel, 3u);
}

/** Parameterized sweep: hit rate grows once the working set fits. */
class CacheWorkingSet : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheWorkingSet, FitDeterminesHitRate)
{
    stats::Group root(nullptr, "");
    CacheParams p = smallCache(); // 16 lines.
    Cache c(&root, p);
    const unsigned lines = GetParam();
    // Two sweeps over `lines` distinct lines.
    for (int round = 0; round < 2; ++round) {
        for (unsigned i = 0; i < lines; ++i)
            c.access(Addr{i} * 64, AccessType::Read);
    }
    const double hit_rate =
        c.hits.value() / (c.hits.value() + c.misses.value());
    if (lines <= 16)
        EXPECT_GE(hit_rate, 0.49); // Second sweep all hits.
    else
        EXPECT_LT(hit_rate, 0.49); // Thrashes.
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheWorkingSet,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u));

} // namespace
} // namespace pmodv::mem
