/**
 * @file
 * Tests for SimConfig defaults (the paper's Table II) and the config
 * printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/config.hh"

namespace pmodv::core
{
namespace
{

TEST(SimConfig, TableIIDefaults)
{
    SimConfig c;
    EXPECT_DOUBLE_EQ(c.freqGhz, 2.2);
    EXPECT_EQ(c.issueWidth, 4u);

    EXPECT_EQ(c.memory.l1.sizeBytes, 32u * 1024u);
    EXPECT_EQ(c.memory.l1.assoc, 8u);
    EXPECT_EQ(c.memory.l1.hitLatency, 1u);
    EXPECT_EQ(c.memory.l2.sizeBytes, 1024u * 1024u);
    EXPECT_EQ(c.memory.l2.assoc, 16u);
    EXPECT_EQ(c.memory.l2.hitLatency, 8u);
    EXPECT_EQ(c.memory.memory.dramLatency, 120u);
    EXPECT_EQ(c.memory.memory.nvmLatency, 360u);

    EXPECT_EQ(c.tlb.l1.entries, 64u);
    EXPECT_EQ(c.tlb.l1.assoc, 4u);
    EXPECT_EQ(c.tlb.l2.entries, 1536u);
    EXPECT_EQ(c.tlb.l2.assoc, 6u);
    EXPECT_EQ(c.tlb.l2.accessLatency, 4u);
    EXPECT_EQ(c.tlb.walkLatency, 30u);

    EXPECT_EQ(c.prot.wrpkruCycles, 27u);
    EXPECT_EQ(c.prot.dttlbEntries, 16u);
    EXPECT_EQ(c.prot.dttWalkCycles, 30u);
    EXPECT_EQ(c.topology.numCores, 1u);
    EXPECT_EQ(c.topology.tlbInvalidationCycles, 286u);
    EXPECT_EQ(c.prot.ptlbEntries, 16u);
    EXPECT_EQ(c.prot.ptlbAccessCycles, 1u);
    EXPECT_EQ(c.prot.ptlbMissCycles, 30u);
}

TEST(SimConfig, TimeConversions)
{
    SimConfig c;
    EXPECT_DOUBLE_EQ(c.cyclesPerSecond(), 2.2e9);
    EXPECT_DOUBLE_EQ(c.secondsFor(2'200'000'000ull), 1.0);
    EXPECT_DOUBLE_EQ(c.secondsFor(0), 0.0);
}

TEST(SimConfig, NvmIsTripleDram)
{
    SimConfig c;
    EXPECT_EQ(c.memory.memory.nvmLatency,
              3 * c.memory.memory.dramLatency);
}

TEST(SimConfig, PrintMentionsEveryBlock)
{
    std::ostringstream os;
    printConfig(os, SimConfig{});
    const std::string text = os.str();
    for (const char *needle :
         {"2.2 GHz", "L1D 32KB", "L2 1024KB", "DRAM 120", "NVM 360",
          "64-entry", "1536-entry", "WRPKRU/SETPERM 27", "DTTLB 16",
          "PTLB 16", "286", "libmpk"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(SimConfig, OverlapFactorBounds)
{
    SimConfig c;
    EXPECT_GE(c.memOverlap, 0.0);
    EXPECT_LT(c.memOverlap, 1.0);
}

} // namespace
} // namespace pmodv::core
