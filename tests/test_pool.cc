/**
 * @file
 * Unit tests for the pool: geometry, persistent heap allocator
 * (split/coalesce/free-list), root object, integrity checking, and
 * media round-trips.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <set>

#include "common/rng.hh"
#include "pmo/pool.hh"

namespace pmodv::pmo
{
namespace
{

constexpr std::size_t kPoolSize = 1 << 20; // 1 MB.

TEST(Pool, CreateValidates)
{
    auto pool = Pool::create(7, kPoolSize);
    EXPECT_EQ(pool->id(), 7u);
    EXPECT_EQ(pool->size(), kPoolSize);
    EXPECT_EQ(pool->allocatedBlocks(), 0u);
    EXPECT_NO_THROW(pool->check());
}

TEST(Pool, TooSmallThrows)
{
    EXPECT_THROW(Pool::create(1, 64), PmoError);
}

TEST(Pool, PmallocReturnsDistinctWritableBlocks)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid a = pool->pmalloc(100);
    const Oid b = pool->pmalloc(100);
    EXPECT_NE(a, b);
    EXPECT_EQ(a.pool, 1u);
    EXPECT_GE(pool->blockSize(a), 100u);

    const char msg[] = "data";
    pool->write(a, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    pool->read(a, out, sizeof(out));
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(pool->allocatedBlocks(), 2u);
    pool->check();
}

TEST(Pool, PmallocZeroThrows)
{
    auto pool = Pool::create(1, kPoolSize);
    EXPECT_THROW(pool->pmalloc(0), AllocError);
}

TEST(Pool, ExhaustionThrows)
{
    auto pool = Pool::create(1, 64 * 1024);
    EXPECT_THROW(pool->pmalloc(1 << 20), AllocError);
    // And the heap is still usable afterwards.
    EXPECT_NO_THROW(pool->pmalloc(64));
    pool->check();
}

TEST(Pool, PfreeMakesSpaceReusable)
{
    auto pool = Pool::create(1, kPoolSize);
    std::vector<Oid> oids;
    // Exhaust the heap with 4 KB blocks.
    try {
        while (true)
            oids.push_back(pool->pmalloc(4096));
    } catch (const AllocError &) {
    }
    ASSERT_GT(oids.size(), 100u);
    for (const Oid oid : oids)
        pool->pfree(oid);
    EXPECT_EQ(pool->allocatedBlocks(), 0u);
    pool->check();
    // Coalescing restored one big region: a huge block fits again.
    EXPECT_NO_THROW(pool->pmalloc(oids.size() * 4096 / 2));
}

TEST(Pool, CoalescingMergesNeighbours)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid a = pool->pmalloc(1024);
    const Oid b = pool->pmalloc(1024);
    const Oid c = pool->pmalloc(1024);
    (void)b;
    pool->pfree(a);
    pool->pfree(c);
    const std::size_t before = pool->freeBlockCount();
    pool->pfree(b); // Bridges a and c (and the wilderness after c).
    EXPECT_LT(pool->freeBlockCount(), before);
    pool->check();
}

TEST(Pool, DoubleFreeThrows)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid a = pool->pmalloc(64);
    pool->pfree(a);
    EXPECT_THROW(pool->pfree(a), AllocError);
}

TEST(Pool, ForeignAndBogusOidsRejected)
{
    auto pool = Pool::create(1, kPoolSize);
    EXPECT_THROW(pool->pfree(Oid{2, 4096}), AllocError);
    EXPECT_THROW(pool->pfree(Oid{1, 17}), AllocError);
}

TEST(Pool, RootAllocatedOnceZeroed)
{
    auto pool = Pool::create(1, kPoolSize);
    EXPECT_FALSE(pool->hasRoot());
    const Oid root = pool->root(256);
    EXPECT_TRUE(pool->hasRoot());
    std::uint8_t buf[256];
    pool->read(root, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0u);
    // Second call returns the same OID, ignoring the size.
    EXPECT_EQ(pool->root(999), root);
}

TEST(Pool, DirectPointerMatchesReadback)
{
    auto pool = Pool::create(1, kPoolSize);
    const Oid a = pool->pmalloc(64);
    auto *p = pool->as<std::uint64_t>(a);
    *p = 0x1234567890abcdefull;
    std::uint64_t out = 0;
    pool->read(a, &out, 8);
    EXPECT_EQ(out, 0x1234567890abcdefull);
    EXPECT_THROW(pool->direct(kNullOid), PmoError);
}

TEST(Pool, ForEachAllocatedVisitsExactlyLiveBlocks)
{
    auto pool = Pool::create(1, kPoolSize);
    std::set<std::uint32_t> live;
    for (int i = 0; i < 10; ++i)
        live.insert(pool->pmalloc(128).offset);
    const Oid dead = pool->pmalloc(128);
    pool->pfree(dead);

    std::set<std::uint32_t> seen;
    pool->forEachAllocated([&](Oid oid, std::size_t size) {
        EXPECT_GE(size, 128u);
        seen.insert(oid.offset);
    });
    EXPECT_EQ(seen, live);
}

TEST(Pool, AdoptRejectsCorruptMedia)
{
    PersistentArena garbage(kPoolSize);
    EXPECT_THROW(Pool::adopt(std::move(garbage)), CorruptPoolError);
}

TEST(Pool, PersistedHeapSurvivesReload)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("pmodv_pool_" + std::to_string(::getpid()) + ".pool"))
            .string();
    Oid oid;
    {
        auto pool = Pool::create(3, kPoolSize);
        oid = pool->pmalloc(64);
        const std::uint64_t v = 42;
        pool->write(oid, &v, 8);
        pool->persist(oid, 8);
        pool->saveTo(path);
    }
    {
        auto pool = Pool::loadFrom(path);
        EXPECT_EQ(pool->id(), 3u);
        std::uint64_t out = 0;
        pool->read(oid, &out, 8);
        EXPECT_EQ(out, 42u);
        EXPECT_EQ(pool->allocatedBlocks(), 1u);
        pool->check();
        // The allocator state is live: allocate and free more.
        const Oid more = pool->pmalloc(128);
        pool->pfree(more);
        pool->pfree(oid);
        pool->check();
    }
    std::filesystem::remove(path);
}

/** Property test: random alloc/free sequences keep invariants. */
class PoolFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PoolFuzz, RandomAllocFreeKeepsInvariants)
{
    auto pool = Pool::create(1, kPoolSize);
    Rng rng(GetParam());
    std::vector<std::pair<Oid, std::uint8_t>> live;
    for (int step = 0; step < 600; ++step) {
        if (live.empty() || rng.chance(0.6)) {
            const std::size_t size = 16 + rng.next(512);
            try {
                const Oid oid = pool->pmalloc(size);
                // Stamp the block with a pattern to detect overlap.
                const auto tag = static_cast<std::uint8_t>(
                    rng.next(255) + 1);
                std::vector<std::uint8_t> data(size, tag);
                pool->write(oid, data.data(), size);
                live.emplace_back(oid, tag);
            } catch (const AllocError &) {
                // Exhausted: free something below.
            }
        } else {
            const std::size_t pick = rng.next(live.size());
            auto [oid, tag] = live[pick];
            // The pattern must be intact (no overlapping blocks).
            std::uint8_t head = 0;
            pool->read(oid, &head, 1);
            ASSERT_EQ(head, tag);
            pool->pfree(oid);
            live[pick] = live.back();
            live.pop_back();
        }
        if (step % 100 == 0)
            pool->check();
    }
    pool->check();
    EXPECT_EQ(pool->allocatedBlocks(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

} // namespace
} // namespace pmodv::pmo
