#!/usr/bin/env python3
"""Gate the simulator's headline numbers against a committed baseline.

The baseline (BENCH_baseline.json at the repo root) pins two kinds of
metric:

  * model metrics — per-scheme total_cycles for the quick
    configurations of the headline experiments (fig7_average,
    table7_breakdown), keyed

        <suite>:<benchmark>[/pmos=N][/cores=K]/<scheme>  ->  total_cycles

    (the /cores=K component appears only for multi-core sweep rows,
    so single-core baselines keep their historical keys). Server rows
    (the fig_tail KV sweep) pin the tail itself instead:

        <suite>:<benchmark>/tenants=N[/cores=K]/<scheme>/p99  ->  cycles

    The simulator is deterministic, so on identical workload
    parameters a drift here means the *model* changed — which is
    sometimes intended (a PR that changes protection-cost modelling)
    and sometimes a regression smuggled in by a refactor. Drift beyond
    tolerance FAILS the gate (unless --warn-only).

  * host-throughput metrics — replay-engine records/sec taken from
    google-benchmark --benchmark_format=json reports (gbench_sim),
    keyed

        gbench:<BM name>/<scheme>/<working set>/records_per_sec

    These measure the host, not the model, and CI runners are noisy,
    so they get a one-sided FLOOR instead of the tight two-sided
    tolerance: a row only FAILS when it drops more than
    throughput_floor_pct below the baseline (default 40%, far outside
    scheduler jitter — a drop that size means the replay engine
    actually regressed). Smaller drifts in either direction are
    reported as warnings; being faster never fails.

Usage:
    check_perf_regress.py report.json... [--baseline FILE]
        [--tolerance-pct P] [--throughput-floor-pct P]
        [--warn-only] [--update]

Reports may mix suite --json output and google-benchmark JSON; the
format is auto-detected per file. --update rewrites the baseline from
the given reports instead of checking (commit the result alongside
the model change that caused it). Exit status: 0 ok / 1 model-metric
drift beyond tolerance (unless --warn-only) / 2 usage or
missing-metric errors.
"""

import argparse
import json
import sys

DEFAULT_BASELINE = "BENCH_baseline.json"
DEFAULT_TOLERANCE_PCT = 2.0
DEFAULT_THROUGHPUT_FLOOR_PCT = 40.0


THROUGHPUT_SUFFIX = "/records_per_sec"


def is_throughput(key):
    """Throughput metrics measure the host: enforced with a floor."""
    return key.endswith(THROUGHPUT_SUFFIX)


def gbench_metric_keys(report):
    """Yield (key, records_per_sec) for replay rows of a gbench report."""
    for row in report.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        name = row.get("name", "")
        # Only the replay-throughput families are stable enough to
        # gate: BM_ReplaySamplingOverhead's enabled rows depend on the
        # run length (timeline coalescing amortizes differently at
        # different --benchmark_min_time), so pinning them would flake.
        if "Replay" not in name or "Throughput" not in name \
                or "items_per_second" not in row:
            continue
        # Prefer the human label ("mpk_virt/64K") over the raw
        # argument encoding in the benchmark name.
        base = name.split("/")[0]
        label = row.get("label")
        point = f"{base}/{label}" if label else name
        yield f"gbench:{point}{THROUGHPUT_SUFFIX}", round(
            row["items_per_second"])


def metric_keys(report):
    """Yield (key, value) for every metric in a report (either format)."""
    if "benchmarks" in report:
        yield from gbench_metric_keys(report)
        return
    suite = report.get("suite", "unknown")
    for row in report.get("micro", []):
        bench = row.get("benchmark", "?")
        pmos = row.get("pmos")
        point = f"{bench}/pmos={pmos}" if pmos is not None else bench
        cores = row.get("cores", 1)
        if cores != 1:
            point += f"/cores={cores}"
        for scheme, cycles in sorted(row.get("total_cycles", {}).items()):
            yield f"{suite}:{point}/{scheme}", cycles
    for row in report.get("whisper", []):
        bench = row.get("benchmark", "?")
        for scheme, cycles in sorted(row.get("total_cycles", {}).items()):
            yield f"{suite}:{bench}/{scheme}", cycles
    for row in report.get("server", []):
        bench = row.get("benchmark", "?")
        point = f"{bench}/tenants={row.get('tenants')}"
        cores = row.get("cores", 1)
        if cores != 1:
            point += f"/cores={cores}"
        # The KV sweep's headline number is the tail itself: pin each
        # scheme's p99 arrival-to-completion latency (the quantity the
        # paper's flat-tail claim is about), not just total cycles.
        for scheme, lat in sorted(row.get("latency", {}).items()):
            yield f"{suite}:{point}/{scheme}/p99", lat.get("p99")


def collect(report_paths):
    metrics = {}
    for path in report_paths:
        with open(path) as f:
            report = json.load(f)
        for key, cycles in metric_keys(report):
            if key in metrics and metrics[key] != cycles:
                print(f"error: duplicate metric {key} with conflicting "
                      f"values", file=sys.stderr)
                sys.exit(2)
            metrics[key] = cycles
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="+",
                        help="suite --json report file(s)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance-pct", type=float, default=None,
                        help="allowed drift per metric (default: the "
                             "baseline's own tolerance_pct, else "
                             f"{DEFAULT_TOLERANCE_PCT})")
    parser.add_argument("--throughput-floor-pct", type=float,
                        default=None,
                        help="how far records/sec may drop below the "
                             "baseline before failing (default: the "
                             "baseline's own throughput_floor_pct, "
                             f"else {DEFAULT_THROUGHPUT_FLOOR_PCT})")
    parser.add_argument("--warn-only", action="store_true",
                        help="report drift but exit 0")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the reports")
    args = parser.parse_args()

    current = collect(args.reports)
    if not current:
        print("error: reports contain no metrics", file=sys.stderr)
        return 2

    if args.update:
        doc = {
            "tolerance_pct": args.tolerance_pct
            if args.tolerance_pct is not None else DEFAULT_TOLERANCE_PCT,
            "throughput_floor_pct": args.throughput_floor_pct
            if args.throughput_floor_pct is not None
            else DEFAULT_THROUGHPUT_FLOOR_PCT,
            "metrics": dict(sorted(current.items())),
        }
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {len(current)} metrics to {args.baseline}")
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"error: cannot read baseline: {e}", file=sys.stderr)
        return 2
    expected = baseline.get("metrics", {})
    tolerance = args.tolerance_pct
    if tolerance is None:
        tolerance = baseline.get("tolerance_pct", DEFAULT_TOLERANCE_PCT)
    floor = args.throughput_floor_pct
    if floor is None:
        floor = baseline.get("throughput_floor_pct",
                             DEFAULT_THROUGHPUT_FLOOR_PCT)

    drifted, warned, missing, checked = [], [], [], 0
    for key, base in sorted(expected.items()):
        if key not in current:
            missing.append(key)
            continue
        checked += 1
        now = current[key]
        drift_pct = (abs(now - base) / base * 100.0) if base else (
            0.0 if now == base else float("inf"))
        if is_throughput(key):
            # One-sided: only a drop below the floor fails; smaller
            # drift either way is noise worth a log line, not a block.
            drop_pct = ((base - now) / base * 100.0) if base else 0.0
            if drop_pct > floor:
                drifted.append((key, base, now, drop_pct))
            elif drift_pct > tolerance:
                warned.append((key, base, now, drift_pct))
        elif drift_pct > tolerance:
            drifted.append((key, base, now, drift_pct))

    new = sorted(set(current) - set(expected))
    for key in new:
        print(f"note: metric {key} not in baseline (run --update to "
              f"pin it)")
    for key in missing:
        print(f"note: baseline metric {key} missing from the given "
              f"reports")

    for key, base, now, drift_pct in warned:
        direction = "slower" if now < base else "faster"
        print(f"warning: throughput {key}: {base} -> {now} "
              f"({drift_pct:.2f}% {direction}, within the "
              f"{floor}% floor)")
    for key, base, now, drift_pct in drifted:
        if is_throughput(key):
            print(f"DRIFT {key}: {base} -> {now} ({drift_pct:.2f}% "
                  f"below the {floor}% throughput floor)",
                  file=sys.stderr)
        else:
            direction = "slower" if now > base else "faster"
            print(f"DRIFT {key}: {base} -> {now} "
                  f"({drift_pct:+.2f}% {direction})", file=sys.stderr)

    if drifted:
        verdict = (f"{len(drifted)}/{checked} metrics drifted beyond "
                   f"tolerance ({tolerance}% model / {floor}% "
                   f"throughput floor) of {args.baseline}")
        if args.warn_only:
            print(f"warning: {verdict} (--warn-only, not failing)")
            return 0
        print(f"FAIL: {verdict}", file=sys.stderr)
        return 1
    print(f"ok: {checked} metrics within {tolerance}% of "
          f"{args.baseline}" +
          (f" ({len(warned)} throughput warnings)" if warned else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
