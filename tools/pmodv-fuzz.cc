/**
 * @file
 * pmodv-fuzz: the cross-scheme differential fuzzer CLI.
 *
 *   pmodv-fuzz [--iters N] [--ops N] [--seed S] [--threads N]
 *              [--domains N] [--max-live N] [--max-pages N]
 *              [--cores K]
 *              [--inject-bug none|mpk-drop-revoke]
 *              [--out FILE] [--print-ops] [--quiet]
 *       Run N generated episodes (episode i uses seed S+i) through
 *       all six schemes and the equivalence oracles. On the first
 *       violation, shrink to a minimal reproducer, print it as a
 *       replayable op list, and exit 1.
 *
 *   pmodv-fuzz --replay FILE [--inject-bug ...]
 *       Replay a previously printed (or corpus) op file once.
 *
 * Exit codes: 0 = clean, 1 = oracle violation, 2 = usage error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "testing/differ.hh"
#include "testing/generator.hh"
#include "testing/shrink.hh"

using namespace pmodv;
using namespace pmodv::testing;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: pmodv-fuzz [--iters N] [--ops N] [--seed S]\n"
        "                  [--threads N] [--domains N] [--max-live N]\n"
        "                  [--max-pages N] [--cores K]\n"
        "                  [--inject-bug none|mpk-drop-revoke]\n"
        "                  [--out FILE] [--print-ops] [--quiet]\n"
        "       pmodv-fuzz --replay FILE [--inject-bug ...]\n");
    return 2;
}

struct Options
{
    std::uint64_t iters = 100;
    std::uint64_t seed = 1;
    GenConfig gen;
    DiffConfig diff;
    std::string replayPath;
    std::string outPath;
    bool printOps = false;
    bool quiet = false;
};

/**
 * Shrink against "the same oracle still fires first" so the minimizer
 * cannot wander onto an unrelated failure, then report the result.
 */
int
reportFailure(const Options &opt, std::vector<Op> ops,
              const DiffResult &result, std::uint64_t episode_seed,
              bool generated)
{
    const std::string oracle = result.firstOracle();
    std::fprintf(stderr, "FAIL: %s\n", result.summary().c_str());

    const auto fails = [&](const std::vector<Op> &candidate) {
        DiffResult r = runDifferential(candidate, opt.diff);
        return r.firstOracle() == oracle;
    };
    const std::vector<Op> shrunk = shrinkOps(std::move(ops), fails);
    const DiffResult final_result = runDifferential(shrunk, opt.diff);

    std::ostream *out = &std::cout;
    std::ofstream file;
    if (!opt.outPath.empty()) {
        file.open(opt.outPath);
        if (file)
            out = &file;
        else
            std::fprintf(stderr, "cannot write %s; printing to stdout\n",
                         opt.outPath.c_str());
    }
    *out << "# pmodv-fuzz reproducer (" << shrunk.size() << " ops)\n";
    if (generated)
        *out << "# seed=" << episode_seed << " ops=" << opt.gen.numOps
             << " threads=" << opt.gen.numThreads << "\n";
    if (!final_result.violations.empty())
        *out << "# " << final_result.violations[0].toString() << "\n";
    printOps(*out, shrunk);
    if (out == &file && !opt.quiet)
        std::fprintf(stderr, "reproducer (%zu ops) written to %s\n",
                     shrunk.size(), opt.outPath.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--iters"))
            opt.iters = std::strtoull(need("--iters"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--ops"))
            opt.gen.numOps = std::strtoull(need("--ops"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--seed"))
            opt.seed = std::strtoull(need("--seed"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--threads"))
            opt.gen.numThreads = static_cast<unsigned>(
                std::strtoul(need("--threads"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--domains"))
            opt.gen.domainPool = static_cast<unsigned>(
                std::strtoul(need("--domains"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--max-live"))
            opt.gen.maxLive = static_cast<unsigned>(
                std::strtoul(need("--max-live"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--max-pages"))
            opt.gen.maxPages = static_cast<std::uint32_t>(
                std::strtoul(need("--max-pages"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--cores"))
            opt.diff.topology.numCores = static_cast<unsigned>(
                std::strtoul(need("--cores"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--inject-bug"))
            opt.diff.inject = injectionFromName(need("--inject-bug"));
        else if (!std::strcmp(argv[i], "--replay"))
            opt.replayPath = need("--replay");
        else if (!std::strcmp(argv[i], "--out"))
            opt.outPath = need("--out");
        else if (!std::strcmp(argv[i], "--print-ops"))
            opt.printOps = true;
        else if (!std::strcmp(argv[i], "--quiet"))
            opt.quiet = true;
        else
            return usage();
    }
    if (!opt.gen.numOps || !opt.gen.numThreads || !opt.gen.domainPool ||
        !opt.diff.topology.numCores ||
        opt.diff.topology.numCores > arch::kMaxCores)
        return usage();

    if (!opt.replayPath.empty()) {
        const std::vector<Op> ops = loadOpsFile(opt.replayPath);
        const DiffResult result = runDifferential(ops, opt.diff);
        if (!result.ok())
            return reportFailure(opt, ops, result, 0,
                                 /*generated=*/false);
        if (!opt.quiet)
            std::printf("replay of %zu ops: all oracles passed\n",
                        ops.size());
        return 0;
    }

    for (std::uint64_t i = 0; i < opt.iters; ++i) {
        const std::uint64_t episode_seed = opt.seed + i;
        const std::vector<Op> ops = generateOps(episode_seed, opt.gen);
        if (opt.printOps)
            printOps(std::cout, ops);
        const DiffResult result = runDifferential(ops, opt.diff);
        if (!result.ok()) {
            std::fprintf(stderr, "episode %llu (seed %llu) failed\n",
                         static_cast<unsigned long long>(i),
                         static_cast<unsigned long long>(episode_seed));
            return reportFailure(opt, ops, result, episode_seed,
                                 /*generated=*/true);
        }
        if (!opt.quiet && (i + 1) % 100 == 0)
            std::printf("%llu/%llu episodes clean\n",
                        static_cast<unsigned long long>(i + 1),
                        static_cast<unsigned long long>(opt.iters));
    }
    if (!opt.quiet)
        std::printf("%llu episodes x %zu ops: all oracles passed\n",
                    static_cast<unsigned long long>(opt.iters),
                    opt.gen.numOps);
    return 0;
}
