/**
 * @file
 * pmodv-ns: inspect and maintain an on-disk PMO namespace directory.
 *
 *   pmodv-ns list <dir>
 *       Catalog: name, id, size, owner, mode, attach-key presence.
 *   pmodv-ns check <dir> [name]
 *       Run pool integrity checks (header, heap canaries, free list,
 *       transaction-log state) on one pool or all of them.
 *   pmodv-ns recover <dir> <name>
 *       Roll back an interrupted transaction on a pool.
 *   pmodv-ns stat <dir> <name>
 *       Heap statistics for one pool.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "pmo/pmo_namespace.hh"
#include "pmo/txn.hh"

using namespace pmodv;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: pmodv-ns list <dir>\n"
                 "       pmodv-ns check <dir> [name]\n"
                 "       pmodv-ns recover <dir> <name>\n"
                 "       pmodv-ns stat <dir> <name>\n");
    return 2;
}

std::string
modeString(const pmo::PoolMode &mode)
{
    std::string s;
    s += mode.ownerRead ? 'r' : '-';
    s += mode.ownerWrite ? 'w' : '-';
    s += mode.otherRead ? 'r' : '-';
    s += mode.otherWrite ? 'w' : '-';
    return s;
}

int
cmdList(pmo::Namespace &ns)
{
    std::printf("%-24s %6s %12s %8s %6s %10s\n", "name", "id", "bytes",
                "owner", "mode", "attach-key");
    for (const auto &meta : ns.list()) {
        std::printf("%-24s %6u %12llu %8u %6s %10s\n",
                    meta.name.c_str(), meta.id,
                    static_cast<unsigned long long>(meta.size),
                    meta.owner, modeString(meta.mode).c_str(),
                    meta.attachKey ? "yes" : "no");
    }
    return 0;
}

int
checkOne(pmo::Namespace &ns, const std::string &name)
{
    try {
        pmo::Pool &pool = ns.pool(name);
        pool.check();
        pmo::Transaction txn(pool);
        std::printf("%-24s OK  (%llu blocks, %llu bytes live%s)\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        pool.allocatedBlocks()),
                    static_cast<unsigned long long>(
                        pool.allocatedBytes()),
                    txn.active() ? ", INTERRUPTED TXN pending" : "");
        return txn.active() ? 1 : 0;
    } catch (const std::exception &e) {
        std::printf("%-24s CORRUPT: %s\n", name.c_str(), e.what());
        return 1;
    }
}

int
cmdCheck(pmo::Namespace &ns, const char *name)
{
    if (name)
        return checkOne(ns, name);
    int rc = 0;
    for (const auto &meta : ns.list())
        rc |= checkOne(ns, meta.name);
    return rc;
}

int
cmdRecover(pmo::Namespace &ns, const std::string &name)
{
    pmo::Pool &pool = ns.pool(name);
    if (pmo::Transaction::recover(pool)) {
        std::printf("rolled back an interrupted transaction on '%s'\n",
                    name.c_str());
    } else {
        std::printf("'%s' was already consistent\n", name.c_str());
    }
    ns.sync();
    return 0;
}

int
cmdStat(pmo::Namespace &ns, const std::string &name)
{
    pmo::Pool &pool = ns.pool(name);
    std::printf("pool:            %s (id %u)\n", name.c_str(),
                pool.id());
    std::printf("size:            %llu bytes\n",
                static_cast<unsigned long long>(pool.size()));
    std::printf("log region:      %llu bytes @%llu\n",
                static_cast<unsigned long long>(pool.logCapacity()),
                static_cast<unsigned long long>(pool.logStart()));
    std::printf("live blocks:     %llu\n",
                static_cast<unsigned long long>(
                    pool.allocatedBlocks()));
    std::printf("live bytes:      %llu\n",
                static_cast<unsigned long long>(pool.allocatedBytes()));
    std::printf("free-list size:  %llu blocks\n",
                static_cast<unsigned long long>(pool.freeBlockCount()));
    std::printf("root object:     %s\n",
                pool.hasRoot() ? "present" : "none");

    // Size histogram of live allocations.
    std::size_t buckets[6] = {};
    pool.forEachAllocated([&](pmo::Oid, std::size_t size) {
        if (size <= 64)
            ++buckets[0];
        else if (size <= 256)
            ++buckets[1];
        else if (size <= 1024)
            ++buckets[2];
        else if (size <= 4096)
            ++buckets[3];
        else if (size <= 65536)
            ++buckets[4];
        else
            ++buckets[5];
    });
    const char *labels[6] = {"<=64B",  "<=256B", "<=1KB",
                             "<=4KB", "<=64KB", ">64KB"};
    std::printf("allocation size histogram:\n");
    for (int i = 0; i < 6; ++i)
        std::printf("  %-8s %zu\n", labels[i], buckets[i]);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    try {
        pmo::Namespace ns(argv[2]);
        if (cmd == "list")
            return cmdList(ns);
        if (cmd == "check")
            return cmdCheck(ns, argc > 3 ? argv[3] : nullptr);
        if (cmd == "recover" && argc > 3)
            return cmdRecover(ns, argv[3]);
        if (cmd == "stat" && argc > 3)
            return cmdStat(ns, argv[3]);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "pmodv-ns: %s\n", e.what());
        return 1;
    }
    return usage();
}
