/**
 * @file
 * pmodv-trace: inspect and replay binary trace files.
 *
 *   pmodv-trace capture <out.trc> <bench> [--pmos N] [--ops N]
 *       Generate a benchmark trace into a file. <bench> is one of
 *       the five microbenchmarks (avl/rbt/bt/ll/ss) or "kv", the
 *       open-loop multi-tenant KV server whose stamped arrivals make
 *       the trace explainable (--pmos doubles as the tenant count).
 *   pmodv-trace info <file.trc>
 *       Print record counts, access mix and switch statistics.
 *   pmodv-trace dump <file.trc> [--limit N]
 *       Print records in human-readable form.
 *   pmodv-trace convert <in.trc> <out.trc>
 *       Rewrite a trace in the current (v2) format. Upgrades legacy
 *       v1 files to the mmap-able checksummed layout.
 *   pmodv-trace replay <file.trc> [--scheme name]... [--jobs N]
 *                      [--trace-out out.json] [--epoch CYCLES]
 *                      [--progress]
 *       Replay under one or more protection schemes (one worker
 *       thread per scheme pipeline) and report cycles + overheads
 *       plus a per-scheme hot-domain table (default: all six
 *       schemes). --trace-out writes a Chrome trace-event JSON
 *       (loadable in Perfetto / chrome://tracing) with one track per
 *       scheme; it enables epoch sampling (--epoch, default 65536
 *       cycles) for the counter tracks and widens the event ring so
 *       transaction spans survive.
 *   pmodv-trace explain <suite.json> [--scheme name]
 *   pmodv-trace explain --replay <file.trc> [--scheme name]...
 *                       [--jobs N] [--k K] [--classes N]
 *       Print a tail-latency blame report from the slow-request
 *       digests: the p99 cohort's latency broken down into queueing,
 *       the seven service buckets and the residue, the domains and
 *       tenant classes that dominate the cohort, and the top-K
 *       request chains with their blamed events. The first form reads
 *       the digests out of a suite --json file (rows written with
 *       forensics on, i.e. config.slowRequestK > 0); the second
 *       replays a v2 trace with forensics enabled and explains the
 *       result. The report carries no environment fields, so reports
 *       from --jobs 1 and --jobs N runs compare byte for byte.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "exp/executor.hh"
#include "exp/trace_export.hh"
#include "stats/slow_digest.hh"
#include "stats/stats.hh"
#include "trace/trace_file.hh"
#include "workloads/micro/micro.hh"
#include "workloads/server/server.hh"

using namespace pmodv;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: pmodv-trace capture <out.trc> <avl|rbt|bt|ll|ss|kv> "
        "[--pmos N] [--ops N]\n"
        "       pmodv-trace info <file.trc>\n"
        "       pmodv-trace dump <file.trc> [--limit N]\n"
        "       pmodv-trace convert <in.trc> <out.trc>\n"
        "       pmodv-trace replay <file.trc> [--scheme name]...\n"
        "           [--jobs N] [--trace-out out.json] [--epoch CYCLES]\n"
        "           [--progress]\n"
        "       pmodv-trace explain <suite.json> [--scheme name]\n"
        "       pmodv-trace explain --replay <file.trc>\n"
        "           [--scheme name]... [--jobs N] [--k K] "
        "[--classes N]\n");
    return 2;
}

int
cmdCapture(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string path = argv[2];
    const std::string bench = argv[3];
    workloads::MicroParams params;
    params.numPmos = 64;
    params.numOps = 20'000;
    params.initialNodes = 1024;
    for (int i = 4; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--pmos"))
            params.numPmos =
                static_cast<unsigned>(std::strtoul(argv[i + 1],
                                                   nullptr, 10));
        else if (!std::strcmp(argv[i], "--ops"))
            params.numOps = std::strtoull(argv[i + 1], nullptr, 10);
    }
    trace::TraceFileWriter writer(path);
    if (bench == "kv") {
        // The open-loop KV server stamps every request with its
        // arrival cycle, so the resulting trace feeds the forensics
        // path (`explain --replay`). --pmos maps onto tenants and
        // --ops onto requests.
        workloads::ServerParams sp;
        sp.numTenants = params.numPmos;
        sp.numRequests = params.numOps;
        workloads::TraceCtx ctx(writer, sp.seed);
        workloads::ServerWorkload(sp).run(ctx);
    } else {
        workloads::TraceCtx ctx(writer, params.seed);
        workloads::makeMicro(bench, params)->run(ctx);
    }
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                path.c_str());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::TraceFileReader reader(argv[2]);
    // view() verifies the checksum for v2 files and hands back the
    // one-pass summary; no per-record counting pass needed.
    const auto buf = reader.view();
    trace::CountingSink counter;
    counter.addSummary(buf->summary());
    std::printf("format version:       %u\n", reader.version());
    std::printf("records:              %llu\n",
                static_cast<unsigned long long>(reader.recordCount()));
    std::printf("instructions:         %llu\n",
                static_cast<unsigned long long>(
                    counter.totalInstructions()));
    std::printf("memory accesses:      %llu (%llu to PMOs)\n",
                static_cast<unsigned long long>(counter.memAccesses()),
                static_cast<unsigned long long>(counter.pmoAccesses()));
    std::printf("permission switches:  %llu\n",
                static_cast<unsigned long long>(
                    counter.permissionSwitches()));
    std::printf("attaches / detaches:  %llu / %llu\n",
                static_cast<unsigned long long>(
                    counter.count(trace::RecordType::Attach)),
                static_cast<unsigned long long>(
                    counter.count(trace::RecordType::Detach)));
    std::printf("operations:           %llu\n",
                static_cast<unsigned long long>(counter.operations()));
    std::printf("thread switches:      %llu\n",
                static_cast<unsigned long long>(
                    counter.count(trace::RecordType::ThreadSwitch)));
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::uint64_t limit = 100;
    for (int i = 3; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--limit"))
            limit = std::strtoull(argv[i + 1], nullptr, 10);
    }
    trace::TraceFileReader reader(argv[2]);
    trace::TraceRecord rec;
    std::uint64_t n = 0;
    while (n < limit && reader.next(rec)) {
        std::printf("%8llu  %s\n", static_cast<unsigned long long>(n),
                    trace::toString(rec).c_str());
        ++n;
    }
    if (n == limit && reader.recordCount() > limit) {
        std::printf("... (%llu more records)\n",
                    static_cast<unsigned long long>(
                        reader.recordCount() - limit));
    }
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    trace::TraceFileReader reader(argv[2]);
    const unsigned in_version = reader.version();
    trace::TraceFileWriter writer(argv[3]);
    // Stream record by record: converting must not materialize the
    // whole input in memory (v1 traces can be arbitrarily large).
    trace::TraceRecord rec;
    std::uint64_t n = 0;
    while (reader.next(rec)) {
        writer.put(rec);
        ++n;
    }
    writer.finish();
    std::printf("converted %llu records (v%u -> v%u) to %s\n",
                static_cast<unsigned long long>(n), in_version,
                trace::kTraceVersion, argv[3]);
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::vector<arch::SchemeKind> schemes;
    unsigned jobs = 0; // 0 = hardware concurrency.
    std::string trace_out;
    Cycles epoch = 0; // 0 = sampling off (unless --trace-out).
    bool progress = false;
    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--scheme") && i + 1 < argc)
            schemes.push_back(arch::schemeFromName(argv[++i]));
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc)
            trace_out = argv[++i];
        else if (!std::strcmp(argv[i], "--epoch") && i + 1 < argc)
            epoch = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--progress"))
            progress = true;
        else
            return usage();
    }
    // Counter tracks need epoch sampling; pick a default when the
    // user asked for a trace but no epoch width.
    if (!trace_out.empty() && epoch == 0)
        epoch = 65536;
    if (schemes.empty()) {
        schemes = {arch::SchemeKind::NoProtection,
                   arch::SchemeKind::Lowerbound,
                   arch::SchemeKind::Mpk,
                   arch::SchemeKind::LibMpk,
                   arch::SchemeKind::MpkVirt,
                   arch::SchemeKind::DomainVirt};
    }
    // Always include the baseline so overheads are reportable.
    if (std::find(schemes.begin(), schemes.end(),
                  arch::SchemeKind::NoProtection) == schemes.end()) {
        schemes.insert(schemes.begin(),
                       arch::SchemeKind::NoProtection);
    }

    // Load the trace once (zero-copy mmap for v2 files), then fan the
    // scheme pipelines out over the pool (one worker per System).
    exp::RawPointSpec spec;
    {
        trace::TraceFileReader reader(argv[2]);
        spec.trace = reader.view();
    }
    spec.schemes = schemes;
    if (epoch != 0) {
        spec.config.samplingEpochCycles = epoch;
        spec.config.samplingMaxEpochs = 256;
    }
    if (!trace_out.empty()) {
        // Keep enough events for the trace's transaction spans.
        spec.config.eventRingCapacity = 65536;
    }

    common::ThreadPool pool(jobs);
    exp::Executor executor(pool);
    executor.setProgress(progress);
    trace::PerfettoExporter exporter = exp::makeExporter(spec.config);
    if (!trace_out.empty())
        executor.setPerfettoExporter(&exporter);
    const exp::RawPointResult res = executor.runRaw(spec);

    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         trace_out.c_str());
            return 1;
        }
        exporter.write(out);
        std::fprintf(stderr, "[trace] wrote %zu events on %zu tracks "
                     "to %s\n", exporter.numEvents(),
                     exporter.numTracks(), trace_out.c_str());
    }

    std::printf("%-14s %16s %16s %10s\n", "scheme", "cycles",
                "vs baseline(%)", "denied");
    const double base = static_cast<double>(
        res.totalCycles.at(arch::SchemeKind::NoProtection));
    for (arch::SchemeKind kind : schemes) {
        const double cycles =
            static_cast<double>(res.totalCycles.at(kind));
        std::printf("%-14s %16llu %16.2f %10.0f\n",
                    arch::schemeName(kind),
                    static_cast<unsigned long long>(
                        res.totalCycles.at(kind)),
                    base == 0 ? 0.0 : (cycles - base) / base * 100.0,
                    res.deniedAccesses.at(kind));
    }
    // Where did the protection overhead land?  The baseline scheme
    // tracks no domains, so skip it.
    for (arch::SchemeKind kind : schemes) {
        if (kind == arch::SchemeKind::NoProtection)
            continue;
        const auto it = res.hotDomains.find(kind);
        if (it == res.hotDomains.end() || it->second.empty())
            continue;
        std::printf("\nhot domains (%s):\n", arch::schemeName(kind));
        exp::printHotDomains(std::cout, it->second);
    }
    return 0;
}

// ------------------------------------------------------------- explain

/**
 * Depth-first search for a "slow_requests" digest object inside a
 * parsed stats tree (it lives at the System group's top level today,
 * but the report should not depend on the nesting).
 */
const common::JsonValue *
findSlowDigest(const common::JsonValue &node)
{
    if (!node.isObject())
        return nullptr;
    for (const auto &[key, value] : node.object()) {
        if (key == "slow_requests" && value.isObject() &&
            value.find("entries"))
            return &value;
        if (const common::JsonValue *hit = findSlowDigest(value))
            return hit;
    }
    return nullptr;
}

/** Recursive lookup of a named histogram object in a stats tree. */
const common::JsonValue *
findHistogram(const common::JsonValue &node, const std::string &name)
{
    if (!node.isObject())
        return nullptr;
    for (const auto &[key, value] : node.object()) {
        if (key == name && value.isObject() && value.find("buckets"))
            return &value;
        if (const common::JsonValue *hit = findHistogram(value, name))
            return hit;
    }
    return nullptr;
}

/** p99 recomputed from an exported histogram object (bit-identical to
 *  the live Histogram::quantile — both run quantileFromBuckets). */
double
histogramP99(const common::JsonValue &hist)
{
    std::vector<stats::BucketCount> buckets;
    for (const common::JsonValue &b : hist.at("buckets").array()) {
        stats::BucketCount bc;
        bc.lo = b.at("lo").asU64();
        if (const common::JsonValue *hi = b.find("hi"))
            bc.hi = hi->asU64();
        bc.count = b.at("count").asU64();
        buckets.push_back(bc);
    }
    return stats::quantileFromBuckets(hist.at("samples").asU64(),
                                      hist.at("min").asU64(),
                                      hist.at("max").asU64(), buckets,
                                      0.99);
}

/** One digest entry re-read from JSON for report math. */
struct ExplainEntry
{
    std::uint64_t id = 0;
    std::uint64_t tid = 0;
    std::uint64_t domain = 0;
    std::uint64_t cls = 0;
    std::uint64_t latency = 0;
    std::uint64_t queue = 0;
    std::uint64_t residue = 0;
    std::array<std::uint64_t, stats::kSlowDigestBuckets> buckets{};
    struct Ev
    {
        std::uint64_t id = 0;
        std::string kind;
        std::uint64_t cycle = 0;
    };
    std::vector<Ev> events;
    std::uint64_t eventsDropped = 0;
};

std::vector<ExplainEntry>
parseEntries(const common::JsonValue &digest)
{
    std::vector<ExplainEntry> out;
    for (const common::JsonValue &e : digest.at("entries").array()) {
        ExplainEntry entry;
        entry.id = e.at("id").asU64();
        entry.tid = e.at("tid").asU64();
        entry.domain = e.at("domain").asU64();
        entry.cls = e.at("class").asU64();
        entry.latency = e.at("latency").asU64();
        entry.queue = e.at("queue").asU64();
        entry.residue = e.at("residue").asU64();
        const common::JsonValue &buckets = e.at("buckets");
        for (std::size_t b = 0; b < stats::kSlowDigestBuckets; ++b)
            entry.buckets[b] =
                buckets.at(stats::kSlowDigestBucketNames[b]).asU64();
        for (const common::JsonValue &ev : e.at("events").array()) {
            ExplainEntry::Ev x;
            x.id = ev.at("id").asU64();
            x.kind = ev.at("kind").str();
            x.cycle = ev.at("cycle").asU64();
            entry.events.push_back(std::move(x));
        }
        entry.eventsDropped = e.at("events_dropped").asU64();
        out.push_back(std::move(entry));
    }
    return out;
}

std::string
explainClassName(const std::vector<std::string> &names,
                 std::uint64_t cls)
{
    if (cls < names.size())
        return names[cls];
    return "class" + std::to_string(cls);
}

/**
 * The blame report for one scheme: cohort shares, top domains and
 * classes, then the request chains. @p p99 selects the cohort (0 =
 * unknown, every retained entry qualifies); @p class_names maps class
 * indices to tenant-class names when the caller knows them.
 */
void
printSchemeBlame(const std::string &scheme,
                 const common::JsonValue &digest, double p99,
                 const std::vector<std::string> &class_names)
{
    const std::vector<ExplainEntry> entries = parseEntries(digest);
    std::printf("=== scheme %s ===\n", scheme.c_str());
    std::printf("digest: k=%llu entries=%zu offered=%llu\n",
                static_cast<unsigned long long>(digest.at("k").asU64()),
                entries.size(),
                static_cast<unsigned long long>(
                    digest.at("offered").asU64()));
    if (p99 > 0)
        std::printf("p99 latency: %.0f cycles\n", p99);

    std::vector<const ExplainEntry *> cohort;
    for (const ExplainEntry &e : entries) {
        if (p99 <= 0 || static_cast<double>(e.latency) >= p99)
            cohort.push_back(&e);
    }
    std::printf("p99 cohort: %zu of %zu retained requests\n",
                cohort.size(), entries.size());
    if (cohort.empty()) {
        std::printf("\n");
        return;
    }

    // Exact partition: queue + the seven buckets + residue = latency
    // per request, so the cohort sums partition the cohort latency.
    std::uint64_t lat_sum = 0, queue_sum = 0, residue_sum = 0;
    std::array<std::uint64_t, stats::kSlowDigestBuckets> bucket_sum{};
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        by_domain; // domain -> (entries, blamed events).
    std::map<std::uint64_t, std::uint64_t> by_class;
    std::map<std::string, std::uint64_t> by_kind;
    for (const ExplainEntry *e : cohort) {
        lat_sum += e->latency;
        queue_sum += e->queue;
        residue_sum += e->residue;
        for (std::size_t b = 0; b < stats::kSlowDigestBuckets; ++b)
            bucket_sum[b] += e->buckets[b];
        auto &d = by_domain[e->domain];
        d.first += 1;
        d.second += e->events.size() + e->eventsDropped;
        by_class[e->cls] += 1;
        for (const ExplainEntry::Ev &ev : e->events)
            by_kind[ev.kind] += 1;
    }
    const double lat = static_cast<double>(lat_sum);
    const auto pct = [lat](std::uint64_t part) {
        return lat == 0 ? 0.0 : 100.0 * static_cast<double>(part) / lat;
    };
    std::printf("cohort latency partition (%llu cycles total):\n",
                static_cast<unsigned long long>(lat_sum));
    std::printf("  %-16s %8.1f%%\n", "queueing", pct(queue_sum));
    for (std::size_t b = 0; b < stats::kSlowDigestBuckets; ++b) {
        std::printf("  %-16s %8.1f%%\n",
                    stats::kSlowDigestBucketNames[b], pct(bucket_sum[b]));
    }
    std::printf("  %-16s %8.1f%%\n", "residue", pct(residue_sum));

    // Domains ranked by cohort presence (count desc, domain asc).
    std::vector<std::pair<std::uint64_t,
                          std::pair<std::uint64_t, std::uint64_t>>>
        domains(by_domain.begin(), by_domain.end());
    std::sort(domains.begin(), domains.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.first != b.second.first)
                      return a.second.first > b.second.first;
                  return a.first < b.first;
              });
    std::printf("top blamed domains:\n");
    for (std::size_t i = 0; i < domains.size() && i < 5; ++i) {
        std::printf("  domain %-8llu %llu requests, %llu blamed "
                    "events\n",
                    static_cast<unsigned long long>(domains[i].first),
                    static_cast<unsigned long long>(
                        domains[i].second.first),
                    static_cast<unsigned long long>(
                        domains[i].second.second));
    }
    std::printf("tenant classes in cohort:\n");
    for (const auto &[cls, count] : by_class) {
        std::printf("  %-16s %llu requests\n",
                    explainClassName(class_names, cls).c_str(),
                    static_cast<unsigned long long>(count));
    }
    if (!by_kind.empty()) {
        std::printf("blamed events by kind:\n");
        for (const auto &[kind, count] : by_kind) {
            std::printf("  %-16s %llu\n", kind.c_str(),
                        static_cast<unsigned long long>(count));
        }
    }

    std::printf("slow request chains:\n");
    std::size_t rank = 0;
    for (const ExplainEntry *e : cohort) {
        ++rank;
        const double share =
            e->latency == 0
                ? 0.0
                : 100.0 * static_cast<double>(e->queue) /
                      static_cast<double>(e->latency);
        std::printf("  #%zu req=%llu %s domain=%llu latency=%llu "
                    "queue=%llu (%.0f%%)\n",
                    rank, static_cast<unsigned long long>(e->id),
                    explainClassName(class_names, e->cls).c_str(),
                    static_cast<unsigned long long>(e->domain),
                    static_cast<unsigned long long>(e->latency),
                    static_cast<unsigned long long>(e->queue), share);
        if (!e->events.empty()) {
            std::string chain;
            for (const ExplainEntry::Ev &ev : e->events) {
                if (!chain.empty())
                    chain += " -> ";
                chain += ev.kind + "@" + std::to_string(ev.cycle) +
                         "(id " + std::to_string(ev.id) + ")";
            }
            if (e->eventsDropped) {
                chain += " (+" + std::to_string(e->eventsDropped) +
                         " dropped)";
            }
            std::printf("     %s\n", chain.c_str());
        }
    }
    std::printf("\n");
}

/** Explain every forensics-enabled scheme of one suite server row. */
int
explainServerRow(const common::JsonValue &row,
                 const std::string &only_scheme)
{
    std::printf("server row: tenants=%llu cores=%llu requests=%llu\n\n",
                static_cast<unsigned long long>(
                    row.at("tenants").asU64()),
                static_cast<unsigned long long>(row.at("cores").asU64()),
                static_cast<unsigned long long>(
                    row.at("requests").asU64()));
    const common::JsonValue &latency = row.at("latency");
    const common::JsonValue &stats = row.at("stats");
    int explained = 0;
    for (const auto &[scheme, lat] : latency.object()) {
        if (!only_scheme.empty() && scheme != only_scheme)
            continue;
        const common::JsonValue *tree = stats.find(scheme);
        if (!tree)
            continue;
        const common::JsonValue *digest = findSlowDigest(*tree);
        if (!digest)
            continue;
        std::vector<std::string> class_names;
        if (const common::JsonValue *classes = lat.find("classes")) {
            for (const common::JsonValue &c : classes->array())
                class_names.push_back(c.at("class").str());
        }
        printSchemeBlame(scheme, *digest, lat.at("p99").number(),
                         class_names);
        ++explained;
    }
    return explained;
}

int
cmdExplain(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string input;
    std::string replay_trc;
    std::vector<arch::SchemeKind> schemes;
    std::string only_scheme;
    unsigned jobs = 0;
    unsigned k = 8;
    unsigned classes = 4;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--replay") && i + 1 < argc)
            replay_trc = argv[++i];
        else if (!std::strcmp(argv[i], "--scheme") && i + 1 < argc) {
            only_scheme = argv[++i];
            schemes.push_back(arch::schemeFromName(only_scheme));
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--k") && i + 1 < argc)
            k = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--classes") && i + 1 < argc)
            classes = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (argv[i][0] != '-' && input.empty())
            input = argv[i];
        else
            return usage();
    }

    if (!replay_trc.empty()) {
        // Replay the trace with forensics on and explain the result.
        if (schemes.empty()) {
            schemes = {arch::SchemeKind::Mpk, arch::SchemeKind::LibMpk,
                       arch::SchemeKind::MpkVirt,
                       arch::SchemeKind::DomainVirt};
        }
        exp::RawPointSpec spec;
        {
            trace::TraceFileReader reader(replay_trc);
            spec.trace = reader.view();
        }
        spec.schemes = schemes;
        spec.config.opClasses = classes;
        spec.config.slowRequestK = k;
        common::ThreadPool pool(jobs);
        exp::Executor executor(pool);
        const exp::RawPointResult res = executor.runRaw(spec);
        int explained = 0;
        for (arch::SchemeKind kind : schemes) {
            const std::string name = arch::schemeName(kind);
            std::string error;
            const auto tree =
                common::parseJson(res.statsJson.at(kind), &error);
            if (!tree) {
                std::fprintf(stderr, "error: bad stats JSON (%s): %s\n",
                             name.c_str(), error.c_str());
                return 1;
            }
            const common::JsonValue *digest = findSlowDigest(*tree);
            if (!digest)
                continue;
            // Cohort threshold: p99 of the replay's own op_lat
            // histogram, recomputed from the exported buckets.
            const common::JsonValue *lat = findHistogram(*tree, "op_lat");
            printSchemeBlame(name, *digest,
                             lat ? histogramP99(*lat) : 0.0, {});
            ++explained;
        }
        if (explained == 0) {
            std::fprintf(stderr, "error: no slow-request digests "
                         "captured (does the trace carry stamped "
                         "OpBegin records?)\n");
            return 1;
        }
        return 0;
    }

    if (input.empty())
        return usage();
    std::string error;
    const auto doc = common::parseJsonFile(input, &error);
    if (!doc) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    const common::JsonValue *server = doc->find("server");
    if (!server || !server->isArray() || server->size() == 0) {
        std::fprintf(stderr, "error: %s has no server rows to "
                     "explain\n", input.c_str());
        return 1;
    }
    int explained = 0;
    for (const common::JsonValue &row : server->array())
        explained += explainServerRow(row, only_scheme);
    if (explained == 0) {
        std::fprintf(stderr, "error: no slow-request digests in %s "
                     "(was the suite run with forensics on, i.e. "
                     "config.slowRequestK > 0?)\n", input.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "capture")
        return cmdCapture(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "dump")
        return cmdDump(argc, argv);
    if (cmd == "convert")
        return cmdConvert(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    if (cmd == "explain")
        return cmdExplain(argc, argv);
    return usage();
}
