/**
 * @file
 * pmodv-trace: inspect and replay binary trace files.
 *
 *   pmodv-trace capture <out.trc> <bench> [--pmos N] [--ops N]
 *       Generate a microbenchmark trace into a file.
 *   pmodv-trace info <file.trc>
 *       Print record counts, access mix and switch statistics.
 *   pmodv-trace dump <file.trc> [--limit N]
 *       Print records in human-readable form.
 *   pmodv-trace convert <in.trc> <out.trc>
 *       Rewrite a trace in the current (v2) format. Upgrades legacy
 *       v1 files to the mmap-able checksummed layout.
 *   pmodv-trace replay <file.trc> [--scheme name]... [--jobs N]
 *                      [--trace-out out.json] [--epoch CYCLES]
 *                      [--progress]
 *       Replay under one or more protection schemes (one worker
 *       thread per scheme pipeline) and report cycles + overheads
 *       plus a per-scheme hot-domain table (default: all six
 *       schemes). --trace-out writes a Chrome trace-event JSON
 *       (loadable in Perfetto / chrome://tracing) with one track per
 *       scheme; it enables epoch sampling (--epoch, default 65536
 *       cycles) for the counter tracks and widens the event ring so
 *       transaction spans survive.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "exp/executor.hh"
#include "exp/trace_export.hh"
#include "trace/trace_file.hh"
#include "workloads/micro/micro.hh"

using namespace pmodv;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: pmodv-trace capture <out.trc> <avl|rbt|bt|ll|ss> "
        "[--pmos N] [--ops N]\n"
        "       pmodv-trace info <file.trc>\n"
        "       pmodv-trace dump <file.trc> [--limit N]\n"
        "       pmodv-trace convert <in.trc> <out.trc>\n"
        "       pmodv-trace replay <file.trc> [--scheme name]...\n"
        "           [--jobs N] [--trace-out out.json] [--epoch CYCLES]\n"
        "           [--progress]\n");
    return 2;
}

int
cmdCapture(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string path = argv[2];
    const std::string bench = argv[3];
    workloads::MicroParams params;
    params.numPmos = 64;
    params.numOps = 20'000;
    params.initialNodes = 1024;
    for (int i = 4; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--pmos"))
            params.numPmos =
                static_cast<unsigned>(std::strtoul(argv[i + 1],
                                                   nullptr, 10));
        else if (!std::strcmp(argv[i], "--ops"))
            params.numOps = std::strtoull(argv[i + 1], nullptr, 10);
    }
    trace::TraceFileWriter writer(path);
    workloads::TraceCtx ctx(writer, params.seed);
    workloads::makeMicro(bench, params)->run(ctx);
    std::printf("wrote %llu records to %s\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                path.c_str());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::TraceFileReader reader(argv[2]);
    // view() verifies the checksum for v2 files and hands back the
    // one-pass summary; no per-record counting pass needed.
    const auto buf = reader.view();
    trace::CountingSink counter;
    counter.addSummary(buf->summary());
    std::printf("format version:       %u\n", reader.version());
    std::printf("records:              %llu\n",
                static_cast<unsigned long long>(reader.recordCount()));
    std::printf("instructions:         %llu\n",
                static_cast<unsigned long long>(
                    counter.totalInstructions()));
    std::printf("memory accesses:      %llu (%llu to PMOs)\n",
                static_cast<unsigned long long>(counter.memAccesses()),
                static_cast<unsigned long long>(counter.pmoAccesses()));
    std::printf("permission switches:  %llu\n",
                static_cast<unsigned long long>(
                    counter.permissionSwitches()));
    std::printf("attaches / detaches:  %llu / %llu\n",
                static_cast<unsigned long long>(
                    counter.count(trace::RecordType::Attach)),
                static_cast<unsigned long long>(
                    counter.count(trace::RecordType::Detach)));
    std::printf("operations:           %llu\n",
                static_cast<unsigned long long>(counter.operations()));
    std::printf("thread switches:      %llu\n",
                static_cast<unsigned long long>(
                    counter.count(trace::RecordType::ThreadSwitch)));
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::uint64_t limit = 100;
    for (int i = 3; i + 1 < argc; i += 2) {
        if (!std::strcmp(argv[i], "--limit"))
            limit = std::strtoull(argv[i + 1], nullptr, 10);
    }
    trace::TraceFileReader reader(argv[2]);
    trace::TraceRecord rec;
    std::uint64_t n = 0;
    while (n < limit && reader.next(rec)) {
        std::printf("%8llu  %s\n", static_cast<unsigned long long>(n),
                    trace::toString(rec).c_str());
        ++n;
    }
    if (n == limit && reader.recordCount() > limit) {
        std::printf("... (%llu more records)\n",
                    static_cast<unsigned long long>(
                        reader.recordCount() - limit));
    }
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    trace::TraceFileReader reader(argv[2]);
    const unsigned in_version = reader.version();
    trace::TraceFileWriter writer(argv[3]);
    // Stream record by record: converting must not materialize the
    // whole input in memory (v1 traces can be arbitrarily large).
    trace::TraceRecord rec;
    std::uint64_t n = 0;
    while (reader.next(rec)) {
        writer.put(rec);
        ++n;
    }
    writer.finish();
    std::printf("converted %llu records (v%u -> v%u) to %s\n",
                static_cast<unsigned long long>(n), in_version,
                trace::kTraceVersion, argv[3]);
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::vector<arch::SchemeKind> schemes;
    unsigned jobs = 0; // 0 = hardware concurrency.
    std::string trace_out;
    Cycles epoch = 0; // 0 = sampling off (unless --trace-out).
    bool progress = false;
    for (int i = 3; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--scheme") && i + 1 < argc)
            schemes.push_back(arch::schemeFromName(argv[++i]));
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (!std::strcmp(argv[i], "--trace-out") && i + 1 < argc)
            trace_out = argv[++i];
        else if (!std::strcmp(argv[i], "--epoch") && i + 1 < argc)
            epoch = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--progress"))
            progress = true;
        else
            return usage();
    }
    // Counter tracks need epoch sampling; pick a default when the
    // user asked for a trace but no epoch width.
    if (!trace_out.empty() && epoch == 0)
        epoch = 65536;
    if (schemes.empty()) {
        schemes = {arch::SchemeKind::NoProtection,
                   arch::SchemeKind::Lowerbound,
                   arch::SchemeKind::Mpk,
                   arch::SchemeKind::LibMpk,
                   arch::SchemeKind::MpkVirt,
                   arch::SchemeKind::DomainVirt};
    }
    // Always include the baseline so overheads are reportable.
    if (std::find(schemes.begin(), schemes.end(),
                  arch::SchemeKind::NoProtection) == schemes.end()) {
        schemes.insert(schemes.begin(),
                       arch::SchemeKind::NoProtection);
    }

    // Load the trace once (zero-copy mmap for v2 files), then fan the
    // scheme pipelines out over the pool (one worker per System).
    exp::RawPointSpec spec;
    {
        trace::TraceFileReader reader(argv[2]);
        spec.trace = reader.view();
    }
    spec.schemes = schemes;
    if (epoch != 0) {
        spec.config.samplingEpochCycles = epoch;
        spec.config.samplingMaxEpochs = 256;
    }
    if (!trace_out.empty()) {
        // Keep enough events for the trace's transaction spans.
        spec.config.eventRingCapacity = 65536;
    }

    common::ThreadPool pool(jobs);
    exp::Executor executor(pool);
    executor.setProgress(progress);
    trace::PerfettoExporter exporter = exp::makeExporter(spec.config);
    if (!trace_out.empty())
        executor.setPerfettoExporter(&exporter);
    const exp::RawPointResult res = executor.runRaw(spec);

    if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         trace_out.c_str());
            return 1;
        }
        exporter.write(out);
        std::fprintf(stderr, "[trace] wrote %zu events on %zu tracks "
                     "to %s\n", exporter.numEvents(),
                     exporter.numTracks(), trace_out.c_str());
    }

    std::printf("%-14s %16s %16s %10s\n", "scheme", "cycles",
                "vs baseline(%)", "denied");
    const double base = static_cast<double>(
        res.totalCycles.at(arch::SchemeKind::NoProtection));
    for (arch::SchemeKind kind : schemes) {
        const double cycles =
            static_cast<double>(res.totalCycles.at(kind));
        std::printf("%-14s %16llu %16.2f %10.0f\n",
                    arch::schemeName(kind),
                    static_cast<unsigned long long>(
                        res.totalCycles.at(kind)),
                    base == 0 ? 0.0 : (cycles - base) / base * 100.0,
                    res.deniedAccesses.at(kind));
    }
    // Where did the protection overhead land?  The baseline scheme
    // tracks no domains, so skip it.
    for (arch::SchemeKind kind : schemes) {
        if (kind == arch::SchemeKind::NoProtection)
            continue;
        const auto it = res.hotDomains.find(kind);
        if (it == res.hotDomains.end() || it->second.empty())
            continue;
        std::printf("\nhot domains (%s):\n", arch::schemeName(kind));
        exp::printHotDomains(std::cout, it->second);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "capture")
        return cmdCapture(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "dump")
        return cmdDump(argc, argv);
    if (cmd == "convert")
        return cmdConvert(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    return usage();
}
