#!/usr/bin/env python3
"""Validate the stats trees embedded in a suite --json report.

Checks, for every micro/whisper row and every scheme:

  * the embedded stats tree has the expected shape: the System-level
    counters and cycle-attribution scalars, the dtlb/dcache/events
    child groups, and a child group named after the scheme. Rows from
    a multi-core sweep (row key "cores" > 1) instead carry one
    core<k> child group per core — each with the private dtlb/dcache
    hierarchies and the per-core scalars — plus the shared
    shootdown_bus group, and the per-core cycles must sum back to the
    System total;
  * the seven cyc_* attribution buckets account for at least 95% of
    the scheme's total cycles (the paper's Table VII methodology
    requires the breakdown to explain where the time went — this
    model attributes 100%);
  * the stats tree's `cycles` equals the row's total_cycles entry;
  * the event ring's `recorded` count is consistent with `dropped`;
  * when the run sampled a timeline (`timeline.epoch_cycles` > 0),
    every track has one delta per epoch and the per-epoch deltas sum
    back to the same-named aggregate scalar — the reconstruction
    invariant stats::TimeSeries guarantees;
  * every row's `hot_domains` tables are well-formed (per-scheme
    arrays of domain rows with the five attribution counters);
  * every server row (the fig_tail KV sweep) carries a per-scheme
    latency block with the tail quantiles (p50/p99/p999), the
    queueing-delay quantiles (queue_p50/queue_p99), and one block per
    tenant class whose sample counts partition the total — and the
    quantiles are recomputed here, from the op_lat/op_queue histograms
    embedded in the same row's stats trees, with a Python mirror of
    stats::quantileFromBuckets that must agree bit for bit;
  * when a server row ran with tail forensics on (a `slow_requests`
    digest in its stats trees), the digest is validated end to end:
    at most K entries, sorted by latency, every entry's breakdown
    (queue + the seven cyc_* buckets + residue) recomputed here and
    required to equal its latency exactly, every blamed event id
    resolving to a real EventRing post (1 <= id <= events.recorded)
    inside the request's [begin, commit] window, and the row's
    `blame` summary block recomputed from the digest + p99.

With --diff A B, additionally asserts that two reports are identical
except for the run-environment fields (wall_seconds, jobs) — the
cross---jobs determinism guarantee.

With --trace FILE, additionally validates a Chrome trace-event JSON
written by --trace-out (pmodv-trace / the bench binaries): the
document must parse, have a non-empty traceEvents array, name every
track, and contain at least one duration span and one counter sample.

Exit status 0 on success; prints offending paths and exits 1 on any
violation.
"""

import argparse
import json
import math
import sys

REQUIRED_SCALARS = [
    "cycles",
    "instructions",
    "mem_accesses",
    "operations",
    "cyc_issue",
    "cyc_mem",
    "cyc_prot_fill",
    "cyc_prot_check",
    "cyc_perm_instr",
    "cyc_syscall",
    "cyc_ctx_switch",
]

ATTRIBUTION = [
    "cyc_issue",
    "cyc_mem",
    "cyc_prot_fill",
    "cyc_prot_check",
    "cyc_perm_instr",
    "cyc_syscall",
    "cyc_ctx_switch",
]

REQUIRED_CHILDREN = ["dtlb", "dcache", "events"]

# Per-core context scalars (core<k> groups of a multi-core tree).
CORE_SCALARS = [
    "cycles",
    "instructions",
    "mem_accesses",
    "ctx_switches",
    "ipis_responded",
    "ipis_filtered",
]

# Private per-core hierarchies inside each core<k> group.
CORE_CHILDREN = ["dtlb", "dcache"]

# Shared shootdown-bus counters (multi-core trees only).
BUS_SCALARS = [
    "broadcasts",
    "ipis_sent",
    "ipis_responded",
    "ipis_filtered",
    "pages_invalidated",
]

# Fraction of total cycles the named attribution buckets must explain.
MIN_ATTRIBUTED = 0.95

errors = []


def fail(path, message):
    errors.append(f"{path}: {message}")


def check_stats_tree(path, scheme, stats, expected_total, cores=1):
    for key in REQUIRED_SCALARS:
        if key not in stats:
            fail(path, f"missing scalar '{key}'")
    if cores > 1:
        check_multicore_tree(path, stats, cores)
    else:
        # Single-core trees keep the private hierarchies at top level.
        for child in REQUIRED_CHILDREN:
            if not isinstance(stats.get(child), dict):
                fail(path, f"missing child group '{child}'")
    # Every scheme's stats subtree is attached under its scheme name
    # (NoProtection is named "none" etc. — same name as the JSON key).
    if not isinstance(stats.get(scheme), dict):
        fail(path, f"missing scheme child group '{scheme}'")

    total = stats.get("cycles", 0)
    if expected_total is not None and total != expected_total:
        fail(path, f"stats cycles {total} != total_cycles "
                   f"{expected_total}")
    attributed = sum(stats.get(k, 0) for k in ATTRIBUTION)
    if total > 0 and attributed < MIN_ATTRIBUTED * total:
        fail(path, f"attribution {attributed} covers only "
                   f"{attributed / total:.1%} of {total} cycles")

    events = stats.get("events")
    if isinstance(events, dict):
        if events.get("dropped", 0) > events.get("recorded", 0):
            fail(path, "event ring dropped more than it recorded")

    check_timeline(path, stats)


def check_multicore_tree(path, stats, cores):
    """Shape of a K-core tree: core<k> groups + the shootdown bus.

    The per-core hierarchies move under their core<k> group, the
    events ring stays shared at System level, and the per-core cycle
    counters must sum back to the System total (replayBatch charges
    every cycle to exactly one core).
    """
    if not isinstance(stats.get("events"), dict):
        fail(path, "missing child group 'events'")
    per_core_cycles = 0
    for k in range(cores):
        name = f"core{k}"
        core = stats.get(name)
        if not isinstance(core, dict):
            fail(path, f"missing per-core group '{name}'")
            continue
        for key in CORE_SCALARS:
            if key not in core:
                fail(f"{path}.{name}", f"missing scalar '{key}'")
        for child in CORE_CHILDREN:
            if not isinstance(core.get(child), dict):
                fail(f"{path}.{name}", f"missing child group '{child}'")
        per_core_cycles += core.get("cycles", 0)
    total = stats.get("cycles", 0)
    if per_core_cycles != total:
        fail(path, f"per-core cycles sum to {per_core_cycles}, "
                   f"System total is {total}")
    bus = stats.get("shootdown_bus")
    if not isinstance(bus, dict):
        fail(path, "missing child group 'shootdown_bus'")
    else:
        for key in BUS_SCALARS:
            if key not in bus:
                fail(f"{path}.shootdown_bus", f"missing scalar '{key}'")
        if bus.get("ipis_responded", 0) + bus.get("ipis_filtered", 0) \
                != bus.get("ipis_sent", 0):
            fail(f"{path}.shootdown_bus",
                 "ipis_responded + ipis_filtered != ipis_sent")


def check_timeline(path, stats):
    timeline = stats.get("timeline")
    if not isinstance(timeline, dict):
        return
    epoch_cycles = timeline.get("epoch_cycles", 0)
    if epoch_cycles == 0:
        return  # Sampling was off for this run.
    epochs = timeline.get("epochs")
    tracks = timeline.get("tracks")
    if not isinstance(epochs, int) or epochs <= 0:
        fail(path, f"timeline has bad epoch count {epochs!r}")
        return
    if not isinstance(tracks, dict) or not tracks:
        fail(path, "enabled timeline has no tracks")
        return
    for label, deltas in tracks.items():
        tpath = f"{path}.timeline.{label}"
        if not isinstance(deltas, list) or len(deltas) != epochs:
            fail(tpath, f"expected {epochs} epoch deltas, got "
                        f"{len(deltas) if isinstance(deltas, list) else deltas!r}")
            continue
        # Reconstruction invariant: deltas sum to the same-named
        # aggregate (only checkable for System-level scalars that
        # live in the same tree node).
        if label in stats and isinstance(stats[label], (int, float)):
            total = stats[label]
            if abs(sum(deltas) - total) > max(1e-6 * abs(total), 1e-6):
                fail(tpath, f"epoch deltas sum to {sum(deltas)}, "
                            f"aggregate is {total}")


HOT_DOMAIN_KEYS = ["domain", "accesses", "fill_misses", "evictions",
                   "shootdown_pages", "setperms"]


def check_hot_domains(path, row):
    tables = row.get("hot_domains")
    if not isinstance(tables, dict):
        fail(path, "row has no hot_domains tables")
        return
    for scheme, rows in tables.items():
        hpath = f"{path}.hot_domains.{scheme}"
        if not isinstance(rows, list):
            fail(hpath, "not a JSON array")
            continue
        for entry in rows:
            for key in HOT_DOMAIN_KEYS:
                value = entry.get(key)
                if not isinstance(value, int) or value < 0:
                    fail(hpath, f"bad '{key}' in {entry}")


def check_row(path, row):
    stats = row.get("stats")
    if not isinstance(stats, dict) or not stats:
        fail(path, "row has no embedded stats trees")
        return
    totals = row.get("total_cycles", {})
    cores = row.get("cores", 1)
    if not isinstance(cores, int) or cores < 1:
        fail(path, f"bad 'cores' value {cores!r}")
        cores = 1
    for scheme, tree in stats.items():
        check_stats_tree(f"{path}.stats.{scheme}", scheme, tree,
                         totals.get(scheme), cores)
    # The row-level IPI aggregate is lifted straight off the bus.
    # Baseline trees (none/lowerbound) ride along in `stats` without a
    # row entry, so only cross-check the schemes the sweep reported.
    ipis = row.get("ipis_responded", {})
    if cores > 1:
        for scheme, reported in ipis.items():
            bus = stats.get(scheme, {}).get("shootdown_bus", {})
            if isinstance(bus, dict) and \
                    reported != bus.get("ipis_responded"):
                fail(f"{path}.ipis_responded.{scheme}",
                     f"row says {reported!r}, bus says "
                     f"{bus.get('ipis_responded')!r}")
    events = row.get("events")
    if not isinstance(events, dict):
        fail(path, "row has no embedded event arrays")
        return
    for scheme, ring in events.items():
        if not isinstance(ring, list):
            fail(f"{path}.events.{scheme}", "not a JSON array")
            continue
        # Forensics-on rows stamp each embedded event with its ring id
        # (monotone post order) and the tagging request id. The fields
        # are all-or-nothing per row: a forensics-off row must not
        # carry them at all (golden byte-layout guarantee).
        with_ids = [ev for ev in ring if "id" in ev]
        if with_ids and len(with_ids) != len(ring):
            fail(f"{path}.events.{scheme}",
                 "only some events carry forensics ids")
        prev_id = 0
        for ev in with_ids:
            if ev["id"] <= prev_id:
                fail(f"{path}.events.{scheme}",
                     f"event ids not monotone at {ev['id']}")
            prev_id = ev["id"]
            if "req" not in ev or not isinstance(ev["req"], int) \
                    or ev["req"] < 0:
                fail(f"{path}.events.{scheme}",
                     f"event id {ev['id']} has a bad req tag")
    check_hot_domains(path, row)


def quantile_from_buckets(samples, lo, hi, buckets, q):
    """Mirror of stats::quantileFromBuckets (stats.cc), bit for bit.

    `buckets` is the exported histogram form: a list of {lo, hi?,
    count} dicts where a missing "hi" marks the unbounded top bucket.
    Nearest-rank with evenly-spaced within-bucket interpolation; the
    extremes answer from the tracked min/max exactly.
    """
    if samples == 0:
        return 0.0
    k = math.ceil(q * samples)
    k = min(max(k, 1), samples)
    if k == 1:
        return float(lo)
    if k == samples:
        return float(hi)
    cum = 0
    for b in buckets:
        count = b["count"]
        if count == 0:
            continue
        if k > cum + count:
            cum += count
            continue
        blo = max(b["lo"], lo)
        bhi = hi if "hi" not in b else min(b["hi"] - 1, hi)
        if bhi <= blo or count == 1:
            return float(blo)
        idx = k - cum  # 1-based within the bucket.
        return float(blo) + float(bhi - blo) * ((idx - 1) / (count - 1))
    return float(hi)


def histogram_quantile(hist, q):
    """Quantile of an exported {samples,min,max,buckets} histogram."""
    return quantile_from_buckets(hist["samples"], hist["min"],
                                 hist["max"], hist["buckets"], q)


LATENCY_QUANTILES = [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)]
QUEUE_QUANTILES = [("queue_p50", 0.50), ("queue_p99", 0.99)]


def check_latency_block(path, block, lat_hist, queue_hist):
    """One scheme's (or class's) latency block vs its histograms."""
    for key in ("samples", "p50", "p99", "p999",
                "queue_p50", "queue_p99"):
        if key not in block:
            fail(path, f"missing latency field '{key}'")
            return
    if block["p50"] > block["p99"] or block["p99"] > block["p999"]:
        fail(path, "latency quantiles not monotone in q")
    if block["queue_p50"] > block["queue_p99"]:
        fail(path, "queueing quantiles not monotone in q")
    for hist, pairs in ((lat_hist, LATENCY_QUANTILES),
                        (queue_hist, QUEUE_QUANTILES)):
        if hist is None:
            continue
        if hist["samples"] != block["samples"]:
            fail(path, f"histogram has {hist['samples']} samples, "
                       f"latency block says {block['samples']}")
            continue
        for key, q in pairs:
            want = histogram_quantile(hist, q)
            if block[key] != want:
                fail(path, f"recomputed {key} {want!r} != reported "
                           f"{block[key]!r}")


DIGEST_BUCKETS = ATTRIBUTION  # Same seven names, same order.


def find_slow_digest(tree, name="slow_requests"):
    """Depth-first search for a digest object inside a stats tree."""
    if not isinstance(tree, dict):
        return None
    for key, value in tree.items():
        if key == name and isinstance(value, dict) and "entries" in value:
            return value
        hit = find_slow_digest(value, name)
        if hit is not None:
            return hit
    return None


def check_slow_digest(path, digest, recorded, cls=None):
    """One digest: K bound, ordering, the latency partition, and
    blamed-event referential integrity against the ring's post count.

    Returns the entry list for the caller's blame cross-check.
    """
    k = digest.get("k", 0)
    entries = digest.get("entries")
    if not isinstance(entries, list):
        fail(path, "digest has no entries array")
        return []
    if len(entries) > k:
        fail(path, f"{len(entries)} entries exceed the K bound {k}")
    if digest.get("offered", 0) < len(entries):
        fail(path, "digest retained more entries than were offered")
    prev_latency = None
    for i, e in enumerate(entries):
        epath = f"{path}.entries[{i}]"
        latency = e.get("latency", 0)
        if prev_latency is not None and latency > prev_latency:
            fail(epath, "entries not sorted by latency descending")
        prev_latency = latency
        if cls is not None and e.get("class") != cls:
            fail(epath, f"class {e.get('class')!r} in the class-{cls} "
                        "digest")
        # The partition invariant, recomputed here: queueing + the
        # seven service buckets + residue must equal the request's
        # arrival-to-completion latency exactly (integers, no slack).
        buckets = e.get("buckets", {})
        missing = [b for b in DIGEST_BUCKETS if b not in buckets]
        if missing:
            fail(epath, f"missing bucket(s) {missing}")
            continue
        service = sum(buckets[b] for b in DIGEST_BUCKETS)
        total = e.get("queue", 0) + service + e.get("residue", 0)
        if total != latency:
            fail(epath, f"queue+buckets+residue = {total} but "
                        f"latency = {latency}")
        begin, commit = e.get("begin", 0), e.get("commit", 0)
        if begin > commit:
            fail(epath, f"begin {begin} after commit {commit}")
        prev_id = 0
        for j, ev in enumerate(e.get("events", [])):
            vpath = f"{epath}.events[{j}]"
            ev_id = ev.get("id", 0)
            # Ids are 1-based monotone post counts: every blamed id
            # must name an event the ring actually recorded.
            if not 1 <= ev_id <= recorded:
                fail(vpath, f"event id {ev_id} outside the ring's "
                            f"recorded range [1, {recorded}]")
            if ev_id <= prev_id:
                fail(vpath, "blame chain not in post order")
            prev_id = ev_id
            if not begin <= ev.get("cycle", 0) <= commit:
                fail(vpath, f"event cycle {ev.get('cycle')} outside "
                            f"the request window [{begin}, {commit}]")
            if ev.get("kind") == "txn_commit":
                fail(vpath, "commit markers must not be blamed")
    return entries


def check_blame_block(path, blame, entries, p99):
    """The row's blame summary, recomputed from the digest entries."""
    for key in ("k", "entries", "cohort", "cohort_queue_share",
                "blamed_events", "blamed_by_kind", "top_domain",
                "top_domain_entries"):
        if key not in blame:
            fail(path, f"missing blame field '{key}'")
            return
    if blame["entries"] != len(entries):
        fail(path, f"blame says {blame['entries']} entries, digest "
                   f"has {len(entries)}")
    cohort = [e for e in entries if e.get("latency", 0) >= p99]
    if blame["cohort"] != len(cohort):
        fail(path, f"blame cohort {blame['cohort']} != recomputed "
                   f"{len(cohort)}")
    lat_sum = sum(e.get("latency", 0) for e in cohort)
    queue_sum = sum(e.get("queue", 0) for e in cohort)
    want_share = queue_sum / lat_sum if lat_sum else 0.0
    if abs(blame["cohort_queue_share"] - want_share) > 1e-12:
        fail(path, f"cohort_queue_share {blame['cohort_queue_share']!r}"
                   f" != recomputed {want_share!r}")
    blamed = sum(len(e.get("events", [])) + e.get("events_dropped", 0)
                 for e in cohort)
    if blame["blamed_events"] != blamed:
        fail(path, f"blamed_events {blame['blamed_events']} != "
                   f"recomputed {blamed}")


def check_server_forensics(path, row, scheme, tree, p99):
    """Digest + blame validation for one scheme of a server row."""
    digest = find_slow_digest(tree)
    blame = row.get("blame", {}).get(scheme) if \
        isinstance(row.get("blame"), dict) else None
    if digest is None:
        if blame is not None:
            fail(f"{path}.blame.{scheme}",
                 "blame block without a slow_requests digest")
        return
    recorded = tree.get("events", {}).get("recorded", 0)
    entries = check_slow_digest(f"{path}.stats.{scheme}.slow_requests",
                                digest, recorded)
    # Per-class digests ride alongside; same checks, pinned class.
    for c in range(64):
        class_digest = find_slow_digest(tree, f"slow_requests_class{c}")
        if class_digest is None:
            break
        check_slow_digest(
            f"{path}.stats.{scheme}.slow_requests_class{c}",
            class_digest, recorded, cls=c)
    if blame is None:
        fail(f"{path}.blame.{scheme}",
             "digest present but no blame summary in the row")
        return
    check_blame_block(f"{path}.blame.{scheme}", blame, entries, p99)


def check_server_row(path, row):
    check_row(path, row)
    for key in ("tenants", "requests", "mean_interarrival_cycles"):
        value = row.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(path, f"bad '{key}' value {value!r}")
    latency = row.get("latency")
    if not isinstance(latency, dict) or not latency:
        fail(path, "server row has no latency blocks")
        return
    stats = row.get("stats", {})
    for scheme, block in latency.items():
        lpath = f"{path}.latency.{scheme}"
        tree = stats.get(scheme, {})
        check_latency_block(lpath, block, tree.get("op_lat"),
                            tree.get("op_queue"))
        check_server_forensics(path, row, scheme, tree,
                               block.get("p99", 0))
        classes = block.get("classes")
        if not isinstance(classes, list) or not classes:
            fail(lpath, "no per-class latency blocks")
            continue
        class_samples = 0
        for i, cls in enumerate(classes):
            cpath = f"{lpath}.classes[{i}]"
            if not isinstance(cls.get("class"), str):
                fail(cpath, "class block has no name")
            check_latency_block(cpath, cls,
                                tree.get(f"op_lat_class{i}"),
                                tree.get(f"op_queue_class{i}"))
            class_samples += cls.get("samples", 0)
        if "samples" in block and class_samples != block["samples"]:
            fail(lpath, f"class samples sum to {class_samples}, "
                        f"total is {block['samples']}")


def check_perfetto_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"trace does not parse: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "trace has no traceEvents")
        return
    phases = {}
    for ev in events:
        if not isinstance(ev, dict) or "ph" not in ev or "pid" not in ev:
            fail(path, f"malformed trace event {ev!r}")
            return
        phases[ev["ph"]] = phases.get(ev["ph"], 0) + 1
    tracks = [ev for ev in events
              if ev["ph"] == "M" and ev.get("name") == "process_name"]
    if not tracks:
        fail(path, "trace names no tracks (process_name metadata)")
    if phases.get("X", 0) == 0:
        fail(path, "trace has no duration spans (ph X)")
    if phases.get("C", 0) == 0:
        fail(path, "trace has no counter samples (ph C)")
    print(f"ok: {path}: {len(events)} events on {len(tracks)} "
          f"track(s), phases {phases}")


def check_report(path, report):
    rows = report.get("micro", []) + report.get("whisper", [])
    server = report.get("server", [])
    if not rows and not server:
        fail(path, "report has no rows")
    for i, row in enumerate(rows):
        name = row.get("benchmark", f"#{i}")
        check_row(f"{path}:{name}[{i}]", row)
    for i, row in enumerate(server):
        name = row.get("benchmark", f"#{i}")
        check_server_row(f"{path}:server/{name}[{i}]", row)


def strip_environment(report):
    """Remove fields legitimately differing between runs."""
    report = dict(report)
    report.pop("wall_seconds", None)
    report.pop("jobs", None)
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="*",
                        help="suite --json report file(s)")
    parser.add_argument("--diff", action="store_true",
                        help="require all reports identical modulo "
                             "wall_seconds/jobs")
    parser.add_argument("--trace", action="append", default=[],
                        help="also validate a --trace-out Chrome "
                             "trace-event JSON (repeatable)")
    args = parser.parse_args()
    if not args.reports and not args.trace:
        parser.error("nothing to check: pass report(s) and/or --trace")

    for path in args.trace:
        check_perfetto_trace(path)

    parsed = []
    for path in args.reports:
        with open(path) as f:
            report = json.load(f)
        check_report(path, report)
        parsed.append((path, report))

    if args.diff:
        if len(parsed) < 2:
            print("--diff needs at least two reports", file=sys.stderr)
            return 2
        base_path, base = parsed[0]
        base_stripped = strip_environment(base)
        for path, report in parsed[1:]:
            if strip_environment(report) != base_stripped:
                fail(path, f"differs from {base_path} beyond "
                           "wall_seconds/jobs")

    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1
    n = len(parsed)
    print(f"ok: {n} report(s) validated" +
          (", identical modulo run environment" if args.diff else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
