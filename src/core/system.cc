#include "core/system.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pmodv::core
{

namespace
{

/**
 * Visible-latency lookup-table reach. Translate+memory latency sums
 * beyond this (never seen with the shipped configs) fall back to the
 * identical formula.
 */
constexpr std::size_t kVisTableSize = 1024;

/**
 * Per-entry cap on denormalized blamed events in the slow-request
 * digest; in-window events beyond it are counted in eventsDropped.
 * The chains of interest (a handful of evictions/IPIs per request)
 * fit comfortably.
 */
constexpr std::size_t kMaxBlamedEvents = 16;

/** Fallback fast-check: plain virtual dispatch. */
arch::CheckResult
virtualCheck(arch::ProtectionScheme &scheme,
             const arch::AccessContext &ctx)
{
    return scheme.checkAccess(ctx);
}

} // namespace

CoreContext::CoreContext(stats::Group *parent, unsigned idx,
                         const SimConfig &config,
                         tlb::AddressSpace &space)
    : stats::Group(parent, "core" + std::to_string(idx)),
      cycles(this, "cycles", "cycles accumulated on this core"),
      instructions(this, "instructions",
                   "instructions issued on this core"),
      memAccesses(this, "mem_accesses", "loads + stores on this core"),
      ctxSwitches(this, "ctx_switches", "context switches on this core"),
      ipisResponded(this, "ipis_responded",
                    "shootdown IPIs answered with stale entries"),
      ipisFiltered(this, "ipis_filtered",
                   "shootdown IPIs with nothing to flush"),
      index(idx)
{
    tlb = std::make_unique<tlb::TlbHierarchy>(this, config.tlb, space);
    caches = std::make_unique<mem::CacheHierarchy>(this, config.memory);
}

System::System(const SimConfig &config, arch::SchemeKind scheme,
               std::string name)
    : stats::Group(nullptr,
                   name.empty() ? std::string(arch::schemeName(scheme))
                                : std::move(name)),
      cycles(this, "cycles", "total simulated cycles"),
      instructions(this, "instructions", "dynamic instructions replayed"),
      memAccesses(this, "mem_accesses", "loads + stores replayed"),
      pmoAccesses(this, "pmo_accesses", "loads + stores to PMO memory"),
      operations(this, "operations", "workload operations completed"),
      deniedAccesses(this, "denied_accesses",
                     "accesses denied by protection"),
      cycIssue(this, "cyc_issue", "cycles issuing instruction blocks"),
      cycMem(this, "cyc_mem", "visible load/store latency cycles"),
      cycProtFill(this, "cyc_prot_fill",
                  "serializing protection-fill cycles on TLB misses"),
      cycProtCheck(this, "cyc_prot_check",
                   "per-access protection check cycles"),
      cycPermInstr(this, "cyc_perm_instr",
                   "cycles in SETPERM/WRPKRU instructions"),
      cycSyscall(this, "cyc_syscall", "cycles in attach/detach paths"),
      cycCtxSwitch(this, "cyc_ctx_switch",
                   "cycles processing context switches"),
      opCycles(this, "op_cycles", "cycles per workload operation"),
      ipc(this, "ipc", "instructions per cycle",
          [this]() {
              return cycles.value() == 0
                         ? 0.0
                         : instructions.value() / cycles.value();
          }),
      timeline(this, "timeline",
               "per-epoch counter deltas (cycles per epoch in "
               "epoch_cycles)"),
      config_(config), schemeKind_(scheme),
      events_(this, "events", config.eventRingCapacity)
{
    config_.topology.validate();
    events_.bindClock(&cycleCount_);
    const unsigned num_cores = config_.topology.numCores;
    if (num_cores == 1) {
        // The legacy flat machine: one TLB/cache pair directly under
        // the System, no bus — bit-identical to the pre-topology
        // model (tests/test_golden_k1.cc).
        tlb_ = std::make_unique<tlb::TlbHierarchy>(this, config_.tlb,
                                                   space_);
        caches_ = std::make_unique<mem::CacheHierarchy>(this,
                                                        config_.memory);
        scheme_ = arch::makeScheme(scheme, this, config_.prot,
                                   config_.topology, space_);
        scheme_->attachCore(0, tlb_.get());
    } else {
        for (unsigned k = 0; k < num_cores; ++k)
            cores_.push_back(std::make_unique<CoreContext>(
                this, k, config_, space_));
        scheme_ = arch::makeScheme(scheme, this, config_.prot,
                                   config_.topology, space_);
        for (unsigned k = 0; k < num_cores; ++k)
            scheme_->attachCore(k, cores_[k]->tlb.get());
        bus_ = std::make_unique<arch::ShootdownBus>(this,
                                                    config_.topology);
        for (unsigned k = 0; k < num_cores; ++k)
            bus_->attachCore(k, cores_[k]->tlb.get(),
                             &cores_[k]->ipisResponded,
                             &cores_[k]->ipisFiltered);
        bus_->setEventRing(&events_);
        scheme_->setShootdownBus(bus_.get());
    }
    scheme_->setEventRing(&events_);

    // The visible-latency formula depends only on the (integer)
    // translate+memory latency sum; precompute it so the hot loop
    // replaces an fp multiply + llround with a table load. Index 0 is
    // unreachable (L1 hit latency is at least one cycle).
    visTable_.resize(kVisTableSize);
    for (std::size_t lat = 1; lat < kVisTableSize; ++lat)
        visTable_[lat] = visibleCycles(static_cast<Cycles>(lat));

    if (config_.opClasses > 0) {
        // Request-latency tracking for open-loop server replays.
        // Queueing can push tail latencies far beyond the default
        // 24-bucket reach (2^22 cycles), so these histograms get 40
        // buckets (reach 2^38). They are created only on demand, so
        // legacy configs keep their pinned golden stats trees.
        opTrack_ = true;
        constexpr unsigned kLatBuckets = 40;
        opLat_ = std::make_unique<stats::Histogram>(
            this, "op_lat",
            "request latency: open-loop arrival to completion",
            kLatBuckets);
        opQueue_ = std::make_unique<stats::Histogram>(
            this, "op_queue",
            "queueing delay: arrival to service start", kLatBuckets);
        opLatClass_.reserve(config_.opClasses);
        opQueueClass_.reserve(config_.opClasses);
        for (unsigned i = 0; i < config_.opClasses; ++i) {
            opLatClass_.push_back(std::make_unique<stats::Histogram>(
                this, "op_lat_class" + std::to_string(i),
                "request latency of class " + std::to_string(i),
                kLatBuckets));
            opQueueClass_.push_back(std::make_unique<stats::Histogram>(
                this, "op_queue_class" + std::to_string(i),
                "queueing delay of class " + std::to_string(i),
                kLatBuckets));
        }
    }

    if (config_.slowRequestK > 0 && opTrack_) {
        // The tail-forensics layer rides on the tracked-op machinery,
        // so it exists only when both knobs are on. Like the latency
        // histograms, the digests are created on demand so legacy
        // configs keep their pinned golden stats trees.
        opForensics_ = true;
        slowDigest_ = std::make_unique<stats::SlowRequestDigest>(
            this, "slow_requests",
            "top-K slowest requests with per-bucket blame",
            config_.slowRequestK);
        slowDigestClass_.reserve(config_.opClasses);
        for (unsigned i = 0; i < config_.opClasses; ++i)
            slowDigestClass_.push_back(
                std::make_unique<stats::SlowRequestDigest>(
                    this, "slow_requests_class" + std::to_string(i),
                    "top-K slowest requests of class " +
                        std::to_string(i),
                    config_.slowRequestK));
    }

    if (config_.samplingEpochCycles != 0) {
        timeline.configure(config_.samplingEpochCycles,
                           config_.samplingMaxEpochs);
        timeline.track(cycles, "cycles");
        timeline.track(instructions, "instructions");
        timeline.track(memAccesses, "mem_accesses");
        timeline.track(operations, "operations");
        timeline.track(cycMem, "cyc_mem");
        timeline.track(cycProtFill, "cyc_prot_fill");
        timeline.track(cycProtCheck, "cyc_prot_check");
        timeline.track(cycPermInstr, "cyc_perm_instr");
        timeline.track(tlbs().l1().misses, "dtlb_l1_misses");
        scheme_->registerTimelineTracks(timeline);
    }
}

System::~System() = default;

void
System::finish()
{
    timeline.finalize(cycleCount_);
}

Cycles
System::makespanCycles() const
{
    if (cores_.empty())
        return cycleCount_;
    Cycles makespan = 0;
    for (const auto &core : cores_)
        makespan = std::max(makespan, core->cycleCount);
    return makespan;
}

void
System::doAccess(const trace::TraceRecord &rec)
{
    const auto type = rec.type == trace::RecordType::Load
                          ? AccessType::Read
                          : AccessType::Write;
    ++memAccesses;
    instructions += 1;
    if (rec.isPmoAccess())
        ++pmoAccesses;

    // 1. Translate (TLB hierarchy; protection fill runs inside).
    auto xlate = tlb_->translate(rec.tid, rec.addr);

    // 2. Domain permission check (parallel with the tag check on a
    //    real machine; serialized costs surface via extraCycles).
    arch::AccessContext ctx;
    ctx.tid = rec.tid;
    ctx.va = rec.addr;
    ctx.type = type;
    ctx.entry = xlate.entry;
    auto check = scheme_->checkAccess(ctx);
    if (!check.allowed)
        ++deniedAccesses;

    // 3. Data access. Denied accesses raise an exception instead of
    //    touching the cache; workloads are well behaved, so model the
    //    fault as a fixed pipeline-flush cost.
    Cycles mem_latency = config_.memory.l1.hitLatency;
    if (check.allowed) {
        const MemClass cls = rec.isPmoAccess() ? MemClass::Nvm
                                               : xlate.entry->memClass;
        mem_latency = caches_->access(rec.addr, type, cls).latency;
    }

    // The OoO core hides part of the above-L1 latency; protection
    // extras (walks, remaps, shootdowns, PTLB lookups) serialize.
    const double visible =
        1.0 + (1.0 - config_.memOverlap) *
                  static_cast<double>(xlate.latency + mem_latency - 1);
    addCycles(static_cast<Cycles>(std::llround(visible)), cycMem);
    addCycles(xlate.fillExtra, cycProtFill);
    addCycles(check.extraCycles, cycProtCheck);
}

void
System::doAccessMulti(const trace::TraceRecord &rec, CoreContext &core)
{
    const auto type = rec.type == trace::RecordType::Load
                          ? AccessType::Read
                          : AccessType::Write;
    ++memAccesses;
    ++core.memAccesses;
    instructions += 1;
    core.instructions += 1;
    if (rec.isPmoAccess())
        ++pmoAccesses;

    scheme_->setActiveCore(core.index);
    auto xlate = core.tlb->translate(rec.tid, rec.addr);

    arch::AccessContext ctx;
    ctx.tid = rec.tid;
    ctx.va = rec.addr;
    ctx.type = type;
    ctx.entry = xlate.entry;
    auto check = scheme_->checkAccess(ctx);
    if (!check.allowed)
        ++deniedAccesses;

    Cycles mem_latency = config_.memory.l1.hitLatency;
    if (check.allowed) {
        const MemClass cls = rec.isPmoAccess() ? MemClass::Nvm
                                               : xlate.entry->memClass;
        mem_latency = core.caches->access(rec.addr, type, cls).latency;
    }

    const Cycles lat = xlate.latency + mem_latency;
    const Cycles vis =
        lat < visTable_.size() ? visTable_[lat] : visibleCycles(lat);
    addCoreCycles(core, vis, cycMem);
    addCoreCycles(core, xlate.fillExtra, cycProtFill);
    addCoreCycles(core, check.extraCycles, cycProtCheck);
}

void
System::putMulti(const trace::TraceRecord &rec)
{
    using trace::RecordType;
    // Threads are pinned: thread t runs on core t % K and never
    // migrates, so every record is core-affine by its tid.
    const unsigned num_cores = config_.topology.numCores;
    switch (rec.type) {
      case RecordType::InstBlock: {
        CoreContext &core = *cores_[rec.tid % num_cores];
        instructions += static_cast<double>(rec.aux);
        core.instructions += static_cast<double>(rec.aux);
        const Cycles c = (rec.aux + config_.issueWidth - 1) /
                         config_.issueWidth;
        addCoreCycles(core, c, cycIssue);
        break;
      }
      case RecordType::Load:
      case RecordType::Store:
        doAccessMulti(rec, *cores_[rec.tid % num_cores]);
        break;
      case RecordType::SetPerm: {
        CoreContext &core = *cores_[rec.tid % num_cores];
        scheme_->setActiveCore(core.index);
        instructions += 1;
        core.instructions += 1;
        addCoreCycles(core, scheme_->setPerm(rec.tid, rec.aux,
                                             rec.perm()),
                      cycPermInstr);
        break;
      }
      case RecordType::Wrpkru: {
        CoreContext &core = *cores_[rec.tid % num_cores];
        scheme_->setActiveCore(core.index);
        instructions += 1;
        core.instructions += 1;
        addCoreCycles(core, scheme_->wrpkruRaw(
                                rec.tid,
                                static_cast<ProtKey>(rec.aux),
                                rec.perm()),
                      cycPermInstr);
        break;
      }
      case RecordType::Attach: {
        CoreContext &core = *cores_[rec.tid % num_cores];
        scheme_->setActiveCore(core.index);
        tlb::Region region;
        region.base = rec.addr;
        region.size = rec.value;
        region.domain = rec.aux;
        region.pagePerm = rec.perm();
        region.memClass = MemClass::Nvm;
        region.pageSize = rec.pageSize();
        space_.map(region);
        addCoreCycles(core,
                      scheme_->attach(rec.tid, rec.aux, rec.addr,
                                      rec.value, rec.perm()),
                      cycSyscall);
        break;
      }
      case RecordType::Detach: {
        CoreContext &core = *cores_[rec.tid % num_cores];
        scheme_->setActiveCore(core.index);
        addCoreCycles(core, scheme_->detach(rec.tid, rec.aux),
                      cycSyscall);
        space_.unmapDomain(rec.aux);
        break;
      }
      case RecordType::ThreadSwitch: {
        // A thread-switch marker is core-affine scheduling: the named
        // thread is (re)scheduled on its home core. If it is already
        // running there the marker is a no-op — the other cores keep
        // executing undisturbed.
        const ThreadId to = rec.aux;
        CoreContext &core = *cores_[to % num_cores];
        if (core.curTid != to) {
            scheme_->setActiveCore(core.index);
            ++core.ctxSwitches;
            addCoreCycles(core, scheme_->contextSwitch(core.curTid, to),
                          cycCtxSwitch);
            core.curTid = to;
        }
        break;
      }
      case RecordType::OpBegin: {
        opStart_ = cycleCount_;
        opInFlight_ = true;
        if (opTrack_ && rec.hasArrival()) {
            CoreContext &core = *cores_[rec.tid % num_cores];
            beginTrackedOp(rec, core.cycleCount, core.idleSkew);
            if (opForensics_)
                beginForensics(rec, bucketCycles());
        }
        break;
      }
      case RecordType::OpEnd:
        ++operations;
        if (opInFlight_) {
            opCycles.sample(cycleCount_ - opStart_);
            events_.post(trace::EventKind::TxnCommit, rec.tid,
                         static_cast<std::uint32_t>(rec.aux),
                         cycleCount_ - opStart_);
            opInFlight_ = false;
        }
        if (opHasArrival_) {
            CoreContext &core = *cores_[rec.tid % num_cores];
            if (opForensics_)
                endForensics(rec, core.cycleCount, core.idleSkew,
                             bucketCycles());
            endTrackedOp(core.cycleCount, core.idleSkew);
        }
        break;
    }
}

void
System::put(const trace::TraceRecord &rec)
{
    using trace::RecordType;
    if (config_.topology.numCores > 1) {
        putMulti(rec);
        timeline.tick(cycleCount_);
        return;
    }
    switch (rec.type) {
      case RecordType::InstBlock: {
        instructions += static_cast<double>(rec.aux);
        const Cycles c = (rec.aux + config_.issueWidth - 1) /
                         config_.issueWidth;
        addCycles(c, cycIssue);
        break;
      }
      case RecordType::Load:
      case RecordType::Store:
        doAccess(rec);
        break;
      case RecordType::SetPerm:
        instructions += 1;
        addCycles(scheme_->setPerm(rec.tid, rec.aux, rec.perm()),
                  cycPermInstr);
        break;
      case RecordType::Wrpkru:
        instructions += 1;
        addCycles(scheme_->wrpkruRaw(
                      rec.tid, static_cast<ProtKey>(rec.aux),
                      rec.perm()),
                  cycPermInstr);
        break;
      case RecordType::Attach: {
        tlb::Region region;
        region.base = rec.addr;
        region.size = rec.value;
        region.domain = rec.aux;
        region.pagePerm = rec.perm();
        region.memClass = MemClass::Nvm;
        region.pageSize = rec.pageSize();
        space_.map(region);
        addCycles(scheme_->attach(rec.tid, rec.aux, rec.addr, rec.value,
                                  rec.perm()),
                  cycSyscall);
        break;
      }
      case RecordType::Detach:
        addCycles(scheme_->detach(rec.tid, rec.aux), cycSyscall);
        space_.unmapDomain(rec.aux);
        break;
      case RecordType::ThreadSwitch:
        addCycles(scheme_->contextSwitch(currentThread_, rec.aux),
                  cycCtxSwitch);
        currentThread_ = rec.aux;
        break;
      case RecordType::OpBegin:
        opStart_ = cycleCount_;
        opInFlight_ = true;
        if (opTrack_ && rec.hasArrival()) {
            beginTrackedOp(rec, cycleCount_, idleSkew_);
            if (opForensics_)
                beginForensics(rec, bucketCycles());
        }
        break;
      case RecordType::OpEnd:
        ++operations;
        if (opInFlight_) {
            opCycles.sample(cycleCount_ - opStart_);
            events_.post(trace::EventKind::TxnCommit, rec.tid,
                         static_cast<std::uint32_t>(rec.aux),
                         cycleCount_ - opStart_);
            opInFlight_ = false;
        }
        if (opHasArrival_) {
            if (opForensics_)
                endForensics(rec, cycleCount_, idleSkew_,
                             bucketCycles());
            endTrackedOp(cycleCount_, idleSkew_);
        }
        break;
    }
    timeline.tick(cycleCount_);
}

void
System::beginTrackedOp(const trace::TraceRecord &rec, Cycles cycle_now,
                       Cycles &idle_skew)
{
    Cycles virt = cycle_now + idle_skew;
    if (!opBaseSet_) {
        opBaseSet_ = true;
        opArrivalBase_ = virt;
    }
    const Cycles arrival = opArrivalBase_ + rec.addr;
    if (virt < arrival) {
        // The server caught up with the arrival process: the core
        // idles until the stamped arrival. The jump lives only in the
        // idle offset — cycleCount_ and the attribution buckets are
        // untouched, so cycle sums and bit-identity with untracked
        // replays are preserved.
        idle_skew += arrival - virt;
        virt = arrival;
    }
    opArrival_ = arrival;
    opHasArrival_ = true;
    opClassCur_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        rec.value, config_.opClasses - 1));
    const Cycles qdelay = virt - arrival;
    opQueueCur_ = qdelay;
    opQueue_->sample(qdelay);
    opQueueClass_[opClassCur_]->sample(qdelay);
}

std::array<std::uint64_t, stats::kSlowDigestBuckets>
System::bucketCycles() const
{
    // Bucket values are integer cycle counts held in double Scalars;
    // they stay far below 2^53, so the casts are exact.
    return {static_cast<std::uint64_t>(cycIssue.value()),
            static_cast<std::uint64_t>(cycMem.value()),
            static_cast<std::uint64_t>(cycProtFill.value()),
            static_cast<std::uint64_t>(cycProtCheck.value()),
            static_cast<std::uint64_t>(cycPermInstr.value()),
            static_cast<std::uint64_t>(cycSyscall.value()),
            static_cast<std::uint64_t>(cycCtxSwitch.value())};
}

void
System::addPendingBuckets(
    std::array<std::uint64_t, stats::kSlowDigestBuckets> &snap,
    const BatchCounters &d)
{
    snap[0] += d.cycIssue;
    snap[1] += d.cycMem;
    snap[2] += d.cycProtFill;
    snap[3] += d.cycProtCheck;
    snap[4] += d.cycPermInstr;
    snap[5] += d.cycSyscall;
    snap[6] += d.cycCtxSwitch;
}

void
System::beginForensics(
    const trace::TraceRecord &rec,
    const std::array<std::uint64_t, stats::kSlowDigestBuckets> &snap)
{
    reqId_ = ++reqNextId_;
    reqBegin_ = cycleCount_;
    reqDomain_ = rec.aux;
    reqRingMark_ = events_.lastId();
    reqSnap_ = snap;
    // Every event posted until endForensics() carries this request's
    // id — the causal tag the blame layer and Perfetto flows use.
    events_.setCurrentRequest(reqId_);
}

void
System::endForensics(
    const trace::TraceRecord &rec, Cycles cycle_now, Cycles idle_skew,
    const std::array<std::uint64_t, stats::kSlowDigestBuckets> &snap)
{
    stats::SlowRequestEntry e;
    e.id = reqId_;
    e.tid = rec.tid;
    e.domain = reqDomain_;
    e.cls = opClassCur_;
    e.arrival = opArrival_;
    e.latency = cycle_now + idle_skew - opArrival_;
    e.queue = opQueueCur_;
    e.begin = reqBegin_;
    e.commit = cycleCount_;
    std::uint64_t service = 0;
    for (unsigned b = 0; b < stats::kSlowDigestBuckets; ++b) {
        e.buckets[b] = snap[b] - reqSnap_[b];
        service += e.buckets[b];
    }
    // latency = queue + service exactly (the idle skew is constant
    // while an op is in flight, so the virtual-clock delta equals the
    // attribution-bucket delta); residue stays 0 unless that
    // partition invariant is ever violated — then it shows up here
    // instead of being silently absorbed.
    e.residue = e.latency - e.queue - service;

    // Collect the causal chain: ring events posted inside the window
    // have ids above the OpBegin mark. Scan newest-first so the cost
    // is O(window), not O(ring capacity), then restore chronological
    // order. The request's own commit marker is not blame.
    std::vector<stats::SlowBlamedEvent> chain;
    for (std::size_t i = events_.size(); i-- > 0;) {
        const trace::Event &ev = events_.at(i);
        if (ev.id <= reqRingMark_)
            break;
        if (ev.kind == trace::EventKind::TxnCommit)
            continue;
        stats::SlowBlamedEvent b;
        b.id = ev.id;
        b.kind = trace::eventKindName(ev.kind);
        b.cycle = ev.cycle;
        b.tid = ev.tid;
        b.arg = ev.arg;
        b.value = ev.value;
        chain.push_back(std::move(b));
    }
    std::reverse(chain.begin(), chain.end());
    if (chain.size() > kMaxBlamedEvents) {
        e.eventsDropped = chain.size() - kMaxBlamedEvents;
        chain.resize(kMaxBlamedEvents);
    }
    e.events = std::move(chain);

    slowDigest_->offer(e);
    slowDigestClass_[e.cls]->offer(e);
    events_.setCurrentRequest(0);
    reqId_ = 0;
}

void
System::endTrackedOp(Cycles cycle_now, Cycles idle_skew)
{
    const Cycles lat = cycle_now + idle_skew - opArrival_;
    opLat_->sample(lat);
    opLatClass_[opClassCur_]->sample(lat);
    opHasArrival_ = false;
}

Cycles
System::visibleCycles(Cycles lat) const
{
    // Must stay textually identical to the legacy doAccess() formula:
    // the determinism tests compare batch and per-record replays
    // bit for bit.
    const double visible =
        1.0 + (1.0 - config_.memOverlap) * static_cast<double>(lat - 1);
    return static_cast<Cycles>(std::llround(visible));
}

void
System::flushBatch(BatchCounters &d)
{
    const std::uint64_t total_cycles =
        d.cycIssue + d.cycMem + d.cycProtFill + d.cycProtCheck +
        d.cycPermInstr + d.cycSyscall + d.cycCtxSwitch;
    cycles += static_cast<double>(total_cycles);
    cycIssue += static_cast<double>(d.cycIssue);
    cycMem += static_cast<double>(d.cycMem);
    cycProtFill += static_cast<double>(d.cycProtFill);
    cycProtCheck += static_cast<double>(d.cycProtCheck);
    cycPermInstr += static_cast<double>(d.cycPermInstr);
    cycSyscall += static_cast<double>(d.cycSyscall);
    cycCtxSwitch += static_cast<double>(d.cycCtxSwitch);
    instructions += static_cast<double>(d.instructions);
    memAccesses += static_cast<double>(d.memAccesses);
    pmoAccesses += static_cast<double>(d.pmoAccesses);
    operations += static_cast<double>(d.operations);
    deniedAccesses += static_cast<double>(d.denied);
    d = BatchCounters{};
}

void
System::setComponentStatsDeferred(bool defer)
{
    if (config_.topology.numCores == 1) {
        tlb_->setStatsDeferred(defer);
        caches_->setStatsDeferred(defer);
    } else {
        for (auto &core : cores_) {
            core->tlb->setStatsDeferred(defer);
            core->caches->setStatsDeferred(defer);
        }
    }
    scheme_->setStatsDeferred(defer);
}

void
System::flushComponentStats()
{
    if (config_.topology.numCores == 1) {
        tlb_->flushDeferredStats();
        caches_->flushDeferredStats();
    } else {
        for (auto &core : cores_) {
            core->tlb->flushDeferredStats();
            core->caches->flushDeferredStats();
        }
    }
    scheme_->flushDeferredStats();
}

void
System::replayBatch(std::span<const trace::TraceRecord> records)
{
    using trace::RecordType;

    if (config_.topology.numCores > 1) {
        // Multi-core replay interleaves the per-core streams record
        // by record; the single-core batch fast path below stays
        // untouched so K=1 remains bit-identical to the legacy loop.
        // Component counters can still be deferred — but only when the
        // timeline is off, since putMulti ticks after every record and
        // an epoch snapshot must see exact component values.
        const bool defer = !timeline.enabled();
        if (defer)
            setComponentStatsDeferred(true);
        for (const trace::TraceRecord &rec : records) {
            putMulti(rec);
            timeline.tick(cycleCount_);
        }
        if (defer)
            setComponentStatsDeferred(false);
        return;
    }

    // Invariants hoisted out of the record loop.
    tlb::TlbHierarchy *const tlb = tlb_.get();
    mem::CacheHierarchy *const caches = caches_.get();
    arch::ProtectionScheme *const scheme = scheme_.get();
    const Cycles l1_hit = config_.memory.l1.hitLatency;
    const std::uint32_t issue_width = config_.issueWidth;
    const bool trivial_check = scheme->alwaysAllows();
    const arch::ProtectionScheme::FastCheckFn check_fn =
        scheme->fastCheck() ? scheme->fastCheck() : &virtualCheck;

    BatchCounters d;
    std::uint64_t boundary = timeline.nextBoundary();
    setComponentStatsDeferred(true);

    for (const trace::TraceRecord &rec : records) {
        switch (rec.type) {
          case RecordType::Load:
          case RecordType::Store: {
            const auto type = rec.type == RecordType::Load
                                  ? AccessType::Read
                                  : AccessType::Write;
            const bool pmo = rec.flags & trace::kFlagPmo;
            ++d.memAccesses;
            ++d.instructions;
            d.pmoAccesses += pmo ? 1 : 0;

            const auto xlate = tlb->translate(rec.tid, rec.addr);

            bool allowed = true;
            Cycles check_extra = 0;
            if (!trivial_check) {
                arch::AccessContext ctx;
                ctx.tid = rec.tid;
                ctx.va = rec.addr;
                ctx.type = type;
                ctx.entry = xlate.entry;
                const auto check = check_fn(*scheme, ctx);
                allowed = check.allowed;
                check_extra = check.extraCycles;
                if (!allowed)
                    ++d.denied;
            }

            Cycles mem_latency = l1_hit;
            if (allowed) {
                const MemClass cls =
                    pmo ? MemClass::Nvm : xlate.entry->memClass;
                mem_latency = caches->access(rec.addr, type, cls).latency;
            }

            const Cycles lat = xlate.latency + mem_latency;
            const Cycles vis = lat < kVisTableSize ? visTable_[lat]
                                                   : visibleCycles(lat);
            cycleCount_ += vis + xlate.fillExtra + check_extra;
            d.cycMem += vis;
            d.cycProtFill += xlate.fillExtra;
            d.cycProtCheck += check_extra;
            break;
          }
          case RecordType::InstBlock: {
            d.instructions += rec.aux;
            const Cycles c = (rec.aux + issue_width - 1) / issue_width;
            cycleCount_ += c;
            d.cycIssue += c;
            break;
          }
          case RecordType::SetPerm: {
            ++d.instructions;
            const Cycles c = scheme->setPerm(rec.tid, rec.aux,
                                             rec.perm());
            cycleCount_ += c;
            d.cycPermInstr += c;
            break;
          }
          case RecordType::Wrpkru: {
            ++d.instructions;
            const Cycles c = scheme->wrpkruRaw(
                rec.tid, static_cast<ProtKey>(rec.aux), rec.perm());
            cycleCount_ += c;
            d.cycPermInstr += c;
            break;
          }
          case RecordType::Attach: {
            tlb::Region region;
            region.base = rec.addr;
            region.size = rec.value;
            region.domain = rec.aux;
            region.pagePerm = rec.perm();
            region.memClass = MemClass::Nvm;
            region.pageSize = rec.pageSize();
            space_.map(region);
            const Cycles c = scheme->attach(rec.tid, rec.aux, rec.addr,
                                            rec.value, rec.perm());
            cycleCount_ += c;
            d.cycSyscall += c;
            break;
          }
          case RecordType::Detach: {
            const Cycles c = scheme->detach(rec.tid, rec.aux);
            cycleCount_ += c;
            d.cycSyscall += c;
            space_.unmapDomain(rec.aux);
            break;
          }
          case RecordType::ThreadSwitch: {
            const Cycles c = scheme->contextSwitch(currentThread_,
                                                   rec.aux);
            cycleCount_ += c;
            d.cycCtxSwitch += c;
            currentThread_ = rec.aux;
            break;
          }
          case RecordType::OpBegin:
            opStart_ = cycleCount_;
            opInFlight_ = true;
            if (opTrack_ && rec.hasArrival()) {
                beginTrackedOp(rec, cycleCount_, idleSkew_);
                if (opForensics_) {
                    // The batch loop's Scalars lag behind by the
                    // deferred counters; fold them in so the snapshot
                    // equals what the per-record path would see.
                    auto snap = bucketCycles();
                    addPendingBuckets(snap, d);
                    beginForensics(rec, snap);
                }
            }
            break;
          case RecordType::OpEnd:
            ++d.operations;
            if (opInFlight_) {
                opCycles.sample(cycleCount_ - opStart_);
                events_.post(trace::EventKind::TxnCommit, rec.tid,
                             static_cast<std::uint32_t>(rec.aux),
                             cycleCount_ - opStart_);
                opInFlight_ = false;
            }
            if (opHasArrival_) {
                if (opForensics_) {
                    auto snap = bucketCycles();
                    addPendingBuckets(snap, d);
                    endForensics(rec, cycleCount_, idleSkew_, snap);
                }
                endTrackedOp(cycleCount_, idleSkew_);
            }
            break;
        }

        // The legacy path ticks the timeline after every record; the
        // tick only has an effect once cycleCount_ passes the next
        // epoch boundary, so an explicit boundary compare here is
        // equivalent — provided the deferred counters are flushed
        // first, so the epoch snapshot sees exactly the per-record
        // Scalar values.
        if (cycleCount_ >= boundary) [[unlikely]] {
            flushBatch(d);
            flushComponentStats();
            timeline.tick(cycleCount_);
            boundary = timeline.nextBoundary();
        }
    }
    flushBatch(d);
    setComponentStatsDeferred(false);
}

} // namespace pmodv::core
