/**
 * @file
 * Multi-scheme replay: fan one trace out to several Systems (one per
 * protection scheme) in a single pass, and compute the relative
 * overheads the paper reports.
 */

#ifndef PMODV_CORE_REPLAY_HH
#define PMODV_CORE_REPLAY_HH

#include <memory>
#include <span>
#include <vector>

#include "core/system.hh"
#include "trace/buffer.hh"

namespace pmodv::core
{

/** Replays one trace under many schemes simultaneously. */
class MultiReplay
{
  public:
    MultiReplay(const SimConfig &config,
                const std::vector<arch::SchemeKind> &schemes);

    /** The sink to feed trace records into (fan-out to all systems). */
    trace::TraceSink &sink() { return fanout_; }

    /** Also counts records/switches while fanning out. */
    const trace::CountingSink &counter() const { return counter_; }

    /**
     * Replay an immutable trace buffer through every system via the
     * batch engine (System::replayBatch), folding the buffer's
     * precomputed summary into the counter. The preferred entry
     * point: capture once, share the buffer across replays.
     */
    void replayBuffer(const trace::TraceBuffer &buffer);

    /** As replayBuffer(), for records without a TraceBuffer. */
    void replayBatch(std::span<const trace::TraceRecord> records);

    System &system(arch::SchemeKind kind);
    const System &system(arch::SchemeKind kind) const;

    std::vector<System *> systems();

    /**
     * Execution-time overhead of @p kind relative to @p baseline,
     * as a fraction (0.04 = 4 % slower).
     */
    double overheadOver(arch::SchemeKind kind,
                        arch::SchemeKind baseline) const;

  private:
    std::vector<std::unique_ptr<System>> systems_;
    trace::CountingSink counter_;
    trace::FanoutSink fanout_;
};

} // namespace pmodv::core

#endif // PMODV_CORE_REPLAY_HH
