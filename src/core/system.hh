/**
 * @file
 * The replay pipeline: one System owns a complete simulated machine
 * (address space, TLBs, caches, memory, protection scheme) and
 * consumes a trace, accumulating cycles. It is a TraceSink, so one
 * captured trace can be fanned out to several Systems — one per
 * scheme — in a single pass, the way the paper replays one Pin trace
 * under every mechanism.
 */

#ifndef PMODV_CORE_SYSTEM_HH
#define PMODV_CORE_SYSTEM_HH

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/factory.hh"
#include "arch/shootdown_bus.hh"
#include "core/config.hh"
#include "mem/hierarchy.hh"
#include "stats/slow_digest.hh"
#include "stats/stats.hh"
#include "stats/timeseries.hh"
#include "tlb/hierarchy.hh"
#include "trace/event_ring.hh"
#include "trace/sinks.hh"

namespace pmodv::core
{

/**
 * Private replay state of one core on a multi-core machine: its own
 * TLB hierarchy, caches, running thread and cycle attribution. The
 * PMO/domain registry, page tables, DTT/DRT, key-allocation state and
 * shootdown bus stay shared, inside the scheme / System. Single-core
 * machines skip this wrapper entirely and keep the legacy flat
 * layout, which is what the golden-replay tests pin down.
 */
class CoreContext : public stats::Group
{
  public:
    CoreContext(stats::Group *parent, unsigned idx,
                const SimConfig &config, tlb::AddressSpace &space);

    stats::Scalar cycles;        ///< Cycles accumulated on this core.
    stats::Scalar instructions;  ///< Instructions issued here.
    stats::Scalar memAccesses;   ///< Loads + stores replayed here.
    stats::Scalar ctxSwitches;   ///< Context switches taken here.
    stats::Scalar ipisResponded; ///< Shootdown IPIs answered w/ stale entries.
    stats::Scalar ipisFiltered;  ///< Shootdown IPIs with nothing to flush.

    std::unique_ptr<tlb::TlbHierarchy> tlb;
    std::unique_ptr<mem::CacheHierarchy> caches;

    /** This core's id (== its position in System's core list). */
    const arch::CoreId index;
    /** The thread currently scheduled on this core. */
    ThreadId curTid = 0;
    /** This core's private cycle counter (makespan input). */
    Cycles cycleCount = 0;
    /**
     * Open-loop idle offset: cycles this core's virtual clock jumped
     * forward waiting for the next stamped arrival (request-latency
     * tracking only; never charged to any attribution bucket).
     */
    Cycles idleSkew = 0;
};

/** A full machine replaying a trace under one protection scheme. */
class System : public stats::Group, public trace::TraceSink
{
  public:
    /**
     * Build a pipeline. @p name becomes the stats prefix; @p scheme
     * selects the protection mechanism.
     */
    System(const SimConfig &config, arch::SchemeKind scheme,
           std::string name = "");
    ~System() override;

    // -- TraceSink --
    void put(const trace::TraceRecord &rec) override;
    /** Ends the replay: closes the timeline's trailing epoch. */
    void finish() override;

    /**
     * Replay a whole batch of records through the devirtualized hot
     * loop. Produces exactly the same cycles, stats tree, event ring
     * and timeline as feeding each record through put(): the loop
     * hoists config/scheme lookups, skips or devirtualizes the
     * per-access protection check (ProtectionScheme::fastCheck) and
     * defers the System's own Scalar updates into plain integer
     * accumulators, flushing them before every timeline epoch
     * boundary and at the end of the batch. All deferred quantities
     * are integers well below 2^53, so the batched double adds are
     * bit-identical to the per-record ones.
     *
     * Call finish() after the last batch, exactly as with put().
     */
    void replayBatch(std::span<const trace::TraceRecord> records);

    /** Total cycles accumulated so far (summed over all cores). */
    Cycles totalCycles() const { return cycleCount_; }

    /**
     * Wall-clock makespan in cycles: the busiest core's counter on a
     * multi-core machine, the plain total on a single core.
     */
    Cycles makespanCycles() const;

    /** Simulated seconds of makespan at the configured clock. */
    double seconds() const { return config_.secondsFor(makespanCycles()); }

    const SimConfig &config() const { return config_; }
    arch::SchemeKind schemeKind() const { return schemeKind_; }
    arch::ProtectionScheme &scheme() { return *scheme_; }
    const arch::ProtectionScheme &scheme() const { return *scheme_; }
    tlb::TlbHierarchy &tlbs() { return numCores() == 1 ? *tlb_ : *cores_[0]->tlb; }
    mem::CacheHierarchy &caches() { return numCores() == 1 ? *caches_ : *cores_[0]->caches; }
    tlb::AddressSpace &addressSpace() { return space_; }

    /** Core count of this machine. */
    unsigned numCores() const { return config_.topology.numCores; }

    /** Core @p k's private state (multi-core machines only). */
    CoreContext &coreAt(arch::CoreId k) { return *cores_.at(k); }

    /** The IPI broadcast fabric (null on single-core machines). */
    arch::ShootdownBus *shootdownBus() { return bus_.get(); }
    const arch::ShootdownBus *shootdownBus() const { return bus_.get(); }

    /** The protection layer's flight recorder. */
    trace::EventRing &events() { return events_; }
    const trace::EventRing &events() const { return events_; }

    /** Drain the event ring (oldest first; the ring empties). */
    std::vector<trace::Event> drainEvents() { return events_.drain(); }

    // Replay statistics.
    stats::Scalar cycles;
    stats::Scalar instructions;
    stats::Scalar memAccesses;
    stats::Scalar pmoAccesses;
    stats::Scalar operations;
    stats::Scalar deniedAccesses;

    // Where the cycles went. These buckets partition `cycles`: every
    // addCycles() call names exactly one of them, so their sum always
    // equals the total (asserted by tools/check_stats_schema.py).
    stats::Scalar cycIssue;     ///< Instruction issue (InstBlock).
    stats::Scalar cycMem;       ///< Visible load/store latency.
    stats::Scalar cycProtFill;  ///< Protection fill work on TLB misses.
    stats::Scalar cycProtCheck; ///< Per-access protection checks.
    stats::Scalar cycPermInstr; ///< SETPERM/WRPKRU instructions.
    stats::Scalar cycSyscall;   ///< Attach/detach paths.
    stats::Scalar cycCtxSwitch; ///< Context-switch processing.

    stats::Formula ipc;
    /** Cycles per workload operation (OpBegin..OpEnd), log2 buckets. */
    stats::Histogram opCycles;

    /**
     * Request-latency histograms, created only when
     * config.opClasses > 0 (open-loop server replays); null
     * otherwise, so legacy stats trees keep their pinned shape.
     * op_lat measures stamped arrival -> completion (service time
     * plus queueing), op_queue measures arrival -> service start.
     */
    const stats::Histogram *opLatHist() const { return opLat_.get(); }
    const stats::Histogram *opQueueHist() const { return opQueue_.get(); }
    /** Per-class variants (class i < config.opClasses, else null). */
    const stats::Histogram *
    opLatClassHist(unsigned i) const
    {
        return i < opLatClass_.size() ? opLatClass_[i].get() : nullptr;
    }
    const stats::Histogram *
    opQueueClassHist(unsigned i) const
    {
        return i < opQueueClass_.size() ? opQueueClass_[i].get()
                                        : nullptr;
    }

    /**
     * True when the per-request tail-forensics layer is active
     * (config.slowRequestK > 0 and opClasses > 0). When off, stats
     * trees, event rings and JSON exports are bit-identical to a
     * build without the layer.
     */
    bool forensicsEnabled() const { return opForensics_; }

    /** Aggregate top-K slow-request digest (null unless forensics). */
    const stats::SlowRequestDigest *slowDigest() const
    {
        return slowDigest_.get();
    }
    /** Per-class digest (class i < config.opClasses, else null). */
    const stats::SlowRequestDigest *
    slowDigestClass(unsigned i) const
    {
        return i < slowDigestClass_.size() ? slowDigestClass_[i].get()
                                           : nullptr;
    }

    /**
     * Epoch-sampled counter trajectory (config.samplingEpochCycles; off
     * by default). Tracks the replay counters, the cycle-attribution
     * buckets, L1 TLB misses and the scheme's eviction/shootdown
     * counters — plus whatever the scheme adds via its
     * registerTimelineTracks() hook (DTTLB/PTLB misses).
     */
    stats::TimeSeries timeline;

  private:
    /**
     * Integer accumulators for the System's own counters, filled by
     * the replayBatch loop instead of bumping the Scalars per record.
     */
    struct BatchCounters
    {
        std::uint64_t instructions = 0;
        std::uint64_t memAccesses = 0;
        std::uint64_t pmoAccesses = 0;
        std::uint64_t operations = 0;
        std::uint64_t denied = 0;
        std::uint64_t cycIssue = 0;
        std::uint64_t cycMem = 0;
        std::uint64_t cycProtFill = 0;
        std::uint64_t cycProtCheck = 0;
        std::uint64_t cycPermInstr = 0;
        std::uint64_t cycSyscall = 0;
        std::uint64_t cycCtxSwitch = 0;
    };

    void doAccess(const trace::TraceRecord &rec);
    void addCycles(Cycles c, stats::Scalar &bucket)
    {
        cycleCount_ += c;
        cycles += static_cast<double>(c);
        bucket += static_cast<double>(c);
    }

    /** Charge @p c to @p core's clock and the machine-wide buckets. */
    void addCoreCycles(CoreContext &core, Cycles c, stats::Scalar &bucket)
    {
        cycleCount_ += c;
        core.cycleCount += c;
        cycles += static_cast<double>(c);
        core.cycles += static_cast<double>(c);
        bucket += static_cast<double>(c);
    }

    /** Multi-core record dispatch (put() and replayBatch() at K>1). */
    void putMulti(const trace::TraceRecord &rec);
    void doAccessMulti(const trace::TraceRecord &rec, CoreContext &core);

    /** Drain @p d into the Scalars (and reset it). */
    void flushBatch(BatchCounters &d);

    /**
     * Switch every owned component (TLBs, caches, memory, scheme) in
     * or out of deferred-stats mode. Disabling flushes any pending
     * counts, so toggling is always exact.
     */
    void setComponentStatsDeferred(bool defer);

    /**
     * Flush the components' deferred counters into their Scalars
     * without leaving deferred mode. Must run before every
     * timeline.tick() so epoch snapshots see exact values.
     */
    void flushComponentStats();

    /** The visible-latency formula (slow path / table filler). */
    Cycles visibleCycles(Cycles lat) const;

    /**
     * Request-latency tracking on a stamped OpBegin: advance the
     * serving core's virtual clock (@p cycle_now + @p idle_skew) to
     * the stamped arrival if the core is ahead of the arrival
     * process (the jump moves only the idle offset — no attribution
     * bucket is charged), then sample the queueing delay. The three
     * dispatch paths (put, putMulti, replayBatch) all funnel here so
     * their outputs stay bit-identical.
     */
    void beginTrackedOp(const trace::TraceRecord &rec, Cycles cycle_now,
                        Cycles &idle_skew);

    /** Sample arrival->completion latency at a stamped op's OpEnd. */
    void endTrackedOp(Cycles cycle_now, Cycles idle_skew);

    /** Current values of the 7 attribution buckets, digest order. */
    std::array<std::uint64_t, stats::kSlowDigestBuckets>
    bucketCycles() const;

    /** Fold @p d's not-yet-flushed bucket cycles into @p snap (the
     *  batch loop's Scalars lag behind by exactly these). */
    static void addPendingBuckets(
        std::array<std::uint64_t, stats::kSlowDigestBuckets> &snap,
        const BatchCounters &d);

    /**
     * Open a request blame window at a stamped OpBegin (forensics
     * only): assign the request id, mark the event ring so in-window
     * events can be identified, tag subsequently posted events with
     * the id, and remember the bucket snapshot @p snap.
     */
    void beginForensics(const trace::TraceRecord &rec,
                        const std::array<std::uint64_t,
                                         stats::kSlowDigestBuckets> &snap);

    /**
     * Close the blame window at the op's OpEnd: compute the request's
     * bucket breakdown (snap - the OpBegin snapshot), its latency
     * partition (queue + service + residue), collect the in-window
     * event chain from the ring, and offer the entry to the digests.
     */
    void endForensics(const trace::TraceRecord &rec, Cycles cycle_now,
                      Cycles idle_skew,
                      const std::array<std::uint64_t,
                                       stats::kSlowDigestBuckets> &snap);

    SimConfig config_;
    arch::SchemeKind schemeKind_;
    trace::EventRing events_;
    tlb::AddressSpace space_;
    /** Single-core layout: TLB/caches directly under the System. */
    std::unique_ptr<tlb::TlbHierarchy> tlb_;
    std::unique_ptr<mem::CacheHierarchy> caches_;
    /** Multi-core layout: one CoreContext per core instead. */
    std::vector<std::unique_ptr<CoreContext>> cores_;
    std::unique_ptr<arch::ShootdownBus> bus_;
    std::unique_ptr<arch::ProtectionScheme> scheme_;
    Cycles cycleCount_ = 0;
    ThreadId currentThread_ = 0;
    /** visTable_[lat] = visible cycles for translate+mem latency lat. */
    std::vector<Cycles> visTable_;
    /** Cycle count at the most recent OpBegin (op in flight if set). */
    Cycles opStart_ = 0;
    bool opInFlight_ = false;

    // ---- request-latency tracking (config.opClasses > 0) ----
    /** True when the op_lat/op_queue histograms exist. */
    bool opTrack_ = false;
    /** Single-core idle offset (multi-core uses CoreContext's). */
    Cycles idleSkew_ = 0;
    /** Arrival stamp / class of the in-flight tracked op. */
    Cycles opArrival_ = 0;
    std::uint32_t opClassCur_ = 0;
    bool opHasArrival_ = false;
    /**
     * Virtual-clock origin of the arrival process, latched at the
     * first stamped OpBegin: capture-time stamps are relative to the
     * moment the server finishes setup and starts serving, so the
     * (scheme-dependent) setup cost does not masquerade as queueing.
     */
    Cycles opArrivalBase_ = 0;
    bool opBaseSet_ = false;
    std::unique_ptr<stats::Histogram> opLat_;
    std::unique_ptr<stats::Histogram> opQueue_;
    std::vector<std::unique_ptr<stats::Histogram>> opLatClass_;
    std::vector<std::unique_ptr<stats::Histogram>> opQueueClass_;

    // ---- tail forensics (config.slowRequestK > 0, opClasses > 0) ----
    /** True when the slow-request digests exist. */
    bool opForensics_ = false;
    /** Queueing delay of the in-flight tracked op (beginTrackedOp). */
    Cycles opQueueCur_ = 0;
    /** Monotone tracked-request counter (ids are 1-based). */
    std::uint64_t reqNextId_ = 0;
    /** Id of the open blame window (0 = none). */
    std::uint64_t reqId_ = 0;
    /** Global cycle count at the window's OpBegin. */
    Cycles reqBegin_ = 0;
    /** Primary domain stamped on the window's OpBegin (aux field). */
    std::uint64_t reqDomain_ = 0;
    /** Ring lastId() at OpBegin: in-window events have larger ids. */
    std::uint64_t reqRingMark_ = 0;
    /** Attribution-bucket snapshot taken at OpBegin. */
    std::array<std::uint64_t, stats::kSlowDigestBuckets> reqSnap_{};
    std::unique_ptr<stats::SlowRequestDigest> slowDigest_;
    std::vector<std::unique_ptr<stats::SlowRequestDigest>>
        slowDigestClass_;
};

} // namespace pmodv::core

#endif // PMODV_CORE_SYSTEM_HH
