#include "core/replay.hh"

#include "common/logging.hh"

namespace pmodv::core
{

MultiReplay::MultiReplay(const SimConfig &config,
                         const std::vector<arch::SchemeKind> &schemes)
{
    fanout_.addSink(&counter_);
    for (arch::SchemeKind kind : schemes) {
        systems_.push_back(std::make_unique<System>(config, kind));
        fanout_.addSink(systems_.back().get());
    }
}

void
MultiReplay::replayBuffer(const trace::TraceBuffer &buffer)
{
    counter_.addSummary(buffer.summary());
    for (auto &sys : systems_) {
        sys->replayBatch(buffer.records());
        sys->finish();
    }
}

void
MultiReplay::replayBatch(std::span<const trace::TraceRecord> records)
{
    counter_.addBatch(records);
    for (auto &sys : systems_) {
        sys->replayBatch(records);
        sys->finish();
    }
}

System &
MultiReplay::system(arch::SchemeKind kind)
{
    for (auto &sys : systems_) {
        if (sys->schemeKind() == kind)
            return *sys;
    }
    panic("no system for scheme '%s' in this replay",
          arch::schemeName(kind));
}

const System &
MultiReplay::system(arch::SchemeKind kind) const
{
    for (const auto &sys : systems_) {
        if (sys->schemeKind() == kind)
            return *sys;
    }
    panic("no system for scheme '%s' in this replay",
          arch::schemeName(kind));
}

std::vector<System *>
MultiReplay::systems()
{
    std::vector<System *> out;
    out.reserve(systems_.size());
    for (auto &sys : systems_)
        out.push_back(sys.get());
    return out;
}

double
MultiReplay::overheadOver(arch::SchemeKind kind,
                          arch::SchemeKind baseline) const
{
    const double base =
        static_cast<double>(system(baseline).totalCycles());
    const double val = static_cast<double>(system(kind).totalCycles());
    return base == 0 ? 0.0 : (val - base) / base;
}

} // namespace pmodv::core
