/**
 * @file
 * The full simulation configuration — the paper's Table II in code.
 * One SimConfig describes a complete replay pipeline (core, caches,
 * TLBs, memory, protection scheme).
 */

#ifndef PMODV_CORE_CONFIG_HH
#define PMODV_CORE_CONFIG_HH

#include <cstddef>
#include <ostream>
#include <string>

#include "arch/params.hh"
#include "mem/hierarchy.hh"
#include "tlb/hierarchy.hh"

namespace pmodv::core
{

/** Complete pipeline configuration. */
struct SimConfig
{
    /** Core clock in GHz (Table II: 2.2 GHz). */
    double freqGhz = 2.2;

    /** Issue width of the out-of-order core abstraction (4-way). */
    unsigned issueWidth = 4;

    /**
     * Fraction of above-L1 memory latency hidden by out-of-order
     * overlap (128-entry ROB abstraction). Applied identically to
     * every scheme, so relative overheads are insensitive to it.
     */
    double memOverlap = 0.75;

    tlb::TlbHierarchyParams tlb{};
    mem::HierarchyParams memory{};
    arch::ProtParams prot{};

    /**
     * Core count and cross-core invalidation cost. One core (the
     * default) replays exactly the legacy single-pipeline model;
     * more cores give each core a private TLB/cache/PTLB state and
     * route shootdowns over an IPI broadcast bus.
     */
    arch::CoreTopology topology{};

    /**
     * Epoch width of the System's timeline sampler in cycles; 0 (the
     * default) disables sampling entirely, reducing the hot-path cost
     * to one compare per trace record (bench/gbench_sim.cc).
     */
    Cycles samplingEpochCycles = 0;

    /** Row bound of the timeline sampler; adjacent epochs coalesce
     *  (doubling the epoch width) once this many rows exist. */
    unsigned samplingMaxEpochs = 64;

    /** Capacity of the System's event flight recorder. Raise it when
     *  exporting Perfetto traces so transaction spans survive. */
    std::size_t eventRingCapacity = 256;

    /**
     * Number of request latency classes for open-loop workloads; 0
     * (the default) disables request-latency tracking entirely, so
     * existing stats trees are untouched. When > 0 the System keeps
     * aggregate op_lat/op_queue histograms plus one
     * op_lat_class<i>/op_queue_class<i> pair per class, fed by
     * OpBegin records carrying arrival stamps (the server workload's
     * hot/warm/cold tenant classes): latency is measured from the
     * stamped *arrival* cycle — not service start — against a
     * virtual clock that idles forward when the server catches up
     * with the arrival process, so queueing (convoy) delay is
     * included and separately histogrammed.
     */
    unsigned opClasses = 0;

    /**
     * Top-K bound of the per-request tail-forensics digest; 0 (the
     * default) disables per-request capture entirely — no digest
     * stats, no per-event request tags, no extra fields in JSON
     * reports — so golden stats trees and the batch fast path stay
     * bit-identical. When > 0 (and opClasses > 0, since blame rides
     * on the tracked-op machinery) the System keeps a deterministic
     * top-K slow-request digest: each tracked request's 7-bucket
     * cycle breakdown (which provably partitions its
     * arrival-to-completion latency together with its queueing delay)
     * plus the EventRing events that landed inside its window.
     */
    unsigned slowRequestK = 0;

    /** Cycles for @p seconds of wall-clock at the configured clock. */
    double
    cyclesPerSecond() const
    {
        return freqGhz * 1e9;
    }

    /** Seconds represented by @p cycles at the configured clock. */
    double
    secondsFor(Cycles cycles) const
    {
        return static_cast<double>(cycles) / cyclesPerSecond();
    }
};

/** Print the configuration in the layout of the paper's Table II. */
void printConfig(std::ostream &os, const SimConfig &config);

} // namespace pmodv::core

#endif // PMODV_CORE_CONFIG_HH
