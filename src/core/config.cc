#include "core/config.hh"

namespace pmodv::core
{

void
printConfig(std::ostream &os, const SimConfig &c)
{
    os << "Processor              " << c.topology.numCores << " core"
       << (c.topology.numCores == 1 ? "" : "s") << ", " << c.freqGhz
       << " GHz, " << c.issueWidth
       << "-way issue out-of-order abstraction (overlap factor "
       << c.memOverlap << ")\n";
    os << "Cache                  L1D " << c.memory.l1.sizeBytes / 1024
       << "KB " << c.memory.l1.assoc << "-way, "
       << c.memory.l1.hitLatency << " cycle; L2 "
       << c.memory.l2.sizeBytes / 1024 << "KB " << c.memory.l2.assoc
       << "-way, " << c.memory.l2.hitLatency << " cycles\n";
    os << "Memory                 DRAM " << c.memory.memory.dramLatency
       << " cycles; NVM " << c.memory.memory.nvmLatency << " cycles\n";
    os << "TLB                    L1 " << c.tlb.l1.entries << "-entry "
       << c.tlb.l1.assoc << "-way; L2 " << c.tlb.l2.entries << "-entry "
       << c.tlb.l2.assoc << "-way (" << c.tlb.l2.accessLatency
       << " cycles); walk " << c.tlb.walkLatency << " cycles\n";
    os << "MPK                    WRPKRU/SETPERM " << c.prot.wrpkruCycles
       << " cycles\n";
    os << "MPK Virtualization     DTTLB " << c.prot.dttlbEntries
       << " entries; DTTLB miss " << c.prot.dttWalkCycles
       << " cycles; entry ops " << c.prot.dttlbEntryOpCycles
       << " cycle; PKRU update " << c.prot.pkruUpdateCycles
       << " cycle; TLB invalidation " << c.topology.tlbInvalidationCycles
       << " cycles/core\n";
    os << "Domain Virtualization  PTLB " << c.prot.ptlbEntries
       << " entries; access " << c.prot.ptlbAccessCycles
       << " cycle; miss " << c.prot.ptlbMissCycles
       << " cycles; entry ops " << c.prot.ptlbEntryOpCycles
       << " cycle\n";
    os << "libmpk model           syscall " << c.prot.libmpkSyscallCycles
       << " cycles; PTE patch " << c.prot.libmpkPtePatchCycles
       << " cycles/page; fast path " << c.prot.libmpkFastPathCycles
       << " cycles\n";
}

} // namespace pmodv::core
