#include "workloads/trace_ctx.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv::workloads
{

Addr
SyntheticPmo::alloc(Addr size)
{
    size = alignUp(size, 16);
    // First-fit from the free list.
    for (std::size_t i = 0; i < freeList_.size(); ++i) {
        if (freeList_[i].second >= size) {
            const Addr off = freeList_[i].first;
            if (freeList_[i].second == size) {
                freeList_[i] = freeList_.back();
                freeList_.pop_back();
            } else {
                freeList_[i].first += size;
                freeList_[i].second -= size;
            }
            reclaimedBytes_ -= size;
            return vaBase_ + off;
        }
    }
    panic_if(bump_ + size > bytes_,
             "synthetic PMO %u exhausted (%llu of %llu bytes)", domain_,
             static_cast<unsigned long long>(bump_),
             static_cast<unsigned long long>(bytes_));
    const Addr off = bump_;
    bump_ += size;
    return vaBase_ + off;
}

void
SyntheticPmo::free(Addr va, Addr size)
{
    size = alignUp(size, 16);
    panic_if(va < vaBase_ || va + size > vaBase_ + bytes_,
             "synthetic free outside the PMO");
    freeList_.emplace_back(va - vaBase_, size);
    reclaimedBytes_ += size;
}

SyntheticSpace::SyntheticSpace(TraceCtx &ctx, unsigned num_pmos,
                               Addr bytes, Perm page_perm,
                               PageSize page_size)
{
    // PMOs sit at well-separated VA bases aligned to (at least) 2MB,
    // so any supported mapping granularity works.
    const Addr align =
        std::max<Addr>(Addr{1} << 21, pageBytes(page_size));
    stride_ = alignUp(bytes + align, align);
    start_ = alignUp(Addr{1} << 33, align);
    pmos_.reserve(num_pmos);
    for (unsigned i = 0; i < num_pmos; ++i) {
        const DomainId domain = i + 1;
        const Addr base = start_ + stride_ * i;
        pmos_.emplace_back(domain, base, bytes);
        ctx.attach(domain, base, alignUp(bytes, pageBytes(page_size)),
                   page_perm, page_size);
    }
}

SyntheticPmo &
SyntheticSpace::owner(Addr va)
{
    panic_if(va < start_, "VA 0x%llx below every synthetic PMO",
             static_cast<unsigned long long>(va));
    const Addr idx = (va - start_) / stride_;
    panic_if(idx >= pmos_.size(), "VA 0x%llx beyond every synthetic PMO",
             static_cast<unsigned long long>(va));
    SyntheticPmo &pmo = pmos_[static_cast<std::size_t>(idx)];
    panic_if(va < pmo.vaBase() || va >= pmo.vaBase() + pmo.bytes(),
             "VA 0x%llx falls in an inter-PMO gap",
             static_cast<unsigned long long>(va));
    return pmo;
}

} // namespace pmodv::workloads
