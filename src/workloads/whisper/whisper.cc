#include "workloads/whisper/whisper.hh"

#include <cstring>

#include "common/logging.hh"

namespace pmodv::workloads
{

using pmo::Oid;
using pmo::PmoApi;
using pmo::Pool;
using pmo::Runtime;

void
WhisperWorkload::guardedRead(Runtime &rt, DomainId domain, Oid oid,
                             void *out, std::size_t len)
{
    appWork(rt, instsPerAccess());
    if (guarded_)
        rt.setPerm(tid_, domain, Perm::Read);
    rt.read(tid_, oid, out, len);
    if (guarded_)
        rt.setPerm(tid_, domain, Perm::None);
}

void
WhisperWorkload::guardedWrite(Runtime &rt, DomainId domain, Oid oid,
                              const void *in, std::size_t len)
{
    appWork(rt, instsPerAccess());
    if (guarded_)
        rt.setPerm(tid_, domain, Perm::ReadWrite);
    rt.write(tid_, oid, in, len);
    if (guarded_)
        rt.setPerm(tid_, domain, Perm::None);
}

void
WhisperWorkload::appWork(Runtime &rt, std::uint32_t insts)
{
    rt.compute(tid_, insts);
    // A little volatile (DRAM) traffic goes with the computation.
    rt.volatileAccess(tid_, (Addr{1} << 22) + 64 * (insts % 512), false);
    rt.volatileAccess(tid_, (Addr{1} << 22) + 64 * (insts % 512), true);
}

void
WhisperWorkload::pread(Runtime &rt, Oid oid, void *out, std::size_t len)
{
    rt.read(tid_, oid, out, len);
}

void
WhisperWorkload::pwrite(Runtime &rt, Oid oid, const void *in,
                        std::size_t len)
{
    rt.write(tid_, oid, in, len);
}

void
WhisperWorkload::run(pmo::Namespace &ns, trace::TraceSink &sink)
{
    PmoApi api(ns, /*uid=*/1000, /*proc=*/1);
    Runtime &rt = api.runtime();
    rt.setTraceSink(&sink);

    Pool *pool = api.poolCreate(name() + "_pool", params_.poolBytes);
    domain_ = api.domainOf(pool);

    // Setup runs untraced with the permission window open.
    rt.setTraceSink(nullptr);
    rt.setPerm(tid_, domain_, Perm::ReadWrite);
    guarded_ = false;
    setup(api, *pool);
    rt.setPerm(tid_, domain_, Perm::None);
    rt.setTraceSink(&sink);
    guarded_ = true;

    Rng rng(params_.seed);
    for (std::uint64_t i = 0; i < params_.numTxns; ++i) {
        // The op markers carry the pool's domain so TxnCommit events
        // (and the Perfetto spans built from them) are attributable.
        rt.opBegin(tid_, domain_);
        txn(api, *pool, rng);
        rt.opEnd(tid_, domain_);
    }
    sink.finish();
}

// ====================================================================
// Shared pool-resident KV store (echo / ycsb / hashmap / redis).
// ====================================================================

namespace
{

struct KvRoot
{
    std::uint64_t bucketsRaw = 0;
    std::uint32_t numBuckets = 0;
    std::uint32_t pad = 0;
    std::uint64_t lruHeadRaw = 0;
    std::uint64_t lruTailRaw = 0;
    std::uint64_t count = 0;
};

struct KvEntry
{
    std::uint64_t key = 0;
    std::uint64_t nextRaw = 0;
    std::uint64_t lruPrevRaw = 0;
    std::uint64_t lruNextRaw = 0;
    std::uint8_t value[32] = {};
};

static_assert(sizeof(KvEntry) == 64, "KvEntry must stay one line");

std::uint64_t
mixHash(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
}

} // namespace

/** Base for the KV-shaped WHISPER benchmarks. */
class KvBenchBase : public WhisperWorkload
{
  protected:
    explicit KvBenchBase(const WhisperParams &params)
        : WhisperWorkload(params)
    {
    }

    static constexpr unsigned kNumBuckets = 4096;

    Oid rootOid_{};
    Oid bucketsOid_{};

    void
    setup(PmoApi &api, Pool &pool) override
    {
        rootOid_ = api.poolRoot(&pool, sizeof(KvRoot));
        bucketsOid_ = api.pmalloc(&pool, kNumBuckets * 8);
        KvRoot root;
        root.bucketsRaw = bucketsOid_.raw();
        root.numBuckets = kNumBuckets;
        api.runtime().writeValue(tid_, rootOid_, root);
        std::vector<std::uint8_t> zero(kNumBuckets * 8, 0);
        api.runtime().write(tid_, bucketsOid_, zero.data(), zero.size());
        preload(api, pool);
    }

    /** Load the initial key population (benchmark specific). */
    virtual void preload(PmoApi &api, Pool &pool) = 0;

    Oid
    bucketOid(std::uint64_t key) const
    {
        const std::uint32_t idx =
            static_cast<std::uint32_t>(mixHash(key) % kNumBuckets);
        return Oid{bucketsOid_.pool, bucketsOid_.offset + 8 * idx};
    }

    /** Find the entry for @p key; returns the null OID when absent. */
    Oid
    kvFind(Runtime &rt, std::uint64_t key)
    {
        std::uint64_t cur_raw =
            guardedReadValue<std::uint64_t>(rt, domain_,
                                            bucketOid(key));
        while (cur_raw != 0) {
            const Oid cur = Oid::fromRaw(cur_raw);
            // One read covers the entry's key + chain pointer.
            struct
            {
                std::uint64_t key;
                std::uint64_t nextRaw;
            } head{};
            guardedRead(rt, domain_, cur, &head, sizeof(head));
            if (head.key == key)
                return cur;
            cur_raw = head.nextRaw;
        }
        return pmo::kNullOid;
    }

    /** Insert or update; returns true on fresh insert. */
    bool
    kvPut(PmoApi &api, std::uint64_t key, const void *value32)
    {
        Runtime &rt = api.runtime();
        const Oid existing = kvFind(rt, key);
        if (!existing.isNull()) {
            guardedWrite(rt, domain_,
                         Oid{existing.pool, existing.offset + 32},
                         value32, 32);
            return false;
        }
        const Oid fresh = api.pmalloc(
            api.runtime().find(domain_).pool, sizeof(KvEntry));
        return finishInsert(rt, fresh, key, value32);
    }

    bool
    finishInsert(Runtime &rt, Oid fresh, std::uint64_t key,
                 const void *value32)
    {
        KvEntry entry;
        entry.key = key;
        const Oid bucket = bucketOid(key);
        entry.nextRaw = guardedReadValue<std::uint64_t>(rt, domain_,
                                                        bucket);
        std::memcpy(entry.value, value32, 32);
        guardedWrite(rt, domain_, fresh, &entry, sizeof(entry));
        guardedWriteValue<std::uint64_t>(rt, domain_, bucket,
                                         fresh.raw());
        return true;
    }

    /** Read an entry's 32-byte value; false when the key is absent. */
    bool
    kvGet(Runtime &rt, std::uint64_t key, void *out32)
    {
        const Oid entry = kvFind(rt, key);
        if (entry.isNull())
            return false;
        guardedRead(rt, domain_, Oid{entry.pool, entry.offset + 32},
                    out32, 32);
        return true;
    }
};

// ====================================================================
// Echo: epoch-style KV store, 70 % gets / 30 % puts.
// ====================================================================

class EchoWorkload : public KvBenchBase
{
  public:
    explicit EchoWorkload(const WhisperParams &params)
        : KvBenchBase(params)
    {
    }

    std::string name() const override { return "echo"; }
    std::uint32_t instsPerAccess() const override { return 22'000; }

  protected:
    void
    preload(PmoApi &api, Pool &) override
    {
        std::uint8_t value[32] = {1};
        for (unsigned i = 0; i < params_.initialKeys; ++i)
            kvPutSetup(api, i * 7919 + 1, value);
    }

    void
    txn(PmoApi &api, Pool &, Rng &rng) override
    {
        const std::uint64_t key =
            rng.next(params_.initialKeys) * 7919 + 1;
        std::uint8_t value[32];
        if (rng.chance(0.30)) {
            std::memset(value, static_cast<int>(key & 0xff), 32);
            kvPut(api, key, value);
        } else {
            kvGet(api.runtime(), key, value);
        }
    }

    void
    kvPutSetup(PmoApi &api, std::uint64_t key, const void *value32)
    {
        kvPut(api, key, value32);
    }
};

// ====================================================================
// YCSB: 80 % updates / 20 % reads, zipf-skewed keys.
// ====================================================================

class YcsbWorkload : public KvBenchBase
{
  public:
    explicit YcsbWorkload(const WhisperParams &params)
        : KvBenchBase(params)
    {
    }

    std::string name() const override { return "ycsb"; }
    std::uint32_t instsPerAccess() const override { return 13'500; }

  protected:
    void
    preload(PmoApi &api, Pool &) override
    {
        std::uint8_t value[32] = {2};
        for (unsigned i = 0; i < params_.initialKeys; ++i)
            kvPut(api, i + 1, value);
    }

    void
    txn(PmoApi &api, Pool &, Rng &rng) override
    {
        const std::uint64_t key =
            rng.zipf(params_.initialKeys, 0.9) + 1;
        std::uint8_t value[32];
        if (rng.chance(0.80)) {
            std::memset(value, static_cast<int>(key & 0xff), 32);
            kvPut(api, key, value);
        } else {
            kvGet(api.runtime(), key, value);
        }
    }
};

// ====================================================================
// TPCC: new-order-style multi-record transactions over fixed tables.
// ====================================================================

class TpccWorkload : public WhisperWorkload
{
  public:
    explicit TpccWorkload(const WhisperParams &params)
        : WhisperWorkload(params)
    {
    }

    std::string name() const override { return "tpcc"; }
    std::uint32_t instsPerAccess() const override { return 16'000; }

  protected:
    static constexpr unsigned kWarehouses = 8;
    static constexpr unsigned kDistricts = 80;
    static constexpr unsigned kCustomers = 3'000;
    static constexpr unsigned kStock = 5'000;
    static constexpr unsigned kRecordBytes = 64;

    Oid warehouse_{}, district_{}, customer_{}, stock_{}, orders_{};
    std::uint64_t nextOrder_ = 0;
    std::uint64_t orderCapacity_ = 0;

    void
    setup(PmoApi &api, Pool &pool) override
    {
        warehouse_ = api.pmalloc(&pool, kWarehouses * kRecordBytes);
        district_ = api.pmalloc(&pool, kDistricts * kRecordBytes);
        customer_ = api.pmalloc(&pool, kCustomers * kRecordBytes);
        stock_ = api.pmalloc(&pool, kStock * kRecordBytes);
        orderCapacity_ = params_.numTxns + 16;
        orders_ = api.pmalloc(&pool, orderCapacity_ * kRecordBytes);

        std::uint8_t rec[kRecordBytes] = {3};
        Runtime &rt = api.runtime();
        for (unsigned i = 0; i < kWarehouses; ++i)
            rt.write(tid_, at(warehouse_, i), rec, kRecordBytes);
        for (unsigned i = 0; i < kDistricts; ++i)
            rt.write(tid_, at(district_, i), rec, kRecordBytes);
        for (unsigned i = 0; i < kCustomers; ++i)
            rt.write(tid_, at(customer_, i), rec, kRecordBytes);
        for (unsigned i = 0; i < kStock; ++i)
            rt.write(tid_, at(stock_, i), rec, kRecordBytes);
    }

    static Oid
    at(Oid base, std::uint64_t idx)
    {
        return Oid{base.pool,
                   base.offset +
                       static_cast<std::uint32_t>(idx * kRecordBytes)};
    }

    void
    txn(PmoApi &api, Pool &, Rng &rng) override
    {
        Runtime &rt = api.runtime();
        std::uint8_t rec[kRecordBytes];

        // Read warehouse + district, bump the district order counter.
        guardedRead(rt, domain_, at(warehouse_, rng.next(kWarehouses)),
                    rec, kRecordBytes);
        const Oid d = at(district_, rng.next(kDistricts));
        guardedRead(rt, domain_, d, rec, kRecordBytes);
        rec[0] += 1;
        guardedWrite(rt, domain_, d, rec, kRecordBytes);

        // Read the customer, append the order record.
        guardedRead(rt, domain_, at(customer_, rng.next(kCustomers)),
                    rec, kRecordBytes);
        guardedWrite(rt, domain_,
                     at(orders_, nextOrder_ % orderCapacity_), rec,
                     kRecordBytes);
        ++nextOrder_;

        // Five stock line items: read-modify-write each.
        for (unsigned i = 0; i < 5; ++i) {
            const Oid s = at(stock_, rng.next(kStock));
            guardedRead(rt, domain_, s, rec, kRecordBytes);
            rec[1] += 1;
            guardedWrite(rt, domain_, s, rec, kRecordBytes);
        }
    }
};

// ====================================================================
// C-tree: binary search tree, insert-only (Table III: 100K inserts).
// ====================================================================

class CtreeWorkload : public WhisperWorkload
{
  public:
    explicit CtreeWorkload(const WhisperParams &params)
        : WhisperWorkload(params)
    {
    }

    std::string name() const override { return "ctree"; }
    std::uint32_t instsPerAccess() const override { return 18'500; }

  protected:
    struct TreeNode
    {
        std::uint64_t key = 0;
        std::uint64_t leftRaw = 0;
        std::uint64_t rightRaw = 0;
        std::uint8_t value[40] = {};
    };
    static_assert(sizeof(TreeNode) == 64, "ctree node must stay 64 B");

    Oid rootOid_{}; ///< Holds the raw OID of the tree root node.

    void
    setup(PmoApi &api, Pool &pool) override
    {
        rootOid_ = api.poolRoot(&pool, 8);
        const std::uint64_t zero = 0;
        api.runtime().writeValue(tid_, rootOid_, zero);
        Rng rng(params_.seed ^ 0xc7ee);
        for (unsigned i = 0; i < params_.initialKeys / 10; ++i)
            insert(api, rng.raw());
    }

    void
    txn(PmoApi &api, Pool &, Rng &rng) override
    {
        insert(api, rng.raw());
    }

    void
    insert(PmoApi &api, std::uint64_t key)
    {
        Runtime &rt = api.runtime();
        std::uint64_t cur_raw =
            guardedReadValue<std::uint64_t>(rt, domain_, rootOid_);
        if (cur_raw == 0) {
            const Oid fresh = makeNode(api, key);
            guardedWriteValue<std::uint64_t>(rt, domain_, rootOid_,
                                             fresh.raw());
            return;
        }
        while (true) {
            const Oid cur = Oid::fromRaw(cur_raw);
            struct
            {
                std::uint64_t key;
                std::uint64_t leftRaw;
                std::uint64_t rightRaw;
            } head{};
            guardedRead(rt, domain_, cur, &head, sizeof(head));
            if (key == head.key) {
                guardedWrite(rt, domain_,
                             Oid{cur.pool, cur.offset + 24},
                             &key, 8); // Refresh the value prefix.
                return;
            }
            const bool go_left = key < head.key;
            const std::uint64_t child =
                go_left ? head.leftRaw : head.rightRaw;
            if (child == 0) {
                const Oid fresh = makeNode(api, key);
                const Oid link{cur.pool, cur.offset +
                                             (go_left ? 8u : 16u)};
                guardedWriteValue<std::uint64_t>(rt, domain_, link,
                                                 fresh.raw());
                return;
            }
            cur_raw = child;
        }
    }

    Oid
    makeNode(PmoApi &api, std::uint64_t key)
    {
        const Oid fresh = api.pmalloc(
            api.runtime().find(domain_).pool, sizeof(TreeNode));
        TreeNode node;
        node.key = key;
        guardedWrite(api.runtime(), domain_, fresh, &node,
                     sizeof(node));
        return fresh;
    }
};

// ====================================================================
// Hashmap: insert-only hash table (Table III: 100K inserts).
// ====================================================================

class HashmapWorkload : public KvBenchBase
{
  public:
    explicit HashmapWorkload(const WhisperParams &params)
        : KvBenchBase(params)
    {
    }

    std::string name() const override { return "hashmap"; }
    std::uint32_t instsPerAccess() const override { return 18'000; }

  protected:
    void
    preload(PmoApi &api, Pool &) override
    {
        std::uint8_t value[32] = {4};
        for (unsigned i = 0; i < params_.initialKeys / 10; ++i)
            kvPut(api, mixHash(i) | 1, value);
    }

    void
    txn(PmoApi &api, Pool &, Rng &rng) override
    {
        std::uint8_t value[32];
        const std::uint64_t key = rng.raw() | 1;
        std::memset(value, static_cast<int>(key & 0xff), 32);
        kvPut(api, key, value);
    }
};

// ====================================================================
// Redis: LRU-cached KV store, gets move entries to the LRU head.
// ====================================================================

class RedisWorkload : public KvBenchBase
{
  public:
    explicit RedisWorkload(const WhisperParams &params)
        : KvBenchBase(params)
    {
    }

    std::string name() const override { return "redis"; }
    std::uint32_t instsPerAccess() const override { return 15'000; }

  protected:
    void
    preload(PmoApi &api, Pool &) override
    {
        std::uint8_t value[32] = {5};
        for (unsigned i = 0; i < params_.initialKeys; ++i) {
            kvPut(api, i + 1, value);
            lruPushFront(api.runtime(), kvFind(api.runtime(), i + 1));
        }
    }

    void
    txn(PmoApi &api, Pool &, Rng &rng) override
    {
        Runtime &rt = api.runtime();
        const std::uint64_t key = rng.zipf(params_.initialKeys, 0.8) + 1;
        std::uint8_t value[32];
        if (rng.chance(0.5)) {
            // GET + LRU touch.
            const Oid entry = kvFind(rt, key);
            if (!entry.isNull()) {
                guardedRead(rt, domain_,
                            Oid{entry.pool, entry.offset + 32}, value,
                            32);
                lruMoveToFront(rt, entry);
            }
        } else {
            // PUT (update or insert) + LRU push.
            std::memset(value, static_cast<int>(key & 0xff), 32);
            const Oid existing = kvFind(rt, key);
            if (!existing.isNull()) {
                guardedWrite(rt, domain_,
                             Oid{existing.pool, existing.offset + 32},
                             value, 32);
                lruMoveToFront(rt, existing);
            } else {
                const Oid fresh = api.pmalloc(
                    api.runtime().find(domain_).pool, sizeof(KvEntry));
                finishInsert(rt, fresh, key, value);
                lruPushFront(rt, fresh);
            }
        }
    }

  private:
    Oid
    lruHeadOid() const
    {
        return Oid{rootOid_.pool,
                   static_cast<std::uint32_t>(
                       rootOid_.offset + offsetof(KvRoot, lruHeadRaw))};
    }

    Oid
    lruTailOid() const
    {
        return Oid{rootOid_.pool,
                   static_cast<std::uint32_t>(
                       rootOid_.offset + offsetof(KvRoot, lruTailRaw))};
    }

    static Oid
    lruPrevOid(Oid entry)
    {
        return Oid{entry.pool,
                   static_cast<std::uint32_t>(
                       entry.offset + offsetof(KvEntry, lruPrevRaw))};
    }

    static Oid
    lruNextOid(Oid entry)
    {
        return Oid{entry.pool,
                   static_cast<std::uint32_t>(
                       entry.offset + offsetof(KvEntry, lruNextRaw))};
    }

    void
    lruPushFront(Runtime &rt, Oid entry)
    {
        const std::uint64_t head =
            guardedReadValue<std::uint64_t>(rt, domain_, lruHeadOid());
        guardedWriteValue<std::uint64_t>(rt, domain_,
                                         lruNextOid(entry), head);
        guardedWriteValue<std::uint64_t>(rt, domain_,
                                         lruPrevOid(entry), 0);
        if (head != 0) {
            guardedWriteValue<std::uint64_t>(
                rt, domain_, lruPrevOid(Oid::fromRaw(head)),
                entry.raw());
        } else {
            guardedWriteValue<std::uint64_t>(rt, domain_, lruTailOid(),
                                             entry.raw());
        }
        guardedWriteValue<std::uint64_t>(rt, domain_, lruHeadOid(),
                                         entry.raw());
    }

    void
    lruUnlink(Runtime &rt, Oid entry)
    {
        const std::uint64_t prev =
            guardedReadValue<std::uint64_t>(rt, domain_,
                                            lruPrevOid(entry));
        const std::uint64_t next =
            guardedReadValue<std::uint64_t>(rt, domain_,
                                            lruNextOid(entry));
        if (prev != 0) {
            guardedWriteValue<std::uint64_t>(
                rt, domain_, lruNextOid(Oid::fromRaw(prev)), next);
        } else {
            guardedWriteValue<std::uint64_t>(rt, domain_, lruHeadOid(),
                                             next);
        }
        if (next != 0) {
            guardedWriteValue<std::uint64_t>(
                rt, domain_, lruPrevOid(Oid::fromRaw(next)), prev);
        } else {
            guardedWriteValue<std::uint64_t>(rt, domain_, lruTailOid(),
                                             prev);
        }
    }

    void
    lruMoveToFront(Runtime &rt, Oid entry)
    {
        lruUnlink(rt, entry);
        lruPushFront(rt, entry);
    }
};

// ====================================================================
// Factory.
// ====================================================================

std::unique_ptr<WhisperWorkload>
makeWhisper(const std::string &name, const WhisperParams &params)
{
    if (name == "echo")
        return std::make_unique<EchoWorkload>(params);
    if (name == "ycsb")
        return std::make_unique<YcsbWorkload>(params);
    if (name == "tpcc")
        return std::make_unique<TpccWorkload>(params);
    if (name == "ctree")
        return std::make_unique<CtreeWorkload>(params);
    if (name == "hashmap")
        return std::make_unique<HashmapWorkload>(params);
    if (name == "redis")
        return std::make_unique<RedisWorkload>(params);
    fatal("unknown WHISPER benchmark '%s'", name.c_str());
}

const std::vector<std::string> &
whisperNames()
{
    static const std::vector<std::string> names{
        "echo", "ycsb", "tpcc", "ctree", "hashmap", "redis"};
    return names;
}

} // namespace pmodv::workloads
