/**
 * @file
 * WHISPER-style single-PMO benchmarks (paper Table III): Echo, YCSB,
 * TPCC, C-tree, Hashmap, Redis. Unlike the multi-PMO sweeps, these
 * run on the *real* PMO library — pools, allocator, runtime-enforced
 * permissions — and capture their traces through the Runtime. The
 * paper's measurement discipline is reproduced: a SETPERM
 * enable/disable pair brackets *every PMO access*.
 *
 * Substitution note (DESIGN.md §2): pool size defaults to 64 MB
 * instead of the paper's 2 GB — the access *rates* (switches/sec) are
 * what Table V depends on, and those are set by the transaction
 * structure and the inter-access instruction budgets, not the pool
 * capacity.
 */

#ifndef PMODV_WORKLOADS_WHISPER_WHISPER_HH
#define PMODV_WORKLOADS_WHISPER_WHISPER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "pmo/api.hh"
#include "trace/sinks.hh"

namespace pmodv::workloads
{

/** Configuration of one WHISPER benchmark run. */
struct WhisperParams
{
    std::uint64_t numTxns = 100'000;
    std::size_t poolBytes = std::size_t{64} << 20;
    unsigned initialKeys = 10'000; ///< Preloaded entries.
    std::uint64_t seed = 42;
};

/** One WHISPER benchmark. */
class WhisperWorkload
{
  public:
    virtual ~WhisperWorkload() = default;

    /** Benchmark name as in Table III. */
    virtual std::string name() const = 0;

    /**
     * Execute the benchmark against @p ns (usually an in-memory
     * namespace), emitting the measured trace into @p sink.
     */
    void run(pmo::Namespace &ns, trace::TraceSink &sink);

    const WhisperParams &params() const { return params_; }

  protected:
    explicit WhisperWorkload(const WhisperParams &params)
        : params_(params)
    {
    }

    /** Build the initial state (untraced, permissions open). */
    virtual void setup(pmo::PmoApi &api, pmo::Pool &pool) = 0;

    /** Execute one transaction (traced, self-guarding accesses). */
    virtual void txn(pmo::PmoApi &api, pmo::Pool &pool, Rng &rng) = 0;

    // ---- guarded access helpers (SETPERM pair around each access) --
    void guardedRead(pmo::Runtime &rt, DomainId domain, pmo::Oid oid,
                     void *out, std::size_t len);
    void guardedWrite(pmo::Runtime &rt, DomainId domain, pmo::Oid oid,
                      const void *in, std::size_t len);

    template <typename T>
    T
    guardedReadValue(pmo::Runtime &rt, DomainId domain, pmo::Oid oid)
    {
        T v{};
        guardedRead(rt, domain, oid, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    guardedWriteValue(pmo::Runtime &rt, DomainId domain, pmo::Oid oid,
                      const T &v)
    {
        guardedWrite(rt, domain, oid, &v, sizeof(T));
    }

    /** Inter-access application work (parsing, networking, ...). */
    void appWork(pmo::Runtime &rt, std::uint32_t insts);

    /**
     * Unguarded (setup-phase) helpers; in the run phase guarded_ is
     * true and the guarded helpers must be used instead.
     */
    void pread(pmo::Runtime &rt, pmo::Oid oid, void *out,
               std::size_t len);
    void pwrite(pmo::Runtime &rt, pmo::Oid oid, const void *in,
                std::size_t len);

    /** Per-benchmark instruction budget between PMO accesses. */
    virtual std::uint32_t instsPerAccess() const = 0;

    WhisperParams params_;
    DomainId domain_ = kNullDomain;
    ThreadId tid_ = 0;
    bool guarded_ = false;
};

/** Instantiate a WHISPER benchmark by name
 *  (echo, ycsb, tpcc, ctree, hashmap, redis). */
std::unique_ptr<WhisperWorkload>
makeWhisper(const std::string &name, const WhisperParams &params);

/** The six benchmark names in Table III order. */
const std::vector<std::string> &whisperNames();

} // namespace pmodv::workloads

#endif // PMODV_WORKLOADS_WHISPER_WHISPER_HH
