#include "workloads/server/server.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pmodv::workloads
{

namespace
{

// KV node layout inside a tenant's PMO arena.
constexpr Addr kNodeBytes = 64;
constexpr Addr kKeyOff = 0;
constexpr Addr kValOff = 8;
constexpr Addr kNextOff = 16;

} // namespace

unsigned
ServerWorkload::tenantClassOf(unsigned rank, unsigned num_tenants)
{
    const unsigned hot = std::max(1u, num_tenants / 64);
    const unsigned warm = std::max(2u, num_tenants / 8);
    if (rank < hot)
        return 0;
    if (rank < warm)
        return 1;
    return 2;
}

const char *
ServerWorkload::tenantClassName(unsigned cls)
{
    switch (cls) {
      case 0:
        return "hot";
      case 1:
        return "warm";
      default:
        return "cold";
    }
}

void
ServerWorkload::doGet(TraceCtx &ctx, unsigned tenant, std::uint64_t key)
{
    ++gets_;
    Tenant &t = tenants_[tenant];
    const auto b = static_cast<unsigned>(key % params_.numBuckets);
    ctx.load(t.table + Addr{b} * 8);
    for (const Node &node : t.buckets[b]) {
        ctx.load(node.va + kKeyOff);
        if (node.key == key) {
            ctx.load(node.va + kValOff);
            ++hits_;
            return;
        }
    }
}

void
ServerWorkload::doPut(TraceCtx &ctx, SyntheticSpace &space,
                      unsigned tenant, std::uint64_t key)
{
    ++puts_;
    Tenant &t = tenants_[tenant];
    const auto b = static_cast<unsigned>(key % params_.numBuckets);
    ctx.load(t.table + Addr{b} * 8);
    for (Node &node : t.buckets[b]) {
        ctx.load(node.va + kKeyOff);
        if (node.key == key) {
            ctx.store(node.va + kValOff);
            ++hits_;
            return;
        }
    }
    // Insert at the chain head, like the bucket's next pointer does.
    const Addr va = space.pmo(tenant).alloc(kNodeBytes);
    ctx.store(va + kKeyOff);
    ctx.store(va + kValOff);
    ctx.store(va + kNextOff);
    ctx.store(t.table + Addr{b} * 8);
    t.buckets[b].insert(t.buckets[b].begin(), Node{key, va});
}

void
ServerWorkload::run(TraceCtx &ctx)
{
    panic_if(params_.numTenants == 0, "server needs at least one tenant");
    panic_if(params_.numBuckets == 0, "server needs at least one bucket");
    SyntheticSpace space(ctx, params_.numTenants, params_.tenantBytes,
                         Perm::ReadWrite, params_.pageSize);

    // Same permission model as the micro suite: every worker thread
    // holds read/write on every tenant up front; the per-request
    // SETPERM pair below is the measured 2-switches/op pattern.
    const unsigned threads = std::max(1u, params_.numThreads);
    for (unsigned t = 0; t < threads; ++t) {
        ctx.setThread(static_cast<ThreadId>(t));
        for (unsigned i = 0; i < params_.numTenants; ++i)
            ctx.setPerm(space.pmo(i).domain(), Perm::ReadWrite);
    }
    ctx.setThread(0);

    // Preload each tenant's table (unmeasured).
    tenants_.assign(params_.numTenants, Tenant{});
    ctx.setMuted(true);
    for (unsigned i = 0; i < params_.numTenants; ++i) {
        Tenant &tenant = tenants_[i];
        tenant.table = space.pmo(i).alloc(Addr{params_.numBuckets} * 8);
        tenant.buckets.resize(params_.numBuckets);
        for (unsigned k = 0; k < params_.keysPerTenant; ++k)
            doPut(ctx, space, i, k);
    }
    ctx.setMuted(false);
    gets_ = puts_ = hits_ = 0;

    // The open-loop arrival process: gaps drawn from a seeded
    // exponential via inverse transform, accumulated in double and
    // stamped as integer cycles. Drawn before any per-request
    // randomness, so the stamp sequence depends only on the seed and
    // the request index — never on what any scheme does with it.
    ZipfDist zipf(params_.numTenants, params_.zipfTheta);
    const std::uint64_t key_space =
        std::uint64_t{params_.keysPerTenant} * 2;
    double arrival_clock = 0.0;
    for (std::uint64_t i = 0; i < params_.numRequests; ++i) {
        const double u = ctx.rng().real();
        arrival_clock +=
            -params_.meanInterArrivalCycles * std::log1p(-u);
        const auto arrival = static_cast<std::uint64_t>(arrival_clock);

        if (threads > 1)
            ctx.setThread(static_cast<ThreadId>(i % threads));
        const auto rank = static_cast<unsigned>(zipf(ctx.rng()));
        const DomainId domain = space.pmo(rank).domain();
        const unsigned cls = tenantClassOf(rank, params_.numTenants);
        const std::uint64_t key = ctx.rng().next(key_space);
        const bool is_get = ctx.rng().real() < params_.readRatio;

        ctx.opBeginAt(domain, arrival, cls);
        ctx.setPerm(domain, Perm::ReadWrite);
        ctx.compute(params_.appInsts);
        if (is_get)
            doGet(ctx, rank, key);
        else
            doPut(ctx, space, rank, key);
        ctx.setPerm(domain, Perm::ReadWrite);
        ctx.opEnd(domain);
    }
    ctx.sink().finish();
}

} // namespace pmodv::workloads
