/**
 * @file
 * Open-loop multi-tenant KV server workload.
 *
 * Models a persistent key-value server hosting N tenants, each
 * tenant's hash table living in its own PMO/protection domain — the
 * paper's motivating deployment (one isolated object per client).
 * Requests arrive via a seeded open-loop process: inter-arrival gaps
 * are exponentially distributed *in model cycles*, drawn at capture
 * time, so the arrival sequence is a property of the trace — every
 * scheme replays the identical stream and the identical stamps.
 * Tenant popularity is Zipf-skewed (rank 0 hottest), which buckets
 * tenants into hot/warm/cold latency classes; sweeping the tenant
 * count from 16 to 4096 crosses MPK's 16-key cliff, which is where
 * the per-class tail latencies of the key-virtualizing schemes
 * diverge.
 *
 * Each request is bracketed by ctx.opBeginAt / ctx.opEnd, carrying
 * the arrival stamp and tenant class, and by the paper's 2-SETPERM
 * permission-switch pair on the tenant's domain; replays with
 * SimConfig::opClasses > 0 turn the stamps into queueing-delay and
 * arrival-to-completion latency histograms.
 */

#ifndef PMODV_WORKLOADS_SERVER_SERVER_HH
#define PMODV_WORKLOADS_SERVER_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/trace_ctx.hh"

namespace pmodv::workloads
{

/** Configuration of one server capture. */
struct ServerParams
{
    /** Tenant count == PMO/domain count (sweep axis; 16..4096). */
    unsigned numTenants = 64;
    Addr tenantBytes = Addr{1} << 20; ///< 1 MB table arena per tenant.
    std::uint64_t numRequests = 20'000;
    /** Keys preloaded per tenant; requests draw from 2x this space,
     *  so roughly half of the GET traffic misses. */
    unsigned keysPerTenant = 64;
    unsigned numBuckets = 64; ///< Hash buckets per tenant table.
    double readRatio = 0.8;   ///< GET fraction; rest are PUTs.
    double zipfTheta = 0.99;  ///< Tenant-popularity skew (YCSB's 0.99).
    /**
     * Mean of the exponential inter-arrival gap in model cycles. The
     * load knob: small enough to queue behind the slow schemes'
     * permission-switch storms, large enough that the near-flat
     * schemes keep headroom.
     */
    double meanInterArrivalCycles = 2000.0;
    std::uint32_t appInsts = 64; ///< App logic per request (InstBlock).
    std::uint64_t seed = 42;
    PageSize pageSize = PageSize::Size4K;
    /** Worker threads requests round-robin over (core t % K). */
    unsigned numThreads = 1;
};

/** The multi-tenant KV server trace generator. */
class ServerWorkload
{
  public:
    /** hot / warm / cold by tenant popularity rank. */
    static constexpr unsigned kNumTenantClasses = 3;

    /**
     * Latency class of popularity rank @p rank out of @p num_tenants:
     * hot = the top max(1, N/64) ranks, warm = the next ranks up to
     * max(2, N/8), cold = the long tail.
     */
    static unsigned tenantClassOf(unsigned rank, unsigned num_tenants);

    /** "hot" / "warm" / "cold". */
    static const char *tenantClassName(unsigned cls);

    explicit ServerWorkload(const ServerParams &params)
        : params_(params)
    {
    }

    /**
     * Generate the full capture: attach one PMO per tenant, grant
     * read/write on every domain for every worker thread, build the
     * tenant tables muted, then serve numRequests stamped requests.
     */
    void run(TraceCtx &ctx);

    const ServerParams &params() const { return params_; }

    // Post-run request mix (setup excluded).
    std::uint64_t gets() const { return gets_; }
    std::uint64_t puts() const { return puts_; }
    std::uint64_t hits() const { return hits_; }

  private:
    struct Node
    {
        std::uint64_t key;
        Addr va;
    };

    struct Tenant
    {
        Addr table = 0; ///< VA of the bucket-head array.
        std::vector<std::vector<Node>> buckets;
    };

    void doGet(TraceCtx &ctx, unsigned tenant, std::uint64_t key);
    void doPut(TraceCtx &ctx, SyntheticSpace &space, unsigned tenant,
               std::uint64_t key);

    ServerParams params_;
    std::vector<Tenant> tenants_;
    std::uint64_t gets_ = 0;
    std::uint64_t puts_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace pmodv::workloads

#endif // PMODV_WORKLOADS_SERVER_SERVER_HH
