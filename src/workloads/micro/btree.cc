/**
 * @file
 * B+ tree microbenchmark. Nodes are 4096 bytes holding up to 126
 * values and two pointers (Table IV): keys occupy the front of the
 * node, values/children the back. Searches touch a handful of widely
 * spaced lines inside one page — the good spatial locality the paper
 * credits for the B+ tree's later crossover point.
 *
 * Node layout (4096 B): header @0 (16 B: count, leaf flag),
 * keys @16 (126 x 8 B), payload @1024 (126 x 24 B values for leaves,
 * 127 x 8 B child pointers for internals), sibling @4088.
 */

#include "workloads/micro/workloads.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmodv::workloads
{

namespace
{
constexpr Addr kNodeBytes = 4096;
constexpr unsigned kFanout = 126; ///< Max keys per node.
constexpr Addr kOffCount = 0;
constexpr Addr kOffKeys = 16;
constexpr Addr kOffPayload = 1024;
constexpr Addr kOffSibling = 4088;
constexpr Addr kValueBytes = 24;
constexpr std::uint32_t kInstsPerProbe = 6;
constexpr std::uint32_t kInstsPerOp = 60;

Addr
keyVa(Addr node_va, unsigned slot)
{
    return node_va + kOffKeys + 8 * slot;
}

Addr
payloadVa(Addr node_va, unsigned slot)
{
    return node_va + kOffPayload + kValueBytes * slot;
}

} // namespace

struct BtreeWorkload::Node
{
    bool leaf = true;
    Addr va = 0;
    std::vector<std::uint64_t> keys;
    std::vector<std::unique_ptr<Node>> children; ///< Internal only.
    Node *sibling = nullptr;                     ///< Leaf chain.
};

struct BtreeWorkload::Tree
{
    std::unique_ptr<Node> root;
    std::size_t keyCount = 0;
    std::vector<std::uint64_t> keys;
};

namespace detail_bt
{

using Node = BtreeWorkload::Node;
using Tree = BtreeWorkload::Tree;

/**
 * Linear scan within a node, emitting every probed key load —
 * persistent-memory B+ trees scan linearly for cache friendliness,
 * and the resulting per-access volume is what makes the B+ tree's
 * domain-virtualization overhead latency-dominated (paper Table VII).
 */
unsigned
searchNode(TraceCtx &ctx, const Node &n, std::uint64_t key)
{
    ctx.load(n.va + kOffCount);
    unsigned pos = 0;
    while (pos < n.keys.size()) {
        ctx.load(keyVa(n.va, pos));
        ctx.compute(kInstsPerProbe);
        if (n.keys[pos] >= key)
            break;
        ++pos;
    }
    return pos;
}

/** Model the memmove that opens slot @p at in a node of @p n keys. */
void
emitShift(TraceCtx &ctx, const Node &n, unsigned at)
{
    // Shifting (count-at) keys and values, element by element (the
    // accesses stay inside one 4 KB node, so they are cache-warm but
    // each one still passes the per-access domain permission check).
    const unsigned count = static_cast<unsigned>(n.keys.size());
    for (unsigned i = count; i > at; --i) {
        ctx.load(keyVa(n.va, i - 1));
        ctx.store(keyVa(n.va, i));
        ctx.load(payloadVa(n.va, i - 1), kValueBytes);
        ctx.store(payloadVa(n.va, i), kValueBytes);
    }
}

struct SplitResult
{
    std::unique_ptr<Node> sibling; ///< Null when no split happened.
    std::uint64_t separator = 0;
};

SplitResult
insertRec(TraceCtx &ctx, SyntheticPmo &pmo, Node &n, std::uint64_t key,
          bool &inserted)
{
    const unsigned pos = searchNode(ctx, n, key);

    if (n.leaf) {
        if (pos < n.keys.size() && n.keys[pos] == key) {
            ctx.store(payloadVa(n.va, pos), kValueBytes);
            inserted = false;
            return {};
        }
        emitShift(ctx, n, pos);
        n.keys.insert(n.keys.begin() + pos, key);
        ctx.store(keyVa(n.va, pos));
        ctx.store(payloadVa(n.va, pos), kValueBytes);
        ctx.store(n.va + kOffCount);
        inserted = true;
    } else {
        const unsigned child_idx =
            pos < n.keys.size() && n.keys[pos] == key ? pos + 1 : pos;
        ctx.load(payloadVa(n.va, child_idx)); // Child pointer read.
        auto split = insertRec(ctx, pmo, *n.children[child_idx], key,
                               inserted);
        if (split.sibling) {
            emitShift(ctx, n, child_idx);
            n.keys.insert(n.keys.begin() + child_idx, split.separator);
            n.children.insert(n.children.begin() + child_idx + 1,
                              std::move(split.sibling));
            ctx.store(keyVa(n.va, child_idx));
            ctx.store(payloadVa(n.va, child_idx + 1));
            ctx.store(n.va + kOffCount);
        }
    }

    if (n.keys.size() <= kFanout)
        return {};

    // Split: move the upper half into a fresh node.
    auto sibling = std::make_unique<Node>();
    sibling->leaf = n.leaf;
    sibling->va = pmo.alloc(kNodeBytes);
    const unsigned mid = static_cast<unsigned>(n.keys.size()) / 2;
    std::uint64_t separator;
    if (n.leaf) {
        separator = n.keys[mid];
        sibling->keys.assign(n.keys.begin() + mid, n.keys.end());
        n.keys.resize(mid);
        sibling->sibling = n.sibling;
        n.sibling = sibling.get();
        ctx.store(n.va + kOffSibling);
        ctx.store(sibling->va + kOffSibling);
    } else {
        separator = n.keys[mid];
        sibling->keys.assign(n.keys.begin() + mid + 1, n.keys.end());
        for (std::size_t i = mid + 1; i < n.children.size(); ++i)
            sibling->children.push_back(std::move(n.children[i]));
        n.children.resize(mid + 1);
        n.keys.resize(mid);
    }
    // Copying half a node into the sibling, element by element.
    for (unsigned i = 0;
         i < static_cast<unsigned>(sibling->keys.size()); ++i) {
        ctx.load(keyVa(n.va, mid + i));
        ctx.store(keyVa(sibling->va, i));
        ctx.load(payloadVa(n.va, mid + i), kValueBytes);
        ctx.store(payloadVa(sibling->va, i), kValueBytes);
    }
    ctx.store(n.va + kOffCount);
    ctx.store(sibling->va + kOffCount);
    return {std::move(sibling), separator};
}

bool
removeOne(TraceCtx &ctx, Tree &t, std::uint64_t key)
{
    // Descend to the leaf; deletes do not rebalance (underflow is
    // tolerated, a common B+ tree simplification).
    Node *n = t.root.get();
    while (!n->leaf) {
        const unsigned pos = searchNode(ctx, *n, key);
        const unsigned child_idx =
            pos < n->keys.size() && n->keys[pos] == key ? pos + 1 : pos;
        ctx.load(payloadVa(n->va, child_idx));
        n = n->children[child_idx].get();
    }
    const unsigned pos = searchNode(ctx, *n, key);
    if (pos >= n->keys.size() || n->keys[pos] != key)
        return false;
    emitShift(ctx, *n, pos);
    n->keys.erase(n->keys.begin() + pos);
    ctx.store(n->va + kOffCount);
    return true;
}

void
checkRec(const Node &n, std::uint64_t lo, std::uint64_t hi, int depth,
         int &leaf_depth)
{
    panic_if(n.keys.size() > kFanout, "B+ node overflow");
    for (std::size_t i = 0; i < n.keys.size(); ++i) {
        panic_if(n.keys[i] < lo || n.keys[i] > hi,
                 "B+ ordering violated");
        if (i > 0)
            panic_if(n.keys[i - 1] >= n.keys[i], "B+ keys not sorted");
    }
    if (n.leaf) {
        if (leaf_depth < 0)
            leaf_depth = depth;
        panic_if(leaf_depth != depth, "B+ leaves at unequal depth");
        return;
    }
    panic_if(n.children.size() != n.keys.size() + 1,
             "B+ child count mismatch");
    for (std::size_t i = 0; i < n.children.size(); ++i) {
        const std::uint64_t clo = i == 0 ? lo : n.keys[i - 1];
        const std::uint64_t chi =
            i == n.keys.size() ? hi : n.keys[i] - 1;
        checkRec(*n.children[i], clo, chi, depth + 1, leaf_depth);
    }
}

} // namespace detail_bt

BtreeWorkload::BtreeWorkload(const MicroParams &params)
    : MicroWorkload(params)
{
}

BtreeWorkload::~BtreeWorkload() = default;

void
BtreeWorkload::insertOne(TraceCtx &ctx, SyntheticSpace &space,
                         unsigned primary, std::uint64_t key)
{
    Tree &t = *tree_;
    bool inserted = false;
    auto split = detail_bt::insertRec(ctx, space.pmo(primary), *t.root,
                                      key, inserted);
    if (split.sibling) {
        auto new_root = std::make_unique<Node>();
        new_root->leaf = false;
        new_root->va = space.pmo(primary).alloc(kNodeBytes);
        new_root->keys.push_back(split.separator);
        new_root->children.push_back(std::move(t.root));
        new_root->children.push_back(std::move(split.sibling));
        t.root = std::move(new_root);
    }
    if (inserted) {
        ++t.keyCount;
        t.keys.push_back(key);
    }
}

void
BtreeWorkload::setup(TraceCtx &ctx, SyntheticSpace &space)
{
    tree_ = std::make_unique<Tree>();
    tree_->root = std::make_unique<Node>();
    tree_->root->va = space.pmo(0).alloc(kNodeBytes);
    for (unsigned i = 0; i < params_.initialNodes; ++i) {
        const unsigned pmo =
            static_cast<unsigned>(ctx.rng().next(space.numPmos()));
        insertOne(ctx, space, pmo, ctx.rng().raw());
    }
}

void
BtreeWorkload::op(TraceCtx &ctx, SyntheticSpace &space, unsigned primary)
{
    ctx.compute(kInstsPerOp);
    Tree &t = *tree_;
    if (ctx.rng().chance(params_.insertRatio) || t.keys.empty()) {
        insertOne(ctx, space, primary, ctx.rng().raw());
    } else {
        const std::size_t pick = ctx.rng().next(t.keys.size());
        const std::uint64_t key = t.keys[pick];
        t.keys[pick] = t.keys.back();
        t.keys.pop_back();
        if (detail_bt::removeOne(ctx, t, key))
            --t.keyCount;
    }
}

void
BtreeWorkload::checkInvariants() const
{
    int leaf_depth = -1;
    detail_bt::checkRec(*tree_->root, 0, ~std::uint64_t{0}, 0,
                        leaf_depth);
}

std::size_t
BtreeWorkload::keyCount() const
{
    return tree_->keyCount;
}

} // namespace pmodv::workloads
