/**
 * @file
 * The multi-PMO microbenchmark suite of the paper's Table IV: AVL
 * tree, red-black tree, B+ tree, linked list and string swap.
 *
 * Following the paper's setup, each benchmark maintains ONE data
 * structure whose nodes are scattered across N PMOs (default
 * 1024 x 8 MB): "the main data structures contain nodes in different
 * PMOs". Successive node visits therefore land in different
 * protection domains, which is what stresses the DTTLB/PTLB at high
 * PMO counts. Every operation picks a primary PMO (the allocation
 * target) and runs inside a SETPERM enable/disable pair on it —
 * exactly two permission switches per operation, matching the
 * switch-rate column of Table VI.
 *
 * The data structures are fully implemented (host-side semantics with
 * per-node simulated addresses), so structural invariants are
 * testable, and every field touch is emitted into the trace.
 */

#ifndef PMODV_WORKLOADS_MICRO_MICRO_HH
#define PMODV_WORKLOADS_MICRO_MICRO_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/trace_ctx.hh"

namespace pmodv::workloads
{

/** Configuration of one micro-benchmark run. */
struct MicroParams
{
    unsigned numPmos = 1024;
    Addr pmoBytes = Addr{8} << 20; ///< 8 MB per PMO.
    std::uint64_t numOps = 1'000'000;
    unsigned initialNodes = 1024; ///< Structure size before timing.
    double insertRatio = 0.9;     ///< Rest are deletes (or swaps).
    std::uint64_t seed = 42;
    /** Mapping granularity of the attach syscall (paper §IV-A:
     *  4KB / 2MB / 1GB page-table levels). */
    PageSize pageSize = PageSize::Size4K;
    /**
     * Worker threads the operations round-robin over; thread t runs
     * on core t % K of a multi-core replay. 1 (the default) emits the
     * classic single-thread trace, record for record.
     */
    unsigned numThreads = 1;
};

/** Base class of the five microbenchmarks. */
class MicroWorkload
{
  public:
    explicit MicroWorkload(const MicroParams &params) : params_(params)
    {
    }
    virtual ~MicroWorkload() = default;

    /** Benchmark short name (matches Table IV abbreviations). */
    virtual std::string name() const = 0;

    /**
     * Build the initial structure (nodes spread over all PMOs). Runs
     * muted — the paper measures operations, not setup.
     */
    virtual void setup(TraceCtx &ctx, SyntheticSpace &space) = 0;

    /**
     * Execute one timed operation; @p primary is the PMO index new
     * nodes must be allocated from (its write window is open).
     */
    virtual void op(TraceCtx &ctx, SyntheticSpace &space,
                    unsigned primary) = 0;

    /** Structure-specific invariant check (tests); default no-op. */
    virtual void checkInvariants() const {}

    const MicroParams &params() const { return params_; }

    /**
     * Generate the full trace: attach all PMOs, grant read/write
     * permission on every domain (cross-PMO pointer updates are part
     * of every operation), build the initial structure, then run
     * numOps operations, each bracketed by the paper's per-operation
     * SETPERM pair on its primary PMO.
     */
    void run(TraceCtx &ctx);

  protected:
    MicroParams params_;
};

/** Instantiate a microbenchmark by name (avl, rbt, bt, ll, ss). */
std::unique_ptr<MicroWorkload> makeMicro(const std::string &name,
                                         const MicroParams &params);

/** The five benchmark names in Table IV order. */
const std::vector<std::string> &microNames();

} // namespace pmodv::workloads

#endif // PMODV_WORKLOADS_MICRO_MICRO_HH
