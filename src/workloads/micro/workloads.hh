/**
 * @file
 * Concrete microbenchmark declarations. Each benchmark keeps ONE real
 * host-side data structure whose nodes are scattered across all PMOs
 * (so invariants are testable and successive node visits cross
 * protection domains); every field touch emits a trace record.
 */

#ifndef PMODV_WORKLOADS_MICRO_WORKLOADS_HH
#define PMODV_WORKLOADS_MICRO_WORKLOADS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/micro/micro.hh"

namespace pmodv::workloads
{

/** AVL tree: insert/delete of 64-byte-value nodes (Table IV). */
class AvlWorkload : public MicroWorkload
{
  public:
    explicit AvlWorkload(const MicroParams &params);
    ~AvlWorkload() override;

    std::string name() const override { return "avl"; }
    void setup(TraceCtx &ctx, SyntheticSpace &space) override;
    void op(TraceCtx &ctx, SyntheticSpace &space,
            unsigned primary) override;
    void checkInvariants() const override;

    /** Live node count (tests). */
    std::size_t nodeCount() const;

    struct Node;
    struct Tree;

  private:
    void insertOne(TraceCtx &ctx, SyntheticSpace &space,
                   unsigned primary, std::uint64_t key);
    void deleteOne(TraceCtx &ctx, SyntheticSpace &space);

    std::unique_ptr<Tree> tree_;
};

/** Red-black tree: insert/delete of 64-byte-value nodes. */
class RbtWorkload : public MicroWorkload
{
  public:
    explicit RbtWorkload(const MicroParams &params);
    ~RbtWorkload() override;

    std::string name() const override { return "rbt"; }
    void setup(TraceCtx &ctx, SyntheticSpace &space) override;
    void op(TraceCtx &ctx, SyntheticSpace &space,
            unsigned primary) override;
    void checkInvariants() const override;

    std::size_t nodeCount() const;

    struct Node;
    struct Tree;

  private:
    std::unique_ptr<Tree> tree_;
};

/** B+ tree: 4096-byte nodes with up to 126 values + 2 pointers. */
class BtreeWorkload : public MicroWorkload
{
  public:
    explicit BtreeWorkload(const MicroParams &params);
    ~BtreeWorkload() override;

    std::string name() const override { return "bt"; }
    void setup(TraceCtx &ctx, SyntheticSpace &space) override;
    void op(TraceCtx &ctx, SyntheticSpace &space,
            unsigned primary) override;
    void checkInvariants() const override;

    std::size_t keyCount() const;

    struct Node;
    struct Tree;

  private:
    void insertOne(TraceCtx &ctx, SyntheticSpace &space,
                   unsigned primary, std::uint64_t key);

    std::unique_ptr<Tree> tree_;
};

/** Doubly linked list: positional insert/delete with traversal. */
class LinkedListWorkload : public MicroWorkload
{
  public:
    explicit LinkedListWorkload(const MicroParams &params);
    ~LinkedListWorkload() override;

    std::string name() const override { return "ll"; }
    void setup(TraceCtx &ctx, SyntheticSpace &space) override;
    void op(TraceCtx &ctx, SyntheticSpace &space,
            unsigned primary) override;
    void checkInvariants() const override;

    std::size_t nodeCount() const;

    struct Node;
    struct List;

  private:
    std::unique_ptr<List> list_;
};

/** String swap: random swaps in a PMO-spanning 64-byte-string array. */
class StringSwapWorkload : public MicroWorkload
{
  public:
    explicit StringSwapWorkload(const MicroParams &params);
    ~StringSwapWorkload() override;

    std::string name() const override { return "ss"; }
    void setup(TraceCtx &ctx, SyntheticSpace &space) override;
    void op(TraceCtx &ctx, SyntheticSpace &space,
            unsigned primary) override;
    void checkInvariants() const override;

    /** Current permutation of the string array (tests). */
    const std::vector<std::uint32_t> &permutation() const;

    struct Array;

  private:
    std::unique_ptr<Array> array_;
};

} // namespace pmodv::workloads

#endif // PMODV_WORKLOADS_MICRO_WORKLOADS_HH
