#include "workloads/micro/micro.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workloads/micro/workloads.hh"

namespace pmodv::workloads
{

void
MicroWorkload::run(TraceCtx &ctx)
{
    SyntheticSpace space(ctx, params_.numPmos, params_.pmoBytes,
                         Perm::ReadWrite, params_.pageSize);

    // Every domain gets read/write permission up front — for every
    // worker thread: operations update pointers in whichever PMOs the
    // structure's neighbouring nodes live in. The per-operation
    // SETPERM pair below reproduces the paper's permission-switch
    // pattern (2 switches/op) on the operation's primary PMO.
    const unsigned threads = std::max(1u, params_.numThreads);
    for (unsigned t = 0; t < threads; ++t) {
        ctx.setThread(static_cast<ThreadId>(t));
        for (unsigned i = 0; i < params_.numPmos; ++i)
            ctx.setPerm(space.pmo(i).domain(), Perm::ReadWrite);
    }
    ctx.setThread(0);

    // Build the initial structure (unmeasured).
    ctx.setMuted(true);
    setup(ctx, space);
    ctx.setMuted(false);

    for (std::uint64_t i = 0; i < params_.numOps; ++i) {
        if (threads > 1)
            ctx.setThread(static_cast<ThreadId>(i % threads));
        const unsigned primary =
            static_cast<unsigned>(ctx.rng().next(params_.numPmos));
        const DomainId domain = space.pmo(primary).domain();
        // The op markers carry the primary domain so TxnCommit events
        // (and the Perfetto spans built from them) are attributable.
        ctx.opBegin(domain);
        ctx.setPerm(domain, Perm::ReadWrite);
        op(ctx, space, primary);
        ctx.setPerm(domain, Perm::ReadWrite);
        ctx.opEnd(domain);
    }
    ctx.sink().finish();
}

std::unique_ptr<MicroWorkload>
makeMicro(const std::string &name, const MicroParams &params)
{
    if (name == "avl")
        return std::make_unique<AvlWorkload>(params);
    if (name == "rbt")
        return std::make_unique<RbtWorkload>(params);
    if (name == "bt")
        return std::make_unique<BtreeWorkload>(params);
    if (name == "ll")
        return std::make_unique<LinkedListWorkload>(params);
    if (name == "ss")
        return std::make_unique<StringSwapWorkload>(params);
    fatal("unknown microbenchmark '%s' (want avl/rbt/bt/ll/ss)",
          name.c_str());
}

const std::vector<std::string> &
microNames()
{
    static const std::vector<std::string> names{"avl", "rbt", "bt", "ll",
                                                "ss"};
    return names;
}

} // namespace pmodv::workloads
