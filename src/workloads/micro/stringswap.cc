/**
 * @file
 * String-swap microbenchmark: each PMO holds an array of 64-byte
 * strings; an operation swaps two randomly chosen strings through a
 * volatile scratch buffer. Two strings = two cache lines = at most
 * two TLB misses per op — the best-locality benchmark of the suite.
 */

#include "workloads/micro/workloads.hh"

#include <numeric>

#include "common/logging.hh"

namespace pmodv::workloads
{

namespace
{
constexpr Addr kStringBytes = 64;
constexpr std::uint32_t kInstsPerOp = 3'400;
} // namespace

struct StringSwapWorkload::Array
{
    /** Simulated VA of each string (strings spread over all PMOs). */
    std::vector<Addr> stringVa;
    /** permutation[i] = logical string currently in physical slot i. */
    std::vector<std::uint32_t> slots;
};

StringSwapWorkload::StringSwapWorkload(const MicroParams &params)
    : MicroWorkload(params)
{
}

StringSwapWorkload::~StringSwapWorkload() = default;

void
StringSwapWorkload::setup(TraceCtx &ctx, SyntheticSpace &space)
{
    array_ = std::make_unique<Array>();
    Array &arr = *array_;
    // The string array spans the PMOs: strings are dealt round-robin
    // so neighbouring indices live in different domains.
    const unsigned total =
        params_.initialNodes *
        std::max(1u, space.numPmos() / 8);
    arr.stringVa.reserve(total);
    for (unsigned i = 0; i < total; ++i) {
        SyntheticPmo &pmo = space.pmo(i % space.numPmos());
        arr.stringVa.push_back(pmo.alloc(kStringBytes));
        ctx.store(arr.stringVa.back(), 64);
    }
    arr.slots.resize(total);
    std::iota(arr.slots.begin(), arr.slots.end(), 0u);
}

void
StringSwapWorkload::op(TraceCtx &ctx, SyntheticSpace & /*space*/,
                       unsigned /*primary*/)
{
    Array &arr = *array_;
    const std::size_t n = arr.slots.size();
    const auto a = static_cast<std::size_t>(ctx.rng().next(n));
    auto b = static_cast<std::size_t>(ctx.rng().next(n));
    if (b == a)
        b = (a + 1) % n;

    const Addr va_a = arr.stringVa[a];
    const Addr va_b = arr.stringVa[b];

    // Character-pair exchange: per 2-byte granule, load both sides
    // and store both sides — 4 x 32 = 128 loads/stores per swap, the
    // count the paper reports for two 64-byte strings.
    for (unsigned off = 0; off < kStringBytes; off += 2) {
        ctx.load(va_a + off, 2);
        ctx.load(va_b + off, 2);
        ctx.store(va_a + off, 2);
        ctx.store(va_b + off, 2);
    }
    ctx.compute(kInstsPerOp);

    std::swap(arr.slots[a], arr.slots[b]);
}

void
StringSwapWorkload::checkInvariants() const
{
    const Array &arr = *array_;
    // The slot contents must remain a permutation of 0..n-1.
    std::vector<bool> seen(arr.slots.size(), false);
    for (std::uint32_t v : arr.slots) {
        panic_if(v >= arr.slots.size(), "string swap slot out of range");
        panic_if(seen[v], "string swap lost a string");
        seen[v] = true;
    }
}

const std::vector<std::uint32_t> &
StringSwapWorkload::permutation() const
{
    return array_->slots;
}

} // namespace pmodv::workloads
