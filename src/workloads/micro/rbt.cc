/**
 * @file
 * Red-black tree microbenchmark (CLRS-style with a nil sentinel and
 * parent pointers). Node layout inside the PMO (96 bytes):
 * traversal metadata packed into the first cache line (key @0,
 * left @8, right @16, parent @24, color @32), 56-byte value at @40.
 */

#include "workloads/micro/workloads.hh"

#include "common/logging.hh"

namespace pmodv::workloads
{

namespace
{
constexpr Addr kNodeBytes = 96;
constexpr Addr kOffKey = 0;
constexpr Addr kOffLeft = 8;
constexpr Addr kOffRight = 16;
constexpr Addr kOffParent = 24;
constexpr Addr kOffColor = 32;
constexpr Addr kOffValue = 40; ///< 56-byte value spills to line 1.
constexpr std::uint32_t kInstsPerVisit = 12;
constexpr std::uint32_t kInstsPerOp = 50;
/** Probability a new node is placed in its parent's PMO. */
constexpr double kParentAffinity = 0.75;
} // namespace

struct RbtWorkload::Node
{
    std::uint64_t key = 0;
    Addr va = 0;
    Node *left = nullptr;
    Node *right = nullptr;
    Node *parent = nullptr;
    bool red = false;
};

struct RbtWorkload::Tree
{
    Node nil; ///< Sentinel: black, self-referential.
    Node *root = nullptr;
    std::size_t count = 0;
    std::vector<std::uint64_t> keys;

    Tree()
    {
        nil.red = false;
        nil.left = nil.right = nil.parent = &nil;
        root = &nil;
    }

    ~Tree() { destroy(root); }

    void
    destroy(Node *n)
    {
        if (n == &nil)
            return;
        destroy(n->left);
        destroy(n->right);
        delete n;
    }
};

namespace detail_rbt
{

using Node = RbtWorkload::Node;
using Tree = RbtWorkload::Tree;

/**
 * Guarded trace emission: the nil sentinel has va == 0 and exists
 * only in the host-side representation — it never generates PMO
 * traffic.
 */
inline void
ld(TraceCtx &ctx, const Node *n, Addr off)
{
    if (n->va)
        ctx.load(n->va + off);
}

inline void
st(TraceCtx &ctx, const Node *n, Addr off, std::uint32_t size = 8)
{
    if (n->va)
        ctx.store(n->va + off, size);
}

void
rotateLeft(TraceCtx &ctx, Tree &t, Node *x)
{
    Node *y = x->right;
    ld(ctx, x, kOffRight);
    x->right = y->left;
    st(ctx, x, kOffRight);
    if (y->left != &t.nil) {
        y->left->parent = x;
        st(ctx, y->left, kOffParent);
    }
    y->parent = x->parent;
    st(ctx, y, kOffParent);
    if (x->parent == &t.nil) {
        t.root = y;
    } else if (x == x->parent->left) {
        x->parent->left = y;
        st(ctx, x->parent, kOffLeft);
    } else {
        x->parent->right = y;
        st(ctx, x->parent, kOffRight);
    }
    y->left = x;
    st(ctx, y, kOffLeft);
    x->parent = y;
    st(ctx, x, kOffParent);
}

void
rotateRight(TraceCtx &ctx, Tree &t, Node *y)
{
    Node *x = y->left;
    ld(ctx, y, kOffLeft);
    y->left = x->right;
    st(ctx, y, kOffLeft);
    if (x->right != &t.nil) {
        x->right->parent = y;
        st(ctx, x->right, kOffParent);
    }
    x->parent = y->parent;
    st(ctx, x, kOffParent);
    if (y->parent == &t.nil) {
        t.root = x;
    } else if (y == y->parent->right) {
        y->parent->right = x;
        st(ctx, y->parent, kOffRight);
    } else {
        y->parent->left = x;
        st(ctx, y->parent, kOffLeft);
    }
    x->right = y;
    st(ctx, x, kOffRight);
    y->parent = x;
    st(ctx, y, kOffParent);
}

void
insertFixup(TraceCtx &ctx, Tree &t, Node *z)
{
    while (z->parent->red) {
        ld(ctx, z->parent, kOffColor);
        Node *gp = z->parent->parent;
        ld(ctx, gp, kOffLeft);
        if (z->parent == gp->left) {
            Node *uncle = gp->right;
            ld(ctx, uncle, kOffColor);
            if (uncle->red) {
                z->parent->red = false;
                st(ctx, z->parent, kOffColor);
                uncle->red = false;
                st(ctx, uncle, kOffColor);
                gp->red = true;
                st(ctx, gp, kOffColor);
                z = gp;
            } else {
                if (z == z->parent->right) {
                    z = z->parent;
                    rotateLeft(ctx, t, z);
                }
                z->parent->red = false;
                st(ctx, z->parent, kOffColor);
                gp->red = true;
                st(ctx, gp, kOffColor);
                rotateRight(ctx, t, gp);
            }
        } else {
            Node *uncle = gp->left;
            ld(ctx, uncle, kOffColor);
            if (uncle->red) {
                z->parent->red = false;
                st(ctx, z->parent, kOffColor);
                uncle->red = false;
                st(ctx, uncle, kOffColor);
                gp->red = true;
                st(ctx, gp, kOffColor);
                z = gp;
            } else {
                if (z == z->parent->left) {
                    z = z->parent;
                    rotateRight(ctx, t, z);
                }
                z->parent->red = false;
                st(ctx, z->parent, kOffColor);
                gp->red = true;
                st(ctx, gp, kOffColor);
                rotateLeft(ctx, t, gp);
            }
        }
    }
    if (t.root->red) {
        t.root->red = false;
        st(ctx, t.root, kOffColor);
    }
}

bool
insert(TraceCtx &ctx, SyntheticSpace &space, unsigned primary, Tree &t,
       std::uint64_t key)
{
    Node *parent = &t.nil;
    Node *cur = t.root;
    while (cur != &t.nil) {
        ld(ctx, cur, kOffKey);
        ctx.compute(kInstsPerVisit);
        parent = cur;
        if (key < cur->key) {
            ld(ctx, cur, kOffLeft);
            cur = cur->left;
        } else if (key > cur->key) {
            ld(ctx, cur, kOffRight);
            cur = cur->right;
        } else {
            st(ctx, cur, kOffValue, 56);
            return false;
        }
    }
    Node *z = new Node;
    z->key = key;
    SyntheticPmo &pmo =
        (parent != &t.nil && ctx.rng().chance(kParentAffinity))
            ? space.owner(parent->va)
            : space.pmo(primary);
    z->va = pmo.alloc(kNodeBytes);
    z->left = z->right = &t.nil;
    z->parent = parent;
    z->red = true;
    st(ctx, z, kOffKey);
    st(ctx, z, kOffValue, 56);
    st(ctx, z, kOffLeft);
    st(ctx, z, kOffRight);
    st(ctx, z, kOffParent);
    st(ctx, z, kOffColor);
    if (parent == &t.nil) {
        t.root = z;
    } else if (key < parent->key) {
        parent->left = z;
        st(ctx, parent, kOffLeft);
    } else {
        parent->right = z;
        st(ctx, parent, kOffRight);
    }
    insertFixup(ctx, t, z);
    return true;
}

void
transplant(TraceCtx &ctx, Tree &t, Node *u, Node *v)
{
    if (u->parent == &t.nil) {
        t.root = v;
    } else if (u == u->parent->left) {
        u->parent->left = v;
        st(ctx, u->parent, kOffLeft);
    } else {
        u->parent->right = v;
        st(ctx, u->parent, kOffRight);
    }
    v->parent = u->parent;
    if (v != &t.nil)
        st(ctx, v, kOffParent);
}

void
deleteFixup(TraceCtx &ctx, Tree &t, Node *x)
{
    while (x != t.root && !x->red) {
        if (x == x->parent->left) {
            Node *w = x->parent->right;
            ld(ctx, w, kOffColor);
            if (w->red) {
                w->red = false;
                st(ctx, w, kOffColor);
                x->parent->red = true;
                st(ctx, x->parent, kOffColor);
                rotateLeft(ctx, t, x->parent);
                w = x->parent->right;
            }
            if (!w->left->red && !w->right->red) {
                w->red = true;
                if (w != &t.nil)
                    st(ctx, w, kOffColor);
                x = x->parent;
            } else {
                if (!w->right->red) {
                    w->left->red = false;
                    st(ctx, w->left, kOffColor);
                    w->red = true;
                    st(ctx, w, kOffColor);
                    rotateRight(ctx, t, w);
                    w = x->parent->right;
                }
                w->red = x->parent->red;
                if (w != &t.nil)
                    st(ctx, w, kOffColor);
                x->parent->red = false;
                st(ctx, x->parent, kOffColor);
                w->right->red = false;
                if (w->right != &t.nil)
                    st(ctx, w->right, kOffColor);
                rotateLeft(ctx, t, x->parent);
                x = t.root;
            }
        } else {
            Node *w = x->parent->left;
            ld(ctx, w, kOffColor);
            if (w->red) {
                w->red = false;
                st(ctx, w, kOffColor);
                x->parent->red = true;
                st(ctx, x->parent, kOffColor);
                rotateRight(ctx, t, x->parent);
                w = x->parent->left;
            }
            if (!w->right->red && !w->left->red) {
                w->red = true;
                if (w != &t.nil)
                    st(ctx, w, kOffColor);
                x = x->parent;
            } else {
                if (!w->left->red) {
                    w->right->red = false;
                    st(ctx, w->right, kOffColor);
                    w->red = true;
                    st(ctx, w, kOffColor);
                    rotateLeft(ctx, t, w);
                    w = x->parent->left;
                }
                w->red = x->parent->red;
                if (w != &t.nil)
                    st(ctx, w, kOffColor);
                x->parent->red = false;
                st(ctx, x->parent, kOffColor);
                w->left->red = false;
                if (w->left != &t.nil)
                    st(ctx, w->left, kOffColor);
                rotateRight(ctx, t, x->parent);
                x = t.root;
            }
        }
    }
    x->red = false;
    if (x != &t.nil)
        st(ctx, x, kOffColor);
}

bool
remove(TraceCtx &ctx, SyntheticSpace &space, Tree &t, std::uint64_t key)
{
    Node *z = t.root;
    while (z != &t.nil) {
        ld(ctx, z, kOffKey);
        ctx.compute(kInstsPerVisit);
        if (key < z->key) {
            ld(ctx, z, kOffLeft);
            z = z->left;
        } else if (key > z->key) {
            ld(ctx, z, kOffRight);
            z = z->right;
        } else {
            break;
        }
    }
    if (z == &t.nil)
        return false;

    Node *y = z;
    bool y_was_red = y->red;
    Node *x = nullptr;
    if (z->left == &t.nil) {
        x = z->right;
        transplant(ctx, t, z, z->right);
    } else if (z->right == &t.nil) {
        x = z->left;
        transplant(ctx, t, z, z->left);
    } else {
        y = z->right;
        ld(ctx, y, kOffLeft);
        while (y->left != &t.nil) {
            y = y->left;
            ld(ctx, y, kOffLeft);
        }
        y_was_red = y->red;
        x = y->right;
        if (y->parent == z) {
            x->parent = y;
        } else {
            transplant(ctx, t, y, y->right);
            y->right = z->right;
            st(ctx, y, kOffRight);
            y->right->parent = y;
            st(ctx, y->right, kOffParent);
        }
        transplant(ctx, t, z, y);
        y->left = z->left;
        st(ctx, y, kOffLeft);
        y->left->parent = y;
        st(ctx, y->left, kOffParent);
        y->red = z->red;
        st(ctx, y, kOffColor);
    }
    space.owner(z->va).free(z->va, kNodeBytes);
    delete z;
    if (!y_was_red)
        deleteFixup(ctx, t, x);
    return true;
}

/** Returns black height; panics on violated invariants. */
int
checkRec(const Tree &t, const Node *n, std::uint64_t lo,
         std::uint64_t hi)
{
    if (n == &t.nil)
        return 1;
    panic_if(n->key < lo || n->key > hi, "RBT ordering violated");
    if (n->red) {
        panic_if(n->left->red || n->right->red,
                 "RBT red-red violation");
    }
    const int lbh = checkRec(t, n->left, lo,
                             n->key == 0 ? 0 : n->key - 1);
    const int rbh = checkRec(t, n->right, n->key + 1, hi);
    panic_if(lbh != rbh, "RBT black-height violated");
    return lbh + (n->red ? 0 : 1);
}

} // namespace detail_rbt

RbtWorkload::RbtWorkload(const MicroParams &params) : MicroWorkload(params)
{
}

RbtWorkload::~RbtWorkload() = default;

void
RbtWorkload::setup(TraceCtx &ctx, SyntheticSpace &space)
{
    tree_ = std::make_unique<Tree>();
    Tree &t = *tree_;
    for (unsigned i = 0; i < params_.initialNodes; ++i) {
        const unsigned pmo =
            static_cast<unsigned>(ctx.rng().next(space.numPmos()));
        const std::uint64_t key = ctx.rng().raw();
        if (detail_rbt::insert(ctx, space, pmo, t, key)) {
            ++t.count;
            t.keys.push_back(key);
        }
    }
}

void
RbtWorkload::op(TraceCtx &ctx, SyntheticSpace &space, unsigned primary)
{
    ctx.compute(kInstsPerOp);
    Tree &t = *tree_;
    if (ctx.rng().chance(params_.insertRatio) || t.keys.empty()) {
        const std::uint64_t key = ctx.rng().raw();
        if (detail_rbt::insert(ctx, space, primary, t, key)) {
            ++t.count;
            t.keys.push_back(key);
        }
    } else {
        const std::size_t pick = ctx.rng().next(t.keys.size());
        const std::uint64_t key = t.keys[pick];
        t.keys[pick] = t.keys.back();
        t.keys.pop_back();
        if (detail_rbt::remove(ctx, space, t, key))
            --t.count;
    }
}

void
RbtWorkload::checkInvariants() const
{
    const Tree &t = *tree_;
    panic_if(t.root->red, "RBT root must be black");
    detail_rbt::checkRec(t, t.root, 0, ~std::uint64_t{0});
}

std::size_t
RbtWorkload::nodeCount() const
{
    return tree_->count;
}

} // namespace pmodv::workloads
