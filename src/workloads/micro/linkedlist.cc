/**
 * @file
 * Doubly-linked-list microbenchmark. Operations traverse from the
 * head to a random position (bounded) then insert or delete there.
 * Nodes are allocated and freed in random order, so successive list
 * neighbours live on different pages — the poor spatial locality the
 * paper points to for the linked list's steep curves.
 *
 * Node layout (96 B): key @0, value @8 (64 B), prev @72, next @80.
 */

#include "workloads/micro/workloads.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmodv::workloads
{

namespace
{
constexpr Addr kNodeBytes = 96;
constexpr Addr kOffKey = 0;
constexpr Addr kOffValue = 8;
constexpr Addr kOffPrev = 72;
constexpr Addr kOffNext = 80;
/** Traversal bound per operation. */
constexpr unsigned kMaxTraverse = 192;
constexpr std::uint32_t kInstsPerHop = 8;
constexpr std::uint32_t kInstsPerOp = 30;
/** Probability a new node is placed in its predecessor's PMO. */
constexpr double kNeighbourAffinity = 0.75;
} // namespace

struct LinkedListWorkload::Node
{
    std::uint64_t key = 0;
    Addr va = 0;
    Node *prev = nullptr;
    Node *next = nullptr;
    std::size_t indexPos = 0; ///< Slot in List::index (swap-pop).
};

struct LinkedListWorkload::List
{
    Node *head = nullptr;
    Node *tail = nullptr;
    std::size_t count = 0;
    /** All live nodes, for picking random traversal starting points
     *  ("every operation randomly selects a node ... to operate on"). */
    std::vector<Node *> index;

    ~List()
    {
        Node *n = head;
        while (n) {
            Node *next = n->next;
            delete n;
            n = next;
        }
    }
};

namespace detail_ll
{

using Node = LinkedListWorkload::Node;
using List = LinkedListWorkload::List;

/** Walk @p hops nodes from @p start, emitting the pointer chases. */
Node *
walk(TraceCtx &ctx, Node *start, unsigned hops)
{
    Node *cur = start;
    for (unsigned i = 0; cur && cur->next && i < hops; ++i) {
        ctx.load(cur->va + kOffKey);
        ctx.load(cur->va + kOffNext);
        ctx.compute(kInstsPerHop);
        cur = cur->next;
    }
    if (cur) {
        ctx.load(cur->va + kOffKey);
        ctx.load(cur->va + kOffNext);
    }
    return cur;
}

/** Insert a fresh node before @p at (nullptr = at the tail). */
void
insertBefore(TraceCtx &ctx, SyntheticSpace &space, unsigned primary,
             List &list, Node *at, std::uint64_t key)
{
    Node *n = new Node;
    n->key = key;
    Node *neighbour = at ? at->prev : list.tail;
    SyntheticPmo &pmo =
        (neighbour && ctx.rng().chance(kNeighbourAffinity))
            ? space.owner(neighbour->va)
            : space.pmo(primary);
    n->va = pmo.alloc(kNodeBytes);
    n->indexPos = list.index.size();
    list.index.push_back(n);
    ctx.store(n->va + kOffKey);
    ctx.store(n->va + kOffValue, 64);

    n->next = at;
    n->prev = at ? at->prev : list.tail;
    ctx.store(n->va + kOffNext);
    ctx.store(n->va + kOffPrev);
    if (n->prev) {
        n->prev->next = n;
        ctx.store(n->prev->va + kOffNext);
    } else {
        list.head = n;
    }
    if (at) {
        at->prev = n;
        ctx.store(at->va + kOffPrev);
    } else {
        list.tail = n;
    }
    ++list.count;
}

/** Unlink and free @p n. */
void
remove(TraceCtx &ctx, SyntheticSpace &space, List &list, Node *n)
{
    ctx.load(n->va + kOffPrev);
    ctx.load(n->va + kOffNext);
    if (n->prev) {
        n->prev->next = n->next;
        ctx.store(n->prev->va + kOffNext);
    } else {
        list.head = n->next;
    }
    if (n->next) {
        n->next->prev = n->prev;
        ctx.store(n->next->va + kOffPrev);
    } else {
        list.tail = n->prev;
    }
    space.owner(n->va).free(n->va, kNodeBytes);
    list.index[n->indexPos] = list.index.back();
    list.index[n->indexPos]->indexPos = n->indexPos;
    list.index.pop_back();
    delete n;
    --list.count;
}

} // namespace detail_ll

LinkedListWorkload::LinkedListWorkload(const MicroParams &params)
    : MicroWorkload(params)
{
}

LinkedListWorkload::~LinkedListWorkload() = default;

void
LinkedListWorkload::setup(TraceCtx &ctx, SyntheticSpace &space)
{
    list_ = std::make_unique<List>();
    List &list = *list_;
    for (unsigned i = 0; i < params_.initialNodes; ++i) {
        const unsigned pmo =
            static_cast<unsigned>(ctx.rng().next(space.numPmos()));
        Node *at = list.index.empty()
                       ? nullptr
                       : list.index[ctx.rng().next(list.index.size())];
        detail_ll::insertBefore(ctx, space, pmo, list, at,
                                ctx.rng().raw());
    }
}

void
LinkedListWorkload::op(TraceCtx &ctx, SyntheticSpace &space,
                       unsigned primary)
{
    ctx.compute(kInstsPerOp);
    List &list = *list_;
    const bool insert =
        ctx.rng().chance(params_.insertRatio) || list.count == 0;

    // Jump to a random node, then chase next pointers a bounded
    // number of hops; operate where the walk ends.
    Node *start = list.index.empty()
                      ? nullptr
                      : list.index[ctx.rng().next(list.index.size())];
    const unsigned hops =
        static_cast<unsigned>(ctx.rng().next(kMaxTraverse));
    Node *at = start ? detail_ll::walk(ctx, start, hops) : nullptr;
    if (insert) {
        detail_ll::insertBefore(ctx, space, primary, list, at,
                                ctx.rng().raw());
    } else if (at) {
        detail_ll::remove(ctx, space, list, at);
    }
}

void
LinkedListWorkload::checkInvariants() const
{
    const List &list = *list_;
    std::size_t n = 0;
    const Node *prev = nullptr;
    for (const Node *cur = list.head; cur; cur = cur->next) {
        panic_if(cur->prev != prev, "linked list prev pointer broken");
        prev = cur;
        ++n;
    }
    panic_if(prev != list.tail, "linked list tail pointer broken");
    panic_if(n != list.count, "linked list count mismatch");
    panic_if(list.index.size() != list.count,
             "linked list node index out of sync");
    for (std::size_t i = 0; i < list.index.size(); ++i) {
        panic_if(list.index[i]->indexPos != i,
                 "linked list index position stale");
    }
}

std::size_t
LinkedListWorkload::nodeCount() const
{
    return list_->count;
}

} // namespace pmodv::workloads
