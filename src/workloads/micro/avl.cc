/**
 * @file
 * AVL tree microbenchmark. Node layout inside the PMO (96 bytes):
 * traversal metadata packed into the first cache line (key @0,
 * left @8, right @16, height @24), the 64-byte value at @32.
 */

#include "workloads/micro/workloads.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmodv::workloads
{

namespace
{
constexpr Addr kNodeBytes = 96;
constexpr Addr kOffKey = 0;
constexpr Addr kOffLeft = 8;
constexpr Addr kOffRight = 16;
constexpr Addr kOffHeight = 24;
constexpr Addr kOffValue = 32; ///< 64-byte value spills to line 1.
/** Non-memory instructions modelled per node visit. */
constexpr std::uint32_t kInstsPerVisit = 10;
/** Per-operation fixed bookkeeping instructions. */
constexpr std::uint32_t kInstsPerOp = 40;
/** Probability a new node is placed in its parent's PMO. */
constexpr double kParentAffinity = 0.75;
} // namespace

struct AvlWorkload::Node
{
    std::uint64_t key = 0;
    Addr va = 0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    int height = 1;
};

struct AvlWorkload::Tree
{
    std::unique_ptr<Node> root;
    std::size_t count = 0;
    std::vector<std::uint64_t> keys; ///< For random victim selection.
};

namespace detail_avl
{

int
heightOf(const AvlWorkload::Node *n)
{
    return n ? n->height : 0;
}

void
updateHeight(TraceCtx &ctx, AvlWorkload::Node *n)
{
    // Read both child heights, store the new height.
    if (n->left)
        ctx.load(n->left->va + kOffHeight);
    if (n->right)
        ctx.load(n->right->va + kOffHeight);
    n->height =
        1 + std::max(heightOf(n->left.get()), heightOf(n->right.get()));
    ctx.store(n->va + kOffHeight);
}

int
balanceOf(const AvlWorkload::Node *n)
{
    return heightOf(n->left.get()) - heightOf(n->right.get());
}

std::unique_ptr<AvlWorkload::Node>
rotateRight(TraceCtx &ctx, std::unique_ptr<AvlWorkload::Node> y)
{
    auto x = std::move(y->left);
    // Pointer surgery: two pointer stores plus height maintenance.
    ctx.load(x->va + kOffRight);
    y->left = std::move(x->right);
    ctx.store(y->va + kOffLeft);
    updateHeight(ctx, y.get());
    x->right = std::move(y);
    ctx.store(x->va + kOffRight);
    updateHeight(ctx, x.get());
    return x;
}

std::unique_ptr<AvlWorkload::Node>
rotateLeft(TraceCtx &ctx, std::unique_ptr<AvlWorkload::Node> x)
{
    auto y = std::move(x->right);
    ctx.load(y->va + kOffLeft);
    x->right = std::move(y->left);
    ctx.store(x->va + kOffRight);
    updateHeight(ctx, x.get());
    y->left = std::move(x);
    ctx.store(y->va + kOffLeft);
    updateHeight(ctx, y.get());
    return y;
}

std::unique_ptr<AvlWorkload::Node>
rebalance(TraceCtx &ctx, std::unique_ptr<AvlWorkload::Node> n)
{
    updateHeight(ctx, n.get());
    const int balance = balanceOf(n.get());
    if (balance > 1) {
        if (balanceOf(n->left.get()) < 0)
            n->left = rotateLeft(ctx, std::move(n->left));
        return rotateRight(ctx, std::move(n));
    }
    if (balance < -1) {
        if (balanceOf(n->right.get()) > 0)
            n->right = rotateRight(ctx, std::move(n->right));
        return rotateLeft(ctx, std::move(n));
    }
    return n;
}

std::unique_ptr<AvlWorkload::Node>
insertRec(TraceCtx &ctx, SyntheticSpace &space, unsigned primary,
          Addr parent_va, std::unique_ptr<AvlWorkload::Node> n,
          std::uint64_t key, bool &inserted)
{
    if (!n) {
        auto fresh = std::make_unique<AvlWorkload::Node>();
        fresh->key = key;
        // Allocators co-locate children with their parents about half
        // the time; the rest land in the operation's primary PMO.
        SyntheticPmo &pmo =
            (parent_va != 0 && ctx.rng().chance(kParentAffinity))
                ? space.owner(parent_va)
                : space.pmo(primary);
        fresh->va = pmo.alloc(kNodeBytes);
        // Initialize the new node: key, 64-byte value, links, height.
        ctx.store(fresh->va + kOffKey);
        ctx.store(fresh->va + kOffValue, 64);
        ctx.store(fresh->va + kOffLeft);
        ctx.store(fresh->va + kOffRight);
        ctx.store(fresh->va + kOffHeight);
        inserted = true;
        return fresh;
    }
    // Visit: read the key, then the relevant child pointer.
    ctx.load(n->va + kOffKey);
    ctx.compute(kInstsPerVisit);
    if (key < n->key) {
        ctx.load(n->va + kOffLeft);
        n->left = insertRec(ctx, space, primary, n->va,
                            std::move(n->left), key, inserted);
        if (inserted)
            ctx.store(n->va + kOffLeft);
    } else if (key > n->key) {
        ctx.load(n->va + kOffRight);
        n->right = insertRec(ctx, space, primary, n->va,
                             std::move(n->right), key, inserted);
        if (inserted)
            ctx.store(n->va + kOffRight);
    } else {
        // Duplicate: overwrite the value in place.
        ctx.store(n->va + kOffValue, 64);
        return n;
    }
    return inserted ? rebalance(ctx, std::move(n)) : std::move(n);
}

std::unique_ptr<AvlWorkload::Node>
removeRec(TraceCtx &ctx, SyntheticSpace &space,
          std::unique_ptr<AvlWorkload::Node> n, std::uint64_t key,
          bool &removed)
{
    if (!n)
        return n;
    ctx.load(n->va + kOffKey);
    ctx.compute(kInstsPerVisit);
    if (key < n->key) {
        ctx.load(n->va + kOffLeft);
        n->left =
            removeRec(ctx, space, std::move(n->left), key, removed);
        if (removed)
            ctx.store(n->va + kOffLeft);
    } else if (key > n->key) {
        ctx.load(n->va + kOffRight);
        n->right =
            removeRec(ctx, space, std::move(n->right), key, removed);
        if (removed)
            ctx.store(n->va + kOffRight);
    } else {
        removed = true;
        if (!n->left || !n->right) {
            space.owner(n->va).free(n->va, kNodeBytes);
            auto child =
                std::move(n->left ? n->left : n->right);
            return child;
        }
        // Two children: splice in the in-order successor.
        AvlWorkload::Node *succ = n->right.get();
        ctx.load(succ->va + kOffLeft);
        while (succ->left) {
            succ = succ->left.get();
            ctx.load(succ->va + kOffLeft);
        }
        n->key = succ->key;
        ctx.load(succ->va + kOffKey);
        ctx.store(n->va + kOffKey);
        ctx.load(succ->va + kOffValue, 64);
        ctx.store(n->va + kOffValue, 64);
        bool dummy = false;
        n->right =
            removeRec(ctx, space, std::move(n->right), succ->key, dummy);
        ctx.store(n->va + kOffRight);
    }
    return removed ? rebalance(ctx, std::move(n)) : std::move(n);
}

int
checkRec(const AvlWorkload::Node *n, std::uint64_t lo, std::uint64_t hi)
{
    if (!n)
        return 0;
    panic_if(n->key < lo || n->key > hi, "AVL ordering violated");
    const int lh = checkRec(n->left.get(), lo,
                            n->key == 0 ? 0 : n->key - 1);
    const int rh = checkRec(n->right.get(), n->key + 1, hi);
    panic_if(lh - rh > 1 || rh - lh > 1, "AVL balance violated");
    panic_if(n->height != 1 + std::max(lh, rh), "AVL height stale");
    return 1 + std::max(lh, rh);
}

} // namespace detail_avl

AvlWorkload::AvlWorkload(const MicroParams &params) : MicroWorkload(params)
{
}

AvlWorkload::~AvlWorkload() = default;

void
AvlWorkload::insertOne(TraceCtx &ctx, SyntheticSpace &space,
                       unsigned primary, std::uint64_t key)
{
    Tree &tree = *tree_;
    bool inserted = false;
    tree.root = detail_avl::insertRec(ctx, space, primary, 0,
                                      std::move(tree.root), key,
                                      inserted);
    if (inserted) {
        ++tree.count;
        tree.keys.push_back(key);
    }
}

void
AvlWorkload::deleteOne(TraceCtx &ctx, SyntheticSpace &space)
{
    Tree &tree = *tree_;
    if (tree.keys.empty())
        return;
    const std::size_t pick = ctx.rng().next(tree.keys.size());
    const std::uint64_t key = tree.keys[pick];
    tree.keys[pick] = tree.keys.back();
    tree.keys.pop_back();
    bool removed = false;
    tree.root = detail_avl::removeRec(ctx, space, std::move(tree.root),
                                      key, removed);
    if (removed)
        --tree.count;
}

void
AvlWorkload::setup(TraceCtx &ctx, SyntheticSpace &space)
{
    tree_ = std::make_unique<Tree>();
    for (unsigned i = 0; i < params_.initialNodes; ++i) {
        const unsigned pmo =
            static_cast<unsigned>(ctx.rng().next(space.numPmos()));
        insertOne(ctx, space, pmo, ctx.rng().raw());
    }
}

void
AvlWorkload::op(TraceCtx &ctx, SyntheticSpace &space, unsigned primary)
{
    ctx.compute(kInstsPerOp);
    if (ctx.rng().chance(params_.insertRatio))
        insertOne(ctx, space, primary, ctx.rng().raw());
    else
        deleteOne(ctx, space);
}

void
AvlWorkload::checkInvariants() const
{
    detail_avl::checkRec(tree_->root.get(), 0, ~std::uint64_t{0});
}

std::size_t
AvlWorkload::nodeCount() const
{
    return tree_->count;
}

} // namespace pmodv::workloads
