/**
 * @file
 * Trace-generation context for workloads.
 *
 * TraceCtx bundles the trace sink, the deterministic RNG and emission
 * helpers. SyntheticPmo/SyntheticSpace provide a lightweight PMO
 * address model for the large multi-PMO sweeps (1024 x 8 MB pools):
 * they allocate *simulated addresses* out of each PMO's VA range
 * without materializing 8 GB of pool media — the timing simulator
 * only consumes addresses, exactly as the paper's Pin traces did.
 * (The WHISPER workloads, by contrast, run on the real PMO library.)
 */

#ifndef PMODV_WORKLOADS_TRACE_CTX_HH
#define PMODV_WORKLOADS_TRACE_CTX_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/sinks.hh"

namespace pmodv::workloads
{

/** Emission helpers shared by all workload generators. */
class TraceCtx
{
  public:
    TraceCtx(trace::TraceSink &sink, std::uint64_t seed)
        : sink_(sink), rng_(seed)
    {
    }

    Rng &rng() { return rng_; }
    trace::TraceSink &sink() { return sink_; }

    ThreadId tid() const { return tid_; }

    /** Switch the generating thread (emits a ThreadSwitch record). */
    void
    setThread(ThreadId tid)
    {
        if (tid == tid_)
            return;
        tid_ = tid;
        sink_.put(trace::TraceRecord::threadSwitch(
            static_cast<std::uint16_t>(tid)));
    }

    /**
     * Mute data-access emission (setup phases build structures
     * without polluting the measured trace). Control records
     * (attach/setperm/thread switch) are never muted.
     */
    void setMuted(bool muted) { muted_ = muted; }
    bool muted() const { return muted_; }

    void
    load(Addr va, std::uint32_t size = 8, bool pmo = true)
    {
        if (muted_)
            return;
        sink_.put(trace::TraceRecord::load(
            static_cast<std::uint16_t>(tid_), va, size, pmo));
    }

    void
    store(Addr va, std::uint32_t size = 8, bool pmo = true)
    {
        if (muted_)
            return;
        sink_.put(trace::TraceRecord::store(
            static_cast<std::uint16_t>(tid_), va, size, pmo));
    }

    void
    setPerm(DomainId domain, Perm perm)
    {
        sink_.put(trace::TraceRecord::setPerm(
            static_cast<std::uint16_t>(tid_), domain, perm));
    }

    void
    compute(std::uint32_t insts)
    {
        if (insts && !muted_)
            sink_.put(trace::TraceRecord::instBlock(
                static_cast<std::uint16_t>(tid_), insts));
    }

    void
    attach(DomainId domain, Addr base, Addr size, Perm perm,
           PageSize page_size = PageSize::Size4K)
    {
        sink_.put(trace::TraceRecord::attach(
            static_cast<std::uint16_t>(tid_), domain, base, size, perm,
            page_size));
    }

    void
    detach(DomainId domain)
    {
        sink_.put(trace::TraceRecord::detach(
            static_cast<std::uint16_t>(tid_), domain));
    }

    void
    opBegin(std::uint32_t kind = 0)
    {
        sink_.put(trace::TraceRecord::opBegin(
            static_cast<std::uint16_t>(tid_), kind));
    }

    /**
     * Begin an op with an open-loop arrival stamp: the request
     * arrived at model cycle @p arrival and belongs to latency class
     * @p op_class (see trace::TraceRecord::opBeginAt).
     */
    void
    opBeginAt(std::uint32_t kind, std::uint64_t arrival,
              std::uint32_t op_class)
    {
        sink_.put(trace::TraceRecord::opBeginAt(
            static_cast<std::uint16_t>(tid_), kind, arrival, op_class));
    }

    void
    opEnd(std::uint32_t kind = 0)
    {
        sink_.put(trace::TraceRecord::opEnd(
            static_cast<std::uint16_t>(tid_), kind));
    }

    /** A volatile (DRAM) scratch access at a stable per-thread VA. */
    void
    scratch(std::uint32_t slot, bool write)
    {
        const Addr va = kScratchBase + tid_ * kScratchStride + slot * 64;
        if (write)
            store(va, 8, false);
        else
            load(va, 8, false);
    }

  private:
    static constexpr Addr kScratchBase = Addr{1} << 20;
    static constexpr Addr kScratchStride = Addr{1} << 16;

    trace::TraceSink &sink_;
    Rng rng_;
    ThreadId tid_ = 0;
    bool muted_ = false;
};

/** A synthetic PMO: a VA range with a node allocator. */
class SyntheticPmo
{
  public:
    SyntheticPmo(DomainId domain, Addr va_base, Addr bytes)
        : domain_(domain), vaBase_(va_base), bytes_(bytes)
    {
    }

    DomainId domain() const { return domain_; }
    Addr vaBase() const { return vaBase_; }
    Addr bytes() const { return bytes_; }

    /** Allocate @p size bytes; returns the simulated VA. */
    Addr alloc(Addr size);

    /** Return a previously allocated block to the free list. */
    void free(Addr va, Addr size);

    Addr bytesUsed() const { return bump_ - reclaimedBytes_; }

  private:
    DomainId domain_;
    Addr vaBase_;
    Addr bytes_;
    Addr bump_ = 0;
    Addr reclaimedBytes_ = 0;
    /** Size-keyed free lists of offsets. */
    std::vector<std::pair<Addr, Addr>> freeList_; // {offset, size}
};

/** The collection of synthetic PMOs a multi-PMO workload uses. */
class SyntheticSpace
{
  public:
    /**
     * Create @p num_pmos PMOs of @p bytes each, assign domains
     * 1..num_pmos and disjoint VA ranges, and emit Attach records
     * into @p ctx (page permission = requested @p page_perm; mapped
     * at @p page_size granularity — the paper's attach syscall maps
     * PMOs at a page-table-level granularity of 4KB/2MB/1GB).
     */
    SyntheticSpace(TraceCtx &ctx, unsigned num_pmos, Addr bytes,
                   Perm page_perm = Perm::ReadWrite,
                   PageSize page_size = PageSize::Size4K);

    unsigned numPmos() const
    {
        return static_cast<unsigned>(pmos_.size());
    }

    SyntheticPmo &pmo(unsigned idx) { return pmos_[idx]; }

    /** The PMO whose VA range contains @p va; panics if none. */
    SyntheticPmo &owner(Addr va);

  private:
    std::vector<SyntheticPmo> pmos_;
    Addr start_ = 0;
    Addr stride_ = 0;
};

} // namespace pmodv::workloads

#endif // PMODV_WORKLOADS_TRACE_CTX_HH
