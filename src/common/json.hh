/**
 * @file
 * A minimal JSON document parser for tools that read the suite's own
 * output back in (pmodv-trace explain, ad-hoc report scripts). It is
 * a strict recursive-descent parser over the full JSON grammar with
 * two deliberate simplifications that match what the suite emits:
 *
 *  - numbers are stored twice, as the double strtod() yields AND as
 *    the raw source text, so integer fields round-trip exactly even
 *    past 2^53 (cycle counts and 64-bit ids use asU64() which parses
 *    the raw text); and
 *  - objects keep their members in document order (a vector of
 *    pairs), so reports iterating an object are deterministic and
 *    mirror the writer's order, while find() stays correct for the
 *    small objects involved.
 *
 * This is a reader for trusted, machine-written input — parse errors
 * return nullopt with a position message rather than recovering.
 */

#ifndef PMODV_COMMON_JSON_HH
#define PMODV_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pmodv::common
{

/** One parsed JSON value; a tree of these is a document. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    /** Members in document order; keys are unique in suite output. */
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors panic() when the kind does not match. */
    bool boolean() const;
    double number() const;
    /** The number re-parsed from its source text as a uint64 (exact
     *  for the 64-bit counters the suite emits); panics on non-number
     *  and on negative/fractional source text. */
    std::uint64_t asU64() const;
    const std::string &str() const;
    const Array &array() const;
    const Object &object() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
    /** find() that panics when the member is missing. */
    const JsonValue &at(const std::string &key) const;

    /** Array element; panics out of range or on non-array. */
    const JsonValue &at(std::size_t index) const;
    std::size_t size() const;

    // Builders (used by the parser; handy for tests).
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d, std::string raw);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(Array a);
    static JsonValue makeObject(Object o);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string raw_; ///< Number source text (exact u64 round-trip).
    std::string str_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage is an error). On failure returns nullopt and, when
 * @p error is non-null, stores a "byte offset N: why" message.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

/** parseJson() over a whole file; nullopt on I/O or parse failure. */
std::optional<JsonValue> parseJsonFile(const std::string &path,
                                       std::string *error = nullptr);

} // namespace pmodv::common

#endif // PMODV_COMMON_JSON_HH
