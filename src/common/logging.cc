#include "common/logging.hh"

#include <atomic>

namespace pmodv
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

bool
setLogQuiet(bool quiet)
{
    return quietFlag.exchange(quiet, std::memory_order_relaxed);
}

namespace detail
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

void
logMessage(const char *tag, const char *file, int line,
           const std::string &msg)
{
    if (file) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", tag, msg.c_str(), file,
                     line);
    } else {
        std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    }
    std::fflush(stderr);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    logMessage("panic", file, line, msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    logMessage("fatal", file, line, msg);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    if (logQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    logMessage("warn", file, line, msg);
}

void
informImpl(const char *fmt, ...)
{
    if (logQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    logMessage("info", nullptr, 0, msg);
}

} // namespace detail
} // namespace pmodv
