#include "common/thread_pool.hh"

namespace pmodv::common
{

unsigned
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
            // Drain the queue even when stopping: a destructed pool
            // still runs everything that was submitted.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // packaged_task: exceptions land in the future.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--unfinished_ == 0)
                idleCv_.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return unfinished_ == 0; });
}

} // namespace pmodv::common
