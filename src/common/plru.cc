#include "common/plru.hh"

#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv
{

TreePlru::TreePlru(unsigned num_ways) : numWays_(num_ways)
{
    panic_if(num_ways == 0, "TreePlru needs at least one way");
    panic_if(num_ways > kMaxWays, "TreePlru supports at most %u ways",
             kMaxWays);
    treeWays_ = 1u << ceilLog2(num_ways);
}

void
TreePlru::touch(unsigned way)
{
    panic_if(way >= numWays_, "TreePlru::touch way %u out of range", way);
    if (treeWays_ == 1)
        return;
    // Walk from the root to the leaf, flipping each internal bit to
    // point away from the touched way.
    unsigned node = 0;
    unsigned lo = 0;
    unsigned span = treeWays_;
    while (span > 1) {
        const unsigned half = span / 2;
        const bool right = way >= lo + half;
        // bit false => victim path goes left; point away from 'way'.
        setBit(node, !right);
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo += half;
        span = half;
    }
}

unsigned
TreePlru::victim() const
{
    if (treeWays_ == 1)
        return 0;
    unsigned node = 0;
    unsigned lo = 0;
    unsigned span = treeWays_;
    while (span > 1) {
        const unsigned half = span / 2;
        const bool right = bit(node);
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo += half;
        span = half;
    }
    // With non-power-of-two way counts the tree may land on a
    // nonexistent way; fold it back into range.
    return lo % numWays_;
}

void
TreePlru::reset()
{
    std::memset(bits_, 0, sizeof(bits_));
}

TrueLru::TrueLru(unsigned num_ways) : numWays_(num_ways)
{
    panic_if(num_ways == 0, "TrueLru needs at least one way");
    stamps_.assign(num_ways, 0);
}

void
TrueLru::touch(unsigned way)
{
    panic_if(way >= numWays_, "TrueLru::touch way %u out of range", way);
    stamps_[way] = ++clock_;
}

unsigned
TrueLru::victim() const
{
    unsigned best = 0;
    for (unsigned w = 1; w < numWays_; ++w) {
        if (stamps_[w] < stamps_[best])
            best = w;
    }
    return best;
}

void
TrueLru::reset()
{
    stamps_.assign(numWays_, 0);
    clock_ = 0;
}

} // namespace pmodv
