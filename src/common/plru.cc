#include "common/plru.hh"

#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv
{

TreePlru::TreePlru(unsigned num_ways) : numWays_(num_ways)
{
    panic_if(num_ways == 0, "TreePlru needs at least one way");
    panic_if(num_ways > kMaxWays, "TreePlru supports at most %u ways",
             kMaxWays);
    treeWays_ = 1u << ceilLog2(num_ways);
}

void
TreePlru::touch(unsigned way)
{
    panic_if(way >= numWays_, "TreePlru::touch way %u out of range", way);
    if (treeWays_ == 1)
        return;
    // Walk from the root to the leaf, flipping each internal bit to
    // point away from the touched way.
    unsigned node = 0;
    unsigned lo = 0;
    unsigned span = treeWays_;
    while (span > 1) {
        const unsigned half = span / 2;
        const bool right = way >= lo + half;
        // bit false => victim path goes left; point away from 'way'.
        setBit(node, !right);
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo += half;
        span = half;
    }
}

std::vector<TreePlru::TouchOp>
TreePlru::makeTouchLut(unsigned num_ways)
{
    panic_if(num_ways == 0 || num_ways > kMaxWays,
             "TreePlru LUT for invalid way count %u", num_ways);
    const unsigned tree_ways = 1u << ceilLog2(num_ways);
    if (tree_ways > 64)
        return {}; // Path nodes would spill past bits_[0].
    std::vector<TouchOp> lut(num_ways);
    for (unsigned way = 0; way < num_ways; ++way) {
        unsigned node = 0;
        unsigned lo = 0;
        unsigned span = tree_ways;
        while (span > 1) {
            const unsigned half = span / 2;
            const bool right = way >= lo + half;
            lut[way].mask |= std::uint64_t{1} << node;
            if (!right)
                lut[way].value |= std::uint64_t{1} << node;
            node = 2 * node + (right ? 2 : 1);
            if (right)
                lo += half;
            span = half;
        }
    }
    return lut;
}

TreePlru::VictimLut
TreePlru::makeVictimLut(unsigned num_ways)
{
    panic_if(num_ways == 0 || num_ways > kMaxWays,
             "TreePlru victim LUT for invalid way count %u", num_ways);
    const unsigned tree_ways = 1u << ceilLog2(num_ways);
    VictimLut lut;
    if (tree_ways < 2 || tree_ways > 16)
        return lut; // Degenerate, or the table would get too big.
    // victim() only reads the root-to-leaf path nodes, all of which
    // have indices below tree_ways - 1; enumerate every bit pattern
    // and record where the walk lands.
    const unsigned bits = tree_ways - 1;
    lut.mask = (std::uint64_t{1} << bits) - 1;
    lut.table.resize(std::size_t{1} << bits);
    for (std::uint64_t pat = 0; pat <= lut.mask; ++pat) {
        unsigned node = 0;
        unsigned lo = 0;
        unsigned span = tree_ways;
        while (span > 1) {
            const unsigned half = span / 2;
            const bool right = (pat >> node) & 1;
            node = 2 * node + (right ? 2 : 1);
            if (right)
                lo += half;
            span = half;
        }
        lut.table[pat] = static_cast<std::uint8_t>(lo % num_ways);
    }
    return lut;
}

unsigned
TreePlru::victim() const
{
    if (treeWays_ == 1)
        return 0;
    unsigned node = 0;
    unsigned lo = 0;
    unsigned span = treeWays_;
    while (span > 1) {
        const unsigned half = span / 2;
        const bool right = bit(node);
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo += half;
        span = half;
    }
    // With non-power-of-two way counts the tree may land on a
    // nonexistent way; fold it back into range.
    return lo % numWays_;
}

void
TreePlru::reset()
{
    std::memset(bits_, 0, sizeof(bits_));
}

TrueLru::TrueLru(unsigned num_ways) : numWays_(num_ways)
{
    panic_if(num_ways == 0, "TrueLru needs at least one way");
    stamps_.assign(num_ways, 0);
}

void
TrueLru::touch(unsigned way)
{
    panic_if(way >= numWays_, "TrueLru::touch way %u out of range", way);
    stamps_[way] = ++clock_;
}

unsigned
TrueLru::victim() const
{
    unsigned best = 0;
    for (unsigned w = 1; w < numWays_; ++w) {
        if (stamps_[w] < stamps_[best])
            best = w;
    }
    return best;
}

void
TrueLru::reset()
{
    stamps_.assign(numWays_, 0);
    clock_ = 0;
}

} // namespace pmodv
