/**
 * @file
 * Deterministic random-number utilities. Every stochastic choice in
 * workload generation flows through an explicitly seeded Rng so a
 * given (workload, seed) pair always produces the identical trace.
 */

#ifndef PMODV_COMMON_RNG_HH
#define PMODV_COMMON_RNG_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace pmodv
{

/**
 * A thin deterministic wrapper around std::mt19937_64 with the
 * convenience draws workloads need.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    next(std::uint64_t bound)
    {
        return std::uniform_int_distribution<std::uint64_t>(
            0, bound - 1)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo,
                                                            hi)(engine_);
    }

    /** Uniform real in [0, 1). */
    double
    real()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Bernoulli draw: true with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** Raw 64-bit draw. */
    std::uint64_t raw() { return engine_(); }

    /**
     * A Zipf-like skewed draw in [0, n): power-law inverse-CDF
     * approximation used by the YCSB-style workloads. Larger theta
     * (0..1) concentrates mass near rank 0; theta = 0 degenerates to
     * uniform.
     */
    std::uint64_t
    zipf(std::uint64_t n, double theta)
    {
        if (theta <= 0.0)
            return next(n);
        const double u = real();
        // u^(1/(1-theta)) maps uniform mass onto low ranks; at
        // theta = 0.9 roughly 50% of draws land in the first 0.1%.
        const double x =
            static_cast<double>(n) * std::pow(u, 1.0 / (1.0 - theta));
        auto idx = static_cast<std::uint64_t>(x);
        return idx >= n ? n - 1 : idx;
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/**
 * An *exact* Zipf distribution over ranks [0, n) with a precomputed
 * cumulative table: P(rank r) proportional to 1/(r+1)^theta. Building
 * the table is O(n) once; every draw is a single uniform variate plus
 * an O(log n) binary search. (Rng::zipf's inverse-power approximation
 * stays for the YCSB-style workloads, but recomputing a harmonic sum
 * per draw — the naive exact approach — is O(n) per sample and would
 * dominate 4096-tenant server runs.)
 *
 * theta = 0 degenerates to uniform; theta ~ 0.99 is the classic
 * YCSB/web skew where a handful of hot ranks absorb most draws.
 */
class ZipfDist
{
  public:
    ZipfDist(std::uint64_t n, double theta) : theta_(theta)
    {
        cdf_.reserve(static_cast<std::size_t>(n));
        double sum = 0.0;
        for (std::uint64_t r = 0; r < n; ++r) {
            sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
            cdf_.push_back(sum);
        }
        total_ = sum;
    }

    std::uint64_t size() const { return cdf_.size(); }

    /** Draw a rank using @p rng (one real() consumed per draw). */
    std::uint64_t
    operator()(Rng &rng) const
    {
        return sample(rng.real());
    }

    /** Map a uniform variate @p u in [0, 1) onto a rank. */
    std::uint64_t
    sample(double u) const
    {
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(),
                                         u * total_);
        const auto idx = static_cast<std::uint64_t>(it - cdf_.begin());
        return idx >= cdf_.size() ? cdf_.size() - 1 : idx;
    }

    /** Exact probability mass of @p rank (tests / chi-square). */
    double
    rankMass(std::uint64_t rank) const
    {
        if (rank >= cdf_.size() || total_ == 0.0)
            return 0.0;
        return 1.0 /
               (std::pow(static_cast<double>(rank + 1), theta_) * total_);
    }

  private:
    double theta_;
    double total_ = 0.0;
    std::vector<double> cdf_; ///< Unnormalized cumulative masses.
};

} // namespace pmodv

#endif // PMODV_COMMON_RNG_HH
