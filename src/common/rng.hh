/**
 * @file
 * Deterministic random-number utilities. Every stochastic choice in
 * workload generation flows through an explicitly seeded Rng so a
 * given (workload, seed) pair always produces the identical trace.
 */

#ifndef PMODV_COMMON_RNG_HH
#define PMODV_COMMON_RNG_HH

#include <cmath>
#include <cstdint>
#include <random>

namespace pmodv
{

/**
 * A thin deterministic wrapper around std::mt19937_64 with the
 * convenience draws workloads need.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    next(std::uint64_t bound)
    {
        return std::uniform_int_distribution<std::uint64_t>(
            0, bound - 1)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo,
                                                            hi)(engine_);
    }

    /** Uniform real in [0, 1). */
    double
    real()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Bernoulli draw: true with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** Raw 64-bit draw. */
    std::uint64_t raw() { return engine_(); }

    /**
     * A Zipf-like skewed draw in [0, n): power-law inverse-CDF
     * approximation used by the YCSB-style workloads. Larger theta
     * (0..1) concentrates mass near rank 0; theta = 0 degenerates to
     * uniform.
     */
    std::uint64_t
    zipf(std::uint64_t n, double theta)
    {
        if (theta <= 0.0)
            return next(n);
        const double u = real();
        // u^(1/(1-theta)) maps uniform mass onto low ranks; at
        // theta = 0.9 roughly 50% of draws land in the first 0.1%.
        const double x =
            static_cast<double>(n) * std::pow(u, 1.0 / (1.0 - theta));
        auto idx = static_cast<std::uint64_t>(x);
        return idx >= n ? n - 1 : idx;
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace pmodv

#endif // PMODV_COMMON_RNG_HH
