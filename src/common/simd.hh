/**
 * @file
 * Vectorized tag-array probes for the flat set-major TLB/cache/PTLB
 * storage. The hot operation is "find the first index whose packed
 * 64-bit tag equals a target" over a small row (4-16 ways).
 *
 * Three implementations share one contract:
 *  - scalar loop (always available; forced by -DPMODV_FORCE_SCALAR=ON
 *    at configure time or simd::setForceScalar(true) at runtime),
 *  - SSE2 two-lane compare (baseline x86-64, no dispatch needed),
 *  - AVX2 four-lane compare (out-of-line function multiversioning,
 *    selected once at startup via __builtin_cpu_supports).
 * AArch64 uses a NEON two-lane compare in place of SSE2.
 *
 * Callers must pad flat tag arrays with kTagPad zero entries past the
 * end so the vector loops may over-read within the allocation; a
 * packed tag of 0 always means "invalid slot" so the padding can
 * never produce a false match beyond the row (matches at index >= n
 * are filtered before returning).
 */

#ifndef PMODV_COMMON_SIMD_HH
#define PMODV_COMMON_SIMD_HH

#include <cstdint>

#if defined(__x86_64__) && !defined(PMODV_FORCE_SCALAR)
#include <emmintrin.h>
#elif defined(__aarch64__) && !defined(PMODV_FORCE_SCALAR)
#include <arm_neon.h>
#endif

namespace pmodv::simd
{

/** Zero-tag slots callers must append after every flat tag array. */
inline constexpr unsigned kTagPad = 4;

/** Runtime kill switch (for the scalar-vs-SIMD differential test). */
extern bool gForceScalar;

void setForceScalar(bool force);
bool forceScalar();

/** Name of the probe implementation currently in effect. */
const char *activeImpl();

/** Reference implementation: first i < n with a[i] == target, else -1. */
int findU64Scalar(const std::uint64_t *a, unsigned n,
                  std::uint64_t target);

/**
 * Reference implementation: index of the first occurrence of the
 * minimum of a[0..n). n must be >= 1. Matches the classic "earliest
 * stamp wins, ties broken by lowest index" LRU victim scan.
 */
unsigned argminU64Scalar(const std::uint64_t *a, unsigned n);

#if defined(__x86_64__) && !defined(PMODV_FORCE_SCALAR)

/** True when the CPU supports AVX2 (detected once at startup). */
extern const bool gHaveAvx2;

/** AVX2 variant, compiled with target("avx2"); only call if gHaveAvx2. */
int findU64Avx2(const std::uint64_t *a, unsigned n, std::uint64_t target);

/** AVX2 argmin over a multiple-of-4-sized row; only if gHaveAvx2. */
unsigned argminU64Avx2(const std::uint64_t *a, unsigned n);

/**
 * Index of the first occurrence of the minimum of a[0..n) — the LRU
 * victim scan. Bit-identical to argminU64Scalar (both return the
 * earliest index of the global minimum), just faster on wide rows.
 */
inline unsigned
argminU64(const std::uint64_t *a, unsigned n)
{
    if (gForceScalar) [[unlikely]]
        return argminU64Scalar(a, n);
    if (n >= 16 && n % 4 == 0 && gHaveAvx2)
        return argminU64Avx2(a, n);
    return argminU64Scalar(a, n);
}

/**
 * First index i < n with a[i] == target, else -1. Rows are probed two
 * (SSE2) or four (AVX2) tags per step; the padding contract above
 * makes the over-read safe and false-positive free.
 */
inline int
findU64(const std::uint64_t *a, unsigned n, std::uint64_t target)
{
    if (gForceScalar) [[unlikely]]
        return findU64Scalar(a, n, target);
    // The out-of-line AVX2 variant only pays for itself on long rows;
    // short rows stay in the inline SSE2 loop below.
    if (n > 8 && gHaveAvx2)
        return findU64Avx2(a, n, target);
    // Two tags per step with an early exit on match: hit-heavy
    // regimes (small working sets) stop at the matching chunk, and a
    // full-row miss is still only n/2 well-predicted branches.
    const __m128i want = _mm_set1_epi64x(static_cast<long long>(target));
    for (unsigned i = 0; i < n; i += 2) {
        const __m128i row = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        // SSE2 has no 64-bit compare: match 32-bit halves, then AND
        // each half with its partner so a lane is all-ones only when
        // both halves matched.
        const __m128i eq32 = _mm_cmpeq_epi32(row, want);
        const __m128i swapped = _mm_shuffle_epi32(eq32, 0xB1);
        const __m128i eq64 = _mm_and_si128(eq32, swapped);
        const int mask = _mm_movemask_pd(_mm_castsi128_pd(eq64));
        if (mask) {
            const unsigned idx =
                i + static_cast<unsigned>(__builtin_ctz(mask));
            // Over-read lanes (odd n, padding) filtered here.
            return idx < n ? static_cast<int>(idx) : -1;
        }
    }
    return -1;
}

#elif defined(__aarch64__) && !defined(PMODV_FORCE_SCALAR)

inline unsigned
argminU64(const std::uint64_t *a, unsigned n)
{
    return argminU64Scalar(a, n);
}

inline int
findU64(const std::uint64_t *a, unsigned n, std::uint64_t target)
{
    if (gForceScalar) [[unlikely]]
        return findU64Scalar(a, n, target);
    const uint64x2_t want = vdupq_n_u64(target);
    for (unsigned i = 0; i < n; i += 2) {
        const uint64x2_t eq = vceqq_u64(vld1q_u64(a + i), want);
        if (vgetq_lane_u64(eq, 0)) {
            return i < n ? static_cast<int>(i) : -1;
        }
        if (vgetq_lane_u64(eq, 1)) {
            const unsigned idx = i + 1;
            return idx < n ? static_cast<int>(idx) : -1;
        }
    }
    return -1;
}

#else // scalar-only build

inline unsigned
argminU64(const std::uint64_t *a, unsigned n)
{
    return argminU64Scalar(a, n);
}

inline int
findU64(const std::uint64_t *a, unsigned n, std::uint64_t target)
{
    return findU64Scalar(a, n, target);
}

#endif

} // namespace pmodv::simd

#endif // PMODV_COMMON_SIMD_HH
