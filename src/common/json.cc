#include "common/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace pmodv::common
{

// ----------------------------------------------------------- accessors

bool
JsonValue::boolean() const
{
    panic_if(kind_ != Kind::Bool, "JsonValue: not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    panic_if(kind_ != Kind::Number, "JsonValue: not a number");
    return num_;
}

std::uint64_t
JsonValue::asU64() const
{
    panic_if(kind_ != Kind::Number, "JsonValue: not a number");
    // Integer counters are emitted as plain digit runs; parse the
    // source text so values past 2^53 stay exact.
    panic_if(raw_.empty() || raw_[0] == '-' ||
                 raw_.find_first_of(".eE") != std::string::npos,
             "JsonValue: '%s' is not a non-negative integer",
             raw_.c_str());
    return std::strtoull(raw_.c_str(), nullptr, 10);
}

const std::string &
JsonValue::str() const
{
    panic_if(kind_ != Kind::String, "JsonValue: not a string");
    return str_;
}

const JsonValue::Array &
JsonValue::array() const
{
    panic_if(kind_ != Kind::Array, "JsonValue: not an array");
    return *array_;
}

const JsonValue::Object &
JsonValue::object() const
{
    panic_if(kind_ != Kind::Object, "JsonValue: not an object");
    return *object_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : *object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    panic_if(!v, "JsonValue: missing member \"%s\"", key.c_str());
    return *v;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    panic_if(kind_ != Kind::Array, "JsonValue: not an array");
    panic_if(index >= array_->size(),
             "JsonValue: index %zu out of range (size %zu)", index,
             array_->size());
    return (*array_)[index];
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_->size();
    if (kind_ == Kind::Object)
        return object_->size();
    panic("JsonValue: size() on a non-container");
}

// ------------------------------------------------------------ builders

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d, std::string raw)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    v.raw_ = std::move(raw);
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(Array a)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::make_shared<Array>(std::move(a));
    return v;
}

JsonValue
JsonValue::makeObject(Object o)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::make_shared<Object>(std::move(o));
    return v;
}

// -------------------------------------------------------------- parser

namespace
{

/** Recursive-descent parser state: the text plus a cursor. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string &why)
    {
        if (error.empty()) {
            std::ostringstream os;
            os << "byte offset " << pos << ": " << why;
            error = os.str();
        }
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool atEnd() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    bool consume(char c)
    {
        if (atEnd() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool literal(const char *word, std::size_t len)
    {
        if (text.compare(pos, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += len;
        return true;
    }

    bool parseValue(JsonValue &out);
    bool parseString(std::string &out);
    bool parseNumber(JsonValue &out);
    bool parseArray(JsonValue &out);
    bool parseObject(JsonValue &out);
};

bool
Parser::parseString(std::string &out)
{
    if (!consume('"'))
        return false;
    out.clear();
    while (true) {
        if (atEnd())
            return fail("unterminated string");
        const char c = text[pos++];
        if (c == '"')
            return true;
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (atEnd())
            return fail("unterminated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // The suite never emits \u escapes; decode the BMP code
            // point to UTF-8 so foreign documents still load.
            if (pos + 4 > text.size())
                return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
                const char h = text[pos++];
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return fail("bad \\u escape digit");
            }
            if (cp < 0x80) {
                out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
                out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
                out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                out.push_back(
                    static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default:
            return fail("bad escape character");
        }
    }
}

bool
Parser::parseNumber(JsonValue &out)
{
    const std::size_t start = pos;
    if (!atEnd() && peek() == '-')
        ++pos;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos;
    if (!atEnd() && peek() == '.') {
        ++pos;
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
        ++pos;
        if (!atEnd() && (peek() == '+' || peek() == '-'))
            ++pos;
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
    }
    std::string raw = text.substr(start, pos - start);
    char *end = nullptr;
    const double d = std::strtod(raw.c_str(), &end);
    if (raw.empty() || end != raw.c_str() + raw.size())
        return fail("malformed number");
    out = JsonValue::makeNumber(d, std::move(raw));
    return true;
}

bool
Parser::parseArray(JsonValue &out)
{
    if (!consume('['))
        return false;
    JsonValue::Array items;
    skipWs();
    if (!atEnd() && peek() == ']') {
        ++pos;
        out = JsonValue::makeArray(std::move(items));
        return true;
    }
    while (true) {
        JsonValue item;
        if (!parseValue(item))
            return false;
        items.push_back(std::move(item));
        skipWs();
        if (atEnd())
            return fail("unterminated array");
        if (peek() == ',') {
            ++pos;
            continue;
        }
        if (peek() == ']') {
            ++pos;
            out = JsonValue::makeArray(std::move(items));
            return true;
        }
        return fail("expected ',' or ']'");
    }
}

bool
Parser::parseObject(JsonValue &out)
{
    if (!consume('{'))
        return false;
    JsonValue::Object members;
    skipWs();
    if (!atEnd() && peek() == '}') {
        ++pos;
        out = JsonValue::makeObject(std::move(members));
        return true;
    }
    while (true) {
        skipWs();
        std::string key;
        if (!parseString(key))
            return false;
        skipWs();
        if (!consume(':'))
            return false;
        JsonValue value;
        if (!parseValue(value))
            return false;
        members.emplace_back(std::move(key), std::move(value));
        skipWs();
        if (atEnd())
            return fail("unterminated object");
        if (peek() == ',') {
            ++pos;
            continue;
        }
        if (peek() == '}') {
            ++pos;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        return fail("expected ',' or '}'");
    }
}

bool
Parser::parseValue(JsonValue &out)
{
    skipWs();
    if (atEnd())
        return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parseObject(out);
      case '[':
        return parseArray(out);
      case '"': {
        std::string s;
        if (!parseString(s))
            return false;
        out = JsonValue::makeString(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true", 4))
            return false;
        out = JsonValue::makeBool(true);
        return true;
      case 'f':
        if (!literal("false", 5))
            return false;
        out = JsonValue::makeBool(false);
        return true;
      case 'n':
        if (!literal("null", 4))
            return false;
        out = JsonValue::makeNull();
        return true;
      default:
        return parseNumber(out);
    }
}

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    Parser p{text, 0, {}};
    JsonValue out;
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    p.skipWs();
    if (!p.atEnd()) {
        p.fail("trailing garbage after document");
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    return out;
}

std::optional<JsonValue>
parseJsonFile(const std::string &path, std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseJson(buf.str(), error);
}

} // namespace pmodv::common
