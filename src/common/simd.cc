#include "common/simd.hh"

#if defined(__x86_64__) && !defined(PMODV_FORCE_SCALAR)
#include <immintrin.h>
#endif

namespace pmodv::simd
{

bool gForceScalar = false;

void
setForceScalar(bool force)
{
    gForceScalar = force;
}

bool
forceScalar()
{
    return gForceScalar;
}

int
findU64Scalar(const std::uint64_t *a, unsigned n, std::uint64_t target)
{
    for (unsigned i = 0; i < n; ++i) {
        if (a[i] == target)
            return static_cast<int>(i);
    }
    return -1;
}

unsigned
argminU64Scalar(const std::uint64_t *a, unsigned n)
{
    // Branchless select so wide stamp rows don't mispredict.
    unsigned best = 0;
    std::uint64_t best_val = a[0];
    for (unsigned w = 1; w < n; ++w) {
        const bool smaller = a[w] < best_val;
        best = smaller ? w : best;
        best_val = smaller ? a[w] : best_val;
    }
    return best;
}

#if defined(__x86_64__) && !defined(PMODV_FORCE_SCALAR)

const bool gHaveAvx2 = __builtin_cpu_supports("avx2");

__attribute__((target("avx2"))) int
findU64Avx2(const std::uint64_t *a, unsigned n, std::uint64_t target)
{
    const __m256i want = _mm256_set1_epi64x(static_cast<long long>(target));
    unsigned long long found = 0;
    for (unsigned i = 0; i < n; i += 4) {
        const __m256i row = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        found |= static_cast<unsigned long long>(_mm256_movemask_pd(
                     _mm256_castsi256_pd(_mm256_cmpeq_epi64(row, want))))
                 << i;
    }
    // Over-read lanes (n not a multiple of 4, padding) filtered here.
    found &= n < 64 ? (1ull << n) - 1 : ~0ull;
    return found ? __builtin_ctzll(found) : -1;
}

__attribute__((target("avx2"))) unsigned
argminU64Avx2(const std::uint64_t *a, unsigned n)
{
    // Unsigned 64-bit min via the signed-compare trick: flipping the
    // sign bit makes _mm256_cmpgt_epi64 order unsigned values.
    const __m256i flip =
        _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
    __m256i best = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a)), flip);
    for (unsigned i = 4; i < n; i += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i)),
            flip);
        best = _mm256_blendv_epi8(best, v, _mm256_cmpgt_epi64(best, v));
    }
    const __m128i lo = _mm256_castsi256_si128(best);
    const __m128i hi = _mm256_extracti128_si256(best, 1);
    const __m128i m2 = _mm_blendv_epi8(lo, hi, _mm_cmpgt_epi64(lo, hi));
    const std::uint64_t v0 =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(m2));
    const std::uint64_t v1 =
        static_cast<std::uint64_t>(_mm_extract_epi64(m2, 1));
    const std::uint64_t min_val =
        (v0 < v1 ? v0 : v1) ^ 0x8000000000000000ULL;
    // Second pass: the earliest index holding the minimum (the same
    // tie-break the scalar scan applies).
    const __m256i want =
        _mm256_set1_epi64x(static_cast<long long>(min_val));
    for (unsigned i = 0;; i += 4) {
        const __m256i row = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const int mask = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(row, want)));
        if (mask)
            return i + static_cast<unsigned>(__builtin_ctz(mask));
    }
}

const char *
activeImpl()
{
    if (gForceScalar)
        return "scalar(runtime)";
    return gHaveAvx2 ? "avx2" : "sse2";
}

#elif defined(__aarch64__) && !defined(PMODV_FORCE_SCALAR)

const char *
activeImpl()
{
    return gForceScalar ? "scalar(runtime)" : "neon";
}

#else

const char *
activeImpl()
{
    return "scalar(compile-time)";
}

#endif

} // namespace pmodv::simd
