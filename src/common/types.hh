/**
 * @file
 * Fundamental simulator-wide types: addresses, cycles, identifiers
 * and permission encodings shared by every module.
 */

#ifndef PMODV_COMMON_TYPES_HH
#define PMODV_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace pmodv
{

/** A virtual or physical byte address inside the simulated machine. */
using Addr = std::uint64_t;

/** A count of processor clock cycles. */
using Cycles = std::uint64_t;

/** Simulated hardware thread / logical core identifier. */
using ThreadId = std::uint32_t;

/**
 * Protection-domain identifier. Each attached PMO gets one. Domain 0
 * is the reserved NULL domain: accesses that resolve to it bypass all
 * domain permission checks ("domainless" accesses in the paper).
 */
using DomainId = std::uint32_t;

/** The reserved domainless identifier. */
inline constexpr DomainId kNullDomain = 0;

/** An MPK protection key (4 bits architecturally: 0..15). */
using ProtKey = std::uint8_t;

/** Key value 0 is reserved as the NULL (domainless) key, as in MPK. */
inline constexpr ProtKey kNullKey = 0;

/** Number of architectural MPK protection keys. */
inline constexpr unsigned kNumProtKeys = 16;

/** An invalid/unassigned sentinel for protection keys. */
inline constexpr ProtKey kInvalidKey = 0xff;

/**
 * Access permission for a domain or page, encoded as independent read
 * and write capability bits. The paper's PTLB encoding (1x
 * inaccessible, 01 read-only, 00 read-write) maps onto this.
 */
enum class Perm : std::uint8_t
{
    None      = 0x0, ///< Inaccessible (execute-only in MPK terms).
    Read      = 0x1, ///< Read permitted.
    Write     = 0x2, ///< Write permitted (without read).
    ReadWrite = 0x3, ///< Read and write permitted.
};

/** Combine two permissions, keeping only rights present in both. */
constexpr Perm
permIntersect(Perm a, Perm b)
{
    return static_cast<Perm>(static_cast<std::uint8_t>(a) &
                             static_cast<std::uint8_t>(b));
}

/** Combine two permissions, keeping rights present in either. */
constexpr Perm
permUnion(Perm a, Perm b)
{
    return static_cast<Perm>(static_cast<std::uint8_t>(a) |
                             static_cast<std::uint8_t>(b));
}

/** True when @p have grants at least the rights in @p need. */
constexpr bool
permAllows(Perm have, Perm need)
{
    return (static_cast<std::uint8_t>(have) &
            static_cast<std::uint8_t>(need)) ==
           static_cast<std::uint8_t>(need);
}

/** True when the permission includes the read right. */
constexpr bool
permCanRead(Perm p)
{
    return permAllows(p, Perm::Read);
}

/** True when the permission includes the write right. */
constexpr bool
permCanWrite(Perm p)
{
    return permAllows(p, Perm::Write);
}

/** Human-readable permission string ("-", "R", "W", or "RW"). */
inline std::string
permToString(Perm p)
{
    switch (p) {
      case Perm::None:
        return "-";
      case Perm::Read:
        return "R";
      case Perm::Write:
        return "W";
      case Perm::ReadWrite:
        return "RW";
    }
    return "?";
}

/**
 * Normalize a permission to what the 2-bit hardware encodings (PKRU
 * AD/WD bits, PTLB 2-bit field) can express: write-without-read is
 * not representable and widens to read-write.
 */
constexpr Perm
permNormalizeHw(Perm p)
{
    return p == Perm::Write ? Perm::ReadWrite : p;
}

/** The kind of memory access being checked. */
enum class AccessType : std::uint8_t
{
    Read  = 0,
    Write = 1,
};

/** Permission needed to perform an access of the given type. */
constexpr Perm
permForAccess(AccessType t)
{
    return t == AccessType::Read ? Perm::Read : Perm::Write;
}

/** Page sizes a PMO mapping (and the TLB) may use. */
enum class PageSize : std::uint8_t
{
    Size4K = 0,
    Size2M = 1,
    Size1G = 2,
};

/** Byte size of a PageSize value. */
constexpr Addr
pageBytes(PageSize s)
{
    switch (s) {
      case PageSize::Size4K:
        return Addr{1} << 12;
      case PageSize::Size2M:
        return Addr{1} << 21;
      case PageSize::Size1G:
        return Addr{1} << 30;
    }
    return Addr{1} << 12;
}

/** log2 of the byte size of a PageSize value. */
constexpr unsigned
pageShift(PageSize s)
{
    switch (s) {
      case PageSize::Size4K:
        return 12;
      case PageSize::Size2M:
        return 21;
      case PageSize::Size1G:
        return 30;
    }
    return 12;
}

/** Memory technology backing a physical region. */
enum class MemClass : std::uint8_t
{
    Dram = 0, ///< Volatile DRAM; 120-cycle latency in the base config.
    Nvm  = 1, ///< Persistent memory; 360-cycle latency (3x DRAM).
};

} // namespace pmodv

#endif // PMODV_COMMON_TYPES_HH
