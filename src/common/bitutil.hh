/**
 * @file
 * Small bit-manipulation and alignment helpers used across the
 * simulator (address masking, power-of-two arithmetic).
 */

#ifndef PMODV_COMMON_BITUTIL_HH
#define PMODV_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace pmodv
{

/** True when @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True when @p v is a multiple of @p align (a power of two). */
constexpr bool
isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    const std::uint64_t mask =
        hi >= 63 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (hi + 1)) - 1);
    return (v & mask) >> lo;
}

/** The page-aligned base of the 4KB page containing @p a. */
constexpr Addr
pageBase(Addr a, PageSize s = PageSize::Size4K)
{
    return alignDown(a, pageBytes(s));
}

/** The virtual page number of @p a for the given page size. */
constexpr Addr
pageNumber(Addr a, PageSize s = PageSize::Size4K)
{
    return a >> pageShift(s);
}

} // namespace pmodv

#endif // PMODV_COMMON_BITUTIL_HH
