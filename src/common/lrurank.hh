/**
 * @file
 * Packed exact-LRU recency state: one 64-bit word per set holding a
 * 4-bit rank per way (assoc - 1 = most recent, 0 = least recent).
 *
 * This is victim-for-victim identical to the classic per-way
 * timestamp scan. Victims are only ever consulted when the set is
 * full, and a full set implies every way has been touched at least
 * once (each install touches its way); by induction over touches the
 * packed ranks are then exactly the recency permutation of last-touch
 * order, so rank 0 names the same way the earliest-stamp scan would.
 * Unlike the stamp scan it needs no per-set clock, no O(ways) victim
 * scan, and only one cache line of state per eight sets.
 *
 * All ops are plain scalar bit twiddling (SWAR over nibbles), so the
 * behaviour is identical under PMODV_FORCE_SCALAR builds.
 */

#ifndef PMODV_COMMON_LRURANK_HH
#define PMODV_COMMON_LRURANK_HH

#include <cstdint>

namespace pmodv::lru
{

/** Widest associativity the packed representation supports. */
inline constexpr unsigned kMaxPackedWays = 16;

/** OR-mask forcing unused high nibbles non-zero in the victim scan. */
inline std::uint64_t
rankHighMask(unsigned ways)
{
    return ways >= kMaxPackedWays ? 0 : ~((1ull << (4 * ways)) - 1);
}

/**
 * Mark @p way most recent: every rank above way's old rank slides
 * down one, way's rank becomes ways - 1. The nibble compares run as
 * SWAR over the even and odd nibble lanes (each widened to a byte
 * lane, so the +127-r carry trick flags exactly the nibbles > r).
 */
inline std::uint64_t
touchRank(std::uint64_t s, unsigned way, unsigned ways)
{
    constexpr std::uint64_t kLo = 0x0101010101010101ULL;
    constexpr std::uint64_t kNib = 0x0F0F0F0F0F0F0F0FULL;
    constexpr std::uint64_t kHi = 0x8080808080808080ULL;
    const unsigned r = (s >> (4 * way)) & 15;
    std::uint64_t e = s & kNib;
    std::uint64_t o = (s >> 4) & kNib;
    // Byte lanes hold 0..15, addend <= 127: no cross-lane carries, and
    // bit 7 of (v + 127 - r) is set exactly when v > r.
    const std::uint64_t add = kLo * (127 - r);
    e -= ((e + add) & kHi) >> 7;
    o -= ((o + add) & kHi) >> 7;
    s = e | (o << 4);
    return (s & ~(0xFull << (4 * way))) |
           (static_cast<std::uint64_t>(ways - 1) << (4 * way));
}

/**
 * Way holding rank 0. Only meaningful when the set is full (exactly
 * one live nibble is zero then); @p high_mask must be
 * rankHighMask(ways) so dead high nibbles can't match.
 */
inline unsigned
victimRank(std::uint64_t s, std::uint64_t high_mask)
{
    constexpr std::uint64_t kLo = 0x0101010101010101ULL;
    constexpr std::uint64_t kNib = 0x0F0F0F0F0F0F0F0FULL;
    constexpr std::uint64_t kHi = 0x8080808080808080ULL;
    s |= high_mask;
    const std::uint64_t e = s & kNib;
    const std::uint64_t o = (s >> 4) & kNib;
    // Classic zero-byte finder; borrow-induced false flags can only
    // appear above a true zero, and ctz picks the first flag. The lane
    // without the zero nibble produces no flags at all.
    const std::uint64_t ze = (e - kLo) & ~e & kHi;
    const std::uint64_t zo = (o - kLo) & ~o & kHi;
    return ze ? (static_cast<unsigned>(__builtin_ctzll(ze)) >> 3) * 2
              : (static_cast<unsigned>(__builtin_ctzll(zo)) >> 3) * 2 + 1;
}

} // namespace pmodv::lru

#endif // PMODV_COMMON_LRURANK_HH
