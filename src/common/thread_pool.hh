/**
 * @file
 * A fixed-size thread pool with a single locked FIFO queue — no work
 * stealing, no per-thread deques. Tasks are type-erased
 * `std::packaged_task`s, so exceptions thrown inside a task are
 * captured into the future `submit()` returned and rethrown at
 * `future::get()`.
 *
 * Rules of use (what keeps the pool deadlock-free):
 *  - A task may `submit()` further tasks (continuation style), but it
 *    must never *block* on another task's future. The experiment
 *    executor follows this rule: capture tasks enqueue replay tasks
 *    and return; only the coordinating (non-worker) thread waits.
 *  - `wait()` blocks the calling thread until the queue is drained
 *    and every running task has finished; it must not be called from
 *    a worker.
 */

#ifndef PMODV_COMMON_THREAD_POOL_HH
#define PMODV_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pmodv::common
{

/** A fixed-size FIFO thread pool (see file comment for usage rules). */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers; 0 means defaultThreads() (the
     * hardware concurrency, never less than one).
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** What `threads == 0` resolves to: hardware concurrency, >= 1. */
    static unsigned defaultThreads();

    /**
     * Enqueue @p fn for execution on a worker; returns the future of
     * its result. An exception escaping @p fn is stored in the
     * future.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
            ++unfinished_;
        }
        workCv_.notify_one();
        return future;
    }

    /**
     * Block until every submitted task — including tasks submitted
     * by other tasks meanwhile — has finished.
     */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable workCv_; ///< Signals queued work / stop.
    std::condition_variable idleCv_; ///< Signals the pool drained.
    std::size_t unfinished_ = 0;     ///< Queued + currently running.
    bool stopping_ = false;
};

} // namespace pmodv::common

#endif // PMODV_COMMON_THREAD_POOL_HH
