/**
 * @file
 * gem5-style logging and error-reporting helpers.
 *
 * panic()  — an internal invariant was violated (a pmodv bug); aborts.
 * fatal()  — the user asked for something impossible (bad config);
 *            exits with an error code.
 * warn()   — something is modelled approximately; execution continues.
 * inform() — a status message with no negative connotation.
 */

#ifndef PMODV_COMMON_LOGGING_HH
#define PMODV_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pmodv
{

namespace detail
{

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Print a tagged message to stderr; used by all logging macros. */
void logMessage(const char *tag, const char *file, int line,
                const std::string &msg);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *file, int line, const char *fmt, ...);
void informImpl(const char *fmt, ...);

} // namespace detail

/** True after setQuiet(true); suppresses warn()/inform() output. */
bool logQuiet();

/** Suppress (or re-enable) warn()/inform() output; returns old value. */
bool setLogQuiet(bool quiet);

} // namespace pmodv

#define panic(...) \
    ::pmodv::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define fatal(...) \
    ::pmodv::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define warn(...) \
    ::pmodv::detail::warnImpl(__FILE__, __LINE__, __VA_ARGS__)

#define inform(...) \
    ::pmodv::detail::informImpl(__VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            panic(__VA_ARGS__);                                        \
    } while (0)

#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond)                                                      \
            fatal(__VA_ARGS__);                                        \
    } while (0)

#endif // PMODV_COMMON_LOGGING_HH
