/**
 * @file
 * Tree pseudo-LRU replacement state, as used by the DTTLB and PTLB in
 * the paper ("Pseudo LRU in our implementation") and by the cache and
 * TLB models.
 */

#ifndef PMODV_COMMON_PLRU_HH
#define PMODV_COMMON_PLRU_HH

#include <cstdint>
#include <vector>

namespace pmodv
{

/**
 * Tree-based pseudo-LRU over a fixed number of ways.
 *
 * Maintains ways-1 internal tree bits. touch() marks a way most
 * recently used; victim() follows the tree bits to the approximate
 * least-recently-used way. For non-power-of-two way counts the tree
 * is built over the next power of two and out-of-range victims are
 * redirected.
 *
 * The tree bits live in a small inline bit array so a TreePlru can be
 * stored by value — one per cache/TLB set in a contiguous vector —
 * with no per-set heap allocation on the replay hot path.
 */
class TreePlru
{
  public:
    /** Largest supported way count (kMaxWays-1 inline tree bits). */
    static constexpr unsigned kMaxWays = 256;

    explicit TreePlru(unsigned num_ways);

    /** Number of ways this tracker covers. */
    unsigned numWays() const { return numWays_; }

    /** Mark @p way as most-recently-used. */
    void touch(unsigned way);

    /** Return the pseudo-least-recently-used way. */
    unsigned victim() const;

    /** Reset all history (all ways equally old). */
    void reset();

  private:
    bool bit(unsigned node) const
    {
        return (bits_[node >> 6] >> (node & 63)) & 1;
    }

    void setBit(unsigned node, bool value)
    {
        const std::uint64_t mask = std::uint64_t{1} << (node & 63);
        if (value)
            bits_[node >> 6] |= mask;
        else
            bits_[node >> 6] &= ~mask;
    }

    unsigned numWays_;
    unsigned treeWays_; ///< numWays_ rounded up to a power of two.
    std::uint64_t bits_[kMaxWays / 64] = {};
};

/**
 * True-LRU tracker over a fixed number of ways, used where exact
 * recency matters (and as a test oracle for TreePlru's behaviour on
 * adversarial patterns).
 */
class TrueLru
{
  public:
    explicit TrueLru(unsigned num_ways);

    unsigned numWays() const { return numWays_; }

    /** Mark @p way as most-recently-used. */
    void touch(unsigned way);

    /** Return the exact least-recently-used way. */
    unsigned victim() const;

    /** Reset all history to initial order. */
    void reset();

  private:
    unsigned numWays_;
    /** stamps_[w] = logical time of last touch of way w. */
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

} // namespace pmodv

#endif // PMODV_COMMON_PLRU_HH
