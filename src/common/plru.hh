/**
 * @file
 * Tree pseudo-LRU replacement state, as used by the DTTLB and PTLB in
 * the paper ("Pseudo LRU in our implementation") and by the cache and
 * TLB models.
 */

#ifndef PMODV_COMMON_PLRU_HH
#define PMODV_COMMON_PLRU_HH

#include <cstdint>
#include <vector>

namespace pmodv
{

/**
 * Tree-based pseudo-LRU over a fixed number of ways.
 *
 * Maintains ways-1 internal tree bits. touch() marks a way most
 * recently used; victim() follows the tree bits to the approximate
 * least-recently-used way. For non-power-of-two way counts the tree
 * is built over the next power of two and out-of-range victims are
 * redirected.
 *
 * The tree bits live in a small inline bit array so a TreePlru can be
 * stored by value — one per cache/TLB set in a contiguous vector —
 * with no per-set heap allocation on the replay hot path.
 */
class TreePlru
{
  public:
    /** Largest supported way count (kMaxWays-1 inline tree bits). */
    static constexpr unsigned kMaxWays = 256;

    /**
     * Precomputed branchless form of touch(way): the tree bits a
     * touch writes are a pure function of the way, so the whole
     * root-to-leaf walk collapses to one masked word update when all
     * tree bits fit in a single 64-bit word (tree ways <= 64, i.e.
     * every set-associativity in the model). See makeTouchLut().
     */
    struct TouchOp
    {
        std::uint64_t mask = 0;  ///< Bits on the root-to-leaf path.
        std::uint64_t value = 0; ///< Their post-touch values.
    };

    explicit TreePlru(unsigned num_ways);

    /** Number of ways this tracker covers. */
    unsigned numWays() const { return numWays_; }

    /** Mark @p way as most-recently-used. */
    void touch(unsigned way);

    /**
     * Per-way TouchOps for a tracker of @p num_ways, or an empty
     * vector when the tree spills past one word and no branchless
     * form exists. Shared across all sets of a component (the LUT
     * depends only on the way count).
     */
    static std::vector<TouchOp> makeTouchLut(unsigned num_ways);

    /** Apply a precomputed TouchOp; equivalent to touch(way). */
    void touchMasked(const TouchOp &op)
    {
        bits_[0] = (bits_[0] & ~op.mask) | op.value;
    }

    /**
     * Precomputed victim() results indexed by the tree-bit word: the
     * whole root-to-leaf walk collapses to one table load. Only built
     * for small trees (<= 16 tree ways, i.e. <= 15 tree bits); check
     * valid() and fall back to victim() otherwise. Shared across all
     * sets of a component.
     */
    struct VictimLut
    {
        std::vector<std::uint8_t> table; ///< Victim way per bit pattern.
        std::uint64_t mask = 0;          ///< Tree-bit extraction mask.
        bool valid() const { return !table.empty(); }
    };

    static VictimLut makeVictimLut(unsigned num_ways);

    /** Table-driven victim(); @p lut must be for this way count. */
    unsigned victimMasked(const VictimLut &lut) const
    {
        return lut.table[bits_[0] & lut.mask];
    }

    /** Return the pseudo-least-recently-used way. */
    unsigned victim() const;

    /** Reset all history (all ways equally old). */
    void reset();

  private:
    bool bit(unsigned node) const
    {
        return (bits_[node >> 6] >> (node & 63)) & 1;
    }

    void setBit(unsigned node, bool value)
    {
        const std::uint64_t mask = std::uint64_t{1} << (node & 63);
        if (value)
            bits_[node >> 6] |= mask;
        else
            bits_[node >> 6] &= ~mask;
    }

    unsigned numWays_;
    unsigned treeWays_; ///< numWays_ rounded up to a power of two.
    std::uint64_t bits_[kMaxWays / 64] = {};
};

/**
 * True-LRU tracker over a fixed number of ways, used where exact
 * recency matters (and as a test oracle for TreePlru's behaviour on
 * adversarial patterns).
 */
class TrueLru
{
  public:
    explicit TrueLru(unsigned num_ways);

    unsigned numWays() const { return numWays_; }

    /** Mark @p way as most-recently-used. */
    void touch(unsigned way);

    /** Return the exact least-recently-used way. */
    unsigned victim() const;

    /** Reset all history to initial order. */
    void reset();

  private:
    unsigned numWays_;
    /** stamps_[w] = logical time of last touch of way w. */
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

} // namespace pmodv

#endif // PMODV_COMMON_PLRU_HH
