/**
 * @file
 * The persistent object identifier: a 64-bit value split into a
 * 32-bit pool id and a 32-bit offset inside the pool (Figure 1 of the
 * paper, following PMDK-style pool pointers). OIDs are position
 * independent — they survive a pool being attached at a different
 * virtual address in a later session (relocatability).
 */

#ifndef PMODV_PMO_OID_HH
#define PMODV_PMO_OID_HH

#include <cstdint>
#include <functional>

namespace pmodv::pmo
{

/** Pool identifier (unique per namespace). */
using PoolId = std::uint32_t;

/** A position-independent pointer to persistent data. */
struct Oid
{
    PoolId pool = 0;
    std::uint32_t offset = 0;

    /** Pack into the 64-bit on-media representation. */
    constexpr std::uint64_t
    raw() const
    {
        return (static_cast<std::uint64_t>(pool) << 32) | offset;
    }

    /** Unpack from the 64-bit on-media representation. */
    static constexpr Oid
    fromRaw(std::uint64_t v)
    {
        return Oid{static_cast<PoolId>(v >> 32),
                   static_cast<std::uint32_t>(v)};
    }

    constexpr bool isNull() const { return pool == 0 && offset == 0; }

    constexpr bool operator==(const Oid &) const = default;
};

/** The null OID. */
inline constexpr Oid kNullOid{};

} // namespace pmodv::pmo

template <>
struct std::hash<pmodv::pmo::Oid>
{
    std::size_t
    operator()(const pmodv::pmo::Oid &oid) const noexcept
    {
        return std::hash<std::uint64_t>{}(oid.raw());
    }
};

#endif // PMODV_PMO_OID_HH
