/**
 * @file
 * The process-side PMO runtime: the software emulation platform for
 * the paper's proposed hardware. It
 *
 *  - performs attach/detach against the Namespace, assigning each
 *    attached PMO a protection-domain id (= its pool id) and a
 *    simulated virtual-address range;
 *  - implements SETPERM per thread and *enforces* the paper's access
 *    rule on every runtime access: page permission AND attached AND
 *    thread domain permission, throwing ProtectionFault otherwise;
 *  - optionally captures everything (attach, setperm, loads, stores,
 *    instruction blocks, thread switches) as a trace, which is how
 *    the workloads feed the timing simulator.
 */

#ifndef PMODV_PMO_RUNTIME_HH
#define PMODV_PMO_RUNTIME_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "pmo/pmo_namespace.hh"
#include "pmo/pool.hh"
#include "trace/sinks.hh"

namespace pmodv::pmo
{

/** One attached PMO as seen by the process. */
struct Attached
{
    std::string name;
    PoolId poolId = 0;
    DomainId domain = kNullDomain; ///< Equals the pool id.
    Addr vaBase = 0;               ///< Simulated VA of offset 0.
    Addr vaSize = 0;               ///< 4 KB-rounded mapping size.
    Perm pagePerm = Perm::Read;    ///< Process-level page permission.
    Pool *pool = nullptr;
};

/** The per-process PMO runtime. */
class Runtime
{
  public:
    /**
     * @p ns must outlive the runtime. @p uid/@p proc identify the
     * calling user and process to the namespace.
     */
    Runtime(Namespace &ns, Uid uid, ProcId proc);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /** Install a trace sink (nullptr disables capture). */
    void setTraceSink(trace::TraceSink *sink) { sink_ = sink; }

    /**
     * Attach a PMO with the given intended page permission. Returns
     * the attachment record (domain id, VA base, pool). Emits an
     * Attach trace record.
     */
    const Attached &attach(const std::string &name, Perm perm,
                           std::uint64_t attach_key = 0);

    /** Detach by domain id; emits a Detach trace record. */
    void detach(DomainId domain);

    /** All current attachments. */
    std::vector<const Attached *> attachments() const;

    /** The attachment of @p domain; throws when not attached. */
    const Attached &find(DomainId domain) const;

    /** The attachment owning @p pool_id; nullptr when none. */
    const Attached *findPool(PoolId pool_id) const;

    /**
     * SETPERM: set thread @p tid's permission for @p domain. Emits a
     * SetPerm trace record. Applies even to not-yet-attached domains
     * (the record replays against schemes which may ignore it).
     */
    void setPerm(ThreadId tid, DomainId domain, Perm perm);

    /** Thread @p tid's current permission for @p domain. */
    Perm threadPerm(ThreadId tid, DomainId domain) const;

    /**
     * Checked persistent read: enforces the spatio-temporal policy,
     * emits a Load record, copies @p len bytes.
     */
    void read(ThreadId tid, Oid oid, void *out, std::size_t len);

    /** Checked persistent write (Store record). */
    void write(ThreadId tid, Oid oid, const void *in, std::size_t len);

    /** Typed checked read. */
    template <typename T>
    T
    readValue(ThreadId tid, Oid oid)
    {
        T value;
        read(tid, oid, &value, sizeof(T));
        return value;
    }

    /** Typed checked write. */
    template <typename T>
    void
    writeValue(ThreadId tid, Oid oid, const T &value)
    {
        write(tid, oid, &value, sizeof(T));
    }

    /**
     * oid_direct(): translate an OID of an attached pool to a raw
     * pointer. Unchecked by design (Table I's escape hatch).
     */
    void *direct(Oid oid);

    /** Simulated VA of @p oid inside its attachment. */
    Addr vaOf(Oid oid) const;

    /** Record @p count non-memory instructions in the trace. */
    void compute(ThreadId tid, std::uint32_t count);

    /** Record a core context switch to @p tid. */
    void switchThread(ThreadId tid);

    /** Record a volatile (non-PMO, DRAM) access in the trace. */
    void volatileAccess(ThreadId tid, Addr va, bool is_write,
                        std::uint32_t size = 8);

    /** Record the begin/end of a logical operation. */
    void opBegin(ThreadId tid, std::uint32_t kind = 0);
    void opEnd(ThreadId tid, std::uint32_t kind = 0);

    Namespace &ns() { return ns_; }
    Uid uid() const { return uid_; }
    ProcId proc() const { return proc_; }

  private:
    void emit(const trace::TraceRecord &rec)
    {
        if (sink_)
            sink_->put(rec);
    }

    const Attached &checkedLookup(ThreadId tid, Oid oid,
                                  AccessType type, std::size_t len);

    Namespace &ns_;
    Uid uid_;
    ProcId proc_;
    trace::TraceSink *sink_ = nullptr;

    std::unordered_map<DomainId, Attached> attached_;
    std::unordered_map<PoolId, DomainId> poolToDomain_;
    /** (tid, domain) -> permission; absent = Perm::None. */
    std::map<std::pair<ThreadId, DomainId>, Perm> threadPerms_;
    Addr nextVa_;
};

/**
 * RAII permission window: grants @p perm on construction, restores
 * Perm::None on destruction — the enable/disable pair the paper
 * inserts around every operation.
 */
class PermGuard
{
  public:
    PermGuard(Runtime &rt, ThreadId tid, DomainId domain, Perm perm)
        : rt_(rt), tid_(tid), domain_(domain)
    {
        rt_.setPerm(tid_, domain_, perm);
    }

    ~PermGuard() { rt_.setPerm(tid_, domain_, Perm::None); }

    PermGuard(const PermGuard &) = delete;
    PermGuard &operator=(const PermGuard &) = delete;

  private:
    Runtime &rt_;
    ThreadId tid_;
    DomainId domain_;
};

} // namespace pmodv::pmo

#endif // PMODV_PMO_RUNTIME_HH
