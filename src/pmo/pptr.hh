/**
 * @file
 * Typed persistent pointers: a thin, type-safe layer over the 32+32
 * bit ObjectID of the paper's Figure 1. A POid<T> is still position
 * independent (it stores only the raw OID), but reads/writes go
 * through typed helpers, and TypedPool/TypedRuntime helpers keep
 * persistent data structures free of manual sizeof/offset arithmetic.
 */

#ifndef PMODV_PMO_PPTR_HH
#define PMODV_PMO_PPTR_HH

#include <type_traits>

#include "pmo/pool.hh"
#include "pmo/runtime.hh"

namespace pmodv::pmo
{

/** A typed, position-independent pointer to a T inside a pool. */
template <typename T>
struct POid
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "persistent objects must be trivially copyable");

    Oid oid{};

    constexpr POid() = default;
    constexpr explicit POid(Oid o) : oid(o) {}

    constexpr bool isNull() const { return oid.isNull(); }
    constexpr std::uint64_t raw() const { return oid.raw(); }

    static constexpr POid
    fromRaw(std::uint64_t v)
    {
        return POid(Oid::fromRaw(v));
    }

    /** A typed pointer to a member at byte offset @p off. */
    template <typename M>
    constexpr POid<M>
    member(std::uint32_t off) const
    {
        return POid<M>(Oid{oid.pool, oid.offset + off});
    }

    constexpr bool operator==(const POid &) const = default;
};

/** Allocate and zero-initialize a T in @p pool. */
template <typename T>
POid<T>
pnew(Pool &pool)
{
    const Oid oid = pool.pmalloc(sizeof(T));
    const T zero{};
    pool.write(oid, &zero, sizeof(T));
    return POid<T>(oid);
}

/** Allocate a T in @p pool initialized from @p value. */
template <typename T>
POid<T>
pnew(Pool &pool, const T &value)
{
    const Oid oid = pool.pmalloc(sizeof(T));
    pool.write(oid, &value, sizeof(T));
    return POid<T>(oid);
}

/** Free a typed allocation. */
template <typename T>
void
pdelete(Pool &pool, POid<T> ptr)
{
    pool.pfree(ptr.oid);
}

/** Unchecked typed load straight from the pool media. */
template <typename T>
T
pget(const Pool &pool, POid<T> ptr)
{
    T value;
    pool.read(ptr.oid, &value, sizeof(T));
    return value;
}

/** Unchecked typed store straight to the pool media. */
template <typename T>
void
pset(Pool &pool, POid<T> ptr, const T &value)
{
    pool.write(ptr.oid, &value, sizeof(T));
}

/** Checked (permission-enforcing, traced) typed load. */
template <typename T>
T
pget(Runtime &rt, ThreadId tid, POid<T> ptr)
{
    return rt.readValue<T>(tid, ptr.oid);
}

/** Checked (permission-enforcing, traced) typed store. */
template <typename T>
void
pset(Runtime &rt, ThreadId tid, POid<T> ptr, const T &value)
{
    rt.writeValue(tid, ptr.oid, value);
}

/** The pool's root object, typed. */
template <typename T>
POid<T>
proot(Pool &pool)
{
    return POid<T>(pool.root(sizeof(T)));
}

} // namespace pmodv::pmo

#endif // PMODV_PMO_PPTR_HH
