/**
 * @file
 * The OS role of PMO management: a namespace of named pools with
 * file-like ownership, permission bits, optional attach keys, and an
 * inter-process sharing policy (many readers or one writer). This is
 * the substrate the paper assumes ("a PMO may be managed by the OS
 * similar to a file") — the attach/detach system calls land here.
 *
 * Pools may be purely in-memory (tests) or backed by a directory,
 * where each pool persists as `<dir>/<name>.pool` plus a manifest,
 * giving PMOs life beyond the process.
 */

#ifndef PMODV_PMO_NAMESPACE_HH
#define PMODV_PMO_NAMESPACE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "pmo/pool.hh"

namespace pmodv::pmo
{

/** A user id owning pools. */
using Uid = std::uint32_t;

/** A process id for the sharing policy. */
using ProcId = std::uint32_t;

/** File-like permission bits on a pool. */
struct PoolMode
{
    bool ownerRead = true;
    bool ownerWrite = true;
    bool otherRead = false;
    bool otherWrite = false;

    /** Permission @p uid gets on a pool owned by @p owner. */
    Perm
    permFor(Uid uid, Uid owner) const
    {
        const bool r = uid == owner ? ownerRead : otherRead;
        const bool w = uid == owner ? ownerWrite : otherWrite;
        return static_cast<Perm>((r ? 1 : 0) | (w ? 2 : 0));
    }
};

/** Catalog entry for one named pool. */
struct PoolMeta
{
    std::string name;
    PoolId id = 0;
    std::uint64_t size = 0;
    Uid owner = 0;
    PoolMode mode{};
    /** Optional attach key; 0 = none required. */
    std::uint64_t attachKey = 0;
};

/** One granted attachment (the sharing-policy ledger). */
struct Attachment
{
    ProcId proc = 0;
    Perm perm = Perm::Read;
};

/** The PMO namespace. */
class Namespace
{
  public:
    /**
     * @p dir empty = in-memory only; otherwise pool images and the
     * manifest persist under @p dir (created if missing).
     */
    explicit Namespace(std::string dir = "");
    ~Namespace();

    Namespace(const Namespace &) = delete;
    Namespace &operator=(const Namespace &) = delete;

    /**
     * Create a pool (Table I pool_create). The calling user becomes
     * the owner. Throws NamespaceError on duplicate names.
     */
    Pool &create(const std::string &name, std::size_t size, Uid owner,
                 PoolMode mode = {}, std::uint64_t attach_key = 0);

    /**
     * Open an attachment to a pool (the attach syscall's namespace
     * half). Enforces ownership/mode, the attach key, and the sharing
     * policy: any number of readers, or exactly one writer.
     */
    Pool &attach(const std::string &name, Perm requested, Uid uid,
                 ProcId proc, std::uint64_t attach_key = 0);

    /** Release an attachment (detach syscall). */
    void detach(const std::string &name, ProcId proc);

    /** Detach everything @p proc holds (process exit / kill). */
    unsigned detachAll(ProcId proc);

    /**
     * Destroy a pool permanently. Only the owner may; fails while
     * attachments exist.
     */
    void destroy(const std::string &name, Uid uid);

    /** Look up catalog metadata; throws when absent. */
    const PoolMeta &meta(const std::string &name) const;

    /** True when the namespace knows @p name. */
    bool exists(const std::string &name) const;

    /** Current attachments of a pool (tests / tooling). */
    std::vector<Attachment> attachments(const std::string &name) const;

    /** All catalog entries, name-ordered. */
    std::vector<PoolMeta> list() const;

    /** Direct pool access by name (must be loaded/created). */
    Pool &pool(const std::string &name);

    /** Flush every loaded pool image + manifest to the directory. */
    void sync();

  private:
    struct Entry
    {
        PoolMeta meta;
        std::unique_ptr<Pool> pool; ///< Loaded lazily.
        std::vector<Attachment> attachments;
    };

    Entry &lookup(const std::string &name);
    const Entry &lookup(const std::string &name) const;
    void ensureLoaded(Entry &entry);
    std::string poolPath(const std::string &name) const;
    std::string manifestPath() const;
    void saveManifest() const;
    void loadManifest();

    std::string dir_;
    std::map<std::string, Entry> entries_;
    PoolId nextId_ = 1;
};

} // namespace pmodv::pmo

#endif // PMODV_PMO_NAMESPACE_HH
