#include "pmo/pmo_namespace.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "pmo/errors.hh"

namespace fs = std::filesystem;

namespace pmodv::pmo
{

Namespace::Namespace(std::string dir) : dir_(std::move(dir))
{
    if (!dir_.empty()) {
        fs::create_directories(dir_);
        loadManifest();
    }
}

Namespace::~Namespace()
{
    if (!dir_.empty()) {
        try {
            sync();
        } catch (const std::exception &e) {
            warn("namespace sync failed on shutdown: %s", e.what());
        }
    }
}

std::string
Namespace::poolPath(const std::string &name) const
{
    return dir_ + "/" + name + ".pool";
}

std::string
Namespace::manifestPath() const
{
    return dir_ + "/manifest";
}

void
Namespace::saveManifest() const
{
    if (dir_.empty())
        return;
    std::ostringstream out;
    out << "pmodv-manifest 1\n";
    out << "next_id " << nextId_ << "\n";
    for (const auto &[name, entry] : entries_) {
        const PoolMeta &m = entry.meta;
        out << "pool " << m.name << " " << m.id << " " << m.size << " "
            << m.owner << " " << (m.mode.ownerRead ? 1 : 0)
            << (m.mode.ownerWrite ? 1 : 0) << (m.mode.otherRead ? 1 : 0)
            << (m.mode.otherWrite ? 1 : 0) << " " << m.attachKey << "\n";
    }
    std::ofstream f(manifestPath(), std::ios::trunc);
    if (!f)
        throw NamespaceError("cannot write manifest");
    f << out.str();
}

void
Namespace::loadManifest()
{
    std::ifstream f(manifestPath());
    if (!f)
        return; // Fresh namespace.
    std::string tag;
    int version = 0;
    f >> tag >> version;
    if (tag != "pmodv-manifest" || version != 1)
        throw NamespaceError("bad manifest header");
    std::string key;
    while (f >> key) {
        if (key == "next_id") {
            f >> nextId_;
        } else if (key == "pool") {
            PoolMeta m;
            std::string bits;
            f >> m.name >> m.id >> m.size >> m.owner >> bits >>
                m.attachKey;
            if (bits.size() != 4)
                throw NamespaceError("bad mode bits in manifest");
            m.mode.ownerRead = bits[0] == '1';
            m.mode.ownerWrite = bits[1] == '1';
            m.mode.otherRead = bits[2] == '1';
            m.mode.otherWrite = bits[3] == '1';
            Entry entry;
            entry.meta = m;
            entries_.emplace(m.name, std::move(entry));
        } else {
            throw NamespaceError("unknown manifest record '" + key + "'");
        }
    }
}

Namespace::Entry &
Namespace::lookup(const std::string &name)
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw NamespaceError("no such pool '" + name + "'");
    return it->second;
}

const Namespace::Entry &
Namespace::lookup(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throw NamespaceError("no such pool '" + name + "'");
    return it->second;
}

void
Namespace::ensureLoaded(Entry &entry)
{
    if (entry.pool)
        return;
    if (dir_.empty())
        throw NamespaceError("pool '" + entry.meta.name +
                             "' has no media (in-memory namespace)");
    entry.pool = Pool::loadFrom(poolPath(entry.meta.name));
}

Pool &
Namespace::create(const std::string &name, std::size_t size, Uid owner,
                  PoolMode mode, std::uint64_t attach_key)
{
    if (name.empty() || name.find('/') != std::string::npos)
        throw NamespaceError("invalid pool name '" + name + "'");
    if (entries_.count(name))
        throw NamespaceError("pool '" + name + "' already exists");

    Entry entry;
    entry.meta.name = name;
    entry.meta.id = nextId_++;
    entry.meta.size = size;
    entry.meta.owner = owner;
    entry.meta.mode = mode;
    entry.meta.attachKey = attach_key;
    entry.pool = Pool::create(entry.meta.id, size);

    auto [it, inserted] = entries_.emplace(name, std::move(entry));
    panic_if(!inserted, "entry insert failed after existence check");
    if (!dir_.empty()) {
        it->second.pool->saveTo(poolPath(name));
        saveManifest();
    }
    return *it->second.pool;
}

Pool &
Namespace::attach(const std::string &name, Perm requested, Uid uid,
                  ProcId proc, std::uint64_t attach_key)
{
    Entry &entry = lookup(name);
    const PoolMeta &m = entry.meta;

    const Perm granted = m.mode.permFor(uid, m.owner);
    if (!permAllows(granted, requested)) {
        throw NamespaceError("user " + std::to_string(uid) +
                             " lacks permission on pool '" + name + "'");
    }
    if (m.attachKey != 0 && attach_key != m.attachKey)
        throw NamespaceError("wrong attach key for pool '" + name + "'");

    // Sharing policy: many readers, or a single writer.
    const bool want_write = permCanWrite(requested);
    for (const Attachment &a : entry.attachments) {
        if (a.proc == proc) {
            throw NamespaceError("process already attached to '" + name +
                                 "'");
        }
        if (want_write || permCanWrite(a.perm)) {
            throw NamespaceError(
                "sharing conflict on pool '" + name +
                "': writers must be exclusive");
        }
    }

    ensureLoaded(entry);
    entry.attachments.push_back({proc, requested});
    return *entry.pool;
}

void
Namespace::detach(const std::string &name, ProcId proc)
{
    Entry &entry = lookup(name);
    auto it = std::find_if(entry.attachments.begin(),
                           entry.attachments.end(),
                           [proc](const Attachment &a) {
                               return a.proc == proc;
                           });
    if (it == entry.attachments.end())
        throw NamespaceError("process not attached to '" + name + "'");
    entry.attachments.erase(it);
    if (!dir_.empty() && entry.pool)
        entry.pool->saveTo(poolPath(name));
}

unsigned
Namespace::detachAll(ProcId proc)
{
    unsigned n = 0;
    for (auto &[name, entry] : entries_) {
        auto it = std::remove_if(entry.attachments.begin(),
                                 entry.attachments.end(),
                                 [proc](const Attachment &a) {
                                     return a.proc == proc;
                                 });
        if (it != entry.attachments.end()) {
            entry.attachments.erase(it, entry.attachments.end());
            ++n;
            if (!dir_.empty() && entry.pool)
                entry.pool->saveTo(poolPath(name));
        }
    }
    return n;
}

void
Namespace::destroy(const std::string &name, Uid uid)
{
    Entry &entry = lookup(name);
    if (entry.meta.owner != uid)
        throw NamespaceError("only the owner may destroy '" + name + "'");
    if (!entry.attachments.empty())
        throw NamespaceError("pool '" + name + "' is still attached");
    if (!dir_.empty())
        std::remove(poolPath(name).c_str());
    entries_.erase(name);
    if (!dir_.empty())
        saveManifest();
}

const PoolMeta &
Namespace::meta(const std::string &name) const
{
    return lookup(name).meta;
}

bool
Namespace::exists(const std::string &name) const
{
    return entries_.count(name) > 0;
}

std::vector<Attachment>
Namespace::attachments(const std::string &name) const
{
    return lookup(name).attachments;
}

std::vector<PoolMeta>
Namespace::list() const
{
    std::vector<PoolMeta> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(entry.meta);
    return out;
}

Pool &
Namespace::pool(const std::string &name)
{
    Entry &entry = lookup(name);
    ensureLoaded(entry);
    return *entry.pool;
}

void
Namespace::sync()
{
    if (dir_.empty())
        return;
    for (auto &[name, entry] : entries_) {
        if (entry.pool)
            entry.pool->saveTo(poolPath(name));
    }
    saveManifest();
}

} // namespace pmodv::pmo
