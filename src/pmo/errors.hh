/**
 * @file
 * Exception types thrown by the PMO library.
 */

#ifndef PMODV_PMO_ERRORS_HH
#define PMODV_PMO_ERRORS_HH

#include <stdexcept>
#include <string>

namespace pmodv::pmo
{

/** Base class of all PMO library errors. */
class PmoError : public std::runtime_error
{
  public:
    explicit PmoError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** An access violated the domain/page protection policy. */
class ProtectionFault : public PmoError
{
  public:
    explicit ProtectionFault(const std::string &what) : PmoError(what) {}
};

/** Namespace-level failure (missing pool, permission, bad key). */
class NamespaceError : public PmoError
{
  public:
    explicit NamespaceError(const std::string &what) : PmoError(what) {}
};

/** Persistent heap exhaustion or invalid free. */
class AllocError : public PmoError
{
  public:
    explicit AllocError(const std::string &what) : PmoError(what) {}
};

/** Transaction misuse (nested begin, commit without begin, ...). */
class TxnError : public PmoError
{
  public:
    explicit TxnError(const std::string &what) : PmoError(what) {}
};

/** Pool media corruption (bad magic, bad geometry). */
class CorruptPoolError : public PmoError
{
  public:
    explicit CorruptPoolError(const std::string &what) : PmoError(what)
    {
    }
};

} // namespace pmodv::pmo

#endif // PMODV_PMO_ERRORS_HH
