/**
 * @file
 * Failure-atomic durable transactions over a pool (the
 * durable-transaction support of the pool interface the paper
 * adopts). An undo log lives in the pool's reserved log region:
 *
 *   1. begin() marks the log ACTIVE (persisted);
 *   2. each write() first appends the *old* value of the target range
 *      to the log (persisted), then performs and persists the
 *      in-place update;
 *   3. commit() marks the log IDLE (persisted) — the point of no
 *      return;
 *   4. recover() after a crash rolls back any ACTIVE log by applying
 *      undo records newest-first, restoring the pre-transaction
 *      state. Recovery is idempotent: crashing during recovery and
 *      recovering again is safe.
 */

#ifndef PMODV_PMO_TXN_HH
#define PMODV_PMO_TXN_HH

#include <cstdint>

#include "pmo/pool.hh"

namespace pmodv::pmo
{

/** Persistent log header at the start of the pool's log region. */
struct TxnLogHeader
{
    std::uint32_t state = 0; ///< 0 = idle, 1 = active.
    std::uint32_t numEntries = 0;
    std::uint64_t usedBytes = 0; ///< Includes this header.
};

/** Per-record header inside the log. */
struct TxnLogEntry
{
    std::uint64_t offset = 0; ///< Pool offset of the saved range.
    std::uint32_t length = 0; ///< Bytes saved.
    std::uint32_t canary = 0;
};

/** Expected TxnLogEntry::canary. */
inline constexpr std::uint32_t kTxnCanary = 0x74786e21; // "txn!"

/** Log states. */
inline constexpr std::uint32_t kTxnIdle = 0;
inline constexpr std::uint32_t kTxnActive = 1;

/** A durable transaction bound to one pool. */
class Transaction
{
  public:
    explicit Transaction(Pool &pool) : pool_(pool) {}

    /** Start a transaction; throws TxnError if one is active. */
    void begin();

    /** True between begin() and commit()/abort(). */
    bool active() const;

    /**
     * Transactionally write @p len bytes at @p oid: the old bytes are
     * undo-logged durably before the in-place durable update.
     */
    void write(Oid oid, const void *data, std::size_t len);

    /** Typed convenience over write(). */
    template <typename T>
    void
    writeValue(Oid oid, const T &value)
    {
        write(oid, &value, sizeof(T));
    }

    /** Commit: discard the undo log durably. */
    void commit();

    /** Abort: roll the pool back to the begin() snapshot. */
    void abort();

    /**
     * Post-crash recovery for @p pool: roll back an interrupted
     * transaction if the log is ACTIVE. Returns true when a rollback
     * was performed.
     */
    static bool recover(Pool &pool);

    /** Undo records appended so far in this transaction. */
    std::uint32_t entryCount() const;

  private:
    static TxnLogHeader readHeader(const Pool &pool);
    static void writeHeader(Pool &pool, const TxnLogHeader &hdr);
    static void rollback(Pool &pool);

    Pool &pool_;
};

} // namespace pmodv::pmo

#endif // PMODV_PMO_TXN_HH
