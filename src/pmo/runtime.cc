#include "pmo/runtime.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "pmo/errors.hh"

namespace pmodv::pmo
{

namespace
{

/** First simulated VA handed to attachments. */
constexpr Addr kVaStart = Addr{1} << 32;

/** Alignment of attachment bases (2 MB, a page-table level). */
constexpr Addr kVaAlign = Addr{1} << 21;

/** Unmapped guard gap between attachments. */
constexpr Addr kVaGap = Addr{1} << 21;

} // namespace

Runtime::Runtime(Namespace &ns, Uid uid, ProcId proc)
    : ns_(ns), uid_(uid), proc_(proc), nextVa_(kVaStart)
{
}

Runtime::~Runtime()
{
    // Process exit: the OS detaches everything we still hold.
    for (const auto &[domain, att] : attached_) {
        try {
            ns_.detach(att.name, proc_);
        } catch (const std::exception &e) {
            warn("detach of '%s' on runtime teardown failed: %s",
                 att.name.c_str(), e.what());
        }
    }
}

const Attached &
Runtime::attach(const std::string &name, Perm perm,
                std::uint64_t attach_key)
{
    Pool &pool = ns_.attach(name, perm, uid_, proc_, attach_key);

    Attached att;
    att.name = name;
    att.poolId = pool.id();
    att.domain = pool.id(); // The PMO id is the domain id (paper §IV-A).
    att.pagePerm = perm;
    att.pool = &pool;
    att.vaSize = alignUp(pool.size(), 4096);
    att.vaBase = nextVa_;
    nextVa_ = alignUp(nextVa_ + att.vaSize + kVaGap, kVaAlign);

    auto [it, inserted] = attached_.emplace(att.domain, att);
    if (!inserted) {
        ns_.detach(name, proc_);
        throw NamespaceError("domain " + std::to_string(att.domain) +
                             " is already attached");
    }
    poolToDomain_[att.poolId] = att.domain;

    emit(trace::TraceRecord::attach(0, att.domain, att.vaBase,
                                    att.vaSize, perm));
    return it->second;
}

void
Runtime::detach(DomainId domain)
{
    auto it = attached_.find(domain);
    if (it == attached_.end())
        throw NamespaceError("detach of an unattached domain");
    emit(trace::TraceRecord::detach(0, domain));
    ns_.detach(it->second.name, proc_);
    poolToDomain_.erase(it->second.poolId);
    attached_.erase(it);
    // Drop every thread's permission for the vanished domain.
    for (auto p = threadPerms_.begin(); p != threadPerms_.end();) {
        if (p->first.second == domain)
            p = threadPerms_.erase(p);
        else
            ++p;
    }
}

std::vector<const Attached *>
Runtime::attachments() const
{
    std::vector<const Attached *> out;
    out.reserve(attached_.size());
    for (const auto &[domain, att] : attached_)
        out.push_back(&att);
    return out;
}

const Attached &
Runtime::find(DomainId domain) const
{
    auto it = attached_.find(domain);
    if (it == attached_.end()) {
        throw NamespaceError("domain " + std::to_string(domain) +
                             " is not attached");
    }
    return it->second;
}

const Attached *
Runtime::findPool(PoolId pool_id) const
{
    auto it = poolToDomain_.find(pool_id);
    return it == poolToDomain_.end() ? nullptr : &find(it->second);
}

void
Runtime::setPerm(ThreadId tid, DomainId domain, Perm perm)
{
    if (perm == Perm::None)
        threadPerms_.erase({tid, domain});
    else
        threadPerms_[{tid, domain}] = perm;
    emit(trace::TraceRecord::setPerm(static_cast<std::uint16_t>(tid),
                                     domain, perm));
}

Perm
Runtime::threadPerm(ThreadId tid, DomainId domain) const
{
    auto it = threadPerms_.find({tid, domain});
    return it == threadPerms_.end() ? Perm::None : it->second;
}

const Attached &
Runtime::checkedLookup(ThreadId tid, Oid oid, AccessType type,
                       std::size_t len)
{
    auto dit = poolToDomain_.find(oid.pool);
    if (dit == poolToDomain_.end()) {
        throw ProtectionFault("access to pool " +
                              std::to_string(oid.pool) +
                              " which is not attached");
    }
    const Attached &att = attached_.at(dit->second);

    const Perm need = permForAccess(type);
    const Perm effective =
        permIntersect(att.pagePerm, threadPerm(tid, att.domain));
    if (!permAllows(effective, need)) {
        throw ProtectionFault(
            "thread " + std::to_string(tid) + " denied " +
            (type == AccessType::Read ? std::string("read")
                                      : std::string("write")) +
            " on domain " + std::to_string(att.domain) +
            " (page=" + permToString(att.pagePerm) +
            " domain=" + permToString(threadPerm(tid, att.domain)) +
            ")");
    }
    if (oid.offset + len > att.pool->size())
        throw PmoError("access beyond the end of the pool");
    return att;
}

void
Runtime::read(ThreadId tid, Oid oid, void *out, std::size_t len)
{
    const Attached &att = checkedLookup(tid, oid, AccessType::Read, len);
    att.pool->read(oid, out, len);
    emit(trace::TraceRecord::load(static_cast<std::uint16_t>(tid),
                                  att.vaBase + oid.offset,
                                  static_cast<std::uint32_t>(len),
                                  true));
}

void
Runtime::write(ThreadId tid, Oid oid, const void *in, std::size_t len)
{
    const Attached &att =
        checkedLookup(tid, oid, AccessType::Write, len);
    att.pool->write(oid, in, len);
    emit(trace::TraceRecord::store(static_cast<std::uint16_t>(tid),
                                   att.vaBase + oid.offset,
                                   static_cast<std::uint32_t>(len),
                                   true));
}

void *
Runtime::direct(Oid oid)
{
    auto it = poolToDomain_.find(oid.pool);
    if (it == poolToDomain_.end()) {
        throw NamespaceError("oid_direct on pool " +
                             std::to_string(oid.pool) +
                             " which is not attached");
    }
    return attached_.at(it->second).pool->direct(oid);
}

Addr
Runtime::vaOf(Oid oid) const
{
    auto it = poolToDomain_.find(oid.pool);
    if (it == poolToDomain_.end())
        throw NamespaceError("vaOf on an unattached pool");
    return attached_.at(it->second).vaBase + oid.offset;
}

void
Runtime::compute(ThreadId tid, std::uint32_t count)
{
    if (count == 0)
        return;
    emit(trace::TraceRecord::instBlock(static_cast<std::uint16_t>(tid),
                                       count));
}

void
Runtime::switchThread(ThreadId tid)
{
    emit(trace::TraceRecord::threadSwitch(
        static_cast<std::uint16_t>(tid)));
}

void
Runtime::volatileAccess(ThreadId tid, Addr va, bool is_write,
                        std::uint32_t size)
{
    if (is_write) {
        emit(trace::TraceRecord::store(static_cast<std::uint16_t>(tid),
                                       va, size, false));
    } else {
        emit(trace::TraceRecord::load(static_cast<std::uint16_t>(tid),
                                      va, size, false));
    }
}

void
Runtime::opBegin(ThreadId tid, std::uint32_t kind)
{
    emit(trace::TraceRecord::opBegin(static_cast<std::uint16_t>(tid),
                                     kind));
}

void
Runtime::opEnd(ThreadId tid, std::uint32_t kind)
{
    emit(trace::TraceRecord::opEnd(static_cast<std::uint16_t>(tid),
                                   kind));
}

} // namespace pmodv::pmo
