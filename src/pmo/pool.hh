/**
 * @file
 * A pool: the concrete PMO implementation (per the paper's §II-C, a
 * pool is "a specific implementation of a PMO"). A pool is a
 * self-contained persistent arena holding:
 *
 *   - a header (magic, id, geometry, root object, allocator state),
 *   - a transaction redo-log region, and
 *   - a persistent heap managed by a first-fit free-list allocator
 *     whose metadata lives *inside* the pool (offsets, not pointers),
 *     so the pool is relocatable and survives process lifetime.
 */

#ifndef PMODV_PMO_POOL_HH
#define PMODV_PMO_POOL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "pmo/arena.hh"
#include "pmo/errors.hh"
#include "pmo/oid.hh"

namespace pmodv::pmo
{

/** On-media pool header (fixed layout, lives at offset 0). */
struct PoolHeader
{
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    PoolId poolId = 0;
    std::uint64_t poolSize = 0;
    std::uint64_t rootOffset = 0; ///< 0 = no root object yet.
    std::uint64_t rootSize = 0;
    std::uint64_t logStart = 0;
    std::uint64_t logCapacity = 0;
    std::uint64_t heapStart = 0;
    std::uint64_t freeListHead = 0; ///< Offset of first free block.
    std::uint64_t allocatedBytes = 0;
    std::uint64_t allocatedBlocks = 0;
};

/** Per-block heap metadata preceding every heap block's payload. */
struct BlockHeader
{
    std::uint64_t size = 0;     ///< Payload bytes.
    std::uint64_t nextFree = 0; ///< Next free block (free blocks only).
    std::uint32_t allocated = 0;
    std::uint32_t canary = 0;   ///< Integrity check.
};

/** Expected value of BlockHeader::canary. */
inline constexpr std::uint32_t kBlockCanary = 0xb10cb10c;

/** Pool file magic. */
inline constexpr std::uint64_t kPoolMagic = 0x504d4f4456313233ull;

/** Pool format version. */
inline constexpr std::uint32_t kPoolVersion = 1;

/** A pool of persistent objects. */
class Pool
{
  public:
    /**
     * Create a fresh pool of @p size bytes with identifier @p id.
     * @p log_capacity bytes are reserved for the transaction log
     * (0 = pick a default).
     */
    static std::unique_ptr<Pool> create(PoolId id, std::size_t size,
                                        std::size_t log_capacity = 0);

    /** Adopt an existing arena, validating its header. */
    static std::unique_ptr<Pool> adopt(PersistentArena arena);

    /** Reload a pool from its backing file. */
    static std::unique_ptr<Pool> loadFrom(const std::string &path);

    PoolId id() const { return header().poolId; }
    std::size_t size() const { return arena_.size(); }

    /** Bytes currently allocated to live objects. */
    std::uint64_t allocatedBytes() const
    {
        return header().allocatedBytes;
    }

    /** Number of live heap blocks. */
    std::uint64_t allocatedBlocks() const
    {
        return header().allocatedBlocks;
    }

    /**
     * Allocate @p size payload bytes; returns the OID of the first
     * byte. Throws AllocError when the heap is exhausted.
     */
    Oid pmalloc(std::size_t size);

    /** Free a block previously returned by pmalloc(). */
    void pfree(Oid oid);

    /**
     * Return the pool's root object, allocating it (zeroed) with
     * @p size bytes on first use. The root is the programmer-designed
     * directory of the pool's contents.
     */
    Oid root(std::size_t size);

    /** True when a root object exists. */
    bool hasRoot() const { return header().rootOffset != 0; }

    /**
     * Translate an OID to a raw pointer into the volatile image
     * (oid_direct of Table I). Bounds-checked.
     */
    void *direct(Oid oid);
    const void *direct(Oid oid) const;

    /** Typed convenience over direct(). */
    template <typename T>
    T *
    as(Oid oid)
    {
        return static_cast<T *>(direct(oid));
    }

    /** Read @p len bytes of object data. */
    void read(Oid oid, void *out, std::size_t len) const;

    /** Write @p len bytes of object data (volatile image). */
    void write(Oid oid, const void *in, std::size_t len);

    /** CLWB the bytes of [oid, oid+len) to the persistent image. */
    void persist(Oid oid, std::size_t len);

    /** Payload size of the block containing @p oid's first byte. */
    std::size_t blockSize(Oid oid) const;

    /** Walk every allocated block (integrity checks, tests). */
    void forEachAllocated(
        const std::function<void(Oid, std::size_t)> &fn) const;

    /** Count of free-list blocks (tests). */
    std::size_t freeBlockCount() const;

    /**
     * Validate pool invariants (header geometry, block canaries,
     * free-list sanity); throws CorruptPoolError on failure.
     */
    void check() const;

    /** The raw media (crash injection / recovery / persistence). */
    PersistentArena &arena() { return arena_; }
    const PersistentArena &arena() const { return arena_; }

    /** Log region bounds (used by the transaction layer). */
    std::uint64_t logStart() const { return header().logStart; }
    std::uint64_t logCapacity() const { return header().logCapacity; }

    /** Persist the pool image to @p path. */
    void saveTo(const std::string &path);

  private:
    explicit Pool(PersistentArena arena) : arena_(std::move(arena)) {}

    PoolHeader header() const;
    void setHeader(const PoolHeader &hdr);
    BlockHeader blockAt(std::uint64_t off) const;
    void setBlockAt(std::uint64_t off, const BlockHeader &blk);

    /** Offset of the block header owning payload offset @p off. */
    std::uint64_t headerOfPayload(std::uint64_t off) const
    {
        return off - sizeof(BlockHeader);
    }

    PersistentArena arena_;
};

} // namespace pmodv::pmo

#endif // PMODV_PMO_POOL_HH
