/**
 * @file
 * The pool API of the paper's Table I, as a thin veneer over
 * Namespace + Runtime:
 *
 *   pool_create(name, size, mode) -> poolCreate()
 *   pool_open(name, mode)         -> poolOpen()
 *   pool_close(p)                 -> poolClose()
 *   pool_root(p, size)            -> poolRoot()
 *   pmalloc(p, size)              -> pmalloc()
 *   pfree(oid)                    -> pfree()
 *   oid_direct(oid)               -> oidDirect()
 *
 * plus the paper's SETPERM as setPerm(). One PmoApi instance stands
 * for one process using PMOs.
 */

#ifndef PMODV_PMO_API_HH
#define PMODV_PMO_API_HH

#include "pmo/runtime.hh"
#include "pmo/txn.hh"

namespace pmodv::pmo
{

/** Process-level facade over the PMO stack. */
class PmoApi
{
  public:
    PmoApi(Namespace &ns, Uid uid, ProcId proc) : runtime_(ns, uid, proc)
    {
    }

    /**
     * Create a pool and attach it read/write. The running process is
     * the owner (pool_create of Table I).
     */
    Pool *poolCreate(const std::string &name, std::size_t size,
                     PoolMode mode = {});

    /**
     * Reopen an existing pool; permissions are checked (pool_open).
     * @p mode is the requested page permission.
     */
    Pool *poolOpen(const std::string &name, Perm mode,
                   std::uint64_t attach_key = 0);

    /** Close (detach) a pool (pool_close). */
    void poolClose(Pool *pool);

    /** Return/allocate the root object (pool_root). */
    Oid poolRoot(Pool *pool, std::size_t size);

    /** Allocate persistent data in @p pool (pmalloc). */
    Oid pmalloc(Pool *pool, std::size_t size);

    /** Free persistent data (pfree). */
    void pfree(Oid oid);

    /** Translate an OID to a virtual address (oid_direct). */
    void *oidDirect(Oid oid);

    /** The paper's SETPERM for the calling thread. */
    void setPerm(ThreadId tid, Pool *pool, Perm perm);

    /** Begin a durable transaction on @p pool. */
    Transaction transaction(Pool *pool) { return Transaction(*pool); }

    /** The underlying runtime (tracing, checked accesses). */
    Runtime &runtime() { return runtime_; }

    /** The domain id of an open pool. */
    DomainId domainOf(Pool *pool) const;

  private:
    Runtime runtime_;
};

} // namespace pmodv::pmo

#endif // PMODV_PMO_API_HH
