#include "pmo/txn.hh"

#include <vector>

#include "common/bitutil.hh"
#include "pmo/errors.hh"

namespace pmodv::pmo
{

namespace
{
constexpr std::size_t kEntryAlign = 8;
} // namespace

TxnLogHeader
Transaction::readHeader(const Pool &pool)
{
    TxnLogHeader hdr;
    pool.arena().read(pool.logStart(), &hdr, sizeof(hdr));
    return hdr;
}

void
Transaction::writeHeader(Pool &pool, const TxnLogHeader &hdr)
{
    pool.arena().write(pool.logStart(), &hdr, sizeof(hdr));
    pool.arena().writeback(pool.logStart(), sizeof(hdr));
}

void
Transaction::begin()
{
    TxnLogHeader hdr = readHeader(pool_);
    if (hdr.state == kTxnActive)
        throw TxnError("transaction already active on this pool");
    hdr.state = kTxnActive;
    hdr.numEntries = 0;
    hdr.usedBytes = sizeof(TxnLogHeader);
    writeHeader(pool_, hdr);
}

bool
Transaction::active() const
{
    return readHeader(pool_).state == kTxnActive;
}

std::uint32_t
Transaction::entryCount() const
{
    return readHeader(pool_).numEntries;
}

void
Transaction::write(Oid oid, const void *data, std::size_t len)
{
    TxnLogHeader hdr = readHeader(pool_);
    if (hdr.state != kTxnActive)
        throw TxnError("write outside an active transaction");
    if (oid.pool != pool_.id())
        throw TxnError("transactional write to a foreign pool");
    if (len == 0)
        return;

    const std::uint64_t entry_bytes =
        alignUp(sizeof(TxnLogEntry) + len, kEntryAlign);
    const std::uint64_t log_off = pool_.logStart() + hdr.usedBytes;
    if (hdr.usedBytes + entry_bytes > pool_.logCapacity()) {
        throw TxnError("transaction log full (capacity " +
                       std::to_string(pool_.logCapacity()) + " bytes)");
    }

    // 1. Durably append the undo record (old contents).
    TxnLogEntry entry;
    entry.offset = oid.offset;
    entry.length = static_cast<std::uint32_t>(len);
    entry.canary = kTxnCanary;
    std::vector<std::uint8_t> old(len);
    pool_.arena().read(oid.offset, old.data(), len);
    pool_.arena().write(log_off, &entry, sizeof(entry));
    pool_.arena().write(log_off + sizeof(entry), old.data(), len);
    pool_.arena().writeback(log_off, sizeof(entry) + len);

    // 2. Durably publish the record (header update orders after it).
    hdr.numEntries += 1;
    hdr.usedBytes += entry_bytes;
    writeHeader(pool_, hdr);

    // 3. In-place durable update.
    pool_.arena().write(oid.offset, data, len);
    pool_.arena().writeback(oid.offset, len);
}

void
Transaction::commit()
{
    TxnLogHeader hdr = readHeader(pool_);
    if (hdr.state != kTxnActive)
        throw TxnError("commit without an active transaction");
    hdr.state = kTxnIdle;
    hdr.numEntries = 0;
    hdr.usedBytes = sizeof(TxnLogHeader);
    writeHeader(pool_, hdr);
}

void
Transaction::rollback(Pool &pool)
{
    TxnLogHeader hdr = readHeader(pool);

    // Collect record offsets, then undo newest-first.
    std::vector<std::uint64_t> offsets;
    std::uint64_t off = sizeof(TxnLogHeader);
    for (std::uint32_t i = 0; i < hdr.numEntries; ++i) {
        offsets.push_back(pool.logStart() + off);
        TxnLogEntry entry;
        pool.arena().read(pool.logStart() + off, &entry, sizeof(entry));
        if (entry.canary != kTxnCanary)
            throw CorruptPoolError("txn log canary mismatch");
        off += alignUp(sizeof(TxnLogEntry) + entry.length, kEntryAlign);
    }
    for (auto it = offsets.rbegin(); it != offsets.rend(); ++it) {
        TxnLogEntry entry;
        pool.arena().read(*it, &entry, sizeof(entry));
        std::vector<std::uint8_t> old(entry.length);
        pool.arena().read(*it + sizeof(entry), old.data(), entry.length);
        pool.arena().write(entry.offset, old.data(), entry.length);
        pool.arena().writeback(entry.offset, entry.length);
    }

    hdr.state = kTxnIdle;
    hdr.numEntries = 0;
    hdr.usedBytes = sizeof(TxnLogHeader);
    writeHeader(pool, hdr);
}

void
Transaction::abort()
{
    TxnLogHeader hdr = readHeader(pool_);
    if (hdr.state != kTxnActive)
        throw TxnError("abort without an active transaction");
    rollback(pool_);
}

bool
Transaction::recover(Pool &pool)
{
    const TxnLogHeader hdr = readHeader(pool);
    if (hdr.state != kTxnActive)
        return false;
    rollback(pool);
    return true;
}

} // namespace pmodv::pmo
