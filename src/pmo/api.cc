#include "pmo/api.hh"

#include "pmo/errors.hh"

namespace pmodv::pmo
{

Pool *
PmoApi::poolCreate(const std::string &name, std::size_t size,
                   PoolMode mode)
{
    runtime_.ns().create(name, size, runtime_.uid(), mode);
    const Attached &att = runtime_.attach(name, Perm::ReadWrite);
    return att.pool;
}

Pool *
PmoApi::poolOpen(const std::string &name, Perm mode,
                 std::uint64_t attach_key)
{
    const Attached &att = runtime_.attach(name, mode, attach_key);
    return att.pool;
}

void
PmoApi::poolClose(Pool *pool)
{
    if (!pool)
        throw PmoError("poolClose(nullptr)");
    const Attached *att = runtime_.findPool(pool->id());
    if (!att)
        throw NamespaceError("poolClose of a pool that is not open");
    runtime_.detach(att->domain);
}

Oid
PmoApi::poolRoot(Pool *pool, std::size_t size)
{
    if (!pool)
        throw PmoError("poolRoot(nullptr)");
    return pool->root(size);
}

Oid
PmoApi::pmalloc(Pool *pool, std::size_t size)
{
    if (!pool)
        throw PmoError("pmalloc(nullptr)");
    return pool->pmalloc(size);
}

void
PmoApi::pfree(Oid oid)
{
    const Attached *att = runtime_.findPool(oid.pool);
    if (!att)
        throw NamespaceError("pfree on a pool that is not open");
    att->pool->pfree(oid);
}

void *
PmoApi::oidDirect(Oid oid)
{
    return runtime_.direct(oid);
}

void
PmoApi::setPerm(ThreadId tid, Pool *pool, Perm perm)
{
    if (!pool)
        throw PmoError("setPerm(nullptr)");
    const Attached *att = runtime_.findPool(pool->id());
    if (!att)
        throw NamespaceError("setPerm on a pool that is not open");
    runtime_.setPerm(tid, att->domain, perm);
}

DomainId
PmoApi::domainOf(Pool *pool) const
{
    if (!pool)
        throw PmoError("domainOf(nullptr)");
    const Attached *att = runtime_.findPool(pool->id());
    if (!att)
        throw NamespaceError("domainOf on a pool that is not open");
    return att->domain;
}

} // namespace pmodv::pmo
