#include "pmo/arena.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "pmo/errors.hh"

namespace pmodv::pmo
{

PersistentArena::PersistentArena(std::size_t size)
    : volatile_(size, 0), persistent_(size, 0)
{
}

void
PersistentArena::checkRange(std::size_t off, std::size_t len) const
{
    if (off + len > volatile_.size() || off + len < off) {
        throw PmoError("arena access out of range: off=" +
                       std::to_string(off) + " len=" +
                       std::to_string(len) + " size=" +
                       std::to_string(volatile_.size()));
    }
}

void
PersistentArena::read(std::size_t off, void *out, std::size_t len) const
{
    checkRange(off, len);
    std::memcpy(out, volatile_.data() + off, len);
}

void
PersistentArena::write(std::size_t off, const void *in, std::size_t len)
{
    checkRange(off, len);
    std::memcpy(volatile_.data() + off, in, len);
}

std::size_t
PersistentArena::writeback(std::size_t off, std::size_t len)
{
    checkRange(off, len);
    if (len == 0)
        return 0;
    const std::size_t first = off / kPersistLine;
    const std::size_t last = (off + len - 1) / kPersistLine;
    for (std::size_t line = first; line <= last; ++line) {
        const std::size_t base = line * kPersistLine;
        const std::size_t n =
            std::min(kPersistLine, volatile_.size() - base);
        std::memcpy(persistent_.data() + base, volatile_.data() + base,
                    n);
    }
    const std::size_t lines = last - first + 1;
    writebacks_ += lines;
    return lines;
}

void
PersistentArena::writebackAll()
{
    writeback(0, volatile_.size());
}

void
PersistentArena::crash()
{
    volatile_ = persistent_;
}

void
PersistentArena::saveTo(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw PmoError("cannot open '" + tmp + "' for writing");
    const std::uint64_t size = persistent_.size();
    bool ok = std::fwrite(&size, sizeof(size), 1, f) == 1;
    ok = ok && (size == 0 ||
                std::fwrite(persistent_.data(), 1, size, f) == size);
    ok = ok && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        throw PmoError("short write saving arena to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw PmoError("cannot rename '" + tmp + "' to '" + path + "'");
}

PersistentArena
PersistentArena::loadFrom(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw PmoError("cannot open arena file '" + path + "'");
    std::uint64_t size = 0;
    if (std::fread(&size, sizeof(size), 1, f) != 1) {
        std::fclose(f);
        throw PmoError("short read of arena header in '" + path + "'");
    }
    PersistentArena arena(size);
    if (size != 0 &&
        std::fread(arena.persistent_.data(), 1, size, f) != size) {
        std::fclose(f);
        throw PmoError("short read of arena body in '" + path + "'");
    }
    std::fclose(f);
    arena.volatile_ = arena.persistent_;
    return arena;
}

} // namespace pmodv::pmo
