/**
 * @file
 * The persistent-memory media model backing every pool.
 *
 * A PersistentArena keeps two byte images:
 *
 *  - the *volatile* image — what loads and stores see (CPU caches +
 *    memory-side buffers), and
 *  - the *persistent* image — what survives a crash (the NVM media).
 *
 * writeback() models CLWB of a cache line: it copies the line from
 * the volatile to the persistent image. crash() discards all
 * un-written-back volatile state, exactly what a power loss does.
 * The persistent image can be saved to / loaded from a file, which is
 * how pools survive process lifetime (our stand-in for DAX-mapped
 * Optane media).
 */

#ifndef PMODV_PMO_ARENA_HH
#define PMODV_PMO_ARENA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pmodv::pmo
{

/** Cache-line granularity of persistence operations. */
inline constexpr std::size_t kPersistLine = 64;

/** Two-image persistent memory arena. */
class PersistentArena
{
  public:
    /** Create an arena of @p size zeroed bytes. */
    explicit PersistentArena(std::size_t size);

    std::size_t size() const { return volatile_.size(); }

    /** Volatile (load/store) view. */
    std::uint8_t *data() { return volatile_.data(); }
    const std::uint8_t *data() const { return volatile_.data(); }

    /** The crash-durable view (tests and recovery inspect this). */
    const std::uint8_t *persistentData() const
    {
        return persistent_.data();
    }

    /** Read @p len bytes at @p off from the volatile image. */
    void read(std::size_t off, void *out, std::size_t len) const;

    /** Write @p len bytes at @p off into the volatile image. */
    void write(std::size_t off, const void *in, std::size_t len);

    /**
     * CLWB the lines covering [off, off+len): copy them to the
     * persistent image. Returns the number of lines written back.
     */
    std::size_t writeback(std::size_t off, std::size_t len);

    /** writeback() the entire arena. */
    void writebackAll();

    /**
     * Simulate a power failure: the volatile image is replaced by the
     * persistent image (all non-persisted stores are lost).
     */
    void crash();

    /** True when the two images are byte-identical. */
    bool isClean() const { return volatile_ == persistent_; }

    /** Save the persistent image to @p path (atomic rename). */
    void saveTo(const std::string &path) const;

    /** Load both images from @p path; throws on I/O failure. */
    static PersistentArena loadFrom(const std::string &path);

    /** Lines written back so far (persistence-traffic statistic). */
    std::uint64_t writebackCount() const { return writebacks_; }

  private:
    void checkRange(std::size_t off, std::size_t len) const;

    std::vector<std::uint8_t> volatile_;
    std::vector<std::uint8_t> persistent_;
    std::uint64_t writebacks_ = 0;
};

} // namespace pmodv::pmo

#endif // PMODV_PMO_ARENA_HH
