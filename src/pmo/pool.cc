#include "pmo/pool.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bitutil.hh"

namespace pmodv::pmo
{

namespace
{

/** Allocation granularity of the persistent heap. */
constexpr std::size_t kHeapAlign = 16;

/** Smallest payload worth splitting a block for. */
constexpr std::size_t kMinSplitPayload = 32;

constexpr std::size_t kDefaultLogCapacity = 256 * 1024;

} // namespace

PoolHeader
Pool::header() const
{
    PoolHeader hdr;
    arena_.read(0, &hdr, sizeof(hdr));
    return hdr;
}

void
Pool::setHeader(const PoolHeader &hdr)
{
    arena_.write(0, &hdr, sizeof(hdr));
    arena_.writeback(0, sizeof(hdr));
}

BlockHeader
Pool::blockAt(std::uint64_t off) const
{
    BlockHeader blk;
    arena_.read(off, &blk, sizeof(blk));
    return blk;
}

void
Pool::setBlockAt(std::uint64_t off, const BlockHeader &blk)
{
    arena_.write(off, &blk, sizeof(blk));
    arena_.writeback(off, sizeof(blk));
}

std::unique_ptr<Pool>
Pool::create(PoolId id, std::size_t size, std::size_t log_capacity)
{
    if (log_capacity == 0) {
        log_capacity =
            std::min<std::size_t>(kDefaultLogCapacity, size / 8);
    }
    const std::size_t min_size = sizeof(PoolHeader) + log_capacity +
                                 sizeof(BlockHeader) + kHeapAlign;
    if (size < min_size)
        throw PmoError("pool size too small for header+log+heap");

    auto pool = std::unique_ptr<Pool>(new Pool(PersistentArena(size)));

    PoolHeader hdr;
    hdr.magic = kPoolMagic;
    hdr.version = kPoolVersion;
    hdr.poolId = id;
    hdr.poolSize = size;
    hdr.logStart = alignUp(sizeof(PoolHeader), kPersistLine);
    hdr.logCapacity = log_capacity;
    hdr.heapStart = alignUp(hdr.logStart + log_capacity, kPersistLine);

    // One big free block spanning the whole heap.
    BlockHeader blk;
    blk.size = size - hdr.heapStart - sizeof(BlockHeader);
    blk.nextFree = 0;
    blk.allocated = 0;
    blk.canary = kBlockCanary;
    hdr.freeListHead = hdr.heapStart;

    pool->setHeader(hdr);
    pool->setBlockAt(hdr.heapStart, blk);
    return pool;
}

std::unique_ptr<Pool>
Pool::adopt(PersistentArena arena)
{
    auto pool = std::unique_ptr<Pool>(new Pool(std::move(arena)));
    PoolHeader hdr = pool->header();
    if (hdr.magic != kPoolMagic)
        throw CorruptPoolError("bad pool magic");
    if (hdr.version != kPoolVersion)
        throw CorruptPoolError("unsupported pool version");
    if (hdr.poolSize != pool->arena_.size())
        throw CorruptPoolError("pool size does not match media size");
    return pool;
}

std::unique_ptr<Pool>
Pool::loadFrom(const std::string &path)
{
    return adopt(PersistentArena::loadFrom(path));
}

void
Pool::saveTo(const std::string &path)
{
    arena_.saveTo(path);
}

Oid
Pool::pmalloc(std::size_t size)
{
    if (size == 0)
        throw AllocError("pmalloc of zero bytes");
    const std::size_t want = alignUp(size, kHeapAlign);

    PoolHeader hdr = header();
    std::uint64_t prev = 0;
    std::uint64_t cur = hdr.freeListHead;
    while (cur != 0) {
        BlockHeader blk = blockAt(cur);
        if (blk.canary != kBlockCanary)
            throw CorruptPoolError("free-list block canary mismatch");
        if (!blk.allocated && blk.size >= want) {
            std::uint64_t next = blk.nextFree;
            // Split if the remainder can hold a useful block.
            if (blk.size >=
                want + sizeof(BlockHeader) + kMinSplitPayload) {
                const std::uint64_t rest_off =
                    cur + sizeof(BlockHeader) + want;
                BlockHeader rest;
                rest.size = blk.size - want - sizeof(BlockHeader);
                rest.nextFree = next;
                rest.allocated = 0;
                rest.canary = kBlockCanary;
                setBlockAt(rest_off, rest);
                next = rest_off;
                blk.size = want;
            }
            blk.allocated = 1;
            blk.nextFree = 0;
            setBlockAt(cur, blk);

            if (prev == 0) {
                hdr.freeListHead = next;
            } else {
                BlockHeader pblk = blockAt(prev);
                pblk.nextFree = next;
                setBlockAt(prev, pblk);
            }
            hdr.allocatedBytes += blk.size;
            hdr.allocatedBlocks += 1;
            setHeader(hdr);
            return Oid{hdr.poolId, static_cast<std::uint32_t>(
                                       cur + sizeof(BlockHeader))};
        }
        prev = cur;
        cur = blk.nextFree;
    }
    throw AllocError("pool " + std::to_string(hdr.poolId) +
                     " heap exhausted (asked for " +
                     std::to_string(size) + " bytes)");
}

void
Pool::pfree(Oid oid)
{
    PoolHeader hdr = header();
    if (oid.pool != hdr.poolId)
        throw AllocError("pfree of an OID from another pool");
    if (oid.offset < hdr.heapStart + sizeof(BlockHeader) ||
        oid.offset >= hdr.poolSize) {
        throw AllocError("pfree of an OID outside the heap");
    }
    const std::uint64_t blk_off = headerOfPayload(oid.offset);
    BlockHeader blk = blockAt(blk_off);
    if (blk.canary != kBlockCanary)
        throw AllocError("pfree of a non-block OID (canary mismatch)");
    if (!blk.allocated)
        throw AllocError("double pfree");

    const std::uint64_t freed_payload = blk.size;
    blk.allocated = 0;

    // Insert into the free list sorted by offset, coalescing with
    // adjacent free neighbours.
    std::uint64_t prev = 0;
    std::uint64_t cur = hdr.freeListHead;
    while (cur != 0 && cur < blk_off) {
        prev = cur;
        cur = blockAt(cur).nextFree;
    }

    // Coalesce forward with `cur` if contiguous.
    if (cur != 0 && blk_off + sizeof(BlockHeader) + blk.size == cur) {
        const BlockHeader nblk = blockAt(cur);
        blk.size += sizeof(BlockHeader) + nblk.size;
        blk.nextFree = nblk.nextFree;
    } else {
        blk.nextFree = cur;
    }

    bool merged_backward = false;
    if (prev != 0) {
        BlockHeader pblk = blockAt(prev);
        if (prev + sizeof(BlockHeader) + pblk.size == blk_off) {
            // Coalesce backward into `prev`.
            pblk.size += sizeof(BlockHeader) + blk.size;
            pblk.nextFree = blk.nextFree;
            setBlockAt(prev, pblk);
            merged_backward = true;
        } else {
            pblk.nextFree = blk_off;
            setBlockAt(prev, pblk);
        }
    } else {
        hdr.freeListHead = blk_off;
    }
    if (!merged_backward)
        setBlockAt(blk_off, blk);

    hdr.allocatedBytes -=
        std::min<std::uint64_t>(hdr.allocatedBytes, freed_payload);
    hdr.allocatedBlocks -= 1;
    setHeader(hdr);
}

std::size_t
Pool::blockSize(Oid oid) const
{
    const BlockHeader blk = blockAt(headerOfPayload(oid.offset));
    if (blk.canary != kBlockCanary)
        throw AllocError("blockSize of a non-block OID");
    return blk.size;
}

Oid
Pool::root(std::size_t size)
{
    PoolHeader hdr = header();
    if (hdr.rootOffset != 0) {
        return Oid{hdr.poolId,
                   static_cast<std::uint32_t>(hdr.rootOffset)};
    }
    const Oid oid = pmalloc(size);
    std::vector<std::uint8_t> zero(size, 0);
    write(oid, zero.data(), size);
    persist(oid, size);
    hdr = header();
    hdr.rootOffset = oid.offset;
    hdr.rootSize = size;
    setHeader(hdr);
    return oid;
}

void *
Pool::direct(Oid oid)
{
    if (oid.isNull())
        throw PmoError("direct() on the null OID");
    if (oid.offset >= arena_.size())
        throw PmoError("direct() OID offset out of range");
    return arena_.data() + oid.offset;
}

const void *
Pool::direct(Oid oid) const
{
    if (oid.isNull())
        throw PmoError("direct() on the null OID");
    if (oid.offset >= arena_.size())
        throw PmoError("direct() OID offset out of range");
    return arena_.data() + oid.offset;
}

void
Pool::read(Oid oid, void *out, std::size_t len) const
{
    arena_.read(oid.offset, out, len);
}

void
Pool::write(Oid oid, const void *in, std::size_t len)
{
    arena_.write(oid.offset, in, len);
}

void
Pool::persist(Oid oid, std::size_t len)
{
    arena_.writeback(oid.offset, len);
}

void
Pool::forEachAllocated(
    const std::function<void(Oid, std::size_t)> &fn) const
{
    const PoolHeader hdr = header();
    std::uint64_t off = hdr.heapStart;
    while (off + sizeof(BlockHeader) <= hdr.poolSize) {
        const BlockHeader blk = blockAt(off);
        if (blk.canary != kBlockCanary)
            throw CorruptPoolError("heap walk hit a bad canary");
        if (blk.allocated) {
            fn(Oid{hdr.poolId, static_cast<std::uint32_t>(
                                   off + sizeof(BlockHeader))},
               blk.size);
        }
        off += sizeof(BlockHeader) + blk.size;
    }
}

std::size_t
Pool::freeBlockCount() const
{
    std::size_t n = 0;
    std::uint64_t cur = header().freeListHead;
    while (cur != 0) {
        ++n;
        cur = blockAt(cur).nextFree;
    }
    return n;
}

void
Pool::check() const
{
    const PoolHeader hdr = header();
    if (hdr.magic != kPoolMagic)
        throw CorruptPoolError("bad magic");
    if (hdr.poolSize != arena_.size())
        throw CorruptPoolError("size mismatch");
    if (hdr.heapStart >= hdr.poolSize)
        throw CorruptPoolError("heap start beyond pool end");

    // Heap must tile exactly; canaries must hold.
    std::uint64_t off = hdr.heapStart;
    std::uint64_t live_bytes = 0, live_blocks = 0;
    while (off + sizeof(BlockHeader) <= hdr.poolSize) {
        const BlockHeader blk = blockAt(off);
        if (blk.canary != kBlockCanary)
            throw CorruptPoolError("block canary mismatch in heap walk");
        if (blk.allocated) {
            live_bytes += blk.size;
            ++live_blocks;
        }
        off += sizeof(BlockHeader) + blk.size;
    }
    if (live_bytes != hdr.allocatedBytes ||
        live_blocks != hdr.allocatedBlocks) {
        throw CorruptPoolError("allocator accounting mismatch");
    }

    // Free list must be sorted, non-allocated, within bounds.
    std::uint64_t cur = hdr.freeListHead;
    std::uint64_t last = 0;
    while (cur != 0) {
        if (cur <= last)
            throw CorruptPoolError("free list not sorted");
        const BlockHeader blk = blockAt(cur);
        if (blk.allocated)
            throw CorruptPoolError("allocated block on the free list");
        last = cur;
        cur = blk.nextFree;
    }
}

} // namespace pmodv::pmo
