/**
 * @file
 * A two-level cache hierarchy in front of the DRAM/NVM main memory,
 * matching the paper's Table II (32KB 8-way L1D @1 cycle, 1MB 16-way
 * L2 @8 cycles).
 */

#ifndef PMODV_MEM_HIERARCHY_HH
#define PMODV_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/memory.hh"

namespace pmodv::mem
{

/** Static configuration of the whole data-memory hierarchy. */
struct HierarchyParams
{
    CacheParams l1{"l1d", 32 * 1024, 8, 64, 1, ReplPolicy::Lru};
    CacheParams l2{"l2", 1024 * 1024, 16, 64, 8, ReplPolicy::Lru};
    MemoryParams memory{};
};

/** Outcome of one hierarchy access (latency plus hit level). */
struct HierarchyResult
{
    Cycles latency = 0;
    /** 1 = L1 hit, 2 = L2 hit, 3 = main memory. */
    unsigned hitLevel = 0;
};

/**
 * L1 -> L2 -> main-memory lookup with additive latencies. Inclusive
 * allocation: a miss fills every level above the hit point.
 */
class CacheHierarchy : public stats::Group
{
  public:
    CacheHierarchy(stats::Group *parent, const HierarchyParams &params);

    /** Access @p addr; @p cls selects DRAM vs NVM on a full miss. */
    HierarchyResult access(Addr addr, AccessType type, MemClass cls);

    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    MainMemory &memory() { return *memory_; }

    /** Drop every cached line (e.g. between independent runs). */
    void invalidateAll();

    /** Defer hot counters in both levels and main memory. */
    void setStatsDeferred(bool defer);

    /** Flush deferred counters now. */
    void flushDeferredStats();

  private:
    HierarchyParams params_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<MainMemory> memory_;
};

} // namespace pmodv::mem

#endif // PMODV_MEM_HIERARCHY_HH
