/**
 * @file
 * A set-associative cache tag model with LRU / tree-PLRU replacement,
 * write-back write-allocate policy and full statistics. Only tags are
 * tracked (no data): the timing core needs hit/miss outcomes and the
 * paper's fixed per-level latencies.
 */

#ifndef PMODV_MEM_CACHE_HH
#define PMODV_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::mem
{

/** Replacement policies the cache model supports. */
enum class ReplPolicy : std::uint8_t
{
    Lru,      ///< True least-recently-used.
    TreePlru, ///< Tree pseudo-LRU.
};

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    Cycles hitLatency = 1;
    ReplPolicy repl = ReplPolicy::Lru;
};

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool writeback = false; ///< A dirty line was evicted by the fill.
};

/**
 * One level of set-associative cache. Thread-safe only for
 * single-threaded replay (each replay pipeline owns its own caches).
 *
 * All lines live in one flat vector (set-major) and the replacement
 * state is flat too — per-way LRU stamps plus a per-set clock, or a
 * by-value TreePlru per set — so the replay hot loop walks contiguous
 * arrays with no per-set heap indirection.
 */
class Cache : public stats::Group
{
  public:
    Cache(stats::Group *parent, const CacheParams &params);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /**
     * Access the line containing @p addr. Misses allocate; stores mark
     * the line dirty.
     */
    CacheResult access(Addr addr, AccessType type);

    /** True when the line containing @p addr is present. */
    bool probe(Addr addr) const;

    /** Invalidate every line (counts into stats). */
    void invalidateAll();

    /** Invalidate the line containing @p addr if present. */
    bool invalidate(Addr addr);

    /** Defer hot counters into packed locals; disabling flushes. */
    void setStatsDeferred(bool defer);

    /** Flush deferred counters into the stats tree now. */
    void flushDeferredStats();

    /** Accesses answered by the one-entry L0 filter (raw counter). */
    std::uint64_t l0Hits() const { return l0Hits_; }

    /** Monotonic structure generation (L0 self-invalidation). */
    std::uint64_t generation() const { return gen_; }

    // Stats (public so formulas above can reference them).
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions; ///< Valid lines displaced by a fill.
    stats::Scalar writebacks;
    stats::Scalar invalidations;
    stats::Formula missRate;

  private:
    // The line tag itself lives only in the packed tags_ array (the
    // probe path's working set); per-line state is just two flags, so
    // the flat line array stays tiny and host-cache friendly.
    struct Line
    {
        bool valid = false;
        bool dirty = false;
    };

    Addr lineTag(Addr addr) const { return addr >> lineShift_; }
    std::size_t setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & (numSets_ - 1);
    }

    /** Packed probe tag mirrored per way in tags_ (0 = invalid). */
    static std::uint64_t packTag(Addr tag) { return (tag << 1) | 1; }

    /** First way of set @p si in the flat line array. */
    Line *setWays(std::size_t si)
    {
        return lines_.data() + si * params_.assoc;
    }
    const Line *setWays(std::size_t si) const
    {
        return lines_.data() + si * params_.assoc;
    }

    unsigned victimWay(std::size_t si) const;
    void touchWay(std::size_t si, unsigned way);

    CacheParams params_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_; ///< numSets_ x assoc, set-major.
    /** Packed tag per way (+simd::kTagPad zero slots), set-major. */
    std::vector<std::uint64_t> tags_;
    // Exactly one of the two replacement representations is active,
    // selected by params_.repl.
    //
    // Exact LRU keeps one packed word per set: a 4-bit recency rank
    // per way (assoc - 1 = MRU, 0 = LRU). This is victim-for-victim
    // identical to per-way timestamp scans — victims are only
    // consulted when the set is full, by which point every way has
    // been touched and the ranks are exactly the recency permutation
    // of last-touch order — but costs one cache line per set instead
    // of three (stamp row + clock). Associativities above 16 fall
    // back to wide per-way stamps.
    std::vector<std::uint64_t> lruRank_; ///< Lru, assoc<=16: packed ranks.
    std::vector<std::uint64_t> stamps_; ///< Lru, assoc>16: touch stamps.
    std::vector<std::uint64_t> clocks_; ///< Lru, assoc>16: set clocks.
    std::vector<TreePlru> plru_;        ///< TreePlru: per-set tracker.
    /** Forces unused high nibbles non-zero in the victim search. */
    std::uint64_t lruHighMask_ = 0;
    /** Branchless touch ops (TreePlru only; empty under Lru). */
    std::vector<TreePlru::TouchOp> touchLut_;
    /** Table-driven victim() (TreePlru only; invalid under Lru). */
    TreePlru::VictimLut victimLut_;
    /** Valid-way count per set: a full set skips the free-way probe. */
    std::vector<std::uint8_t> setValid_;

    /**
     * L0 filter: the last line hit or filled, keyed by (generation,
     * packed tag). The packed tag embeds the full line tag — which
     * includes the set bits — so tag equality implies same line.
     */
    std::uint64_t gen_ = 1;
    std::uint64_t l0Gen_ = 0;
    std::uint64_t l0Tag_ = 0;
    std::size_t l0Flat_ = 0;
    std::size_t l0Si_ = 0;
    unsigned l0Way_ = 0;
    std::uint64_t l0Hits_ = 0;

    /** Packed deferred counters (see setStatsDeferred). */
    struct Pending
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t writebacks = 0;
    };
    Pending pend_;
    bool defer_ = false;
};

} // namespace pmodv::mem

#endif // PMODV_MEM_CACHE_HH
