/**
 * @file
 * A set-associative cache tag model with LRU / tree-PLRU replacement,
 * write-back write-allocate policy and full statistics. Only tags are
 * tracked (no data): the timing core needs hit/miss outcomes and the
 * paper's fixed per-level latencies.
 */

#ifndef PMODV_MEM_CACHE_HH
#define PMODV_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::mem
{

/** Replacement policies the cache model supports. */
enum class ReplPolicy : std::uint8_t
{
    Lru,      ///< True least-recently-used.
    TreePlru, ///< Tree pseudo-LRU.
};

/** Static configuration of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    Cycles hitLatency = 1;
    ReplPolicy repl = ReplPolicy::Lru;
};

/** Outcome of one cache access. */
struct CacheResult
{
    bool hit = false;
    bool writeback = false; ///< A dirty line was evicted by the fill.
};

/**
 * One level of set-associative cache. Thread-safe only for
 * single-threaded replay (each replay pipeline owns its own caches).
 *
 * All lines live in one flat vector (set-major) and the replacement
 * state is flat too — per-way LRU stamps plus a per-set clock, or a
 * by-value TreePlru per set — so the replay hot loop walks contiguous
 * arrays with no per-set heap indirection.
 */
class Cache : public stats::Group
{
  public:
    Cache(stats::Group *parent, const CacheParams &params);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /**
     * Access the line containing @p addr. Misses allocate; stores mark
     * the line dirty.
     */
    CacheResult access(Addr addr, AccessType type);

    /** True when the line containing @p addr is present. */
    bool probe(Addr addr) const;

    /** Invalidate every line (counts into stats). */
    void invalidateAll();

    /** Invalidate the line containing @p addr if present. */
    bool invalidate(Addr addr);

    // Stats (public so formulas above can reference them).
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions; ///< Valid lines displaced by a fill.
    stats::Scalar writebacks;
    stats::Scalar invalidations;
    stats::Formula missRate;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
    };

    Addr lineTag(Addr addr) const { return addr >> lineShift_; }
    std::size_t setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & (numSets_ - 1);
    }

    /** First way of set @p si in the flat line array. */
    Line *setWays(std::size_t si)
    {
        return lines_.data() + si * params_.assoc;
    }
    const Line *setWays(std::size_t si) const
    {
        return lines_.data() + si * params_.assoc;
    }

    unsigned victimWay(std::size_t si) const;
    void touchWay(std::size_t si, unsigned way);

    CacheParams params_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_; ///< numSets_ x assoc, set-major.
    // Exactly one of the two replacement representations is active,
    // selected by params_.repl.
    std::vector<std::uint64_t> stamps_; ///< Lru: per-way touch stamps.
    std::vector<std::uint64_t> clocks_; ///< Lru: per-set logical clock.
    std::vector<TreePlru> plru_;        ///< TreePlru: per-set tracker.
};

} // namespace pmodv::mem

#endif // PMODV_MEM_CACHE_HH
