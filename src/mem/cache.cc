#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv::mem
{

Cache::Cache(stats::Group *parent, const CacheParams &params)
    : stats::Group(parent, params.name),
      hits(this, "hits", "accesses that hit"),
      misses(this, "misses", "accesses that missed"),
      evictions(this, "evictions", "valid lines displaced by fills"),
      writebacks(this, "writebacks", "dirty lines evicted"),
      invalidations(this, "invalidations", "lines invalidated"),
      missRate(this, "miss_rate", "misses / accesses",
               [this]() {
                   const double total = hits.value() + misses.value();
                   return total == 0 ? 0.0 : misses.value() / total;
               }),
      params_(params)
{
    fatal_if(!isPowerOfTwo(params_.lineBytes),
             "cache '%s': line size must be a power of two",
             params_.name.c_str());
    fatal_if(params_.assoc == 0, "cache '%s': associativity must be > 0",
             params_.name.c_str());
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    fatal_if(lines < params_.assoc || lines % params_.assoc != 0,
             "cache '%s': size/assoc/line geometry is inconsistent",
             params_.name.c_str());
    numSets_ = static_cast<unsigned>(lines / params_.assoc);
    fatal_if(!isPowerOfTwo(numSets_),
             "cache '%s': set count must be a power of two",
             params_.name.c_str());
    lineShift_ = floorLog2(params_.lineBytes);

    sets_.resize(numSets_);
    for (auto &set : sets_) {
        set.ways.resize(params_.assoc);
        if (params_.repl == ReplPolicy::Lru)
            set.lru = std::make_unique<TrueLru>(params_.assoc);
        else
            set.plru = std::make_unique<TreePlru>(params_.assoc);
    }
}

unsigned
Cache::victimWay(Set &set) const
{
    // Prefer an invalid way before consulting the replacement state.
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!set.ways[w].valid)
            return w;
    }
    return set.lru ? set.lru->victim() : set.plru->victim();
}

void
Cache::touchWay(Set &set, unsigned way)
{
    if (set.lru)
        set.lru->touch(way);
    else
        set.plru->touch(way);
}

CacheResult
Cache::access(Addr addr, AccessType type)
{
    Set &set = sets_[setIndex(addr)];
    const Addr tag = lineTag(addr);

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = set.ways[w];
        if (line.valid && line.tag == tag) {
            ++hits;
            if (type == AccessType::Write)
                line.dirty = true;
            touchWay(set, w);
            return {true, false};
        }
    }

    ++misses;
    const unsigned victim = victimWay(set);
    Line &line = set.ways[victim];
    if (line.valid)
        ++evictions;
    const bool wb = line.valid && line.dirty;
    if (wb)
        ++writebacks;
    line.valid = true;
    line.dirty = (type == AccessType::Write);
    line.tag = tag;
    touchWay(set, victim);
    return {false, wb};
}

bool
Cache::probe(Addr addr) const
{
    const Set &set = sets_[setIndex(addr)];
    const Addr tag = lineTag(addr);
    for (const Line &line : set.ways) {
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &set : sets_) {
        for (Line &line : set.ways) {
            if (line.valid) {
                line.valid = false;
                line.dirty = false;
                ++invalidations;
            }
        }
    }
}

bool
Cache::invalidate(Addr addr)
{
    Set &set = sets_[setIndex(addr)];
    const Addr tag = lineTag(addr);
    for (Line &line : set.ways) {
        if (line.valid && line.tag == tag) {
            line.valid = false;
            line.dirty = false;
            ++invalidations;
            return true;
        }
    }
    return false;
}

} // namespace pmodv::mem
