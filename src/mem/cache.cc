#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv::mem
{

Cache::Cache(stats::Group *parent, const CacheParams &params)
    : stats::Group(parent, params.name),
      hits(this, "hits", "accesses that hit"),
      misses(this, "misses", "accesses that missed"),
      evictions(this, "evictions", "valid lines displaced by fills"),
      writebacks(this, "writebacks", "dirty lines evicted"),
      invalidations(this, "invalidations", "lines invalidated"),
      missRate(this, "miss_rate", "misses / accesses",
               [this]() {
                   const double total = hits.value() + misses.value();
                   return total == 0 ? 0.0 : misses.value() / total;
               }),
      params_(params)
{
    fatal_if(!isPowerOfTwo(params_.lineBytes),
             "cache '%s': line size must be a power of two",
             params_.name.c_str());
    fatal_if(params_.assoc == 0, "cache '%s': associativity must be > 0",
             params_.name.c_str());
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    fatal_if(lines < params_.assoc || lines % params_.assoc != 0,
             "cache '%s': size/assoc/line geometry is inconsistent",
             params_.name.c_str());
    numSets_ = static_cast<unsigned>(lines / params_.assoc);
    fatal_if(!isPowerOfTwo(numSets_),
             "cache '%s': set count must be a power of two",
             params_.name.c_str());
    lineShift_ = floorLog2(params_.lineBytes);

    lines_.resize(std::size_t{numSets_} * params_.assoc);
    if (params_.repl == ReplPolicy::Lru) {
        stamps_.assign(lines_.size(), 0);
        clocks_.assign(numSets_, 0);
    } else {
        plru_.assign(numSets_, TreePlru(params_.assoc));
    }
}

unsigned
Cache::victimWay(std::size_t si) const
{
    // Prefer an invalid way before consulting the replacement state.
    const Line *ways = setWays(si);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!ways[w].valid)
            return w;
    }
    if (params_.repl == ReplPolicy::TreePlru)
        return plru_[si].victim();
    // Exact LRU: earliest stamp wins, ties broken by lowest index.
    const std::uint64_t *stamps = stamps_.data() + si * params_.assoc;
    unsigned best = 0;
    for (unsigned w = 1; w < params_.assoc; ++w) {
        if (stamps[w] < stamps[best])
            best = w;
    }
    return best;
}

void
Cache::touchWay(std::size_t si, unsigned way)
{
    if (params_.repl == ReplPolicy::TreePlru)
        plru_[si].touch(way);
    else
        stamps_[si * params_.assoc + way] = ++clocks_[si];
}

CacheResult
Cache::access(Addr addr, AccessType type)
{
    const std::size_t si = setIndex(addr);
    Line *ways = setWays(si);
    const Addr tag = lineTag(addr);

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = ways[w];
        if (line.valid && line.tag == tag) {
            ++hits;
            if (type == AccessType::Write)
                line.dirty = true;
            touchWay(si, w);
            return {true, false};
        }
    }

    ++misses;
    const unsigned victim = victimWay(si);
    Line &line = ways[victim];
    if (line.valid)
        ++evictions;
    const bool wb = line.valid && line.dirty;
    if (wb)
        ++writebacks;
    line.valid = true;
    line.dirty = (type == AccessType::Write);
    line.tag = tag;
    touchWay(si, victim);
    return {false, wb};
}

bool
Cache::probe(Addr addr) const
{
    const Line *ways = setWays(setIndex(addr));
    const Addr tag = lineTag(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines_) {
        if (line.valid) {
            line.valid = false;
            line.dirty = false;
            ++invalidations;
        }
    }
}

bool
Cache::invalidate(Addr addr)
{
    Line *ways = setWays(setIndex(addr));
    const Addr tag = lineTag(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = ways[w];
        if (line.valid && line.tag == tag) {
            line.valid = false;
            line.dirty = false;
            ++invalidations;
            return true;
        }
    }
    return false;
}

} // namespace pmodv::mem
