#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/lrurank.hh"

namespace pmodv::mem
{

Cache::Cache(stats::Group *parent, const CacheParams &params)
    : stats::Group(parent, params.name),
      hits(this, "hits", "accesses that hit"),
      misses(this, "misses", "accesses that missed"),
      evictions(this, "evictions", "valid lines displaced by fills"),
      writebacks(this, "writebacks", "dirty lines evicted"),
      invalidations(this, "invalidations", "lines invalidated"),
      missRate(this, "miss_rate", "misses / accesses",
               [this]() {
                   const double total = hits.value() + misses.value();
                   return total == 0 ? 0.0 : misses.value() / total;
               }),
      params_(params)
{
    fatal_if(!isPowerOfTwo(params_.lineBytes),
             "cache '%s': line size must be a power of two",
             params_.name.c_str());
    fatal_if(params_.assoc == 0, "cache '%s': associativity must be > 0",
             params_.name.c_str());
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    fatal_if(lines < params_.assoc || lines % params_.assoc != 0,
             "cache '%s': size/assoc/line geometry is inconsistent",
             params_.name.c_str());
    numSets_ = static_cast<unsigned>(lines / params_.assoc);
    fatal_if(!isPowerOfTwo(numSets_),
             "cache '%s': set count must be a power of two",
             params_.name.c_str());
    lineShift_ = floorLog2(params_.lineBytes);

    lines_.resize(std::size_t{numSets_} * params_.assoc);
    tags_.assign(lines_.size() + simd::kTagPad, 0);
    setValid_.assign(numSets_, 0);
    if (params_.repl == ReplPolicy::Lru) {
        if (params_.assoc <= lru::kMaxPackedWays) {
            lruRank_.assign(numSets_, 0);
            lruHighMask_ = lru::rankHighMask(params_.assoc);
        } else {
            stamps_.assign(lines_.size(), 0);
            clocks_.assign(numSets_, 0);
        }
    } else {
        plru_.assign(numSets_, TreePlru(params_.assoc));
        touchLut_ = TreePlru::makeTouchLut(params_.assoc);
        victimLut_ = TreePlru::makeVictimLut(params_.assoc);
    }
}

unsigned
Cache::victimWay(std::size_t si) const
{
    // Prefer an invalid way before consulting the replacement state;
    // a full set (the steady state) skips the probe outright.
    if (setValid_[si] < params_.assoc) {
        const int invalid = simd::findU64(
            tags_.data() + si * params_.assoc, params_.assoc, 0);
        if (invalid >= 0)
            return static_cast<unsigned>(invalid);
    }
    if (params_.repl == ReplPolicy::TreePlru) {
        return victimLut_.valid() ? plru_[si].victimMasked(victimLut_)
                                  : plru_[si].victim();
    }
    // Exact LRU: the packed rank word names the least-recent way in a
    // couple of ALU ops; wide configs scan stamps (earliest wins).
    if (!lruRank_.empty())
        return lru::victimRank(lruRank_[si], lruHighMask_);
    return simd::argminU64(stamps_.data() + si * params_.assoc,
                           params_.assoc);
}

void
Cache::touchWay(std::size_t si, unsigned way)
{
    if (params_.repl == ReplPolicy::TreePlru) {
        if (!touchLut_.empty())
            plru_[si].touchMasked(touchLut_[way]);
        else
            plru_[si].touch(way);
    } else if (!lruRank_.empty()) {
        lruRank_[si] = lru::touchRank(lruRank_[si], way, params_.assoc);
    } else {
        stamps_[si * params_.assoc + way] = ++clocks_[si];
    }
}

CacheResult
Cache::access(Addr addr, AccessType type)
{
    const Addr tag = lineTag(addr);
    const std::uint64_t ptag = packTag(tag);

    // L0 fast path: same line as the previous access. The packed tag
    // carries the set bits, so equality pins the exact line; gen_
    // guards against any intervening fill/invalidate.
    if (l0Gen_ == gen_ && l0Tag_ == ptag) {
        ++l0Hits_;
        if (defer_)
            ++pend_.hits;
        else
            ++hits;
        if (type == AccessType::Write)
            lines_[l0Flat_].dirty = true;
        touchWay(l0Si_, l0Way_);
        return {true, false};
    }

    const std::size_t si = setIndex(addr);
    const int w = simd::findU64(tags_.data() + si * params_.assoc,
                                params_.assoc, ptag);
    if (w >= 0) {
        if (defer_)
            ++pend_.hits;
        else
            ++hits;
        const std::size_t flat = si * params_.assoc + w;
        if (type == AccessType::Write)
            lines_[flat].dirty = true;
        touchWay(si, static_cast<unsigned>(w));
        l0Gen_ = gen_;
        l0Tag_ = ptag;
        l0Flat_ = flat;
        l0Si_ = si;
        l0Way_ = static_cast<unsigned>(w);
        return {true, false};
    }

    if (defer_)
        ++pend_.misses;
    else
        ++misses;
    const unsigned victim = victimWay(si);
    const std::size_t flat = si * params_.assoc + victim;
    Line &line = lines_[flat];
    if (line.valid) {
        if (defer_)
            ++pend_.evictions;
        else
            ++evictions;
    }
    const bool wb = line.valid && line.dirty;
    if (wb) {
        if (defer_)
            ++pend_.writebacks;
        else
            ++writebacks;
    }
    if (!line.valid)
        ++setValid_[si];
    line.valid = true;
    line.dirty = (type == AccessType::Write);
    tags_[flat] = ptag;
    touchWay(si, victim);
    ++gen_;
    l0Gen_ = gen_;
    l0Tag_ = ptag;
    l0Flat_ = flat;
    l0Si_ = si;
    l0Way_ = victim;
    return {false, wb};
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t si = setIndex(addr);
    return simd::findU64(tags_.data() + si * params_.assoc,
                         params_.assoc, packTag(lineTag(addr))) >= 0;
}

void
Cache::invalidateAll()
{
    for (std::size_t flat = 0; flat < lines_.size(); ++flat) {
        Line &line = lines_[flat];
        if (line.valid) {
            line.valid = false;
            line.dirty = false;
            tags_[flat] = 0;
            --setValid_[flat / params_.assoc];
            ++invalidations;
        }
    }
    ++gen_;
}

bool
Cache::invalidate(Addr addr)
{
    const std::size_t si = setIndex(addr);
    const int w = simd::findU64(tags_.data() + si * params_.assoc,
                                params_.assoc, packTag(lineTag(addr)));
    if (w < 0)
        return false;
    const std::size_t flat = si * params_.assoc + w;
    lines_[flat].valid = false;
    lines_[flat].dirty = false;
    tags_[flat] = 0;
    --setValid_[si];
    ++invalidations;
    ++gen_;
    return true;
}

void
Cache::setStatsDeferred(bool defer)
{
    if (!defer && defer_)
        flushDeferredStats();
    defer_ = defer;
}

void
Cache::flushDeferredStats()
{
    if (pend_.hits) {
        hits += pend_.hits;
        pend_.hits = 0;
    }
    if (pend_.misses) {
        misses += pend_.misses;
        pend_.misses = 0;
    }
    if (pend_.evictions) {
        evictions += pend_.evictions;
        pend_.evictions = 0;
    }
    if (pend_.writebacks) {
        writebacks += pend_.writebacks;
        pend_.writebacks = 0;
    }
}

} // namespace pmodv::mem
