/**
 * @file
 * Main-memory latency model for a hybrid DRAM + NVM system. PMO
 * accesses resolve to NVM latency (3x DRAM, per the Optane DC
 * characterization the paper cites); everything else to DRAM.
 */

#ifndef PMODV_MEM_MEMORY_HH
#define PMODV_MEM_MEMORY_HH

#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::mem
{

/** Static configuration of the main-memory model. */
struct MemoryParams
{
    Cycles dramLatency = 120;
    Cycles nvmLatency = 360;
    /** Extra write latency multiplier for NVM writes (1.0 = none). */
    double nvmWritePenalty = 1.0;
};

/** The DRAM+NVM main-memory latency model. */
class MainMemory : public stats::Group
{
  public:
    MainMemory(stats::Group *parent, const MemoryParams &params);

    const MemoryParams &params() const { return params_; }

    /** Latency of one memory access of the given class and type. */
    Cycles access(MemClass cls, AccessType type);

    /** Defer the four class/type counters into packed locals. */
    void setStatsDeferred(bool defer);

    /** Flush deferred counters into the stats tree now. */
    void flushDeferredStats();

    stats::Scalar dramReads;
    stats::Scalar dramWrites;
    stats::Scalar nvmReads;
    stats::Scalar nvmWrites;

  private:
    MemoryParams params_;
    /** Deferred counts indexed [MemClass][AccessType]. */
    std::uint64_t pend_[2][2] = {{0, 0}, {0, 0}};
    bool defer_ = false;
};

} // namespace pmodv::mem

#endif // PMODV_MEM_MEMORY_HH
