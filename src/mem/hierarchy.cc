#include "mem/hierarchy.hh"

namespace pmodv::mem
{

CacheHierarchy::CacheHierarchy(stats::Group *parent,
                               const HierarchyParams &params)
    : stats::Group(parent, "dcache"), params_(params)
{
    l1_ = std::make_unique<Cache>(this, params_.l1);
    l2_ = std::make_unique<Cache>(this, params_.l2);
    memory_ = std::make_unique<MainMemory>(this, params_.memory);
}

HierarchyResult
CacheHierarchy::access(Addr addr, AccessType type, MemClass cls)
{
    HierarchyResult res;
    res.latency = params_.l1.hitLatency;
    if (l1_->access(addr, type).hit) {
        res.hitLevel = 1;
        return res;
    }
    res.latency += params_.l2.hitLatency;
    if (l2_->access(addr, type).hit) {
        res.hitLevel = 2;
        return res;
    }
    res.latency += memory_->access(cls, type);
    res.hitLevel = 3;
    return res;
}

void
CacheHierarchy::invalidateAll()
{
    l1_->invalidateAll();
    l2_->invalidateAll();
}

void
CacheHierarchy::setStatsDeferred(bool defer)
{
    l1_->setStatsDeferred(defer);
    l2_->setStatsDeferred(defer);
    memory_->setStatsDeferred(defer);
}

void
CacheHierarchy::flushDeferredStats()
{
    l1_->flushDeferredStats();
    l2_->flushDeferredStats();
    memory_->flushDeferredStats();
}

} // namespace pmodv::mem
