#include "mem/memory.hh"

namespace pmodv::mem
{

MainMemory::MainMemory(stats::Group *parent, const MemoryParams &params)
    : stats::Group(parent, "mem"),
      dramReads(this, "dram_reads", "reads served by DRAM"),
      dramWrites(this, "dram_writes", "writes served by DRAM"),
      nvmReads(this, "nvm_reads", "reads served by NVM"),
      nvmWrites(this, "nvm_writes", "writes served by NVM"),
      params_(params)
{
}

Cycles
MainMemory::access(MemClass cls, AccessType type)
{
    if (cls == MemClass::Dram) {
        if (type == AccessType::Read)
            ++dramReads;
        else
            ++dramWrites;
        return params_.dramLatency;
    }
    if (type == AccessType::Read) {
        ++nvmReads;
        return params_.nvmLatency;
    }
    ++nvmWrites;
    return static_cast<Cycles>(static_cast<double>(params_.nvmLatency) *
                               params_.nvmWritePenalty);
}

} // namespace pmodv::mem
