#include "mem/memory.hh"

namespace pmodv::mem
{

MainMemory::MainMemory(stats::Group *parent, const MemoryParams &params)
    : stats::Group(parent, "mem"),
      dramReads(this, "dram_reads", "reads served by DRAM"),
      dramWrites(this, "dram_writes", "writes served by DRAM"),
      nvmReads(this, "nvm_reads", "reads served by NVM"),
      nvmWrites(this, "nvm_writes", "writes served by NVM"),
      params_(params)
{
}

Cycles
MainMemory::access(MemClass cls, AccessType type)
{
    if (defer_) {
        ++pend_[static_cast<unsigned>(cls)][static_cast<unsigned>(type)];
        if (cls == MemClass::Dram)
            return params_.dramLatency;
        if (type == AccessType::Read)
            return params_.nvmLatency;
        return static_cast<Cycles>(
            static_cast<double>(params_.nvmLatency) *
            params_.nvmWritePenalty);
    }
    if (cls == MemClass::Dram) {
        if (type == AccessType::Read)
            ++dramReads;
        else
            ++dramWrites;
        return params_.dramLatency;
    }
    if (type == AccessType::Read) {
        ++nvmReads;
        return params_.nvmLatency;
    }
    ++nvmWrites;
    return static_cast<Cycles>(static_cast<double>(params_.nvmLatency) *
                               params_.nvmWritePenalty);
}

void
MainMemory::setStatsDeferred(bool defer)
{
    if (!defer && defer_)
        flushDeferredStats();
    defer_ = defer;
}

void
MainMemory::flushDeferredStats()
{
    stats::Scalar *const counters[2][2] = {
        {&dramReads, &dramWrites},
        {&nvmReads, &nvmWrites},
    };
    for (unsigned c = 0; c < 2; ++c) {
        for (unsigned t = 0; t < 2; ++t) {
            if (pend_[c][t]) {
                *counters[c][t] += pend_[c][t];
                pend_[c][t] = 0;
            }
        }
    }
}

} // namespace pmodv::mem
