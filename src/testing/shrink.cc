#include "testing/shrink.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmodv::testing
{

std::vector<Op>
shrinkOps(std::vector<Op> ops, const FailPredicate &fails,
          const ShrinkConfig &cfg)
{
    panic_if(!fails(ops), "shrinkOps() called with a passing sequence");
    std::size_t evals = 1;

    bool progressed = true;
    while (progressed && evals < cfg.maxEvaluations) {
        progressed = false;
        for (std::size_t chunk = std::max<std::size_t>(ops.size() / 2, 1);
             chunk >= 1; chunk /= 2) {
            // Scan back-to-front so surviving indices stay valid.
            for (std::size_t start = ops.size();
                 start > 0 && evals < cfg.maxEvaluations;) {
                start = start > chunk ? start - chunk : 0;
                std::vector<Op> candidate;
                candidate.reserve(ops.size());
                candidate.insert(candidate.end(), ops.begin(),
                                 ops.begin() + static_cast<long>(start));
                const std::size_t stop =
                    std::min(start + chunk, ops.size());
                candidate.insert(candidate.end(),
                                 ops.begin() + static_cast<long>(stop),
                                 ops.end());
                if (candidate.size() == ops.size())
                    continue;
                ++evals;
                if (fails(candidate)) {
                    ops = std::move(candidate);
                    progressed = true;
                }
            }
            if (chunk == 1)
                break;
        }
    }
    return ops;
}

} // namespace pmodv::testing
