#include "testing/ops.hh"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace pmodv::testing
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Attach:
        return "attach";
      case OpKind::Detach:
        return "detach";
      case OpKind::SetPerm:
        return "setperm";
      case OpKind::Access:
        return "access";
      case OpKind::OutAccess:
        return "out";
      case OpKind::ThreadSwitch:
        return "switch";
      case OpKind::TlbChurn:
        return "churn";
      case OpKind::TenantChurn:
        return "tenant";
    }
    return "?";
}

Addr
domainBase(DomainId domain)
{
    return (Addr{1} << 33) + Addr{domain} * (Addr{16} << 20);
}

namespace
{

Perm
parsePerm(const std::string &s)
{
    if (s == "-")
        return Perm::None;
    if (s == "R")
        return Perm::Read;
    if (s == "W")
        return Perm::Write;
    if (s == "RW")
        return Perm::ReadWrite;
    fatal("bad permission '%s' in op line", s.c_str());
}

AccessType
parseType(const std::string &s)
{
    if (s == "R")
        return AccessType::Read;
    if (s == "W")
        return AccessType::Write;
    fatal("bad access type '%s' in op line", s.c_str());
}

/** The `key=value` fields of one op line, order-insensitive. */
struct Fields
{
    std::string verb;
    std::uint64_t d = 0, t = 0, off = 0, pages = 1;
    Perm perm = Perm::None;
    Perm pageperm = Perm::ReadWrite;
    AccessType type = AccessType::Read;

    explicit Fields(const std::string &line)
    {
        std::istringstream in(line);
        in >> verb;
        std::string tok;
        while (in >> tok) {
            const auto eq = tok.find('=');
            fatal_if(eq == std::string::npos,
                     "malformed op token '%s' in line '%s'", tok.c_str(),
                     line.c_str());
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "d")
                d = std::stoull(val);
            else if (key == "t")
                t = std::stoull(val);
            else if (key == "off")
                off = std::stoull(val);
            else if (key == "pages")
                pages = std::stoull(val);
            else if (key == "perm")
                perm = parsePerm(val);
            else if (key == "pageperm")
                pageperm = parsePerm(val);
            else if (key == "type")
                type = parseType(val);
            else
                fatal("unknown op field '%s' in line '%s'", key.c_str(),
                      line.c_str());
        }
    }
};

} // namespace

std::string
opToString(const Op &op)
{
    std::ostringstream out;
    out << opKindName(op.kind);
    switch (op.kind) {
      case OpKind::Attach:
        out << " d=" << op.domain << " pages=" << op.pages
            << " pageperm=" << permToString(op.perm);
        break;
      case OpKind::Detach:
        out << " d=" << op.domain;
        break;
      case OpKind::SetPerm:
        out << " t=" << op.tid << " d=" << op.domain
            << " perm=" << permToString(op.perm);
        break;
      case OpKind::Access:
        out << " d=" << op.domain << " off=" << op.offset
            << " type=" << (op.type == AccessType::Read ? "R" : "W");
        break;
      case OpKind::OutAccess:
        out << " off=" << op.offset
            << " type=" << (op.type == AccessType::Read ? "R" : "W");
        break;
      case OpKind::ThreadSwitch:
        out << " t=" << op.tid;
        break;
      case OpKind::TlbChurn:
      case OpKind::TenantChurn:
        out << " d=" << op.domain << " pages=" << op.pages;
        break;
    }
    return out.str();
}

bool
opFromString(const std::string &line, Op &op)
{
    std::size_t first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos || line[first] == '#')
        return false;

    const Fields f(line.substr(first));
    Op parsed;
    if (f.verb == "attach") {
        parsed.kind = OpKind::Attach;
        parsed.domain = static_cast<DomainId>(f.d);
        parsed.pages = static_cast<std::uint32_t>(f.pages);
        parsed.perm = f.pageperm;
    } else if (f.verb == "detach") {
        parsed.kind = OpKind::Detach;
        parsed.domain = static_cast<DomainId>(f.d);
    } else if (f.verb == "setperm") {
        parsed.kind = OpKind::SetPerm;
        parsed.tid = static_cast<ThreadId>(f.t);
        parsed.domain = static_cast<DomainId>(f.d);
        parsed.perm = f.perm;
    } else if (f.verb == "access") {
        parsed.kind = OpKind::Access;
        parsed.domain = static_cast<DomainId>(f.d);
        parsed.offset = f.off;
        parsed.type = f.type;
    } else if (f.verb == "out") {
        parsed.kind = OpKind::OutAccess;
        parsed.offset = f.off;
        parsed.type = f.type;
    } else if (f.verb == "switch") {
        parsed.kind = OpKind::ThreadSwitch;
        parsed.tid = static_cast<ThreadId>(f.t);
    } else if (f.verb == "churn") {
        parsed.kind = OpKind::TlbChurn;
        parsed.domain = static_cast<DomainId>(f.d);
        parsed.pages = static_cast<std::uint32_t>(f.pages);
    } else if (f.verb == "tenant") {
        parsed.kind = OpKind::TenantChurn;
        parsed.domain = static_cast<DomainId>(f.d);
        parsed.pages = static_cast<std::uint32_t>(f.pages);
    } else {
        fatal("unknown op verb '%s' in line '%s'", f.verb.c_str(),
              line.c_str());
    }
    op = parsed;
    return true;
}

void
printOps(std::ostream &out, const std::vector<Op> &ops)
{
    for (const Op &op : ops)
        out << opToString(op) << '\n';
}

std::vector<Op>
parseOps(std::istream &in)
{
    std::vector<Op> ops;
    std::string line;
    while (std::getline(in, line)) {
        Op op;
        if (opFromString(line, op))
            ops.push_back(op);
    }
    return ops;
}

std::vector<Op>
loadOpsFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open op file '%s'", path.c_str());
    return parseOps(in);
}

} // namespace pmodv::testing
