#include "testing/reference.hh"

#include "common/logging.hh"

namespace pmodv::testing
{

namespace
{
/** Keys the stock MPK allocator can hand out (key 0 is reserved). */
constexpr unsigned kAllocatableKeys = kNumProtKeys - 1;
} // namespace

void
ReferenceModel::attach(DomainId domain, Addr base, Addr size, Perm page_perm)
{
    panic_if(domains_.count(domain), "reference: double attach of domain %u",
             domain);
    Domain d;
    d.base = base;
    d.size = size;
    d.pagePerm = page_perm;
    d.mpkKeyed = mpkKeysInUse_ < kAllocatableKeys;
    if (d.mpkKeyed)
        ++mpkKeysInUse_;
    domains_.emplace(domain, d);
}

void
ReferenceModel::detach(DomainId domain)
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return;
    if (it->second.mpkKeyed)
        --mpkKeysInUse_;
    domains_.erase(it);
}

void
ReferenceModel::setPerm(ThreadId tid, DomainId domain, Perm perm)
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return;
    it->second.perms[tid] = permNormalizeHw(perm);
}

bool
ReferenceModel::isLive(DomainId domain) const
{
    return domains_.count(domain) != 0;
}

const ReferenceModel::Domain *
ReferenceModel::find(DomainId domain) const
{
    auto it = domains_.find(domain);
    return it == domains_.end() ? nullptr : &it->second;
}

const ReferenceModel::Domain *
ReferenceModel::findByAddr(Addr va) const
{
    for (const auto &[id, d] : domains_)
        if (d.contains(va))
            return &d;
    return nullptr;
}

Perm
ReferenceModel::effectivePerm(ThreadId tid, DomainId domain) const
{
    const Domain *d = find(domain);
    if (!d)
        return Perm::None;
    auto it = d->perms.find(tid);
    return it == d->perms.end() ? Perm::None : it->second;
}

Expectation
ReferenceModel::expect(ThreadId tid, Addr va, AccessType type,
                       bool mpk_exhausted_hole) const
{
    Expectation e;
    const Perm need = permForAccess(type);
    const Domain *d = findByAddr(va);
    if (!d) {
        // Outside every PMO: domainless, no page restriction modeled.
        e.mapped = false;
        e.allowed = true;
        return e;
    }
    e.mapped = true;

    Perm domain_perm = Perm::None;
    if (auto it = d->perms.find(tid); it != d->perms.end())
        domain_perm = it->second;
    if (mpk_exhausted_hole && !d->mpkKeyed)
        domain_perm = Perm::ReadWrite; // No key left: domain check vacuous.

    const Perm effective = permIntersect(d->pagePerm, domain_perm);
    e.allowed = permAllows(effective, need);
    if (!e.allowed) {
        e.pageDenied = !permAllows(d->pagePerm, need);
        e.domainDenied = !permAllows(domain_perm, need);
    }
    return e;
}

} // namespace pmodv::testing
