/**
 * @file
 * The differential runner: replays one op sequence through a fleet of
 * per-scheme machines plus the ReferenceModel and checks the
 * equivalence oracles the paper's claims rest on —
 *
 *  - verdict:        every protected scheme returns the reference's
 *                    allow/deny for every access (stock `mpk` gets the
 *                    key-exhaustion carve-out);
 *  - effective-perm: after every SETPERM, each scheme's
 *                    effectivePerm() matches the reference;
 *  - cycle-order:    scheme-attributable cycles obey
 *                    none <= lowerbound <= each protected scheme;
 *  - bucket-sum:     the six Table VII buckets sum exactly to the
 *                    scheme-attributable cycles;
 *  - events:         the event ring carries only kinds the scheme can
 *                    legitimately post (domain_virt never records a
 *                    shootdown), eviction/shootdown counts match the
 *                    stats, and nothing was dropped;
 *  - tail-latency:   the per-op cycle totals the KV server's latency
 *                    histograms are built from are deterministic — a
 *                    second fleet replaying the same ops in two
 *                    batches lands on the same cycle totals at the
 *                    batch split and at the end, and the per-op
 *                    deltas sum exactly to the machine total (no
 *                    cycles charged between requests).
 *
 * Machines flush the TLB range on attach/detach uniformly (the
 * mmap/munmap shootdown every real scheme inherits from the kernel),
 * so stale-translation behavior cannot masquerade as a scheme
 * divergence.
 */

#ifndef PMODV_TESTING_DIFFER_HH
#define PMODV_TESTING_DIFFER_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/factory.hh"
#include "arch/shootdown_bus.hh"
#include "testing/ops.hh"
#include "testing/reference.hh"
#include "trace/event_ring.hh"

namespace pmodv::testing
{

/** Deliberate defects the harness can plant to prove it catches them. */
enum class BugInjection
{
    None,
    /** Stock mpk silently ignores SETPERM(None) — a dropped revoke. */
    MpkDropRevoke,
};

/** Parse "none" / "mpk-drop-revoke"; fatal() on anything else. */
BugInjection injectionFromName(const std::string &name);

/**
 * One scheme's private machine: stats root + address space + TLB
 * hierarchy + scheme + event ring, with cycle accounting split into
 * scheme-attributable cycles (attach/detach/SETPERM returns, fill
 * extras, check extras) and total cycles (those plus translation
 * latency).
 */
class Machine
{
  public:
    Machine(arch::SchemeKind kind, const arch::ProtParams &params,
            const arch::CoreTopology &topo = {},
            BugInjection inject = BugInjection::None);

    arch::SchemeKind kind() const { return kind_; }
    const char *name() const { return arch::schemeName(kind_); }

    void attach(ThreadId tid, DomainId domain, Addr base, Addr size,
                Perm page_perm);
    void detach(ThreadId tid, DomainId domain);
    void setPerm(ThreadId tid, DomainId domain, Perm perm);
    arch::CheckResult access(ThreadId tid, Addr va, AccessType type);
    void contextSwitch(ThreadId from, ThreadId to);

    arch::ProtectionScheme &scheme() { return *scheme_; }
    const arch::ProtectionScheme &scheme() const { return *scheme_; }
    trace::EventRing &events() { return *ring_; }

    /** The IPI fabric (null on single-core machines). */
    arch::ShootdownBus *bus() { return bus_.get(); }
    const arch::ShootdownBus *bus() const { return bus_.get(); }

    /** Cycles attributable to the protection scheme itself. */
    Cycles schemeCycles() const { return schemeCycles_; }
    /** schemeCycles() plus TLB translation latency. */
    Cycles totalCycles() const { return totalCycles_; }

  private:
    void addSchemeCycles(Cycles c)
    {
        schemeCycles_ += c;
        totalCycles_ += c;
    }

    arch::SchemeKind kind_;
    arch::CoreTopology topo_;
    BugInjection inject_;
    stats::Group root_;
    tlb::AddressSpace space_;
    /** Per-core stats groups (multi-core only; avoids "dtlb" clashes). */
    std::vector<std::unique_ptr<stats::Group>> coreGroups_;
    /** One TLB hierarchy per core ([0] is the whole machine at K=1). */
    std::vector<std::unique_ptr<tlb::TlbHierarchy>> tlbs_;
    std::unique_ptr<trace::EventRing> ring_;
    std::unique_ptr<arch::ShootdownBus> bus_;
    std::unique_ptr<arch::ProtectionScheme> scheme_;
    /** Per core: the thread it currently runs (tid % K pinning). */
    std::vector<ThreadId> curTid_;
    Cycles schemeCycles_ = 0;
    Cycles totalCycles_ = 0;
};

/** One oracle violation. */
struct Violation
{
    std::string oracle; ///< "verdict", "effective-perm", ...
    std::string scheme; ///< Scheme label, or "" for cross-scheme.
    std::size_t opIndex = 0; ///< Op being executed (ops.size() = end).
    std::string detail;

    std::string toString() const;
};

/** Outcome of one differential run. */
struct DiffResult
{
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
    /** Oracle name of the first violation ("" when ok). */
    std::string firstOracle() const
    {
        return violations.empty() ? std::string{} : violations[0].oracle;
    }
    std::string summary() const;
};

/** Configuration of a differential run. */
struct DiffConfig
{
    arch::ProtParams params;
    /** Core count + invalidation cost; 1 core = legacy machines. */
    arch::CoreTopology topology;
    /** Schemes to fleet up; empty = all six. */
    std::vector<arch::SchemeKind> schemes;
    BugInjection inject = BugInjection::None;
    /** Stop at the first violation (shrinking wants this). */
    bool stopAtFirst = true;
    /** Run the tail-latency oracle (replays the episode once more). */
    bool checkTailLatency = true;
};

/** The six kinds in canonical order (none, lowerbound, protected x4). */
std::vector<arch::SchemeKind> allSchemeKinds();

/** Replay @p ops through every configured scheme; check all oracles. */
DiffResult runDifferential(const std::vector<Op> &ops,
                           const DiffConfig &cfg = {});

} // namespace pmodv::testing

#endif // PMODV_TESTING_DIFFER_HH
