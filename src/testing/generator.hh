/**
 * @file
 * Seeded random workload generator for the differential harness. A
 * (seed, GenConfig) pair always yields the identical op sequence, so
 * any failure is replayable from the printed seed alone.
 */

#ifndef PMODV_TESTING_GENERATOR_HH
#define PMODV_TESTING_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "testing/ops.hh"

namespace pmodv::testing
{

/** Shape of the generated workload. */
struct GenConfig
{
    std::size_t numOps = 256;
    unsigned numThreads = 4;
    /** Domain ids are drawn from [1, domainPool]. */
    unsigned domainPool = 24;
    /** Cap on concurrently attached domains. */
    unsigned maxLive = 20;
    /** Attach size cap, in 4K pages. */
    std::uint32_t maxPages = 64;
    /** Probability an attach maps its pages read-only. */
    double readOnlyPageChance = 0.15;
    /** Probability a setperm/detach targets a dead domain on purpose. */
    double invalidTargetChance = 0.05;

    // Relative op-kind weights (normalized internally).
    unsigned wAttach = 10;
    unsigned wDetach = 7;
    unsigned wSetPerm = 20;
    unsigned wAccess = 40;
    unsigned wOutAccess = 8;
    unsigned wSwitch = 8;
    unsigned wChurn = 7;
    unsigned wTenant = 6;
    /** Tenant count cap for one TenantChurn burst (> 16 crosses the
     *  MPK key cliff and forces mid-burst evictions). */
    std::uint32_t maxTenantBurst = 24;
};

/** Generate a deterministic op sequence for @p seed. */
std::vector<Op> generateOps(std::uint64_t seed, const GenConfig &cfg = {});

} // namespace pmodv::testing

#endif // PMODV_TESTING_GENERATOR_HH
