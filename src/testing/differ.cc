#include "testing/differ.hh"

#include <array>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace pmodv::testing
{

namespace
{

constexpr Addr kPage = 4096;
/** Pages per 16 MB domain slot (the attach size ceiling). */
constexpr std::uint32_t kSlotPages = (16u << 20) / kPage;

bool
isProtected(arch::SchemeKind kind)
{
    return kind == arch::SchemeKind::Mpk ||
           kind == arch::SchemeKind::LibMpk ||
           kind == arch::SchemeKind::MpkVirt ||
           kind == arch::SchemeKind::DomainVirt;
}

/** Event kinds scheme @p kind may legitimately post. */
bool
eventAllowed(arch::SchemeKind kind, trace::EventKind ev)
{
    switch (kind) {
      case arch::SchemeKind::NoProtection:
      case arch::SchemeKind::Lowerbound:
      case arch::SchemeKind::Mpk:
        return false;
      case arch::SchemeKind::LibMpk:
        return ev == trace::EventKind::KeyEviction ||
               ev == trace::EventKind::Shootdown ||
               ev == trace::EventKind::Ipi;
      case arch::SchemeKind::MpkVirt:
        return ev == trace::EventKind::KeyEviction ||
               ev == trace::EventKind::Shootdown ||
               ev == trace::EventKind::DttlbRefill ||
               ev == trace::EventKind::Ipi;
      case arch::SchemeKind::DomainVirt:
        return ev == trace::EventKind::PtlbRefill;
    }
    return false;
}

} // namespace

BugInjection
injectionFromName(const std::string &name)
{
    if (name == "none")
        return BugInjection::None;
    if (name == "mpk-drop-revoke")
        return BugInjection::MpkDropRevoke;
    fatal("unknown bug injection '%s'", name.c_str());
}

std::vector<arch::SchemeKind>
allSchemeKinds()
{
    return {arch::SchemeKind::NoProtection, arch::SchemeKind::Lowerbound,
            arch::SchemeKind::Mpk,          arch::SchemeKind::LibMpk,
            arch::SchemeKind::MpkVirt,      arch::SchemeKind::DomainVirt};
}

Machine::Machine(arch::SchemeKind kind, const arch::ProtParams &params,
                 const arch::CoreTopology &topo, BugInjection inject)
    : kind_(kind), topo_(topo), inject_(inject),
      root_(nullptr, std::string("diff_") + arch::schemeName(kind))
{
    topo_.validate();
    ring_ = std::make_unique<trace::EventRing>(&root_, "events",
                                               std::size_t{1} << 16);
    ring_->bindClock(&totalCycles_);
    scheme_ = arch::makeScheme(kind, &root_, params, topo_, space_);
    for (unsigned k = 0; k < topo_.numCores; ++k) {
        stats::Group *parent = &root_;
        if (topo_.numCores > 1) {
            coreGroups_.push_back(std::make_unique<stats::Group>(
                &root_, "core" + std::to_string(k)));
            parent = coreGroups_.back().get();
        }
        tlbs_.push_back(std::make_unique<tlb::TlbHierarchy>(
            parent, tlb::TlbHierarchyParams{}, space_));
        scheme_->attachCore(k, tlbs_.back().get());
        curTid_.push_back(0);
    }
    if (topo_.numCores > 1) {
        bus_ = std::make_unique<arch::ShootdownBus>(&root_, topo_);
        for (unsigned k = 0; k < topo_.numCores; ++k)
            bus_->attachCore(k, tlbs_[k].get(), nullptr, nullptr);
        bus_->setEventRing(ring_.get());
        scheme_->setShootdownBus(bus_.get());
    }
    scheme_->setEventRing(ring_.get());
}

void
Machine::attach(ThreadId tid, DomainId domain, Addr base, Addr size,
                Perm page_perm)
{
    tlb::Region region;
    region.base = base;
    region.size = size;
    region.domain = domain;
    region.pagePerm = page_perm;
    region.memClass = MemClass::Nvm;
    space_.map(region);
    scheme_->setActiveCore(tid % topo_.numCores);
    addSchemeCycles(scheme_->attach(tid, domain, base, size, page_perm));
    // The mmap behind attach invalidates prior translations of the
    // range on every scheme and every core (stale domainless entries
    // would otherwise differ only by access history, not by scheme).
    for (auto &t : tlbs_)
        t->flushRange(base, size);
}

void
Machine::detach(ThreadId tid, DomainId domain)
{
    Addr base = 0, size = 0;
    if (const tlb::Region *region = space_.findDomain(domain)) {
        base = region->base;
        size = region->size;
    }
    scheme_->setActiveCore(tid % topo_.numCores);
    addSchemeCycles(scheme_->detach(tid, domain));
    space_.unmapDomain(domain);
    if (size) { // munmap shootdown, uniform across schemes and cores.
        for (auto &t : tlbs_)
            t->flushRange(base, size);
    }
}

void
Machine::setPerm(ThreadId tid, DomainId domain, Perm perm)
{
    if (inject_ == BugInjection::MpkDropRevoke &&
        kind_ == arch::SchemeKind::Mpk && perm == Perm::None)
        return; // Planted defect: the revoke never reaches the scheme.
    scheme_->setActiveCore(tid % topo_.numCores);
    addSchemeCycles(scheme_->setPerm(tid, domain, perm));
}

arch::CheckResult
Machine::access(ThreadId tid, Addr va, AccessType type)
{
    const arch::CoreId core = tid % topo_.numCores;
    scheme_->setActiveCore(core);
    auto xlate = tlbs_[core]->translate(tid, va);
    totalCycles_ += xlate.latency;
    addSchemeCycles(xlate.fillExtra);
    arch::AccessContext ctx;
    ctx.tid = tid;
    ctx.va = va;
    ctx.type = type;
    ctx.entry = xlate.entry;
    arch::CheckResult res = scheme_->checkAccess(ctx);
    addSchemeCycles(res.extraCycles);
    return res;
}

void
Machine::contextSwitch(ThreadId from, ThreadId to)
{
    if (topo_.numCores == 1) {
        addSchemeCycles(scheme_->contextSwitch(from, to));
        return;
    }
    // Core-affine scheduling: `to` lands on its home core; a switch
    // only happens if that core runs a different thread.
    const arch::CoreId core = to % topo_.numCores;
    if (curTid_[core] == to)
        return;
    scheme_->setActiveCore(core);
    addSchemeCycles(scheme_->contextSwitch(curTid_[core], to));
    curTid_[core] = to;
}

std::string
Violation::toString() const
{
    std::ostringstream out;
    out << "[" << oracle << "]";
    if (!scheme.empty())
        out << " scheme=" << scheme;
    out << " op#" << opIndex << ": " << detail;
    return out.str();
}

std::string
DiffResult::summary() const
{
    if (ok())
        return "all oracles passed";
    std::ostringstream out;
    out << violations.size() << " oracle violation(s):";
    for (const Violation &v : violations)
        out << "\n  " << v.toString();
    return out.str();
}

namespace
{

/** The replay state shared by the per-op handlers. */
class Runner
{
  public:
    Runner(const std::vector<Op> &ops, const DiffConfig &cfg,
           bool silent = false)
        : ops_(ops), cfg_(cfg), silent_(silent)
    {
        const auto kinds =
            cfg.schemes.empty() ? allSchemeKinds() : cfg.schemes;
        for (arch::SchemeKind kind : kinds) {
            machines_.push_back(std::make_unique<Machine>(
                kind, cfg.params, cfg.topology, cfg.inject));
            eventCounts_.push_back({});
            opTotals_.push_back({});
            nextEventId_.push_back(0);
        }
    }

    DiffResult
    run()
    {
        std::vector<Cycles> before(machines_.size());
        for (opIndex_ = 0; opIndex_ < ops_.size(); ++opIndex_) {
            for (std::size_t i = 0; i < machines_.size(); ++i)
                before[i] = machines_[i]->totalCycles();
            tagRequest(opIndex_ + 1);
            step(ops_[opIndex_]);
            drainEvents();
            tagRequest(0);
            for (std::size_t i = 0; i < machines_.size(); ++i)
                opTotals_[i].push_back(machines_[i]->totalCycles() -
                                       before[i]);
            if (cfg_.stopAtFirst && !result_.violations.empty())
                return result_;
        }
        opIndex_ = ops_.size();
        checkCycleOrder();
        checkBucketSums();
        checkEvents();
        if (cfg_.checkTailLatency && !silent_)
            checkTailLatency();
        return result_;
    }

    /** Execute ops up to (not including) @p end; report totalCycles. */
    std::vector<Cycles>
    executeThrough(std::size_t end)
    {
        for (; opIndex_ < end; ++opIndex_) {
            tagRequest(opIndex_ + 1);
            step(ops_[opIndex_]);
            drainEvents();
            tagRequest(0);
        }
        std::vector<Cycles> totals;
        for (auto &m : machines_)
            totals.push_back(m->totalCycles());
        return totals;
    }

  private:
    void
    violate(const std::string &oracle, const std::string &scheme,
            const std::string &detail)
    {
        if (silent_)
            return;
        result_.violations.push_back(
            {oracle, scheme, opIndex_, detail});
    }

    Machine *
    findKind(arch::SchemeKind kind)
    {
        for (auto &m : machines_)
            if (m->kind() == kind)
                return m.get();
        return nullptr;
    }

    void
    step(const Op &op)
    {
        switch (op.kind) {
          case OpKind::Attach:
            doAttach(op);
            break;
          case OpKind::Detach:
            ref_.detach(op.domain);
            for (auto &m : machines_)
                m->detach(currentTid_, op.domain);
            break;
          case OpKind::SetPerm:
            ref_.setPerm(op.tid, op.domain, op.perm);
            for (auto &m : machines_)
                m->setPerm(op.tid, op.domain, op.perm);
            checkEffectivePerm(op);
            break;
          case OpKind::Access:
            doAccess(op.domain, op.offset, op.type);
            break;
          case OpKind::OutAccess:
            doOneAccess(kOutsideBase + op.offset % kOutsideSize, op.type);
            break;
          case OpKind::ThreadSwitch:
            if (op.tid != currentTid_) {
                for (auto &m : machines_)
                    m->contextSwitch(currentTid_, op.tid);
                currentTid_ = op.tid;
            }
            break;
          case OpKind::TlbChurn:
            doChurn(op);
            break;
          case OpKind::TenantChurn:
            doTenantChurn(op);
            break;
        }
    }

    void
    doAttach(const Op &op)
    {
        if (op.domain == kNullDomain || ref_.isLive(op.domain))
            return; // Double attach is a caller bug, not scheme input.
        const std::uint32_t pages =
            std::max<std::uint32_t>(1, std::min(op.pages, kSlotPages));
        const Addr base = domainBase(op.domain);
        const Addr size = Addr{pages} * kPage;
        ref_.attach(op.domain, base, size, op.perm);
        for (auto &m : machines_)
            m->attach(currentTid_, op.domain, base, size, op.perm);
    }

    void
    doAccess(DomainId domain, Addr offset, AccessType type)
    {
        Addr va;
        if (const ReferenceModel::Domain *d = ref_.find(domain))
            va = d->base + offset % d->size;
        else
            va = domainBase(domain) + offset % (Addr{kSlotPages} * kPage);
        doOneAccess(va, type);
    }

    void
    doOneAccess(Addr va, AccessType type)
    {
        const Expectation plain = ref_.expect(currentTid_, va, type,
                                              /*mpk_exhausted_hole=*/false);
        const Expectation mpk = ref_.expect(currentTid_, va, type,
                                            /*mpk_exhausted_hole=*/true);
        for (auto &m : machines_) {
            const arch::CheckResult res =
                m->access(currentTid_, va, type);
            if (!isProtected(m->kind()))
                continue; // Baselines allow everything by design.
            const bool expected = m->kind() == arch::SchemeKind::Mpk
                                      ? mpk.allowed
                                      : plain.allowed;
            if (res.allowed != expected) {
                std::ostringstream detail;
                detail << "t" << currentTid_ << " "
                       << (type == AccessType::Read ? "R" : "W") << " va=0x"
                       << std::hex << va << std::dec << ": scheme says "
                       << (res.allowed ? "allow" : "deny")
                       << ", reference says "
                       << (expected ? "allow" : "deny");
                violate("verdict", m->name(), detail.str());
            }
        }
    }

    void
    doChurn(const Op &op)
    {
        Addr base;
        std::uint32_t span;
        if (const ReferenceModel::Domain *d = ref_.find(op.domain)) {
            base = d->base;
            span = static_cast<std::uint32_t>(d->size / kPage);
        } else {
            base = domainBase(op.domain);
            span = kSlotPages;
        }
        const std::uint32_t pages =
            std::max<std::uint32_t>(1, std::min(op.pages, kSlotPages));
        for (std::uint32_t p = 0; p < pages; ++p)
            doOneAccess(base + Addr{p % span} * kPage, AccessType::Read);
    }

    /**
     * The KV server's inner loop: for each of `pages` consecutive
     * domains starting at `domain`, grant the current thread RW and
     * touch the domain once. Counts above 16 outrun the MPK key
     * space, so the grant path has to evict and re-key mid-burst.
     */
    void
    doTenantChurn(const Op &op)
    {
        const std::uint32_t count = std::max<std::uint32_t>(1, op.pages);
        for (std::uint32_t i = 0; i < count; ++i) {
            const auto d = static_cast<DomainId>(op.domain + i);
            ref_.setPerm(currentTid_, d, Perm::ReadWrite);
            for (auto &m : machines_)
                m->setPerm(currentTid_, d, Perm::ReadWrite);
            Op grant;
            grant.kind = OpKind::SetPerm;
            grant.tid = currentTid_;
            grant.domain = d;
            grant.perm = Perm::ReadWrite;
            checkEffectivePerm(grant);
            doAccess(d, 0, AccessType::Read);
        }
    }

    void
    checkEffectivePerm(const Op &op)
    {
        const ReferenceModel::Domain *d = ref_.find(op.domain);
        if (!d)
            return; // Schemes report ReadWrite for non-domains.
        const Perm want = ref_.effectivePerm(op.tid, op.domain);
        for (auto &m : machines_) {
            if (!isProtected(m->kind()))
                continue;
            if (m->kind() == arch::SchemeKind::Mpk && !d->mpkKeyed)
                continue; // Exhausted: stock MPK can't track perms.
            const Perm got =
                m->scheme().effectivePerm(op.tid, op.domain);
            if (got != want) {
                std::ostringstream detail;
                detail << "t" << op.tid << " d" << op.domain
                       << ": effectivePerm=" << permToString(got)
                       << ", reference=" << permToString(want);
                violate("effective-perm", m->name(), detail.str());
            }
        }
    }

    /** Stamp @p req as every machine's in-flight request id, the same
     *  tagging System::beginForensics applies to tracked ops. */
    void
    tagRequest(std::uint64_t req)
    {
        for (auto &m : machines_)
            m->events().setCurrentRequest(req);
    }

    void
    drainEvents()
    {
        for (std::size_t i = 0; i < machines_.size(); ++i) {
            for (const trace::Event &ev : machines_[i]->events().drain()) {
                auto kind = static_cast<std::size_t>(ev.kind);
                if (kind < eventCounts_[i].size())
                    ++eventCounts_[i][kind];
                if (!eventAllowed(machines_[i]->kind(), ev.kind)) {
                    violate("events", machines_[i]->name(),
                            std::string("posted forbidden event ") +
                                trace::eventKindName(ev.kind));
                }
                // Forensics ring contract: ids are assigned 1, 2, 3,
                // ... in post order (the ring never drops here — see
                // checkEvents), and every event posted while an op is
                // in flight carries that op's request tag. This is
                // the oracle blame chains rest on: a blamed id must
                // name the one real ring event posted in the window.
                if (ev.id != nextEventId_[i] + 1) {
                    std::ostringstream detail;
                    detail << "event id " << ev.id
                           << " breaks the monotone sequence (expected "
                           << nextEventId_[i] + 1 << ")";
                    violate("forensics", machines_[i]->name(),
                            detail.str());
                }
                nextEventId_[i] = ev.id;
                if (ev.req != opIndex_ + 1) {
                    std::ostringstream detail;
                    detail << "event id " << ev.id << " tagged req "
                           << ev.req << ", expected " << opIndex_ + 1;
                    violate("forensics", machines_[i]->name(),
                            detail.str());
                }
            }
        }
    }

    void
    checkCycleOrder()
    {
        const Machine *none = findKind(arch::SchemeKind::NoProtection);
        const Machine *lower = findKind(arch::SchemeKind::Lowerbound);
        const Cycles floor_none = none ? none->schemeCycles() : 0;
        const Cycles floor_lower =
            lower ? lower->schemeCycles() : floor_none;
        if (none && lower && floor_none > floor_lower) {
            std::ostringstream detail;
            detail << "none=" << floor_none << " > lowerbound="
                   << floor_lower << " scheme cycles";
            violate("cycle-order", "", detail.str());
        }
        for (auto &m : machines_) {
            if (!isProtected(m->kind()))
                continue;
            if (m->schemeCycles() < floor_lower) {
                std::ostringstream detail;
                detail << "scheme cycles " << m->schemeCycles()
                       << " below lowerbound " << floor_lower;
                violate("cycle-order", m->name(), detail.str());
            }
        }
    }

    void
    checkBucketSums()
    {
        for (auto &m : machines_) {
            const arch::ProtectionScheme &s = m->scheme();
            const double sum = s.cycPermissionChange.value() +
                               s.cycEntryChange.value() +
                               s.cycTableMiss.value() +
                               s.cycTlbInvalidation.value() +
                               s.cycAccessLatency.value() +
                               s.cycSoftware.value();
            const auto total = static_cast<double>(m->schemeCycles());
            if (std::llround(sum) != std::llround(total)) {
                std::ostringstream detail;
                detail << "buckets sum to " << sum
                       << " but scheme cycles are " << total;
                violate("bucket-sum", m->name(), detail.str());
            }
        }
    }

    void
    checkEvents()
    {
        for (std::size_t i = 0; i < machines_.size(); ++i) {
            Machine &m = *machines_[i];
            const arch::ProtectionScheme &s = m.scheme();
            const auto &counts = eventCounts_[i];
            const auto evictions = counts[static_cast<std::size_t>(
                trace::EventKind::KeyEviction)];
            const auto shots = counts[static_cast<std::size_t>(
                trace::EventKind::Shootdown)];
            if (static_cast<double>(evictions) != s.keyEvictions.value()) {
                std::ostringstream detail;
                detail << evictions << " KeyEviction events vs "
                       << s.keyEvictions.value() << " key_evictions";
                violate("events", m.name(), detail.str());
            }
            if (static_cast<double>(shots) != s.shootdowns.value()) {
                std::ostringstream detail;
                detail << shots << " Shootdown events vs "
                       << s.shootdowns.value() << " shootdowns";
                violate("events", m.name(), detail.str());
            }
            const auto ipis = counts[static_cast<std::size_t>(
                trace::EventKind::Ipi)];
            const double responded =
                m.bus() ? m.bus()->ipisResponded.value() : 0.0;
            if (static_cast<double>(ipis) != responded) {
                std::ostringstream detail;
                detail << ipis << " Ipi events vs " << responded
                       << " bus ipis_responded";
                violate("events", m.name(), detail.str());
            }
            if (m.events().dropped.value() != 0)
                violate("events", m.name(),
                        "event ring dropped events mid-run");
        }
    }

    /**
     * Per-request latency rests on two properties of the cycle
     * accounting: the per-op totals recorded above must partition the
     * machine total exactly (no cycles charged between requests), and
     * a fresh fleet replaying the same episode split into two batches
     * must land on the same totals at the split and at the end. The
     * probe fleet is silent — any divergence is reported here, not
     * double-counted from its own oracles.
     */
    void
    checkTailLatency()
    {
        if (ops_.empty())
            return;
        Runner probe(ops_, cfg_, /*silent=*/true);
        const std::size_t split = ops_.size() / 2;
        const std::vector<Cycles> mid = probe.executeThrough(split);
        const std::vector<Cycles> end =
            probe.executeThrough(ops_.size());
        for (std::size_t i = 0; i < machines_.size(); ++i) {
            Cycles sum_first = 0, sum_all = 0;
            for (std::size_t k = 0; k < opTotals_[i].size(); ++k) {
                sum_all += opTotals_[i][k];
                if (k < split)
                    sum_first += opTotals_[i][k];
            }
            if (sum_all != machines_[i]->totalCycles()) {
                std::ostringstream detail;
                detail << "per-op cycle totals sum to " << sum_all
                       << " but the machine total is "
                       << machines_[i]->totalCycles();
                violate("tail-latency", machines_[i]->name(),
                        detail.str());
            }
            if (sum_first != mid[i] || sum_all != end[i]) {
                std::ostringstream detail;
                detail << "batch-split replay diverged: first batch "
                       << sum_first << " vs " << mid[i] << ", total "
                       << sum_all << " vs " << end[i];
                violate("tail-latency", machines_[i]->name(),
                        detail.str());
            }
        }
    }

    const std::vector<Op> &ops_;
    const DiffConfig &cfg_;
    std::vector<std::unique_ptr<Machine>> machines_;
    /** Per-machine posted-event counts, indexed by EventKind. */
    std::vector<std::array<std::uint64_t, 6>> eventCounts_;
    /** Per-machine, per-op totalCycles deltas (tail-latency oracle). */
    std::vector<std::vector<Cycles>> opTotals_;
    /** Per-machine last drained event id (forensics oracle). */
    std::vector<std::uint64_t> nextEventId_;
    bool silent_ = false;
    ReferenceModel ref_;
    ThreadId currentTid_ = 0;
    std::size_t opIndex_ = 0;
    DiffResult result_;
};

} // namespace

DiffResult
runDifferential(const std::vector<Op> &ops, const DiffConfig &cfg)
{
    return Runner(ops, cfg).run();
}

} // namespace pmodv::testing
