/**
 * @file
 * The operation vocabulary of the differential fuzz harness: a small,
 * replayable instruction set over the protection-scheme API
 * (attach/detach PMOs, permission changes, in/out-of-domain accesses,
 * thread switches, TLB-pressure loops).
 *
 * Operations are value types with a stable one-line text form, so a
 * failing sequence can be printed as a self-contained reproducer,
 * checked into the regression corpus, and replayed byte-identically
 * by `pmodv-fuzz --replay` or `test_differential`.
 */

#ifndef PMODV_TESTING_OPS_HH
#define PMODV_TESTING_OPS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pmodv::testing
{

/** One step of a differential workload. */
enum class OpKind : std::uint8_t
{
    Attach,       ///< Map a PMO region and notify the scheme.
    Detach,       ///< Notify the scheme and unmap the region.
    SetPerm,      ///< SETPERM for an explicit (thread, domain).
    Access,       ///< One access by the *current* thread inside a PMO.
    OutAccess,    ///< One access by the current thread outside all PMOs.
    ThreadSwitch, ///< Context-switch the current thread.
    TlbChurn,     ///< A read loop over a PMO's pages (TLB pressure).
    TenantChurn,  ///< A re-key burst across consecutive domains.
};

/** Stable lowercase mnemonic of @p kind (the text-format verb). */
const char *opKindName(OpKind kind);

/**
 * One operation. Fields are interpreted per kind:
 *  - Attach:  domain, pages (region size in 4K pages), perm (page perm)
 *  - Detach:  domain
 *  - SetPerm: tid, domain, perm
 *  - Access:  domain, offset (byte offset into the region), type
 *  - OutAccess: offset (byte offset into the unmapped window), type
 *  - ThreadSwitch: tid (the incoming thread)
 *  - TlbChurn: domain, pages (number of consecutive pages read)
 *  - TenantChurn: domain (first tenant), pages (tenant count) — for
 *    each of the `pages` consecutive domains starting at `domain`,
 *    grant the current thread RW and read one byte of the domain (the
 *    KV server's tenant-to-tenant inner loop; counts above 16 cross
 *    the MPK key cliff and force evictions mid-burst)
 */
struct Op
{
    OpKind kind = OpKind::Access;
    DomainId domain = 0;
    ThreadId tid = 0;
    Perm perm = Perm::None;
    Addr offset = 0;
    AccessType type = AccessType::Read;
    std::uint32_t pages = 1;

    bool operator==(const Op &) const = default;
};

/**
 * The fixed VA layout of the harness. Every domain id owns a disjoint
 * 16 MB slot above 8 GB; out-of-domain accesses live in a low window
 * no attach can ever reach, so the two can never collide.
 */
Addr domainBase(DomainId domain);

/** Base of the never-mapped window OutAccess offsets index into. */
inline constexpr Addr kOutsideBase = Addr{1} << 30;

/** Size cap (bytes) OutAccess offsets are wrapped into. */
inline constexpr Addr kOutsideSize = Addr{16} << 20;

/** Render one op in the stable text format. */
std::string opToString(const Op &op);

/**
 * Parse one text-format line. Returns false (leaving @p op untouched)
 * for blank lines and `#` comments; fatal()s on malformed input.
 */
bool opFromString(const std::string &line, Op &op);

/** Write an op list, one per line, with an optional `# seed=` header. */
void printOps(std::ostream &out, const std::vector<Op> &ops);

/** Parse a whole stream of text-format ops (comments/blanks skipped). */
std::vector<Op> parseOps(std::istream &in);

/** parseOps() over a file; fatal()s when the file cannot be opened. */
std::vector<Op> loadOpsFile(const std::string &path);

} // namespace pmodv::testing

#endif // PMODV_TESTING_OPS_HH
