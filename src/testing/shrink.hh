/**
 * @file
 * Greedy delta-debugging shrinker: given a failing op sequence and a
 * "does it still fail?" predicate, removes chunks (halving the chunk
 * size down to single ops) until no removal preserves the failure,
 * yielding a locally minimal reproducer.
 */

#ifndef PMODV_TESTING_SHRINK_HH
#define PMODV_TESTING_SHRINK_HH

#include <functional>
#include <vector>

#include "testing/ops.hh"

namespace pmodv::testing
{

/** Re-runs a candidate sequence; true when it still fails. */
using FailPredicate = std::function<bool(const std::vector<Op> &)>;

/** Knobs for the shrinking loop. */
struct ShrinkConfig
{
    /** Hard cap on predicate evaluations (each is a full replay). */
    std::size_t maxEvaluations = 2000;
};

/**
 * Shrink @p ops to a locally minimal sequence for which @p fails
 * still returns true. @p ops itself must fail; the result always
 * fails.
 */
std::vector<Op> shrinkOps(std::vector<Op> ops, const FailPredicate &fails,
                          const ShrinkConfig &cfg = {});

} // namespace pmodv::testing

#endif // PMODV_TESTING_SHRINK_HH
