#include "testing/generator.hh"

#include <algorithm>

#include "common/rng.hh"

namespace pmodv::testing
{

namespace
{

/**
 * Generator-side mirror of the live-domain set. Only what is needed
 * to bias ops toward interesting targets; the runner re-derives the
 * authoritative state from the ops themselves.
 */
struct GenState
{
    std::vector<DomainId> live;
    std::vector<std::uint32_t> livePages;
    ThreadId currentTid = 0;

    bool
    isLive(DomainId d) const
    {
        return std::find(live.begin(), live.end(), d) != live.end();
    }

    std::uint32_t
    pagesOf(DomainId d) const
    {
        for (std::size_t i = 0; i < live.size(); ++i)
            if (live[i] == d)
                return livePages[i];
        return 1;
    }

    void
    kill(DomainId d)
    {
        for (std::size_t i = 0; i < live.size(); ++i) {
            if (live[i] == d) {
                live.erase(live.begin() + static_cast<long>(i));
                livePages.erase(livePages.begin() + static_cast<long>(i));
                return;
            }
        }
    }
};

} // namespace

std::vector<Op>
generateOps(std::uint64_t seed, const GenConfig &cfg)
{
    Rng rng(seed);
    GenState st;
    std::vector<Op> ops;
    ops.reserve(cfg.numOps);

    const unsigned weights[] = {cfg.wAttach,    cfg.wDetach, cfg.wSetPerm,
                                cfg.wAccess,    cfg.wOutAccess,
                                cfg.wSwitch,    cfg.wChurn,  cfg.wTenant};
    unsigned total_weight = 0;
    for (unsigned w : weights)
        total_weight += w;

    auto pickDomain = [&](bool prefer_live) -> DomainId {
        if (prefer_live && !st.live.empty() &&
            !rng.chance(cfg.invalidTargetChance))
            return st.live[rng.next(st.live.size())];
        return static_cast<DomainId>(rng.range(1, cfg.domainPool));
    };

    while (ops.size() < cfg.numOps) {
        std::uint64_t roll = rng.next(total_weight);
        std::size_t kind = 0;
        while (roll >= weights[kind]) {
            roll -= weights[kind];
            ++kind;
        }

        Op op;
        switch (kind) {
          case 0: { // attach
            if (st.live.size() >= cfg.maxLive)
                continue;
            DomainId d = pickDomain(/*prefer_live=*/false);
            if (st.isLive(d))
                continue;
            op.kind = OpKind::Attach;
            op.domain = d;
            op.pages = static_cast<std::uint32_t>(
                rng.range(1, cfg.maxPages));
            op.perm = rng.chance(cfg.readOnlyPageChance) ? Perm::Read
                                                         : Perm::ReadWrite;
            st.live.push_back(d);
            st.livePages.push_back(op.pages);
            break;
          }
          case 1: { // detach
            op.kind = OpKind::Detach;
            op.domain = pickDomain(/*prefer_live=*/true);
            st.kill(op.domain);
            break;
          }
          case 2: { // setperm
            op.kind = OpKind::SetPerm;
            op.domain = pickDomain(/*prefer_live=*/true);
            op.tid = static_cast<ThreadId>(rng.next(cfg.numThreads));
            // Bias the grants: half RW, then R, None, and raw W (which
            // hardware widens to RW) to exercise normalization.
            const std::uint64_t p = rng.next(8);
            op.perm = p < 4   ? Perm::ReadWrite
                      : p < 6 ? Perm::Read
                      : p < 7 ? Perm::None
                              : Perm::Write;
            break;
          }
          case 3: { // access inside a PMO slot
            op.kind = OpKind::Access;
            op.domain = pickDomain(/*prefer_live=*/true);
            const std::uint32_t pages = st.pagesOf(op.domain);
            // Zipf page choice keeps the TLB warm on hot pages.
            op.offset = rng.zipf(pages, 0.6) * 4096 + rng.next(4096);
            op.type = rng.chance(0.4) ? AccessType::Write
                                      : AccessType::Read;
            break;
          }
          case 4: { // access outside every PMO
            op.kind = OpKind::OutAccess;
            op.offset = rng.next(kOutsideSize);
            op.type = rng.chance(0.4) ? AccessType::Write
                                      : AccessType::Read;
            break;
          }
          case 5: { // thread switch
            if (cfg.numThreads < 2)
                continue;
            op.kind = OpKind::ThreadSwitch;
            op.tid = static_cast<ThreadId>(rng.next(cfg.numThreads));
            if (op.tid == st.currentTid)
                continue;
            st.currentTid = op.tid;
            break;
          }
          case 6: { // TLB-pressure churn
            op.kind = OpKind::TlbChurn;
            op.domain = pickDomain(/*prefer_live=*/true);
            op.pages = static_cast<std::uint32_t>(
                rng.range(1, cfg.maxPages));
            break;
          }
          default: { // tenant-to-tenant re-key burst
            op.kind = OpKind::TenantChurn;
            op.domain = pickDomain(/*prefer_live=*/true);
            op.pages = static_cast<std::uint32_t>(
                rng.range(2, cfg.maxTenantBurst));
            break;
          }
        }
        ops.push_back(op);
    }
    return ops;
}

} // namespace pmodv::testing
