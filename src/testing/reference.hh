/**
 * @file
 * The ground-truth permission model the differential oracles compare
 * every scheme against: a direct transcription of the paper's
 * intra-process isolation semantics with none of the schemes'
 * machinery (no keys, no TLBs, no caching).
 *
 * The one place the schemes legitimately diverge is stock MPK's key
 * exhaustion: the 16th concurrently attached PMO gets no key and
 * becomes domainless (domain checks vacuously pass; page permission
 * still applies). The model tracks the stock allocator's occupancy so
 * the verdict oracle can apply that carve-out to `mpk` only.
 */

#ifndef PMODV_TESTING_REFERENCE_HH
#define PMODV_TESTING_REFERENCE_HH

#include <unordered_map>

#include "common/types.hh"

namespace pmodv::testing
{

/** What the model says should happen to one access. */
struct Expectation
{
    bool allowed = true;
    /** True when the VA is inside a live PMO region. */
    bool mapped = false;
    /** True when the ref domain-permission check failed. */
    bool domainDenied = false;
    /** True when the page permission failed. */
    bool pageDenied = false;
};

/**
 * Pure-semantics replica of the machine's protection state. The
 * DifferentialRunner feeds it the same op stream the schemes get.
 */
class ReferenceModel
{
  public:
    /** Per-PMO ground-truth state. */
    struct Domain
    {
        Addr base = 0;
        Addr size = 0;
        Perm pagePerm = Perm::ReadWrite;
        /** Whether stock MPK's allocator had a key for this attach. */
        bool mpkKeyed = true;
        /** SETPERM grants, hardware-normalized. Absent = None. */
        std::unordered_map<ThreadId, Perm> perms;

        bool contains(Addr a) const { return a >= base && a < base + size; }
    };

    void attach(DomainId domain, Addr base, Addr size, Perm page_perm);
    void detach(DomainId domain);
    /** No-op for unattached domains, like every scheme's SETPERM. */
    void setPerm(ThreadId tid, DomainId domain, Perm perm);

    bool isLive(DomainId domain) const;
    const Domain *find(DomainId domain) const;
    const Domain *findByAddr(Addr va) const;

    /** Ground-truth effective permission (None when unattached). */
    Perm effectivePerm(ThreadId tid, DomainId domain) const;

    /**
     * Predict the verdict for an access by @p tid to @p va. With
     * @p mpk_exhausted_hole, a keyless (exhausted-attach) domain's
     * domain check passes vacuously — the stock-MPK carve-out.
     */
    Expectation expect(ThreadId tid, Addr va, AccessType type,
                       bool mpk_exhausted_hole) const;

    const std::unordered_map<DomainId, Domain> &domains() const
    {
        return domains_;
    }

  private:
    std::unordered_map<DomainId, Domain> domains_;
    /** Stock-MPK allocator occupancy (keys in use out of 15). */
    unsigned mpkKeysInUse_ = 0;
};

} // namespace pmodv::testing

#endif // PMODV_TESTING_REFERENCE_HH
