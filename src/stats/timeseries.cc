#include "stats/timeseries.hh"

namespace pmodv::stats
{

void
TimeSeries::configure(std::uint64_t cycles_per_epoch,
                      unsigned max_epochs)
{
    cyclesPerEpoch_ = cycles_per_epoch;
    // Coalescing merges adjacent pairs, so the cap must be even.
    maxEpochs_ = max_epochs < 2 ? 2 : (max_epochs & ~1u);
    rows_.clear();
    nextEpochEnd_ = enabled() ? cyclesPerEpoch_ : kDisabled;
}

void
TimeSeries::track(const Scalar &stat, std::string label)
{
    if (!enabled())
        return;
    Track t;
    t.stat = &stat;
    t.label = std::move(label);
    t.last = stat.value();
    tracks_.push_back(std::move(t));
}

void
TimeSeries::advance(std::uint64_t now)
{
    // The first crossed epoch books the whole delta; further crossed
    // epochs see last == current and record zeros.
    while (now >= nextEpochEnd_) {
        closeEpoch();
        nextEpochEnd_ += cyclesPerEpoch_;
        if (rows_.size() >= maxEpochs_)
            coalesce();
    }
}

void
TimeSeries::closeEpoch()
{
    std::vector<double> row;
    row.reserve(tracks_.size());
    for (Track &t : tracks_) {
        const double now = t.stat->value();
        row.push_back(now - t.last);
        t.last = now;
    }
    rows_.push_back(std::move(row));
}

void
TimeSeries::coalesce()
{
    // Merge adjacent pairs and double the epoch width; row i then
    // covers [i*2W, (i+1)*2W) and the boundary invariant holds.
    const std::size_t half = rows_.size() / 2;
    for (std::size_t i = 0; i < half; ++i) {
        // Steal the even row first — rows_[i] aliases rows_[2*i] at
        // i == 0, so assigning through it directly would self-move.
        std::vector<double> dst = std::move(rows_[2 * i]);
        const std::vector<double> &src = rows_[2 * i + 1];
        for (std::size_t t = 0; t < dst.size(); ++t)
            dst[t] += src[t];
        rows_[i] = std::move(dst);
    }
    rows_.resize(half);
    cyclesPerEpoch_ *= 2;
    nextEpochEnd_ = (rows_.size() + 1) * cyclesPerEpoch_;
}

void
TimeSeries::finalize(std::uint64_t now)
{
    if (!enabled())
        return;
    advance(now);
    // Close the trailing partial epoch if any tracked counter moved
    // since the last boundary (or no epoch exists yet), so per-track
    // sums equal the counters' final values.
    bool moved = rows_.empty();
    for (const Track &t : tracks_) {
        if (t.stat->value() != t.last) {
            moved = true;
            break;
        }
    }
    if (moved) {
        closeEpoch();
        nextEpochEnd_ = rows_.size() * cyclesPerEpoch_ +
                        cyclesPerEpoch_;
        if (rows_.size() >= maxEpochs_)
            coalesce();
    }
}

double
TimeSeries::trackTotal(std::size_t t) const
{
    double sum = 0;
    for (const std::vector<double> &row : rows_)
        sum += row[t];
    return sum;
}

void
TimeSeries::reset()
{
    rows_.clear();
    nextEpochEnd_ = enabled() ? cyclesPerEpoch_ : kDisabled;
    for (Track &t : tracks_)
        t.last = t.stat->value();
}

} // namespace pmodv::stats
