/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Every timing component owns a stats::Group; individual statistics
 * register themselves with the group at construction. Groups nest, so
 * a whole system can be dumped with one call. Scalar, Vector,
 * Histogram and Formula statistics are provided.
 *
 * Output goes through the Visitor interface (see stats/export.hh for
 * the text/JSON/CSV exporters): a visitor walks the group tree in
 * registration order, which is construction order and therefore
 * deterministic across runs and worker counts.
 */

#ifndef PMODV_STATS_STATS_HH
#define PMODV_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace pmodv::stats
{

class Group;
class Scalar;
class Vector;
class Histogram;
class Formula;
class TimeSeries;
class SlowRequestDigest;

/**
 * Traversal interface over a stats tree. beginGroup/endGroup bracket
 * each Group (the root included); between them the group's own
 * statistics are visited first, then its children, both in
 * registration order.
 */
class Visitor
{
  public:
    virtual ~Visitor() = default;

    virtual void beginGroup(const Group &group) = 0;
    virtual void endGroup(const Group &group) = 0;
    virtual void visitScalar(const Scalar &stat) = 0;
    virtual void visitVector(const Vector &stat) = 0;
    virtual void visitHistogram(const Histogram &stat) = 0;
    virtual void visitFormula(const Formula &stat) = 0;
    /** Defaulted (not pure) so visitors predating epoch sampling —
     *  including out-of-tree ones — keep compiling unchanged. */
    virtual void visitTimeSeries(const TimeSeries &) {}
    /** Defaulted for the same reason (visitors predating the
     *  slow-request forensics digest keep compiling unchanged). */
    virtual void visitSlowDigest(const SlowRequestDigest &) {}
};

/** Base class for all statistics; handles naming and registration. */
class StatBase
{
  public:
    StatBase(Group *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Double-dispatch into @p visitor. */
    virtual void accept(Visitor &visitor) const = 0;

    /** Reset the statistic to its initial value. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A simple accumulating counter / value. */
class Scalar : public StatBase
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {
    }

    Scalar &operator++()
    {
        ++value_;
        return *this;
    }

    Scalar &
    operator+=(double v)
    {
        value_ += v;
        return *this;
    }

    Scalar &
    operator=(double v)
    {
        value_ = v;
        return *this;
    }

    double value() const { return value_; }

    void accept(Visitor &visitor) const override
    {
        visitor.visitScalar(*this);
    }
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** A fixed-size vector of counters with per-bucket names. */
class Vector : public StatBase
{
  public:
    Vector(Group *parent, std::string name, std::string desc,
           std::size_t size)
        : StatBase(parent, std::move(name), std::move(desc)),
          values_(size, 0.0)
    {
    }

    /** Optionally name each bucket (defaults to its index). */
    void
    subnames(std::vector<std::string> names)
    {
        subnames_ = std::move(names);
    }

    /** The display name of bucket @p i (its index when unnamed). */
    std::string subname(std::size_t i) const
    {
        return i < subnames_.size() ? subnames_[i] : std::to_string(i);
    }

    double &operator[](std::size_t i) { return values_.at(i); }
    double at(std::size_t i) const { return values_.at(i); }
    std::size_t size() const { return values_.size(); }

    /** Sum over all buckets. */
    double total() const;

    void accept(Visitor &visitor) const override
    {
        visitor.visitVector(*this);
    }
    void reset() override { values_.assign(values_.size(), 0.0); }

  private:
    std::vector<double> values_;
    std::vector<std::string> subnames_;
};

/**
 * One histogram bucket as the exporters see it: [lo, hi) holding
 * `count` samples, with hi == 0 standing in for the open-ended
 * overflow bucket (whose upper edge does not exist). This is exactly
 * the (lo, hi, count) triple the JSON exporter emits per nonempty
 * bucket, so quantiles recomputed from a parsed report go through the
 * same code as live Histogram::quantile() calls.
 */
struct BucketCount
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0; ///< 0 = unbounded (overflow bucket).
    std::uint64_t count = 0;
};

/**
 * The q-quantile (q in [0, 1]) reconstructed from exported histogram
 * fields. Deterministic nearest-rank extraction: the k-th smallest
 * sample with k = ceil(q * samples) clamped to [1, samples]. The k-th
 * sample's bucket is found by a cumulative walk; within the bucket
 * the count samples are modelled as evenly spaced across the bucket's
 * *reachable* range [max(lo, min), min(hi - 1, max)] — the recorded
 * global min/max clamp what the lost exact values could have been, so
 * single-value histograms (and q = 0 / q = 1) are exact, and every
 * answer provably lies inside the k-th sample's true bucket. Returns
 * 0 for an empty histogram.
 */
double quantileFromBuckets(std::uint64_t samples, std::uint64_t min,
                           std::uint64_t max,
                           const std::vector<BucketCount> &buckets,
                           double q);

/**
 * A log2-bucketed histogram of sampled values. Bucket 0 holds the
 * value 0; bucket i >= 1 holds [2^(i-1), 2^i); the last bucket is
 * open-ended and absorbs everything at or above its lower edge.
 * bucketLow()/bucketLabel() are the single source of truth for the
 * edges — every exporter (text, JSON, CSV) formats buckets through
 * them, so the dumps agree by construction.
 */
class Histogram : public StatBase
{
  public:
    Histogram(Group *parent, std::string name, std::string desc,
              unsigned num_buckets = 24)
        : StatBase(parent, std::move(name), std::move(desc)),
          buckets_(num_buckets, 0)
    {
    }

    /** Record one sample of @p value. */
    void sample(std::uint64_t value);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    std::uint64_t min() const { return samples_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Inclusive lower edge of bucket @p i. */
    std::uint64_t bucketLow(std::size_t i) const
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Exclusive upper edge of bucket @p i (undefined for the last,
     *  open-ended bucket; check bucketUnbounded() first). */
    std::uint64_t bucketHigh(std::size_t i) const
    {
        return std::uint64_t{1} << i;
    }

    /** True for the open-ended overflow bucket. */
    bool bucketUnbounded(std::size_t i) const
    {
        return i + 1 == buckets_.size();
    }

    /** Canonical edge label: "[lo,hi)", or ">=lo" for the last. */
    std::string bucketLabel(std::size_t i) const;

    /**
     * The q-quantile of the sampled values via quantileFromBuckets()
     * on this histogram's nonempty buckets — so p50/p99/p999 read
     * from a live histogram and recomputed from its JSON export agree
     * bit for bit.
     */
    double quantile(double q) const;

    void accept(Visitor &visitor) const override
    {
        visitor.visitHistogram(*this);
    }
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    double sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/** A derived statistic evaluated lazily from a closure at dump time. */
class Formula : public StatBase
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          fn_(std::move(fn))
    {
    }

    double value() const { return fn_ ? fn_() : 0.0; }

    void accept(Visitor &visitor) const override
    {
        visitor.visitFormula(*this);
    }
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of statistics; groups nest to mirror the
 * component hierarchy (system.cpu.dtlb...).
 */
class Group
{
  public:
    /** Create a group under @p parent (nullptr for a root group). */
    explicit Group(Group *parent = nullptr, std::string name = "");
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &groupName() const { return name_; }

    /** Full dotted path from the root group. */
    std::string fullPath() const;

    /** Walk this group, its stats and its children with @p visitor. */
    void accept(Visitor &visitor) const;

    /** Dump this group and all children as text to @p os. */
    void dump(std::ostream &os) const;

    /** Reset all statistics in this group and children. */
    void resetStats();

    /** Look up a scalar value by dotted relative path; 0 if absent. */
    double lookup(const std::string &dotted_path) const;

    // Registration hooks used by StatBase / child Groups.
    void registerStat(StatBase *stat);
    void registerChild(Group *child);
    void unregisterChild(Group *child);

  private:
    const StatBase *findStat(const std::string &dotted_path) const;

    Group *parent_;
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<Group *> children_;
};

} // namespace pmodv::stats

#endif // PMODV_STATS_STATS_HH
