#include "stats/stats.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "stats/export.hh"

namespace pmodv::stats
{

StatBase::StatBase(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    panic_if(!parent, "statistic '%s' needs a parent group",
             name_.c_str());
    parent->registerStat(this);
}

double
Vector::total() const
{
    double t = 0;
    for (double v : values_)
        t += v;
    return t;
}

void
Histogram::sample(std::uint64_t value)
{
    ++samples_;
    sum_ += static_cast<double>(value);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    const unsigned bucket = value == 0 ? 0 : floorLog2(value) + 1;
    const std::size_t idx =
        std::min<std::size_t>(bucket, buckets_.size() - 1);
    ++buckets_[idx];
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

std::string
Histogram::bucketLabel(std::size_t i) const
{
    // The overflow bucket's upper edge does not exist; ">=" avoids
    // ever printing a bound that the exporters could disagree on.
    if (bucketUnbounded(i))
        return ">=" + std::to_string(bucketLow(i));
    return "[" + std::to_string(bucketLow(i)) + "," +
           std::to_string(bucketHigh(i)) + ")";
}

void
Histogram::reset()
{
    buckets_.assign(buckets_.size(), 0);
    samples_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

Group::Group(Group *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->registerChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->unregisterChild(this);
}

std::string
Group::fullPath() const
{
    if (!parent_)
        return name_;
    std::string parent_path = parent_->fullPath();
    if (parent_path.empty())
        return name_;
    if (name_.empty())
        return parent_path;
    return parent_path + "." + name_;
}

void
Group::registerStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
Group::registerChild(Group *child)
{
    children_.push_back(child);
}

void
Group::unregisterChild(Group *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
Group::accept(Visitor &visitor) const
{
    visitor.beginGroup(*this);
    for (const StatBase *s : stats_)
        s->accept(visitor);
    for (const Group *c : children_)
        c->accept(visitor);
    visitor.endGroup(*this);
}

void
Group::dump(std::ostream &os) const
{
    dumpText(os, *this);
}

void
Group::resetStats()
{
    for (StatBase *s : stats_)
        s->reset();
    for (Group *c : children_)
        c->resetStats();
}

const StatBase *
Group::findStat(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        for (const StatBase *s : stats_) {
            if (s->name() == dotted_path)
                return s;
        }
        return nullptr;
    }
    const std::string head = dotted_path.substr(0, dot);
    const std::string rest = dotted_path.substr(dot + 1);
    for (const Group *c : children_) {
        if (c->name_ == head)
            return c->findStat(rest);
    }
    return nullptr;
}

double
Group::lookup(const std::string &dotted_path) const
{
    const StatBase *s = findStat(dotted_path);
    if (!s)
        return 0.0;
    if (auto *sc = dynamic_cast<const Scalar *>(s))
        return sc->value();
    if (auto *f = dynamic_cast<const Formula *>(s))
        return f->value();
    if (auto *v = dynamic_cast<const Vector *>(s))
        return v->total();
    if (auto *h = dynamic_cast<const Histogram *>(s))
        return static_cast<double>(h->samples());
    return 0.0;
}

} // namespace pmodv::stats
