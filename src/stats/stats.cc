#include "stats/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "stats/export.hh"

namespace pmodv::stats
{

StatBase::StatBase(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    panic_if(!parent, "statistic '%s' needs a parent group",
             name_.c_str());
    parent->registerStat(this);
}

double
Vector::total() const
{
    double t = 0;
    for (double v : values_)
        t += v;
    return t;
}

void
Histogram::sample(std::uint64_t value)
{
    ++samples_;
    sum_ += static_cast<double>(value);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    const unsigned bucket = value == 0 ? 0 : floorLog2(value) + 1;
    const std::size_t idx =
        std::min<std::size_t>(bucket, buckets_.size() - 1);
    ++buckets_[idx];
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

std::string
Histogram::bucketLabel(std::size_t i) const
{
    // The overflow bucket's upper edge does not exist; ">=" avoids
    // ever printing a bound that the exporters could disagree on.
    if (bucketUnbounded(i))
        return ">=" + std::to_string(bucketLow(i));
    return "[" + std::to_string(bucketLow(i)) + "," +
           std::to_string(bucketHigh(i)) + ")";
}

double
quantileFromBuckets(std::uint64_t samples, std::uint64_t min,
                    std::uint64_t max,
                    const std::vector<BucketCount> &buckets, double q)
{
    if (samples == 0)
        return 0.0;
    // Nearest rank: the k-th smallest sample, k = ceil(q * samples)
    // clamped to [1, samples].
    auto k = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(samples)));
    k = std::clamp<std::uint64_t>(k, 1, samples);
    // The extremes are recorded exactly; answer them exactly.
    if (k == 1)
        return static_cast<double>(min);
    if (k == samples)
        return static_cast<double>(max);
    std::uint64_t cum = 0;
    for (const BucketCount &b : buckets) {
        if (b.count == 0)
            continue;
        if (k > cum + b.count) {
            cum += b.count;
            continue;
        }
        // The k-th sample lies in this bucket. Its exact value is
        // gone, but min/max bound the bucket's reachable range; model
        // the bucket's samples as evenly spaced across it.
        const std::uint64_t lo = std::max(b.lo, min);
        const std::uint64_t hi =
            b.hi == 0 ? max : std::min(b.hi - 1, max);
        if (hi <= lo || b.count == 1)
            return static_cast<double>(lo);
        const std::uint64_t idx = k - cum; // 1-based within the bucket.
        return static_cast<double>(lo) +
               static_cast<double>(hi - lo) *
                   (static_cast<double>(idx - 1) /
                    static_cast<double>(b.count - 1));
    }
    // Unreachable when the bucket counts sum to `samples`; fall back
    // to the recorded maximum for malformed inputs.
    return static_cast<double>(max);
}

double
Histogram::quantile(double q) const
{
    std::vector<BucketCount> bs;
    bs.reserve(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        bs.push_back({bucketLow(i),
                      bucketUnbounded(i) ? 0 : bucketHigh(i),
                      buckets_[i]});
    }
    return quantileFromBuckets(samples_, min(), max_, bs, q);
}

void
Histogram::reset()
{
    buckets_.assign(buckets_.size(), 0);
    samples_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

Group::Group(Group *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->registerChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->unregisterChild(this);
}

std::string
Group::fullPath() const
{
    if (!parent_)
        return name_;
    std::string parent_path = parent_->fullPath();
    if (parent_path.empty())
        return name_;
    if (name_.empty())
        return parent_path;
    return parent_path + "." + name_;
}

void
Group::registerStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
Group::registerChild(Group *child)
{
    children_.push_back(child);
}

void
Group::unregisterChild(Group *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
Group::accept(Visitor &visitor) const
{
    visitor.beginGroup(*this);
    for (const StatBase *s : stats_)
        s->accept(visitor);
    for (const Group *c : children_)
        c->accept(visitor);
    visitor.endGroup(*this);
}

void
Group::dump(std::ostream &os) const
{
    dumpText(os, *this);
}

void
Group::resetStats()
{
    for (StatBase *s : stats_)
        s->reset();
    for (Group *c : children_)
        c->resetStats();
}

const StatBase *
Group::findStat(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        for (const StatBase *s : stats_) {
            if (s->name() == dotted_path)
                return s;
        }
        return nullptr;
    }
    const std::string head = dotted_path.substr(0, dot);
    const std::string rest = dotted_path.substr(dot + 1);
    for (const Group *c : children_) {
        if (c->name_ == head)
            return c->findStat(rest);
    }
    return nullptr;
}

double
Group::lookup(const std::string &dotted_path) const
{
    const StatBase *s = findStat(dotted_path);
    if (!s)
        return 0.0;
    if (auto *sc = dynamic_cast<const Scalar *>(s))
        return sc->value();
    if (auto *f = dynamic_cast<const Formula *>(s))
        return f->value();
    if (auto *v = dynamic_cast<const Vector *>(s))
        return v->total();
    if (auto *h = dynamic_cast<const Histogram *>(s))
        return static_cast<double>(h->samples());
    return 0.0;
}

} // namespace pmodv::stats
