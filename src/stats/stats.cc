#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv::stats
{

StatBase::StatBase(Group *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    panic_if(!parent, "statistic '%s' needs a parent group",
             name_.c_str());
    parent->registerStat(this);
}

namespace
{

void
printLine(std::ostream &os, const std::string &full_name, double value,
          const std::string &desc)
{
    os << std::left << std::setw(48) << full_name << " " << std::setw(16)
       << value << " # " << desc << "\n";
}

} // namespace

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name(), value_, desc());
}

double
Vector::total() const
{
    double t = 0;
    for (double v : values_)
        t += v;
    return t;
}

void
Vector::print(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        std::string sub = i < subnames_.size() ? subnames_[i]
                                               : std::to_string(i);
        printLine(os, prefix + name() + "::" + sub, values_[i], desc());
    }
    printLine(os, prefix + name() + "::total", total(), desc());
}

void
Histogram::sample(std::uint64_t value)
{
    ++samples_;
    sum_ += static_cast<double>(value);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    const unsigned bucket = value == 0 ? 0 : floorLog2(value) + 1;
    const std::size_t idx =
        std::min<std::size_t>(bucket, buckets_.size() - 1);
    ++buckets_[idx];
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name() + "::samples",
              static_cast<double>(samples_), desc());
    printLine(os, prefix + name() + "::mean", mean(), desc());
    printLine(os, prefix + name() + "::min",
              static_cast<double>(min()), desc());
    printLine(os, prefix + name() + "::max",
              static_cast<double>(max_), desc());
}

void
Histogram::reset()
{
    buckets_.assign(buckets_.size(), 0);
    samples_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    printLine(os, prefix + name(), value(), desc());
}

Group::Group(Group *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->registerChild(this);
}

Group::~Group()
{
    if (parent_)
        parent_->unregisterChild(this);
}

std::string
Group::fullPath() const
{
    if (!parent_)
        return name_;
    std::string parent_path = parent_->fullPath();
    if (parent_path.empty())
        return name_;
    if (name_.empty())
        return parent_path;
    return parent_path + "." + name_;
}

void
Group::registerStat(StatBase *stat)
{
    stats_.push_back(stat);
}

void
Group::registerChild(Group *child)
{
    children_.push_back(child);
}

void
Group::unregisterChild(Group *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
Group::dump(std::ostream &os) const
{
    std::string prefix = name_.empty() ? "" : name_ + ".";
    dumpWithPrefix(os, prefix);
}

void
Group::dumpWithPrefix(std::ostream &os, const std::string &prefix) const
{
    for (const StatBase *s : stats_)
        s->print(os, prefix);
    for (const Group *c : children_) {
        std::string child_prefix =
            c->name_.empty() ? prefix : prefix + c->name_ + ".";
        c->dumpWithPrefix(os, child_prefix);
    }
}

void
Group::resetStats()
{
    for (StatBase *s : stats_)
        s->reset();
    for (Group *c : children_)
        c->resetStats();
}

const StatBase *
Group::findStat(const std::string &dotted_path) const
{
    const auto dot = dotted_path.find('.');
    if (dot == std::string::npos) {
        for (const StatBase *s : stats_) {
            if (s->name() == dotted_path)
                return s;
        }
        return nullptr;
    }
    const std::string head = dotted_path.substr(0, dot);
    const std::string rest = dotted_path.substr(dot + 1);
    for (const Group *c : children_) {
        if (c->name_ == head)
            return c->findStat(rest);
    }
    return nullptr;
}

double
Group::lookup(const std::string &dotted_path) const
{
    const StatBase *s = findStat(dotted_path);
    if (!s)
        return 0.0;
    if (auto *sc = dynamic_cast<const Scalar *>(s))
        return sc->value();
    if (auto *f = dynamic_cast<const Formula *>(s))
        return f->value();
    if (auto *v = dynamic_cast<const Vector *>(s))
        return v->total();
    if (auto *h = dynamic_cast<const Histogram *>(s))
        return static_cast<double>(h->samples());
    return 0.0;
}

} // namespace pmodv::stats
