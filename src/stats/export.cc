#include "stats/export.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "stats/slow_digest.hh"
#include "stats/timeseries.hh"

namespace pmodv::stats
{

namespace
{

/**
 * Deterministic number formatting shared by the JSON and CSV
 * exporters: integers print without a fraction, everything else with
 * 17 significant digits (enough to round-trip a double exactly).
 * Non-finite values become 0 so a document can never fail to parse.
 */
std::string
formatNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    if (value == std::nearbyint(value) &&
        std::fabs(value) < 9007199254740992.0) { // 2^53
        std::ostringstream os;
        os << static_cast<long long>(value);
        return os.str();
    }
    std::ostringstream os;
    os << std::setprecision(17) << value;
    return os.str();
}

/** Minimal JSON string escaping (stat names are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

// ------------------------------------------------------------- text

void
TextVisitor::line(const std::string &full_name, double value,
                  const std::string &desc)
{
    os_ << std::left << std::setw(48) << full_name << " "
        << std::setw(16) << value << " # " << desc << "\n";
}

void
TextVisitor::beginGroup(const Group &group)
{
    const std::string &parent =
        prefixes_.empty() ? std::string() : prefixes_.back();
    prefixes_.push_back(group.groupName().empty()
                            ? parent
                            : parent + group.groupName() + ".");
}

void
TextVisitor::endGroup(const Group &)
{
    prefixes_.pop_back();
}

void
TextVisitor::visitScalar(const Scalar &stat)
{
    line(prefixes_.back() + stat.name(), stat.value(), stat.desc());
}

void
TextVisitor::visitVector(const Vector &stat)
{
    const std::string base = prefixes_.back() + stat.name();
    for (std::size_t i = 0; i < stat.size(); ++i)
        line(base + "::" + stat.subname(i), stat.at(i), stat.desc());
    line(base + "::total", stat.total(), stat.desc());
}

void
TextVisitor::visitHistogram(const Histogram &stat)
{
    const std::string base = prefixes_.back() + stat.name();
    line(base + "::samples", static_cast<double>(stat.samples()),
         stat.desc());
    line(base + "::mean", stat.mean(), stat.desc());
    line(base + "::min", static_cast<double>(stat.min()), stat.desc());
    line(base + "::max", static_cast<double>(stat.max()), stat.desc());
    for (std::size_t i = 0; i < stat.numBuckets(); ++i) {
        if (stat.bucket(i) == 0)
            continue;
        line(base + "::" + stat.bucketLabel(i),
             static_cast<double>(stat.bucket(i)), stat.desc());
    }
}

void
TextVisitor::visitFormula(const Formula &stat)
{
    line(prefixes_.back() + stat.name(), stat.value(), stat.desc());
}

void
TextVisitor::visitTimeSeries(const TimeSeries &stat)
{
    // The text dump stays summary-level (per-track totals); the full
    // per-epoch rows are a JSON/CSV affair.
    const std::string base = prefixes_.back() + stat.name();
    line(base + "::epoch_cycles",
         static_cast<double>(stat.epochCycles()), stat.desc());
    line(base + "::epochs", static_cast<double>(stat.numEpochs()),
         stat.desc());
    for (std::size_t t = 0; t < stat.numTracks(); ++t) {
        line(base + "::" + stat.trackLabel(t) + "::total",
             stat.trackTotal(t), stat.desc());
    }
}

void
TextVisitor::visitSlowDigest(const SlowRequestDigest &stat)
{
    const std::string base = prefixes_.back() + stat.name();
    line(base + "::k", static_cast<double>(stat.k()), stat.desc());
    line(base + "::offered", static_cast<double>(stat.offered()),
         stat.desc());
    std::size_t i = 0;
    for (const SlowRequestEntry &e : stat.entries()) {
        const std::string row = base + "::" + std::to_string(i++);
        line(row + "::id", static_cast<double>(e.id), stat.desc());
        line(row + "::latency", static_cast<double>(e.latency),
             stat.desc());
        line(row + "::queue", static_cast<double>(e.queue),
             stat.desc());
        line(row + "::domain", static_cast<double>(e.domain),
             stat.desc());
        line(row + "::events", static_cast<double>(e.events.size()),
             stat.desc());
    }
}

// ------------------------------------------------------------- json

void
JsonVisitor::key(const std::string &name)
{
    if (first_.back())
        first_.back() = false;
    else
        os_ << ",";
    os_ << '"' << jsonEscape(name) << "\":";
}

void
JsonVisitor::number(double value)
{
    os_ << formatNumber(value);
}

void
JsonVisitor::beginGroup(const Group &group)
{
    if (depth_ == 0) {
        os_ << "{";
        first_.push_back(true);
    } else if (group.groupName().empty()) {
        // An unnamed child merges into its parent's object, exactly
        // like the text dump folds unnamed groups into the prefix.
        merged_.push_back(depth_);
    } else {
        key(group.groupName());
        os_ << "{";
        first_.push_back(true);
    }
    ++depth_;
}

void
JsonVisitor::endGroup(const Group &)
{
    --depth_;
    if (!merged_.empty() && merged_.back() == depth_) {
        merged_.pop_back();
        return;
    }
    os_ << "}";
    first_.pop_back();
}

void
JsonVisitor::visitScalar(const Scalar &stat)
{
    key(stat.name());
    number(stat.value());
}

void
JsonVisitor::visitVector(const Vector &stat)
{
    key(stat.name());
    os_ << "{";
    first_.push_back(true);
    for (std::size_t i = 0; i < stat.size(); ++i) {
        key(stat.subname(i));
        number(stat.at(i));
    }
    key("total");
    number(stat.total());
    first_.pop_back();
    os_ << "}";
}

void
JsonVisitor::visitHistogram(const Histogram &stat)
{
    key(stat.name());
    os_ << "{";
    first_.push_back(true);
    key("samples");
    number(static_cast<double>(stat.samples()));
    key("mean");
    number(stat.mean());
    key("min");
    number(static_cast<double>(stat.min()));
    key("max");
    number(static_cast<double>(stat.max()));
    key("buckets");
    os_ << "[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < stat.numBuckets(); ++i) {
        if (stat.bucket(i) == 0)
            continue;
        // Edges are numeric (not the text label) so documents stay
        // free of brackets-inside-strings; the same bucketLow/High
        // pair also builds the text label, keeping the two in sync.
        os_ << (first_bucket ? "" : ",") << "{\"lo\":"
            << stat.bucketLow(i);
        if (!stat.bucketUnbounded(i))
            os_ << ",\"hi\":" << stat.bucketHigh(i);
        os_ << ",\"count\":"
            << formatNumber(static_cast<double>(stat.bucket(i))) << "}";
        first_bucket = false;
    }
    os_ << "]";
    first_.pop_back();
    os_ << "}";
}

void
JsonVisitor::visitFormula(const Formula &stat)
{
    key(stat.name());
    number(stat.value());
}

void
JsonVisitor::visitTimeSeries(const TimeSeries &stat)
{
    key(stat.name());
    os_ << "{";
    first_.push_back(true);
    key("epoch_cycles");
    number(static_cast<double>(stat.epochCycles()));
    key("epochs");
    number(static_cast<double>(stat.numEpochs()));
    key("tracks");
    os_ << "{";
    first_.push_back(true);
    for (std::size_t t = 0; t < stat.numTracks(); ++t) {
        key(stat.trackLabel(t));
        os_ << "[";
        for (std::size_t e = 0; e < stat.numEpochs(); ++e) {
            os_ << (e ? "," : "");
            number(stat.sample(t, e));
        }
        os_ << "]";
    }
    first_.pop_back();
    os_ << "}";
    first_.pop_back();
    os_ << "}";
}

void
JsonVisitor::visitSlowDigest(const SlowRequestDigest &stat)
{
    key(stat.name());
    os_ << "{";
    first_.push_back(true);
    key("k");
    number(static_cast<double>(stat.k()));
    key("offered");
    number(static_cast<double>(stat.offered()));
    key("entries");
    os_ << "[";
    bool first_entry = true;
    for (const SlowRequestEntry &e : stat.entries()) {
        os_ << (first_entry ? "" : ",") << "{\"id\":" << e.id
            << ",\"tid\":" << e.tid << ",\"domain\":" << e.domain
            << ",\"class\":" << e.cls << ",\"arrival\":" << e.arrival
            << ",\"latency\":" << e.latency << ",\"queue\":" << e.queue
            << ",\"residue\":" << e.residue << ",\"begin\":" << e.begin
            << ",\"commit\":" << e.commit << ",\"buckets\":{";
        for (unsigned b = 0; b < kSlowDigestBuckets; ++b) {
            os_ << (b ? "," : "") << '"' << kSlowDigestBucketNames[b]
                << "\":" << e.buckets[b];
        }
        os_ << "},\"events\":[";
        bool first_ev = true;
        for (const SlowBlamedEvent &ev : e.events) {
            os_ << (first_ev ? "" : ",") << "{\"id\":" << ev.id
                << ",\"kind\":\"" << jsonEscape(ev.kind)
                << "\",\"cycle\":" << ev.cycle << ",\"tid\":" << ev.tid
                << ",\"arg\":" << ev.arg << ",\"value\":" << ev.value
                << "}";
            first_ev = false;
        }
        os_ << "],\"events_dropped\":" << e.eventsDropped << "}";
        first_entry = false;
    }
    os_ << "]";
    first_.pop_back();
    os_ << "}";
}

// -------------------------------------------------------------- csv

CsvVisitor::CsvVisitor(std::ostream &os) : os_(os)
{
    os_ << "stat,value\n";
}

void
CsvVisitor::row(const std::string &name, double value)
{
    if (name.find(',') != std::string::npos)
        os_ << '"' << name << '"';
    else
        os_ << name;
    os_ << ',' << formatNumber(value) << "\n";
}

void
CsvVisitor::beginGroup(const Group &group)
{
    const std::string &parent =
        prefixes_.empty() ? std::string() : prefixes_.back();
    prefixes_.push_back(group.groupName().empty()
                            ? parent
                            : parent + group.groupName() + ".");
}

void
CsvVisitor::endGroup(const Group &)
{
    prefixes_.pop_back();
}

void
CsvVisitor::visitScalar(const Scalar &stat)
{
    row(prefixes_.back() + stat.name(), stat.value());
}

void
CsvVisitor::visitVector(const Vector &stat)
{
    const std::string base = prefixes_.back() + stat.name();
    for (std::size_t i = 0; i < stat.size(); ++i)
        row(base + "::" + stat.subname(i), stat.at(i));
    row(base + "::total", stat.total());
}

void
CsvVisitor::visitHistogram(const Histogram &stat)
{
    const std::string base = prefixes_.back() + stat.name();
    row(base + "::samples", static_cast<double>(stat.samples()));
    row(base + "::mean", stat.mean());
    row(base + "::min", static_cast<double>(stat.min()));
    row(base + "::max", static_cast<double>(stat.max()));
    for (std::size_t i = 0; i < stat.numBuckets(); ++i) {
        if (stat.bucket(i) == 0)
            continue;
        row(base + "::" + stat.bucketLabel(i),
            static_cast<double>(stat.bucket(i)));
    }
}

void
CsvVisitor::visitFormula(const Formula &stat)
{
    row(prefixes_.back() + stat.name(), stat.value());
}

void
CsvVisitor::visitTimeSeries(const TimeSeries &stat)
{
    const std::string base = prefixes_.back() + stat.name();
    row(base + "::epoch_cycles", static_cast<double>(stat.epochCycles()));
    row(base + "::epochs", static_cast<double>(stat.numEpochs()));
    for (std::size_t t = 0; t < stat.numTracks(); ++t) {
        const std::string track = base + "::" + stat.trackLabel(t);
        for (std::size_t e = 0; e < stat.numEpochs(); ++e)
            row(track + "::e" + std::to_string(e), stat.sample(t, e));
    }
}

void
CsvVisitor::visitSlowDigest(const SlowRequestDigest &stat)
{
    const std::string base = prefixes_.back() + stat.name();
    row(base + "::k", static_cast<double>(stat.k()));
    row(base + "::offered", static_cast<double>(stat.offered()));
    std::size_t i = 0;
    for (const SlowRequestEntry &e : stat.entries()) {
        const std::string r = base + "::" + std::to_string(i++);
        row(r + "::id", static_cast<double>(e.id));
        row(r + "::latency", static_cast<double>(e.latency));
        row(r + "::queue", static_cast<double>(e.queue));
        row(r + "::residue", static_cast<double>(e.residue));
        row(r + "::domain", static_cast<double>(e.domain));
        row(r + "::class", static_cast<double>(e.cls));
        for (unsigned b = 0; b < kSlowDigestBuckets; ++b)
            row(r + "::" + kSlowDigestBucketNames[b],
                static_cast<double>(e.buckets[b]));
        row(r + "::events", static_cast<double>(e.events.size()));
    }
}

// ------------------------------------------------------- entry points

void
dumpText(std::ostream &os, const Group &group)
{
    TextVisitor visitor(os);
    group.accept(visitor);
}

void
dumpJson(std::ostream &os, const Group &group)
{
    JsonVisitor visitor(os);
    group.accept(visitor);
}

void
dumpCsv(std::ostream &os, const Group &group)
{
    CsvVisitor visitor(os);
    group.accept(visitor);
}

std::string
toJsonString(const Group &group)
{
    std::ostringstream os;
    dumpJson(os, group);
    return os.str();
}

} // namespace pmodv::stats
