/**
 * @file
 * A deterministic bounded top-K digest of the slowest tracked
 * requests — the statistics half of the tail-forensics layer.
 *
 * Each entry carries one request's complete blame record: the exact
 * 7-bucket cycle breakdown of its service time, its queueing delay and
 * (defensive) residue — which together provably partition the
 * arrival-to-completion latency — plus denormalized copies of every
 * EventRing event that landed inside the request's window (its causal
 * chain: the key evictions, shootdown IPIs and walk refills that
 * actually delayed it).
 *
 * The keeper is a sorted bounded vector (K is small): ordering is
 * latency-descending with a seeded splitmix64 tie-break on the request
 * id, so the retained set and its order are independent of insertion
 * order and identical across --jobs counts and batch splits. offer()
 * is O(K) worst case and only runs once per tracked request, far off
 * the replay hot path.
 */

#ifndef PMODV_STATS_SLOW_DIGEST_HH
#define PMODV_STATS_SLOW_DIGEST_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace pmodv::stats
{

/** Number of cycle-attribution buckets in a request breakdown. */
inline constexpr unsigned kSlowDigestBuckets = 7;

/**
 * Canonical bucket names, index-aligned with a System's attribution
 * Scalars (cyc_issue .. cyc_ctx_switch). The single source of truth
 * for every exporter and for tools/check_stats_schema.py.
 */
extern const std::array<const char *, kSlowDigestBuckets>
    kSlowDigestBucketNames;

/** Default tie-break seed (any fixed odd constant works). */
inline constexpr std::uint64_t kSlowDigestDefaultSeed =
    0x9e3779b97f4a7c15ull;

/**
 * One blamed event: a denormalized copy of an EventRing entry that
 * landed inside the request's OpBegin..OpEnd window. Copied (not
 * referenced) so the blame survives the ring overwriting the slot.
 */
struct SlowBlamedEvent
{
    std::uint64_t id = 0;    ///< Ring-assigned monotone event id.
    std::string kind;        ///< trace::eventKindName() of the event.
    std::uint64_t cycle = 0; ///< Global cycle the event was posted at.
    std::uint64_t tid = 0;
    std::uint32_t arg = 0;
    std::uint64_t value = 0;
};

/** One slow request's complete blame record. */
struct SlowRequestEntry
{
    std::uint64_t id = 0;     ///< 1-based tracked-request sequence id.
    std::uint64_t tid = 0;    ///< Serving thread.
    std::uint64_t domain = 0; ///< Primary domain (OpBegin aux).
    std::uint64_t cls = 0;    ///< Tenant class (OpBegin value).
    std::uint64_t arrival = 0; ///< Virtual-clock arrival cycle.
    std::uint64_t latency = 0; ///< Arrival -> completion cycles.
    std::uint64_t queue = 0;   ///< Arrival -> service-start cycles.
    /** latency - queue - sum(buckets); 0 by the partition invariant,
     *  kept so a violation is visible rather than silently absorbed. */
    std::uint64_t residue = 0;
    std::uint64_t begin = 0;  ///< Global cycle count at OpBegin.
    std::uint64_t commit = 0; ///< Global cycle count at OpEnd.
    /** Service cycles by attribution bucket
     *  (kSlowDigestBucketNames order). */
    std::array<std::uint64_t, kSlowDigestBuckets> buckets{};
    std::vector<SlowBlamedEvent> events; ///< Causal chain, oldest first.
    /** In-window events beyond the per-entry cap (counted, not kept). */
    std::uint64_t eventsDropped = 0;
};

/** The bounded top-K keeper, exported through the stats visitors. */
class SlowRequestDigest : public StatBase
{
  public:
    SlowRequestDigest(Group *parent, std::string name, std::string desc,
                      unsigned k,
                      std::uint64_t seed = kSlowDigestDefaultSeed);

    /** Consider @p entry for the top K; keeps at most K entries. */
    void offer(const SlowRequestEntry &entry);

    /** Retained entries, slowest first (ties broken by seeded hash). */
    const std::vector<SlowRequestEntry> &entries() const
    {
        return entries_;
    }

    unsigned k() const { return k_; }
    std::uint64_t seed() const { return seed_; }
    /** Total requests offered (retained or not). */
    std::uint64_t offered() const { return offered_; }

    void accept(Visitor &visitor) const override
    {
        visitor.visitSlowDigest(*this);
    }
    void reset() override
    {
        entries_.clear();
        offered_ = 0;
    }

  private:
    /** True when @p a orders strictly before (is slower than) @p b. */
    bool before(const SlowRequestEntry &a,
                const SlowRequestEntry &b) const;

    unsigned k_;
    std::uint64_t seed_;
    std::uint64_t offered_ = 0;
    std::vector<SlowRequestEntry> entries_;
};

} // namespace pmodv::stats

#endif // PMODV_STATS_SLOW_DIGEST_HH
