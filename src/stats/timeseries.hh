/**
 * @file
 * Epoch-based time-series sampling over existing Scalar counters.
 *
 * A TimeSeries registers with a stats::Group like any other statistic
 * and holds a set of *tracks*, each a pointer to a Scalar elsewhere in
 * the same tree. While enabled, tick(now) closes an epoch every
 * `cyclesPerEpoch` simulated cycles, snapshotting the delta of every
 * tracked counter since the previous epoch boundary into one bounded
 * row. The rows reconstruct the counter *trajectory* — eviction
 * storms, miss-rate phases — that end-of-run aggregates average away.
 *
 * Cost model: sampling is OFF by default (cyclesPerEpoch == 0), and a
 * disabled TimeSeries reduces tick() to a single always-false compare
 * against a saturated sentinel — cheap enough to keep in the replay
 * hot path unconditionally (bench/gbench_sim.cc measures it).
 *
 * Memory is bounded: when the row count reaches maxEpochs, adjacent
 * epoch pairs are merged and the epoch width doubles, preserving the
 * invariant that row i covers cycles [i*W, (i+1)*W). A cycle jump
 * crossing several boundaries books the whole delta into the first
 * crossed epoch (the following skipped epochs record zeros); the
 * smear is at most one trace record's worth of cycles.
 *
 * The per-track epoch deltas always sum back to the tracked counters'
 * final values once finalize() has closed the trailing partial epoch
 * (tests/test_timeline.cc asserts this).
 */

#ifndef PMODV_STATS_TIMESERIES_HH
#define PMODV_STATS_TIMESERIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace pmodv::stats
{

/** Epoch-sampled deltas of registered Scalar counters. */
class TimeSeries : public StatBase
{
  public:
    TimeSeries(Group *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {
    }

    /**
     * Enable sampling with @p cycles_per_epoch wide epochs, keeping
     * at most @p max_epochs rows (coalescing beyond that; clamped to
     * an even value >= 2). @p cycles_per_epoch == 0 disables.
     */
    void configure(std::uint64_t cycles_per_epoch,
                   unsigned max_epochs = 256);

    bool enabled() const { return cyclesPerEpoch_ != 0; }

    /** Register @p stat as a track labelled @p label (no-op while
     *  disabled; tracks snapshot from the counter's current value). */
    void track(const Scalar &stat, std::string label);

    /**
     * Hot-path epoch check: closes epochs once @p now passes the next
     * boundary. Disabled series compare against a ~0 sentinel and
     * fall straight through.
     */
    void
    tick(std::uint64_t now)
    {
        if (now >= nextEpochEnd_)
            advance(now);
    }

    /** Close the trailing partial epoch so per-track sums equal the
     *  counters' final values. Idempotent until new cycles arrive. */
    void finalize(std::uint64_t now);

    /**
     * The cycle at which the next epoch closes (the saturated
     * disabled sentinel while sampling is off). Batch replay loops
     * cache this to know when deferred counters must be flushed into
     * their Scalars before tick() snapshots them.
     */
    std::uint64_t nextBoundary() const { return nextEpochEnd_; }

    // -- inspection (exporters / tests) --
    std::uint64_t epochCycles() const { return cyclesPerEpoch_; }
    std::size_t numEpochs() const { return rows_.size(); }
    std::size_t numTracks() const { return tracks_.size(); }
    const std::string &trackLabel(std::size_t t) const
    {
        return tracks_[t].label;
    }
    /** Delta of track @p t over epoch @p e. */
    double sample(std::size_t t, std::size_t e) const
    {
        return rows_[e][t];
    }
    /** Sum of track @p t over all closed epochs. */
    double trackTotal(std::size_t t) const;

    void accept(Visitor &visitor) const override
    {
        visitor.visitTimeSeries(*this);
    }
    void reset() override;

  private:
    struct Track
    {
        const Scalar *stat = nullptr;
        std::string label;
        double last = 0; ///< Value at the previous epoch boundary.
    };

    void advance(std::uint64_t now);
    void closeEpoch();
    void coalesce();

    static constexpr std::uint64_t kDisabled = ~std::uint64_t{0};

    std::vector<Track> tracks_;
    /** rows_[epoch][track] = counter delta over that epoch. */
    std::vector<std::vector<double>> rows_;
    std::uint64_t cyclesPerEpoch_ = 0;
    std::uint64_t nextEpochEnd_ = kDisabled;
    unsigned maxEpochs_ = 256;
};

} // namespace pmodv::stats

#endif // PMODV_STATS_TIMESERIES_HH
