/**
 * @file
 * Exporters over the stats::Visitor interface: the classic gem5-style
 * text dump, a machine-readable JSON tree and a flat CSV table. All
 * three walk the group tree in registration order, so their output is
 * deterministic — byte-identical across runs and worker counts.
 *
 * Histogram bucket edges come from Histogram::bucketLabel() in every
 * format, so text/JSON/CSV dumps agree on the edges by construction
 * (tests/test_stats.cc round-trips them).
 */

#ifndef PMODV_STATS_EXPORT_HH
#define PMODV_STATS_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace pmodv::stats
{

/**
 * The text dump: one "dotted.path value # desc" line per statistic.
 * Vectors expand to ::sub lines plus ::total; histograms to
 * ::samples/::mean/::min/::max plus one ::[lo,hi) line per non-empty
 * bucket.
 */
class TextVisitor : public Visitor
{
  public:
    explicit TextVisitor(std::ostream &os) : os_(os) {}

    void beginGroup(const Group &group) override;
    void endGroup(const Group &group) override;
    void visitScalar(const Scalar &stat) override;
    void visitVector(const Vector &stat) override;
    void visitHistogram(const Histogram &stat) override;
    void visitFormula(const Formula &stat) override;
    void visitTimeSeries(const TimeSeries &stat) override;
    void visitSlowDigest(const SlowRequestDigest &stat) override;

  private:
    void line(const std::string &full_name, double value,
              const std::string &desc);

    std::ostream &os_;
    /** Dotted prefix per open group (unnamed groups add nothing). */
    std::vector<std::string> prefixes_;
};

/**
 * A compact JSON object mirroring the group tree: groups become
 * nested objects keyed by their name (unnamed groups merge into their
 * parent), scalars/formulas become numbers, vectors objects of
 * sub-buckets plus "total", histograms objects with the moments and a
 * "buckets" array of {"bin", "count"} pairs (non-empty buckets only).
 * Time series become objects with "epoch_cycles"/"epochs" and a
 * "tracks" object mapping each track label to its per-epoch delta
 * array (disabled series emit epoch_cycles 0 and no tracks).
 * Numbers round-trip: integral values print without a fraction,
 * others with 17 significant digits; non-finite values are emitted as
 * 0 so the document always parses.
 */
class JsonVisitor : public Visitor
{
  public:
    explicit JsonVisitor(std::ostream &os) : os_(os) {}

    void beginGroup(const Group &group) override;
    void endGroup(const Group &group) override;
    void visitScalar(const Scalar &stat) override;
    void visitVector(const Vector &stat) override;
    void visitHistogram(const Histogram &stat) override;
    void visitFormula(const Formula &stat) override;
    void visitTimeSeries(const TimeSeries &stat) override;
    void visitSlowDigest(const SlowRequestDigest &stat) override;

  private:
    void key(const std::string &name);
    void number(double value);

    std::ostream &os_;
    unsigned depth_ = 0;
    /** One "first element pending" flag per open JSON object. */
    std::vector<bool> first_;
    /** Depths at which an unnamed group was merged into its parent. */
    std::vector<unsigned> merged_;
};

/**
 * Flat "stat,value" CSV (one header row). Vector and histogram
 * sub-values use the same ::suffix naming as the text dump; fields
 * containing commas (histogram bucket labels) are quoted.
 */
class CsvVisitor : public Visitor
{
  public:
    explicit CsvVisitor(std::ostream &os);

    void beginGroup(const Group &group) override;
    void endGroup(const Group &group) override;
    void visitScalar(const Scalar &stat) override;
    void visitVector(const Vector &stat) override;
    void visitHistogram(const Histogram &stat) override;
    void visitFormula(const Formula &stat) override;
    void visitTimeSeries(const TimeSeries &stat) override;
    void visitSlowDigest(const SlowRequestDigest &stat) override;

  private:
    void row(const std::string &name, double value);

    std::ostream &os_;
    std::vector<std::string> prefixes_;
};

/** Dump @p group as text (what Group::dump() forwards to). */
void dumpText(std::ostream &os, const Group &group);

/** Dump @p group as one JSON object (no trailing newline). */
void dumpJson(std::ostream &os, const Group &group);

/** Dump @p group as CSV rows (header included). */
void dumpCsv(std::ostream &os, const Group &group);

/** dumpJson() into a string. */
std::string toJsonString(const Group &group);

} // namespace pmodv::stats

#endif // PMODV_STATS_EXPORT_HH
