#include "stats/slow_digest.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pmodv::stats
{

const std::array<const char *, kSlowDigestBuckets>
    kSlowDigestBucketNames = {
        "cyc_issue",      "cyc_mem",     "cyc_prot_fill",
        "cyc_prot_check", "cyc_perm_instr", "cyc_syscall",
        "cyc_ctx_switch",
};

namespace
{

/** splitmix64 finalizer: the seeded tie-break hash. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

SlowRequestDigest::SlowRequestDigest(Group *parent, std::string name,
                                     std::string desc, unsigned k,
                                     std::uint64_t seed)
    : StatBase(parent, std::move(name), std::move(desc)), k_(k),
      seed_(seed)
{
    panic_if(k == 0, "slow-request digest needs K > 0");
    entries_.reserve(k);
}

bool
SlowRequestDigest::before(const SlowRequestEntry &a,
                          const SlowRequestEntry &b) const
{
    if (a.latency != b.latency)
        return a.latency > b.latency;
    // Equal latencies: a seeded hash of the request id decides, so the
    // retained cohort under ties is arbitrary-but-deterministic rather
    // than biased toward early or late requests.
    const std::uint64_t ha = mix(seed_ ^ a.id);
    const std::uint64_t hb = mix(seed_ ^ b.id);
    if (ha != hb)
        return ha < hb;
    return a.id < b.id;
}

void
SlowRequestDigest::offer(const SlowRequestEntry &entry)
{
    ++offered_;
    if (entries_.size() == k_ && before(entries_.back(), entry))
        return;
    const auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry,
        [this](const SlowRequestEntry &a, const SlowRequestEntry &b) {
            return before(a, b);
        });
    entries_.insert(pos, entry);
    if (entries_.size() > k_)
        entries_.pop_back();
}

} // namespace pmodv::stats
