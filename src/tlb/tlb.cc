#include "tlb/tlb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv::tlb
{

Tlb::Tlb(stats::Group *parent, const TlbParams &params)
    : stats::Group(parent, params.name),
      hits(this, "hits", "translations that hit"),
      misses(this, "misses", "translations that missed"),
      evictions(this, "evictions",
                "valid entries displaced by capacity replacement"),
      flushedEntries(this, "flushed_entries",
                     "entries dropped by invalidations"),
      missRate(this, "miss_rate", "misses / lookups",
               [this]() {
                   const double total = hits.value() + misses.value();
                   return total == 0 ? 0.0 : misses.value() / total;
               }),
      params_(params)
{
    fatal_if(params_.assoc == 0, "tlb '%s': associativity must be > 0",
             params_.name.c_str());
    fatal_if(params_.entries % params_.assoc != 0,
             "tlb '%s': entries must divide evenly into ways",
             params_.name.c_str());
    numSets_ = params_.entries / params_.assoc;
    fatal_if(!isPowerOfTwo(numSets_),
             "tlb '%s': set count must be a power of two",
             params_.name.c_str());
    ways_.resize(std::size_t{numSets_} * params_.assoc);
    tags_.assign(ways_.size() + simd::kTagPad, 0);
    plru_.assign(numSets_, TreePlru(params_.assoc));
    touchLut_ = TreePlru::makeTouchLut(params_.assoc);
    victimLut_ = TreePlru::makeVictimLut(params_.assoc);
    setValid_.assign(numSets_, 0);
}

template <unsigned A>
TlbEntry *
Tlb::lookupImpl(Addr va)
{
    const unsigned assoc = A ? A : params_.assoc;
    // L0 fast path: repeated access to the last-translated 4K page
    // skips the set probes. Any structural change bumps gen_, so a
    // stale filter can never hit.
    const Addr vpn4k = va >> pageShift(PageSize::Size4K);
    const std::uint64_t tag4k = packTag(vpn4k, PageSize::Size4K);
    if (l0Gen_ == gen_ && l0Tag_ == tag4k) {
        ++l0Hits_;
        bumpHit();
        // Replacement state must still be modeled: another way may
        // have been touched since the filter was last refreshed.
        touchWay(l0Si_, l0Way_);
        return &ways_[l0Flat_];
    }

    // Pages of different sizes index differently; try each supported
    // size (smallest first — by far the common case). Sizes with no
    // valid entry anywhere are skipped outright.
    for (PageSize ps :
         {PageSize::Size4K, PageSize::Size2M, PageSize::Size1G}) {
        if (sizeValid_[static_cast<unsigned>(ps)] == 0)
            continue;
        const Addr vpn = va >> pageShift(ps);
        const std::size_t si = setIndexFor(vpn);
        const int w = simd::findU64(tags_.data() + si * assoc, assoc,
                                    packTag(vpn, ps));
        if (w >= 0) {
            bumpHit();
            touchWay(si, static_cast<unsigned>(w));
            const std::size_t flat = si * assoc + w;
            if (ps == PageSize::Size4K) {
                l0Gen_ = gen_;
                l0Tag_ = tag4k;
                l0Flat_ = flat;
                l0Si_ = si;
                l0Way_ = static_cast<unsigned>(w);
            }
            return &ways_[flat];
        }
    }
    if (defer_)
        ++pend_.misses;
    else
        ++misses;
    return nullptr;
}

TlbEntry *
Tlb::lookup(Addr va)
{
    // Dispatch once on the configured width so the probe loops above
    // compile with constant trip counts for the common geometries.
    switch (params_.assoc) {
      case 4:
        return lookupImpl<4>(va);
      case 6:
        return lookupImpl<6>(va);
      case 8:
        return lookupImpl<8>(va);
      default:
        return lookupImpl<0>(va);
    }
}

const TlbEntry *
Tlb::probe(Addr va) const
{
    for (PageSize ps :
         {PageSize::Size4K, PageSize::Size2M, PageSize::Size1G}) {
        if (sizeValid_[static_cast<unsigned>(ps)] == 0)
            continue;
        const Addr vpn = va >> pageShift(ps);
        const std::size_t si = setIndexFor(vpn);
        const int w = simd::findU64(tags_.data() + si * params_.assoc,
                                    params_.assoc, packTag(vpn, ps));
        if (w >= 0)
            return &ways_[si * params_.assoc + w];
    }
    return nullptr;
}

template <bool Dedupe, unsigned A>
TlbEntry &
Tlb::insertImpl(const TlbEntry &entry)
{
    const unsigned assoc = A ? A : params_.assoc;
    const std::size_t si = setIndexFor(entry.vpn);
    const std::uint64_t *row = tags_.data() + si * assoc;
    // Reuse an existing entry for the same page, else an invalid way,
    // else the pseudo-LRU victim. A full set (the steady state) skips
    // the free-way probe via the per-set valid count.
    int victim = -1;
    if constexpr (Dedupe) {
        victim = simd::findU64(row, assoc,
                               packTag(entry.vpn, entry.pageSize));
    }
    if (victim < 0 && setValid_[si] < assoc)
        victim = simd::findU64(row, assoc, 0);
    if (victim < 0) {
        victim = static_cast<int>(victimLut_.valid()
                                      ? plru_[si].victimMasked(victimLut_)
                                      : plru_[si].victim());
        if (defer_)
            ++pend_.evictions;
        else
            ++evictions;
    }
    const std::size_t flat = si * assoc + victim;
    // Overwriting a valid way: only the per-size count needs fixing
    // (the slot stays valid, the set count is unchanged); the full
    // dropEntry stores would be overwritten right below anyway.
    TlbEntry &slot = ways_[flat];
    if (slot.valid)
        --sizeValid_[static_cast<unsigned>(slot.pageSize)];
    else
        ++setValid_[si];
    slot = entry;
    slot.valid = true;
    tags_[flat] = packTag(entry.vpn, entry.pageSize);
    ++sizeValid_[static_cast<unsigned>(entry.pageSize)];
    touchWay(si, static_cast<unsigned>(victim));
    ++gen_;
    if (entry.pageSize == PageSize::Size4K) {
        // The freshly filled page is the likeliest next lookup.
        l0Gen_ = gen_;
        l0Tag_ = tags_[flat];
        l0Flat_ = flat;
        l0Si_ = si;
        l0Way_ = static_cast<unsigned>(victim);
    }
    return ways_[flat];
}

TlbEntry &
Tlb::insert(const TlbEntry &entry)
{
    switch (params_.assoc) {
      case 4:
        return insertImpl<true, 4>(entry);
      case 6:
        return insertImpl<true, 6>(entry);
      case 8:
        return insertImpl<true, 8>(entry);
      default:
        return insertImpl<true, 0>(entry);
    }
}

TlbEntry &
Tlb::insertFresh(const TlbEntry &entry)
{
    switch (params_.assoc) {
      case 4:
        return insertImpl<false, 4>(entry);
      case 6:
        return insertImpl<false, 6>(entry);
      case 8:
        return insertImpl<false, 8>(entry);
      default:
        return insertImpl<false, 0>(entry);
    }
}

template <typename Pred>
unsigned
Tlb::flushIf(Pred pred)
{
    unsigned n = 0;
    for (std::size_t flat = 0; flat < ways_.size(); ++flat) {
        if (ways_[flat].valid && pred(ways_[flat])) {
            dropEntry(flat, flat / params_.assoc);
            ++n;
        }
    }
    if (defer_)
        pend_.flushed += n;
    else
        flushedEntries += n;
    ++gen_;
    return n;
}

unsigned
Tlb::flushAll()
{
    return flushIf([](const TlbEntry &) { return true; });
}

unsigned
Tlb::flushRange(Addr base, Addr size)
{
    return flushIf([base, size](const TlbEntry &e) {
        const Addr page = pageBytes(e.pageSize);
        const Addr va = e.vpn << pageShift(e.pageSize);
        return va + page > base && va < base + size;
    });
}

unsigned
Tlb::flushKey(ProtKey key)
{
    return flushIf([key](const TlbEntry &e) { return e.key == key; });
}

unsigned
Tlb::flushDomain(DomainId domain)
{
    return flushIf(
        [domain](const TlbEntry &e) { return e.domain == domain; });
}

unsigned
Tlb::validCount() const
{
    unsigned n = 0;
    for (const TlbEntry &e : ways_) {
        if (e.valid)
            ++n;
    }
    return n;
}

void
Tlb::setStatsDeferred(bool defer)
{
    if (!defer && defer_)
        flushDeferredStats();
    defer_ = defer;
}

void
Tlb::flushDeferredStats()
{
    if (pend_.hits) {
        hits += pend_.hits;
        pend_.hits = 0;
    }
    if (pend_.misses) {
        misses += pend_.misses;
        pend_.misses = 0;
    }
    if (pend_.evictions) {
        evictions += pend_.evictions;
        pend_.evictions = 0;
    }
    if (pend_.flushed) {
        flushedEntries += pend_.flushed;
        pend_.flushed = 0;
    }
}

} // namespace pmodv::tlb
