#include "tlb/tlb.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv::tlb
{

Tlb::Tlb(stats::Group *parent, const TlbParams &params)
    : stats::Group(parent, params.name),
      hits(this, "hits", "translations that hit"),
      misses(this, "misses", "translations that missed"),
      evictions(this, "evictions",
                "valid entries displaced by capacity replacement"),
      flushedEntries(this, "flushed_entries",
                     "entries dropped by invalidations"),
      missRate(this, "miss_rate", "misses / lookups",
               [this]() {
                   const double total = hits.value() + misses.value();
                   return total == 0 ? 0.0 : misses.value() / total;
               }),
      params_(params)
{
    fatal_if(params_.assoc == 0, "tlb '%s': associativity must be > 0",
             params_.name.c_str());
    fatal_if(params_.entries % params_.assoc != 0,
             "tlb '%s': entries must divide evenly into ways",
             params_.name.c_str());
    numSets_ = params_.entries / params_.assoc;
    fatal_if(!isPowerOfTwo(numSets_),
             "tlb '%s': set count must be a power of two",
             params_.name.c_str());
    ways_.resize(std::size_t{numSets_} * params_.assoc);
    plru_.assign(numSets_, TreePlru(params_.assoc));
}

TlbEntry *
Tlb::lookup(Addr va)
{
    // Pages of different sizes index differently; try each supported
    // size (smallest first — by far the common case). Sizes with no
    // valid entry anywhere are skipped outright.
    for (PageSize ps :
         {PageSize::Size4K, PageSize::Size2M, PageSize::Size1G}) {
        if (sizeValid_[static_cast<unsigned>(ps)] == 0)
            continue;
        const Addr vpn = va >> pageShift(ps);
        const std::size_t si = setIndexFor(vpn);
        TlbEntry *ways = setWays(si);
        for (unsigned w = 0; w < params_.assoc; ++w) {
            TlbEntry &e = ways[w];
            if (e.valid && e.pageSize == ps && e.vpn == vpn) {
                ++hits;
                plru_[si].touch(w);
                return &e;
            }
        }
    }
    ++misses;
    return nullptr;
}

const TlbEntry *
Tlb::probe(Addr va) const
{
    for (PageSize ps :
         {PageSize::Size4K, PageSize::Size2M, PageSize::Size1G}) {
        if (sizeValid_[static_cast<unsigned>(ps)] == 0)
            continue;
        const Addr vpn = va >> pageShift(ps);
        const TlbEntry *ways = setWays(setIndexFor(vpn));
        for (unsigned w = 0; w < params_.assoc; ++w) {
            const TlbEntry &e = ways[w];
            if (e.valid && e.pageSize == ps && e.vpn == vpn)
                return &e;
        }
    }
    return nullptr;
}

TlbEntry &
Tlb::insert(const TlbEntry &entry)
{
    const std::size_t si = setIndexFor(entry.vpn);
    TlbEntry *ways = setWays(si);
    // Reuse an existing entry for the same page, else an invalid way,
    // else the pseudo-LRU victim.
    unsigned victim = params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        TlbEntry &e = ways[w];
        if (e.valid && e.vpn == entry.vpn &&
            e.pageSize == entry.pageSize) {
            victim = w;
            break;
        }
        if (victim == params_.assoc && !e.valid)
            victim = w;
    }
    if (victim == params_.assoc) {
        victim = plru_[si].victim();
        if (ways[victim].valid)
            ++evictions;
    }
    if (ways[victim].valid)
        dropEntry(ways[victim]);
    ways[victim] = entry;
    ways[victim].valid = true;
    ++sizeValid_[static_cast<unsigned>(entry.pageSize)];
    plru_[si].touch(victim);
    return ways[victim];
}

template <typename Pred>
unsigned
Tlb::flushIf(Pred pred)
{
    unsigned n = 0;
    for (TlbEntry &e : ways_) {
        if (e.valid && pred(e)) {
            dropEntry(e);
            ++n;
        }
    }
    flushedEntries += n;
    return n;
}

unsigned
Tlb::flushAll()
{
    return flushIf([](const TlbEntry &) { return true; });
}

unsigned
Tlb::flushRange(Addr base, Addr size)
{
    return flushIf([base, size](const TlbEntry &e) {
        const Addr page = pageBytes(e.pageSize);
        const Addr va = e.vpn << pageShift(e.pageSize);
        return va + page > base && va < base + size;
    });
}

unsigned
Tlb::flushKey(ProtKey key)
{
    return flushIf([key](const TlbEntry &e) { return e.key == key; });
}

unsigned
Tlb::flushDomain(DomainId domain)
{
    return flushIf(
        [domain](const TlbEntry &e) { return e.domain == domain; });
}

unsigned
Tlb::validCount() const
{
    unsigned n = 0;
    for (const TlbEntry &e : ways_) {
        if (e.valid)
            ++n;
    }
    return n;
}

} // namespace pmodv::tlb
