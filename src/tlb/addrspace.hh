/**
 * @file
 * Process address-space metadata: which VA ranges are mapped, with
 * what page permission, which protection domain (PMO id) they belong
 * to, and whether they are DRAM or NVM backed.
 *
 * This is the simulator's stand-in for the OS page table contents the
 * MMU would consult on a page walk: attach() creates a region exactly
 * the way the paper's attach system call does (aligned, contiguous VA
 * range sized to a page-table level).
 */

#ifndef PMODV_TLB_ADDRSPACE_HH
#define PMODV_TLB_ADDRSPACE_HH

#include <map>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace pmodv::tlb
{

/** Metadata of one mapped VA region. */
struct Region
{
    Addr base = 0;
    Addr size = 0;
    DomainId domain = kNullDomain;
    Perm pagePerm = Perm::ReadWrite; ///< Process-level page permission.
    MemClass memClass = MemClass::Dram;
    PageSize pageSize = PageSize::Size4K;

    bool contains(Addr a) const { return a >= base && a < base + size; }
    Addr end() const { return base + size; }
};

/**
 * The per-process address-space map. Regions never overlap; lookups
 * are O(log n).
 */
class AddressSpace
{
  public:
    /**
     * Map a region. The VA range must be aligned to and sized as a
     * multiple of the region's page size and must not overlap an
     * existing region; panics otherwise (the attach syscall enforces
     * this before calling in).
     */
    void map(const Region &region);

    /** Unmap the region based at @p base; false when absent. */
    bool unmap(Addr base);

    /** Unmap every region belonging to @p domain; returns count. */
    unsigned unmapDomain(DomainId domain);

    /** The region containing @p addr, or nullptr when unmapped. */
    const Region *find(Addr addr) const;

    /** The region of @p domain (first match), or nullptr. */
    const Region *findDomain(DomainId domain) const;

    /** All regions, ordered by base address. */
    std::vector<Region> regions() const;

    std::size_t numRegions() const { return regions_.size(); }

    /**
     * Number of page-size pages in the region of @p domain (0 when
     * the domain has no region). Used by the libmpk cost model.
     */
    std::uint64_t domainPages(DomainId domain) const;

  private:
    /** Keyed by region base address. */
    std::map<Addr, Region> regions_;

    /**
     * Memo of the last positive find(). std::map nodes are stable, so
     * the pointer survives unrelated map()s; regions never overlap,
     * so a contains() re-check fully validates it. Cleared on any
     * unmap. One System drives one AddressSpace from one thread, so
     * the mutable memo needs no synchronization.
     */
    mutable const Region *lastFind_ = nullptr;
};

} // namespace pmodv::tlb

#endif // PMODV_TLB_ADDRSPACE_HH
