#include "tlb/addrspace.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace pmodv::tlb
{

void
AddressSpace::map(const Region &region)
{
    panic_if(region.size == 0, "cannot map an empty region");
    const Addr page = pageBytes(region.pageSize);
    panic_if(!isAligned(region.base, page),
             "region base 0x%llx not aligned to its page size",
             static_cast<unsigned long long>(region.base));
    panic_if(!isAligned(region.size, page),
             "region size 0x%llx not a multiple of its page size",
             static_cast<unsigned long long>(region.size));

    // Overlap check against neighbours.
    auto next = regions_.lower_bound(region.base);
    if (next != regions_.end()) {
        panic_if(region.end() > next->second.base,
                 "region overlaps an existing mapping");
    }
    if (next != regions_.begin()) {
        auto prev = std::prev(next);
        panic_if(prev->second.end() > region.base,
                 "region overlaps an existing mapping");
    }
    regions_.emplace(region.base, region);
}

bool
AddressSpace::unmap(Addr base)
{
    lastFind_ = nullptr;
    return regions_.erase(base) > 0;
}

unsigned
AddressSpace::unmapDomain(DomainId domain)
{
    lastFind_ = nullptr;
    unsigned n = 0;
    for (auto it = regions_.begin(); it != regions_.end();) {
        if (it->second.domain == domain) {
            it = regions_.erase(it);
            ++n;
        } else {
            ++it;
        }
    }
    return n;
}

const Region *
AddressSpace::find(Addr addr) const
{
    if (lastFind_ && lastFind_->contains(addr))
        return lastFind_;
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin())
        return nullptr;
    --it;
    if (!it->second.contains(addr))
        return nullptr;
    lastFind_ = &it->second;
    return lastFind_;
}

const Region *
AddressSpace::findDomain(DomainId domain) const
{
    for (const auto &[base, region] : regions_) {
        if (region.domain == domain)
            return &region;
    }
    return nullptr;
}

std::vector<Region>
AddressSpace::regions() const
{
    std::vector<Region> out;
    out.reserve(regions_.size());
    for (const auto &[base, region] : regions_)
        out.push_back(region);
    return out;
}

std::uint64_t
AddressSpace::domainPages(DomainId domain) const
{
    std::uint64_t pages = 0;
    for (const auto &[base, region] : regions_) {
        if (region.domain == domain)
            pages += region.size / pageBytes(region.pageSize);
    }
    return pages;
}

} // namespace pmodv::tlb
