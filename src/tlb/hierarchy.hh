/**
 * @file
 * Two-level TLB hierarchy with a page walker, per the paper's
 * Table II: 64-entry 4-way L1, 1536-entry 6-way L2 (4 cycles), 30
 * cycle walk penalty. Protection schemes hook the fill path through
 * TlbFillPolicy to stamp entries with protection keys (MPK designs)
 * or domain ids (domain virtualization).
 */

#ifndef PMODV_TLB_HIERARCHY_HH
#define PMODV_TLB_HIERARCHY_HH

#include <memory>

#include "tlb/addrspace.hh"
#include "tlb/tlb.hh"

namespace pmodv::tlb
{

/**
 * Scheme-specific hook invoked when a page walk fills a new TLB
 * entry. The base translation fields are prefilled from the address
 * space; the hook adds the protection metadata (key/domain) and
 * reports any extra cycles its own structures consumed (e.g. a DTTLB
 * key remap with its shootdown).
 */
class TlbFillPolicy
{
  public:
    virtual ~TlbFillPolicy() = default;

    /**
     * Stamp protection metadata into @p entry for a walk of @p va by
     * thread @p tid. @p region is the mapped region (nullptr when the
     * VA is outside every mapping). Returns extra cycles.
     */
    virtual Cycles fill(ThreadId tid, Addr va, const Region *region,
                        TlbEntry &entry) = 0;
};

/** Fill policy for schemes with no per-entry protection metadata. */
class PlainFillPolicy : public TlbFillPolicy
{
  public:
    Cycles
    fill(ThreadId, Addr, const Region *, TlbEntry &) override
    {
        return 0;
    }
};

/** Static configuration of the TLB hierarchy. */
struct TlbHierarchyParams
{
    TlbParams l1{"l1tlb", 64, 4, 0};
    TlbParams l2{"l2tlb", 1536, 6, 4};
    Cycles walkLatency = 30;
};

/** Result of translating one access. */
struct TranslateResult
{
    /** The (L1) entry the access resolved to; never null. */
    const TlbEntry *entry = nullptr;
    /** Cycles the translation added beyond the folded L1 lookup
     *  (L2 lookup + page walk); partially hidden by the OoO core. */
    Cycles latency = 0;
    /** Serializing cycles the protection fill consumed (DTT walks,
     *  key remaps, shootdowns); never hidden. */
    Cycles fillExtra = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    bool walked = false;
};

/**
 * L1+L2 TLB with page walker. Owns no protection policy; the
 * ProtectionScheme supplies one via setFillPolicy().
 */
class TlbHierarchy : public stats::Group
{
  public:
    TlbHierarchy(stats::Group *parent, const TlbHierarchyParams &params,
                 const AddressSpace &space);

    /** Install the scheme's fill hook (not owned). */
    void setFillPolicy(TlbFillPolicy *policy) { fillPolicy_ = policy; }

    /**
     * Translate @p va for thread @p tid, walking and filling on a
     * full miss.
     */
    TranslateResult translate(ThreadId tid, Addr va);

    /** Ranged invalidation in both levels (Range_Flush). */
    unsigned flushRange(Addr base, Addr size);

    /** Invalidate entries carrying @p key in both levels. */
    unsigned flushKey(ProtKey key);

    /** Invalidate everything in both levels. */
    unsigned flushAll();

    Tlb &l1() { return *l1_; }
    Tlb &l2() { return *l2_; }
    const TlbHierarchyParams &params() const { return params_; }

    /** Defer hot counters here and in both levels. Histogram samples
     *  stay immediate (per-sample bucketing cannot be batched). */
    void setStatsDeferred(bool defer);

    /** Flush deferred counters (both levels and walks) now. */
    void flushDeferredStats();

    stats::Scalar walks;
    stats::Histogram missLatency; ///< Cycles added per L1 miss.

  private:
    TlbHierarchyParams params_;
    const AddressSpace &space_;
    TlbFillPolicy *fillPolicy_;
    PlainFillPolicy defaultPolicy_;
    std::unique_ptr<Tlb> l1_;
    std::unique_ptr<Tlb> l2_;
    std::uint64_t pendWalks_ = 0;
    bool defer_ = false;
};

} // namespace pmodv::tlb

#endif // PMODV_TLB_HIERARCHY_HH
