/**
 * @file
 * A set-associative TLB model. Entries carry, besides the usual
 * translation metadata, the 4-bit MPK protection key (MPK and MPK
 * virtualization schemes) or the 10-bit domain id (domain
 * virtualization scheme) — the distinguishing state the two designs
 * keep per TLB entry.
 */

#ifndef PMODV_TLB_TLB_HH
#define PMODV_TLB_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/plru.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace pmodv::tlb
{

/** One TLB entry. */
struct TlbEntry
{
    bool valid = false;
    Addr vpn = 0; ///< Virtual page number (va >> pageShift).
    PageSize pageSize = PageSize::Size4K;
    Perm pagePerm = Perm::ReadWrite;
    MemClass memClass = MemClass::Dram;
    /** MPK protection key cached with the translation (kNullKey when
     *  the page is domainless). */
    ProtKey key = kNullKey;
    /** Domain id cached with the translation (domain-virtualization
     *  design only; kNullDomain otherwise). */
    DomainId domain = kNullDomain;
};

/** Static configuration of one TLB level. */
struct TlbParams
{
    std::string name = "tlb";
    unsigned entries = 64;
    unsigned assoc = 4;
    /** Cycles added to the translation when this level must be read
     *  (the L1 lookup is folded into the load pipeline → 0). */
    Cycles accessLatency = 0;
};

/**
 * One level of set-associative TLB.
 *
 * All ways live in one flat vector (set-major) and the per-set
 * replacement trackers are stored by value, so a lookup touches two
 * contiguous arrays instead of chasing per-set heap blocks. A per
 * page-size count of valid entries lets lookups skip the 2M/1G index
 * probes entirely when no entry of that size is cached — the common
 * case for 4K-only traces.
 */
class Tlb : public stats::Group
{
  public:
    Tlb(stats::Group *parent, const TlbParams &params);

    const TlbParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /**
     * Look up the translation of @p va; nullptr on miss. Hit updates
     * replacement state and statistics. The returned pointer stays
     * valid until the next insert/flush.
     */
    TlbEntry *lookup(Addr va);

    /** Probe without touching stats or replacement state. */
    const TlbEntry *probe(Addr va) const;

    /**
     * Insert @p entry (evicting pseudo-LRU within the set if full).
     * Returns a reference to the installed entry.
     */
    TlbEntry &insert(const TlbEntry &entry);

    /**
     * insert() for callers that just took a miss on the same page:
     * skips the duplicate-tag probe, which a preceding failed lookup
     * has already proven fruitless. Behaviour is otherwise identical.
     */
    TlbEntry &insertFresh(const TlbEntry &entry);

    /** Invalidate everything; returns the number of valid entries. */
    unsigned flushAll();

    /** Invalidate translations inside [base, base+size). */
    unsigned flushRange(Addr base, Addr size);

    /** Invalidate translations carrying protection key @p key. */
    unsigned flushKey(ProtKey key);

    /** Invalidate translations carrying domain @p domain. */
    unsigned flushDomain(DomainId domain);

    /** Number of currently valid entries (O(entries)). */
    unsigned validCount() const;

    /**
     * Defer hot counters (hits/misses/evictions/flushed) into packed
     * locals instead of the stats tree; disabling flushes. The final
     * Scalar values are identical either way (exact integer sums).
     */
    void setStatsDeferred(bool defer);

    /** Flush deferred counters into the stats tree now. */
    void flushDeferredStats();

    /** Lookups answered by the one-entry L0 filter (raw, unregistered
     *  host-perf counter — never part of the dumped stats tree). */
    std::uint64_t l0Hits() const { return l0Hits_; }

    /** Monotonic structure generation; bumped on any insert/flush so
     *  the L0 filter self-invalidates. Exposed for regression tests. */
    std::uint64_t generation() const { return gen_; }

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar evictions; ///< Valid entries displaced by capacity.
    stats::Scalar flushedEntries;
    stats::Formula missRate;

  private:
    std::size_t setIndexFor(Addr vpn) const
    {
        return vpn & (numSets_ - 1);
    }

    /**
     * Packed probe tag mirrored per way in tags_: vpn | page-size
     * index | valid bit. Zero always means "invalid slot", so the
     * SIMD row probe needs no separate valid mask and the padding
     * tail never matches.
     */
    static std::uint64_t packTag(Addr vpn, PageSize ps)
    {
        return (vpn << 3) |
               (static_cast<std::uint64_t>(ps) << 1) | 1;
    }

    /** First way of set @p si in the flat way array. */
    TlbEntry *setWays(std::size_t si)
    {
        return ways_.data() + si * params_.assoc;
    }
    const TlbEntry *setWays(std::size_t si) const
    {
        return ways_.data() + si * params_.assoc;
    }

    void dropEntry(std::size_t flat, std::size_t si)
    {
        ways_[flat].valid = false;
        tags_[flat] = 0;
        --sizeValid_[static_cast<unsigned>(ways_[flat].pageSize)];
        --setValid_[si];
    }

    /**
     * Bodies of lookup()/insert()/insertFresh(), specialized on the
     * associativity (A == 0 reads params_.assoc at runtime). The
     * public entry points dispatch on the common widths so the SIMD
     * probe loops fully unroll with compile-time trip counts.
     */
    template <unsigned A> TlbEntry *lookupImpl(Addr va);

    /** Shared body of insert()/insertFresh(). */
    template <bool Dedupe, unsigned A>
    TlbEntry &insertImpl(const TlbEntry &entry);

    void touchWay(std::size_t si, unsigned way)
    {
        if (!touchLut_.empty())
            plru_[si].touchMasked(touchLut_[way]);
        else
            plru_[si].touch(way);
    }

    void bumpHit()
    {
        if (defer_)
            ++pend_.hits;
        else
            ++hits;
    }

    template <typename Pred>
    unsigned flushIf(Pred pred);

    TlbParams params_;
    unsigned numSets_;
    std::vector<TlbEntry> ways_; ///< numSets_ x assoc, set-major.
    /** Packed tag per way (+simd::kTagPad zero slots), set-major. */
    std::vector<std::uint64_t> tags_;
    std::vector<TreePlru> plru_; ///< One tracker per set, by value.
    /** Branchless touch ops shared by every set (same way count). */
    std::vector<TreePlru::TouchOp> touchLut_;
    /** Table-driven victim() shared by every set. */
    TreePlru::VictimLut victimLut_;
    /** Valid-entry count per PageSize (indexed by the enum value). */
    unsigned sizeValid_[3] = {0, 0, 0};
    /** Valid-way count per set: a full set skips the free-way probe. */
    std::vector<std::uint8_t> setValid_;

    /**
     * L0 filter: the last 4K translation, keyed by (generation,
     * packed tag). Only 4K entries are cached — the full lookup
     * probes 4K first and at most one valid 4K entry exists per vpn,
     * so an L0 hit provably returns what the full probe would.
     */
    std::uint64_t gen_ = 1;
    std::uint64_t l0Gen_ = 0;
    std::uint64_t l0Tag_ = 0;
    std::size_t l0Flat_ = 0;
    std::size_t l0Si_ = 0;
    unsigned l0Way_ = 0;
    std::uint64_t l0Hits_ = 0;

    /** Packed deferred counters (see setStatsDeferred). */
    struct Pending
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t flushed = 0;
    };
    Pending pend_;
    bool defer_ = false;
};

} // namespace pmodv::tlb

#endif // PMODV_TLB_TLB_HH
